#!/bin/sh
# Smoke test for the live execution backend: 10 real splayd daemons over
# loopback TCP run the warm-started Chord ring, every lookup must
# resolve, the structural invariants must match the simulated twin
# (zero contract violations), and every forked process must be gone when
# the controller returns. A second phase checks orphan hygiene: SIGKILL
# the controller mid-run and assert no splayd outlives it.
#
# On failure the per-daemon logs and controller output are collected
# into _build/live-logs/ for post-mortem.
#
# Usage: scripts/live_smoke.sh   (from the repo root, after dune build)
set -eu

CLI=_build/default/bin/splay_cli.exe
OUT=_build/live-smoke
LOGDIR=_build/live-logs
DEPLOY_TIMEOUT=120

if [ ! -x "$CLI" ]; then
  echo "live_smoke: $CLI not built (run dune build @all first)" >&2
  exit 2
fi

rm -rf "$OUT"
mkdir -p "$OUT"

collect_logs() {
  mkdir -p "$LOGDIR"
  for f in "$OUT"/run/daemon-*.log "$OUT"/orphan/daemon-*.log \
           "$OUT"/deploy.out "$OUT"/orphan.out; do
    [ -f "$f" ] && cp "$f" "$LOGDIR"/ || true
  done
  echo "live_smoke: logs collected in $LOGDIR" >&2
}

fail() {
  echo "live_smoke: FAIL: $1" >&2
  collect_logs
  exit 1
}

# Live processes named splayd, excluding zombies: an exited daemon the
# container's init has not reaped yet is dead for our purposes.
running_splayds() {
  ps -eo stat=,comm= | awk '$1 !~ /^Z/ && $2 ~ /splayd/' | wc -l
}

[ "$(running_splayds)" -eq 0 ] || fail "stray splayd processes before the test"

# --- Phase 1: 10-daemon Chord deployment, diffed against simulation ---

echo "live_smoke: deploying chord on 10 splayd daemons..."
if ! timeout "$DEPLOY_TIMEOUT" "$CLI" live deploy --app chord -n 10 --daemons 10 \
    --lookups 20 --deadline 100 --out-dir "$OUT/run" --diff-sim \
    >"$OUT/deploy.out" 2>&1; then
  cat "$OUT/deploy.out" >&2
  fail "live deploy exited nonzero (or hit the ${DEPLOY_TIMEOUT}s timeout)"
fi
cat "$OUT/deploy.out"

grep -q "contract: OK" "$OUT/deploy.out" \
  || fail "sim-vs-live contract violations (see above)"
grep -q "10 daemons alive, 0 dead" "$OUT/deploy.out" \
  || fail "not all daemons completed the bootstrap"

# The controller reaps its children before returning; nothing may survive.
[ "$(running_splayds)" -eq 0 ] || fail "splayd processes survived the deployment"

# --- Phase 2: orphan hygiene — SIGKILL the controller mid-run ---

echo "live_smoke: orphan check (SIGKILL the controller mid-run)..."
"$CLI" live deploy --app chord -n 4 --daemons 4 --lookups 0 \
  --duration 60 --deadline 90 --out-dir "$OUT/orphan" --no-trace \
  >"$OUT/orphan.out" 2>&1 &

# Wait for the run to be up (daemons.json written, daemons forked).
i=0
while [ ! -f "$OUT/orphan/daemons.json" ] || [ "$(running_splayds)" -lt 4 ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || fail "orphan-phase deployment never came up"
  sleep 0.2
done

CPID=$(awk -F'[:,]' '/controller_pid/ { print $2 + 0 }' "$OUT/orphan/daemons.json")
[ "$CPID" -gt 0 ] || fail "no controller pid recorded in daemons.json"
kill -9 "$CPID" 2>/dev/null || fail "controller already gone before the SIGKILL"

# Every daemon must notice (control-connection EOF / parent-pid watch)
# and self-terminate; allow a generous grace for slow CI machines.
i=0
while [ "$(running_splayds)" -ne 0 ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    ps -eo pid,stat,args | grep splayd | grep -v grep >&2 || true
    fail "splayd processes survived controller SIGKILL"
  fi
  sleep 0.2
done
wait 2>/dev/null || true

echo "live_smoke: OK (contract holds, daemons exit clean, orphans self-terminate)"
