#!/bin/sh
# CI floor guard for the macro benchmark: fail if any workload in a
# BENCH_macro.json dropped below its committed floor, or if a floored
# workload is missing from the output entirely. Floors are deliberately
# conservative (an order of magnitude under healthy numbers) — the guard
# catches collapses, not noise.
#
# Usage: scripts/check_bench_floors.sh BENCH_macro.json BENCH_macro.floors.json
set -eu

if [ $# -ne 2 ]; then
  echo "usage: $0 BENCH_macro.json BENCH_macro.floors.json" >&2
  exit 2
fi
bench=$1
floors=$2
for f in "$bench" "$floors"; do
  if [ ! -f "$f" ]; then
    echo "check_bench_floors: no such file: $f" >&2
    exit 2
  fi
done

# Both files keep one workload per line ({"name": ..., "ops_per_sec": ...}),
# so a line-oriented awk pass is enough — no JSON parser dependency.
awk -v FS='"' '
  FNR == NR {
    if ($2 == "name" && match($0, /"floor_ops_per_sec": */)) {
      floor[$4] = substr($0, RSTART + RLENGTH) + 0
    }
    next
  }
  $2 == "name" && match($0, /"ops_per_sec": */) {
    name = $4
    rate = substr($0, RSTART + RLENGTH) + 0
    if (name in floor) {
      seen[name] = 1
      if (rate < floor[name]) {
        printf "FLOOR VIOLATION: %s ran at %.0f ops/s, floor is %.0f\n", name, rate, floor[name]
        bad = 1
      } else {
        printf "floor ok: %-18s %12.0f ops/s (floor %.0f)\n", name, rate, floor[name]
      }
    }
  }
  END {
    for (n in floor)
      if (!(n in seen)) {
        printf "FLOOR VIOLATION: workload %s missing from bench output\n", n
        bad = 1
      }
    exit bad
  }
' "$floors" "$bench"
