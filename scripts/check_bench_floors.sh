#!/bin/sh
# CI guard for the benchmark baselines: fail if any workload in a fresh
# BENCH_*.json dropped below its committed floor (ops/sec) or rose above
# its committed ceiling (resident words per node), if a guarded workload
# is missing from the output entirely, or if the metric a bound refers to
# is missing from that workload's line — a silently-absent key must read
# as a regression, not as a pass. Bounds are deliberately conservative
# (an order of magnitude off the healthy numbers) — the guard catches
# collapses, not noise.
#
# Usage: scripts/check_bench_floors.sh BENCH_x.json BENCH_x.floors.json
set -eu

if [ $# -ne 2 ]; then
  echo "usage: $0 BENCH.json BENCH.floors.json" >&2
  exit 2
fi
bench=$1
floors=$2
for f in "$bench" "$floors"; do
  if [ ! -f "$f" ]; then
    echo "check_bench_floors: no such file: $f" >&2
    exit 2
  fi
done

# Both files keep one workload per line ({"name": ..., "ops_per_sec": ...}),
# so a line-oriented awk pass is enough — no JSON parser dependency.
#
# Besides absolute bounds, a workload may carry a relative one:
#   "ceiling_slowdown": R, "baseline": "other_workload"
# fails if baseline_rate / this_rate > R (jobs=1 rows only — multi-domain
# rates are too noisy for a ratio gate). This is how the metrics-plane
# `_obs` twins are held within a bounded overhead of their plain rows.
#
# Two parallel-engine bounds:
#   "floor_jobs2_ratio": R     fails if rate(jobs=2) / rate(jobs=1) < R —
#                              the jobs=2 fan-out must never collapse
#                              below its jobs=1 twin again;
#   "floor_speedup_x_per_worker": P, "floor_speedup_x_min": M
#                              fails if the row's speedup_x field is
#                              below max(M, P * workers). The workers
#                              field is what the core count actually
#                              granted, so a 4-core box must deliver
#                              P*4 = 2x while a 1-core CI container
#                              (where parallel speedup is physically
#                              impossible) only has to clear the
#                              no-collapse bound M on windowing overhead.
awk -v FS='"' '
  FNR == NR {
    if ($2 == "name") {
      n = $4
      guarded[n] = 1
      if (match($0, /"floor_ops_per_sec": */))
        floor[n] = substr($0, RSTART + RLENGTH) + 0
      if (match($0, /"ceiling_words_per_node": */))
        ceiling[n] = substr($0, RSTART + RLENGTH) + 0
      if (match($0, /"ceiling_slowdown": */))
        slow[n] = substr($0, RSTART + RLENGTH) + 0
      if (match($0, /"floor_jobs2_ratio": */))
        j2r[n] = substr($0, RSTART + RLENGTH) + 0
      if (match($0, /"floor_speedup_x_per_worker": */))
        spw[n] = substr($0, RSTART + RLENGTH) + 0
      if (match($0, /"floor_speedup_x_min": */))
        spmin[n] = substr($0, RSTART + RLENGTH) + 0
      if (match($0, /"baseline": *"[^"]*"/)) {
        s = substr($0, RSTART, RLENGTH)
        sub(/^"baseline": *"/, "", s)
        sub(/"$/, "", s)
        base[n] = s
      }
    }
    next
  }
  $2 == "name" {
    # jobs=1 rate of every workload (rows without a jobs field are
    # single-domain scale rows), for the END-phase ratio checks
    j = 1
    if (match($0, /"jobs": */))
      j = substr($0, RSTART + RLENGTH) + 0
    if (j == 1 && match($0, /"ops_per_sec": */))
      rate1[$4] = substr($0, RSTART + RLENGTH) + 0
    if (j == 2 && match($0, /"ops_per_sec": */))
      rate2[$4] = substr($0, RSTART + RLENGTH) + 0
  }
  $2 == "name" && ($4 in guarded) {
    name = $4
    seen[name] = 1
    if (name in floor) {
      if (match($0, /"ops_per_sec": */)) {
        rate = substr($0, RSTART + RLENGTH) + 0
        if (rate < floor[name]) {
          printf "FLOOR VIOLATION: %s ran at %.0f ops/s, floor is %.0f\n", name, rate, floor[name]
          bad = 1
        } else {
          printf "floor ok:   %-18s %12.0f ops/s (floor %.0f)\n", name, rate, floor[name]
        }
      } else {
        printf "FLOOR VIOLATION: %s has no ops_per_sec field in bench output\n", name
        bad = 1
      }
    }
    if (name in ceiling) {
      if (match($0, /"words_per_node": */)) {
        words = substr($0, RSTART + RLENGTH) + 0
        if (words > ceiling[name]) {
          printf "CEILING VIOLATION: %s uses %.1f words/node, ceiling is %.1f\n", name, words, ceiling[name]
          bad = 1
        } else {
          printf "ceiling ok: %-18s %12.1f words/node (ceiling %.1f)\n", name, words, ceiling[name]
        }
      } else {
        printf "CEILING VIOLATION: %s has no words_per_node field in bench output\n", name
        bad = 1
      }
    }
    if ((name in spw) || (name in spmin)) {
      if (match($0, /"speedup_x": */)) {
        sp = substr($0, RSTART + RLENGTH) + 0
        if (match($0, /"workers": */)) {
          w = substr($0, RSTART + RLENGTH) + 0
          req = (name in spmin) ? spmin[name] : 0
          pw = ((name in spw) ? spw[name] : 0) * w
          if (pw > req) req = pw
          if (sp < req) {
            printf "SPEEDUP VIOLATION: %s reached %.2fx on %d workers, floor is %.2fx\n", name, sp, w, req
            bad = 1
          } else {
            printf "speedup ok: %-18s %11.2fx on %d workers (floor %.2fx)\n", name, sp, w, req
          }
        } else {
          printf "SPEEDUP VIOLATION: %s has no workers field in bench output\n", name
          bad = 1
        }
      } else {
        printf "SPEEDUP VIOLATION: %s has no speedup_x field in bench output\n", name
        bad = 1
      }
    }
  }
  END {
    for (n in guarded)
      if (!(n in seen)) {
        printf "FLOOR VIOLATION: workload %s missing from bench output\n", n
        bad = 1
      }
    for (n in j2r) {
      if (!(n in rate1) || !(n in rate2)) {
        printf "JOBS2 VIOLATION: %s is missing a jobs=1 or jobs=2 ops_per_sec row\n", n
        bad = 1
      } else {
        r = 0
        if (rate1[n] > 0)
          r = rate2[n] / rate1[n]
        if (r < j2r[n]) {
          printf "JOBS2 VIOLATION: %s jobs=2 runs at %.2fx its jobs=1 rate, floor is %.2fx\n", n, r, j2r[n]
          bad = 1
        } else {
          printf "jobs2 ok:   %-18s %11.2fx vs jobs=1 (floor %.2fx)\n", n, r, j2r[n]
        }
      }
    }
    for (n in slow) {
      if (!(n in rate1) || !(base[n] in rate1)) {
        printf "SLOWDOWN VIOLATION: %s or its baseline %s has no jobs=1 ops_per_sec row\n", n, base[n]
        bad = 1
      } else {
        ratio = 999
        if (rate1[n] > 0)
          ratio = rate1[base[n]] / rate1[n]
        if (ratio > slow[n]) {
          printf "SLOWDOWN VIOLATION: %s runs %.2fx slower than %s, ceiling is %.2fx\n", n, ratio, base[n], slow[n]
          bad = 1
        } else {
          printf "slowdown ok: %-17s %11.2fx vs %s (ceiling %.2fx)\n", n, ratio, base[n], slow[n]
        }
      }
    }
    exit bad
  }
' "$floors" "$bench"
