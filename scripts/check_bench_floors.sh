#!/bin/sh
# CI guard for the benchmark baselines: fail if any workload in a fresh
# BENCH_*.json violates a committed bound, if a guarded workload is
# missing from the output entirely, or if the metric a bound refers to is
# missing from that workload's line — a silently-absent key must read as
# a regression, not as a pass. Bounds are deliberately conservative (an
# order of magnitude off the healthy numbers) — the guard catches
# collapses, not noise.
#
# Usage: scripts/check_bench_floors.sh BENCH_x.json BENCH_x.floors.json
set -eu

if [ $# -ne 2 ]; then
  echo "usage: $0 BENCH.json BENCH.floors.json" >&2
  exit 2
fi
bench=$1
floors=$2
for f in "$bench" "$floors"; do
  if [ ! -f "$f" ]; then
    echo "check_bench_floors: no such file: $f" >&2
    exit 2
  fi
done

# Both files keep one workload per line ({"name": ..., "ops_per_sec": ...}),
# so a line-oriented awk pass is enough — no JSON parser dependency.
#
# Generic bounds — FIELD names any numeric field of the bench row:
#   "floor_FIELD": V      fails if the row's FIELD < V
#   "ceiling_FIELD": V    fails if the row's FIELD > V
#   "ceiling_ratio_FIELD": R, "baseline": "other_workload"
#                         fails if this_FIELD / baseline_FIELD > R
#                         (jobs=1 rows; this is how "all-on must beat the
#                         baseline p99 past the knee" is floor-enforced)
#
# Special bounds with their own semantics:
#   "ceiling_slowdown": R, "baseline": "other"
#                         fails if baseline_rate / this_rate > R
#                         (jobs=1 rows only — multi-domain rates are too
#                         noisy for a ratio gate); holds the `_obs`
#                         metrics twins within a bounded overhead.
#   "floor_jobs2_ratio": R
#                         fails if rate(jobs=2) / rate(jobs=1) < R — the
#                         jobs=2 fan-out must never collapse below its
#                         jobs=1 twin again.
#   "floor_speedup_x_per_worker": P, "floor_speedup_x_min": M
#                         fails if the row's speedup_x field is below
#                         max(M, P * workers). Gated ONLY when the row's
#                         workers field is >= 2: the workers field is
#                         what the core count actually granted, and on a
#                         1-core container — where parallel speedup is
#                         physically impossible — the row is annotated
#                         as degenerate instead of gated (windowing
#                         overhead is guarded separately by a plain
#                         floor_ops_per_sec where it matters).
awk '
  # arr[key] = num for every "key": number pair on the line
  function numpairs(line, arr,    pair, kv, key) {
    delete arr
    while (match(line, /"[A-Za-z0-9_]+": *-?[0-9][0-9.eE+-]*/)) {
      pair = substr(line, RSTART, RLENGTH)
      line = substr(line, RSTART + RLENGTH)
      split(pair, kv, /": */)
      key = kv[1]
      sub(/^"/, "", key)
      arr[key] = kv[2] + 0
    }
  }
  function rowname(line,    s) {
    if (match(line, /"name": *"[^"]*"/)) {
      s = substr(line, RSTART, RLENGTH)
      sub(/^"name": *"/, "", s)
      sub(/"$/, "", s)
      return s
    }
    return ""
  }
  FNR == NR {
    n = rowname($0)
    if (n == "") next
    guarded[n] = 1
    numpairs($0, kv)
    for (k in kv) {
      if (k == "floor_jobs2_ratio") j2r[n] = kv[k]
      else if (k == "floor_speedup_x_per_worker") spw[n] = kv[k]
      else if (k == "floor_speedup_x_min") spmin[n] = kv[k]
      else if (k == "ceiling_slowdown") slow[n] = kv[k]
      else if (k ~ /^ceiling_ratio_/) relc[n SUBSEP substr(k, 15)] = kv[k]
      else if (k ~ /^floor_/) fl[n SUBSEP substr(k, 7)] = kv[k]
      else if (k ~ /^ceiling_/) ce[n SUBSEP substr(k, 9)] = kv[k]
    }
    if (match($0, /"baseline": *"[^"]*"/)) {
      s = substr($0, RSTART, RLENGTH)
      sub(/^"baseline": *"/, "", s)
      sub(/"$/, "", s)
      base[n] = s
    }
    next
  }
  {
    name = rowname($0)
    if (name == "") next
    numpairs($0, kv)
    j = ("jobs" in kv) ? kv["jobs"] : 1
    # jobs=1 field values of every workload, for the END-phase ratio checks
    if (j == 1)
      for (k in kv) val[name SUBSEP k] = kv[k]
    if (j == 1 && ("ops_per_sec" in kv)) rate1[name] = kv["ops_per_sec"]
    if (j == 2 && ("ops_per_sec" in kv)) rate2[name] = kv["ops_per_sec"]
    if (!(name in guarded)) next
    seen[name] = 1
    for (key in fl) {
      split(key, a, SUBSEP)
      if (a[1] != name) continue
      f = a[2]
      if (!(f in kv)) {
        printf "FLOOR VIOLATION: %s has no %s field in bench output\n", name, f
        bad = 1
      } else if (kv[f] < fl[key]) {
        printf "FLOOR VIOLATION: %s has %s = %g, floor is %g\n", name, f, kv[f], fl[key]
        bad = 1
      } else {
        printf "floor ok:   %-28s %14g %s (floor %g)\n", name, kv[f], f, fl[key]
      }
    }
    for (key in ce) {
      split(key, a, SUBSEP)
      if (a[1] != name) continue
      f = a[2]
      if (!(f in kv)) {
        printf "CEILING VIOLATION: %s has no %s field in bench output\n", name, f
        bad = 1
      } else if (kv[f] > ce[key]) {
        printf "CEILING VIOLATION: %s has %s = %g, ceiling is %g\n", name, f, kv[f], ce[key]
        bad = 1
      } else {
        printf "ceiling ok: %-28s %14g %s (ceiling %g)\n", name, kv[f], f, ce[key]
      }
    }
    if ((name in spw) || (name in spmin)) {
      if (!("speedup_x" in kv)) {
        printf "SPEEDUP VIOLATION: %s has no speedup_x field in bench output\n", name
        bad = 1
      } else if (!("workers" in kv)) {
        printf "SPEEDUP VIOLATION: %s has no workers field in bench output\n", name
        bad = 1
      } else if (kv["workers"] < 2) {
        printf "speedup n/a: %-27s %13.2fx on %d worker(s), %s core(s) — degenerate, not gated\n", \
          name, kv["speedup_x"], kv["workers"], ("cores" in kv) ? sprintf("%d", kv["cores"]) : "?"
      } else {
        req = (name in spmin) ? spmin[name] : 0
        pw = ((name in spw) ? spw[name] : 0) * kv["workers"]
        if (pw > req) req = pw
        if (kv["speedup_x"] < req) {
          printf "SPEEDUP VIOLATION: %s reached %.2fx on %d workers, floor is %.2fx\n", \
            name, kv["speedup_x"], kv["workers"], req
          bad = 1
        } else {
          printf "speedup ok: %-28s %13.2fx on %d workers (floor %.2fx)\n", \
            name, kv["speedup_x"], kv["workers"], req
        }
      }
    }
  }
  END {
    for (n in guarded)
      if (!(n in seen)) {
        printf "FLOOR VIOLATION: workload %s missing from bench output\n", n
        bad = 1
      }
    for (n in j2r) {
      if (!(n in rate1) || !(n in rate2)) {
        printf "JOBS2 VIOLATION: %s is missing a jobs=1 or jobs=2 ops_per_sec row\n", n
        bad = 1
      } else {
        r = 0
        if (rate1[n] > 0)
          r = rate2[n] / rate1[n]
        if (r < j2r[n]) {
          printf "JOBS2 VIOLATION: %s jobs=2 runs at %.2fx its jobs=1 rate, floor is %.2fx\n", n, r, j2r[n]
          bad = 1
        } else {
          printf "jobs2 ok:   %-28s %13.2fx vs jobs=1 (floor %.2fx)\n", n, r, j2r[n]
        }
      }
    }
    for (n in slow) {
      if (!(n in rate1) || !(base[n] in rate1)) {
        printf "SLOWDOWN VIOLATION: %s or its baseline %s has no jobs=1 ops_per_sec row\n", n, base[n]
        bad = 1
      } else {
        ratio = 999
        if (rate1[n] > 0)
          ratio = rate1[base[n]] / rate1[n]
        if (ratio > slow[n]) {
          printf "SLOWDOWN VIOLATION: %s runs %.2fx slower than %s, ceiling is %.2fx\n", n, ratio, base[n], slow[n]
          bad = 1
        } else {
          printf "slowdown ok: %-27s %13.2fx vs %s (ceiling %.2fx)\n", n, ratio, base[n], slow[n]
        }
      }
    }
    for (key in relc) {
      split(key, a, SUBSEP)
      n = a[1]
      f = a[2]
      b = (n in base) ? base[n] : ""
      if (b == "") {
        printf "RATIO VIOLATION: %s has a ceiling_ratio_%s bound but no baseline field\n", n, f
        bad = 1
      } else if (!((n SUBSEP f) in val) || !((b SUBSEP f) in val)) {
        printf "RATIO VIOLATION: %s or its baseline %s has no %s field in bench output\n", n, b, f
        bad = 1
      } else {
        ratio = 999
        if (val[b SUBSEP f] > 0)
          ratio = val[n SUBSEP f] / val[b SUBSEP f]
        if (ratio > relc[key]) {
          printf "RATIO VIOLATION: %s %s is %.2fx its baseline %s, ceiling is %.2fx\n", \
            n, f, ratio, b, relc[key]
          bad = 1
        } else {
          printf "ratio ok:   %-28s %13.2fx %s vs %s (ceiling %.2fx)\n", n, ratio, f, b, relc[key]
        }
      }
    }
    exit bad
  }
' "$floors" "$bench"
