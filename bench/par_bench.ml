(* Parallel single-run engine: the speedup pair the CI floor guards.

   One workload, measured twice: the 100k-node epidemic flood as a plain
   sequential run, then as ONE deployment over --domains partitions on
   the windowed parallel engine. Always 100k nodes, quick or full — the
   floor is meaningless on a toy population. Best-of-2 wall clocks (the
   runs are deterministic; reruns differ only by machine noise).

   The par row's extras carry everything check_bench_floors.sh needs to
   judge the machine honestly: [domains] (what was asked), [workers]
   (what the core count actually granted — Dpool clamps), and
   [speedup_x] (par rate / seq rate). The floor requires
   speedup_x >= max(floor_speedup_x_min, floor_speedup_x_per_worker *
   workers): on a >= 4-core box that demands the real >= 2x at
   --domains 4; on a 1-core CI container (workers = 1, where parallel
   speedup is physically impossible) it degrades to a no-collapse bound
   on the windowing overhead. *)

open Splay

let best2 f =
  let a = f () in
  let b = f () in
  if b.Scale.seconds < a.Scale.seconds then b else a

let run () =
  Report.section "Parallel engine — sequential vs windowed-parallel (epidemic, 100k nodes)";
  let n = 100_000 in
  let domains = !Common.domains in
  let seq = best2 (fun () -> Scale.epidemic_run ~n ~seed:11 ()) in
  let par = best2 (fun () -> Scale.epidemic_par_run ~domains ~parts:domains ~n ~seed:11 ()) in
  let speedup = Scale.ops_per_sec par /. Scale.ops_per_sec seq in
  let par = { par with Scale.extras = par.Scale.extras @ [ ("speedup_x", speedup) ] } in
  Scale.print_rows [ seq; par ];
  List.iter
    (fun (r : Scale.row) ->
      match List.assoc_opt "coverage" r.Scale.extras with
      | Some c ->
          Common.shape_check
            (Printf.sprintf "%s: flood covers the graph (%.1f%%)" r.Scale.name (100.0 *. c))
            (c > 0.9)
      | None -> ())
    [ seq; par ];
  Report.kv "speedup_x" (Printf.sprintf "%.2f" speedup);
  Scale.write_json !Common.bench_par_out [ seq; par ];
  Report.kv "baseline written" !Common.bench_par_out
