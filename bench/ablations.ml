(* Ablations for the design choices DESIGN.md calls out:
   - abl-superset: sensitivity of deployment time to the 125% default
   - abl-leafset: base Chord vs fault-tolerant Chord under failures
   - abl-proximity: Pastry with and without locality-aware tables
   - abl-stagger: staggered vs massive join in Chord *)

open Splay
module Apps = Splay_apps

let noop (_ : Env.t) = ()

let superset () =
  Report.section "Ablation — the 125% superset default";
  let daemons = Common.pick ~quick:200 ~full:450 in
  let n = Common.pick ~quick:100 ~full:200 in
  let rows =
    Common.with_platform ~seed:21 (Platform.Planetlab daemons) (fun p ->
        let ctl = Platform.controller p in
        let eng = Platform.engine p in
        List.map
          (fun superset ->
            let t0 = Engine.now eng in
            let dep =
              Controller.deploy ctl ~superset ~register_timeout:10.0 ~name:"noop" ~main:noop
                (Descriptor.make n)
            in
            let dt = Engine.now eng -. t0 in
            let probes = int_of_float (Float.ceil (Float.of_int n *. superset)) in
            Controller.undeploy dep;
            Env.sleep 30.0;
            (superset, dt, probes))
          [ 1.0; 1.1; 1.25; 1.5; 2.0; 3.0 ])
  in
  Report.table
    ~header:[ "superset"; "deploy time (s)"; "register messages (≈)" ]
    (List.map
       (fun (s, dt, probes) ->
         [ Printf.sprintf "%.0f%%" (100.0 *. s); Report.float_cell ~decimals:2 dt; string_of_int probes ])
       rows);
  let time_of s = let _, dt, _ = List.find (fun (x, _, _) -> x = s) rows in dt in
  Common.shape_check "over-provisioning pays: 125% faster than 100%"
    (time_of 1.25 < time_of 1.0);
  Report.kv "takeaway"
    "beyond ~150% the returns flatten while the register traffic keeps growing \
     — the paper's 125% default sits at the knee"

let leafset () =
  Report.section "Ablation — base Chord vs fault-tolerant Chord under failures";
  let n = Common.pick ~quick:40 ~full:100 in
  let kill_fraction = 4 in
  let run_ft () =
    Common.with_platform ~seed:22 (Platform.Cluster 11) (fun p ->
        let ctl = Platform.controller p in
        let nodes = ref [] in
        let config =
          { Apps.Chord_ft.default_config with m = 20; join_delay_per_position = 0.2; rpc_timeout = 5.0 }
        in
        let dep =
          Controller.deploy ctl ~name:"chord-ft"
            ~main:(Apps.Chord_ft.app ~config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
        in
        Env.sleep ((Float.of_int n *. 0.2) +. 120.0);
        List.iteri
          (fun i (_, a, _) -> if i mod kill_fraction = 0 then Controller.crash_node dep a)
          (Controller.live_members dep);
        Env.sleep 60.0;
        let live = List.filter (fun c -> not (Apps.Chord_ft.is_stopped c)) !nodes in
        let rng = Rng.split (Engine.rng (Platform.engine p)) in
        let fails = ref 0 and total = 100 in
        for _ = 1 to total do
          let origin = Rng.pick_list rng live in
          match Apps.Chord_ft.lookup origin (Rng.int rng (1 lsl 20)) with
          | Some _ -> ()
          | None -> incr fails
        done;
        100.0 *. Float.of_int !fails /. Float.of_int total)
  in
  let run_base () =
    Common.with_platform ~seed:22 (Platform.Cluster 11) (fun p ->
        let ctl = Platform.controller p in
        let nodes = ref [] in
        let config =
          { Apps.Chord.default_config with m = 20; join_delay_per_position = 0.2 }
        in
        let dep =
          Controller.deploy ctl ~name:"chord"
            ~main:(Apps.Chord.app ~config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
        in
        Env.sleep ((Float.of_int n *. 0.2) +. 120.0);
        List.iteri
          (fun i (_, a, _) -> if i mod kill_fraction = 0 then Controller.crash_node dep a)
          (Controller.live_members dep);
        Env.sleep 60.0;
        let live = List.filter (fun c -> not (Apps.Chord.is_stopped c)) !nodes in
        let rng = Rng.split (Engine.rng (Platform.engine p)) in
        let fails = ref 0 and total = 100 in
        for _ = 1 to total do
          let origin = Rng.pick_list rng live in
          (* base Chord has 2-minute RPC timeouts and no rerouting: bound
             the experiment by treating slow lookups as failures, as a
             client would *)
          let eng = Platform.engine p in
          let t0 = Engine.now eng in
          (match Apps.Chord.lookup origin (Rng.int rng (1 lsl 20)) with
          | Some _ when Engine.now eng -. t0 < 30.0 -> ()
          | _ -> incr fails)
        done;
        100.0 *. Float.of_int !fails /. Float.of_int total)
  in
  let ft, base =
    match Common.par_map (fun f -> f ()) [ run_ft; run_base ] with
    | [ ft; base ] -> (ft, base)
    | _ -> assert false
  in
  Report.table
    ~header:[ "variant"; "failed lookups (%) after 25% of nodes crash" ]
    [
      [ "Chord base (58 LoC)"; Report.float_cell ~decimals:1 base ];
      [ "Chord FT + leafset (100 LoC)"; Report.float_cell ~decimals:1 ft ];
    ];
  Common.shape_check "the 42 extra lines buy robustness" (ft < base)

let proximity () =
  Report.section "Ablation — Pastry locality-aware routing tables";
  let n = Common.pick ~quick:80 ~full:200 in
  let run prox =
    Common.with_platform ~seed:23 (Platform.Planetlab (n + 20)) (fun p ->
        let ctl = Platform.controller p in
        let config =
          { Apps.Pastry.default_config with proximity = prox; join_delay_per_position = 0.1 }
        in
        let _dep, nodes = Common.deploy_pastry ~config ctl ~n in
        Env.sleep ((Float.of_int n *. 0.1) +. 200.0);
        let rng = Rng.split (Engine.rng (Platform.engine p)) in
        let delays, _, _ =
          Common.measure_pastry_lookups ~rng ~keyspace:(Splay_runtime.Misc.pow2 32)
            ~count:(Common.pick ~quick:300 ~full:1000)
            !nodes
        in
        Sink.percentile delays 50.0)
  in
  let with_prox, without =
    match Common.par_map run [ true; false ] with
    | [ w; wo ] -> (w, wo)
    | _ -> assert false
  in
  Report.table
    ~header:[ "routing tables"; "median lookup delay (ms)" ]
    [
      [ "proximity-aware"; Common.ms with_prox ];
      [ "proximity-blind"; Common.ms without ];
    ];
  Common.shape_check "locality-aware tables reduce lookup delay" (with_prox < without)

let stagger () =
  Report.section "Ablation — staggered vs massive join (Chord bootstrap)";
  let n = Common.pick ~quick:30 ~full:60 in
  let run delay =
    Common.with_platform ~seed:24 (Platform.Cluster 11) (fun p ->
        let ctl = Platform.controller p in
        let nodes = ref [] in
        let config =
          { Apps.Chord.default_config with m = 20; join_delay_per_position = delay; stabilize_interval = 2.0 }
        in
        ignore
          (Controller.deploy ctl ~name:"chord"
             ~main:(Apps.Chord.app ~config ~register:(fun c -> nodes := c :: !nodes))
             (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
        Env.sleep ((Float.of_int n *. delay) +. 240.0);
        let ring = Apps.Chord.ring_of !nodes in
        (List.length ring, List.length !nodes))
  in
  let (staggered_ring, total1), (massive_ring, total2) =
    match Common.par_map run [ 1.0; 0.0 ] with
    | [ s; m ] -> (s, m)
    | _ -> assert false
  in
  Report.table
    ~header:[ "join strategy"; "nodes on the main ring"; "nodes deployed" ]
    [
      [ "staggered (1 s apart)"; string_of_int staggered_ring; string_of_int total1 ];
      [ "massive (all at once)"; string_of_int massive_ring; string_of_int total2 ];
    ];
  Common.shape_check "staggered join forms one complete ring" (staggered_ring = total1);
  Report.kv "takeaway"
    "a massive join eventually converges too, but staggering makes experiments \
     reproducible — the reason the paper's deployment code sleeps by position"

let vivaldi () =
  Report.section "Ablation — Vivaldi network coordinates (latency prediction)";
  let n = Common.pick ~quick:30 ~full:60 in
  let run dimensions =
    Common.with_platform ~seed:25 (Platform.Planetlab n) (fun p ->
        let ctl = Platform.controller p in
        let nodes = ref [] in
        let config = { Apps.Vivaldi.default_config with dimensions; period = 2.0 } in
        ignore
          (Controller.deploy ctl ~name:"vivaldi"
             ~main:(Apps.Vivaldi.app ~config ~register:(fun v -> nodes := v :: !nodes))
             (Descriptor.make ~bootstrap:Descriptor.All n));
        let snapshot () =
          let arr = Array.of_list !nodes in
          let errs = Dist.create () in
          let len = Array.length arr in
          for i = 0 to len - 1 do
            for j = i + 1 to len - 1 do
              let predicted =
                Apps.Vivaldi.distance
                  (Apps.Vivaldi.coordinate arr.(i))
                  (Apps.Vivaldi.coordinate arr.(j))
              in
              let actual =
                Net.base_rtt (Platform.net p)
                  (Apps.Vivaldi.addr arr.(i)).Addr.host
                  (Apps.Vivaldi.addr arr.(j)).Addr.host
              in
              Dist.add errs (Float.abs (predicted -. actual) /. actual)
            done
          done;
          Dist.percentile errs 50.0
        in
        List.map
          (fun t ->
            let target = Float.of_int t in
            let now = Platform.now p in
            if target > now then Env.sleep (target -. now);
            (t, snapshot ()))
          [ 30; 120; 300; 600 ])
  in
  let d3, d2 =
    match Common.par_map run [ 3; 2 ] with
    | [ d3; d2 ] -> (d3, d2)
    | _ -> assert false
  in
  Report.table
    ~header:[ "probe time (s)"; "median rel. error, 3-d (%)"; "2-d (%)" ]
    (List.map2
       (fun (t, e3) (_, e2) ->
         [
           string_of_int t;
           Report.float_cell ~decimals:1 (100.0 *. e3);
           Report.float_cell ~decimals:1 (100.0 *. e2);
         ])
       d3 d2);
  let final3 = snd (List.nth d3 3) and first3 = snd (List.hd d3) in
  Common.shape_check "coordinates converge over time" (final3 < first3);
  Common.shape_check
    (Printf.sprintf "converged predictions useful (median error %.0f%%)" (100.0 *. final3))
    (final3 < 0.40)

let partition () =
  Report.section "Ablation — WAN partition and heal (the Fig. 10 motivation, explicitly)";
  let n = Common.pick ~quick:100 ~full:400 in
  let rows =
    Common.with_platform ~seed:26 (Platform.Cluster 10) (fun p ->
        let ctl = Platform.controller p in
        let net = Platform.net p in
        let config =
          { Apps.Pastry.default_config with join_delay_per_position = 0.05; rpc_timeout = 3.0; stabilize_interval = 2.0 }
        in
        let _dep, nodes = Common.deploy_pastry ~config ctl ~n in
        Env.sleep ((Float.of_int n *. 0.05) +. 120.0);
        let rng = Rng.split (Engine.rng (Platform.engine p)) in
        (* a lookup fails if it errors out OR lands on the wrong owner:
           during a split, each side happily answers with its local closest
           node, which is exactly the inconsistency the figure is about *)
        let modulus = Splay_runtime.Misc.pow2 32 in
        let ring_dist a b =
          let cw = (b - a + modulus) mod modulus in
          min cw (modulus - cw)
        in
        let failure_rate count =
          let fails = ref 0 in
          for _ = 1 to count do
            let live = List.filter (fun x -> not (Apps.Pastry.is_stopped x)) !nodes in
            let origin = Rng.pick_list rng live in
            let key = Rng.int rng modulus in
            let true_owner =
              List.fold_left
                (fun best x ->
                  if ring_dist (Apps.Pastry.id x) key < ring_dist best key then Apps.Pastry.id x
                  else best)
                (Apps.Pastry.id (List.hd live))
                live
            in
            match Apps.Pastry.lookup origin key with
            | Some (owner, _) when owner.Apps.Node.id = true_owner -> ()
            | Some _ | None -> incr fails
          done;
          100.0 *. Float.of_int !fails /. Float.of_int count
        in
        let before = failure_rate 60 in
        (* split the 10 hosts 5/5: every instance keeps running but cannot
           reach the other side *)
        Net.set_partition net (fun h -> if h < 5 then 0 else 1);
        Env.sleep 30.0;
        let during = failure_rate 60 in
        Net.clear_partition net;
        Env.sleep 180.0;
        let after = failure_rate 60 in
        [ ("before", before); ("during the split", during); ("3 min after heal", after) ])
  in
  Report.table
    ~header:[ "phase"; "failed lookups (%)" ]
    (List.map (fun (k, v) -> [ k; Report.float_cell ~decimals:1 v ]) rows);
  let get k = List.assoc k rows in
  Common.shape_check "partition breaks cross-side routing" (get "during the split" > 10.0);
  Common.shape_check "routing recovers after the heal"
    (get "3 min after heal" < get "during the split" /. 2.0)

let run () =
  superset ();
  leafset ();
  proximity ();
  stagger ();
  vivaldi ();
  partition ()
