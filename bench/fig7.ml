(* Figure 7: Pastry for SPLAY against FreePastry on the 11-machine cluster.
   (a) lookup-delay CDF at 980 nodes; (b) FreePastry delay percentiles as
   density grows (blow-up past ~1600, unable past ~1980); (c) SPLAY Pastry
   delay percentiles up to 5,500 nodes with no blow-up. *)

open Splay
module Apps = Splay_apps
module Baselines = Splay_baselines

let cluster_hosts = 11

let run_overlay ~seed ~daemon_config ~app_config ~n ~lookups =
  Common.with_platform ~seed ?daemon_config (Platform.Cluster cluster_hosts) (fun p ->
      let ctl = Platform.controller p in
      let config = { app_config with Apps.Pastry.join_delay_per_position = 0.05 } in
      let _dep, nodes = Common.deploy_pastry ~config ctl ~n in
      Env.sleep ((Float.of_int n *. 0.05) +. (5.0 *. 30.0));
      let rng = Rng.split (Engine.rng (Platform.engine p)) in
      let delays, hops, failures =
        Common.measure_pastry_lookups ~rng
          ~keyspace:(Splay_runtime.Misc.pow2 config.Apps.Pastry.bits)
          ~count:lookups !nodes
      in
      ignore hops;
      (delays, failures))

let run_a () =
  Report.section "Figure 7(a) — delay CDF, 980 nodes on the cluster";
  let n = Common.pick ~quick:490 ~full:980 in
  let lookups = Common.pick ~quick:800 ~full:2000 in
  let (splay_d, splay_f), (fp_d, fp_f) =
    (* the two overlays are independent trials: fan them out *)
    match
      Common.par_map
        (fun (daemon_config, app_config) -> run_overlay ~seed:7 ~daemon_config ~app_config ~n ~lookups)
        [
          (None, Apps.Pastry.default_config);
          (Some Baselines.Freepastry.daemon_config, Baselines.Freepastry.app_config);
        ]
    with
    | [ splay; fp ] -> (splay, fp)
    | _ -> assert false
  in
  Report.table
    ~header:[ "percentile"; "Pastry (SPLAY) ms"; "FreePastry (Java) ms" ]
    (List.map
       (fun p ->
         [
           Report.float_cell ~decimals:0 p;
           Common.ms (Sink.percentile splay_d p);
           Common.ms (Sink.percentile fp_d p);
         ])
       [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0 ]);
  Report.kvf "failures" "splay %d, freepastry %d" splay_f fp_f;
  Common.shape_check "SPLAY delays well below FreePastry"
    (Sink.percentile splay_d 50.0 < Sink.percentile fp_d 50.0)

let percentile_row n d =
  string_of_int n :: List.map (fun p -> Common.ms (Sink.percentile d p)) Common.pcts

let run_b () =
  Report.section "Figure 7(b) — FreePastry: delay percentiles vs node count";
  let sweep = Common.pick ~quick:[ 220; 880; 1650; 1980 ] ~full:[ 220; 550; 1100; 1650; 1980 ] in
  let lookups = Common.pick ~quick:300 ~full:800 in
  let rows =
    Common.par_map
      (fun n ->
        let d, f =
          run_overlay ~seed:(40 + n)
            ~daemon_config:(Some Baselines.Freepastry.daemon_config)
            ~app_config:Baselines.Freepastry.app_config ~n ~lookups
        in
        (n, d, f))
      sweep
  in
  Report.table
    ~header:("nodes" :: Report.percentile_header Common.pcts @ [ "(ms)" ])
    (List.map (fun (n, d, _) -> percentile_row n d) rows);
  let med n' = List.find (fun (n, _, _) -> n = n') rows |> fun (_, d, _) -> Sink.percentile d 50.0 in
  let first = List.hd sweep and last = List.nth sweep (List.length sweep - 1) in
  Common.shape_check
    (Printf.sprintf "delays blow up at high density (median %.0f ms -> %.0f ms)"
       (1000.0 *. med first) (1000.0 *. med last))
    (med last > 3.0 *. med first)

let run_c () =
  Report.section "Figure 7(c) — Pastry for SPLAY: delay percentiles vs node count";
  let sweep = Common.pick ~quick:[ 550; 1650; 3300 ] ~full:[ 550; 1650; 2750; 4400; 5500 ] in
  let lookups = Common.pick ~quick:300 ~full:800 in
  let rows =
    Common.par_map
      (fun n ->
        let d, f =
          run_overlay ~seed:(60 + n) ~daemon_config:None ~app_config:Apps.Pastry.default_config
            ~n ~lookups
        in
        (n, d, f))
      sweep
  in
  Report.table
    ~header:("nodes" :: Report.percentile_header Common.pcts @ [ "(ms)" ])
    (List.map (fun (n, d, _) -> percentile_row n d) rows);
  let med (_, d, _) = Sink.percentile d 50.0 in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  Common.shape_check
    (Printf.sprintf "no blow-up as density grows (median %.0f ms -> %.0f ms)"
       (1000.0 *. med first) (1000.0 *. med last))
    (med last < 3.0 *. Float.max (med first) 0.002)

let run () =
  run_a ();
  run_b ();
  run_c ()
