(* Macro benchmarks of the message plane: whole-experiment throughput at
   the level users feel. Three workloads — a full Chord deployment with
   lookups, an epidemic broadcast, and a tight RPC round-trip loop — each
   run as independent seeded trials fanned over domains, reporting
   simulated-events/s (Chord, epidemic) and round-trips/s (RPC) to
   BENCH_macro.json. The micro suite isolates single hot paths; this one
   measures the spawn→send→deliver→serve→reply cycle end to end, so a
   regression anywhere in the message plane moves these numbers.

   Results are recorded for --jobs 1 and for the requested fan-out, so the
   committed baseline documents both the single-domain cost and the
   multicore scaling of the same workloads. *)

open Splay
module Apps = Splay_apps

(* Run a full controller deployment to completion and return the engine's
   cumulative fired-event count (the sim-events denominator). *)
let run_deployment ~seed spec main =
  let p = Platform.create ~seed spec in
  let ctl = Platform.controller p in
  ignore
    (Env.thread (Controller.env ctl) ~name:"macro-main" (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown (Platform.daemons p);
             ignore
               (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
                    Env.stop (Controller.env ctl))))
           (fun () -> main p)));
  let stats = Engine.run ~until:100_000.0 (Platform.engine p) in
  (match Engine.crashed (Platform.engine p) with
  | [] -> ()
  | (proc, e) :: _ ->
      failwith
        (Printf.sprintf "macro process %s crashed: %s" (Engine.proc_name proc)
           (Printexc.to_string e)));
  stats.Engine.events_fired

(* Chord: staggered join, stabilization, then [per_node] lookups from
   every node, then a graceful undeploy. *)
let chord_trial ~n ~per_node seed =
  run_deployment ~seed (Platform.Cluster n) (fun p ->
      let ctl = Platform.controller p in
      let config =
        {
          Apps.Chord.default_config with
          m = 16;
          stabilize_interval = 2.0;
          join_delay_per_position = 0.3;
        }
      in
      let nodes = ref [] in
      let dep =
        Controller.deploy ctl ~name:"chord"
          ~main:(Apps.Chord.app ~config ~register:(fun c -> nodes := c :: !nodes))
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
      in
      Env.sleep ((Float.of_int n *. 0.3) +. (10.0 *. config.Apps.Chord.stabilize_interval));
      let rng = Rng.split (Engine.rng (Platform.engine p)) in
      List.iter
        (fun c ->
          if not (Apps.Chord.is_stopped c) then
            for _ = 1 to per_node do
              ignore (Apps.Chord.lookup c (Rng.int rng (1 lsl 16)))
            done)
        !nodes;
      Controller.undeploy dep)

(* Epidemic: inject rumors at staggered origins, let each flood out. *)
let epidemic_trial ~n ~rumors seed =
  run_deployment ~seed (Platform.Cluster n) (fun p ->
      ignore p;
      let ctl = Platform.controller p in
      let nodes = ref [] in
      ignore
        (Controller.deploy ctl ~name:"epidemic"
           ~main:
             (Apps.Epidemic.app
                ~config:{ Apps.Epidemic.fanout = 6; rpc_timeout = 5.0; oneway = false }
                ~register:(fun c -> nodes := c :: !nodes))
           (Descriptor.make ~bootstrap:(Descriptor.Random_subset 12) n));
      Env.sleep 5.0;
      let arr = Array.of_list !nodes in
      for r = 1 to rumors do
        Apps.Epidemic.broadcast arr.((r * 7) mod Array.length arr) ("rumor-" ^ string_of_int r);
        Env.sleep 2.0
      done;
      Env.sleep 30.0)

(* RPC: one client hammering one server with sequential echo calls — the
   per-call cost of the whole dispatch path (fiber spawn included), with
   nothing else running. Returns completed round trips. *)
let rpc_trial ~calls seed =
  let eng = Engine.create ~seed () in
  let tb = Testbed.cluster ~n:2 (Engine.rng eng) in
  let net = Net.create eng tb in
  let server = Env.create net ~me:(Addr.make 0 2000) in
  let client = Env.create net ~me:(Addr.make 1 2000) in
  Rpc.server server [ ("echo", fun args -> Codec.List args) ];
  let ok = ref 0 in
  ignore
    (Env.thread client (fun () ->
         for i = 1 to calls do
           match Rpc.call client server.Env.me "echo" [ Codec.Int i ] with
           | Codec.List [ Codec.Int j ] when j = i -> incr ok
           | _ -> ()
         done));
  ignore (Engine.run eng);
  if !ok <> calls then
    failwith (Printf.sprintf "rpc_roundtrip: %d of %d calls completed" !ok calls);
  calls

type row = {
  name : string;
  jobs : int;
  ops : int;
  seconds : float;
  rate : float;
  extras : (string * float) list; (* workload-specific numeric fields *)
}

(* Best-of-N wall clock: the batches are deterministic, so reruns only
   differ by scheduler/GC noise and the minimum is the honest figure.
   Single-shot numbers on a shared box swing +/-20%, enough to make the
   jobs=2 >= jobs=1 floor flap for reasons that have nothing to do with
   the pool. *)
let reps = 3

let measure ~jobs name seeds trial =
  let ops = ref 0 and best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let o = List.fold_left ( + ) 0 (Pool.map ~jobs trial seeds) in
    let dt = Unix.gettimeofday () -. t0 in
    ops := o;
    if dt < !best then best := dt
  done;
  let ops = !ops and dt = !best in
  let rate = Float.of_int ops /. dt in
  Printf.printf "  %-18s jobs=%d %12.0f ops/s  (%d ops in %.3f s)\n%!" name jobs rate ops dt;
  { name; jobs; ops; seconds = dt; rate; extras = [] }

(* Metrics-plane variants: the same workloads re-run with windowed rollups
   enabled ([Obs.metrics_enabled], no trace plane). The committed baseline
   then documents the metrics overhead — the `_obs` rate against its plain
   twin is the ratio check_bench_floors.sh guards — and the rollup
   histograms supply end-to-end RPC latency percentiles that the plain
   rows (which only count ops) cannot see. Worker-domain rollups merge
   through Pool's capture/absorb in trial order, so the percentiles are
   jobs-independent. *)
let h_rpc_latency = Obs.histogram "rpc.latency"

let measure_obs ~jobs name seeds trial =
  let saved = !Obs.metrics_enabled in
  Obs.metrics_enabled := true;
  Obs.Rollup.clear ();
  Fun.protect
    ~finally:(fun () -> Obs.metrics_enabled := saved)
    (fun () ->
      let row = measure ~jobs name seeds trial in
      let q p = Obs.Rollup.quantile h_rpc_latency p in
      let extras =
        if Obs.Rollup.count h_rpc_latency = 0 then []
        else [ ("p50_rpc_s", q 0.5); ("p99_rpc_s", q 0.99); ("p999_rpc_s", q 0.999) ]
      in
      { row with extras })

let write_bench_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"splay-bench-macro/1\",\n  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      let extras =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf ", \"%s\": %.6f" k v) r.extras)
      in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"jobs\": %d, \"ops\": %d, \"seconds\": %.6f, \"ops_per_sec\": %.0f%s}%s\n"
        r.name r.jobs r.ops r.seconds r.rate extras
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote %s\n%!" path

let run () =
  Report.section "Macro benchmarks — message-plane workloads";
  let n_chord = Common.pick ~quick:24 ~full:64 in
  let per_node = Common.pick ~quick:8 ~full:10 in
  let n_epidemic = Common.pick ~quick:60 ~full:150 in
  let rumors = Common.pick ~quick:8 ~full:12 in
  let calls = Common.pick ~quick:25_000 ~full:50_000 in
  let trials = 4 in
  let seeds base = List.init trials (fun i -> base + i) in
  let jobs_list = List.sort_uniq compare [ 1; !Common.jobs ] in
  let rows =
    List.concat_map
      (fun jobs ->
        (* explicit lets: list literals evaluate right-to-left, and the
           measurements should run (and print) in declaration order *)
        let chord = measure ~jobs "chord_events" (seeds 100) (chord_trial ~n:n_chord ~per_node) in
        let epi = measure ~jobs "epidemic_events" (seeds 200) (epidemic_trial ~n:n_epidemic ~rumors) in
        let rpc = measure ~jobs "rpc_roundtrips" (seeds 300) (rpc_trial ~calls) in
        let chord_o =
          measure_obs ~jobs "chord_events_obs" (seeds 100) (chord_trial ~n:n_chord ~per_node)
        in
        let epi_o =
          measure_obs ~jobs "epidemic_events_obs" (seeds 200) (epidemic_trial ~n:n_epidemic ~rumors)
        in
        let rpc_o = measure_obs ~jobs "rpc_roundtrips_obs" (seeds 300) (rpc_trial ~calls) in
        [ chord; epi; rpc; chord_o; epi_o; rpc_o ])
      jobs_list
  in
  write_bench_json !Common.bench_macro_out rows
