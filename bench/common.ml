(* Shared machinery for the experiment harnesses: platform bring-up,
   lookup-delay measurement, series printing. *)

open Splay
module Apps = Splay_apps
module Baselines = Splay_baselines

type scale = Quick | Full
(* Quick keeps every experiment's *shape* while trimming populations and
   durations so the whole suite runs in minutes; Full reproduces the
   paper's sizes. *)

let scale = ref Quick

let pick ~quick ~full = match !scale with Quick -> quick | Full -> full

(* Trial fan-out width (--jobs N). Independent trials of an experiment run
   on this many domains via Splay_sim.Pool; per-trial outputs are merged
   in trial-index order, so figure output is byte-identical for any value. *)
let jobs = ref 1

let par_map f xs = Pool.map ~jobs:!jobs f xs

(* Partition/worker-domain count for the parallel single-run engine
   (--domains N). Unlike --jobs, changing this changes the schedule —
   a parallel run is a pure function of (seed, domains), byte-identical
   only across different *worker* counts for the same partitioning. *)
let domains = ref 4

(* Where the micro workload section writes its machine-readable baseline
   (--bench-out=PATH). bench-smoke points this at an untracked path so
   routine `make check` runs never dirty the committed BENCH_engine.json. *)
let bench_out = ref "BENCH_engine.json"

(* Where the macro workload section writes its baseline
   (--bench-macro-out=PATH); same smoke-test redirection story. *)
let bench_macro_out = ref "BENCH_macro.json"

(* Where the scale workload section writes its node-count curve
   (--bench-scale-out=PATH); same smoke-test redirection story. *)
let bench_scale_out = ref "BENCH_scale.json"

(* Where the parallel-engine section writes its sequential-vs-parallel
   pair (--bench-par-out=PATH); same smoke-test redirection story. *)
let bench_par_out = ref "BENCH_par.json"

(* Where the open-loop serving section writes its offered-load sweep
   (--bench-serve-out=PATH); same smoke-test redirection story. *)
let bench_serve_out = ref "BENCH_serve.json"

(* Observability: --obs / --obs-trace=FILE / --critical-path, parsed and
   acted on by the shared Obs_flags helper (same flags as splay_cli). *)
let obs_begin () = Obs_flags.arm ()
let obs_end () = ignore (Obs_flags.finish () : bool)

(* Bring up a testbed + controller + daemons and run [main] to completion.
   The engine is drained up to [horizon] after main finishes its work. *)
let with_platform ?(seed = 42) ?daemon_config ?(horizon = 100_000.0) spec main =
  let p = Platform.create ~seed ?daemon_config spec in
  let result = ref None in
  ignore
    (Env.thread
       (Controller.env (Platform.controller p))
       ~name:"bench-main"
       (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown (Platform.daemons p);
             ignore
               (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
                    Env.stop (Controller.env (Platform.controller p)))))
           (fun () -> result := Some (main p))));
  ignore (Engine.run ~until:horizon (Platform.engine p));
  (match Engine.crashed (Platform.engine p) with
  | [] -> ()
  | (proc, e) :: _ ->
      failwith
        (Printf.sprintf "experiment process %s crashed: %s" (Engine.proc_name proc)
           (Printexc.to_string e)));
  match !result with Some r -> r | None -> failwith "experiment did not finish"

(* Deploy a Pastry overlay and wait for it to converge. *)
let deploy_pastry ?(config = Apps.Pastry.default_config) ?(name = "pastry") ?superset ctl ~n =
  let nodes = ref [] in
  let dep =
    Controller.deploy ctl ?superset ~name
      ~main:(Apps.Pastry.app ~config ~register:(fun x -> nodes := x :: !nodes))
      (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
  in
  (dep, nodes)

let wait_convergence ~n ~join_delay ~rounds ~interval =
  Env.sleep ((Float.of_int n *. join_delay) +. (Float.of_int rounds *. interval))

(* Issue [count] random lookups from random live origins, collecting
   delays (seconds), hop counts, and failures into streaming sinks.
   [mk_sink] picks the storage policy: figure runs keep the default exact
   backend (a few thousand samples), large-scale runs pass
   [Sink.sketch ~seed] to stay in bounded memory. *)
let measure_pastry_lookups ?(mk_sink = fun () -> Sink.exact ()) ~rng ~keyspace ~count nodes =
  let delays = mk_sink () and hops = mk_sink () in
  let failures = ref 0 in
  let eng = Engine.engine () in
  let live () = List.filter (fun x -> not (Apps.Pastry.is_stopped x)) nodes in
  for _ = 1 to count do
    match live () with
    | [] -> incr failures
    | l -> (
        let origin = Rng.pick_list rng l in
        let key = Rng.int rng keyspace in
        let t0 = Engine.now eng in
        match Apps.Pastry.lookup origin key with
        | Some (_, h) ->
            Sink.add delays (Engine.now eng -. t0);
            Sink.add hops (Float.of_int h)
        | None -> incr failures)
  done;
  (delays, hops, !failures)

(* Percentile row helper used by the figure printers. *)
let pcts = [ 5.0; 25.0; 50.0; 75.0; 90.0 ]

let pct_cells d =
  if Dist.is_empty d then List.map (fun _ -> "-") pcts
  else List.map (fun p -> Report.float_cell ~decimals:4 (Dist.percentile d p)) pcts

let pct_cells_sink s = Report.sink_pct_cells ~decimals:4 s pcts

let ms v = Report.float_cell ~decimals:1 (1000.0 *. v)

(* Compact node-count tag for workload names: 1000 -> "1k", 1000000 -> "1m". *)
let size_tag n =
  if n >= 1_000_000 && n mod 1_000_000 = 0 then Printf.sprintf "%dm" (n / 1_000_000)
  else if n >= 1_000 && n mod 1_000 = 0 then Printf.sprintf "%dk" (n / 1_000)
  else string_of_int n

let shape_check name ok = Printf.printf "  [shape %s] %s\n" (if ok then "OK" else "MISS") name
