(* The benchmark harness: one entry per table/figure of the paper's
   evaluation (Section 5), plus ablations and framework microbenchmarks.

     dune exec bench/main.exe                 # everything, quick scale
     dune exec bench/main.exe -- fig6a fig13  # a subset
     dune exec bench/main.exe -- --full       # paper-scale populations
     dune exec bench/main.exe -- --list

   Quick scale preserves every figure's *shape* (who wins, by how much,
   where the knees are) with smaller populations so the suite runs in
   minutes; --full uses the paper's sizes. *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("tab-loc", "Sec 5.1  development complexity (LoC table)", Tab_loc.run);
    ("fig3", "Fig 3    controller-to-PlanetLab RTT distribution", Fig3.run);
    ("fig4", "Fig 4    synthetic churn description", Fig4.run);
    ("fig6a", "Fig 6ab  Chord on ModelNet (routes + delays)", Fig6.run_modelnet);
    ("fig6c", "Fig 6c   Chord vs MIT Chord on PlanetLab", Fig6.run_planetlab);
    ("fig7a", "Fig 7a   Pastry vs FreePastry delay CDF", Fig7.run_a);
    ("fig7b", "Fig 7b   FreePastry delays vs density", Fig7.run_b);
    ("fig7c", "Fig 7c   SPLAY Pastry delays vs density", Fig7.run_c);
    ("fig8", "Fig 8    memory and load per instance", Fig8.run);
    ("fig9", "Fig 9    mixed PlanetLab+ModelNet deployment", Fig9.run);
    ("fig10", "Fig 10   massive failure and recovery", Fig10.run);
    ("fig11", "Fig 11   Overnet trace churn x2/x5/x10", Fig11.run);
    ("fig12", "Fig 12   deployment time vs superset", Fig12.run);
    ("fig13", "Fig 13   tree dissemination vs native CRCP", Fig13.run);
    ("fig14", "Fig 14   cooperative web cache over time", Fig14.run);
    ("abl", "Ablations superset / leafset / proximity / stagger / vivaldi", Ablations.run);
    ("micro", "Micro    framework hot paths (Bechamel)", Micro.run);
    ("macro", "Macro    message-plane workloads (Chord, epidemic, RPC)", Macro.run);
    ("scale", "Scale    single-run node-count curve (epidemic flood, Chord lookups)", Scale.run);
    ("par", "Par      parallel single-run engine vs sequential (100k epidemic)", Par_bench.run);
    ("serve", "Serve    open-loop serving fast path (offered-load sweep, Dht/Web)", Serve.run);
  ]

let aliases = [ ("fig6b", "fig6a"); ("fig6", "fig6a"); ("fig7", "fig7a"); ("loc", "tab-loc") ]

let list_experiments () =
  print_endline "available experiments:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-8s %s\n" id descr) experiments

let jobs_of_string ctx s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ ->
      Printf.eprintf "%s expects a positive integer, got %S\n" ctx s;
      exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let listing = List.mem "--list" args in
  let value_of ~pfx a =
    let lp = String.length pfx in
    if String.length a >= lp && String.sub a 0 lp = pfx then
      Some (String.sub a lp (String.length a - lp))
    else None
  in
  (* --jobs N / --jobs=N: trial fan-out width for the experiments;
     --bench-out=PATH / --bench-macro-out=PATH: where micro and macro
     write their machine-readable baselines. A bare or empty output flag
     is an error — silently falling through to the committed default path
     would overwrite the baseline the caller meant to redirect. *)
  let out_path ~flag v =
    match v with
    | "" ->
        Printf.eprintf "%s expects a path (%s=PATH)\n" flag flag;
        exit 2
    | path -> path
  in
  let rec scan_flags = function
    | [] -> ()
    | [ "--jobs" ] -> ignore (jobs_of_string "--jobs" "" : int)
    | "--jobs" :: n :: rest ->
        Common.jobs := jobs_of_string "--jobs" n;
        scan_flags rest
    | [ "--domains" ] -> ignore (jobs_of_string "--domains" "" : int)
    | "--domains" :: n :: rest ->
        Common.domains := jobs_of_string "--domains" n;
        scan_flags rest
    | ( "--bench-out" | "--bench-macro-out" | "--bench-scale-out" | "--bench-par-out"
      | "--bench-serve-out" )
      :: _ ->
        Printf.eprintf
          "output flags take inline values: --bench-out=PATH / --bench-macro-out=PATH / --bench-scale-out=PATH / --bench-par-out=PATH / --bench-serve-out=PATH\n";
        exit 2
    | a :: rest ->
        (match value_of ~pfx:"--jobs=" a with
        | Some v -> Common.jobs := jobs_of_string "--jobs" v
        | None -> (
            match value_of ~pfx:"--domains=" a with
            | Some v -> Common.domains := jobs_of_string "--domains" v
            | None -> (
                match value_of ~pfx:"--bench-out=" a with
                | Some v -> Common.bench_out := out_path ~flag:"--bench-out" v
                | None -> (
                    match value_of ~pfx:"--bench-macro-out=" a with
                    | Some v -> Common.bench_macro_out := out_path ~flag:"--bench-macro-out" v
                    | None -> (
                        match value_of ~pfx:"--bench-scale-out=" a with
                        | Some v -> Common.bench_scale_out := out_path ~flag:"--bench-scale-out" v
                        | None -> (
                            match value_of ~pfx:"--bench-par-out=" a with
                            | Some v -> Common.bench_par_out := out_path ~flag:"--bench-par-out" v
                            | None -> (
                                match value_of ~pfx:"--bench-serve-out=" a with
                                | Some v ->
                                    Common.bench_serve_out := out_path ~flag:"--bench-serve-out" v
                                | None -> ())))))));
        scan_flags rest
  in
  scan_flags args;
  List.iter (fun a -> ignore (Splay.Obs_flags.parse_arg a : bool)) args;
  let selected =
    let rec keep = function
      | [] -> []
      | ("--jobs" | "--domains") :: _ :: rest -> keep rest
      | a :: rest ->
          if String.length a >= 2 && String.sub a 0 2 = "--" then keep rest
          else
            (match List.assoc_opt a aliases with Some target -> target | None -> a) :: keep rest
    in
    keep args
  in
  if listing then list_experiments ()
  else begin
    Common.scale := (if full then Common.Full else Common.Quick);
    Printf.printf "SPLAY reproduction benchmark harness (%s scale%s)\n"
      (if full then "full/paper" else "quick")
      (if !Common.jobs > 1 then Printf.sprintf ", %d jobs" !Common.jobs else "");
    let to_run =
      match selected with
      | [] -> experiments
      | names ->
          List.filter_map
            (fun name ->
              match List.find_opt (fun (id, _, _) -> id = name) experiments with
              | Some e -> Some e
              | None ->
                  Printf.eprintf "unknown experiment %S (try --list)\n" name;
                  exit 2)
            names
    in
    List.iter
      (fun (id, _, run) ->
        let t0 = Sys.time () in
        Common.obs_begin ();
        run ();
        Common.obs_end ();
        Printf.printf "  (%s took %.1f s of CPU)\n%!" id (Sys.time () -. t0))
      to_run
  end
