(* Serving fast path under open-loop load: where is the knee, and how far
   do the toggled optimizations move it?

   One simulated deployment per row: an assembled Pastry ring with the
   serving application layered on top (Dht_store by default, Webcache for
   the [_web_] rows), loaded by the open-loop generator in lib/serve —
   a million virtual clients at O(1) words each, Poisson arrivals with a
   diurnal wave, Zipf key popularity, latency measured from the intended
   arrival time (coordinated-omission-free), drained to the last request
   so the slow tail is never censored.

   The sweep crosses offered-load steps with the serving ablations:

   - base   : FIFO owner queue, no tricks
   - batch  : same-key gets coalesce into one service slot
   - p2c    : power-of-two-choices replica selection (EWMA estimator)
   - adm    : token-bucket + SLO-budget admission control at the owner
   - allon  : all three

   With serve_cost = 2 ms a single owner sustains 500 req/s, and Zipf
   s=1.0 over 1000 keys concentrates ~13% of gets on the hottest key, so
   the baseline knee sits near 4k req/s ring-wide: the rate steps
   [2k, 4k, 8k] probe below, at, and past it. The floors file pins the
   tentpole claim — all-on p99 must stay well under baseline p99 past
   the baseline knee (ceiling_ratio_p99_s) — plus absolute collapse
   floors and the bounded words-per-idle-client ceiling at a million
   clients. One row repeats the all-on step on the parallel single-run
   engine (4 partitions) so the baseline records windows/workers/cores
   for the degenerate-aware speedup annotation. *)

open Splay
module H = Splay_serve.Harness
module L = Splay_serve.Load

let serve_row ~name ?mode scenario ~seed ~rate =
  let t0 = Unix.gettimeofday () in
  let r = H.run ?mode scenario ~seed ~rate in
  let wall = Unix.gettimeofday () -. t0 in
  let f = Float.of_int in
  let base =
    [
      ("rate", rate);
      ("clients", f scenario.H.load.L.clients);
      ("ok", f r.H.ok);
      ("miss", f r.H.misses);
      ("shed", f r.H.shed);
      ("failed", f r.H.failed);
      ("p50_s", r.H.p50);
      ("p99_s", r.H.p99);
      ("p999_s", r.H.p999);
      ("mean_s", r.H.mean_lat);
      ("served", f r.H.served);
      ("server_shed", f r.H.server_shed);
      ("batched", f r.H.batched);
      ("client_words", r.H.client_words);
      ("workers", f r.H.workers);
      ("cores", f (Pool.default_jobs ()));
    ]
  in
  let web =
    match scenario.H.target with
    | H.Web -> [ ("origin", f r.H.origin); ("stale_served", f r.H.stale) ]
    | H.Dht -> []
  in
  let par =
    match mode with
    | Some (H.Fab { parts; domains }) ->
        [ ("parts", f parts); ("domains", f domains); ("windows", f r.H.windows) ]
    | _ -> []
  in
  ( {
      Scale.name;
      nodes = scenario.H.nodes;
      ops = r.H.offered;
      (* wall includes overlay assembly + preload: the floors are about
         collapse, not peak request throughput *)
      seconds = wall;
      resident_words = 0;
      words_per_node = 0.0;
      extras = base @ web @ par;
    },
    r )

let variants =
  [
    ("base", Fun.id);
    ("batch", fun s -> { s with H.batching = true });
    ("p2c", fun s -> { s with H.p2c = true });
    ("adm", fun s -> { s with H.admission = true });
    ("allon", H.all_on);
  ]

let scenario ~target ~nodes ~clients ~duration =
  {
    H.default with
    H.nodes;
    target;
    gateways = 64;
    serve_cost = 0.002;
    load =
      { L.default with L.clients; keys = 1_000; duration; inflight = 64 };
  }

let rate_tag rate = Printf.sprintf "r%.0f" rate

let run () =
  Report.section "Serve — open-loop serving fast path (offered-load sweep)";
  let seed = 42 in
  let clients = 1_000_000 in
  let duration = Common.pick ~quick:10.0 ~full:20.0 in
  let rates = [ 2_000.0; 4_000.0; 8_000.0 ] in
  let sizes = Common.pick ~quick:[ 10_000 ] ~full:[ 10_000; 100_000 ] in
  (* The 10k deployment sweeps the full ablation cross; the (full-only)
     100k deployment re-measures just the endpoints — baseline vs all-on
     — at and past the knee, since the knee is a hot-owner property and
     does not move with ring size. *)
  let steps =
    List.concat_map
      (fun nodes ->
        let vs, rs =
          if nodes <= 10_000 then (variants, rates)
          else
            ( List.filter (fun (v, _) -> v = "base" || v = "allon") variants,
              List.filter (fun r -> r >= 4_000.0) rates )
        in
        List.concat_map
          (fun (vname, vf) ->
            List.map
              (fun rate ->
                let name =
                  Printf.sprintf "serve_dht_%s_%s_%s" (Common.size_tag nodes)
                    vname (rate_tag rate)
                in
                let s = vf (scenario ~target:H.Dht ~nodes ~clients ~duration) in
                fun () -> serve_row ~name s ~seed ~rate)
              rs)
          vs)
      sizes
  in
  (* The web rows probe the coalescing win on its natural target: a
     cold cooperative cache where concurrent first-misses on a hot url
     either all reach the origin (base) or collapse into their leader's
     fetch (coal). *)
  let web_rate = 3_000.0 in
  let web_steps =
    List.map
      (fun (vname, batching) ->
        let name =
          Printf.sprintf "serve_web_10k_%s_%s" vname (rate_tag web_rate)
        in
        let s =
          { (scenario ~target:H.Web ~nodes:10_000 ~clients ~duration) with H.batching }
        in
        fun () -> serve_row ~name s ~seed ~rate:web_rate)
      [ ("base", false); ("coal", true) ]
  in
  let measured = Common.par_map (fun step -> step ()) (steps @ web_steps) in
  (* The parallel-engine row runs outside the trial pool: Fabric brings
     up its own worker domains and must not nest inside Pool's. *)
  let par_rate = 4_000.0 in
  let par_row, _ =
    serve_row
      ~name:(Printf.sprintf "serve_dht_10k_allon_par_%s" (rate_tag par_rate))
      ~mode:(H.Fab { parts = 4; domains = !Common.domains })
      (H.all_on (scenario ~target:H.Dht ~nodes:10_000 ~clients ~duration))
      ~seed ~rate:par_rate
  in
  let find nm =
    List.find_opt (fun (row, _) -> row.Scale.name = nm) measured
  in
  (* speedup vs the sequential all-on twin at the same offered rate —
     recorded for the floors script's workers-aware gate/annotation *)
  let par_row =
    match find (Printf.sprintf "serve_dht_10k_allon_%s" (rate_tag par_rate)) with
    | Some (seq_row, _) when Scale.ops_per_sec seq_row > 0.0 ->
        {
          par_row with
          Scale.extras =
            par_row.Scale.extras
            @ [ ("speedup_x", Scale.ops_per_sec par_row /. Scale.ops_per_sec seq_row) ];
        }
    | _ -> par_row
  in
  let rows = List.map fst measured @ [ par_row ] in
  Scale.print_rows rows;
  Scale.write_json !Common.bench_serve_out rows;
  Printf.printf "  wrote %d serving workloads to %s\n" (List.length rows)
    !Common.bench_serve_out;
  (* shape: the tentpole claims, eyeballable straight from the run *)
  (match (find "serve_dht_10k_base_r8000", find "serve_dht_10k_allon_r8000") with
  | Some (_, b), Some (_, a) ->
      Common.shape_check "all-on beats baseline p99 past the knee" (a.H.p99 < b.H.p99);
      Common.shape_check "baseline is past its knee (p99 over SLO budget)"
        (b.H.p99 > 0.05)
  | _ -> Common.shape_check "knee endpoints measured" false);
  (match find "serve_dht_10k_adm_r8000" with
  | Some (_, r) -> Common.shape_check "admission sheds under overload" (r.H.server_shed > 0)
  | None -> ());
  (match (find "serve_web_10k_base_r3000", find "serve_web_10k_coal_r3000") with
  | Some (_, b), Some (_, c) ->
      Common.shape_check "coalescing saves origin fetches" (c.H.origin < b.H.origin);
      Common.shape_check "no stale-beyond-TTL serves" (b.H.stale = 0 && c.H.stale = 0)
  | _ -> ());
  match find "serve_dht_10k_base_r2000" with
  | Some (_, r) ->
      Common.shape_check "a million clients at O(1) words each"
        (r.H.client_words < 8.0)
  | None -> ()
