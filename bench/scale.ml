(* Scale curve: how large can ONE simulated deployment grow on one core?

   Two workloads, each as a single run (no controller, no daemons — the
   instances talk straight through the network model):

   - epidemic_N: an N-node one-way gossip flood over a random circulant
     peer graph. One rumor injected at node 0; the run ends when the
     flood has burnt out. Throughput is delivered messages per wall
     second; coverage is the fraction of nodes reached.
   - chord_N: an N-node Chord ring warm-started with Chord.assemble
     (converged fingers, no join traffic, no stabilizers), then random
     lookups from a pool of driver fibers. Throughput is completed
     lookups per wall second; hop counts and latencies are recorded
     through a bounded-memory Sink.sketch, as a million-sample exact
     collector would defeat the point.

   Every run uses the compact testbed (Testbed.synthetic): hash-seeded
   O(1) latency, struct-of-arrays per-host state, no host records. The
   rows land in BENCH_scale.json; the 10k rows carry CI floors
   (ops/sec) and ceilings (resident words per node) checked by
   scripts/check_bench_floors.sh, so a memory regression that would push
   the million-node run out of budget trips the smoke test long before
   anyone runs a million nodes. *)

open Splay
module Apps = Splay_apps

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

type row = {
  name : string;
  nodes : int;
  ops : int;
  seconds : float;
  resident_words : int; (* live words after setup, before the run *)
  words_per_node : float;
  extras : (string * float) list; (* workload-specific numeric fields *)
}

let ops_per_sec r = if r.seconds > 0.0 then Float.of_int r.ops /. r.seconds else 0.0

(* Metrics-plane variants ([_obs] rows): the same single runs with
   windowed rollups and per-host telemetry sampling enabled. The paired
   rows put a number on the metrics overhead at scale — wall clock and
   resident words against the plain twin — which is exactly what the
   floors file guards. *)
let h_link_wait = Obs.histogram "net.link_wait"
let h_lookup = Obs.histogram "chord.lookup_s"

let with_metrics ~obs f =
  if not obs then f ()
  else begin
    let saved = !Obs.metrics_enabled in
    Obs.metrics_enabled := true;
    Obs.Rollup.clear ();
    Fun.protect ~finally:(fun () -> Obs.metrics_enabled := saved) f
  end

(* ---------- epidemic flood ---------- *)

let epidemic_run ?(obs = false) ~n ~seed () =
  with_metrics ~obs @@ fun () ->
  let engine = Engine.create ~seed () in
  let tb = Testbed.synthetic ~hosts:n (Engine.rng engine) in
  let net = Net.create engine tb in
  let graph_rng = Rng.split (Engine.rng engine) in
  let base = live_words () in
  let addrs = Array.init n (fun i -> Addr.make i 9000) in
  (* Peer graph: a fixed set of random ring strides shared by every node
     (a random circulant digraph — an expander with high probability).
     Shared strides mean the per-node footprint is just the 8-element
     peer list, not a per-node sample of the whole population. *)
  let degree = 8 in
  let strides = Array.init degree (fun _ -> 1 + Rng.int graph_rng (max 1 (n - 1))) in
  let config = { Apps.Epidemic.fanout = 6; rpc_timeout = 5.0; oneway = true } in
  let nodes = Array.make n None in
  let env0 = ref None in
  let env_acc = ref [] in
  for i = 0 to n - 1 do
    let peers = Array.to_list (Array.map (fun s -> addrs.((i + s) mod n)) strides) in
    let env = Env.create net ~me:addrs.(i) ~nodes:peers in
    if i = 0 then env0 := Some env;
    if obs then env_acc := env :: !env_acc;
    Apps.Epidemic.app ~config ~register:(fun x -> nodes.(i) <- Some x) env
  done;
  let envs = if obs then Array.of_list (List.rev !env_acc) else [||] in
  env_acc := [];
  let resident = live_words () - base in
  let origin = match nodes.(0) with Some x -> x | None -> assert false in
  let env0 = match !env0 with Some e -> e | None -> assert false in
  ignore (Env.thread env0 ~name:"rumor-origin" (fun () -> Apps.Epidemic.broadcast origin "r0"));
  if obs then Telemetry.monitor engine (fun () -> Telemetry.sample_envs envs);
  let t0 = Unix.gettimeofday () in
  ignore (Engine.run engine);
  let wall = Unix.gettimeofday () -. t0 in
  let covered = ref 0 in
  Array.iter
    (function
      | Some x when Apps.Epidemic.has_received x "r0" -> incr covered
      | _ -> ())
    nodes;
  let delivered = Net.messages_sent net - Net.messages_dropped net in
  {
    name = Printf.sprintf "epidemic_%s%s" (Common.size_tag n) (if obs then "_obs" else "");
    nodes = n;
    ops = delivered;
    seconds = wall;
    resident_words = resident;
    words_per_node = Float.of_int resident /. Float.of_int n;
    extras =
      ("coverage", Float.of_int !covered /. Float.of_int n)
      ::
      (if obs then
         [
           ("p50_link_wait_s", Obs.Rollup.quantile h_link_wait 0.5);
           ("p99_link_wait_s", Obs.Rollup.quantile h_link_wait 0.99);
         ]
       else []);
  }

(* ---------- epidemic flood, parallel engine ---------- *)

(* The same flood as {!epidemic_run}, but as ONE deployment spread over
   [parts] engine partitions (Fabric) and executed on up to [domains]
   worker domains. Plain rows only: the run itself is deterministic in
   (seed, parts), but bench-side telemetry sampling would read host
   state across partitions mid-window, so the metrics twins stay
   sequential. Extras record what the speedup floor needs: the partition
   count, how many workers the machine actually granted, the cores it
   could have granted, and the window count (virtual span / lookahead —
   the barrier overhead driver). *)
let epidemic_par_run ~domains ~parts ~n ~seed () =
  let fab = Fabric.create ~seed ~hosts:n ~parts () in
  let graph_rng = Rng.split (Engine.rng (Fabric.engine fab 0)) in
  let base = live_words () in
  let addrs = Array.init n (fun i -> Addr.make i 9000) in
  let degree = 8 in
  let strides = Array.init degree (fun _ -> 1 + Rng.int graph_rng (max 1 (n - 1))) in
  let config = { Apps.Epidemic.fanout = 6; rpc_timeout = 5.0; oneway = true } in
  let nodes = Array.make n None in
  let env0 = ref None in
  for i = 0 to n - 1 do
    let peers = Array.to_list (Array.map (fun s -> addrs.((i + s) mod n)) strides) in
    let env = Env.create (Fabric.net_of_host fab i) ~me:addrs.(i) ~nodes:peers in
    if i = 0 then env0 := Some env;
    Apps.Epidemic.app ~config ~register:(fun x -> nodes.(i) <- Some x) env
  done;
  let resident = live_words () - base in
  let origin = match nodes.(0) with Some x -> x | None -> assert false in
  let env0 = match !env0 with Some e -> e | None -> assert false in
  ignore (Env.thread env0 ~name:"rumor-origin" (fun () -> Apps.Epidemic.broadcast origin "r0"));
  let t0 = Unix.gettimeofday () in
  let info = Fabric.run ~domains fab in
  let wall = Unix.gettimeofday () -. t0 in
  let covered = ref 0 in
  Array.iter
    (function
      | Some x when Apps.Epidemic.has_received x "r0" -> incr covered
      | _ -> ())
    nodes;
  let delivered = Fabric.messages_sent fab - Fabric.messages_dropped fab in
  {
    name = Printf.sprintf "epidemic_par_%s" (Common.size_tag n);
    nodes = n;
    ops = delivered;
    seconds = wall;
    resident_words = resident;
    words_per_node = Float.of_int resident /. Float.of_int n;
    extras =
      [
        ("coverage", Float.of_int !covered /. Float.of_int n);
        ("domains", Float.of_int domains);
        ("workers", Float.of_int (Dpool.effective (min domains parts)));
        ("cores", Float.of_int (Pool.default_jobs ()));
        ("windows", Float.of_int info.Par.windows);
      ];
  }

(* ---------- chord lookups ---------- *)

let chord_run ?(obs = false) ~n ~seed ~lookups () =
  with_metrics ~obs @@ fun () ->
  let engine = Engine.create ~seed () in
  let tb = Testbed.synthetic ~hosts:n (Engine.rng engine) in
  let net = Net.create engine tb in
  let config = Apps.Chord.default_config in
  let md = Splay_runtime.Misc.pow2 config.Apps.Chord.m in
  let base = live_words () in
  (* evenly spaced ids: unique, sorted, and the ring array is shared
     read-only by every instance's fingers *)
  let spacing = max 1 (md / n) in
  let ring = Array.init n (fun i -> Apps.Node.make ~id:(i * spacing) ~addr:(Addr.make i 9000)) in
  let nodes = Array.make n None in
  for i = 0 to n - 1 do
    let env = Env.create net ~me:ring.(i).Apps.Node.addr in
    Apps.Chord.assemble ~config ~ring ~index:i ~register:(fun c -> nodes.(i) <- Some c) env
  done;
  let resident = live_words () - base in
  let rng = Rng.split (Engine.rng engine) in
  (* bounded-memory stats: a 100k-node run records every lookup without
     holding every sample *)
  let lat = Sink.sketch ~capacity:2048 ~seed:(seed + 1) () in
  let hops = Sink.sketch ~capacity:2048 ~seed:(seed + 2) () in
  let completed = ref 0 and wrong = ref 0 in
  (* expected owner of [key]: first ring id at or after it (mod wrap) *)
  let expected key =
    let i = (key + spacing - 1) / spacing in
    if i >= n then ring.(0).Apps.Node.id else ring.(i).Apps.Node.id
  in
  let drivers = min 32 n in
  let per = max 1 (lookups / drivers) in
  for d = 0 to drivers - 1 do
    ignore (d : int);
    let c = match nodes.(Rng.int rng n) with Some c -> c | None -> assert false in
    ignore
      (Env.thread (Apps.Chord.node_env c) ~name:"lookup-driver" (fun () ->
           for _ = 1 to per do
             let key = Rng.int rng md in
             let t0 = Engine.now engine in
             match Apps.Chord.lookup c key with
             | Some (owner, h) ->
                 incr completed;
                 Sink.add lat (Engine.now engine -. t0);
                 Obs.observe h_lookup (Engine.now engine -. t0);
                 Sink.add hops (Float.of_int h);
                 if owner.Apps.Node.id <> expected key then incr wrong
             | None -> ()
           done))
  done;
  let t0 = Unix.gettimeofday () in
  ignore (Engine.run engine);
  let wall = Unix.gettimeofday () -. t0 in
  Common.shape_check
    (Printf.sprintf "chord %d: all %d lookups correct" n !completed)
    (!wrong = 0 && !completed > 0);
  {
    name = Printf.sprintf "chord_%s%s" (Common.size_tag n) (if obs then "_obs" else "");
    nodes = n;
    ops = !completed;
    seconds = wall;
    resident_words = resident;
    words_per_node = Float.of_int resident /. Float.of_int n;
    extras =
      [
        ("mean_hops", Sink.mean hops);
        ("p99_hops", if Sink.is_empty hops then 0.0 else Sink.quantile hops 0.99);
        ("p50_lookup_s", if Sink.is_empty lat then 0.0 else Sink.quantile lat 0.5);
        ("p99_lookup_s", if Sink.is_empty lat then 0.0 else Sink.quantile lat 0.99);
      ]
      @ (* the rollup sees every lookup (the sketch subsamples), so the obs
           rows carry exact-count log-bucket percentiles up to p999 *)
      (if obs then
         let rq p = Obs.Rollup.quantile h_lookup p in
         [
           ("ru_p50_lookup_s", rq 0.5);
           ("ru_p99_lookup_s", rq 0.99);
           ("ru_p999_lookup_s", rq 0.999);
         ]
       else []);
  }

(* ---------- harness ---------- *)

let write_json path rows =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"splay-bench-scale/1\",\n  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      let extras =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf ", \"%s\": %.6f" k v) r.extras)
      in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"nodes\": %d, \"ops\": %d, \"seconds\": %.6f, \"ops_per_sec\": %.0f, \"resident_words\": %d, \"words_per_node\": %.1f%s}%s\n"
        r.name r.nodes r.ops r.seconds (ops_per_sec r) r.resident_words r.words_per_node extras
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

let print_rows rows =
  Report.table
    ~header:[ "workload"; "nodes"; "ops"; "wall s"; "ops/s"; "words/node"; "detail" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.nodes;
           string_of_int r.ops;
           Report.float_cell ~decimals:2 r.seconds;
           Report.float_cell ~decimals:0 (ops_per_sec r);
           Report.float_cell ~decimals:0 r.words_per_node;
           String.concat " "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%.4g" k v) r.extras);
         ])
       rows)

let run () =
  Report.section "Scale — single-run node-count curve (one core)";
  let ep_sizes = Common.pick ~quick:[ 1_000; 10_000 ] ~full:[ 1_000; 10_000; 100_000; 1_000_000 ] in
  let ch_sizes = Common.pick ~quick:[ 1_000; 10_000 ] ~full:[ 1_000; 10_000; 100_000 ] in
  (* metrics-plane twins: 10k everywhere (the guarded smoke size), plus
     the full-scale flagships so the committed baseline records the
     metrics overhead where it hurts most. A twin runs interleaved with
     its plain row — plain, obs, plain, obs — keeping each variant's best
     wall clock: consecutive million-node runs in one process see heap
     and machine states that differ by tens of percent (far more than
     the overhead being measured), and min-of-interleaved keeps a slow
     slot from landing the penalty on either side of the ratio. *)
  let ep_obs_sizes = Common.pick ~quick:[ 10_000 ] ~full:[ 10_000; 1_000_000 ] in
  let ch_obs_sizes = Common.pick ~quick:[ 10_000 ] ~full:[ 10_000; 100_000 ] in
  let min_row (a : row) b = if b.seconds < a.seconds then b else a in
  let paired ~repeats plain obs =
    let rec go i (bp, bo) =
      if i >= repeats then [ bp; bo ] else go (i + 1) (min_row bp (plain ()), min_row bo (obs ()))
    in
    go 1 (plain (), obs ())
  in
  let rows =
    List.concat_map
      (fun n ->
        let plain () = epidemic_run ~n ~seed:11 () in
        if List.mem n ep_obs_sizes then
          paired
            ~repeats:(if n >= 1_000_000 then 2 else 1)
            plain
            (fun () -> epidemic_run ~obs:true ~n ~seed:11 ())
        else [ plain () ])
      ep_sizes
    @ (* parallel-engine twins of the epidemic rows: same workload, same
         seed, one deployment over [domains] partitions *)
    List.map
      (fun n ->
        epidemic_par_run ~domains:!Common.domains ~parts:!Common.domains ~n ~seed:11 ())
      (Common.pick ~quick:[ 10_000 ] ~full:[ 10_000; 100_000 ])
    @ List.concat_map
        (fun n ->
          let lookups = min 2_000 (n * 2) in
          chord_run ~n ~seed:23 ~lookups ()
          :: (if List.mem n ch_obs_sizes then [ chord_run ~obs:true ~n ~seed:23 ~lookups () ] else []))
        ch_sizes
  in
  print_rows rows;
  List.iter
    (fun r ->
      match List.assoc_opt "coverage" r.extras with
      | Some c ->
          Common.shape_check (Printf.sprintf "%s: flood covers the graph (%.1f%%)" r.name (100.0 *. c))
            (c > 0.9)
      | None -> ())
    rows;
  write_json !Common.bench_scale_out rows;
  Report.kv "baseline written" !Common.bench_scale_out
