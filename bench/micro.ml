(* Bechamel microbenchmarks for the hot paths of the framework itself: the
   event queue, the PRNG, SHA-1, the codec, ring arithmetic, and one full
   simulated RPC. These are wall-clock costs of the *simulator*, reported
   in nanoseconds per operation.

   A second section runs whole-workload throughput loops over the engine
   (schedule/cancel churn, schedule/pop chains, spawn/suspend) and records
   them to BENCH_engine.json so later changes can be compared against a
   machine-readable baseline. *)

open Bechamel
open Toolkit
open Splay

let bench_eheap () =
  let h = Eheap.create () in
  for i = 0 to 63 do
    Eheap.push h ~at:(Float.of_int (i * 7 mod 64)) ~seq:i i
  done;
  Staged.stage (fun () ->
      Eheap.push h ~at:17.0 ~seq:1_000_000 17;
      ignore (Eheap.pop h))

let bench_engine_schedule_cancel () =
  let e = Engine.create () in
  Staged.stage (fun () ->
      let id = Engine.schedule e ~delay:1000.0 (fun () -> ()) in
      Engine.cancel e id)

let bench_engine_schedule_pop () =
  let e = Engine.create () in
  (* standing population so pops exercise a realistically deep heap *)
  for j = 0 to 999 do
    ignore (Engine.schedule e ~delay:(1.0e12 +. Float.of_int j) (fun () -> ()))
  done;
  Staged.stage (fun () ->
      ignore (Engine.schedule e ~delay:0.0 (fun () -> ()));
      ignore (Engine.step e))

let bench_rng () =
  let r = Rng.create 1 in
  Staged.stage (fun () -> ignore (Rng.exponential r ~mean:1.0))

(* The pre-alias Zipf sampler, kept here as the before/after baseline:
   materialized CDF + binary search, O(log n) cache-missing probes per
   draw. [Rng.Zipf] proper is now a Walker alias table. *)
module Zipf_cdf = struct
  type t = { cdf : float array }

  let create ~n ~s =
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (1.0 /. (Float.of_int (i + 1) ** s));
      cdf.(i) <- !acc
    done;
    let total = !acc in
    for i = 0 to n - 1 do
      cdf.(i) <- cdf.(i) /. total
    done;
    { cdf }

  let draw z rng =
    let u = Rng.float rng 1.0 in
    let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1
end

let zipf_n = 1_000_000

let bench_zipf_alias () =
  let z = Rng.Zipf.create ~n:zipf_n ~s:1.0 in
  let r = Rng.create 1 in
  Staged.stage (fun () -> ignore (Rng.Zipf.draw z r))

let bench_zipf_cdf () =
  let z = Zipf_cdf.create ~n:zipf_n ~s:1.0 in
  let r = Rng.create 1 in
  Staged.stage (fun () -> ignore (Zipf_cdf.draw z r))

let bench_sha1 () =
  let input = String.make 1024 'a' in
  Staged.stage (fun () -> ignore (Crypto.sha1 input))

let bench_codec () =
  let v =
    Codec.Assoc
      [
        ("node", Codec.Assoc [ ("id", Codec.Int 123_456); ("a", Codec.String "42:2001") ]);
        ("hops", Codec.Int 3);
        ("args", Codec.List [ Codec.Int 1; Codec.String "x"; Codec.Bool true ]);
      ]
  in
  Staged.stage (fun () -> ignore (Codec.decode (Codec.encode v)))

let bench_between () =
  Staged.stage (fun () ->
      ignore (Misc.between 123_456 42 999_999 ~modulus:(1 lsl 24) ~incl_lo:false ~incl_hi:true))

let bench_simulated_rpc () =
  Staged.stage (fun () ->
      (* one complete engine run: two endpoints, one call/reply *)
      let eng = Engine.create ~seed:1 () in
      let tb = Testbed.cluster ~n:2 (Engine.rng eng) in
      let net = Net.create eng tb in
      let server = Env.create net ~me:(Addr.make 0 2000) in
      let client = Env.create net ~me:(Addr.make 1 2000) in
      Rpc.server server [ ("echo", fun args -> Codec.List args) ];
      ignore
        (Env.thread client (fun () ->
             ignore (Rpc.call client server.Env.me "echo" [ Codec.Int 42 ])));
      ignore (Engine.run eng))

let tests =
  Test.make_grouped ~name:"splay"
    [
      Test.make ~name:"event heap push+pop (64 entries)" (bench_eheap ());
      Test.make ~name:"engine schedule+cancel" (bench_engine_schedule_cancel ());
      Test.make ~name:"engine schedule+pop (1k standing)" (bench_engine_schedule_pop ());
      Test.make ~name:"rng exponential draw" (bench_rng ());
      Test.make ~name:"zipf draw alias (n=1M)" (bench_zipf_alias ());
      Test.make ~name:"zipf draw cdf baseline (n=1M)" (bench_zipf_cdf ());
      Test.make ~name:"sha1 (1 KiB)" (bench_sha1 ());
      Test.make ~name:"codec encode+decode (rpc reply)" (bench_codec ());
      Test.make ~name:"ring between" (bench_between ());
      Test.make ~name:"simulated rpc (end to end)" (bench_simulated_rpc ());
    ]

(* --- whole-workload engine throughput, recorded to BENCH_engine.json --- *)

(* RPC-timeout-like churn: schedule a far-future timeout, then cancel it.
   This is the workload the flag-based cancel + lazy compaction targets;
   the pre-PR tombstone table held every cancelled event in the heap. *)
let sched_cancel n () =
  let e = Engine.create () in
  for i = 1 to n do
    let id = Engine.schedule e ~delay:(1000.0 +. Float.of_int (i land 1023)) (fun () -> ()) in
    Engine.cancel e id
  done;
  ignore (Engine.run e);
  2 * n

(* A chain of events each scheduling the next, over a standing population
   of 1000 pending events: the figure experiments' steady state. *)
let sched_pop n () =
  let e = Engine.create () in
  let live = ref 0 in
  let rec kick i =
    if i < n then
      ignore
        (Engine.schedule e ~delay:(Float.of_int (i land 63)) (fun () ->
             incr live;
             kick (i + 1)))
  in
  kick 0;
  for j = 0 to 999 do
    ignore (Engine.schedule e ~delay:(Float.of_int (100 + j)) (fun () -> ()))
  done;
  ignore (Engine.run e);
  n

(* Process churn: spawn cooperative processes that each suspend/resume a
   few times, measuring the effect-handler and context-restore path. *)
let spawn_suspend n () =
  let e = Engine.create () in
  for i = 1 to n do
    ignore
      (Engine.spawn e (fun () ->
           for _ = 1 to 8 do
             Engine.sleep (Float.of_int (i land 7))
           done))
  done;
  ignore (Engine.run e);
  n * 9

(* The same lifecycle ops over a small standing population: [spawn_suspend]
   above round-robins tens of thousands of fibers, so at scale it measures
   the memory system walking a working set far beyond L2 as much as the
   scheduler; this variant keeps ~100 fibers live and is the cache-resident
   cost of spawn/sleep/resume itself. *)
let spawn_suspend_hot n () =
  let e = Engine.create () in
  let rounds = n / 100 in
  for r = 1 to rounds do
    for i = 1 to 100 do
      ignore
        (Engine.spawn e (fun () ->
             for _ = 1 to 8 do
               Engine.sleep (Float.of_int ((r + i) land 7))
             done))
    done;
    ignore (Engine.run e)
  done;
  rounds * 100 * 9

let time_workload (name, f) =
  let t0 = Unix.gettimeofday () in
  let ops = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let rate = Float.of_int ops /. dt in
  Printf.printf "  %-24s %12.0f ops/s  (%d ops in %.3f s)\n%!" name rate ops dt;
  (name, ops, dt, rate)

let json_escape s = String.concat "\\\"" (String.split_on_char '"' s)

let write_bench_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"splay-bench-engine/1\",\n  \"workloads\": [\n";
  List.iteri
    (fun i (name, ops, dt, rate) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ops\": %d, \"seconds\": %.6f, \"ops_per_sec\": %.0f}%s\n"
        (json_escape name) ops dt rate
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote %s\n%!" path

let run () =
  Report.section "Microbenchmarks — framework hot paths (Bechamel)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.sprintf "%.0f" t
          | _ -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        [ name; est; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Report.table ~header:[ "benchmark"; "ns/op"; "r²" ] rows;
  Report.section "Engine throughput workloads";
  let churn = Common.pick ~quick:500_000 ~full:2_000_000 in
  let chain = Common.pick ~quick:200_000 ~full:1_000_000 in
  let procs = Common.pick ~quick:20_000 ~full:100_000 in
  let recorded =
    List.map time_workload
      [
        ("schedule_cancel_churn", sched_cancel churn);
        ("schedule_pop_chain", sched_pop chain);
        ("spawn_suspend", spawn_suspend procs);
        ("spawn_suspend_hot", spawn_suspend_hot procs);
      ]
  in
  write_bench_json !Common.bench_out recorded
