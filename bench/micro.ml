(* Bechamel microbenchmarks for the hot paths of the framework itself: the
   event queue, the PRNG, SHA-1, the codec, ring arithmetic, and one full
   simulated RPC. These are wall-clock costs of the *simulator*, reported
   in nanoseconds per operation. *)

open Bechamel
open Toolkit
open Splay

let bench_heap () =
  let h = Heap.create ~cmp:Int.compare in
  for i = 0 to 63 do
    Heap.push h i
  done;
  Staged.stage (fun () ->
      Heap.push h 17;
      ignore (Heap.pop h))

let bench_rng () =
  let r = Rng.create 1 in
  Staged.stage (fun () -> ignore (Rng.exponential r ~mean:1.0))

let bench_sha1 () =
  let input = String.make 1024 'a' in
  Staged.stage (fun () -> ignore (Crypto.sha1 input))

let bench_codec () =
  let v =
    Codec.Assoc
      [
        ("node", Codec.Assoc [ ("id", Codec.Int 123_456); ("a", Codec.String "42:2001") ]);
        ("hops", Codec.Int 3);
        ("args", Codec.List [ Codec.Int 1; Codec.String "x"; Codec.Bool true ]);
      ]
  in
  Staged.stage (fun () -> ignore (Codec.decode (Codec.encode v)))

let bench_between () =
  Staged.stage (fun () ->
      ignore (Misc.between 123_456 42 999_999 ~modulus:(1 lsl 24) ~incl_lo:false ~incl_hi:true))

let bench_simulated_rpc () =
  Staged.stage (fun () ->
      (* one complete engine run: two endpoints, one call/reply *)
      let eng = Engine.create ~seed:1 () in
      let tb = Testbed.cluster ~n:2 (Engine.rng eng) in
      let net = Net.create eng tb in
      let server = Env.create net ~me:(Addr.make 0 2000) in
      let client = Env.create net ~me:(Addr.make 1 2000) in
      Rpc.server server [ ("echo", fun args -> Codec.List args) ];
      ignore
        (Env.thread client (fun () ->
             ignore (Rpc.call client server.Env.me "echo" [ Codec.Int 42 ])));
      ignore (Engine.run eng))

let tests =
  Test.make_grouped ~name:"splay"
    [
      Test.make ~name:"heap push+pop (64 entries)" (bench_heap ());
      Test.make ~name:"rng exponential draw" (bench_rng ());
      Test.make ~name:"sha1 (1 KiB)" (bench_sha1 ());
      Test.make ~name:"codec encode+decode (rpc reply)" (bench_codec ());
      Test.make ~name:"ring between" (bench_between ());
      Test.make ~name:"simulated rpc (end to end)" (bench_simulated_rpc ());
    ]

let run () =
  Report.section "Microbenchmarks — framework hot paths (Bechamel)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.sprintf "%.0f" t
          | _ -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        [ name; est; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Report.table ~header:[ "benchmark"; "ns/op"; "r²" ] rows
