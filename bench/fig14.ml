(* Figure 14: the cooperative web cache (Squirrel-like, on Pastry) under a
   continuous load of 100 requests/second drawn from a Zipf popularity
   distribution over 42,000 URLs. The paper reports a steady ~77.6% hit
   ratio over weeks, cached accesses served in 25-100 ms (75th percentile)
   and non-cached ones in 1-2 s. *)

open Splay
module Apps = Splay_apps

let run () =
  Report.section "Figure 14 — cooperative web cache: delays and hit ratio over time";
  let nodes_count = Common.pick ~quick:50 ~full:100 in
  let duration = Common.pick ~quick:1800.0 ~full:14_400.0 in
  let urls = Common.pick ~quick:20_000 ~full:42_000 in
  let rate = Common.pick ~quick:50.0 ~full:100.0 in
  let bin = duration /. 8.0 in
  let delays, hit_counter, req_counter, hits_total, reqs_total =
    Common.with_platform ~seed:14 ~horizon:(duration *. 4.0) (Platform.Cluster 11) (fun p ->
        let ctl = Platform.controller p in
        let caches = ref [] in
        let wc_config = Apps.Webcache.default_config in
        let main env =
          Apps.Pastry.app
            ~config:{ Apps.Pastry.default_config with join_delay_per_position = 0.1 }
            ~register:(fun pn -> caches := Apps.Webcache.create ~config:wc_config pn :: !caches)
            env
        in
        ignore
          (Controller.deploy ctl ~name:"webcache" ~main
             (Descriptor.make ~bootstrap:(Descriptor.Head 1) nodes_count));
        Env.sleep ((Float.of_int nodes_count *. 0.1) +. 150.0);
        let eng = Platform.engine p in
        let rng = Rng.split (Engine.rng eng) in
        let zipf = Rng.Zipf.create ~n:urls ~s:1.2 in
        let t0 = Engine.now eng in
        let delays = Series.create ~bin_width:bin in
        let hit_c = Series.Counter.create ~bin_width:bin in
        let req_c = Series.Counter.create ~bin_width:bin in
        let hits = ref 0 and reqs = ref 0 in
        let stop = ref false in
        (* [workers] client processes share the request rate *)
        let workers = 20 in
        for _ = 1 to workers do
          ignore
            (Env.thread (Controller.env ctl) (fun () ->
                 let lrng = Rng.split rng in
                 while not !stop do
                   Env.sleep (Rng.exponential lrng ~mean:(Float.of_int workers /. rate));
                   let url = Printf.sprintf "http://ircache.example/%d" (Rng.Zipf.draw zipf lrng) in
                   let client = Rng.pick_list lrng !caches in
                   let rel = Engine.now eng -. t0 in
                   let _, outcome, delay = Apps.Webcache.get client url in
                   Series.Counter.incr req_c ~time:rel;
                   incr reqs;
                   Series.add delays ~time:rel delay;
                   match outcome with
                   | `Hit ->
                       Series.Counter.incr hit_c ~time:rel;
                       incr hits
                   | `Miss | `Failed | `Shed -> ()
                 done))
        done;
        Env.sleep duration;
        stop := true;
        (delays, hit_c, req_c, !hits, !reqs))
  in
  Report.table
    ~header:
      ([ "t (h)" ] @ Report.percentile_header Common.pcts @ [ "(ms)"; "hit ratio %" ])
    (List.map
       (fun (edge, d) ->
         let h = Series.Counter.get hit_counter ~time:edge in
         let r = Series.Counter.get req_counter ~time:edge in
         let ratio = if r = 0 then 0.0 else 100.0 *. Float.of_int h /. Float.of_int r in
         (Report.float_cell ~decimals:2 (edge /. 3600.0) :: Common.pct_cells d)
         @ [ ""; Report.float_cell ~decimals:1 ratio ])
       (Series.bins delays));
  let overall = 100.0 *. Float.of_int hits_total /. Float.of_int (max 1 reqs_total) in
  Report.kvf "requests served" "%d" reqs_total;
  Report.kvf "overall hit ratio" "%.1f%% (paper: 77.6%%)" overall;
  Common.shape_check "hit ratio in the paper's regime (60-90%)" (overall > 60.0 && overall < 90.0);
  (* hit ratio stable after warmup *)
  let ratios =
    List.filter_map
      (fun (edge, _) ->
        let h = Series.Counter.get hit_counter ~time:edge in
        let r = Series.Counter.get req_counter ~time:edge in
        if r = 0 then None else Some (Float.of_int h /. Float.of_int r))
      (Series.bins delays)
  in
  (match ratios with
  | _warmup :: rest when rest <> [] ->
      let lo = List.fold_left Float.min 1.0 rest and hi = List.fold_left Float.max 0.0 rest in
      Common.shape_check
        (Printf.sprintf "hit ratio stable after warmup (%.1f%%..%.1f%%)" (100.0 *. lo)
           (100.0 *. hi))
        (hi -. lo < 0.15)
  | _ -> ());
  (* cached accesses are orders of magnitude faster than origin fetches *)
  let all = Series.bins delays |> List.map snd in
  let merged = List.fold_left Dist.merge (Dist.create ()) all in
  Report.kvf "delay percentiles" "p50 %.0f ms, p75 %.0f ms, p95 %.0f ms"
    (1000.0 *. Dist.percentile merged 50.0)
    (1000.0 *. Dist.percentile merged 75.0)
    (1000.0 *. Dist.percentile merged 95.0);
  Common.shape_check "75th percentile served fast (cached)"
    (Dist.percentile merged 75.0 < 0.5);
  Common.shape_check "tail dominated by origin fetches (~1-2 s)"
    (Dist.percentile merged 95.0 > 0.4)
