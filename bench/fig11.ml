(* Figure 11: Pastry on the PlanetLab model under the Overnet availability
   trace, sped up x2 / x5 / x10. Shows the churn description (population,
   joins/leaves per minute) and the lookup delay / failure-rate series. The
   paper's observation: Pastry keeps working even when as much as 14% of
   the nodes change state within one minute. *)

open Splay
module Apps = Splay_apps

let run_speedup ~speedup ~base_trace =
  let trace = Transform.speedup speedup base_trace in
  let duration = Trace.duration trace in
  let init_pop = Trace.population trace ~at:0.0 in
  Common.with_platform ~seed:(110 + int_of_float speedup)
    (Platform.Planetlab (Common.pick ~quick:250 ~full:450))
    (fun p ->
      let ctl = Platform.controller p in
      let config =
        {
          Apps.Pastry.default_config with
          join_delay_per_position = 0.02;
          (* aggressive timeouts, as one would configure for live churn *)
          rpc_timeout = 2.0;
          stabilize_interval = 3.0;
        }
      in
      let dep, nodes = Common.deploy_pastry ~config ctl ~n:init_pop in
      Env.sleep ((Float.of_int init_pop *. 0.02) +. 120.0);
      let eng = Platform.engine p in
      let rng = Rng.split (Engine.rng eng) in
      let t0 = Engine.now eng in
      let delays = Series.create ~bin_width:60.0 in
      let fails = Series.Counter.create ~bin_width:60.0 in
      let totals = Series.Counter.create ~bin_width:60.0 in
      let stop = ref false in
      for _ = 1 to Common.pick ~quick:3 ~full:8 do
        ignore
          (Env.thread (Controller.env ctl) (fun () ->
               let lrng = Rng.split rng in
               while not !stop do
                 Env.sleep (0.5 +. Rng.float lrng 1.5);
                 let live = List.filter (fun x -> not (Apps.Pastry.is_stopped x)) !nodes in
                 if live <> [] then begin
                   let origin = Rng.pick_list lrng live in
                   let key = Rng.int lrng (Splay_runtime.Misc.pow2 32) in
                   let start = Engine.now eng in
                   let rel = start -. t0 in
                   Series.Counter.incr totals ~time:rel;
                   match Apps.Pastry.lookup origin key with
                   | Some _ -> Series.add delays ~time:rel (Engine.now eng -. start)
                   | None -> Series.Counter.incr fails ~time:rel
                 end
               done))
      done;
      (* new instances under churn register through the same deployment *)
      let _proc, stats = Replayer.run_trace dep trace in
      Env.sleep (duration +. 30.0);
      stop := true;
      let live_end = Controller.live_count dep in
      (delays, fails, totals, stats, live_end))

let print_one ~speedup (delays, fails, totals, stats, live_end) =
  Printf.printf "\n  -- churn x%g --\n" speedup;
  Report.kvf "events replayed" "%d joins, %d leaves (failed joins: %d)" stats.Replayer.joins
    stats.Replayer.leaves stats.Replayer.failed_joins;
  Report.kvf "population at the end" "%d" live_end;
  Report.table
    ~header:([ "t (min)" ] @ Report.percentile_header Common.pcts @ [ "(ms)"; "fail %" ])
    (List.map
       (fun (edge, d) ->
         let f = Series.Counter.get fails ~time:edge in
         let tot = Series.Counter.get totals ~time:edge in
         let rate = if tot = 0 then 0.0 else 100.0 *. Float.of_int f /. Float.of_int tot in
         (Report.float_cell ~decimals:0 (edge /. 60.0) :: Common.pct_cells d)
         @ [ ""; Report.float_cell ~decimals:1 rate ])
       (Series.bins delays))

let overall_failure_rate (_, fails, totals, _, _) =
  let f = List.fold_left (fun a (_, v) -> a + v) 0 (Series.Counter.series fails) in
  let t = List.fold_left (fun a (_, v) -> a + v) 0 (Series.Counter.series totals) in
  if t = 0 then 0.0 else Float.of_int f /. Float.of_int t

let run () =
  Report.section "Figure 11 — Pastry under the Overnet trace, sped up x2 / x5 / x10";
  let rng = Rng.create 1111 in
  let base_trace =
    Trace.synthetic_overnet
      ~concurrent:(Common.pick ~quick:120 ~full:550)
      ~duration:3000.0
      rng
  in
  Report.kvf "trace" "%d events, base churn rate %.1f%%/min" (List.length base_trace)
    (100.0 *. Trace.churn_rate base_trace ~bin:60.0);
  (* the churn description: population and joins/leaves per minute (x5) *)
  let shown = Transform.speedup 5.0 base_trace in
  Report.kv "churn description (x5)" "";
  Report.table
    ~header:[ "t (min)"; "population"; "joins/min"; "leaves/min" ]
    (List.filteri
       (fun i _ -> i mod 2 = 0)
       (List.map2
          (fun (t, pop) (_, j, l) ->
            [
              Report.float_cell ~decimals:0 (t /. 60.0);
              string_of_int pop;
              string_of_int j;
              string_of_int l;
            ])
          (Trace.population_series shown ~bin:60.0)
          (Trace.events_per_bin shown ~bin:60.0)));
  let speedups = Common.pick ~quick:[ 2.0; 10.0 ] ~full:[ 2.0; 5.0; 10.0 ] in
  let results = Common.par_map (fun s -> (s, run_speedup ~speedup:s ~base_trace)) speedups in
  List.iter (fun (s, r) -> print_one ~speedup:s r) results;
  let rates = List.map (fun (s, r) -> (s, overall_failure_rate r)) results in
  List.iter (fun (s, r) -> Report.kvf (Printf.sprintf "overall failure rate x%g" s) "%.1f%%" (100.0 *. r)) rates;
  let max_churn = Trace.churn_rate (Transform.speedup 10.0 base_trace) ~bin:60.0 in
  Report.kvf "peak churn at x10" "%.1f%% of nodes per minute (paper: ~14%%)" (100.0 *. max_churn);
  Common.shape_check "Pastry keeps a low failure rate under churn"
    (List.for_all (fun (_, r) -> r < 0.25) rates);
  Common.shape_check "failure rate grows with churn speed"
    (match rates with
    | (_, a) :: rest -> List.for_all (fun (_, b) -> b >= a -. 0.02) rest
    | [] -> false)
