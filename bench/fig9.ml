(* Figure 9: Pastry on PlanetLab, on ModelNet, and in a mixed deployment
   spanning both testbeds at once (500 + 500 in the paper). The mixed
   curve must sit between the two pure curves. *)

open Splay
module Apps = Splay_apps

let run_one ~seed spec ~n ~lookups =
  Common.with_platform ~seed spec (fun p ->
      let ctl = Platform.controller p in
      let config = { Apps.Pastry.default_config with join_delay_per_position = 0.1 } in
      let _dep, nodes = Common.deploy_pastry ~config ctl ~n in
      Env.sleep ((Float.of_int n *. 0.1) +. 150.0);
      let rng = Rng.split (Engine.rng (Platform.engine p)) in
      let delays, _, failures =
        Common.measure_pastry_lookups ~rng ~keyspace:(Splay_runtime.Misc.pow2 32) ~count:lookups
          !nodes
      in
      (delays, failures))

let run () =
  Report.section "Figure 9 — Pastry on PlanetLab, ModelNet, and mixed";
  let n = Common.pick ~quick:300 ~full:1000 in
  let lookups = Common.pick ~quick:400 ~full:1500 in
  let half = n / 2 in
  let pl, _ = run_one ~seed:91 (Platform.Planetlab (n + 20)) ~n ~lookups in
  let mn, _ = run_one ~seed:92 (Platform.Modelnet { hosts = max 1100 n; bandwidth = None }) ~n ~lookups in
  let mixed, _ =
    run_one ~seed:93 (Platform.Mixed { planetlab = half + 10; modelnet = half + 10 }) ~n ~lookups
  in
  Report.table
    ~header:[ "percentile"; "PlanetLab (s)"; "ModelNet (s)"; "Mixed (s)" ]
    (List.map
       (fun p ->
         [
           Report.float_cell ~decimals:0 p;
           Report.float_cell ~decimals:3 (Sink.percentile pl p);
           Report.float_cell ~decimals:3 (Sink.percentile mn p);
           Report.float_cell ~decimals:3 (Sink.percentile mixed p);
         ])
       [ 10.0; 25.0; 50.0; 75.0; 90.0 ]);
  let m50 = Sink.percentile mixed 50.0
  and pl50 = Sink.percentile pl 50.0
  and mn50 = Sink.percentile mn 50.0 in
  let lo = Float.min pl50 mn50 and hi = Float.max pl50 mn50 in
  Report.kvf "medians" "planetlab %.3f s, modelnet %.3f s, mixed %.3f s" pl50 mn50 m50;
  Common.shape_check "mixed deployment sits between the pure testbeds"
    (m50 >= lo *. 0.8 && m50 <= hi *. 1.3)
