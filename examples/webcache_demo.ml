(* The long-running-service use case (§5.7): a Squirrel-style cooperative
   web cache on Pastry absorbing a Zipf request stream, with the churn
   manager keeping the population steady as nodes fail underneath it.

     dune exec examples/webcache_demo.exe *)

open Splay
module Apps = Splay_apps

let () =
  let p = Platform.create ~seed:5 (Platform.Cluster 8) in
  Platform.run p (fun p ->
      let ctl = Platform.controller p in
      let caches = ref [] in
      let main env =
        Apps.Pastry.app
          ~config:{ Apps.Pastry.default_config with rpc_timeout = 3.0; stabilize_interval = 2.0 }
          ~register:(fun pn ->
            let config = { Apps.Webcache.default_config with ttl = 900.0 } in
            caches := Apps.Webcache.create ~config pn :: !caches)
          env
      in
      let dep =
        Controller.deploy ctl ~name:"webcache" ~main
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 30)
      in
      Env.sleep 90.0;

      (* hold the population at 30 while we also inject failures *)
      let maintainer = Replayer.maintain ~target:30 ~interval:15.0 dep in

      let rng = Rng.split (Engine.rng (Platform.engine p)) in
      let zipf = Rng.Zipf.create ~n:5000 ~s:1.1 in
      let hits = ref 0 and misses = ref 0 and failed = ref 0 in
      let delay_hit = Dist.create () and delay_miss = Dist.create () in

      Printf.printf "%8s %6s %8s %8s %8s\n" "t(s)" "live" "hit%" "p50 hit" "p50 miss";
      for minute = 1 to 10 do
        for _ = 1 to 120 do
          Env.sleep 0.5;
          let url = Printf.sprintf "http://demo/%d" (Rng.Zipf.draw zipf rng) in
          match !caches with
          | [] -> ()
          | cs -> (
              let live = List.filter (fun _ -> true) cs in
              let client = Rng.pick_list rng live in
              match Apps.Webcache.get client url with
              | _, `Hit, d ->
                  incr hits;
                  Dist.add delay_hit d
              | _, `Miss, d ->
                  incr misses;
                  Dist.add delay_miss d
              | _, (`Failed | `Shed), _ -> incr failed)
        done;
        (* inject a failure every other minute; the maintainer heals it *)
        if minute mod 2 = 0 then begin
          match Controller.live_members dep with
          | (_, a, _) :: _ -> Controller.crash_node dep a
          | [] -> ()
        end;
        let ratio = 100.0 *. Float.of_int !hits /. Float.of_int (max 1 (!hits + !misses)) in
        Printf.printf "%8.0f %6d %7.1f%% %7.0fms %7.0fms\n" (Platform.now p)
          (Controller.live_count dep) ratio
          (if Dist.is_empty delay_hit then 0.0 else 1000.0 *. Dist.percentile delay_hit 50.0)
          (if Dist.is_empty delay_miss then 0.0 else 1000.0 *. Dist.percentile delay_miss 50.0)
      done;
      Printf.printf
        "\ntotal: %d hits, %d misses, %d failed (failures during node crashes heal)\n" !hits
        !misses !failed;
      Engine.kill (Platform.engine p) maintainer;
      List.iter Daemon.shutdown (Platform.daemons p);
      ignore
        (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
             Env.stop (Controller.env ctl))))
