(** SPLAY for OCaml — the user-facing facade.

    One import gives the whole stack: the simulation substrate, the testbed
    and network models, the application libraries (events, RPC, sandboxed
    sockets and filesystem, logging, serialization, locks), the controller
    and daemons, the churn manager, and the simulation-testing layer
    ({!Nemesis}, {!Invariant}, {!Check_suite}, {!Check_runner} — the
    machinery behind [splay check]). {!Platform} bundles the boilerplate
    of standing up a testbed with a controller and daemons, so an experiment
    reads:

    {[
      let p = Splay.Platform.create (Splay.Platform.Planetlab 400) in
      Splay.Platform.run p (fun p ->
          let dep =
            Splay.Controller.deploy (Splay.Platform.controller p)
              ~name:"chord" ~main:chord_main
              (Splay.Descriptor.make ~bootstrap:(Head 1) 1000)
          in
          ...)
    ]} *)

(* Simulation substrate *)
module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Eheap = Splay_sim.Eheap
module Ivar = Splay_sim.Ivar
module Channel = Splay_sim.Channel
module Pool = Splay_sim.Pool
module Dpool = Splay_sim.Dpool
module Par = Splay_sim.Par

(* Observability: deterministic tracing + metrics across all layers *)
module Obs = Splay_obs.Obs
module Trace_analysis = Splay_obs.Trace_analysis
module Metrics_analysis = Splay_obs.Metrics_analysis
module Obs_flags = Splay_obs.Obs_flags

(* Statistics and reporting *)
module Dist = Splay_stats.Dist
module Summary = Splay_stats.Summary
module Series = Splay_stats.Series
module Sink = Splay_stats.Sink
module Report = Splay_stats.Report

(* Network substrate *)
module Addr = Splay_net.Addr
module Topology = Splay_net.Topology
module Latency = Splay_net.Latency
module Testbed = Splay_net.Testbed
module Net = Splay_net.Net
module Fabric = Splay_net.Fabric

(* Application libraries *)
module Misc = Splay_runtime.Misc
module Crypto = Splay_runtime.Crypto
module Codec = Splay_runtime.Codec
module Sandbox = Splay_runtime.Sandbox
module Log = Splay_runtime.Log
module Env = Splay_runtime.Env
module Events = Splay_runtime.Events
module Sb_socket = Splay_runtime.Sb_socket
module Sb_stream = Splay_runtime.Sb_stream
module Sb_fs = Splay_runtime.Sb_fs
module Rpc = Splay_runtime.Rpc
module Telemetry = Splay_runtime.Telemetry
module Locks = Splay_runtime.Locks

(* Controller side *)
module Descriptor = Splay_ctl.Descriptor
module Daemon = Splay_ctl.Daemon
module Controller = Splay_ctl.Controller

(* Churn management *)
module Script = Splay_churn.Script
module Trace = Splay_churn.Trace
module Transform = Splay_churn.Transform
module Replayer = Splay_churn.Replayer

(* Simulation testing: seed sweeps, nemeses, invariants, shrinking *)
module Nemesis = Splay_check.Nemesis
module Invariant = Splay_check.Invariant
module Check_suite = Splay_check.Suite
module Check_runner = Splay_check.Runner

(** Testbed bring-up boilerplate: engine + testbed + network + controller +
    one daemon per host, in one call. *)
module Platform = struct
  type spec =
    | Planetlab of int (** n live wide-area hosts *)
    | Modelnet of { hosts : int; bandwidth : float option }
        (** emulated cluster on a 500-router transit-stub graph *)
    | Cluster of int (** LAN machines (the paper's 11-node cluster) *)
    | Mixed of { planetlab : int; modelnet : int }

  type t = {
    engine : Engine.t;
    testbed : Testbed.t;
    net : Net.t;
    controller : Controller.t;
    daemons : Daemon.t list;
    ctl_host : Addr.host_id;
  }

  let build_testbed rng = function
    | Planetlab n -> Testbed.planetlab ~n rng
    | Modelnet { hosts; bandwidth } -> Testbed.modelnet ~hosts ?bandwidth rng
    | Cluster n -> Testbed.cluster ~n rng
    | Mixed { planetlab; modelnet } -> Testbed.mixed ~planetlab ~modelnet rng

  let create ?(seed = 42) ?daemon_config ?unseen_timeout spec =
    let engine = Engine.create ~seed () in
    let tb0 = build_testbed (Engine.rng engine) spec in
    let testbed, ctl_host = Testbed.with_extra_host tb0 in
    let net = Net.create engine testbed in
    let controller = Controller.create ?unseen_timeout net ~host:ctl_host in
    let hosts = List.init (Testbed.size tb0) Fun.id in
    let daemons = Controller.boot_daemons ?config:daemon_config controller hosts in
    { engine; testbed; net; controller; daemons; ctl_host }

  let engine t = t.engine
  let net t = t.net
  let testbed t = t.testbed
  let controller t = t.controller
  let daemons t = t.daemons
  let now t = Engine.now t.engine

  (** Run [main] as a controller-side process, then drive the simulation to
      completion (or [until]). Crashed processes make the run fail fast —
      an experiment with a dying protocol is not a result. *)
  let run ?until t main =
    ignore (Env.thread (Controller.env t.controller) ~name:"experiment-main" (fun () -> main t));
    ignore (Engine.run ?until t.engine);
    match Engine.crashed t.engine with
    | [] -> ()
    | (p, e) :: _ ->
        failwith
          (Printf.sprintf "process %s crashed: %s" (Engine.proc_name p) (Printexc.to_string e))
end
