(** Per-host resource telemetry sampled into the metrics plane.

    The paper's splayd reports each instance's load and resource
    consumption against its sandbox caps; these samplers are the
    reproduction's equivalent, feeding rollup histograms
    ([host.mem_bytes], [host.mem_frac] — fraction of the sandbox memory
    cap, finite caps only —, [host.sockets], [host.fs_bytes],
    [host.net_bytes_sent], [host.fibers], [host.inflight_rpcs]) and
    engine gauges ([engine.pending_events], [telemetry.sampled_hosts]).
    Everything goes through {!Splay_obs.Obs}, so samples are no-ops
    unless a plane is enabled, land in the current virtual-time window
    under {!Splay_obs.Obs.metrics_enabled}, and merge deterministically
    through capture/absorb. *)

val inflight_rpcs : Env.t -> int
(** Outstanding RPC calls of this instance (0 when it never called). *)

val sample_env : Env.t -> unit
(** One observation of each per-host histogram for this instance. *)

val sample_envs : ?max:int -> Env.t array -> unit
(** Sample a deterministic strided subset of at most [max] (default 1024)
    non-stopped instances — bounded sampler cost at million-instance
    scale — and set [telemetry.sampled_hosts] to the count taken. *)

val sample_engine : Splay_sim.Engine.t -> unit
(** Record the engine's pending-event count. *)

val monitor : ?interval:float -> Splay_sim.Engine.t -> (unit -> unit) -> unit
(** [monitor eng f] runs [f] (plus {!sample_engine}) every [interval]
    virtual seconds (default: the rollup window width) while the engine
    has other pending work, then stops — so an un-drained run still
    terminates. Schedule it before starting the workload. *)
