(** Remote procedure calls — the workhorse of SPLAY applications.

    Calling a remote function is almost as simple as calling a local one:
    arguments and results are {!Codec.value}s, transparently serialized (the
    serialized size is what the network model charges). Communication errors
    are reported as a result value, mirroring Lua's second return value.

    A handler runs in its own process on the callee, so it may itself block
    on RPCs (recursive routing, as in Chord's [find_successor]). *)

type error =
  | Timeout (** no reply within the deadline — the node may have failed *)
  | Remote of string (** the handler raised; message attached *)
  | Network of string (** local send refused (blacklist, budget) *)

val error_to_string : error -> string

exception Rpc_error of error

type handler = Codec.value list -> Codec.value

type options = {
  timeout : float;  (** per-attempt reply deadline, virtual seconds *)
  retries : int;  (** extra attempts after a Timeout or Network failure *)
  backoff : float;
      (** base pause before retry [n]: [backoff * 2^(n-1)] seconds
          (exponential). [0.] (the default) retries immediately, exactly
          as before the field existed. *)
  backoff_jitter : float;
      (** stretch each pause by a uniform factor in [[1, 1 + jitter]],
          drawn from the instance's dedicated RPC RNG stream
          ({!Env.rpc_rng}) — deterministic under a fixed seed, and the
          stream is only split off on first use, so policies without
          jitter leave every other stream untouched. *)
}
(** Call policy, consolidated from the scattered [?timeout] arguments.
    Retries re-send the request with a fresh id; a [Remote] error is the
    handler's answer and is never retried. *)

val default_options : options
(** [{ timeout = 120.0; retries = 0; backoff = 0.; backoff_jitter = 0. }] —
    the "standard 2 minutes" default. *)

val ping_options : options
(** [{ timeout = 5.0; retries = 0; backoff = 0.; backoff_jitter = 0. }] —
    liveness-probe policy. *)

val with_timeout : float -> options
(** [{ default_options with timeout }] — the one-field policy most call
    sites want, without spelling out a record update. *)

val server : Env.t -> (string * handler) list -> unit
(** Start the RPC server on the instance's endpoint ([rpc.server(n.port)]).
    Also enables this instance to issue calls (replies share the socket).
    Re-registering a name replaces the handler. *)

val client : Env.t -> unit
(** Enable calls without exposing any procedure (pure client). *)

val add_handler : Env.t -> string -> handler -> unit

val a_call :
  Env.t ->
  Addr.t ->
  ?timeout:float ->
  ?options:options ->
  string ->
  Codec.value list ->
  (Codec.value, error) result
(** The primary entry point — [rpc.a_call(node, proc, args, timeout)]:
    call the remote procedure and report failure as a value. The policy is
    [?options] (default {!default_options}, i.e. the "standard 2 minutes"
    the paper mentions tuning down for PlanetLab); [?timeout] is the
    common-case shorthand and overrides [options.timeout] when both are
    given, so existing [~timeout] call sites mean what they always did.

    When tracing is enabled, each logical call records one [rpc.call] span
    carrying the procedure, source, destination, payload bytes, outcome
    and total attempt count; each retry additionally records a child
    [rpc.retry] span tagged with its attempt number and the backoff delay
    it waited ([delay], seconds). The caller's trace context travels in
    the request envelope, so the callee's [rpc.serve] span — and
    everything the handler does, including nested calls — is a child of
    this call's span across nodes. *)

val call :
  Env.t -> Addr.t -> ?timeout:float -> ?options:options -> string -> Codec.value list -> Codec.value
(** [rpc.call]: like {!a_call} but raises {!Rpc_error} on failure. *)

val ping : Env.t -> ?timeout:float -> ?options:options -> Addr.t -> bool
(** Liveness probe; default policy {!ping_options} (5 s timeout). *)

val notify : Env.t -> Addr.t -> string -> Codec.value list -> unit
(** One-way call: send the request and return immediately. The handler
    runs on the callee exactly as for {!a_call}, but no reply is sent and
    nothing waits — no timer, no pending-table entry and, decisively for
    very large fan-outs, no fiber parked on the answer. Delivery is
    fire-and-forget with the network's guarantees only: a lost message,
    a partition or a dead callee is silent. Use it where the protocol has
    its own redundancy (gossip, heartbeats). *)

val a_call_opt :
  Env.t -> Addr.t -> ?options:options -> string -> Codec.value list -> (Codec.value, error) result
[@@ocaml.deprecated "use a_call (its ?options parameter subsumes this)"]
(** @deprecated Alias of {!a_call}, kept so pre-unification examples still
    build. *)

val call_opt : Env.t -> Addr.t -> ?options:options -> string -> Codec.value list -> Codec.value
[@@ocaml.deprecated "use call (its ?options parameter subsumes this)"]
(** @deprecated Alias of {!call}. *)

val ping_opt : Env.t -> ?options:options -> Addr.t -> bool
[@@ocaml.deprecated "use ping (its ?options parameter subsumes this)"]
(** @deprecated Alias of {!ping}. *)

val calls_issued : Env.t -> int
(** Number of outgoing calls this instance has made (monitoring). *)

(** {1 Wire form}

    Serialization of the RPC envelope for transports that leave the
    process — the live backend tunnels application messages between real
    daemons as these values. The caller's trace context travels in the
    encoding, so cross-process requests still stitch into one causal
    trace. *)

val payload_to_value : Net.payload -> Codec.value option
(** [Some] for RPC requests / replies; [None] for payload kinds this
    module does not own (they have no wire form here). *)

val payload_of_value : Codec.value -> Net.payload
(** Inverse of {!payload_to_value}. Raises {!Codec.Parse_error} on
    malformed input. *)
