(* Per-host resource telemetry for the metrics plane.

   The paper's splayd periodically reports each instance's load and
   resource consumption to splayctl; this is the reproduction's
   equivalent: sample an instance's sandbox accounts and runtime state
   into rollup histograms, so a window of the metrics dump answers "how
   hot were the hosts during those ten seconds" — distributionally, with
   O(buckets) memory, even at a million instances. Sampling is pull-based
   and explicit (a monitor fiber calls it on the virtual clock), so runs
   that never sample pay nothing. *)

module Obs = Splay_obs.Obs
module Engine = Splay_sim.Engine

let h_mem = Obs.histogram "host.mem_bytes"
let h_mem_frac = Obs.histogram "host.mem_frac"
let h_sockets = Obs.histogram "host.sockets"
let h_fs = Obs.histogram "host.fs_bytes"
let h_net_bytes = Obs.histogram "host.net_bytes_sent"
let h_fibers = Obs.histogram "host.fibers"
let h_inflight = Obs.histogram "host.inflight_rpcs"
let g_pending = Obs.gauge "engine.pending_events"
let g_sampled = Obs.gauge "telemetry.sampled_hosts"

let inflight_rpcs env =
  match Env.rpc_pending_opt env with None -> 0 | Some tbl -> Hashtbl.length tbl

let sample_env (env : Env.t) =
  let sb = env.Env.sandbox in
  let mem = Sandbox.memory_used sb in
  Obs.observe h_mem (Float.of_int mem);
  let lim = (Sandbox.limits sb).Sandbox.max_memory in
  (* the fraction-of-cap view only means something under a finite cap *)
  if lim > 0 && lim < max_int then Obs.observe h_mem_frac (Float.of_int mem /. Float.of_int lim);
  Obs.observe h_sockets (Float.of_int (Sandbox.sockets_open sb));
  Obs.observe h_fs (Float.of_int (Sandbox.fs_used sb));
  Obs.observe h_net_bytes (Float.of_int (Sandbox.bytes_sent sb));
  Obs.observe h_fibers (Float.of_int (Env.live_procs env));
  Obs.observe h_inflight (Float.of_int (inflight_rpcs env))

(* Million-instance runs sample a bounded, deterministic strided subset:
   the distribution is what the dashboard shows, and 1024 spread-out
   instances pin it closely enough without turning the sampler itself
   into the hot path. *)
let sample_envs ?(max = 1024) envs =
  let n = Array.length envs in
  let stride = if n <= max then 1 else (n + max - 1) / max in
  let sampled = ref 0 in
  let i = ref 0 in
  while !i < n do
    let env = envs.(!i) in
    if not (Env.is_stopped env) then begin
      sample_env env;
      incr sampled
    end;
    i := !i + stride
  done;
  Obs.gauge_set g_sampled (Float.of_int !sampled)

let sample_engine eng = Obs.gauge_set g_pending (Float.of_int (Engine.pending_events eng))

let monitor ?interval eng f =
  let interval =
    match interval with Some i -> i | None -> Splay_obs.Obs.Rollup.window ()
  in
  let rec tick () =
    f ();
    sample_engine eng;
    (* self-limiting: once the sampler's own timer is the only thing left
       in the queue, the workload has drained — stop rescheduling so
       [Engine.run] can terminate *)
    if Engine.pending_events eng > 0 then ignore (Engine.schedule eng ~delay:interval tick)
  in
  ignore (Engine.schedule eng ~delay:interval tick)
