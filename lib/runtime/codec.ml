type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Assoc of (string * value) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.17g" f in
    (* keep the token recognizable as a float (large integral values print
       bare under %g, which would decode back as Int) *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then s
    else s ^ ".0"
  end

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
  | Assoc kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let encode v =
  let b = Buffer.create 64 in
  write b v;
  Buffer.contents b

(* Size by structural recursion, mirroring [write] production by
   production — no intermediate string. RPC sizes every request and reply
   (the network model charges by the byte), so this runs on the message
   hot path; the old [String.length (encode v)] built and threw away the
   full encoding each time. [Float] still formats: its repr length
   (%.1f / %.17g with a shortest-round-trip tail) is not worth
   reimplementing, and floats are rare in RPC payloads. *)

let escaped_length s =
  let n = ref 2 (* quotes *) in
  String.iter
    (fun c ->
      n :=
        !n
        +
        match c with
        | '"' | '\\' | '\n' | '\r' | '\t' -> 2
        | c when Char.code c < 0x20 -> 6 (* \uXXXX *)
        | _ -> 1)
    s;
  !n

let int_length i =
  if i = min_int then String.length (string_of_int min_int)
  else begin
    let rec digits n = if n < 10 then 1 else 1 + digits (n / 10) in
    if i < 0 then 1 + digits (-i) else digits i
  end

let rec encoded_size = function
  | Null -> 4
  | Bool true -> 4
  | Bool false -> 5
  | Int i -> int_length i
  | Float f -> String.length (float_repr f)
  | String s -> escaped_length s
  | List vs ->
      List.fold_left (fun acc v -> acc + 1 + encoded_size v) 1 vs
      + if vs == [] then 1 else 0
  | Assoc kvs ->
      List.fold_left (fun acc (k, v) -> acc + 1 + escaped_length k + 1 + encoded_size v) 1 kvs
      + if kvs == [] then 1 else 0

(* {2 Parser} *)

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail "expected '%c' at %d, found '%c'" c st.pos d
  | None -> fail "expected '%c' at %d, found end of input" c st.pos

let parse_literal st lit v =
  let n = String.length lit in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at %d" st.pos

let parse_string_body st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents b
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char b '"'; loop ()
        | Some '\\' -> advance st; Buffer.add_char b '\\'; loop ()
        | Some 'n' -> advance st; Buffer.add_char b '\n'; loop ()
        | Some 'r' -> advance st; Buffer.add_char b '\r'; loop ()
        | Some 't' -> advance st; Buffer.add_char b '\t'; loop ()
        | Some '/' -> advance st; Buffer.add_char b '/'; loop ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code = int_of_string ("0x" ^ hex) in
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else begin
              (* 2-byte UTF-8 is enough for the control-range escapes we emit *)
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> fail "bad escape at %d" st.pos)
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec loop () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub st.src start (st.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
    match float_of_string_opt s with Some f -> Float f | None -> fail "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with Some f -> Float f | None -> fail "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at %d" st.pos
        in
        List (items [])
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Assoc []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at %d" st.pos
        in
        Assoc (fields [])
      end
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> fail "unexpected '%c' at %d" c st.pos

let decode s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing garbage at %d" st.pos;
  v

(* {2 Framing} *)

let frame payload = Printf.sprintf "%d\n%s" (String.length payload) payload

let unframe buf ~pos =
  match String.index_from_opt buf pos '\n' with
  | None -> None
  | Some nl -> (
      let header = String.sub buf pos (nl - pos) in
      match int_of_string_opt header with
      | None -> fail "corrupt frame header %S" header
      | Some len ->
          if len < 0 then fail "negative frame length"
          else if nl + 1 + len > String.length buf then None
          else Some (String.sub buf (nl + 1) len, nl + 1 + len))

(* {2 Accessors} *)

let to_int = function Int i -> i | v -> fail "expected int, got %s" (encode v)

let to_float = function
  | Float f -> f
  | Int i -> Float.of_int i
  | v -> fail "expected number, got %s" (encode v)

let to_string = function String s -> s | v -> fail "expected string, got %s" (encode v)
let to_bool = function Bool b -> b | v -> fail "expected bool, got %s" (encode v)
let to_list = function List l -> l | v -> fail "expected list, got %s" (encode v)

let member k = function
  | Assoc kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> fail "missing field %S" k)
  | v -> fail "expected object with field %S, got %s" k (encode v)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Assoc x, Assoc y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false
