type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type sink =
  | Discard
  | Memory of int
  | Forward of (time:float -> level:level -> node:string -> string -> unit)

type t = {
  name : string;
  eng : Splay_sim.Engine.t;
  mutable level : level;
  mutable sink : sink;
  entries : (float * level * string) Queue.t;
  mutable emitted : int;
}

let create ?(level = Info) ?(sink = Memory 10_000) ~name eng =
  { name; eng; level; sink; entries = Queue.create (); emitted = 0 }

let set_level t l = t.level <- l
let set_sink t s = t.sink <- s
let enabled t l = severity l >= severity t.level

let emit t l msg =
  if enabled t l then begin
    t.emitted <- t.emitted + 1;
    let now = Splay_sim.Engine.now t.eng in
    match t.sink with
    | Discard -> ()
    | Memory cap ->
        Queue.add (now, l, msg) t.entries;
        if Queue.length t.entries > cap then ignore (Queue.take t.entries)
    | Forward f -> f ~time:now ~level:l ~node:t.name msg
  end

(* Check the threshold before interpreting the format: a disabled-level
   call skips the formatting work entirely (ifprintf consumes the
   arguments without rendering anything). *)
let log t l fmt = if enabled t l then Printf.ksprintf (emit t l) fmt else Printf.ifprintf () fmt
let debug t fmt = log t Debug fmt
let info t fmt = log t Info fmt
let warn t fmt = log t Warn fmt
let error t fmt = log t Error fmt

let entries t = List.of_seq (Queue.to_seq t.entries)
let count t = t.emitted
