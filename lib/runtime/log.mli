(** SPLAY's [log] library: leveled logging, locally buffered or forwarded to
    the controller's log collector over the (accounted) network.

    Each record is a per-node [(virtual time, level, message)] triple. The
    level is set at init ({!create}) and can be tightened later; a call
    below the threshold is a cheap early-out — the message is {e not}
    formatted (though, as with any [Printf], argument expressions are still
    evaluated by the caller). *)

type level = Debug | Info | Warn | Error

val severity : level -> int
(** Numeric severity, [Debug = 0] … [Error = 3]; records at or above the
    logger's threshold are kept. *)

val level_to_string : level -> string

val level_of_string : string -> level option
(** Inverse of {!level_to_string} (also accepts ["warning"]). *)

type sink =
  | Discard
  | Memory of int (* keep at most n entries locally *)
  | Forward of (time:float -> level:level -> node:string -> string -> unit)
      (** Forward each entry to a collector (the controller installs one
          per job and aggregates; see [Splay_ctl.Controller.job_log]).
          [node] is the emitting logger's name — the instance address —
          so the collector can tell its sources apart. The callback
          performs its own transport accounting. *)

type t

val create : ?level:level -> ?sink:sink -> name:string -> Splay_sim.Engine.t -> t
(** Default level [Info], default sink [Memory 10_000]. *)

val set_level : t -> level -> unit
val set_sink : t -> sink -> unit
val enabled : t -> level -> bool

val log : t -> level -> ('a, unit, string, unit) format4 -> 'a
val debug : t -> ('a, unit, string, unit) format4 -> 'a
val info : t -> ('a, unit, string, unit) format4 -> 'a
val warn : t -> ('a, unit, string, unit) format4 -> 'a
val error : t -> ('a, unit, string, unit) format4 -> 'a

val entries : t -> (float * level * string) list
(** Locally retained entries, oldest first (empty unless sink is
    [Memory _]). *)

val count : t -> int
(** Number of entries emitted at an enabled level over the lifetime. *)
