(** Resource sandbox for one application instance.

    SPLAY applications execute in a sandbox whose limits are set by the
    local daemon administrator and can only be made stricter by the
    controller. The enforcement model follows the paper: exceeding the
    memory limit kills the application; exceeding disk or network limits
    makes the offending I/O operation fail; blacklisted destinations are
    unreachable. *)

type limits = {
  max_memory : int; (* bytes of application state *)
  max_sockets : int;
  max_fs_bytes : int;
  max_open_files : int;
  max_send_bytes : int; (* total network budget *)
}

val unlimited : limits

val default : limits
(** The daemon defaults used across the evaluation: 16 MB memory, 64
    sockets, 8 MB filesystem, 64 open files, unlimited traffic. *)

val restrict : limits -> limits -> limits
(** [restrict admin ctl] — the controller may strengthen but never weaken
    the administrator's limits (field-wise minimum). *)

exception Violation of string
(** Raised by the failing I/O operation (disk or network overuse, blacklist
    hit, socket exhaustion). Every enforcement — fatal or not — also
    records a [sandbox.violation] point event (attrs [reason], [fatal]) in
    the observability trace and bumps the [sandbox.violations] counter. *)

type t

val create : ?limits:limits -> unit -> t

val limits : t -> limits

val squeeze : t -> limits -> unit
(** Tighten the live sandbox to [restrict current given] — the
    sandbox-limit nemesis of [splay check] and the runtime form of a
    controller pushing stricter limits. Never weakens. Usage already above
    a tightened cap is not retroactively punished: the next operation that
    needs headroom fails (or kills, for memory). *)

val set_on_kill : t -> (string -> unit) -> unit
(** Invoked when a violation is fatal (memory). The environment installs a
    callback that kills every process of the instance. *)

(** Accounting — called by the wrapped libraries. *)

val alloc : t -> int -> unit
(** Account application memory. On exceeding the limit, triggers the kill
    callback and raises {!Violation}. *)

val free : t -> int -> unit
val memory_used : t -> int

val check_rss : t -> int -> unit
(** [check_rss t rss] enforces the memory limit against a measured real
    process resident-set size (bytes) — the live backend's periodic
    self-poll. Over the limit it triggers the kill callback and raises
    {!Violation} with the same message {!alloc} would produce, so the
    observable failure mode matches simulation. *)

val socket_opened : t -> unit
(** Raises {!Violation} when the socket cap is reached. *)

val socket_closed : t -> unit
val sockets_open : t -> int

val fs_grow : t -> int -> unit
(** Raises {!Violation} when the quota would be exceeded (the write fails;
    the application keeps running). *)

val fs_shrink : t -> int -> unit
val fs_used : t -> int

val file_opened : t -> unit
val file_closed : t -> unit

val network_send : t -> int -> unit
(** Account [n] bytes of traffic; raises {!Violation} over budget. *)

val bytes_sent : t -> int

val blacklist : t -> Addr.host_id -> unit
(** Forbid connections to a host (controller-pushed). *)

val blacklisted : t -> Addr.host_id -> bool
