type limits = {
  max_memory : int;
  max_sockets : int;
  max_fs_bytes : int;
  max_open_files : int;
  max_send_bytes : int;
}

let unlimited =
  {
    max_memory = max_int;
    max_sockets = max_int;
    max_fs_bytes = max_int;
    max_open_files = max_int;
    max_send_bytes = max_int;
  }

let default =
  {
    max_memory = 16 * 1024 * 1024;
    max_sockets = 64;
    max_fs_bytes = 8 * 1024 * 1024;
    max_open_files = 64;
    max_send_bytes = max_int;
  }

let restrict a b =
  {
    max_memory = min a.max_memory b.max_memory;
    max_sockets = min a.max_sockets b.max_sockets;
    max_fs_bytes = min a.max_fs_bytes b.max_fs_bytes;
    max_open_files = min a.max_open_files b.max_open_files;
    max_send_bytes = min a.max_send_bytes b.max_send_bytes;
  }

exception Violation of string

module Obs = Splay_obs.Obs

(* Observability: every enforcement action is a point event in the trace
   (with the reason and whether it was fatal) plus a counter, so a run
   that died to its sandbox is diagnosable from the dump alone. *)
let c_violations = Obs.counter "sandbox.violations"

type t = {
  mutable lim : limits;
  mutable mem : int;
  mutable sockets : int;
  mutable fs : int;
  mutable files : int;
  mutable sent : int;
  mutable banned : Addr.host_id list;
  mutable on_kill : string -> unit;
}

let create ?(limits = default) () =
  { lim = limits; mem = 0; sockets = 0; fs = 0; files = 0; sent = 0; banned = []; on_kill = ignore }

let limits t = t.lim

let squeeze t lim = t.lim <- restrict t.lim lim

let set_on_kill t f = t.on_kill <- f

let violation t ~fatal msg =
  Obs.incr c_violations;
  if !Obs.enabled then
    Obs.event
      ~attrs:[ ("reason", msg); ("fatal", if fatal then "true" else "false") ]
      "sandbox.violation";
  if fatal then t.on_kill msg;
  raise (Violation msg)

let alloc t n =
  t.mem <- t.mem + n;
  if t.mem > t.lim.max_memory then
    violation t ~fatal:true
      (Printf.sprintf "memory limit exceeded (%d > %d bytes)" t.mem t.lim.max_memory)

let free t n = t.mem <- max 0 (t.mem - n)
let memory_used t = t.mem

(* Live-backend variant of the memory check: the measured quantity is the
   real process RSS (self-polled from /proc) instead of the simulated
   accounting, but the threshold, the violation message and the fatal
   kill path are the same — so a memory death is observably identical in
   both worlds. *)
let check_rss t rss =
  if rss > t.lim.max_memory then
    violation t ~fatal:true
      (Printf.sprintf "memory limit exceeded (%d > %d bytes)" rss t.lim.max_memory)

let socket_opened t =
  if t.sockets >= t.lim.max_sockets then
    violation t ~fatal:false (Printf.sprintf "socket limit reached (%d)" t.lim.max_sockets);
  t.sockets <- t.sockets + 1

let socket_closed t = t.sockets <- max 0 (t.sockets - 1)
let sockets_open t = t.sockets

let fs_grow t n =
  if t.fs + n > t.lim.max_fs_bytes then
    violation t ~fatal:false
      (Printf.sprintf "filesystem quota exceeded (%d + %d > %d)" t.fs n t.lim.max_fs_bytes);
  t.fs <- t.fs + n

let fs_shrink t n = t.fs <- max 0 (t.fs - n)
let fs_used t = t.fs

let file_opened t =
  if t.files >= t.lim.max_open_files then
    violation t ~fatal:false (Printf.sprintf "open-file limit reached (%d)" t.lim.max_open_files);
  t.files <- t.files + 1

let file_closed t = t.files <- max 0 (t.files - 1)

let network_send t n =
  if t.sent + n > t.lim.max_send_bytes then
    violation t ~fatal:false "network budget exhausted";
  t.sent <- t.sent + n

let bytes_sent t = t.sent

let blacklist t h = if not (List.mem h t.banned) then t.banned <- h :: t.banned

let blacklisted t h = List.mem h t.banned
