module Engine = Splay_sim.Engine

type t = {
  net : Net.t;
  me : Addr.t;
  mutable position : int;
  mutable nodes : Addr.t list;
  sandbox : Sandbox.t;
  log : Log.t;
  env_rng : Splay_sim.Rng.t;
  mutable procs : Engine.proc list;
  mutable procs_len : int;
  mutable ports : Addr.t list;
  mutable loss_rate : float;
  mutable stopped : bool;
  mutable stop_hooks : (unit -> unit) list;
  rpc_pending : (int, (Codec.value, string) result -> unit) Hashtbl.t;
  mutable rpc_next_rid : int;
  rpc_handlers : (string, Codec.value list -> Codec.value) Hashtbl.t;
  mutable rpc_bound : bool;
  mutable rpc_rng : Splay_sim.Rng.t option;
}

let engine t = Net.engine t.net

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter (Net.unbind t.net) t.ports;
    t.ports <- [];
    List.iter (fun h -> h ()) (List.rev t.stop_hooks);
    t.stop_hooks <- [];
    let eng = engine t in
    let procs = t.procs in
    t.procs <- [];
    t.procs_len <- 0;
    (* Kill own process last: self-kill raises and unwinds the caller. *)
    let self = try Some (Engine.self ()) with Effect.Unhandled _ -> None in
    let self_in_list =
      match self with
      | Some s -> List.exists (fun p -> p == s) procs
      | None -> false
    in
    List.iter
      (fun p ->
        match self with
        | Some s when p == s -> ()
        | _ -> Engine.kill eng p)
      procs;
    if self_in_list then
      match self with Some s -> Engine.kill eng s | None -> ()
  end

let create ?(position = 1) ?(nodes = []) ?limits ?(log_level = Log.Info) net ~me =
  let sandbox = Sandbox.create ?limits () in
  let log = Log.create ~level:log_level ~name:(Addr.to_string me) (Net.engine net) in
  let t =
    {
      net;
      me;
      position;
      nodes;
      sandbox;
      log;
      env_rng = Splay_sim.Rng.split (Engine.rng (Net.engine net));
      procs = [];
      procs_len = 0;
      ports = [];
      loss_rate = 0.0;
      stopped = false;
      stop_hooks = [];
      rpc_pending = Hashtbl.create 16;
      rpc_next_rid = 0;
      rpc_handlers = Hashtbl.create 16;
      rpc_bound = false;
      rpc_rng = None;
    }
  in
  Sandbox.set_on_kill sandbox (fun reason ->
      Log.error log "killed by sandbox: %s" reason;
      stop t);
  t

let thread t ?name f =
  if t.stopped then invalid_arg "Env.thread: instance stopped";
  let p = Engine.spawn ?name (engine t) f in
  t.procs <- p :: t.procs;
  t.procs_len <- t.procs_len + 1;
  (* Prune dead processes opportunistically to keep the list short. The
     counter tracks the list length so each spawn stays O(1); the filter
     itself amortizes because it only runs every 32 spawns. *)
  if t.procs_len land 31 = 0 then begin
    t.procs <- List.filter Engine.alive t.procs;
    t.procs_len <- List.length t.procs
  end;
  p

let periodic t interval f =
  thread t (fun () ->
      while true do
        Engine.sleep interval;
        f ()
      done)

(* Split lazily, on the first call that actually needs jitter: an eager
   split in [create] would advance [env_rng] for every instance and change
   the streams of every existing fixed-seed experiment. *)
let rpc_rng t =
  match t.rpc_rng with
  | Some r -> r
  | None ->
      let r = Splay_sim.Rng.split t.env_rng in
      t.rpc_rng <- Some r;
      r

let sleep = Engine.sleep

let now t = Engine.now (engine t)

let on_stop t h = if t.stopped then h () else t.stop_hooks <- h :: t.stop_hooks

let is_stopped t = t.stopped

let register_port t addr = t.ports <- addr :: t.ports
