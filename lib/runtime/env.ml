module Engine = Splay_sim.Engine

(* A tracked process records its own index into the dense [procs] prefix,
   so the engine's exit hook can swap-remove it in O(1). [sidx = -1] marks
   a slot already removed (its process died, or [stop] detached it).
   [seq] is the spawn sequence number: swap-remove scrambles array order,
   and [stop] must kill in reverse spawn order — the order the previous
   cons-list representation killed in, which fixed-seed traces pin. *)
type proc_slot = { mutable sproc : Engine.proc; mutable sidx : int; seq : int }

type t = {
  net : Net.t;
  me : Addr.t;
  mutable position : int;
  mutable nodes : Addr.t list;
  sandbox : Sandbox.t;
  log : Log.t;
  env_rng : Splay_sim.Rng.t;
  mutable procs : proc_slot array;
  mutable procs_len : int;
  mutable proc_seq : int;
  mutable ports : Addr.t list;
  mutable loss_rate : float;
  mutable stopped : bool;
  mutable stop_hooks : (unit -> unit) list;
  mutable rpc_pending_tbl : (int, (Codec.value, string) result -> unit) Hashtbl.t option;
  mutable rpc_next_rid : int;
  mutable rpc_handlers_tbl : (string, Codec.value list -> Codec.value) Hashtbl.t option;
  mutable rpc_bound : bool;
  mutable rpc_rng : Splay_sim.Rng.t option;
}

let engine t = Net.engine t.net

let live_procs t = t.procs_len

let untrack t s =
  let i = s.sidx in
  if i >= 0 then begin
    let last = t.procs_len - 1 in
    t.procs_len <- last;
    if i < last then begin
      let moved = t.procs.(last) in
      t.procs.(i) <- moved;
      moved.sidx <- i
    end;
    s.sidx <- -1;
    (* An empty instance drops its whole table: otherwise the stale cell
       past the prefix would keep the last dead process reachable, and at
       a million mostly-idle instances those are the only dead handles. *)
    if last = 0 then t.procs <- [||]
  end

let track t p =
  let s = { sproc = p; sidx = t.procs_len; seq = t.proc_seq } in
  t.proc_seq <- t.proc_seq + 1;
  let cap = Array.length t.procs in
  if t.procs_len = cap then begin
    let grown = Array.make (if cap = 0 then 4 else cap * 2) s in
    Array.blit t.procs 0 grown 0 t.procs_len;
    t.procs <- grown
  end;
  t.procs.(t.procs_len) <- s;
  t.procs_len <- t.procs_len + 1;
  (* Runs immediately if [p] already finished, so no dead process is ever
     left tracked. *)
  Engine.on_exit p (fun () -> untrack t s)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter (Net.unbind t.net) t.ports;
    t.ports <- [];
    List.iter (fun h -> h ()) (List.rev t.stop_hooks);
    t.stop_hooks <- [];
    let eng = engine t in
    (* Snapshot and detach before killing: each kill fires the victim's
       exit hook, which must find [sidx = -1] and leave the (already reset)
       table alone. Kill newest-first by spawn sequence — swap-remove has
       scrambled array positions, but kill order at an instant is visible
       in fixed-seed traces and must stay what the cons-list gave. *)
    let procs = Array.sub t.procs 0 t.procs_len in
    t.procs <- [||];
    t.procs_len <- 0;
    Array.sort (fun a b -> compare b.seq a.seq) procs;
    (* Kill own process last: self-kill raises and unwinds the caller. *)
    let self = try Some (Engine.self ()) with Effect.Unhandled _ -> None in
    let self_tracked = ref false in
    Array.iter
      (fun s ->
        if s.sidx >= 0 then begin
          s.sidx <- -1;
          match self with
          | Some sp when s.sproc == sp -> self_tracked := true
          | _ -> Engine.kill eng s.sproc
        end)
      procs;
    if !self_tracked then
      match self with Some sp -> Engine.kill eng sp | None -> ()
  end

let create ?(position = 1) ?(nodes = []) ?limits ?(log_level = Log.Info) net ~me =
  let sandbox = Sandbox.create ?limits () in
  let log = Log.create ~level:log_level ~name:(Addr.to_string me) (Net.engine net) in
  let t =
    {
      net;
      me;
      position;
      nodes;
      sandbox;
      log;
      env_rng = Splay_sim.Rng.split (Engine.rng (Net.engine net));
      procs = [||];
      procs_len = 0;
      proc_seq = 0;
      ports = [];
      loss_rate = 0.0;
      stopped = false;
      stop_hooks = [];
      rpc_pending_tbl = None;
      rpc_next_rid = 0;
      rpc_handlers_tbl = None;
      rpc_bound = false;
      rpc_rng = None;
    }
  in
  Sandbox.set_on_kill sandbox (fun reason ->
      Log.error log "killed by sandbox: %s" reason;
      stop t);
  t

let thread t ?name f =
  if t.stopped then invalid_arg "Env.thread: instance stopped";
  let p = Engine.spawn ?name (engine t) f in
  track t p;
  p

let periodic t interval f =
  thread t (fun () ->
      while true do
        Engine.sleep interval;
        f ()
      done)

(* Split lazily, on the first call that actually needs jitter: an eager
   split in [create] would advance [env_rng] for every instance and change
   the streams of every existing fixed-seed experiment. *)
let rpc_rng t =
  match t.rpc_rng with
  | Some r -> r
  | None ->
      let r = Splay_sim.Rng.split t.env_rng in
      t.rpc_rng <- Some r;
      r

let rpc_pending t =
  match t.rpc_pending_tbl with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 16 in
      t.rpc_pending_tbl <- Some h;
      h

let rpc_pending_opt t = t.rpc_pending_tbl

let rpc_handlers t =
  match t.rpc_handlers_tbl with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 16 in
      t.rpc_handlers_tbl <- Some h;
      h

let rpc_handlers_opt t = t.rpc_handlers_tbl

let sleep = Engine.sleep

let now t = Engine.now (engine t)

let on_stop t h = if t.stopped then h () else t.stop_hooks <- h :: t.stop_hooks

let is_stopped t = t.stopped

let register_port t addr = t.ports <- addr :: t.ports
