module Obs = Splay_obs.Obs

exception Network_error of string

let c_opened = Obs.counter "sock.opened"
let c_denied = Obs.counter "sock.send_denied"

let udp env ~port handler =
  let addr = Addr.make env.Env.me.Addr.host port in
  (try Sandbox.socket_opened env.Env.sandbox
   with Sandbox.Violation m -> raise (Network_error m));
  (try Net.bind env.Env.net addr handler
   with Invalid_argument m ->
     Sandbox.socket_closed env.Env.sandbox;
     raise (Network_error m));
  Env.register_port env addr;
  Env.on_stop env (fun () -> Sandbox.socket_closed env.Env.sandbox);
  Obs.incr c_opened;
  addr

let close env addr =
  Net.unbind env.Env.net addr;
  Sandbox.socket_closed env.Env.sandbox

let send env ~dst ?(size = 256) payload =
  if Sandbox.blacklisted env.Env.sandbox dst.Addr.host then begin
    Obs.incr c_denied;
    raise (Network_error (Printf.sprintf "destination %s blacklisted" (Addr.to_string dst)))
  end;
  (try Sandbox.network_send env.Env.sandbox size
   with Sandbox.Violation m ->
     Obs.incr c_denied;
     raise (Network_error m));
  if env.Env.loss_rate > 0.0 then
    Net.send env.Env.net ~size ~loss:env.Env.loss_rate ~src:env.Env.me ~dst payload
  else Net.send env.Env.net ~size ~src:env.Env.me ~dst payload

let sent_bytes env = Sandbox.bytes_sent env.Env.sandbox
