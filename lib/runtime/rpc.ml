module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Obs = Splay_obs.Obs

type error = Timeout | Remote of string | Network of string

let error_to_string = function
  | Timeout -> "timeout"
  | Remote m -> "remote error: " ^ m
  | Network m -> "network error: " ^ m

exception Rpc_error of error

type handler = Codec.value list -> Codec.value

type options = { timeout : float; retries : int; backoff : float; backoff_jitter : float }

let default_options = { timeout = 120.0; retries = 0; backoff = 0.0; backoff_jitter = 0.0 }
let ping_options = { timeout = 5.0; retries = 0; backoff = 0.0; backoff_jitter = 0.0 }

(* Observability sites. One span per logical call (retries included) with
   the outcome attached on finish; the serve side gets its own span so
   handler service time is separable from network time. *)
let c_calls = Obs.counter "rpc.calls"
let c_notifies = Obs.counter "rpc.notifies"
let c_timeouts = Obs.counter "rpc.timeouts"
let c_retries = Obs.counter "rpc.retries"
let c_served = Obs.counter "rpc.served"
let h_latency = Obs.histogram "rpc.latency"
let h_serve_time = Obs.histogram "rpc.serve_time"
let h_bytes = Obs.histogram "rpc.request_bytes"

(* The request envelope carries the caller's trace context ([Obs.null_ctx]
   when tracing is off): the serve span on the callee is created as its
   child, which is what stitches one logical request into a single causal
   trace across nodes. A negative [rid] marks a one-way request
   ({!notify}): the callee runs the handler but sends no reply. *)
type Net.payload +=
  | Request of { rid : int; proc : string; args : Codec.value list; ctx : Obs.ctx }
  | Reply of { rid : int; result : (Codec.value, string) result }

let request_size proc args =
  32 + String.length proc + List.fold_left (fun acc a -> acc + Codec.encoded_size a) 0 args

let reply_size = function
  | Ok v -> 32 + Codec.encoded_size v
  | Error m -> 32 + String.length m

(* Last registration wins: [Hashtbl.replace] drops any previous binding
   for [name], so a handler can be re-registered (e.g. on reconfiguration)
   without leaking the old one or shadowing it non-deterministically. *)
let add_handler env name h = Hashtbl.replace (Env.rpc_handlers env) name h

let send_reply env ~dst rid result =
  try Sb_socket.send env ~dst ~size:(reply_size result) (Reply { rid; result })
  with Sb_socket.Network_error _ -> ()

let dispatch env ~src payload =
  match payload with
  | Request { rid; proc; args; ctx } ->
      (* The fiber name only surfaces in traces and crash reports; skip the
         per-request string concat when tracing is off (the engine names
         anonymous procs lazily, so passing [None] allocates nothing). *)
      let name = if !Obs.enabled then Some ("rpc:" ^ proc) else None in
      ignore
        (Env.thread env ?name (fun () ->
             let eng = Env.engine env in
             let t0 = Engine.now eng in
             let sp =
               if !Obs.enabled then
                 Obs.span ~parent:ctx
                   ~attrs:[ ("proc", proc); ("node", Addr.to_string env.Env.me) ]
                   "rpc.serve"
               else Obs.null_span
             in
             let result =
               match Hashtbl.find_opt (Env.rpc_handlers env) proc with
               | None -> Error (Printf.sprintf "unknown procedure %S" proc)
               | Some h -> (
                   try Ok (h args) with
                   | Engine.Process_killed as e -> raise e
                   | e -> Error (Printexc.to_string e))
             in
             Obs.incr c_served;
             if !Obs.enabled || !Obs.metrics_enabled then
               Obs.observe h_serve_time (Engine.now eng -. t0);
             if !Obs.enabled then
               Obs.finish
                 ~attrs:
                   [ ("outcome", match result with Ok _ -> "ok" | Error _ -> "error") ]
                 sp;
             if rid >= 0 then send_reply env ~dst:src rid result))
  | Reply { rid; result } -> (
      (* [rpc_pending_opt]: a node that never issued a call has no table,
         and a stray reply should not make it allocate one *)
      match Env.rpc_pending_opt env with
      | None -> ()
      | Some pending -> (
          match Hashtbl.find_opt pending rid with
          | None -> () (* reply after timeout: dropped, as with a late TCP answer *)
          | Some resolve ->
              Hashtbl.remove pending rid;
              resolve result))
  | _ -> () (* not RPC traffic; other layers may share the port *)

let ensure_bound env =
  if not env.Env.rpc_bound then begin
    env.Env.rpc_bound <- true;
    add_handler env "__ping" (fun _ -> Codec.Null);
    ignore (Sb_socket.udp env ~port:env.Env.me.Addr.port (dispatch env))
  end

let server env handlers =
  ensure_bound env;
  List.iter (fun (name, h) -> add_handler env name h) handlers

let client env = ensure_bound env

(* Error transport through the string-typed pending table: tagged
   prefixes, decoded back into the variant here. *)
let decode_error m =
  match String.index_opt m ':' with
  | Some i when String.sub m 0 i = "net" -> Network (String.sub m (i + 1) (String.length m - i - 1))
  | _ when m = "timeout" -> Timeout
  | _ -> Remote m

(* One wire attempt: send the request, resolve on reply, timeout or local
   send failure. *)
let attempt env dst ~timeout ~size proc args =
  let rid = env.Env.rpc_next_rid in
  env.Env.rpc_next_rid <- rid + 1;
  let eng = Env.engine env in
  let pending = Env.rpc_pending env in
  let outcome =
    Engine.suspend (fun resolve ->
        Hashtbl.replace pending rid (fun r -> resolve (Ok r));
        (try Sb_socket.send env ~dst ~size (Request { rid; proc; args; ctx = Obs.current () })
         with Sb_socket.Network_error m ->
           (match Hashtbl.find_opt pending rid with
           | Some r ->
               Hashtbl.remove pending rid;
               r (Error ("net:" ^ m))
           | None -> ()));
        let timer =
          Engine.schedule eng ~delay:timeout (fun () ->
              match Hashtbl.find_opt pending rid with
              | Some r ->
                  Hashtbl.remove pending rid;
                  r (Error "timeout")
              | None -> ())
        in
        fun () ->
          Engine.cancel eng timer;
          Hashtbl.remove pending rid)
  in
  match outcome with Ok v -> Ok v | Error m -> Error (decode_error m)

let outcome_label = function
  | Ok _ -> "ok"
  | Error Timeout -> "timeout"
  | Error (Remote _) -> "remote"
  | Error (Network _) -> "network"

let a_call_core env dst ~options proc args =
  ensure_bound env;
  let size = request_size proc args in
  let eng = Env.engine env in
  let t0 = Engine.now eng in
  let sp =
    if !Obs.enabled then
      Obs.span
        ~attrs:
          [
            ("proc", proc);
            ("src", Addr.to_string env.Env.me);
            ("dst", Addr.to_string dst);
            ("bytes", string_of_int size);
          ]
        "rpc.call"
    else Obs.null_span
  in
  (* Retries cover the transient failures (Timeout, local Network refusal);
     a Remote error is the handler's answer and is final. The first attempt
     runs directly under the call span; each retry gets its own child span
     numbered with the attempt and tagged with the backoff delay it waited,
     so the serve spans it causes are distinguishable from the original
     attempt's. *)
  let retry_delay n =
    (* exponential backoff before retry [n] (1-based): backoff * 2^(n-1),
       stretched by a seeded jitter fraction drawn from the instance's
       dedicated RPC stream. The default backoff = 0 takes no delay and
       consumes no RNG, so fixed-seed traces without the policy stay
       byte-identical. *)
    if options.backoff <= 0.0 then 0.0
    else begin
      let base = options.backoff *. Float.of_int (1 lsl min (n - 1) 30) in
      if options.backoff_jitter <= 0.0 then base
      else base *. (1.0 +. (options.backoff_jitter *. Rng.float (Env.rpc_rng env) 1.0))
    end
  in
  let rec go n ~waited =
    let sp_retry =
      if n > 0 && !Obs.enabled then
        Obs.span
          ~attrs:[ ("attempt", string_of_int n); ("delay", Printf.sprintf "%.6f" waited) ]
          "rpc.retry"
      else Obs.null_span
    in
    let r = attempt env dst ~timeout:options.timeout ~size proc args in
    if !Obs.enabled then Obs.finish ~attrs:[ ("outcome", outcome_label r) ] sp_retry;
    match r with
    | Error (Timeout | Network _) when n < options.retries ->
        Obs.incr c_retries;
        let d = retry_delay (n + 1) in
        if d > 0.0 then Engine.sleep d;
        go (n + 1) ~waited:d
    | r -> (r, n + 1)
  in
  let result, attempts = go 0 ~waited:0.0 in
  Obs.incr c_calls;
  (match result with Error Timeout -> Obs.incr c_timeouts | _ -> ());
  if !Obs.enabled || !Obs.metrics_enabled then begin
    Obs.observe h_latency (Engine.now eng -. t0);
    Obs.observe h_bytes (Float.of_int size)
  end;
  if !Obs.enabled then
    Obs.finish
      ~attrs:[ ("outcome", outcome_label result); ("attempts", string_of_int attempts) ]
      sp;
  result

(* The [?timeout] shorthand and the [?options] policy compose: an explicit
   timeout overrides the policy's, so [a_call ~timeout] keeps meaning what
   it always did and a policy can still ride along for retries/backoff. *)
let resolve ~base ?timeout ?options () =
  match (timeout, options) with
  | None, None -> base
  | None, Some o -> o
  | Some t, None -> { base with timeout = t }
  | Some t, Some o -> { o with timeout = t }

let with_timeout timeout = { default_options with timeout }

let a_call env dst ?timeout ?options proc args =
  a_call_core env dst ~options:(resolve ~base:default_options ?timeout ?options ()) proc args

let call env dst ?timeout ?options proc args =
  match a_call env dst ?timeout ?options proc args with
  | Ok v -> v
  | Error e -> raise (Rpc_error e)

let ping env ?timeout ?options dst =
  let options = resolve ~base:ping_options ?timeout ?options () in
  match a_call_core env dst ~options "__ping" [] with Ok _ -> true | Error _ -> false

(* One-way call: fire the request and return. No reply is expected (the
   callee skips it for negative rids), so no pending-table entry, no
   timer, and — decisively for large fan-outs — no fiber parked waiting.
   A blocked [a_call] caller costs ~1.3 kB of stack until the reply; a
   million-node flood with six outstanding forwards per node would hold
   gigabytes in parked fibers. Delivery inherits exactly the network's
   guarantees (loss, partitions, dead hosts): fire-and-forget. *)
let notify env dst proc args =
  ensure_bound env;
  Obs.incr c_notifies;
  let size = request_size proc args in
  try Sb_socket.send env ~dst ~size (Request { rid = -1; proc; args; ctx = Obs.current () })
  with Sb_socket.Network_error _ -> ()

(* Wire serialization of the RPC envelope, for transports that leave the
   process (the live backend's inter-daemon TCP tunnels). The trace
   context travels explicitly — it is what stitches one logical request
   into a single causal trace across real processes. *)

let payload_to_value = function
  | Request { rid; proc; args; ctx } ->
      Some
        (Codec.Assoc
           [
             ("k", Codec.String "q");
             ("rid", Codec.Int rid);
             ("proc", Codec.String proc);
             ("args", Codec.List args);
             ("tid", Codec.Int ctx.Obs.tid);
             ("sid", Codec.Int ctx.Obs.sid);
           ])
  | Reply { rid; result = Ok v } ->
      Some (Codec.Assoc [ ("k", Codec.String "p"); ("rid", Codec.Int rid); ("ok", v) ])
  | Reply { rid; result = Error m } ->
      Some
        (Codec.Assoc [ ("k", Codec.String "p"); ("rid", Codec.Int rid); ("err", Codec.String m) ])
  | _ -> None (* not RPC traffic: other payload kinds have no wire form *)

let payload_of_value v =
  match Codec.to_string (Codec.member "k" v) with
  | "q" ->
      Request
        {
          rid = Codec.to_int (Codec.member "rid" v);
          proc = Codec.to_string (Codec.member "proc" v);
          args = Codec.to_list (Codec.member "args" v);
          ctx =
            {
              Obs.tid = Codec.to_int (Codec.member "tid" v);
              sid = Codec.to_int (Codec.member "sid" v);
            };
        }
  | "p" ->
      let result =
        match Codec.member "ok" v with
        | ok -> Ok ok
        | exception Codec.Parse_error _ -> Error (Codec.to_string (Codec.member "err" v))
      in
      Reply { rid = Codec.to_int (Codec.member "rid" v); result }
  | k -> raise (Codec.Parse_error (Printf.sprintf "unknown rpc payload kind %S" k))

(* Deprecated aliases for the pre-unification names. *)

let a_call_opt env dst ?options proc args = a_call env dst ?options proc args

let call_opt env dst ?options proc args = call env dst ?options proc args

let ping_opt env ?options dst = ping env ?options dst

let calls_issued env = env.Env.rpc_next_rid
