(** Execution environment of one application instance.

    This is what a SPLAY application sees at startup: its own endpoint
    ([job.me]), its rank in the deployment sequence ([job.position]), the
    bootstrap peers chosen by the controller ([job.nodes]), plus the handles
    to the sandboxed libraries. It also owns every process and port the
    instance creates, so the daemon can stop the whole instance at once
    (churn, FREE command, sandbox kill). *)

type proc_slot
(** One tracked process: an int-indexed slot in the instance's dense
    process table. The slot records its own index, so a process leaving
    (for any reason — the engine's exit hook fires [Env]'s untrack) is an
    O(1) swap-remove with no dead-handle retention: a million instances
    that each spawn a handful of short-lived fibers hold on to none of
    them. (The previous representation — a cons list pruned every 32nd
    spawn — never pruned instances with fewer than 32 spawns, which is
    every instance in a million-node run.) *)

type t = {
  net : Net.t;
  me : Addr.t;
  mutable position : int; (* 1-based rank in the deployment sequence *)
  mutable nodes : Addr.t list; (* rendez-vous peers from the controller *)
  sandbox : Sandbox.t;
  log : Log.t;
  env_rng : Splay_sim.Rng.t;
  mutable procs : proc_slot array; (* dense prefix of length [procs_len] *)
  mutable procs_len : int;
  mutable proc_seq : int; (* spawn sequence; orders kills at [stop] *)
  mutable ports : Addr.t list;
  mutable loss_rate : float;
      (** proportion of this instance's outgoing packets dropped by the
          network library — the paper's lossy-link study knob, set at
          deployment time *)
  mutable stopped : bool;
  mutable stop_hooks : (unit -> unit) list;
  (* RPC plumbing (owned here so client and server share the endpoint).
     Both tables materialize on first use: a pure server never allocates
     the pending table, a pure client never allocates the handler table —
     at million-node scale each empty-but-allocated Hashtbl would cost
     ~26 words per node. Access through {!rpc_pending} / {!rpc_handlers}. *)
  mutable rpc_pending_tbl : (int, (Codec.value, string) result -> unit) Hashtbl.t option;
  mutable rpc_next_rid : int;
  mutable rpc_handlers_tbl : (string, Codec.value list -> Codec.value) Hashtbl.t option;
      (** procedure name -> handler; {!Rpc.add_handler} replaces on
          re-registration (last registration wins) *)
  mutable rpc_bound : bool;
  mutable rpc_rng : Splay_sim.Rng.t option; (* lazy; use {!rpc_rng} *)
}

val create :
  ?position:int ->
  ?nodes:Addr.t list ->
  ?limits:Sandbox.limits ->
  ?log_level:Log.level ->
  Net.t ->
  me:Addr.t ->
  t
(** A sandbox memory violation automatically stops the instance, as the
    paper specifies. *)

val engine : t -> Splay_sim.Engine.t

val rpc_rng : t -> Splay_sim.Rng.t
(** The instance's RPC jitter stream, split from [env_rng] on first use —
    lazily, so instances that never draw jitter (the default policy)
    consume exactly the streams they did before this stream existed. *)

val rpc_pending : t -> (int, (Codec.value, string) result -> unit) Hashtbl.t
(** The outstanding-call table, materialized on first use. *)

val rpc_pending_opt : t -> (int, (Codec.value, string) result -> unit) Hashtbl.t option
(** The table if any call ever ran — reply dispatch uses this so a stray
    reply to a node that never called costs no allocation. *)

val rpc_handlers : t -> (string, Codec.value list -> Codec.value) Hashtbl.t
(** The procedure table, materialized on first use. *)

val rpc_handlers_opt : t -> (string, Codec.value list -> Codec.value) Hashtbl.t option

val live_procs : t -> int
(** Number of currently-tracked (live) processes of this instance. *)

val thread : t -> ?name:string -> (unit -> unit) -> Splay_sim.Engine.proc
(** [events.thread]: spawn a process owned by this instance. *)

val periodic : t -> float -> (unit -> unit) -> Splay_sim.Engine.proc
(** [events.periodic f interval]: run [f] every [interval] simulated
    seconds (first run after one interval). The body may block. *)

val sleep : float -> unit
(** Re-export of {!Splay_sim.Engine.sleep} under the application-facing
    namespace. *)

val now : t -> float

val on_stop : t -> (unit -> unit) -> unit

val stop : t -> unit
(** Kill all processes, unbind all ports, run stop hooks. Idempotent.
    Safe to call from within one of the instance's own processes. *)

val is_stopped : t -> bool

val register_port : t -> Addr.t -> unit
(** Record a port for cleanup at {!stop} (called by the socket layer). *)
