(** Execution environment of one application instance.

    This is what a SPLAY application sees at startup: its own endpoint
    ([job.me]), its rank in the deployment sequence ([job.position]), the
    bootstrap peers chosen by the controller ([job.nodes]), plus the handles
    to the sandboxed libraries. It also owns every process and port the
    instance creates, so the daemon can stop the whole instance at once
    (churn, FREE command, sandbox kill). *)

type t = {
  net : Net.t;
  me : Addr.t;
  mutable position : int; (* 1-based rank in the deployment sequence *)
  mutable nodes : Addr.t list; (* rendez-vous peers from the controller *)
  sandbox : Sandbox.t;
  log : Log.t;
  env_rng : Splay_sim.Rng.t;
  mutable procs : Splay_sim.Engine.proc list;
  mutable procs_len : int; (* tracked length of [procs], for O(1) spawn *)
  mutable ports : Addr.t list;
  mutable loss_rate : float;
      (** proportion of this instance's outgoing packets dropped by the
          network library — the paper's lossy-link study knob, set at
          deployment time *)
  mutable stopped : bool;
  mutable stop_hooks : (unit -> unit) list;
  (* RPC plumbing (owned here so client and server share the endpoint) *)
  rpc_pending : (int, (Codec.value, string) result -> unit) Hashtbl.t;
  mutable rpc_next_rid : int;
  rpc_handlers : (string, Codec.value list -> Codec.value) Hashtbl.t;
      (** procedure name -> handler; {!Rpc.add_handler} replaces on
          re-registration (last registration wins) *)
  mutable rpc_bound : bool;
  mutable rpc_rng : Splay_sim.Rng.t option; (* lazy; use {!rpc_rng} *)
}

val create :
  ?position:int ->
  ?nodes:Addr.t list ->
  ?limits:Sandbox.limits ->
  ?log_level:Log.level ->
  Net.t ->
  me:Addr.t ->
  t
(** A sandbox memory violation automatically stops the instance, as the
    paper specifies. *)

val engine : t -> Splay_sim.Engine.t

val rpc_rng : t -> Splay_sim.Rng.t
(** The instance's RPC jitter stream, split from [env_rng] on first use —
    lazily, so instances that never draw jitter (the default policy)
    consume exactly the streams they did before this stream existed. *)

val thread : t -> ?name:string -> (unit -> unit) -> Splay_sim.Engine.proc
(** [events.thread]: spawn a process owned by this instance. *)

val periodic : t -> float -> (unit -> unit) -> Splay_sim.Engine.proc
(** [events.periodic f interval]: run [f] every [interval] simulated
    seconds (first run after one interval). The body may block. *)

val sleep : float -> unit
(** Re-export of {!Splay_sim.Engine.sleep} under the application-facing
    namespace. *)

val now : t -> float

val on_stop : t -> (unit -> unit) -> unit

val stop : t -> unit
(** Kill all processes, unbind all ports, run stop hooks. Idempotent.
    Safe to call from within one of the instance's own processes. *)

val is_stopped : t -> bool

val register_port : t -> Addr.t -> unit
(** Record a port for cleanup at {!stop} (called by the socket layer). *)
