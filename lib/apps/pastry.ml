module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Misc = Splay_runtime.Misc
module Rng = Splay_sim.Rng

type config = {
  bits : int;
  b : int;
  leaf_size : int;
  stabilize_interval : float;
  rpc_timeout : float;
  suspect_threshold : int;
  join_delay_per_position : float;
  proximity : bool;
  per_hop_overhead : float;
  id_assignment : [ `Random | `Hash ];
}

let default_config =
  {
    bits = 32;
    b = 4;
    leaf_size = 16;
    stabilize_interval = 5.0;
    rpc_timeout = 30.0;
    suspect_threshold = 2;
    join_delay_per_position = 0.2;
    proximity = true;
    per_hop_overhead = 0.0;
    id_assignment = `Hash;
  }

let digits cfg = cfg.bits / cfg.b

type node = {
  cfg : config;
  env : Env.t;
  self : Node.t;
  mutable left : Node.t list; (* counter-clockwise, nearest first *)
  mutable right : Node.t list; (* clockwise, nearest first *)
  table : Node.t option array array; (* rows x 2^b *)
  misses : (int, int) Hashtbl.t;
  (* death certificates: recently pruned ids are not re-learned from
     gossip until the certificate expires, or stale leafset exchanges
     would reinject them forever *)
  dead : (int, float) Hashtbl.t;
  mutable n_suspected : int;
  mutable bootstrap : Addr.t option;
  p_rng : Rng.t;
}

let id t = t.self.Node.id
let addr t = t.self.Node.addr
let leafset t = t.left @ t.right
let is_stopped t = Env.is_stopped t.env
let suspected_count t = t.n_suspected

let table_entries t =
  Array.to_list t.table
  |> List.concat_map (fun row -> Array.to_list row |> List.filter_map Fun.id)

let modulus t = Misc.pow2 t.cfg.bits
let dist_cw t a b = Misc.ring_distance a b ~modulus:(modulus t)
let dist t a b = min (dist_cw t a b) (dist_cw t b a)

let digit t key row = (key lsr (t.cfg.bits - (t.cfg.b * (row + 1)))) land ((1 lsl t.cfg.b) - 1)

let shared_prefix t a b =
  let nd = digits t.cfg in
  let rec go row = if row < nd && digit t a row = digit t b row then go (row + 1) else row in
  go 0

let rtt t n = Net.base_rtt t.env.Env.net t.self.Node.addr.Addr.host n.Node.addr.Addr.host

let all_known t =
  List.sort_uniq Node.compare_by_id (t.self :: (leafset t @ table_entries t))

(* Incorporate a peer: leafset halves stay sorted by ring distance and
   bounded; the routing-table slot prefers the lower-RTT candidate when
   proximity-aware construction is on (the locality optimization FreePastry
   also implements). *)
let now t = Splay_sim.Engine.now (Env.engine t.env)

let certified_dead t n =
  match Hashtbl.find_opt t.dead n.Node.id with
  | Some expiry when now t < expiry -> true
  | Some _ ->
      Hashtbl.remove t.dead n.Node.id;
      false
  | None -> false

let learn t n =
  if (not (Node.equal n t.self)) && n.Node.id <> t.self.Node.id && not (certified_dead t n)
  then begin
    let half = t.cfg.leaf_size / 2 in
    let insert lst ~d =
      if List.exists (Node.equal n) lst then lst
      else
        List.sort (fun a b -> Int.compare (d a.Node.id) (d b.Node.id)) (n :: lst)
        |> Misc.take half
    in
    t.right <- insert t.right ~d:(fun i -> dist_cw t t.self.Node.id i);
    t.left <- insert t.left ~d:(fun i -> dist_cw t i t.self.Node.id);
    let row = shared_prefix t t.self.Node.id n.Node.id in
    if row < digits t.cfg then begin
      let col = digit t n.Node.id row in
      match t.table.(row).(col) with
      | None ->
          (* routing state costs real memory; Fig. 8's slight growth *)
          (try Splay_runtime.Sandbox.alloc t.env.Env.sandbox 2048
           with Splay_runtime.Sandbox.Violation _ -> ());
          t.table.(row).(col) <- Some n
      | Some cur ->
          if (not (Node.equal cur n)) && t.cfg.proximity && rtt t n < rtt t cur then
            t.table.(row).(col) <- Some n
    end
  end

let prune t n =
  let keep x = not (Node.equal x n) in
  t.left <- List.filter keep t.left;
  t.right <- List.filter keep t.right;
  Array.iter
    (fun row ->
      Array.iteri
        (fun i e ->
          match e with
          | Some x when Node.equal x n ->
              row.(i) <- None;
              Splay_runtime.Sandbox.free t.env.Env.sandbox 2048
          | _ -> ())
        row)
    t.table

let suspect t n =
  let k = 1 + Option.value ~default:0 (Hashtbl.find_opt t.misses n.Node.id) in
  if k >= t.cfg.suspect_threshold then begin
    Hashtbl.remove t.misses n.Node.id;
    Hashtbl.replace t.dead n.Node.id (now t +. (10.0 *. t.cfg.stabilize_interval));
    t.n_suspected <- t.n_suspected + 1;
    prune t n
  end
  else Hashtbl.replace t.misses n.Node.id k

let acall t n proc args =
  match Rpc.a_call t.env n.Node.addr ~timeout:t.cfg.rpc_timeout proc args with
  | Ok v ->
      Hashtbl.remove t.misses n.Node.id;
      Ok v
  | Error _ ->
      suspect t n;
      Error ()

(* Is the key within the span of our leafset? If so the owner is the
   numerically closest node among leafset + self. *)
let leafset_covers t key =
  match (t.left, t.right) with
  | [], [] -> true
  | _ ->
      let leftmost = match List.rev t.left with l :: _ -> l.Node.id | [] -> t.self.Node.id in
      let rightmost = match List.rev t.right with r :: _ -> r.Node.id | [] -> t.self.Node.id in
      Misc.between key leftmost rightmost ~modulus:(modulus t) ~incl_lo:true ~incl_hi:true

let closest_among t key nodes =
  List.fold_left
    (fun best n -> if dist t n.Node.id key < dist t best.Node.id key then n else best)
    t.self nodes

type decision = Deliver | Forward of Node.t

(* The Pastry routing decision. [excluded] lists next hops that already
   failed for this message (dead, or reported no route), so alternates are
   tried instead of looping on them. *)
let decide ?(excluded = []) t key =
  let usable n = not (List.exists (Node.equal n) excluded) in
  if leafset_covers t key then begin
    let owner = closest_among t key (List.filter usable (leafset t)) in
    if Node.equal owner t.self then Deliver else Forward owner
  end
  else begin
    let l = shared_prefix t t.self.Node.id key in
    let slot =
      match if l < digits t.cfg then t.table.(l).(digit t key l) else None with
      | Some n when usable n -> Some n
      | _ -> None
    in
    match slot with
    | Some n -> Forward n
    | None ->
        (* rare case: any known node with at least as long a prefix and
           numerically closer to the key *)
        let my_d = dist t t.self.Node.id key in
        let better n =
          usable n
          && (not (Node.equal n t.self))
          && shared_prefix t n.Node.id key >= l
          && dist t n.Node.id key < my_d
        in
        (match List.filter better (all_known t) with
        | [] -> Deliver (* best effort: nobody better is known *)
        | cands -> Forward (closest_among t key cands))
  end

let max_hops = 64

(* Route one message, retrying alternates as next hops fail. *)
let rec route t key ~hops =
  if hops > max_hops then None
  else begin
    let rec attempts k excluded =
      if k = 0 then None
      else
        match decide t ~excluded key with
        | Deliver -> Some (t.self, hops)
        | Forward n -> (
            match acall t n "p.route" [ Codec.Int key; Codec.Int (hops + 1) ] with
            | Ok v -> (
                match Codec.member "node" v with
                | Codec.Null -> attempts (k - 1) (n :: excluded)
                | nv -> Some (Node.of_value nv, Codec.to_int (Codec.member "hops" v)))
            | Error () -> attempts (k - 1) (n :: excluded))
    in
    attempts 6 []
  end

and handle_route t args =
  match args with
  | [ key; hops ] -> (
      if t.cfg.per_hop_overhead > 0.0 then begin
        let m = Testbed.service_mult (Net.testbed t.env.Env.net) t.self.Node.addr.Addr.host in
        Env.sleep (t.cfg.per_hop_overhead *. m)
      end;
      match route t (Codec.to_int key) ~hops:(Codec.to_int hops) with
      | Some (n, h) -> Codec.Assoc [ ("node", Node.to_value n); ("hops", Codec.Int h) ]
      | None -> Codec.Assoc [ ("node", Codec.Null); ("hops", Codec.Int 0) ])
  | _ -> failwith "p.route: bad arguments"

let lookup t key = route t key ~hops:0

(* Join: the request travels from the bootstrap node towards the
   newcomer's id; every hop contributes its leafset and the table rows the
   newcomer will need; the newcomer learns everything and announces
   itself. *)
let join_payload t xid =
  let l = shared_prefix t t.self.Node.id xid in
  let rows =
    List.concat
      (List.init (min (l + 1) (digits t.cfg)) (fun r ->
           Array.to_list t.table.(r) |> List.filter_map Fun.id))
  in
  t.self :: (rows @ leafset t)

let handle_join t args =
  match args with
  | [ xid_v; hops_v ] ->
      let xid = Codec.to_int xid_v and hops = Codec.to_int hops_v in
      let mine = join_payload t xid in
      let deeper =
        if hops > max_hops then []
        else
          match decide t xid with
          | Deliver -> []
          | Forward n -> (
              match acall t n "p.join" [ Codec.Int xid; Codec.Int (hops + 1) ] with
              | Ok (Codec.List l) -> List.map Node.of_value l
              | Ok _ | Error () -> [])
      in
      Codec.List (List.map Node.to_value (mine @ deeper))
  | _ -> failwith "p.join: bad arguments"

let announce t =
  let targets = List.filter (fun n -> not (Node.equal n t.self)) (all_known t) in
  List.iter
    (fun n -> ignore (acall t n "p.announce" [ Node.to_value t.self ]))
    targets

let join t bootstrap =
  match acall t bootstrap "p.join" [ Codec.Int t.self.Node.id; Codec.Int 0 ] with
  | Ok (Codec.List l) ->
      List.iter (fun v -> learn t (Node.of_value v)) l;
      announce t
  | Ok _ | Error () -> ()

(* Periodic maintenance: exchange leafsets with a random neighbor, check
   the closest ring neighbors are alive, probe a few table entries — and
   occasionally re-contact the original bootstrap node, which is what lets
   two halves of a healed partition find each other again instead of
   living on as split-brain rings. *)
let stabilize t =
  (match t.bootstrap with
  | Some b when (not (Addr.equal b t.self.Node.addr)) && Rng.chance t.p_rng 0.2 -> (
      match Rpc.a_call t.env b ~timeout:t.cfg.rpc_timeout "p.leafset" [] with
      | Ok (Codec.List l) -> List.iter (fun v -> learn t (Node.of_value v)) l
      | Ok _ | Error _ -> ())
  | _ -> ());
  (match leafset t with
  | [] -> ()
  | leaves -> (
      let peer = Rng.pick_list t.p_rng leaves in
      match acall t peer "p.leafset" [] with
      | Ok (Codec.List l) -> List.iter (fun v -> learn t (Node.of_value v)) l
      | Ok _ | Error () -> ()));
  (match t.left with p :: _ -> if not (Rpc.ping t.env ~timeout:t.cfg.rpc_timeout p.Node.addr) then suspect t p | [] -> ());
  (match t.right with s :: _ -> if not (Rpc.ping t.env ~timeout:t.cfg.rpc_timeout s.Node.addr) then suspect t s | [] -> ());
  (* also probe random leafset members: failures further out in the
     leafset must be detected faster than gossip reinjects them *)
  (match leafset t with
  | [] -> ()
  | leaves ->
      for _ = 1 to min 4 (List.length leaves) do
        let n = Rng.pick_list t.p_rng leaves in
        if not (Rpc.ping t.env ~timeout:t.cfg.rpc_timeout n.Node.addr) then suspect t n
      done);
  match table_entries t with
  | [] -> ()
  | entries ->
      (* probe a few random entries per round so dead table slots are
         repaired within a handful of periods *)
      for _ = 1 to min 3 (List.length entries) do
        let n = Rng.pick_list t.p_rng entries in
        if not (Rpc.ping t.env ~timeout:t.cfg.rpc_timeout n.Node.addr) then suspect t n
      done

let serve t =
  Rpc.server t.env
    [
      ("p.route", handle_route t);
      ("p.join", handle_join t);
      ("p.leafset", fun _ -> Codec.List (List.map Node.to_value (t.self :: leafset t)));
      ( "p.announce",
        fun args ->
          (match args with
          | [ nv ] -> learn t (Node.of_value nv)
          | _ -> failwith "p.announce: bad arguments");
          Codec.Null );
    ]

let app ?(config = default_config) ~register env =
  if config.bits mod config.b <> 0 then invalid_arg "Pastry: bits must be a multiple of b";
  let self = Node.self ~how:config.id_assignment ~bits:config.bits env in
  let t =
    {
      cfg = config;
      env;
      self;
      left = [];
      right = [];
      table = Array.make_matrix (digits config) (1 lsl config.b) None;
      misses = Hashtbl.create 16;
      dead = Hashtbl.create 16;
      n_suspected = 0;
      bootstrap = (match env.Env.nodes with b :: _ -> Some b | [] -> None);
      p_rng = Rng.split env.Env.env_rng;
    }
  in
  register t;
  serve t;
  ignore (Env.periodic env config.stabilize_interval (fun () -> stabilize t));
  Env.sleep (Float.of_int env.Env.position *. config.join_delay_per_position);
  match env.Env.nodes with
  | rendezvous :: _ when env.Env.position > 1 -> join t (Node.make ~id:0 ~addr:rendezvous)
  | _ -> ()

(* Warm start, mirroring [Chord.assemble]: build the converged routing
   state directly from the full membership instead of running O(n)
   serialized joins plus stabilization rounds. The leafset halves are the
   [leaf_size/2] nearest ring neighbours on each side; routing-table slot
   (row [r], column [c]) covers ids sharing self's top [r] digits with
   digit [c] next, so it gets the first ring member inside that id range
   (binary search) — a fixed point of [learn] modulo proximity
   tie-breaking, which only affects locality, not correctness. No
   periodic processes are started and no [Sandbox] accounting is done:
   the assembled ring exists to serve application traffic (the DHT store,
   the web cache) at node counts where join-protocol convergence is the
   dominant — and irrelevant — cost. *)
let assemble ?(config = default_config) ~register ~ring ~index env =
  if config.bits mod config.b <> 0 then invalid_arg "Pastry: bits must be a multiple of b";
  let n = Array.length ring in
  if n = 0 then invalid_arg "Pastry.assemble: empty ring";
  if index < 0 || index >= n then invalid_arg "Pastry.assemble: index out of range";
  let self = ring.(index) in
  let half = min (config.leaf_size / 2) (n - 1) in
  let right = List.init half (fun k -> ring.((index + k + 1) mod n)) in
  let left = List.init half (fun k -> ring.((index + n - k - 1) mod n)) in
  (* first ring member with id >= key, or None past the top (no wrap:
     table ranges never cross zero) *)
  let first_at_or_after key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ring.(mid).Node.id < key then lo := mid + 1 else hi := mid
    done;
    if !lo = n then None else Some ring.(!lo)
  in
  let nd = digits config in
  let cols = 1 lsl config.b in
  let table =
    Array.init nd (fun r ->
        let span = config.bits - (config.b * (r + 1)) in
        let prefix = self.Node.id lsr (span + config.b) in
        let own = (self.Node.id lsr span) land (cols - 1) in
        Array.init cols (fun c ->
            if c = own then None
            else
              let base = ((prefix lsl config.b) lor c) lsl span in
              match first_at_or_after base with
              | Some m when m.Node.id < base + (1 lsl span) -> Some m
              | Some _ | None -> None))
  in
  let t =
    {
      cfg = config;
      env;
      self;
      left;
      right;
      table;
      misses = Hashtbl.create 16;
      dead = Hashtbl.create 16;
      n_suspected = 0;
      bootstrap = None;
      (* private stream derived from the id, not split from [env_rng]:
         assemble must not perturb the env's stream relative to runs that
         don't use it *)
      p_rng = Rng.create (self.Node.id lxor 0x7A57E1);
    }
  in
  register t;
  serve t

(* {2 Hooks for layered applications} *)

let next_hop t key = match decide t key with Deliver -> None | Forward n -> Some n
let report_failure t n = suspect t n
let node_env t = t.env
let self_node t = t.self
let config_of t = t.cfg
