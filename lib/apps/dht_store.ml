module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Crypto = Splay_runtime.Crypto
module Sandbox = Splay_runtime.Sandbox
module Rng = Splay_sim.Rng
module Ivar = Splay_sim.Ivar

type config = {
  replicas : int;
  republish_interval : float;
  entry_ttl : float;
  rpc_timeout : float;
  serve_cost : float;
  batching : bool;
  p2c : bool;
  admission : bool;
  token_rate : float;
  token_burst : float;
  slo_budget : float;
}

let default_config =
  {
    replicas = 3;
    republish_interval = 30.0;
    entry_ttl = 120.0;
    rpc_timeout = 10.0;
    serve_cost = 0.0;
    batching = false;
    p2c = false;
    admission = false;
    token_rate = 2000.0;
    token_burst = 64.0;
    slo_budget = 0.25;
  }

type entry = { value : string; mutable refreshed_at : float }

(* One unit of owner-side work. A [Fetch] carries every reader waiting on
   the key: under [batching], concurrent gets for the same key coalesce
   into one service slot and the reply fans out to all of them. *)
type job =
  | Store of { key : string; value : string; done_ : unit Ivar.t }
  | Fetch of { key : string; waiters : string option Ivar.t list ref }

type t = {
  cfg : config;
  p : Pastry.node;
  env : Env.t;
  store : (string, entry) Hashtbl.t;
  (* owner-side serving state (active only when [serve_cost > 0]) *)
  queue : job Queue.t;
  mutable worker : bool;
  inflight : (string, string option Ivar.t list ref) Hashtbl.t;
  mutable tokens : float;
  mutable refilled_at : float;
  (* client-side replica selection state *)
  ewma : (int, float) Hashtbl.t;
  mutable rtt_hint : (Addr.t -> float option) option;
  c_rng : Rng.t;
  (* serving counters (observability) *)
  mutable n_served : int;
  mutable n_shed : int;
  mutable n_batched : int;
}

let stored_entries t = Hashtbl.length t.store
let stored_bytes t = Hashtbl.fold (fun _ e acc -> acc + String.length e.value) t.store 0
let served_count t = t.n_served
let shed_count t = t.n_shed
let batched_count t = t.n_batched
let queue_depth t = Queue.length t.queue
let set_rtt_estimator t f = t.rtt_hint <- Some f

let now t = Env.now t.env

let replica_id t ~key i =
  Crypto.hash_to_id (Printf.sprintf "%s#%d" key i) ~bits:(Pastry.config_of t.p).Pastry.bits

(* Local (owner-side) operations, exposed over RPC. *)

let store_local t ~key ~value =
  (match Hashtbl.find_opt t.store key with
  | Some old ->
      Sandbox.free t.env.Env.sandbox (String.length old.value);
      Hashtbl.remove t.store key
  | None -> ());
  (try Sandbox.alloc t.env.Env.sandbox (String.length value)
   with Sandbox.Violation _ -> ());
  Hashtbl.replace t.store key { value; refreshed_at = now t }

(* Warm-start insertion for benches that place replicas directly from the
   full membership instead of routing [replicas * keys] puts through the
   overlay first. *)
let preload t ~key ~value = store_local t ~key ~value

let fetch_local t ~key =
  match Hashtbl.find_opt t.store key with
  | Some e when now t -. e.refreshed_at <= t.cfg.entry_ttl -> Some e.value
  | Some e ->
      Hashtbl.remove t.store key;
      Sandbox.free t.env.Env.sandbox (String.length e.value);
      None
  | None -> None

let delete_local t ~key =
  match Hashtbl.find_opt t.store key with
  | Some e ->
      Hashtbl.remove t.store key;
      Sandbox.free t.env.Env.sandbox (String.length e.value)
  | None -> ()

(* {2 Owner-side serving fast path}

   With [serve_cost > 0] every store/fetch costs service time at the
   owner, so requests queue. The queue is drained by a single worker
   fiber, spawned lazily on the empty->nonempty transition and exiting
   when the queue drains — an idle owner holds no live fiber and the
   engine's event queue empties cleanly at end of run.

   Admission control ([admission]) sheds work at enqueue time with a
   distinguished fast-reject reply instead of letting the queue grow
   without bound: a token bucket caps the sustained accept rate, and the
   queue-delay budget ([slo_budget]) rejects requests that would wait
   longer than the SLO even if accepted — overload degrades into fast
   rejects the client can retry elsewhere, not into collapse. *)

let admit t =
  if not t.cfg.admission then true
  else begin
    let n = now t in
    t.tokens <-
      Float.min t.cfg.token_burst (t.tokens +. ((n -. t.refilled_at) *. t.cfg.token_rate));
    t.refilled_at <- n;
    let backlog = Float.of_int (Queue.length t.queue) *. t.cfg.serve_cost in
    if t.tokens >= 1.0 && backlog <= t.cfg.slo_budget then begin
      t.tokens <- t.tokens -. 1.0;
      true
    end
    else begin
      t.n_shed <- t.n_shed + 1;
      false
    end
  end

let service_pause t =
  let m =
    Testbed.service_mult (Net.testbed t.env.Env.net) (Pastry.self_node t.p).Node.addr.Addr.host
  in
  Env.sleep (t.cfg.serve_cost *. m)

let rec drain t =
  match Queue.take_opt t.queue with
  | None -> t.worker <- false
  | Some job ->
      (match job with
      | Fetch { key; waiters } ->
          (* unhook before the service pause: gets arriving while this one
             is in service start the next batch rather than missing the
             reply fan-out *)
          Hashtbl.remove t.inflight key;
          service_pause t;
          let v = fetch_local t ~key in
          let ws = !waiters in
          let k = List.length ws in
          t.n_served <- t.n_served + k;
          if k > 1 then t.n_batched <- t.n_batched + (k - 1);
          List.iter (fun iv -> Ivar.fill iv v) ws
      | Store { key; value; done_ } ->
          service_pause t;
          store_local t ~key ~value;
          t.n_served <- t.n_served + 1;
          Ivar.fill done_ ());
      drain t

let kick t =
  if not t.worker then begin
    t.worker <- true;
    ignore (Env.thread t.env ~name:"kv-worker" (fun () -> drain t))
  end

(* Blocking enqueue of a fetch; [`Shed] is the fast-reject path. *)
let queue_fetch t ~key =
  match (if t.cfg.batching then Hashtbl.find_opt t.inflight key else None) with
  | Some ws ->
      (* coalesce: ride the already-queued service slot for this key *)
      let iv = Ivar.create () in
      ws := iv :: !ws;
      `Value (Ivar.read iv)
  | None ->
      if not (admit t) then `Shed
      else begin
        let iv = Ivar.create () in
        let ws = ref [ iv ] in
        if t.cfg.batching then Hashtbl.replace t.inflight key ws;
        Queue.push (Fetch { key; waiters = ws }) t.queue;
        kick t;
        `Value (Ivar.read iv)
      end

let queue_store t ~key ~value =
  if not (admit t) then `Shed
  else begin
    let iv = Ivar.create () in
    Queue.push (Store { key; value; done_ = iv }) t.queue;
    kick t;
    Ivar.read iv;
    `Stored
  end

(* {2 Client-side operations} *)

(* Route to the owner of one replica and run an operation there. *)
let with_owner t ~key i f =
  match Pastry.lookup t.p (replica_id t ~key i) with
  | None -> None
  | Some (owner, _) -> f owner

(* EWMA of observed fetch round-trips per host — the fallback latency
   estimate for power-of-two-choices when no coordinate hook is set. An
   unknown host estimates 0 so fresh replicas get explored. *)
let observe_rtt t addr dt =
  let v =
    match Hashtbl.find_opt t.ewma addr.Addr.host with
    | None -> dt
    | Some p -> (0.8 *. p) +. (0.2 *. dt)
  in
  Hashtbl.replace t.ewma addr.Addr.host v

let estimate t addr =
  let ewma () = Option.value ~default:0.0 (Hashtbl.find_opt t.ewma addr.Addr.host) in
  match t.rtt_hint with
  | Some f -> ( match f addr with Some r -> r | None -> ewma ())
  | None -> ewma ()

let put_r t ~key ~value =
  let acks = ref 0 and sheds = ref 0 in
  for i = 0 to t.cfg.replicas - 1 do
    ignore
      (with_owner t ~key i (fun owner ->
           if Node.equal owner (Pastry.self_node t.p) then begin
             store_local t ~key ~value;
             incr acks;
             Some ()
           end
           else
             match
               Rpc.a_call t.env owner.Node.addr ~timeout:t.cfg.rpc_timeout "kv.store"
                 [ Codec.String key; Codec.String value ]
             with
             | Ok (Codec.Bool false) ->
                 (* shed by admission control: no ack, but the owner is
                    healthy — do not feed the failure detector *)
                 incr sheds;
                 None
             | Ok _ ->
                 incr acks;
                 Some ()
             | Error _ ->
                 Pastry.report_failure t.p owner;
                 None))
  done;
  (!acks, !sheds)

let put t ~key ~value = fst (put_r t ~key ~value)

(* Fetch from one resolved owner. A shed reply arrives fast but signals
   overload: it is penalized in the EWMA by a full SLO budget so
   power-of-two-choices steers the next draws away from the hot node. *)
let fetch_from_r t ~key owner =
  if Node.equal owner (Pastry.self_node t.p) then
    match fetch_local t ~key with Some v -> `Value v | None -> `Miss
  else begin
    let t0 = now t in
    match
      Rpc.a_call t.env owner.Node.addr ~timeout:t.cfg.rpc_timeout "kv.fetch"
        [ Codec.String key ]
    with
    | Ok (Codec.String v) ->
        observe_rtt t owner.Node.addr (now t -. t0);
        `Value v
    | Ok (Codec.Bool false) ->
        observe_rtt t owner.Node.addr (now t -. t0 +. t.cfg.slo_budget);
        `Shed
    | Ok _ ->
        observe_rtt t owner.Node.addr (now t -. t0);
        `Miss
    | Error _ ->
        Pastry.report_failure t.p owner;
        `Miss
  end

let get_r t ~key =
  let r = t.cfg.replicas in
  (* a shed anywhere along the fallback chain marks the final verdict:
     "no value" because of overload reads differently from a clean miss *)
  let shed = ref false in
  let fetch_from t ~key owner =
    match fetch_from_r t ~key owner with
    | `Value v -> Some v
    | `Shed ->
        shed := true;
        None
    | `Miss -> None
  in
  (* sequential fallback over replicas not yet tried *)
  let rec scan i tried =
    if i >= r then None
    else if List.mem i tried then scan (i + 1) tried
    else
      match with_owner t ~key i (fun owner -> fetch_from t ~key owner) with
      | Some v -> Some v
      | None -> scan (i + 1) tried
  in
  let verdict = function
    | Some v -> `Value v
    | None -> if !shed then `Shed else `Miss
  in
  verdict
  @@
  if t.cfg.p2c && r >= 2 then begin
    (* sample two distinct replicas, resolve their owners, fetch from the
       estimated-closer / less-loaded one first *)
    let i = Rng.int t.c_rng r in
    let j = (i + 1 + Rng.int t.c_rng (r - 1)) mod r in
    let resolve i = with_owner t ~key i (fun o -> Some o) in
    match (resolve i, resolve j) with
    | Some a, Some b -> (
        let est n =
          if Node.equal n (Pastry.self_node t.p) then 0.0 else estimate t n.Node.addr
        in
        let first, second = if est b < est a then (b, a) else (a, b) in
        match fetch_from t ~key first with
        | Some v -> Some v
        | None -> (
            match fetch_from t ~key second with
            | Some v -> Some v
            | None -> scan 0 [ i; j ]))
    | Some a, None -> (
        match fetch_from t ~key a with Some v -> Some v | None -> scan 0 [ i ])
    | None, Some b -> (
        match fetch_from t ~key b with Some v -> Some v | None -> scan 0 [ j ])
    | None, None -> scan 0 [ i; j ]
  end
  else scan 0 []

let get t ~key = match get_r t ~key with `Value v -> Some v | `Shed | `Miss -> None

let delete t ~key =
  let acks = ref 0 in
  for i = 0 to t.cfg.replicas - 1 do
    ignore
      (with_owner t ~key i (fun owner ->
           if Node.equal owner (Pastry.self_node t.p) then begin
             delete_local t ~key;
             incr acks;
             Some ()
           end
           else
             match
               Rpc.a_call t.env owner.Node.addr ~timeout:t.cfg.rpc_timeout "kv.delete"
                 [ Codec.String key ]
             with
             | Ok _ ->
                 incr acks;
                 Some ()
             | Error _ -> None))
  done;
  !acks

(* Republish: push every held entry back towards the current owners of its
   replicas; drop entries nobody has refreshed within the TTL. The churned
   ring converges to holding each value at its live owners. *)
let republish t =
  let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.store [] in
  List.iter
    (fun (key, e) ->
      if now t -. e.refreshed_at > t.cfg.entry_ttl then delete_local t ~key
      else
        ignore (put t ~key ~value:e.value))
    entries

let create ?(config = default_config) p =
  let env = Pastry.node_env p in
  let t =
    {
      cfg = config;
      p;
      env;
      store = Hashtbl.create 32;
      queue = Queue.create ();
      worker = false;
      inflight = Hashtbl.create 16;
      tokens = config.token_burst;
      refilled_at = 0.0;
      ewma = Hashtbl.create 16;
      rtt_hint = None;
      (* private stream derived from the node id, not split from env_rng:
         enabling p2c must not perturb any other component's draws *)
      c_rng = Rng.create ((Pastry.self_node p).Node.id lxor 0x2C00B5);
      n_served = 0;
      n_shed = 0;
      n_batched = 0;
    }
  in
  let serving = config.serve_cost > 0.0 in
  Rpc.add_handler env "kv.store" (fun args ->
      match args with
      | [ Codec.String key; Codec.String value ] ->
          if serving then
            match queue_store t ~key ~value with
            | `Stored -> Codec.Null
            | `Shed -> Codec.Bool false
          else begin
            store_local t ~key ~value;
            Codec.Null
          end
      | _ -> failwith "kv.store: bad arguments");
  Rpc.add_handler env "kv.fetch" (fun args ->
      match args with
      | [ Codec.String key ] ->
          if serving then
            match queue_fetch t ~key with
            | `Value (Some v) -> Codec.String v
            | `Value None -> Codec.Null
            | `Shed -> Codec.Bool false
          else (
            match fetch_local t ~key with Some v -> Codec.String v | None -> Codec.Null)
      | _ -> failwith "kv.fetch: bad arguments");
  Rpc.add_handler env "kv.delete" (fun args ->
      match args with
      | [ Codec.String key ] ->
          delete_local t ~key;
          Codec.Null
      | _ -> failwith "kv.delete: bad arguments");
  if config.republish_interval > 0.0 then
    ignore (Env.periodic env config.republish_interval (fun () -> republish t));
  t
