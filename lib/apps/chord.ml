module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Misc = Splay_runtime.Misc

type config = {
  m : int;
  stabilize_interval : float;
  join_delay_per_position : float;
  id_assignment : [ `Random | `Hash ];
}

let default_config =
  { m = 24; stabilize_interval = 5.0; join_delay_per_position = 1.0; id_assignment = `Random }

type node = {
  cfg : config;
  env : Env.t;
  self : Node.t;
  mutable predecessor : Node.t option;
  finger : Node.t option array; (* finger.(0) is the successor *)
  mutable refresh : int; (* next finger to refresh, 1-based like the paper *)
}

let id t = t.self.Node.id
let addr t = t.self.Node.addr
let successor t = t.finger.(0)
let predecessor t = t.predecessor
let fingers t = Array.copy t.finger
let is_stopped t = Env.is_stopped t.env
let node_env t = t.env

let modulus t = Misc.pow2 t.cfg.m

let between t x a b ~incl_lo ~incl_hi = Misc.between x a b ~modulus:(modulus t) ~incl_lo ~incl_hi

(* closest_preceding_node from Listing 2: highest finger between us and the
   target. *)
let closest_preceding_node t key =
  let rec scan i =
    if i < 0 then t.self
    else
      match t.finger.(i) with
      | Some f when between t f.Node.id t.self.Node.id key ~incl_lo:false ~incl_hi:false -> f
      | _ -> scan (i - 1)
  in
  scan (t.cfg.m - 1)

let call t dst proc args = Rpc.call t.env dst.Node.addr proc args

(* find_successor from Listing 2, with a hop count threaded through for the
   route-length figures. Returns (responsible node, hops). *)
let rec find_successor t key ~hops =
  match t.finger.(0) with
  | Some succ when between t key t.self.Node.id succ.Node.id ~incl_lo:false ~incl_hi:true ->
      (succ, hops)
  | None -> (t.self, hops) (* alone on the ring *)
  | Some succ ->
      let n0 = closest_preceding_node t key in
      (* when no finger strictly precedes the key (fingers still cold),
         walk the ring through the successor — always makes progress,
         where answering ourselves would hand out wrong owners during the
         join phase *)
      let next = if Node.equal n0 t.self then succ else n0 in
      let v = call t next "find_successor" [ Codec.Int key; Codec.Int (hops + 1) ] in
      (Node.of_value (Codec.member "node" v), Codec.to_int (Codec.member "hops" v))

and handle_find_successor t args =
  match args with
  | [ key; hops ] ->
      let n, h = find_successor t (Codec.to_int key) ~hops:(Codec.to_int hops) in
      Codec.Assoc [ ("node", Node.to_value n); ("hops", Codec.Int h) ]
  | _ -> failwith "find_successor: bad arguments"

(* notify from Listing 1 *)
let notify t n0 =
  match t.predecessor with
  | None -> t.predecessor <- Some n0
  | Some p ->
      if between t n0.Node.id p.Node.id t.self.Node.id ~incl_lo:false ~incl_hi:false then
        t.predecessor <- Some n0

(* join from Listing 1 *)
let join t n0 =
  t.predecessor <- None;
  let v = call t n0 "find_successor" [ Codec.Int t.self.Node.id; Codec.Int 0 ] in
  t.finger.(0) <- Some (Node.of_value (Codec.member "node" v));
  match t.finger.(0) with
  | Some succ -> ignore (call t succ "notify" [ Node.to_value t.self ])
  | None -> ()

(* stabilize from Listing 1: verify our successor's predecessor *)
let stabilize t =
  match t.finger.(0) with
  | None -> ()
  | Some succ ->
      let x = Node.opt_of_value (call t succ "predecessor" []) in
      (match x with
      | Some x
        when between t x.Node.id t.self.Node.id succ.Node.id ~incl_lo:false ~incl_hi:false ->
          t.finger.(0) <- Some x
      | _ -> ());
      (match t.finger.(0) with
      | Some s -> ignore (call t s "notify" [ Node.to_value t.self ])
      | None -> ())

(* fix_fingers from Listing 1 *)
let fix_fingers t =
  t.refresh <- (t.refresh mod t.cfg.m) + 1;
  let target = Misc.ring_add t.self.Node.id (Misc.pow2 (t.refresh - 1)) ~modulus:(modulus t) in
  let n, _ = find_successor t target ~hops:0 in
  t.finger.(t.refresh - 1) <- Some n

(* check_predecessor from Listing 1 *)
let check_predecessor t =
  match t.predecessor with
  | Some p when not (Rpc.ping t.env p.Node.addr) -> t.predecessor <- None
  | _ -> ()

let default_config_ref = default_config

(* The node's RPC surface, shared by the join-based [app] and the
   warm-start [assemble]: lookups route identically however the ring came
   to exist. *)
let serve t =
  Rpc.server t.env
    [
      ("find_successor", handle_find_successor t);
      ("predecessor", fun _ -> Node.opt_to_value t.predecessor);
      ( "notify",
        fun args ->
          (match args with
          | [ n ] -> notify t (Node.of_value n)
          | _ -> failwith "notify: bad arguments");
          Codec.Null );
    ]

let app ?(config = default_config_ref) ~register env =
  let self = Node.self ~how:config.id_assignment ~bits:config.m env in
  let t =
    {
      cfg = config;
      env;
      self;
      predecessor = None;
      finger = Array.make config.m None;
      refresh = 0;
    }
  in
  register t;
  serve t;
  (* protect the periodic state updates against crashing the instance when
     a peer disappears mid-call: base Chord simply retries next period *)
  let guarded f () = try f t with Rpc.Rpc_error _ -> () in
  ignore (Env.periodic env config.stabilize_interval (guarded stabilize));
  ignore (Env.periodic env config.stabilize_interval (guarded check_predecessor));
  ignore (Env.periodic env config.stabilize_interval (guarded fix_fingers));
  (* staggered join: one node per join_delay, so a single ring forms *)
  Env.sleep (Float.of_int env.Env.position *. config.join_delay_per_position);
  match env.Env.nodes with
  | rendezvous :: _ when env.Env.position > 1 ->
      join t (Node.make ~id:0 ~addr:rendezvous)
  | _ ->
      (* create(): the first node is its own successor, so stabilization
         can splice later arrivals in (the paper's finger[1] = n) *)
      t.finger.(0) <- Some t.self

(* Warm start: construct the converged ring state directly instead of
   running staggered joins plus stabilization rounds. With [n] nodes the
   join protocol needs O(n) serialized joins and O(n * m) stabilizer
   firings before fingers are correct — at 100k nodes that is an
   infeasible event count, and it tests convergence, not routing. Here
   every pointer is computed from the full membership: predecessor and
   successor are the ring neighbours, finger k is the first node at or
   after self.id + 2^k (binary search), exactly the fixed point
   stabilize/fix_fingers converge to. No periodic processes are started —
   the ring is already at the fixed point, and 3 periodics per node is
   the difference between a 100k-node run fitting its event budget or
   not. *)
let assemble ?(config = default_config_ref) ~register ~ring ~index env =
  let n = Array.length ring in
  if n = 0 then invalid_arg "Chord.assemble: empty ring";
  if index < 0 || index >= n then invalid_arg "Chord.assemble: index out of range";
  let md = Misc.pow2 config.m in
  (* first node at or after [key] on the ring, wrapping past the top *)
  let succ_of key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ring.(mid).Node.id < key then lo := mid + 1 else hi := mid
    done;
    if !lo = n then ring.(0) else ring.(!lo)
  in
  let self = ring.(index) in
  let finger =
    Array.init config.m (fun k ->
        Some (succ_of (Misc.ring_add self.Node.id (Misc.pow2 k) ~modulus:md)))
  in
  let t =
    {
      cfg = config;
      env;
      self;
      predecessor = Some ring.((index + n - 1) mod n);
      finger;
      refresh = 0;
    }
  in
  register t;
  serve t

let lookup t key =
  match find_successor t key ~hops:0 with
  | n, hops -> Some (n, hops)
  | exception Rpc.Rpc_error _ -> None

let ring_of nodes =
  match List.sort (fun a b -> Int.compare (id a) (id b)) nodes with
  | [] -> []
  | first :: _ ->
      let by_id = Hashtbl.create 64 in
      List.iter (fun n -> Hashtbl.replace by_id (id n) n) nodes;
      let rec walk acc n =
        match successor n with
        | None -> List.rev acc
        | Some s ->
            if s.Node.id = id first then List.rev acc
            else (
              match Hashtbl.find_opt by_id s.Node.id with
              | Some next when List.length acc <= List.length nodes -> walk (s.Node.id :: acc) next
              | _ -> List.rev acc)
      in
      walk [ id first ] first
