(** A replicated key-value store on Pastry — the "indexing service based on
    a DHT" of the paper's long-running-application use case (§1, §3.2).

    Replication is by salted keys: replica [i] of a key lives at the Pastry
    owner of [hash(key # i)], so the [replicas] copies land on unrelated
    nodes and a reader can fall back from one replica to the next without
    knowing anyone's leafset. Storing nodes republish their entries
    periodically, so data migrates to new owners as the ring churns and
    expires when every holder is gone longer than the republish TTL.

    {2 Serving fast path}

    With [serve_cost > 0] each owner-side store/fetch occupies the node
    for that much service time (scaled by the host's contention
    multiplier) and requests queue behind a single worker — the model the
    open-loop serving benchmarks load to saturation. Three optimizations
    sit behind config toggles so they can be ablated:

    - [batching]: concurrent gets for the same key coalesce into one
      service slot, with the reply fanned out to every waiter;
    - [p2c]: {!get} samples two of the replica owners and reads from the
      estimated-closer / less-loaded one (a coordinate hook via
      {!set_rtt_estimator} when available, else an EWMA of observed fetch
      round-trips, with shed replies penalized by a full SLO budget);
    - [admission]: owners shed at enqueue time — a token bucket caps the
      sustained accept rate and requests whose queueing delay would
      already exceed [slo_budget] get a distinguished fast-reject reply,
      which clients treat as a miss-at-replica (not a failure), so
      overload degrades instead of collapsing.

    All toggles default off and [serve_cost] defaults to 0, which is the
    original direct-call behaviour, bit for bit. *)

type config = {
  replicas : int; (** copies kept (default 3) *)
  republish_interval : float; (** default 30 s; [<= 0] disables republish *)
  entry_ttl : float; (** entries not republished for this long expire (default 120 s) *)
  rpc_timeout : float;
  serve_cost : float;
      (** owner-side service time per request, seconds (default 0: direct
          calls, no queue) *)
  batching : bool; (** coalesce same-key gets into one service slot *)
  p2c : bool; (** power-of-two-choices replica selection in {!get} *)
  admission : bool; (** token-bucket + SLO-budget shedding at the owner *)
  token_rate : float; (** sustained accepts per second (default 2000) *)
  token_burst : float; (** bucket depth (default 64) *)
  slo_budget : float; (** max acceptable queueing delay, seconds (default 0.25) *)
}

val default_config : config

type t

val create : ?config:config -> Pastry.node -> t
(** Layer the store over a Pastry instance (shared RPC endpoint). *)

val put : t -> key:string -> value:string -> int
(** Store the value; returns how many replicas acknowledged (0 means the
    put failed entirely). Blocking. *)

val put_r : t -> key:string -> value:string -> int * int
(** {!put} with the overload verdict: [(acks, sheds)] — how many replicas
    acknowledged and how many fast-rejected the write under admission
    control (healthy-but-overloaded, distinct from failed). *)

val get : t -> key:string -> string option
(** Read, falling back across replicas. Blocking. *)

val get_r : t -> key:string -> [ `Value of string | `Miss | `Shed ]
(** {!get} with the overload verdict: [`Shed] when no replica returned a
    value but at least one fast-rejected the read — the caller saw
    overload, not absence. *)

val delete : t -> key:string -> int
(** Remove from all reachable replicas; returns acknowledgements. *)

val replica_id : t -> key:string -> int -> int
(** The overlay id replica [i] of [key] lives at — exposed so warm-start
    harnesses can place data without routing through the overlay. *)

val preload : t -> key:string -> value:string -> unit
(** Insert directly into this node's local store (no routing, no
    replication): benchmark warm start for assembled overlays. *)

val stored_entries : t -> int
(** Entries this node currently holds (observability). *)

val stored_bytes : t -> int

val set_rtt_estimator : t -> (Addr.t -> float option) -> unit
(** Install a latency-estimate hook for p2c replica selection (e.g. a
    Vivaldi coordinate distance). [None] for a peer falls back to the
    built-in EWMA. *)

val served_count : t -> int
(** Requests this owner completed through the serving queue. *)

val shed_count : t -> int
(** Requests fast-rejected by admission control. *)

val batched_count : t -> int
(** Extra waiters absorbed into coalesced fetches (0 without [batching]). *)

val queue_depth : t -> int
