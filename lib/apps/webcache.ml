module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Crypto = Splay_runtime.Crypto
module Sandbox = Splay_runtime.Sandbox
module Rng = Splay_sim.Rng
module Ivar = Splay_sim.Ivar

type config = {
  max_entries : int;
  ttl : float;
  origin_delay_mean : float;
  object_size : int;
  rpc_timeout : float;
  serve_cost : float;
  coalesce : bool;
  admission : bool;
  token_rate : float;
  token_burst : float;
}

let default_config =
  {
    max_entries = 100;
    ttl = 120.0;
    origin_delay_mean = 1.5;
    object_size = 2048;
    rpc_timeout = 30.0;
    serve_cost = 0.0;
    coalesce = false;
    admission = false;
    token_rate = 2000.0;
    token_burst = 64.0;
  }

type entry = { value : string; fetched_at : float; mutable last_used : float }

type t = {
  cfg : config;
  p : Pastry.node;
  env : Env.t;
  cache : (string, entry) Hashtbl.t;
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
  mutable origin : int;
  mutable stale : int;
  mutable shed : int;
  (* in-flight origin fetches, for [coalesce]: later missers of the same
     url wait on the first fetch instead of hammering the origin *)
  inflight : (string, string Ivar.t) Hashtbl.t;
  mutable tokens : float;
  mutable refilled_at : float;
  w_rng : Rng.t;
}

let requests_served t = t.served
let home_hits t = t.hits
let home_misses t = t.misses
let cached_entries t = Hashtbl.length t.cache
let evictions t = t.evicted
let origin_fetches t = t.origin
let stale_served t = t.stale
let shed_count t = t.shed

let now t = Env.now t.env

(* Simulated origin server: heavy-ish fetch latency, as the paper's
   non-cached accesses (1-2 s on average). *)
let fetch_origin t url =
  Env.sleep (Rng.exponential t.w_rng ~mean:t.cfg.origin_delay_mean);
  let body = Printf.sprintf "content-of:%s:" url in
  body ^ String.make (max 0 (t.cfg.object_size - String.length body)) 'x'

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun url e ->
      match !victim with
      | Some (_, ve) when ve.last_used <= e.last_used -> ()
      | _ -> victim := Some (url, e))
    t.cache;
  match !victim with
  | Some (url, e) ->
      Hashtbl.remove t.cache url;
      Sandbox.free t.env.Env.sandbox (String.length e.value);
      t.evicted <- t.evicted + 1
  | None -> ()

let insert t url value =
  while Hashtbl.length t.cache >= t.cfg.max_entries do
    evict_lru t
  done;
  Sandbox.alloc t.env.Env.sandbox (String.length value);
  Hashtbl.replace t.cache url { value; fetched_at = now t; last_used = now t }

(* Token-bucket admission at the home node: overload answers with a fast
   reject the client sees as [`Shed], not with an origin-fetch pile-up. *)
let admit t =
  if not t.cfg.admission then true
  else begin
    let n = now t in
    t.tokens <-
      Float.min t.cfg.token_burst (t.tokens +. ((n -. t.refilled_at) *. t.cfg.token_rate));
    t.refilled_at <- n;
    if t.tokens >= 1.0 then begin
      t.tokens <- t.tokens -. 1.0;
      true
    end
    else begin
      t.shed <- t.shed + 1;
      false
    end
  end

(* Serve a request as the home node. *)
let serve t url =
  t.served <- t.served + 1;
  if t.cfg.serve_cost > 0.0 then begin
    let m =
      Testbed.service_mult (Net.testbed t.env.Env.net) (Pastry.self_node t.p).Node.addr.Addr.host
    in
    Env.sleep (t.cfg.serve_cost *. m)
  end;
  match Hashtbl.find_opt t.cache url with
  | Some e when now t -. e.fetched_at <= t.cfg.ttl ->
      e.last_used <- now t;
      t.hits <- t.hits + 1;
      (* the freshness guard above is the invariant; the counter exists so
         the check suite can observe it never fired *)
      if now t -. e.fetched_at > t.cfg.ttl then t.stale <- t.stale + 1;
      (e.value, true)
  | stale ->
      (match stale with
      | Some e ->
          Hashtbl.remove t.cache url;
          Sandbox.free t.env.Env.sandbox (String.length e.value)
      | None -> ());
      t.misses <- t.misses + 1;
      let value =
        match (if t.cfg.coalesce then Hashtbl.find_opt t.inflight url else None) with
        | Some iv ->
            (* another fiber already went to the origin for this url: ride
               its reply (it inserts into the cache as well) *)
            Ivar.read iv
        | None ->
            let iv = if t.cfg.coalesce then Some (Ivar.create ()) else None in
            (match iv with
            | Some iv -> Hashtbl.replace t.inflight url iv
            | None -> ());
            t.origin <- t.origin + 1;
            let v = fetch_origin t url in
            (match iv with
            | Some iv ->
                Hashtbl.remove t.inflight url;
                Ivar.fill iv v
            | None -> ());
            insert t url v;
            v
      in
      (value, false)

let handle_get t args =
  match args with
  | [ Codec.String url ] ->
      if not (admit t) then Codec.Bool false
      else
        let value, hit = serve t url in
        Codec.Assoc [ ("v", Codec.String value); ("hit", Codec.Bool hit) ]
  | _ -> failwith "wc.get: bad arguments"

let get t url =
  let t0 = now t in
  let key = Crypto.hash_to_id url ~bits:(Pastry.config_of t.p).Pastry.bits in
  match Pastry.lookup t.p key with
  | None -> ("", `Failed, now t -. t0)
  | Some (home, _) ->
      if Node.equal home (Pastry.self_node t.p) then begin
        if not (admit t) then ("", `Shed, now t -. t0)
        else begin
          let value, hit = serve t url in
          (value, (if hit then `Hit else `Miss), now t -. t0)
        end
      end
      else begin
        match
          Rpc.a_call t.env home.Node.addr ~timeout:t.cfg.rpc_timeout "wc.get"
            [ Codec.String url ]
        with
        | Ok (Codec.Bool false) ->
            (* admission fast-reject: the home node is healthy, just
               overloaded — do not feed the failure detector *)
            ("", `Shed, now t -. t0)
        | Ok v ->
            let value = Codec.to_string (Codec.member "v" v) in
            let hit = Codec.to_bool (Codec.member "hit" v) in
            (value, (if hit then `Hit else `Miss), now t -. t0)
        | Error _ ->
            Pastry.report_failure t.p home;
            ("", `Failed, now t -. t0)
      end

let create ?(config = default_config) p =
  let env = Pastry.node_env p in
  let t =
    {
      cfg = config;
      p;
      env;
      cache = Hashtbl.create 64;
      served = 0;
      hits = 0;
      misses = 0;
      evicted = 0;
      origin = 0;
      stale = 0;
      shed = 0;
      inflight = Hashtbl.create 8;
      tokens = config.token_burst;
      refilled_at = 0.0;
      w_rng = Rng.split env.Env.env_rng;
    }
  in
  Rpc.add_handler env "wc.get" (handle_get t);
  t
