(** Cooperative web cache on Pastry, after Squirrel (Iyer et al.) — the
    long-running application of §5.7 / Fig. 14.

    Every URL has a {e home node}: the Pastry owner of the URL's hash. A
    node proxies a request by routing to the home node, which serves the
    object from its cache or fetches it from the (simulated) origin server
    on a miss. Caches are LRU-bounded and entries expire after a TTL
    (paper: 100 entries per node, 120 s). *)

type config = {
  max_entries : int; (** per node (paper: 100) *)
  ttl : float; (** seconds before an entry is stale (paper: 120) *)
  origin_delay_mean : float; (** origin fetch time, exponential (paper: 1–2 s) *)
  object_size : int; (** bytes of a fetched object *)
  rpc_timeout : float;
  serve_cost : float;
      (** home-node service time per request, seconds (default 0 — the
          original behaviour) *)
  coalesce : bool;
      (** singleflight origin fetches: concurrent missers of one url wait
          on the first fetch instead of each hitting the origin *)
  admission : bool; (** token-bucket shedding at the home node *)
  token_rate : float; (** sustained accepts per second (default 2000) *)
  token_burst : float; (** bucket depth (default 64) *)
}

val default_config : config

type t

val create : ?config:config -> Pastry.node -> t

val get : t -> string -> (string * [ `Hit | `Miss | `Failed | `Shed ] * float)
(** [get t url] proxies one request: returns the object (empty on
    [`Failed] and [`Shed]), whether the home node had it cached, and the
    experienced delay in simulated seconds. [`Shed] is an admission-control
    fast reject from a healthy but overloaded home node. Blocking. *)

(** Counters for the figure series. *)

val requests_served : t -> int
(** Requests this node served as a home node. *)

val home_hits : t -> int
val home_misses : t -> int
val cached_entries : t -> int
val evictions : t -> int

val origin_fetches : t -> int
(** Actual origin-server fetches (with [coalesce] this stays at or below
    {!home_misses}: coalesced missers share one fetch). *)

val stale_served : t -> int
(** Cache hits served past their TTL — 0 by construction; the check suite
    pins it. *)

val shed_count : t -> int
(** Requests fast-rejected by admission control at this home node. *)
