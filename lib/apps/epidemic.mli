(** Epidemic dissemination on Erdős–Rényi random graphs — the ~35-line
    classic of §5.1: when a node receives a rumor for the first time it
    forwards it to [fanout] random peers. With fanout ≥ ln(N) + c the rumor
    reaches everyone with high probability. *)

type config = {
  fanout : int;
  rpc_timeout : float;
  oneway : bool;
      (** forward with {!Rpc.notify} (fire-and-forget, no reply, no fiber
          parked per forward) instead of an acknowledged [a_call] from a
          spawned fiber. Default [false] — the acknowledged mode, whose
          fixed-seed traces predate this field. One-way is the mode for
          very large populations: the per-forward cost drops to one
          message, which is what a million-node flood needs. *)
}

val default_config : config
(** [{ fanout = 6; rpc_timeout = 10.0; oneway = false }] *)

type node

val app : ?config:config -> register:(node -> unit) -> Env.t -> unit
(** Peers are drawn from [job.nodes]; deploy with [Descriptor.All] (or a
    [Random_subset]) so every instance knows a sample of the population. *)

val broadcast : node -> string -> unit
(** Inject a rumor at this node. Blocking (returns when the local sends
    are issued, not when the rumor has spread). *)

val received : node -> string list
(** Rumors seen by this node, most recent first. *)

val has_received : node -> string -> bool
val messages_forwarded : node -> int
val is_stopped : node -> bool
