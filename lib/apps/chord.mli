(** Chord (Stoica et al.) — the base implementation of Section 4 of the
    paper, a line-by-line transcription of Listings 1–3: plain successor
    pointer, finger table, periodic [stabilize] / [fix_fingers] /
    [check_predecessor], no fault tolerance. Deploy it on a failure-free
    testbed (the ModelNet runs of Fig. 6a/6b); use {!Chord_ft} under churn. *)

type config = {
  m : int; (** identifier bits: [2^m] positions (paper: 24) *)
  stabilize_interval : float; (** paper: 5 s *)
  join_delay_per_position : float;
      (** staggered-join pause: [position * this] seconds before joining,
          as in the deployment code of §5.2 (1 s) *)
  id_assignment : [ `Random | `Hash ];
}

val default_config : config

type node
(** In-process handle on one Chord instance, for experiment observation. *)

val app : ?config:config -> register:(node -> unit) -> Env.t -> unit
(** The application main, suitable for [Controller.deploy ~main]. Calls
    [register] with the node handle before joining the ring. *)

val assemble :
  ?config:config -> register:(node -> unit) -> ring:Node.t array -> index:int -> Env.t -> unit
(** Warm-start this instance at position [index] of an already-converged
    ring: [ring] is the complete membership sorted by id (ids unique),
    shared read-only across all instances. Predecessor, successor and all
    [m] fingers are computed directly from the membership — the exact
    fixed point that [stabilize]/[fix_fingers] converge to — and the same
    RPC surface as {!app} is bound, so lookups route identically. No
    periodic processes are started and no join traffic is generated,
    which is what makes a 100k-node ring constructible: the join protocol
    would need O(n) serialized joins and O(n*m) stabilizer firings first.
    Use {!app} to study convergence; use this to study routing at scales
    where convergence is not the question. *)

val id : node -> int
val addr : node -> Addr.t
val successor : node -> Node.t option
val predecessor : node -> Node.t option
val fingers : node -> Node.t option array
val is_stopped : node -> bool
val node_env : node -> Env.t

val lookup : node -> int -> (Node.t * int) option
(** [lookup n key] routes from [n]: [Some (responsible, hops)], or [None]
    if an RPC on the path failed. Blocking. *)

val ring_of : node list -> int list
(** Successor-order walk of the ring starting from the lowest-id node, as
    ids; a correctly converged ring visits every live node exactly once.
    (Pure inspection of in-process state, for tests.) *)
