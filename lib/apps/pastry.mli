(** Pastry (Rowstron & Druschel) — prefix routing with a leafset and a
    locality-aware routing table.

    Functionally equivalent to the implementation compared against
    FreePastry in §5.3 of the SPLAY paper: [b]-bit digits (default 4, so 16
    columns), a leafset of [leaf_size] nodes (half on each side), routing
    tables built with proximity neighbor selection (each slot prefers the
    candidate with the lowest measured RTT), periodic leafset exchange, and
    repair of broken entries on failed RPCs. *)

type config = {
  bits : int; (** identifier length in bits (default 32) *)
  b : int; (** digit width (default 4: 16 columns, [bits/b] rows) *)
  leaf_size : int; (** total leafset entries (default 16) *)
  stabilize_interval : float;
  rpc_timeout : float;
  suspect_threshold : int;
  join_delay_per_position : float;
  proximity : bool; (** locality-aware table construction (ablation knob) *)
  per_hop_overhead : float;
      (** extra per-message processing cost (seconds), scaled by the host's
          contention multiplier — models heavyweight runtimes (the
          FreePastry baseline sets it; SPLAY's is 0) *)
  id_assignment : [ `Random | `Hash ];
}

val default_config : config

type node

val app : ?config:config -> register:(node -> unit) -> Env.t -> unit

val assemble :
  ?config:config -> register:(node -> unit) -> ring:Node.t array -> index:int -> Env.t -> unit
(** Warm-start this instance at position [index] of an already-converged
    overlay: [ring] is the complete membership sorted by id (ids unique),
    shared read-only across instances. Leafset halves are the nearest
    [leaf_size/2] ring neighbours per side and every routing-table slot
    is filled with a member of its prefix range when one exists, so
    routing behaves as after full convergence; the same RPC surface as
    {!app} is bound. No join traffic, no periodic maintenance — the form
    used by serving benchmarks at node counts where running the join
    protocol to convergence is infeasible. *)

val id : node -> int
val addr : node -> Addr.t
val leafset : node -> Node.t list
(** Left then right neighbors, nearest first in each half. *)

val table_entries : node -> Node.t list
val is_stopped : node -> bool
val suspected_count : node -> int

val lookup : node -> int -> (Node.t * int) option
(** Route to the node responsible for the key (numerically closest id).
    [Some (owner, hops)], [None] when routing broke down. Blocking. *)

val digits : config -> int
(** Rows in the routing table ([bits / b]). *)

(** {1 Hooks for applications layered on Pastry} (Scribe, SplitStream, the
    cooperative web cache) *)

val next_hop : node -> int -> Node.t option
(** The routing decision for a key from this node: [Some n] to forward,
    [None] when this node is the key's owner. Pure (no network). *)

val report_failure : node -> Node.t -> unit
(** Tell Pastry a peer did not answer an application-level call, feeding
    the same suspicion/pruning machinery as Pastry's own traffic. *)

val node_env : node -> Env.t
val self_node : node -> Node.t
val config_of : node -> config
