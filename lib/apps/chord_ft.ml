module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Misc = Splay_runtime.Misc

type config = {
  m : int;
  stabilize_interval : float;
  join_delay_per_position : float;
  rpc_timeout : float;
  suspect_threshold : int;
  leafset_size : int;
  proximity_fingers : bool;
  id_assignment : [ `Random | `Hash ];
}

let default_config =
  {
    m = 24;
    stabilize_interval = 2.0;
    join_delay_per_position = 1.0;
    rpc_timeout = 60.0;
    suspect_threshold = 2;
    leafset_size = 4;
    proximity_fingers = false;
    id_assignment = `Random;
  }

type node = {
  cfg : config;
  env : Env.t;
  self : Node.t;
  mutable succs : Node.t list; (* clockwise, nearest first; the leafset *)
  mutable preds : Node.t list; (* counter-clockwise, nearest first *)
  finger : Node.t option array;
  mutable refresh : int;
  misses : (int, int) Hashtbl.t; (* node id -> consecutive missed replies *)
  mutable n_suspected : int;
}

let id t = t.self.Node.id
let addr t = t.self.Node.addr
let successors t = t.succs
let predecessors t = t.preds
let is_stopped t = Env.is_stopped t.env
let node_env t = t.env
let suspected_count t = t.n_suspected

let modulus t = Misc.pow2 t.cfg.m
let between t x a b ~incl_lo ~incl_hi = Misc.between x a b ~modulus:(modulus t) ~incl_lo ~incl_hi
let dist_cw t a b = Misc.ring_distance a b ~modulus:(modulus t)

let prune t n =
  let not_n x = not (Node.equal x n) in
  t.succs <- List.filter not_n t.succs;
  t.preds <- List.filter not_n t.preds;
  Array.iteri
    (fun i f -> match f with Some x when Node.equal x n -> t.finger.(i) <- None | _ -> ())
    t.finger

(* The suspect() function the paper omits for brevity: prune after a
   configurable number of missed replies. *)
let suspect t n =
  let k = 1 + Option.value ~default:0 (Hashtbl.find_opt t.misses n.Node.id) in
  if k >= t.cfg.suspect_threshold then begin
    Hashtbl.remove t.misses n.Node.id;
    t.n_suspected <- t.n_suspected + 1;
    prune t n
  end
  else Hashtbl.replace t.misses n.Node.id k

let acall t n proc args =
  match Rpc.a_call t.env n.Node.addr ~timeout:t.cfg.rpc_timeout proc args with
  | Ok v ->
      Hashtbl.remove t.misses n.Node.id;
      Ok v
  | Error _ ->
      suspect t n;
      Error ()

(* Insert a peer into the leafsets, keeping them sorted by ring distance
   and bounded. *)
let learn t n =
  if not (Node.equal n t.self) then begin
    let insert lst ~dist =
      if List.exists (Node.equal n) lst then lst
      else
        List.sort (fun a b -> Int.compare (dist a.Node.id) (dist b.Node.id)) (n :: lst)
        |> Misc.take t.cfg.leafset_size
    in
    t.succs <- insert t.succs ~dist:(fun i -> dist_cw t t.self.Node.id i);
    t.preds <- insert t.preds ~dist:(fun i -> dist_cw t i t.self.Node.id)
  end

let first_successor t = match t.succs with [] -> None | s :: _ -> Some s

let closest_preceding_candidates t key =
  let cands = ref [] in
  Array.iter (function Some f -> cands := f :: !cands | None -> ()) t.finger;
  List.iter (fun s -> cands := s :: !cands) t.succs;
  let ok n = between t n.Node.id t.self.Node.id key ~incl_lo:false ~incl_hi:false in
  let uniq = List.sort_uniq Node.compare_by_id (List.filter ok !cands) in
  (* closest to the key first: maximal clockwise position before key *)
  List.sort (fun a b -> Int.compare (dist_cw t a.Node.id key) (dist_cw t b.Node.id key)) uniq

let rec find_successor t key ~hops =
  match first_successor t with
  | None -> Some (t.self, hops)
  | Some succ when between t key t.self.Node.id succ.Node.id ~incl_lo:false ~incl_hi:true ->
      Some (succ, hops)
  | Some _ ->
      (* try candidates closest-first, falling back as peers fail *)
      let rec attempt = function
        | [] -> Some (t.self, hops) (* nobody closer is alive: we answer *)
        | n0 :: rest -> (
            match acall t n0 "find_successor" [ Codec.Int key; Codec.Int (hops + 1) ] with
            | Ok v -> (
                match Codec.member "node" v with
                | Codec.Null -> None
                | nv -> Some (Node.of_value nv, Codec.to_int (Codec.member "hops" v)))
            | Error () -> attempt rest)
      in
      attempt (closest_preceding_candidates t key)

and handle_find_successor t args =
  match args with
  | [ key; hops ] -> (
      match find_successor t (Codec.to_int key) ~hops:(Codec.to_int hops) with
      | Some (n, h) -> Codec.Assoc [ ("node", Node.to_value n); ("hops", Codec.Int h) ]
      | None -> Codec.Assoc [ ("node", Codec.Null); ("hops", Codec.Int 0) ])
  | _ -> failwith "find_successor: bad arguments"

let notify t n0 = learn t n0

let join t n0 =
  match acall t n0 "find_successor" [ Codec.Int t.self.Node.id; Codec.Int 0 ] with
  | Ok v ->
      (match Codec.member "node" v with Codec.Null -> () | nv -> learn t (Node.of_value nv));
      (match first_successor t with
      | Some succ -> ignore (acall t succ "notify" [ Node.to_value t.self ])
      | None -> ())
  | Error () -> () (* rendezvous unreachable; the app-level join-retry loop tries again *)

(* Stabilize against the first live successor, and adopt its successor list
   (the leafset replication that rides along in fault-tolerant Chord). *)
let stabilize t =
  let rec with_first_live = function
    | [] -> ()
    | s :: rest -> (
        match acall t s "predecessor" [] with
        | Error () -> with_first_live rest
        | Ok pv ->
            (match Node.opt_of_value pv with
            | Some x
              when between t x.Node.id t.self.Node.id s.Node.id ~incl_lo:false ~incl_hi:false ->
                learn t x
            | _ -> ());
            (match acall t s "successors" [] with
            | Ok (Codec.List l) -> List.iter (fun v -> learn t (Node.of_value v)) l
            | Ok _ | Error () -> ());
            (match first_successor t with
            | Some s' -> ignore (acall t s' "notify" [ Node.to_value t.self ])
            | None -> ()))
  in
  with_first_live t.succs

let check_predecessors t =
  match t.preds with
  | [] -> ()
  | p :: _ -> if not (Rpc.ping t.env ~timeout:t.cfg.rpc_timeout p.Node.addr) then suspect t p

let rtt t n = Net.base_rtt t.env.Env.net t.self.Node.addr.Addr.host n.Node.addr.Addr.host

let fix_fingers t =
  t.refresh <- (t.refresh mod t.cfg.m) + 1;
  let target = Misc.ring_add t.self.Node.id (Misc.pow2 (t.refresh - 1)) ~modulus:(modulus t) in
  match find_successor t target ~hops:0 with
  | Some (n, _) when not (Node.equal n t.self) ->
      let choice =
        if not t.cfg.proximity_fingers then n
        else begin
          (* latency-aware fingers: any node past the target is a valid
             finger; among the owner and its successors still within the
             finger's span, keep the closest in the network *)
          let span_end =
            Misc.ring_add t.self.Node.id (Misc.pow2 (min (t.cfg.m - 1) t.refresh))
              ~modulus:(modulus t)
          in
          let candidates =
            match acall t n "successors" [] with
            | Ok (Codec.List l) ->
                n
                :: (List.map Node.of_value l
                   |> List.filter (fun s ->
                          between t s.Node.id target span_end ~incl_lo:true ~incl_hi:false))
            | Ok _ | Error () -> [ n ]
          in
          List.fold_left (fun best c -> if rtt t c < rtt t best then c else best)
            (List.hd candidates) candidates
        end
      in
      t.finger.(t.refresh - 1) <- Some choice
  | _ -> ()

let app ?(config = default_config) ~register env =
  let self = Node.self ~how:config.id_assignment ~bits:config.m env in
  let t =
    {
      cfg = config;
      env;
      self;
      succs = [];
      preds = [];
      finger = Array.make config.m None;
      refresh = 0;
      misses = Hashtbl.create 16;
      n_suspected = 0;
    }
  in
  register t;
  Rpc.server env
    [
      ("find_successor", handle_find_successor t);
      ("predecessor", fun _ -> Node.opt_to_value (match t.preds with [] -> None | p :: _ -> Some p));
      ("successors", fun _ -> Codec.List (List.map Node.to_value t.succs));
      ( "notify",
        fun args ->
          (match args with
          | [ n ] -> notify t (Node.of_value n)
          | _ -> failwith "notify: bad arguments");
          Codec.Null );
    ];
  ignore (Env.periodic env config.stabilize_interval (fun () -> stabilize t));
  ignore (Env.periodic env config.stabilize_interval (fun () -> check_predecessors t));
  ignore (Env.periodic env config.stabilize_interval (fun () -> fix_fingers t));
  Env.sleep (Float.of_int env.Env.position *. config.join_delay_per_position);
  match env.Env.nodes with
  | rendezvous :: _ when env.Env.position > 1 ->
      let rendezvous = Node.make ~id:0 ~addr:rendezvous in
      join t rendezvous;
      (* A join into a ring that is still repairing can time out (the
         recursive find_successor may stall on a not-yet-pruned dead hop
         inside its own deadline). A fault-tolerant node keeps trying —
         giving up here would leave it orphaned forever, with an empty
         leafset that stabilization can never grow. *)
      if t.succs = [] then
        ignore
          (Env.thread env ~name:"join-retry" (fun () ->
               let attempts = ref 0 in
               while t.succs = [] && !attempts < 60 do
                 incr attempts;
                 Env.sleep config.stabilize_interval;
                 if t.succs = [] then join t rendezvous
               done))
  | _ -> ()

let lookup t key = find_successor t key ~hops:0

let successor = first_successor

(* Same successor-order walk as {!Chord.ring_of}, over the head of the
   leafset — shared ground truth for the ring-consistency oracle. *)
let ring_of nodes =
  match List.sort (fun a b -> Int.compare (id a) (id b)) nodes with
  | [] -> []
  | first :: _ ->
      let by_id = Hashtbl.create 64 in
      List.iter (fun n -> Hashtbl.replace by_id (id n) n) nodes;
      let rec walk acc n =
        match successor n with
        | None -> List.rev acc
        | Some s ->
            if s.Node.id = id first then List.rev acc
            else (
              match Hashtbl.find_opt by_id s.Node.id with
              | Some next when List.length acc <= List.length nodes -> walk (s.Node.id :: acc) next
              | _ -> List.rev acc)
      in
      walk [ id first ] first
