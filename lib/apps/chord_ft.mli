(** Fault-tolerant Chord — the extensions sketched at the end of Section 4:
    fault-tolerant RPCs ([rpc.a_call] with a tunable timeout and a
    [suspect] function that prunes unresponsive peers from the routing
    state after a configurable number of misses), and a leafset of several
    successors and predecessors in place of the single pointers, as
    suggested by the Chord paper and similar to Pastry's leafset. This is
    the version deployed on PlanetLab (Fig. 6c) and under churn. *)

type config = {
  m : int;
  stabilize_interval : float; (** shorter than base Chord on PlanetLab (paper: "shorter stabilization intervals") *)
  join_delay_per_position : float;
  rpc_timeout : float; (** paper example tunes 2 min down to 1 min *)
  suspect_threshold : int; (** prune after this many missed replies *)
  leafset_size : int; (** successors and predecessors kept (paper: 4) *)
  proximity_fingers : bool;
      (** latency-aware finger selection (network-coordinates style), the
          optimization MIT's Chord has and the paper's SPLAY Chord lacks *)
  id_assignment : [ `Random | `Hash ];
}

val default_config : config

type node

val app : ?config:config -> register:(node -> unit) -> Env.t -> unit

val id : node -> int
val addr : node -> Addr.t
val successors : node -> Node.t list
val predecessors : node -> Node.t list

(** Head of the successor leafset — the node's best current guess, the
    counterpart of base Chord's single pointer. *)
val successor : node -> Node.t option
val is_stopped : node -> bool
val node_env : node -> Env.t

val lookup : node -> int -> (Node.t * int) option
(** Routes around individual failures using the leafset; [None] only when
    every candidate next hop is unresponsive. Blocking. *)

val suspected_count : node -> int
(** Peers pruned so far (observability for churn experiments). *)

val ring_of : node list -> int list
(** Successor-order walk from the lowest-id node (see {!Chord.ring_of});
    a repaired ring visits every live node exactly once. Pure inspection
    of in-process state, for tests and invariant oracles. *)
