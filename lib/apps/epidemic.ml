module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Rng = Splay_sim.Rng

type config = { fanout : int; rpc_timeout : float; oneway : bool }

let default_config = { fanout = 6; rpc_timeout = 10.0; oneway = false }

type node = {
  cfg : config;
  env : Env.t;
  mutable seen : string list;
  seen_set : (string, unit) Hashtbl.t;
  mutable forwarded : int;
  e_rng : Rng.t;
}

let received t = t.seen
let has_received t rumor = Hashtbl.mem t.seen_set rumor
let messages_forwarded t = t.forwarded
let is_stopped t = Env.is_stopped t.env

let peers t = List.filter (fun a -> not (Addr.equal a t.env.Env.me)) t.env.Env.nodes

(* Two forwarding modes. The acknowledged mode ([oneway = false]) spawns
   a fiber per target that blocks on the RPC reply — observable outcomes,
   but each in-flight forward parks a fiber until the reply or timeout.
   The one-way mode sends [Rpc.notify] straight from the receive path: no
   spawn, no parked fiber, no reply traffic — the shape that lets a
   single process push a rumor through a million nodes. Gossip needs no
   acks anyway: redundancy is the protocol's own reliability mechanism. *)
let forward t rumor =
  let targets = Rng.sample t.e_rng t.cfg.fanout (peers t) in
  if t.cfg.oneway then
    List.iter
      (fun a ->
        t.forwarded <- t.forwarded + 1;
        Rpc.notify t.env a "epidemic.rumor" [ Codec.String rumor ])
      targets
  else
    List.iter
      (fun a ->
        t.forwarded <- t.forwarded + 1;
        ignore
          (Env.thread t.env (fun () ->
               ignore
                 (Rpc.a_call t.env a ~timeout:t.cfg.rpc_timeout "epidemic.rumor"
                    [ Codec.String rumor ]))))
      targets

let receive t rumor =
  if not (Hashtbl.mem t.seen_set rumor) then begin
    Hashtbl.replace t.seen_set rumor ();
    t.seen <- rumor :: t.seen;
    forward t rumor
  end

let broadcast t rumor = receive t rumor

let app ?(config = default_config) ~register env =
  let t =
    {
      cfg = config;
      env;
      seen = [];
      seen_set = Hashtbl.create 16;
      forwarded = 0;
      e_rng = Rng.split env.Env.env_rng;
    }
  in
  register t;
  Rpc.server env
    [
      ( "epidemic.rumor",
        fun args ->
          (match args with
          | [ Codec.String rumor ] -> receive t rumor
          | _ -> failwith "epidemic.rumor: bad arguments");
          Codec.Null );
    ]
