(** Transit-stub router topology, the ModelNet substitute.

    The paper's ModelNet deployment emulates 1,100 hosts on a 500-node
    transit-stub topology with 10 Mbps links; RTTs are 10 ms within a stub
    domain, 30 ms stub-stub / stub-transit, 100 ms transit-transit. We build
    the same family of graphs and compute path latencies with Dijkstra, so
    route delays emerge from the topology exactly as in the emulator. *)

type t

type router = int

val transit_stub :
  ?transits:int ->
  ?stubs_per_transit:int ->
  ?transit_transit_rtt:float ->
  ?stub_transit_rtt:float ->
  ?intra_stub_rtt:float ->
  Splay_sim.Rng.t ->
  t
(** Build a topology with [transits] transit routers (ring plus random
    chords) each serving [stubs_per_transit] stub routers. Defaults:
    10 transits, 49 stubs each (= 500 routers), RTTs 100 / 30 / 10 ms as in
    the paper's setup. *)

val router_count : t -> int

val stub_routers : t -> router array
(** The routers host machines may attach to. *)

val random_stub : t -> Splay_sim.Rng.t -> router

val delay : t -> router -> router -> float
  [@@ocaml.deprecated
    "direct matrix access is being retired; query delays through \
     Latency.matrix (or Testbed.base_delay) so precomputed and synthetic \
     backends stay interchangeable"]
(** One-way latency in seconds along the shortest path. Stub routers are
    leaves, so delays reduce to the two uplink weights plus a precomputed
    transit-to-transit distance matrix — O(1) per query, no Dijkstra
    re-runs. Within the same stub router, the intra-stub delay applies.

    @deprecated Use {!Latency.matrix} over this topology (or
    {!Testbed.base_delay} on a testbed that embeds it): the [Latency]
    signature is the one interface both the precomputed-matrix and the
    hash-seeded synthetic backends implement. *)

val intra_stub_delay : t -> float
(** One-way delay between two hosts attached to the same stub router. *)
