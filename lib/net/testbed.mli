(** Host models for the three deployment environments of the paper.

    PlanetLab is modelled synthetically (no live network here): pairwise
    base delays come from 2-D virtual coordinates, per-message jitter is
    lognormal, and per-host responsiveness is a heavy-tailed service-time
    distribution calibrated against Figure 3 of the paper (17% of hosts
    answer a 20 KB probe within 250 ms; over 45% need more than 1 s).
    ModelNet hosts attach to a {!Topology.t} transit-stub graph. Cluster
    hosts sit on a 1 Gbps switched LAN. Mixed testbeds combine PlanetLab and
    ModelNet hosts, crossing a WAN gateway. *)

type kind = Planetlab | Modelnet | Cluster

type host = {
  id : Addr.host_id;
  kind : kind;
  mutable up : bool;
  coord : float * float; (* virtual coordinates, seconds of one-way delay *)
  load_factor : float; (* >= 1, multiplies per-message processing cost *)
  slowness : float; (* mean of the heavy-tailed service time (seconds) *)
  bw_up : float; (* bytes/second *)
  bw_down : float;
  stub : Topology.router; (* attachment for Modelnet/Cluster hosts *)
  mem_mb : float;
  mutable up_busy : float; (* uplink busy-until (absolute seconds) *)
  mutable down_busy : float;
  mutable service_mult : float; (* contention multiplier, raised by the daemon model *)
  host_rng : Splay_sim.Rng.t;
}

type t

val planetlab : ?n:int -> Splay_sim.Rng.t -> t
(** [n] defaults to 450 hosts, matching the experimental setup. *)

val modelnet : ?hosts:int -> ?bandwidth:float -> ?topology:Topology.t -> Splay_sim.Rng.t -> t
(** [hosts] defaults to 1,100 on a 500-router transit-stub graph;
    [bandwidth] defaults to 10 Mbps (in bytes/second) on every host. *)

val cluster : ?n:int -> ?mem_mb:float -> Splay_sim.Rng.t -> t
(** [n] defaults to 11 dual-core 2 GB machines on a 1 Gbps switch. *)

val mixed : planetlab:int -> modelnet:int -> Splay_sim.Rng.t -> t
(** PlanetLab hosts first (ids [0 .. planetlab-1]), then ModelNet hosts. *)

val synthetic :
  ?latency:Latency.t ->
  ?bw:float ->
  ?proc_cost:float ->
  ?mem_mb:float ->
  hosts:int ->
  Splay_sim.Rng.t ->
  t
(** Million-host backend: no per-host records at all. Base delays come
    from the {!Latency.t} model ([latency] defaults to
    [Latency.synthetic ~seed:(a draw from the rng)]), every host shares
    the same [bw] (default 10 Mbps, in bytes/second) and [proc_cost]
    (default 0.1 ms), and the only per-host state is the pair of
    link-busy clocks (two unboxed floats) plus one up/down bit — a few
    words per host instead of a few hundred, which is what lets a single
    simulated deployment reach 10^6 hosts. Hosts never jitter (delays are
    the model's stable answers), and {!host} / {!hosts} raise
    [Invalid_argument]: there are no records to hand out. *)

(** Struct-of-arrays storage behind {!synthetic} testbeds. The network
    send path indexes these arrays directly by host id — the compact
    counterpart of the [host]-record fast path. *)
module Compact : sig
  type t = {
    n : int;
    lat : Latency.t;
    up_bits : Bytes.t;  (** 1 byte per host; 0 = down *)
    bw_up : float;  (** shared uplink bandwidth, bytes/second *)
    bw_down : float;
    up_busy : float array;  (** per-host uplink busy-until, unboxed *)
    down_busy : float array;
    proc_cost : float;  (** shared per-message processing cost, seconds *)
    mem_mb : float;
    c_rng : Splay_sim.Rng.t;  (** control-plane service-time stream *)
  }
end

val compact : t -> Compact.t option
(** The struct-of-arrays state when this is a {!synthetic} testbed. *)

val latency : t -> Latency.t option
(** The latency model this testbed routes pair delays through: the
    {!Latency.matrix} over its topology for emulated (ModelNet) testbeds,
    the configured model for {!synthetic} ones, [None] where delays are
    derived from coordinates or constants (PlanetLab, Cluster). *)

val host_up : t -> Addr.host_id -> bool

val set_host_up : t -> Addr.host_id -> bool -> unit
(** Up/down flag, uniform over record-backed and compact testbeds. *)

val with_extra_host : t -> t * Addr.host_id
(** Append one well-provisioned LAN-class host — where the trusted
    controller processes run. Returns the extended testbed and the new
    host's id (always the last index). *)

val size : t -> int

val host : t -> Addr.host_id -> host
val hosts : t -> host array
(** Raise [Invalid_argument] on {!synthetic} testbeds, which keep no
    per-host records — use {!host_up}, {!base_delay} and {!compact}. *)

val rng : t -> Splay_sim.Rng.t

val base_delay : t -> Addr.host_id -> Addr.host_id -> float
(** Stable one-way propagation delay (no jitter); what a proximity-aware
    protocol can estimate by pinging. *)

val delay : t -> Addr.host_id -> Addr.host_id -> float
(** One-way propagation delay for one message: {!base_delay} plus jitter
    (PlanetLab hosts only; emulated and LAN links are stable). *)

val delay_h : t -> host -> host -> float
(** {!delay} keyed by host records — the send path already holds both
    endpoints for the link queues, so this skips the id lookups. Draws
    from the same RNG stream in the same order as {!delay}. *)

val service_delay : t -> Addr.host_id -> float
(** Draw a host service time for a control-plane request (process fork,
    probe answer): exponential with the host's [slowness] mean, scaled by
    its contention multiplier. *)

val service_mult : t -> Addr.host_id -> float
(** Contention multiplier for application service time, uniform over
    representations: per-host record where one exists, 1.0 on
    {!synthetic} testbeds (which model contention in the network layer
    only). *)

val proc_cost : t -> Addr.host_id -> float
(** Per-message processing cost on this host for data-plane traffic:
    sub-millisecond, scaled by [load_factor] and [service_mult]. *)

val proc_cost_h : host -> float
(** {!proc_cost} keyed by the host record (no lookup, no RNG). *)
