type rtt_dist =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Lognormal of { median : float; sigma : float }
  | Classes of (float * float) array

(* Dispatch on a small variant rather than a closure: the synthetic model
   sits on the packet-delivery hot path and the variant keeps its
   parameters inline (no captured environment to chase). *)
type impl =
  | Synthetic of { seed64 : int64; dist : rtt_dist; intra_host : float }
  | Matrix of { topo : Topology.t; stub_of : Addr.host_id -> Topology.router }
  | Fn of { fn : Addr.host_id -> Addr.host_id -> float; fn_min_rtt : float option }

type t = { name : string; seed : int; impl : impl }

let name t = t.name
let seed t = t.seed

(* splitmix64 finalizer (Steele et al.): a bijective avalanche mix. The
   per-pair draw is [mix (seed64 + gamma * pair_key)] — the same stream
   construction Rng uses, but stateless: the pair key addresses directly
   into the sequence, so no generator state is kept per pair. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let gamma = 0x9e3779b97f4a7c15L

(* Uniform draw in [0,1) from the pair hash: top 53 bits, as Rng.float. *)
let pair_u seed64 a b =
  let lo = if a < b then a else b and hi = if a < b then b else a in
  (* host ids stay far below 2^31 even at million-host scale, so the pair
     packs injectively into one 62-bit key *)
  let key = Int64.of_int ((lo lsl 31) lor hi) in
  let bits = mix64 (Int64.add seed64 (Int64.mul gamma key)) in
  Int64.to_float (Int64.shift_right_logical bits 11) *. 0x1.0p-53

(* Inverse standard-normal CDF, Acklam's rational approximation (~1e-9
   relative error) — turns the single per-pair uniform draw into a normal
   one without needing a second hash for Box-Muller. *)
let inv_normal_cdf p =
  let tail_num q =
    ((((((-7.784894002430293e-03 *. q) -. 3.223964580411365e-01) *. q -. 2.400758277161838e+00)
       *. q
      -. 2.549732539343734e+00)
      *. q
     +. 4.374664141464968e+00)
     *. q)
    +. 2.938163982698783e+00
  and tail_den q =
    ((((7.784695709041462e-03 *. q +. 3.224671290700398e-01) *. q +. 2.445134137142996e+00) *. q
     +. 3.754408661907416e+00)
     *. q)
    +. 1.0
  in
  let p_low = 0.02425 in
  if p <= 0.0 then neg_infinity
  else if p >= 1.0 then infinity
  else if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    tail_num q /. tail_den q
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      ((((((-3.969683028665376e+01 *. r) +. 2.209460984245205e+02) *. r -. 2.759285104469687e+02)
         *. r
        +. 1.383577518672690e+02)
        *. r
       -. 3.066479806614716e+01)
       *. r)
      +. 2.506628277459239e+00
    and den =
      (((((-5.447609879822406e+01 *. r +. 1.615858368580409e+02) *. r -. 1.556989798598866e+02)
         *. r
        +. 6.680131188771972e+01)
        *. r
       -. 1.328068155288572e+01)
       *. r)
      +. 1.0
    in
    num *. q /. den
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.(tail_num q /. tail_den q)
  end

(* Quantile function of the configured RTT distribution: u in [0,1) to a
   round-trip time in seconds. *)
let rtt_of_u dist u =
  match dist with
  | Constant rtt -> rtt
  | Uniform { lo; hi } -> lo +. ((hi -. lo) *. u)
  | Lognormal { median; sigma } -> median *. exp (sigma *. inv_normal_cdf u)
  | Classes classes ->
      let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 classes in
      let target = u *. total in
      let n = Array.length classes in
      let rec pick i acc =
        if i >= n - 1 then snd classes.(n - 1)
        else begin
          let acc = acc +. fst classes.(i) in
          if target < acc then snd classes.(i) else pick (i + 1) acc
        end
      in
      pick 0 0.0

let transit_stub_classes =
  (* same-stub / stub-stub / transit-crossing mix, weighted roughly as a
     uniform host placement over the paper's 10x49 graph lands *)
  Classes [| (0.02, 0.010); (0.58, 0.030); (0.40, 0.100) |]

let validate_dist = function
  | Constant rtt -> if rtt < 0.0 then invalid_arg "Latency.synthetic: negative RTT"
  | Uniform { lo; hi } ->
      if lo < 0.0 || hi < lo then invalid_arg "Latency.synthetic: bad Uniform bounds"
  | Lognormal { median; sigma } ->
      if median <= 0.0 || sigma < 0.0 then invalid_arg "Latency.synthetic: bad Lognormal"
  | Classes classes ->
      if Array.length classes = 0 then invalid_arg "Latency.synthetic: empty Classes";
      Array.iter
        (fun (w, rtt) ->
          if w < 0.0 || rtt < 0.0 then invalid_arg "Latency.synthetic: bad Classes entry")
        classes;
      if Array.for_all (fun (w, _) -> w = 0.0) classes then
        invalid_arg "Latency.synthetic: all-zero Classes weights"

let synthetic ?(dist = transit_stub_classes) ?(intra_host = 0.000_05) ~seed () =
  validate_dist dist;
  { name = "synthetic"; seed; impl = Synthetic { seed64 = Int64.of_int seed; dist; intra_host } }

let matrix topo ~stub_of = { name = "matrix"; seed = 0; impl = Matrix { topo; stub_of } }

let of_fn ~name ?(seed = 0) ?min_rtt f =
  (match min_rtt with
  | Some r when r <= 0.0 -> invalid_arg "Latency.of_fn: min_rtt must be positive"
  | _ -> ());
  { name; seed; impl = Fn { fn = f; fn_min_rtt = min_rtt } }

let delay t a b =
  match t.impl with
  | Synthetic { seed64; dist; intra_host } ->
      if a = b then intra_host else 0.5 *. rtt_of_u dist (pair_u seed64 a b)
  | Matrix { topo; stub_of } ->
      (Topology.delay [@ocaml.warning "-3"]) topo (stub_of a) (stub_of b)
  | Fn { fn; _ } -> fn a b

(* {2 Lookahead} *)

(* Hard lower bound on the RTT the distribution can emit between two
   DISTINCT hosts ([intra_host] is excluded on purpose: a host never
   crosses a partition boundary to talk to itself). Lognormal has no
   positive bound — its quantile goes to 0 with u — so it yields [None]
   and cannot drive the conservative parallel engine. *)
let dist_min_rtt = function
  | Constant rtt -> Some rtt
  | Uniform { lo; _ } -> Some lo
  | Lognormal _ -> None
  | Classes classes ->
      (* zero-weight classes are unreachable: [pick] returns class [i]
         only when the cumulative weight strictly exceeds the target,
         and the last class only when target >= the preceding sum *)
      let m = ref infinity in
      Array.iter (fun (w, rtt) -> if w > 0.0 && rtt < !m then m := rtt) classes;
      if !m = infinity then None else Some !m

let min_rtt t =
  match t.impl with
  | Synthetic { dist; _ } -> dist_min_rtt dist
  | Matrix { topo; _ } ->
      (* Two distinct hosts can share a stub router, so the intra-stub
         hop is always reachable; the scan catches topologies where some
         router pair is even cheaper. Router counts are small (hundreds),
         and this runs once at partitioning time, not on the hot path. *)
      let d = (Topology.delay [@ocaml.warning "-3"]) topo in
      let n = Topology.router_count topo in
      let m = ref (Topology.intra_stub_delay topo) in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          let one_way = d a b in
          if one_way < !m then m := one_way
        done
      done;
      if !m <= 0.0 then None else Some (2.0 *. !m)
  | Fn { fn_min_rtt; _ } -> fn_min_rtt

let lookahead t = Option.map (fun rtt -> 0.5 *. rtt) (min_rtt t)
