(** One simulated deployment spread across engine partitions.

    The network-aware face of {!Splay_sim.Par}: hosts are placed
    round-robin over [parts] partitions ([host_id mod parts]), each
    partition owns a synthetic testbed copy and a {!Net.t} on its own
    engine, and a [Net.send] whose destination is homed elsewhere
    travels through a Par mailbox — sender-side link model on the source
    partition, receiver-side on the destination's (see
    {!Net.set_remote}). Lookahead is [Latency.min_rtt / 2] of the
    testbed's latency model.

    Build protocol nodes the usual way — [Env.create (net_of_host fab
    h) ~me:addr ...] — then {!run}. Everything {!Splay_sim.Par}
    promises holds here: the run is a pure function of
    [(seed, parts)], byte-identical for any [?domains]. *)

type t

val create :
  ?seed:int ->
  ?latency:Latency.t ->
  ?bw:float ->
  ?proc_cost:float ->
  ?mem_mb:float ->
  hosts:int ->
  parts:int ->
  unit ->
  t
(** Build [parts] partitions over [hosts] hosts. [latency] defaults to
    [Latency.synthetic] seeded from [seed]; [bw]/[proc_cost]/[mem_mb]
    are passed to each {!Testbed.synthetic}. @raise Invalid_argument if
    the latency model answers [min_rtt = None] or zero (Lognormal
    distributions, or {!Latency.of_fn} without its [~min_rtt] argument,
    cannot bound lookahead) — run those sequentially instead. *)

val part_of : t -> Addr.host_id -> int
val parts : t -> int
val hosts : t -> int
val lookahead : t -> float

val engine : t -> int -> Splay_sim.Engine.t
(** Partition [i]'s engine. *)

val net : t -> int -> Net.t
(** Partition [i]'s network. *)

val net_of_host : t -> Addr.host_id -> Net.t
(** The network that host [h]'s endpoints must be bound on (its home
    partition's) — hand this to [Env.create] for node [h]. *)

val with_part : t -> int -> (unit -> 'a) -> 'a
(** Run setup code under partition [i]'s recording state; see
    {!Splay_sim.Par.with_part}. *)

val par : t -> Splay_sim.Par.t

val run : ?domains:int -> t -> Splay_sim.Par.run_info
(** Drive the whole deployment to completion on up to [domains] worker
    domains (default [parts], clamped to the machine). Single-shot.
    @raise Invalid_argument if any partition engine has a perturbation
    policy installed — nemesis schedules are sequential-only. *)

val host_up : t -> Addr.host_id -> bool

val set_host_up : t -> Addr.host_id -> bool -> unit
(** Fan the liveness bit out to every partition's testbed copy (any
    partition may be the sender of the next message to [h]). *)

val messages_sent : t -> int
val bytes_sent : t -> int
val messages_dropped : t -> int
(** Aggregates over all partitions' networks. *)
