(* One simulated deployment spread across engine partitions.

   {!Splay_sim.Par} knows engines, windows and mailboxes; this module
   adds the network layer: host placement (round-robin over host ids),
   one synthetic testbed + [Net.t] per partition, and the routing glue
   that turns a cross-partition [Net.send] into a mailbox post.

   Host state partitions cleanly because the compact testbed is
   struct-of-arrays indexed by host id and each side of a transfer only
   touches its own host's slots: partition [i]'s copy carries the
   authoritative uplink-busy clock for hosts homed on [i] (senders live
   there) and the authoritative downlink-busy clock for the same hosts
   (receivers live there too — [deliver_remote] runs on the
   destination's home partition). The other partitions' copies of those
   slots simply stay at zero. The only globally-visible bit, host
   liveness, is fanned out to every copy by {!set_host_up}.

   Requires a latency model with a positive {!Latency.min_rtt}: the
   lookahead is [min_rtt / 2], the promise that even an instantly-sent
   message cannot cross partitions faster than one window. *)

module Engine = Splay_sim.Engine
module Par = Splay_sim.Par

type t = {
  par : Par.t;
  tbs : Testbed.t array;
  nets : Net.t array;
  parts : int;
  hosts : int;
}

let part_of t h = h mod t.parts

let create ?(seed = 42) ?latency ?bw ?proc_cost ?mem_mb ~hosts ~parts () =
  if parts < 1 then invalid_arg "Fabric.create: parts must be >= 1";
  if hosts < 1 then invalid_arg "Fabric.create: hosts must be >= 1";
  let lat =
    match latency with
    | Some l -> l
    | None -> Latency.synthetic ~seed:(seed lxor 0x5bd1e9) ()
  in
  let look =
    match Latency.lookahead lat with
    | Some l when l > 0.0 -> l
    | _ ->
        invalid_arg
          (Printf.sprintf
             "Fabric.create: latency model %S has no positive min_rtt — Lognormal cannot bound \
              lookahead, and of_fn models must pass ~min_rtt explicitly"
             (Latency.name lat))
  in
  let par = Par.create ~seed ~lookahead:look ~parts () in
  let tbs =
    Array.init parts (fun i ->
        Testbed.synthetic ~latency:lat ?bw ?proc_cost ?mem_mb ~hosts
          (Engine.rng (Par.engine par i)))
  in
  let nets = Array.init parts (fun i -> Net.create (Par.engine par i) tbs.(i)) in
  let t = { par; tbs; nets; parts; hosts } in
  Array.iteri
    (fun i net ->
      Net.set_remote net
        ~local:(fun h -> h mod parts = i)
        ~route:(fun ~src ~dst ~size ~arrival ~up_wait ~ctx payload ->
          let j = dst.Addr.host mod parts in
          Par.post par ~src:i ~dst:j ~at:arrival (fun () ->
              Net.deliver_remote nets.(j) ~size ~src ~dst ~up_wait ~ctx payload)))
    nets;
  t

let par t = t.par
let parts t = t.parts
let hosts t = t.hosts
let lookahead t = Par.lookahead t.par
let net t i = t.nets.(i)
let engine t i = Par.engine t.par i
let net_of_host t h = t.nets.(part_of t h)
let with_part t i f = Par.with_part t.par i f

let set_host_up t h up = Array.iter (fun tb -> Testbed.set_host_up tb h up) t.tbs

let host_up t h = Testbed.host_up t.tbs.(part_of t h) h

let run ?domains t = Par.run ?domains t.par

let messages_sent t = Array.fold_left (fun acc n -> acc + Net.messages_sent n) 0 t.nets
let bytes_sent t = Array.fold_left (fun acc n -> acc + Net.bytes_sent n) 0 t.nets
let messages_dropped t = Array.fold_left (fun acc n -> acc + Net.messages_dropped n) 0 t.nets
