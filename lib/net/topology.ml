type router = int

(* Stub routers are leaves by construction: every path between two
   distinct routers decomposes as  stub --(uplink)--> transit ~~> transit
   --(uplink)--> stub , so all-pairs delays reduce to a transit×transit
   distance matrix (tiny: 10×10 for the paper's 500-router graph) plus
   the two uplink weights. [delay] is then O(1) arithmetic with no
   Dijkstra re-runs and no per-query cache lookups — it sits on the
   packet-delivery hot path of every ModelNet experiment. *)
type t = {
  n : int;
  transits : int;
  stubs : router array;
  intra_stub : float;
  uplink : int array; (* router -> its transit (transits map to themselves) *)
  upweight : float array; (* router -> uplink edge weight (0 for transits) *)
  tt_dist : float array array; (* transit×transit shortest-path matrix *)
}

(* Dijkstra over the transit subgraph, on the specialized event heap:
   keys are (distance, router), so ties break deterministically on the
   lower router id and the comparisons are unboxed. *)
let dijkstra ~n adj src =
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  let heap = Splay_sim.Eheap.create () in
  Splay_sim.Eheap.push heap ~at:0.0 ~seq:src src;
  let rec loop () =
    match Splay_sim.Eheap.pop heap with
    | None -> ()
    | Some u ->
        (* stale entries (u was already settled with a smaller distance)
           just re-relax against the settled value: no-ops, no re-push *)
        let du = dist.(u) in
        List.iter
          (fun (v, w) ->
            let nd = du +. w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              Splay_sim.Eheap.push heap ~at:nd ~seq:v v
            end)
          adj.(u);
        loop ()
  in
  loop ();
  dist

let transit_stub ?(transits = 10) ?(stubs_per_transit = 49) ?(transit_transit_rtt = 0.100)
    ?(stub_transit_rtt = 0.030) ?(intra_stub_rtt = 0.010) rng =
  if transits < 1 || stubs_per_transit < 1 then invalid_arg "Topology.transit_stub";
  let n = transits * (1 + stubs_per_transit) in
  (* transit routers are 0..transits-1, connected in a ring plus a few
     random chords for path diversity *)
  let tadj = Array.make transits [] in
  let add_edge a b d =
    tadj.(a) <- (b, d) :: tadj.(a);
    tadj.(b) <- (a, d) :: tadj.(b)
  in
  let tt = transit_transit_rtt /. 2.0 in
  for i = 0 to transits - 1 do
    add_edge i ((i + 1) mod transits) tt
  done;
  if transits > 3 then
    for _ = 1 to transits / 2 do
      let a = Splay_sim.Rng.int rng transits and b = Splay_sim.Rng.int rng transits in
      if a <> b && not (List.mem_assoc b tadj.(a)) then add_edge a b tt
    done;
  (* stub routers hang off their transit *)
  let st = stub_transit_rtt /. 2.0 in
  let uplink = Array.init n Fun.id in
  let upweight = Array.make n 0.0 in
  let stubs = Array.make (transits * stubs_per_transit) 0 in
  let idx = ref 0 in
  for tr = 0 to transits - 1 do
    for s = 0 to stubs_per_transit - 1 do
      let r = transits + (tr * stubs_per_transit) + s in
      uplink.(r) <- tr;
      upweight.(r) <- st;
      stubs.(!idx) <- r;
      incr idx
    done
  done;
  (* precompute the transit×transit matrix once; each row is one Dijkstra
     over the [transits]-node subgraph *)
  let tt_dist = Array.init transits (fun src -> dijkstra ~n:transits tadj src) in
  { n; transits; stubs; intra_stub = intra_stub_rtt /. 2.0; uplink; upweight; tt_dist }

let router_count t = t.n

let stub_routers t = Array.copy t.stubs

let random_stub t rng = t.stubs.(Splay_sim.Rng.int rng (Array.length t.stubs))

let delay t a b =
  if a = b then t.intra_stub
  else t.upweight.(a) +. t.tt_dist.(t.uplink.(a)).(t.uplink.(b)) +. t.upweight.(b)

let intra_stub_delay t = t.intra_stub
