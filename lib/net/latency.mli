(** Pluggable host-pair latency models — the signature behind every
    propagation-delay query.

    Historically the only latency source was {!Topology}'s precomputed
    transit×transit Dijkstra matrix. That backend is exact and cheap at
    ModelNet scale (500 routers), but materializing per-pair state cannot
    survive million-host deployments. This module turns "what is the base
    one-way delay between hosts [a] and [b]?" into a first-class value with
    two interchangeable implementations:

    - {!matrix}: the existing precomputed-matrix topology, byte-identical
      to calling [Topology.delay] directly — fixed-seed golden traces do
      not move when a testbed routes through it;
    - {!synthetic}: an O(1), zero-storage model that derives each pair's
      delay from a splitmix64 hash of [(seed, min a b, max a b)] pushed
      through a configurable RTT distribution. No state is materialized,
      so a million hosts cost exactly as much as ten.

    Both are pure functions of their inputs: symmetric, deterministic
    across runs, jobs and domains. Jitter, if any, stays the testbed's
    business — a [Latency.t] answers only the stable base delay. *)

type t

val name : t -> string
(** Short human-readable backend tag ([e.g. "matrix", "synthetic"]),
    recorded in bench metadata. *)

val seed : t -> int
(** The seed the model draws from (0 for backends without one). *)

val delay : t -> Addr.host_id -> Addr.host_id -> float
(** One-way propagation delay in seconds between two hosts. Symmetric:
    [delay t a b = delay t b a]. Deterministic: the same [t] always
    answers the same value for the same pair. *)

(** {1 Synthetic per-pair model} *)

(** RTT distributions for the synthetic model. All parameters are
    round-trip seconds; {!delay} answers one-way values (RTT/2). *)
type rtt_dist =
  | Constant of float  (** every pair at the same RTT *)
  | Uniform of { lo : float; hi : float }  (** RTT uniform in [\[lo, hi)] *)
  | Lognormal of { median : float; sigma : float }
      (** heavy-ish tail: [median * exp (sigma * N)] with [N] standard
          normal (inverse-CDF transform of the pair's hash draw) *)
  | Classes of (float * float) array
      (** discrete mixture of [(weight, rtt)] classes — e.g. the paper's
          transit-stub flavor: 10 ms intra-stub, 30 ms stub-stub, 100 ms
          crossing transits *)

val transit_stub_classes : rtt_dist
(** The ModelNet family as a mixture: mostly 30/100 ms pairs with a small
    10 ms same-stub fraction — the synthetic stand-in for {!matrix} when
    the host population outgrows a materialized router graph. *)

val synthetic : ?dist:rtt_dist -> ?intra_host:float -> seed:int -> unit -> t
(** O(1) hash-seeded model. [dist] defaults to {!transit_stub_classes};
    [intra_host] (default [5e-5], the LAN loopback figure used elsewhere)
    is the delay a host sees to itself. Each unordered pair hashes to a
    uniform draw in [\[0,1)] which the distribution's quantile function
    maps to an RTT; no per-pair state exists anywhere. *)

(** {1 Matrix-backed model} *)

val matrix : Topology.t -> stub_of:(Addr.host_id -> Topology.router) -> t
(** The precomputed transit-stub matrix as a [Latency.t]: [delay] is
    [Topology] shortest-path delay between the hosts' attachment routers.
    This is the migration target for direct [Topology.delay] callers. *)

(** {1 Escape hatch} *)

val of_fn :
  name:string -> ?seed:int -> ?min_rtt:float -> (Addr.host_id -> Addr.host_id -> float) -> t
(** Wrap an arbitrary delay function (tests, replayed measurement data).
    The function must be symmetric and deterministic. [min_rtt], if
    given, promises that [2 * f a b >= min_rtt] for all distinct [a],
    [b] (must be positive); without it the wrapped model answers
    [min_rtt t = None] and cannot drive the parallel engine — {!Fabric}
    will refuse it with an error naming this argument. *)

(** {1 Lookahead for the parallel engine} *)

val min_rtt : t -> float option
(** Hard lower bound on the round-trip time between two {e distinct}
    hosts, or [None] when the model cannot promise one. This is what the
    conservative parallel engine turns into lookahead: within a time
    window shorter than the minimum one-way delay, partitions cannot
    affect each other. Per backend: {!synthetic} answers the
    distribution's infimum ([Constant] → the RTT, [Uniform] → [lo],
    [Classes] → cheapest positively-weighted class) and [None] for
    [Lognormal], whose quantile has no positive lower bound; {!matrix}
    answers twice the cheapest one-way router-pair delay (at most the
    intra-stub delay, since two hosts can share a stub router); {!of_fn}
    answers its [?min_rtt] argument verbatim. [intra_host] delays are
    excluded — a host talking to itself never crosses partitions. *)

val lookahead : t -> float option
(** [min_rtt t / 2]: the minimum one-way cross-host delay, i.e. the safe
    window width for conservative parallel simulation. *)
