(** Message transport between application endpoints.

    Models what the testbed's IP network plus the kernel gives a SPLAY
    daemon: unicast datagrams between bound ports, with propagation delay
    from the {!Testbed} latency model, store-and-forward transmission
    through per-host uplink/downlink bandwidth queues (so links saturate,
    which drives the tree-dissemination experiment), optional loss, and
    delivery only to hosts that are up.

    Payloads are an extensible variant: each layer (RPC, streams,
    applications) declares its own constructors. *)

type payload = ..

type t

type handler = src:Addr.t -> payload -> unit

val create : Splay_sim.Engine.t -> Testbed.t -> t

val engine : t -> Splay_sim.Engine.t
val testbed : t -> Testbed.t

val bind : t -> Addr.t -> handler -> unit
(** Claim a port. Raises [Invalid_argument] if already bound. *)

val unbind : t -> Addr.t -> unit
val is_bound : t -> Addr.t -> bool

val set_loss : t -> float -> unit
(** Global probability that any message is dropped (default 0). The paper's
    library feature "drop a given proportion of the packets" for lossy-link
    studies. *)

val set_extra_delay : t -> float -> unit
(** Add a flat extra delay (seconds, default 0, clamped at 0) to every
    subsequent delivery, after the bandwidth queues — the delay-burst
    nemesis of [splay check]. Messages already in flight are unaffected. *)

val extra_delay : t -> float

val send : t -> ?size:int -> ?loss:float -> src:Addr.t -> dst:Addr.t -> payload -> unit
(** Fire-and-forget datagram. [size] in bytes (default 256, a small control
    message) governs transmission time through the bandwidth queues; [loss]
    overrides the global loss probability for this message. Messages from or
    to a down host, or to an unbound port, are silently dropped — exactly
    the failure model protocols must tolerate. *)

val set_partition : t -> (Addr.host_id -> int) -> unit
(** Split the network: messages between hosts mapped to different groups
    are dropped (the "disconnection of an inter-continental link or a WAN
    link between two corporate LANs" scenario behind Fig. 10). *)

val clear_partition : t -> unit
(** Heal the split. *)

val partitioned : t -> Addr.host_id -> Addr.host_id -> bool
(** Whether traffic between two hosts is currently blocked. *)

val host_up : t -> Addr.host_id -> bool
val set_host_up : t -> Addr.host_id -> bool -> unit
(** Bringing a host down drops all traffic to and from it. Queued messages
    already "in flight" to it are lost on delivery. *)

val base_rtt : t -> Addr.host_id -> Addr.host_id -> float
(** Stable round-trip estimate between two hosts (what an application-level
    ping would measure on an idle network); used by proximity-aware
    protocols. *)

val messages_sent : t -> int
val bytes_sent : t -> int
val messages_dropped : t -> int
(** Counters over the lifetime of the network (monitoring). *)

(** {1 Cross-partition routing — the parallel engine's hook}

    Under {!Fabric}, each partition owns a [Net.t] over its own copy of
    the (synthetic) testbed state. A send whose destination host lives
    on another partition runs only the sender-side half of the
    store-and-forward model here — uplink queueing and propagation — and
    is handed to [route]; the destination partition completes it with
    {!deliver_remote} against its own downlink/liveness state. Plain
    single-engine nets never touch any of this. *)

val set_remote :
  t ->
  local:(Addr.host_id -> bool) ->
  route:
    (src:Addr.t ->
    dst:Addr.t ->
    size:int ->
    arrival:float ->
    up_wait:float ->
    ctx:Splay_obs.Obs.ctx ->
    payload ->
    unit) ->
  unit
(** Install the hook. [local] says whether a destination host is served
    by this net; [route] receives each non-local message after the
    sender-side model ran: [arrival] is the absolute time the last byte
    reaches the destination's downlink (uplink wait + transmission +
    propagation — at least the latency model's lookahead in the future),
    [up_wait] the uplink queueing already incurred (for the link-wait
    histogram), [ctx] the sender's trace context. Requires a synthetic
    (compact) testbed. *)

val deliver_remote :
  t ->
  ?size:int ->
  src:Addr.t ->
  dst:Addr.t ->
  up_wait:float ->
  ctx:Splay_obs.Obs.ctx ->
  payload ->
  unit
(** Receiver-side completion of a routed message; call it on the
    destination partition's net at the message's [arrival] time (Fabric
    does this from a {!Splay_sim.Par} mailbox). Applies downlink
    queueing, processing cost, then the usual liveness/handler checks at
    delivery. *)
