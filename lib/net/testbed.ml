module Rng = Splay_sim.Rng

type kind = Planetlab | Modelnet | Cluster

type host = {
  id : Addr.host_id;
  kind : kind;
  mutable up : bool;
  coord : float * float;
  load_factor : float;
  slowness : float;
  bw_up : float;
  bw_down : float;
  stub : Topology.router;
  mem_mb : float;
  mutable up_busy : float;
  mutable down_busy : float;
  mutable service_mult : float;
  host_rng : Rng.t;
}

type t = {
  t_rng : Rng.t;
  all : host array;
  topo : Topology.t option;
  gateway_delay : float; (* extra one-way delay crossing testbeds *)
}

let mbps x = x *. 1_000_000.0 /. 8.0

(* PlanetLab host responsiveness: a mixture calibrated against Fig. 3 —
   a fast fifth, a loaded middle, and a badly overloaded tail. *)
let draw_slowness rng =
  let u = Rng.float rng 1.0 in
  if u < 0.14 then Rng.float rng 0.10
  else if u < 0.45 then 0.2 +. Rng.float rng 0.6
  else if u < 0.75 then 0.8 +. Rng.float rng 1.4
  else 1.2 +. Rng.pareto rng ~scale:1.0 ~shape:1.15

let mk_planetlab_host rng id =
  (* coordinates spread over ~80 ms of one-way delay in each dimension:
     intercontinental paths reach ~120 ms one-way *)
  let coord = (Rng.float rng 0.080, Rng.float rng 0.080) in
  {
    id;
    kind = Planetlab;
    up = true;
    coord;
    load_factor = 1.0 +. Rng.float rng 4.0;
    slowness = draw_slowness rng;
    bw_up = mbps (0.5 +. Rng.float rng 9.5);
    bw_down = mbps (1.0 +. Rng.float rng 9.0);
    stub = 0;
    mem_mb = 4096.0;
    up_busy = 0.0;
    down_busy = 0.0;
    service_mult = 1.0;
    host_rng = Rng.split rng;
  }

let planetlab ?(n = 450) rng =
  let t_rng = Rng.split rng in
  { t_rng; all = Array.init n (mk_planetlab_host rng); topo = None; gateway_delay = 0.0 }

let modelnet ?(hosts = 1100) ?bandwidth ?topology rng =
  let topo = match topology with Some t -> t | None -> Topology.transit_stub rng in
  let bw = match bandwidth with Some b -> b | None -> mbps 10.0 in
  let t_rng = Rng.split rng in
  let mk id =
    {
      id;
      kind = Modelnet;
      up = true;
      coord = (0.0, 0.0);
      load_factor = 1.0;
      slowness = 0.005;
      bw_up = bw;
      bw_down = bw;
      stub = Topology.random_stub topo rng;
      mem_mb = 2048.0;
      up_busy = 0.0;
      down_busy = 0.0;
      service_mult = 1.0;
      host_rng = Rng.split rng;
    }
  in
  { t_rng; all = Array.init hosts mk; topo = Some topo; gateway_delay = 0.0 }

let cluster ?(n = 11) ?(mem_mb = 2048.0) rng =
  let t_rng = Rng.split rng in
  let mk id =
    {
      id;
      kind = Cluster;
      up = true;
      coord = (0.0, 0.0);
      load_factor = 1.0;
      slowness = 0.001;
      bw_up = mbps 1000.0;
      bw_down = mbps 1000.0;
      stub = 0;
      mem_mb;
      up_busy = 0.0;
      down_busy = 0.0;
      service_mult = 1.0;
      host_rng = Rng.split rng;
    }
  in
  { t_rng; all = Array.init n mk; topo = None; gateway_delay = 0.0 }

let mixed ~planetlab:np ~modelnet:nm rng =
  let topo = Topology.transit_stub rng in
  let pl = Array.init np (mk_planetlab_host rng) in
  let mn =
    Array.init nm (fun i ->
        {
          id = np + i;
          kind = Modelnet;
          up = true;
          coord = (0.0, 0.0);
          load_factor = 1.0;
          slowness = 0.005;
          bw_up = mbps 10.0;
          bw_down = mbps 10.0;
          stub = Topology.random_stub topo rng;
          mem_mb = 2048.0;
          up_busy = 0.0;
          down_busy = 0.0;
          service_mult = 1.0;
          host_rng = Rng.split rng;
        })
  in
  {
    t_rng = Rng.split rng;
    all = Array.append pl mn;
    topo = Some topo;
    gateway_delay = 0.020;
  }

let with_extra_host t =
  let id = Array.length t.all in
  let h =
    {
      id;
      kind = Cluster;
      up = true;
      coord = (0.040, 0.040);
      load_factor = 1.0;
      slowness = 0.001;
      bw_up = mbps 1000.0;
      bw_down = mbps 1000.0;
      stub = 0;
      mem_mb = 16384.0;
      up_busy = 0.0;
      down_busy = 0.0;
      service_mult = 1.0;
      host_rng = Rng.split t.t_rng;
    }
  in
  ({ t with all = Array.append t.all [| h |] }, id)

let size t = Array.length t.all
let host t id = t.all.(id)
let hosts t = t.all
let rng t = t.t_rng

let euclid (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  sqrt ((dx *. dx) +. (dy *. dy))

(* Host-record variants ([*_h]) let callers that already hold the [host]
   records (the network send path looks both endpoints up anyway for the
   link queues) skip the repeated [t.all.(id)] loads. They are the
   implementations; the id-keyed functions are wrappers, so both draw from
   the same RNG streams in the same order. *)

let base_delay_h t ha hb =
  if ha.id = hb.id then 0.000_05
  else begin
    match (ha.kind, hb.kind) with
    | Planetlab, Planetlab -> 0.005 +. euclid ha.coord hb.coord
    | Modelnet, Modelnet -> (
        match t.topo with
        | Some topo -> Topology.delay topo ha.stub hb.stub
        | None -> 0.015)
    | Cluster, Cluster -> 0.000_05
    | Planetlab, Modelnet | Modelnet, Planetlab -> (
        (* cross the WAN gateway of the emulated site *)
        let pl, mn = if ha.kind = Planetlab then (ha, hb) else (hb, ha) in
        let edge = 0.005 +. euclid pl.coord (0.040, 0.040) in
        match t.topo with
        | Some topo -> edge +. t.gateway_delay +. Topology.delay topo mn.stub mn.stub
        | None -> edge +. t.gateway_delay)
    | Cluster, Planetlab | Planetlab, Cluster ->
        (* controller / cluster machines sit at the virtual centre *)
        let pl = if ha.kind = Planetlab then ha else hb in
        0.005 +. euclid pl.coord (0.040, 0.040)
    | Cluster, Modelnet | Modelnet, Cluster -> 0.002
  end

let base_delay t a b = base_delay_h t t.all.(a) t.all.(b)

let delay_h t ha hb =
  let base = base_delay_h t ha hb in
  if ha.kind = Planetlab || hb.kind = Planetlab then
    (* wide-area jitter: median ~5% of base, occasional 2-3x spikes *)
    base *. Rng.lognormal t.t_rng ~mu:0.0 ~sigma:0.25
  else base

let delay t a b = delay_h t t.all.(a) t.all.(b)

let service_delay t id =
  let h = t.all.(id) in
  Rng.exponential h.host_rng ~mean:(h.slowness *. h.service_mult)

let proc_cost_h h = 0.000_1 *. h.load_factor *. h.service_mult

let proc_cost t id = proc_cost_h t.all.(id)
