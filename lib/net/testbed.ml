module Rng = Splay_sim.Rng

type kind = Planetlab | Modelnet | Cluster

type host = {
  id : Addr.host_id;
  kind : kind;
  mutable up : bool;
  coord : float * float;
  load_factor : float;
  slowness : float;
  bw_up : float;
  bw_down : float;
  stub : Topology.router;
  mem_mb : float;
  mutable up_busy : float;
  mutable down_busy : float;
  mutable service_mult : float;
  host_rng : Rng.t;
}

(* Struct-of-arrays storage for synthetic testbeds: per-host state is two
   unboxed link-busy floats and one up/down byte; bandwidth, processing
   cost and the latency model are shared scalars. A host costs ~3 words
   here against ~60 for a [host] record (mixed record, so every float
   field is a boxed pointer) — the difference between 1k and 1M hosts
   fitting in memory. *)
module Compact = struct
  type t = {
    n : int;
    lat : Latency.t;
    up_bits : Bytes.t;
    bw_up : float;
    bw_down : float;
    up_busy : float array;
    down_busy : float array;
    proc_cost : float;
    mem_mb : float;
    c_rng : Rng.t;
  }
end

type t = {
  t_rng : Rng.t;
  all : host array;
  topo : Topology.t option;
  lat : Latency.t option;
      (* the pair-delay model this testbed routes through: Latency.matrix
         over [topo] for emulated hosts, the synthetic model for compact
         testbeds *)
  gateway_delay : float; (* extra one-way delay crossing testbeds *)
  cmp : Compact.t option;
}

(* The matrix latency backend over this testbed's topology; [stub_of]
   reads the attachment router off the (already built) host array. *)
let matrix_lat all topo =
  Latency.matrix topo ~stub_of:(fun id -> all.(id).stub)

let mbps x = x *. 1_000_000.0 /. 8.0

(* PlanetLab host responsiveness: a mixture calibrated against Fig. 3 —
   a fast fifth, a loaded middle, and a badly overloaded tail. *)
let draw_slowness rng =
  let u = Rng.float rng 1.0 in
  if u < 0.14 then Rng.float rng 0.10
  else if u < 0.45 then 0.2 +. Rng.float rng 0.6
  else if u < 0.75 then 0.8 +. Rng.float rng 1.4
  else 1.2 +. Rng.pareto rng ~scale:1.0 ~shape:1.15

let mk_planetlab_host rng id =
  (* coordinates spread over ~80 ms of one-way delay in each dimension:
     intercontinental paths reach ~120 ms one-way *)
  let coord = (Rng.float rng 0.080, Rng.float rng 0.080) in
  {
    id;
    kind = Planetlab;
    up = true;
    coord;
    load_factor = 1.0 +. Rng.float rng 4.0;
    slowness = draw_slowness rng;
    bw_up = mbps (0.5 +. Rng.float rng 9.5);
    bw_down = mbps (1.0 +. Rng.float rng 9.0);
    stub = 0;
    mem_mb = 4096.0;
    up_busy = 0.0;
    down_busy = 0.0;
    service_mult = 1.0;
    host_rng = Rng.split rng;
  }

let planetlab ?(n = 450) rng =
  let t_rng = Rng.split rng in
  {
    t_rng;
    all = Array.init n (mk_planetlab_host rng);
    topo = None;
    lat = None;
    gateway_delay = 0.0;
    cmp = None;
  }

let modelnet ?(hosts = 1100) ?bandwidth ?topology rng =
  let topo = match topology with Some t -> t | None -> Topology.transit_stub rng in
  let bw = match bandwidth with Some b -> b | None -> mbps 10.0 in
  let t_rng = Rng.split rng in
  let mk id =
    {
      id;
      kind = Modelnet;
      up = true;
      coord = (0.0, 0.0);
      load_factor = 1.0;
      slowness = 0.005;
      bw_up = bw;
      bw_down = bw;
      stub = Topology.random_stub topo rng;
      mem_mb = 2048.0;
      up_busy = 0.0;
      down_busy = 0.0;
      service_mult = 1.0;
      host_rng = Rng.split rng;
    }
  in
  let all = Array.init hosts mk in
  { t_rng; all; topo = Some topo; lat = Some (matrix_lat all topo); gateway_delay = 0.0; cmp = None }

let cluster ?(n = 11) ?(mem_mb = 2048.0) rng =
  let t_rng = Rng.split rng in
  let mk id =
    {
      id;
      kind = Cluster;
      up = true;
      coord = (0.0, 0.0);
      load_factor = 1.0;
      slowness = 0.001;
      bw_up = mbps 1000.0;
      bw_down = mbps 1000.0;
      stub = 0;
      mem_mb;
      up_busy = 0.0;
      down_busy = 0.0;
      service_mult = 1.0;
      host_rng = Rng.split rng;
    }
  in
  { t_rng; all = Array.init n mk; topo = None; lat = None; gateway_delay = 0.0; cmp = None }

let mixed ~planetlab:np ~modelnet:nm rng =
  let topo = Topology.transit_stub rng in
  let pl = Array.init np (mk_planetlab_host rng) in
  let mn =
    Array.init nm (fun i ->
        {
          id = np + i;
          kind = Modelnet;
          up = true;
          coord = (0.0, 0.0);
          load_factor = 1.0;
          slowness = 0.005;
          bw_up = mbps 10.0;
          bw_down = mbps 10.0;
          stub = Topology.random_stub topo rng;
          mem_mb = 2048.0;
          up_busy = 0.0;
          down_busy = 0.0;
          service_mult = 1.0;
          host_rng = Rng.split rng;
        })
  in
  let all = Array.append pl mn in
  {
    t_rng = Rng.split rng;
    all;
    topo = Some topo;
    lat = Some (matrix_lat all topo);
    gateway_delay = 0.020;
    cmp = None;
  }

let synthetic ?latency ?(bw = mbps 10.0) ?(proc_cost = 0.000_1) ?(mem_mb = 2048.0) ~hosts rng =
  if hosts < 1 then invalid_arg "Testbed.synthetic";
  let lat =
    match latency with
    | Some l -> l
    | None -> Latency.synthetic ~seed:(Int64.to_int (Rng.bits64 rng)) ()
  in
  let t_rng = Rng.split rng in
  let cmp =
    {
      Compact.n = hosts;
      lat;
      up_bits = Bytes.make hosts '\001';
      bw_up = bw;
      bw_down = bw;
      up_busy = Array.make hosts 0.0;
      down_busy = Array.make hosts 0.0;
      proc_cost;
      mem_mb;
      c_rng = Rng.split rng;
    }
  in
  { t_rng; all = [||]; topo = None; lat = Some lat; gateway_delay = 0.0; cmp = Some cmp }

let with_extra_host t =
  if t.cmp <> None then
    invalid_arg "Testbed.with_extra_host: synthetic testbeds have no host records";
  let id = Array.length t.all in
  let h =
    {
      id;
      kind = Cluster;
      up = true;
      coord = (0.040, 0.040);
      load_factor = 1.0;
      slowness = 0.001;
      bw_up = mbps 1000.0;
      bw_down = mbps 1000.0;
      stub = 0;
      mem_mb = 16384.0;
      up_busy = 0.0;
      down_busy = 0.0;
      service_mult = 1.0;
      host_rng = Rng.split t.t_rng;
    }
  in
  let all = Array.append t.all [| h |] in
  let lat = match t.topo with Some topo -> Some (matrix_lat all topo) | None -> t.lat in
  ({ t with all; lat }, id)

let size t = match t.cmp with Some c -> c.Compact.n | None -> Array.length t.all

let no_records fn =
  invalid_arg ("Testbed." ^ fn ^ ": synthetic testbeds keep no per-host records")

let host t id = if t.cmp <> None then no_records "host" else t.all.(id)
let hosts t = if t.cmp <> None then no_records "hosts" else t.all
let rng t = t.t_rng
let compact t = t.cmp
let latency t = t.lat

let host_up t id =
  match t.cmp with
  | Some c -> Bytes.unsafe_get c.Compact.up_bits id <> '\000'
  | None -> t.all.(id).up

let set_host_up t id up =
  match t.cmp with
  | Some c -> Bytes.unsafe_set c.Compact.up_bits id (if up then '\001' else '\000')
  | None -> t.all.(id).up <- up

let euclid (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  sqrt ((dx *. dx) +. (dy *. dy))

(* Host-record variants ([*_h]) let callers that already hold the [host]
   records (the network send path looks both endpoints up anyway for the
   link queues) skip the repeated [t.all.(id)] loads. They are the
   implementations; the id-keyed functions are wrappers, so both draw from
   the same RNG streams in the same order. *)

let base_delay_h t ha hb =
  if ha.id = hb.id then 0.000_05
  else begin
    match (ha.kind, hb.kind) with
    | Planetlab, Planetlab -> 0.005 +. euclid ha.coord hb.coord
    | Modelnet, Modelnet -> (
        (* through the Latency signature (the matrix backend over this
           testbed's topology): same arithmetic, same floats as the old
           direct Topology.delay call, so fixed-seed traces do not move *)
        match t.lat with
        | Some lat -> Latency.delay lat ha.id hb.id
        | None -> 0.015)
    | Cluster, Cluster -> 0.000_05
    | Planetlab, Modelnet | Modelnet, Planetlab -> (
        (* cross the WAN gateway of the emulated site *)
        let pl, _mn = if ha.kind = Planetlab then (ha, hb) else (hb, ha) in
        let edge = 0.005 +. euclid pl.coord (0.040, 0.040) in
        match t.topo with
        | Some topo -> edge +. t.gateway_delay +. Topology.intra_stub_delay topo
        | None -> edge +. t.gateway_delay)
    | Cluster, Planetlab | Planetlab, Cluster ->
        (* controller / cluster machines sit at the virtual centre *)
        let pl = if ha.kind = Planetlab then ha else hb in
        0.005 +. euclid pl.coord (0.040, 0.040)
    | Cluster, Modelnet | Modelnet, Cluster -> 0.002
  end

let base_delay t a b =
  match t.cmp with
  | Some c -> Latency.delay c.Compact.lat a b
  | None -> base_delay_h t t.all.(a) t.all.(b)

let delay_h t ha hb =
  let base = base_delay_h t ha hb in
  if ha.kind = Planetlab || hb.kind = Planetlab then
    (* wide-area jitter: median ~5% of base, occasional 2-3x spikes *)
    base *. Rng.lognormal t.t_rng ~mu:0.0 ~sigma:0.25
  else base

let delay t a b =
  match t.cmp with
  | Some c -> Latency.delay c.Compact.lat a b (* model answers are stable: no jitter *)
  | None -> delay_h t t.all.(a) t.all.(b)

let service_delay t id =
  match t.cmp with
  | Some c ->
      ignore (id : Addr.host_id);
      Rng.exponential c.Compact.c_rng ~mean:0.001
  | None ->
      let h = t.all.(id) in
      Rng.exponential h.host_rng ~mean:(h.slowness *. h.service_mult)

let service_mult t id =
  match t.cmp with Some _ -> 1.0 | None -> t.all.(id).service_mult

let proc_cost_h h = 0.000_1 *. h.load_factor *. h.service_mult

let proc_cost t id =
  match t.cmp with Some c -> c.Compact.proc_cost | None -> proc_cost_h t.all.(id)
