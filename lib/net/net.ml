module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Obs = Splay_obs.Obs

(* Observability sites; [net.link_wait] is the time a message spends
   queued behind earlier transfers in the sender's uplink and the
   receiver's downlink — the signal that a link is saturating. *)
let c_msgs = Obs.counter "net.msgs_sent"
let c_obs_bytes = Obs.counter "net.bytes_sent"
let c_drops = Obs.counter "net.dropped"
let h_link_wait = Obs.histogram "net.link_wait"

type payload = ..

type handler = src:Addr.t -> payload -> unit

module AddrTbl = Hashtbl.Make (struct
  type t = Addr.t

  let equal = Addr.equal
  let hash = Addr.hash
end)

(* Cross-partition escape hatch for the parallel engine: when a remote
   hook is installed and the destination host is not local, the send
   path stops after the sender-side half of the store-and-forward model
   (uplink queue + propagation) and hands the message to [r_route] —
   Fabric posts it into a Par mailbox, and the receiving partition
   finishes the job with [deliver_remote] (downlink queue + processing +
   liveness checks against ITS copy of the host state). *)
type remote = {
  r_local : Addr.host_id -> bool;
  r_route :
    src:Addr.t ->
    dst:Addr.t ->
    size:int ->
    arrival:float ->
    up_wait:float ->
    ctx:Obs.ctx ->
    payload ->
    unit;
}

type t = {
  eng : Engine.t;
  tb : Testbed.t;
  cmp : Testbed.Compact.t option;
      (* struct-of-arrays state when [tb] is a synthetic testbed; checked
         once at creation so the send path dispatches on a field load *)
  handlers : handler AddrTbl.t;
  net_rng : Rng.t;
  mutable loss : float;
  mutable extra_delay : float;
  mutable partition : (Addr.host_id -> int) option;
  mutable remote : remote option;
  mutable n_sent : int;
  mutable n_bytes : int;
  mutable n_dropped : int;
}

let create eng tb =
  {
    eng;
    tb;
    cmp = Testbed.compact tb;
    handlers = AddrTbl.create 1024;
    net_rng = Rng.split (Testbed.rng tb);
    loss = 0.0;
    extra_delay = 0.0;
    partition = None;
    remote = None;
    n_sent = 0;
    n_bytes = 0;
    n_dropped = 0;
  }

let engine t = t.eng
let testbed t = t.tb

let bind t addr handler =
  if AddrTbl.mem t.handlers addr then
    invalid_arg (Printf.sprintf "Net.bind: %s already bound" (Addr.to_string addr));
  AddrTbl.replace t.handlers addr handler

let unbind t addr = AddrTbl.remove t.handlers addr

let is_bound t addr = AddrTbl.mem t.handlers addr

let set_loss t p = t.loss <- p

let set_extra_delay t d = t.extra_delay <- if d < 0.0 then 0.0 else d
let extra_delay t = t.extra_delay

let set_partition t f = t.partition <- Some f
let clear_partition t = t.partition <- None

let partitioned t a b =
  match t.partition with Some f -> f a <> f b | None -> false

let host_up t id = Testbed.host_up t.tb id

let set_host_up t id up = Testbed.set_host_up t.tb id up

let base_rtt t a b = 2.0 *. Testbed.base_delay t.tb a b

(* Hoisted out of [send] so a dropped (or delivered-then-dropped) message
   costs a call, not a fresh closure per send. *)
let count_drop t =
  t.n_dropped <- t.n_dropped + 1;
  Obs.incr c_drops

(* The compact (struct-of-arrays) variant of the send path below: same
   store-and-forward model, same counter/observability behavior, but every
   per-host load is an unboxed array index instead of a record field, and
   propagation comes from the testbed's latency model — O(1) and stateless,
   which is what keeps million-host sends cheap. *)
let send_compact t c ?(size = 256) ?loss ~src ~dst payload =
  t.n_sent <- t.n_sent + 1;
  t.n_bytes <- t.n_bytes + size;
  Obs.incr c_msgs;
  Obs.add c_obs_bytes size;
  let sh = src.Addr.host and dh = dst.Addr.host in
  if
    Bytes.unsafe_get c.Testbed.Compact.up_bits sh = '\000'
    || partitioned t sh dh
  then count_drop t
  else begin
    let p = match loss with Some p -> p | None -> t.loss in
    if p > 0.0 && Rng.chance t.net_rng p then count_drop t
    else begin
      let traced = !Obs.enabled in
      let now = Engine.now t.eng in
      let sz = Float.of_int size in
      let tx_up = sz /. c.Testbed.Compact.bw_up in
      let up_busy = c.Testbed.Compact.up_busy in
      let start_up = Float.max now (Array.unsafe_get up_busy sh) in
      Array.unsafe_set up_busy sh (start_up +. tx_up);
      let propagation = Latency.delay c.Testbed.Compact.lat sh dh in
      let arrival = start_up +. tx_up +. propagation in
      match t.remote with
      | Some r when not (r.r_local dh) ->
          (* sender-side half done; the destination partition applies its
             own downlink/processing model when the mailbox drains *)
          let mctx = if traced then Obs.current () else Obs.null_ctx in
          r.r_route ~src ~dst ~size ~arrival ~up_wait:(start_up -. now) ~ctx:mctx payload
      | _ ->
          let tx_down = sz /. c.Testbed.Compact.bw_down in
          let down_busy = c.Testbed.Compact.down_busy in
          let start_down = Float.max arrival (Array.unsafe_get down_busy dh) in
          Array.unsafe_set down_busy dh (start_down +. tx_down);
          let deliver_at = start_down +. tx_down +. c.Testbed.Compact.proc_cost in
          let deliver_at =
            if t.extra_delay > 0.0 then deliver_at +. t.extra_delay else deliver_at
          in
          if traced || !Obs.metrics_enabled then
            Obs.observe h_link_wait ((start_up -. now) +. (start_down -. arrival));
          let mctx = if traced then Obs.current () else Obs.null_ctx in
          ignore
            (Engine.schedule_at t.eng ~at:deliver_at (fun () ->
                 if traced then Obs.set_current mctx;
                 if Bytes.unsafe_get c.Testbed.Compact.up_bits dh = '\000' then count_drop t
                 else
                   match AddrTbl.find_opt t.handlers dst with
                   | None -> count_drop t
                   | Some h -> h ~src payload))
    end
  end

(* Store-and-forward through sender uplink and receiver downlink queues:
   a transfer occupies the uplink for size/bw_up starting when the uplink
   frees, propagates, then occupies the downlink. This is what makes links
   saturate under bulk transfers (Fig. 13). *)
let send_classic t ?(size = 256) ?loss ~src ~dst payload =
  t.n_sent <- t.n_sent + 1;
  t.n_bytes <- t.n_bytes + size;
  Obs.incr c_msgs;
  Obs.add c_obs_bytes size;
  let hs = Testbed.host t.tb src.Addr.host in
  if (not hs.Testbed.up) || partitioned t src.Addr.host dst.Addr.host then count_drop t
  else begin
    let p = match loss with Some p -> p | None -> t.loss in
    if p > 0.0 && Rng.chance t.net_rng p then count_drop t
    else begin
      let traced = !Obs.enabled in
      let now = Engine.now t.eng in
      let sz = Float.of_int size in
      let tx_up = sz /. hs.Testbed.bw_up in
      let start_up = Float.max now hs.Testbed.up_busy in
      hs.Testbed.up_busy <- start_up +. tx_up;
      let hd = Testbed.host t.tb dst.Addr.host in
      let propagation = Testbed.delay_h t.tb hs hd in
      let arrival = start_up +. tx_up +. propagation in
      let tx_down = sz /. hd.Testbed.bw_down in
      let start_down = Float.max arrival hd.Testbed.down_busy in
      hd.Testbed.down_busy <- start_down +. tx_down;
      let processing = Testbed.proc_cost_h hd in
      let deliver_at = start_down +. tx_down +. processing in
      (* delay-burst nemesis: a flat add-on past the bandwidth queues, so
         it slows delivery without occupying the links *)
      let deliver_at = if t.extra_delay > 0.0 then deliver_at +. t.extra_delay else deliver_at in
      if traced || !Obs.metrics_enabled then
        Obs.observe h_link_wait ((start_up -. now) +. (start_down -. arrival));
      (* The sender's trace context travels with the message (the
         wire-level counterpart of the RPC envelope's ctx field): delivery
         runs under it, so receiver-side spans join the sender's causal
         trace for any payload, not just RPC. With tracing off, skip both
         the capture and the receiver-side restore — the context is pinned
         to [null_ctx] then, so there is nothing to propagate. *)
      let mctx = if traced then Obs.current () else Obs.null_ctx in
      ignore
        (Engine.schedule_at t.eng ~at:deliver_at (fun () ->
             if traced then Obs.set_current mctx;
             if not hd.Testbed.up then count_drop t
             else
               match AddrTbl.find_opt t.handlers dst with
               | None -> count_drop t
               | Some h -> h ~src payload))
    end
  end

let send t ?size ?loss ~src ~dst payload =
  match t.cmp with
  | Some c -> send_compact t c ?size ?loss ~src ~dst payload
  | None -> send_classic t ?size ?loss ~src ~dst payload

let set_remote t ~local ~route =
  if t.cmp = None then invalid_arg "Net.set_remote: synthetic (compact) testbed required";
  t.remote <- Some { r_local = local; r_route = route }

(* Receiver-side half of a routed send: runs on the destination
   partition's engine at the message's arrival time. Mirrors the tail of
   [send_compact] — downlink queueing against THIS net's busy array,
   processing cost, then liveness/handler checks at delivery. *)
let deliver_remote t ?(size = 256) ~src ~dst ~up_wait ~ctx payload =
  match t.cmp with
  | None -> invalid_arg "Net.deliver_remote: synthetic (compact) testbed required"
  | Some c ->
      let dh = dst.Addr.host in
      let arrival = Engine.now t.eng in
      let sz = Float.of_int size in
      let tx_down = sz /. c.Testbed.Compact.bw_down in
      let down_busy = c.Testbed.Compact.down_busy in
      let start_down = Float.max arrival (Array.unsafe_get down_busy dh) in
      Array.unsafe_set down_busy dh (start_down +. tx_down);
      let deliver_at = start_down +. tx_down +. c.Testbed.Compact.proc_cost in
      let deliver_at = if t.extra_delay > 0.0 then deliver_at +. t.extra_delay else deliver_at in
      let traced = !Obs.enabled in
      if traced || !Obs.metrics_enabled then
        Obs.observe h_link_wait (up_wait +. (start_down -. arrival));
      ignore
        (Engine.schedule_at t.eng ~at:deliver_at (fun () ->
             if traced then Obs.set_current ctx;
             if Bytes.unsafe_get c.Testbed.Compact.up_bits dh = '\000' then count_drop t
             else
               match AddrTbl.find_opt t.handlers dst with
               | None -> count_drop t
               | Some h -> h ~src payload))

let messages_sent t = t.n_sent
let bytes_sent t = t.n_bytes
let messages_dropped t = t.n_dropped
