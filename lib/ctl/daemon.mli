(** The [splayd] daemon: one per participating host.

    A daemon accepts control commands from the controller (over RPC, so
    command latencies follow the host and network models), instantiates
    application instances in sandboxes, enforces the administrator's
    resource restrictions (the controller may only strengthen them), tracks
    per-instance memory, and feeds the host contention model — when the
    instances outgrow the host's RAM the host starts "swapping" and every
    operation on it slows down (Fig. 7b / Fig. 8 behaviour). *)

type config = {
  base_footprint : int;
      (** resident bytes one idle instance costs (SPLAY: ~600 kB with all
          libraries loaded, growing towards ~1.5 MB with protocol state) *)
  admin_limits : Splay_runtime.Sandbox.limits; (** local administrator's caps *)
  heartbeat_interval : float;
  cpu_per_instance : float;
      (** marginal scheduler load of one mostly-idle instance (dimensionless
          runnable-process fraction) *)
  contention_extra : int -> float;
      (** additional service-time multiplier as a function of the instance
          count — heavyweight runtimes degrade superlinearly once past
          their comfortable density (GC pressure); 0 for SPLAY *)
}

val splay_config : config
(** Defaults reproducing the paper's SPLAY measurements. *)

type t

type instance

type job_spec = {
  js_name : string;
  js_main : Env.t -> unit;
  js_limits : Splay_runtime.Sandbox.limits; (** controller restrictions *)
  js_log_sink : Splay_runtime.Log.sink;
  js_log_level : Splay_runtime.Log.level;
      (** per-node severity threshold, applied at instance creation —
          records below it are dropped at the node, never forwarded *)
  js_loss : float; (** outgoing packet loss imposed on the instance *)
}

val start :
  Net.t ->
  host:Addr.host_id ->
  controller:Addr.t ->
  ?config:config ->
  lookup_job:(int -> job_spec option) ->
  unit ->
  t
(** Boot a daemon on [host]: binds its control endpoint (port 1), begins
    heartbeating to the controller. [lookup_job] resolves a job id received
    in a REGISTER command to its specification (the controller's database
    access). *)

val addr : t -> Addr.t
val host : t -> Addr.host_id

val instances : t -> instance list
val instances_of_job : t -> int -> instance list
val instance_env : instance -> Env.t
val instance_addr : instance -> Addr.t
val instance_started : instance -> bool
val instance_count : t -> int

val memory_used : t -> int
(** Total resident memory of all instances (base footprint + sandboxed
    application state), in bytes. *)

val load : t -> float
(** Scheduler load estimate (average runnable processes). *)

val stop_instance : t -> Addr.t -> unit
(** Kill one instance directly (used by the churn manager for node
    departures; the FREE command does the same over RPC). *)

val shutdown : t -> unit
(** Kill the daemon and every instance it hosts (host crash). *)

(** RPC procedure names the daemon serves — exposed for tests. *)

val proc_probe : string
val proc_register : string
val proc_list : string
val proc_start : string
val proc_free : string
val proc_stop : string
