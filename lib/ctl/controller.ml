module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Ivar = Splay_sim.Ivar
module Env = Splay_runtime.Env
module Rpc = Splay_runtime.Rpc
module Codec = Splay_runtime.Codec
module Log = Splay_runtime.Log
module Obs = Splay_obs.Obs

(* Observability sites for the REGISTER / LIST / START / FREE machinery. *)
let c_heartbeats = Obs.counter "ctl.heartbeats"
let c_registers = Obs.counter "ctl.registers_sent"
let c_register_acks = Obs.counter "ctl.register_acks"
let c_blacklist = Obs.counter "ctl.blacklist_pushes"
let h_heartbeat_age = Obs.histogram "ctl.heartbeat_age"

type drec = { dr_daemon : Daemon.t; mutable dr_last_seen : float }

type log_record = {
  lr_time : float;
  lr_node : string;
  lr_level : Log.level;
  lr_msg : string;
}

type job = {
  j_id : int;
  j_desc : Descriptor.t;
  mutable j_members : (Daemon.t * Addr.t * int) list; (* newest first *)
  mutable j_next_position : int;
  mutable j_log_lines : int;
  mutable j_log_bytes : int;
  j_log : log_record Queue.t; (* arrival order = deterministic delivery order *)
  j_log_cap : int;
  mutable j_log_dropped : int;
}

type t = {
  c_net : Net.t;
  c_env : Env.t;
  mutable c_daemons : drec list;
  c_jobs : (int, job) Hashtbl.t;
  c_specs : (int, Daemon.job_spec) Hashtbl.t;
  mutable c_next_job : int;
  c_unseen : float;
  c_rng : Rng.t;
}

type deployment = { dep_ctl : t; dep_job : job }

let addr t = t.c_env.Env.me
let env t = t.c_env
let net t = t.c_net

let create ?(unseen_timeout = 3600.0) net ~host =
  let c_env = Env.create net ~me:(Addr.make host 1) in
  let t =
    {
      c_net = net;
      c_env;
      c_daemons = [];
      c_jobs = Hashtbl.create 16;
      c_specs = Hashtbl.create 16;
      c_next_job = 0;
      c_unseen = unseen_timeout;
      c_rng = Rng.split (Engine.rng (Net.engine net));
    }
  in
  Rpc.server c_env
    [
      ( "ctl.heartbeat",
        fun args ->
          (match args with
          | [ h ] -> (
              let h = Codec.to_int h in
              match List.find_opt (fun d -> Daemon.host d.dr_daemon = h) t.c_daemons with
              | Some d ->
                  let now = Engine.now (Net.engine net) in
                  Obs.incr c_heartbeats;
                  if !Obs.enabled || !Obs.metrics_enabled then
                    Obs.observe h_heartbeat_age (now -. d.dr_last_seen);
                  d.dr_last_seen <- now
              | None -> ())
          | _ -> failwith "heartbeat: bad arguments");
          Codec.Null );
    ];
  t

let now t = Engine.now (Net.engine t.c_net)

let attach_daemon t d =
  t.c_daemons <- { dr_daemon = d; dr_last_seen = now t } :: t.c_daemons

let boot_daemons ?config t hosts =
  List.map
    (fun h ->
      let d =
        Daemon.start t.c_net ~host:h ~controller:(addr t) ?config
          ~lookup_job:(fun id -> Hashtbl.find_opt t.c_specs id)
          ()
      in
      attach_daemon t d;
      d)
    hosts

let daemons t = List.rev_map (fun d -> d.dr_daemon) t.c_daemons

let daemon_alive t d =
  Net.host_up t.c_net (Daemon.host d.dr_daemon) && now t -. d.dr_last_seen < t.c_unseen

let alive_daemons t =
  List.rev_map (fun d -> d.dr_daemon) (List.filter (daemon_alive t) t.c_daemons)

let heartbeat_age t d =
  match List.find_opt (fun r -> r.dr_daemon == d) t.c_daemons with
  | Some r -> now t -. r.dr_last_seen
  | None -> infinity

(* {1 Selection} *)

type criterion =
  | Min_bandwidth of float
  | Near of (float * float) * float
  | On_testbed of Testbed.kind
  | Custom of (Testbed.host -> bool)

let matches tb crit d =
  let h = Testbed.host tb (Daemon.host d) in
  match crit with
  | Min_bandwidth bw -> h.Testbed.bw_up >= bw
  | Near ((x, y), dmax) ->
      let cx, cy = h.Testbed.coord in
      let dx = cx -. x and dy = cy -. y in
      sqrt ((dx *. dx) +. (dy *. dy)) <= dmax
  | On_testbed k -> h.Testbed.kind = k
  | Custom f -> f h

let criterion_label = function
  | Min_bandwidth _ -> "min_bandwidth"
  | Near _ -> "near"
  | On_testbed _ -> "on_testbed"
  | Custom _ -> "custom"

type selection_report = {
  sel_alive : int;
  sel_dead : int;
  sel_matched : int;
  sel_rejected : (string * int) list;
}

(* A daemon is charged to the *first* criterion that rejects it, in the
   order the caller listed them — "12 hosts failed min_bandwidth" is the
   diagnosis the deployer needs when a job comes up short. *)
let select_report t ?(criteria = []) n =
  let tb = Net.testbed t.c_net in
  let rejected = List.map (fun c -> (criterion_label c, ref 0)) criteria in
  let dead = ref 0 in
  let all = List.rev t.c_daemons in
  let pool =
    List.filter_map
      (fun dr ->
        if not (daemon_alive t dr) then begin
          incr dead;
          None
        end
        else
          let d = dr.dr_daemon in
          let rec check crits counts =
            match (crits, counts) with
            | [], _ -> Some d
            | c :: crits', (_, r) :: counts' ->
                if matches tb c d then check crits' counts'
                else begin
                  incr r;
                  None
                end
            | _ :: _, [] -> assert false
          in
          check criteria rejected)
      all
  in
  let report =
    {
      sel_alive = List.length all - !dead;
      sel_dead = !dead;
      sel_matched = List.length pool;
      sel_rejected = List.map (fun (l, r) -> (l, !r)) rejected;
    }
  in
  let chosen =
    match pool with
    | [] -> []
    | _ ->
        let arr = Array.of_list pool in
        Rng.shuffle t.c_rng arr;
        List.init n (fun i -> arr.(i mod Array.length arr))
  in
  (chosen, report)

let select t ?criteria n = fst (select_report t ?criteria n)

(* {1 Probing} *)

let probe t ?(payload = 20 * 1024) d =
  let t0 = now t in
  match
    Rpc.a_call t.c_env (Daemon.addr d) ~timeout:10.0 Daemon.proc_probe
      [ Codec.String (String.make payload 'x') ]
  with
  | Ok _ -> Some (now t -. t0)
  | Error _ -> None

(* {1 Deployment} *)

let job_id j = j.j_id

let new_job t ~log_cap ~log_level name main desc =
  let id = t.c_next_job in
  t.c_next_job <- id + 1;
  let job =
    {
      j_id = id;
      j_desc = desc;
      j_members = [];
      j_next_position = 1;
      j_log_lines = 0;
      j_log_bytes = 0;
      j_log = Queue.create ();
      j_log_cap = log_cap;
      j_log_dropped = 0;
    }
  in
  (* Per-job collector: every instance of the job forwards its records
     here. Bounded — the paper's log service caps per-job storage; beyond
     the cap we keep counting (lines/bytes) but drop the text. *)
  let sink =
    Log.Forward
      (fun ~time ~level ~node msg ->
        job.j_log_lines <- job.j_log_lines + 1;
        job.j_log_bytes <- job.j_log_bytes + String.length msg;
        if Queue.length job.j_log < job.j_log_cap then
          Queue.add
            { lr_time = time; lr_node = node; lr_level = level; lr_msg = msg }
            job.j_log
        else job.j_log_dropped <- job.j_log_dropped + 1)
  in
  Hashtbl.replace t.c_jobs id job;
  Hashtbl.replace t.c_specs id
    {
      Daemon.js_name = name;
      js_main = main;
      js_limits = desc.Descriptor.limits;
      js_log_sink = sink;
      js_log_level = log_level;
      js_loss = desc.Descriptor.loss;
    };
  job

(* Issuing a command costs the controller a little CPU and connection
   setup; commands fan out in parallel but their dispatch serializes. This
   is what makes deploying 400 instances take longer than deploying 50 at
   the same superset ratio (Fig. 12). *)
let dispatch_interval = 0.002

(* Register a batch of candidate slots in parallel; return the first [need]
   acknowledgements (in arrival order) and FREE the stragglers. *)
let register_round t job ~timeout candidates ~need =
  Obs.add c_registers (List.length candidates);
  let winners = ref [] and n_winners = ref 0 in
  let remaining = ref (List.length candidates) in
  let done_iv = Ivar.create () in
  List.iter
    (fun d ->
      ignore
        (Env.thread t.c_env (fun () ->
             let res =
               Rpc.a_call t.c_env (Daemon.addr d) ~timeout Daemon.proc_register
                 [ Codec.Int job.j_id ]
             in
             (match res with
             | Ok port_v ->
                 Obs.incr c_register_acks;
                 let a = Addr.make (Daemon.host d) (Codec.to_int port_v) in
                 if !n_winners < need then begin
                   winners := (d, a) :: !winners;
                   incr n_winners
                 end
                 else
                   (* supernumerary: free it, asynchronously *)
                   ignore
                     (Env.thread t.c_env (fun () ->
                          ignore
                            (Rpc.a_call t.c_env (Daemon.addr d) ~timeout:30.0 Daemon.proc_free
                               [ Codec.Int a.Addr.port ])))
             | Error _ -> ());
             decr remaining;
             if !n_winners >= need || !remaining = 0 then Ivar.try_fill done_iv () |> ignore));
      Engine.sleep dispatch_interval)
    candidates;
  if candidates <> [] then Ivar.read done_iv;
  List.rev !winners

let bootstrap_nodes t desc ~all_members ~for_position:_ =
  match desc.Descriptor.bootstrap with
  | Descriptor.Head k -> Misc.take k all_members
  | Descriptor.All -> all_members
  | Descriptor.Random_subset k -> Rng.sample t.c_rng k all_members

(* Push LIST then START to one member; true on success. *)
let start_member t job ~position ~nodes (d, a) =
  let ok_list =
    Rpc.a_call t.c_env (Daemon.addr d) ~timeout:30.0 Daemon.proc_list
      [ Codec.Int a.Addr.port; Codec.Int position; Wire.addrs_to_value nodes ]
  in
  match ok_list with
  | Error _ -> false
  | Ok _ -> (
      match
        Rpc.a_call t.c_env (Daemon.addr d) ~timeout:30.0 Daemon.proc_start
          [ Codec.Int job.j_id; Codec.Int a.Addr.port ]
      with
      | Ok _ -> true
      | Error _ -> false)

let parallel_all ?(paced = false) t thunks =
  let remaining = ref (List.length thunks) in
  let done_iv = Ivar.create () in
  List.iter
    (fun f ->
      ignore
        (Env.thread t.c_env (fun () ->
             f ();
             decr remaining;
             if !remaining = 0 then Ivar.try_fill done_iv () |> ignore));
      if paced then Engine.sleep dispatch_interval)
    thunks;
  if thunks <> [] then Ivar.read done_iv

let deploy t ?(superset = 1.25) ?(register_timeout = 10.0) ?(criteria = [])
    ?(log_cap = 100_000) ?(log_level = Log.Info) ~name ~main desc =
  let job = new_job t ~log_cap ~log_level name main desc in
  let need = desc.Descriptor.nb_splayd in
  let sp_deploy =
    if !Obs.enabled then
      Obs.span
        ~attrs:[ ("job", string_of_int job.j_id); ("name", name); ("need", string_of_int need) ]
        "ctl.deploy"
    else Obs.null_span
  in
  (* the initial superset, then up to two refill rounds for shortfalls *)
  let rec gather acc round =
    let missing = need - List.length acc in
    if missing <= 0 || round > 3 then acc
    else begin
      let factor = if round = 1 then superset else superset +. 0.25 in
      let want = int_of_float (Float.ceil (Float.of_int missing *. factor)) in
      let cands, sel = select_report t ~criteria want in
      if List.length cands < want && !Obs.enabled then
        Obs.event
          ~attrs:
            (( "round", string_of_int round )
             :: ("want", string_of_int want)
             :: ("matched", string_of_int sel.sel_matched)
             :: ("dead", string_of_int sel.sel_dead)
             :: List.map (fun (l, n) -> ("rejected_" ^ l, string_of_int n)) sel.sel_rejected)
          "ctl.select_short";
      let sp_round =
        if !Obs.enabled then
          Obs.span
            ~attrs:[ ("round", string_of_int round); ("candidates", string_of_int (List.length cands)) ]
            "ctl.register_round"
        else Obs.null_span
      in
      let won = register_round t job ~timeout:register_timeout cands ~need:missing in
      if !Obs.enabled then
        Obs.finish ~attrs:[ ("won", string_of_int (List.length won)) ] sp_round;
      gather (acc @ won) (round + 1)
    end
  in
  let winners = gather [] 1 in
  let all_addrs = List.map snd winners in
  let members =
    List.mapi
      (fun i (d, a) ->
        let position = i + 1 in
        (d, a, position))
      winners
  in
  job.j_next_position <- List.length members + 1;
  let sp_start =
    if !Obs.enabled then
      Obs.span ~attrs:[ ("members", string_of_int (List.length members)) ] "ctl.start_phase"
    else Obs.null_span
  in
  parallel_all ~paced:true t
    (List.map
       (fun (d, a, position) ->
         fun () ->
          let nodes = bootstrap_nodes t desc ~all_members:all_addrs ~for_position:position in
          ignore (start_member t job ~position ~nodes (d, a)))
       members);
  Obs.finish sp_start;
  job.j_members <- List.rev members;
  if !Obs.enabled then
    Obs.finish ~attrs:[ ("members", string_of_int (List.length members)) ] sp_deploy;
  { dep_ctl = t; dep_job = job }

let deployment_job dep = dep.dep_job
let deployment_ctl dep = dep.dep_ctl

let members dep = List.rev dep.dep_job.j_members

let member_instance (d, a, _) =
  List.find_opt (fun i -> Addr.equal (Daemon.instance_addr i) a) (Daemon.instances d)

let live_members dep =
  List.filter
    (fun ((d, _, _) as m) ->
      Net.host_up dep.dep_ctl.c_net (Daemon.host d)
      &&
      match member_instance m with
      | Some i -> Daemon.instance_started i && not (Env.is_stopped (Daemon.instance_env i))
      | None -> false)
    (members dep)

let live_envs dep =
  List.filter_map
    (fun m -> Option.map Daemon.instance_env (member_instance m))
    (live_members dep)

let live_count dep = List.length (live_members dep)

(* {1 Status — the splayctl view of a running job}

   The paper's splayctl continuously shows, per job, which splayds are up,
   how loaded they are and who is closest to its sandbox caps. The status
   record is that row: computed on demand from the controller's own
   membership and the daemons' instance tables (no extra RPC round — the
   controller co-simulates with the daemons), and cheap enough to sample
   every rollup window. *)

type job_status = {
  st_name : string;
  st_members : int; (* ever deployed *)
  st_live : int; (* started, not stopped, host up *)
  st_hosts_up : int; (* distinct member hosts currently up *)
  st_hosts_down : int;
  st_fibers : int; (* live processes across live instances *)
  st_inflight : int; (* outstanding RPC calls across live instances *)
  st_mem_bytes : int; (* sandbox-accounted memory across live instances *)
  st_worst : (Addr.t * int) list; (* hottest instances by memory, descending *)
}

let job_name dep =
  match Hashtbl.find_opt dep.dep_ctl.c_specs dep.dep_job.j_id with
  | Some spec -> spec.Daemon.js_name
  | None -> string_of_int dep.dep_job.j_id

let job_status ?(top = 3) dep =
  let t = dep.dep_ctl in
  let ms = members dep in
  let hosts = List.sort_uniq compare (List.map (fun (d, _, _) -> Daemon.host d) ms) in
  let up, down = List.partition (Net.host_up t.c_net) hosts in
  let live = ref 0 and fibers = ref 0 and inflight = ref 0 and mem = ref 0 in
  let per = ref [] in
  List.iter
    (fun ((d, a, _) as m) ->
      if Net.host_up t.c_net (Daemon.host d) then
        match member_instance m with
        | Some i when Daemon.instance_started i && not (Env.is_stopped (Daemon.instance_env i)) ->
            let env = Daemon.instance_env i in
            incr live;
            fibers := !fibers + Env.live_procs env;
            inflight := !inflight + Telemetry.inflight_rpcs env;
            let used = Sandbox.memory_used env.Env.sandbox in
            mem := !mem + used;
            per := (a, used) :: !per
        | _ -> ())
    ms;
  let worst =
    List.sort
      (fun (a1, m1) (a2, m2) -> if m1 <> m2 then compare m2 m1 else compare a1 a2)
      (List.rev !per)
  in
  let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
  {
    st_name = job_name dep;
    st_members = List.length ms;
    st_live = !live;
    st_hosts_up = List.length up;
    st_hosts_down = List.length down;
    st_fibers = !fibers;
    st_inflight = !inflight;
    st_mem_bytes = !mem;
    st_worst = take top worst;
  }

let worst_cell st =
  String.concat " "
    (List.map (fun (a, m) -> Printf.sprintf "%s:%d" (Addr.to_string a) m) st.st_worst)

let deployments t =
  let all = Hashtbl.fold (fun _ job acc -> { dep_ctl = t; dep_job = job } :: acc) t.c_jobs [] in
  List.sort (fun a b -> compare a.dep_job.j_id b.dep_job.j_id) all

let print_status t =
  Printf.printf "  %-12s %8s %6s %9s %11s %8s %10s %10s  %s\n" "job" "members" "live"
    "hosts-up" "hosts-down" "fibers" "inflight" "mem-bytes" "worst";
  List.iter
    (fun dep ->
      let st = job_status dep in
      Printf.printf "  %-12s %8d %6d %9d %11d %8d %10d %10d  %s\n" st.st_name st.st_members
        st.st_live st.st_hosts_up st.st_hosts_down st.st_fibers st.st_inflight st.st_mem_bytes
        (worst_cell st))
    (deployments t)

(* Periodic status sampling into the metrics plane: per-job [ctl.job_status]
   note rows (the splayd status report of the paper, one row per window)
   plus the per-host telemetry histograms over the job's live instances.
   Runs on the controller's env, so it dies with the controller at
   shutdown; between samples it costs nothing. *)
let monitor ?interval ?(top = 3) dep =
  let interval = match interval with Some i -> i | None -> Obs.Rollup.window () in
  let name = job_name dep in
  let g_live = Obs.gauge (Printf.sprintf "ctl.job.%s.live" name) in
  let g_hosts_down = Obs.gauge (Printf.sprintf "ctl.job.%s.hosts_down" name) in
  ignore
    (Env.periodic dep.dep_ctl.c_env interval (fun () ->
         let st = job_status ~top dep in
         Obs.gauge_set g_live (Float.of_int st.st_live);
         Obs.gauge_set g_hosts_down (Float.of_int st.st_hosts_down);
         Telemetry.sample_envs (Array.of_list (live_envs dep));
         Telemetry.sample_engine (Net.engine dep.dep_ctl.c_net);
         if !Obs.metrics_enabled then
           Obs.Rollup.note "ctl.job_status"
             ~attrs:
               [
                 ("job", name);
                 ("members", string_of_int st.st_members);
                 ("live", string_of_int st.st_live);
                 ("hosts_up", string_of_int st.st_hosts_up);
                 ("hosts_down", string_of_int st.st_hosts_down);
                 ("fibers", string_of_int st.st_fibers);
                 ("inflight", string_of_int st.st_inflight);
                 ("mem_bytes", string_of_int st.st_mem_bytes);
                 ("worst", worst_cell st);
               ]))

let add_node dep =
  let t = dep.dep_ctl and job = dep.dep_job in
  match select t 1 with
  | [] -> None
  | d :: _ -> (
      match register_round t job ~timeout:10.0 [ d ] ~need:1 with
      | [] -> None
      | (d, a) :: _ ->
          let position = job.j_next_position in
          job.j_next_position <- position + 1;
          let live = List.map (fun (_, a, _) -> a) (live_members dep) in
          let nodes = bootstrap_nodes t job.j_desc ~all_members:live ~for_position:position in
          if start_member t job ~position ~nodes (d, a) then begin
            job.j_members <- (d, a, position) :: job.j_members;
            Some a
          end
          else None)

let crash_node dep a =
  List.iter
    (fun (d, ma, _) -> if Addr.equal ma a then Daemon.stop_instance d a)
    dep.dep_job.j_members

let stop_node dep a =
  List.iter
    (fun (d, ma, _) ->
      if Addr.equal ma a then
        ignore
          (Rpc.a_call dep.dep_ctl.c_env (Daemon.addr d) ~timeout:30.0 Daemon.proc_stop
             [ Codec.Int a.Addr.port ]))
    dep.dep_job.j_members

let restart_node dep a =
  let t = dep.dep_ctl and job = dep.dep_job in
  List.iter
    (fun ((d, ma, position) as m) ->
      if Addr.equal ma a then begin
        let live = List.map (fun (_, x, _) -> x) (live_members dep) in
        let nodes = bootstrap_nodes t job.j_desc ~all_members:live ~for_position:position in
        ignore (start_member t job ~position ~nodes (d, a));
        ignore m
      end)
    dep.dep_job.j_members

let free_node dep a =
  List.iter
    (fun (d, ma, _) ->
      if Addr.equal ma a then
        ignore
          (Rpc.a_call dep.dep_ctl.c_env (Daemon.addr d) ~timeout:30.0 Daemon.proc_free
             [ Codec.Int a.Addr.port ]))
    dep.dep_job.j_members

let undeploy dep =
  let t = dep.dep_ctl in
  parallel_all t
    (List.map (fun (_, a, _) -> fun () -> free_node dep a) (live_members dep))

let log_lines dep = dep.dep_job.j_log_lines
let log_bytes dep = dep.dep_job.j_log_bytes
let job_log dep = List.of_seq (Queue.to_seq dep.dep_job.j_log)
let job_log_dropped dep = dep.dep_job.j_log_dropped

(* L records share the trace's JSONL framing so one file (or a cat of the
   two) replays the run: sort by "t" and logs interleave with spans. *)
let logs_jsonl dep =
  let buf = Buffer.create 4096 in
  Queue.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf {|{"t":%.6f,"ev":"L","node":%s,"level":"%s","msg":%s}|} r.lr_time
           (Obs.json_string r.lr_node)
           (Log.level_to_string r.lr_level)
           (Obs.json_string r.lr_msg));
      Buffer.add_char buf '\n')
    dep.dep_job.j_log;
  Buffer.contents buf

let dump_logs dep ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (logs_jsonl dep))

let push_blacklist t h =
  Obs.incr c_blacklist;
  if !Obs.enabled then Obs.event ~attrs:[ ("host", string_of_int h) ] "ctl.blacklist_push";
  parallel_all t
    (List.map
       (fun d ->
         fun () ->
          ignore
            (Rpc.a_call t.c_env (Daemon.addr d.dr_daemon) ~timeout:30.0 "splayd.blacklist"
               [ Codec.Int h ]))
       t.c_daemons)
