(* Control-plane wire protocol.

   Two layers live here. The value layer is the original stub: encodings
   of control-plane values (addresses) carried inside RPC arguments of the
   *simulated* control plane. The frame layer is the live control plane's
   transport: a versioned, length-prefixed binary framing over
   [Splay_runtime.Codec] payloads, plus the typed message set exchanged
   between the live controller and real [splayd] processes — deployment
   verbs, daemon heartbeats with sandbox resource reports, streamed log /
   trace records, and tunnelled application traffic.

   Framing format (version 1):

   {v
     +---+---+---+-----+------------------+--------------------+
     |'S'|'P'|'W'| 0x01| length (4B, BE)  | payload (JSON text) |
     +---+---+---+-----+------------------+--------------------+
   v}

   The payload is [Codec.encode] of a value. The 3-byte magic catches a
   desynchronized or non-protocol peer immediately; the version byte lets
   a future format coexist on the same port; the length prefix bounds the
   read. The decoder is a streaming state machine over arbitrary read
   chunk boundaries: a frame torn across reads is simply incomplete
   ([next] answers [None]) and is completed by a later [feed] — a torn
   read can never desynchronize the stream. Corrupt input (bad magic,
   unsupported version, absurd length, malformed payload) raises
   {!Codec.Parse_error}: the connection is unrecoverable and must be
   closed, never resynchronized by guesswork. *)

module Codec = Splay_runtime.Codec

let addr_to_value (a : Addr.t) = Codec.String (Addr.to_string a)

let addr_of_value v =
  match String.split_on_char ':' (Codec.to_string v) with
  | [ h; p ] -> (
      match (int_of_string_opt h, int_of_string_opt p) with
      | Some h, Some p -> Addr.make h p
      | _ -> raise (Codec.Parse_error "bad address"))
  | _ -> raise (Codec.Parse_error "bad address")

let addrs_to_value addrs = Codec.List (List.map addr_to_value addrs)

let addrs_of_value v = List.map addr_of_value (Codec.to_list v)

(* {1 Framing} *)

let version = 1
let header_len = 8
let max_frame = 16 * 1024 * 1024

let frame_value v =
  let payload = Codec.encode v in
  let n = String.length payload in
  if n > max_frame then invalid_arg "Wire.frame_value: frame too large";
  let b = Bytes.create (header_len + n) in
  Bytes.set b 0 'S';
  Bytes.set b 1 'P';
  Bytes.set b 2 'W';
  Bytes.set b 3 (Char.chr version);
  Bytes.set_int32_be b 4 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

type decoder = { mutable buf : Bytes.t; mutable pos : int; mutable fill : int }

let decoder () = { buf = Bytes.create 4096; pos = 0; fill = 0 }

let buffered d = d.fill - d.pos

(* Slide the live region back to offset 0 — O(live bytes), amortized by
   only running when an append would not fit. *)
let compact d =
  if d.pos > 0 then begin
    let live = d.fill - d.pos in
    if live > 0 then Bytes.blit d.buf d.pos d.buf 0 live;
    d.pos <- 0;
    d.fill <- live
  end

let feed d src off len =
  if off < 0 || len < 0 || off + len > Bytes.length src then invalid_arg "Wire.feed";
  if len > 0 then begin
    if d.fill + len > Bytes.length d.buf then begin
      compact d;
      let need = d.fill + len in
      if need > Bytes.length d.buf then begin
        let cap = ref (Bytes.length d.buf * 2) in
        while !cap < need do
          cap := !cap * 2
        done;
        let grown = Bytes.create !cap in
        Bytes.blit d.buf 0 grown 0 d.fill;
        d.buf <- grown
      end
    end;
    Bytes.blit src off d.buf d.fill len;
    d.fill <- d.fill + len
  end

let feed_string d s = feed d (Bytes.unsafe_of_string s) 0 (String.length s)

let next_value d =
  let avail = d.fill - d.pos in
  if avail < header_len then None
  else begin
    let b = d.buf and p = d.pos in
    if Bytes.get b p <> 'S' || Bytes.get b (p + 1) <> 'P' || Bytes.get b (p + 2) <> 'W' then
      raise (Codec.Parse_error "bad frame magic");
    let ver = Char.code (Bytes.get b (p + 3)) in
    if ver <> version then
      raise (Codec.Parse_error (Printf.sprintf "unsupported wire version %d" ver));
    let len = Int32.to_int (Bytes.get_int32_be b (p + 4)) in
    if len < 0 || len > max_frame then raise (Codec.Parse_error "frame length out of range");
    if avail < header_len + len then None
    else begin
      let payload = Bytes.sub_string b (p + header_len) len in
      d.pos <- p + header_len + len;
      if d.pos = d.fill then begin
        d.pos <- 0;
        d.fill <- 0
      end;
      Some (Codec.decode payload)
    end
  end

(* {1 Typed control messages} *)

type msg =
  | Hello of { host : int; pid : int; data_port : int }
  | Peers of { epoch : float; peers : (int * int) list }
  | Deploy of {
      job : int;
      app : string;
      name : string;
      port : int;
      position : int;
      nodes : Addr.t list;
      limits : Sandbox.limits;
      log_level : Log.level;
      params : (string * string) list;
    }
  | Start of { job : int; port : int }
  | Stop of { job : int; port : int }
  | Shutdown
  | Ack of { re : string; ok : bool; detail : string }
  | Heartbeat of {
      host : int;
      rss : int;
      mem : int;
      sockets : int;
      fs : int;
      fibers : int;
      inflight : int;
    }
  | Logline of { time : float; node : string; level : Log.level; text : string }
  | Chunk of { host : int; kind : string; data : string; final : bool }
  | Bye of { host : int }
  | App of { src : Addr.t; dst : Addr.t; size : int; payload : Codec.value }

let limits_to_value (l : Sandbox.limits) =
  Codec.Assoc
    [
      ("mem", Codec.Int l.Sandbox.max_memory);
      ("sockets", Codec.Int l.Sandbox.max_sockets);
      ("fs", Codec.Int l.Sandbox.max_fs_bytes);
      ("files", Codec.Int l.Sandbox.max_open_files);
      ("send", Codec.Int l.Sandbox.max_send_bytes);
    ]

let limits_of_value v =
  {
    Sandbox.max_memory = Codec.to_int (Codec.member "mem" v);
    max_sockets = Codec.to_int (Codec.member "sockets" v);
    max_fs_bytes = Codec.to_int (Codec.member "fs" v);
    max_open_files = Codec.to_int (Codec.member "files" v);
    max_send_bytes = Codec.to_int (Codec.member "send" v);
  }

let level_of_value v =
  match Log.level_of_string (Codec.to_string v) with
  | Some l -> l
  | None -> raise (Codec.Parse_error "bad log level")

let tagged tag fields = Codec.Assoc (("t", Codec.String tag) :: fields)

let msg_to_value = function
  | Hello { host; pid; data_port } ->
      tagged "hello"
        [ ("host", Codec.Int host); ("pid", Codec.Int pid); ("data_port", Codec.Int data_port) ]
  | Peers { epoch; peers } ->
      tagged "peers"
        [
          ("epoch", Codec.Float epoch);
          ( "peers",
            Codec.List (List.map (fun (h, p) -> Codec.List [ Codec.Int h; Codec.Int p ]) peers) );
        ]
  | Deploy { job; app; name; port; position; nodes; limits; log_level; params } ->
      tagged "deploy"
        [
          ("job", Codec.Int job);
          ("app", Codec.String app);
          ("name", Codec.String name);
          ("port", Codec.Int port);
          ("position", Codec.Int position);
          ("nodes", addrs_to_value nodes);
          ("limits", limits_to_value limits);
          ("log_level", Codec.String (Log.level_to_string log_level));
          ("params", Codec.Assoc (List.map (fun (k, v) -> (k, Codec.String v)) params));
        ]
  | Start { job; port } -> tagged "start" [ ("job", Codec.Int job); ("port", Codec.Int port) ]
  | Stop { job; port } -> tagged "stop" [ ("job", Codec.Int job); ("port", Codec.Int port) ]
  | Shutdown -> tagged "shutdown" []
  | Ack { re; ok; detail } ->
      tagged "ack"
        [ ("re", Codec.String re); ("ok", Codec.Bool ok); ("detail", Codec.String detail) ]
  | Heartbeat { host; rss; mem; sockets; fs; fibers; inflight } ->
      tagged "hb"
        [
          ("host", Codec.Int host);
          ("rss", Codec.Int rss);
          ("mem", Codec.Int mem);
          ("sockets", Codec.Int sockets);
          ("fs", Codec.Int fs);
          ("fibers", Codec.Int fibers);
          ("inflight", Codec.Int inflight);
        ]
  | Logline { time; node; level; text } ->
      tagged "log"
        [
          ("time", Codec.Float time);
          ("node", Codec.String node);
          ("level", Codec.String (Log.level_to_string level));
          ("text", Codec.String text);
        ]
  | Chunk { host; kind; data; final } ->
      tagged "chunk"
        [
          ("host", Codec.Int host);
          ("kind", Codec.String kind);
          ("data", Codec.String data);
          ("final", Codec.Bool final);
        ]
  | Bye { host } -> tagged "bye" [ ("host", Codec.Int host) ]
  | App { src; dst; size; payload } ->
      tagged "app"
        [
          ("src", addr_to_value src);
          ("dst", addr_to_value dst);
          ("size", Codec.Int size);
          ("payload", payload);
        ]

let msg_of_value v =
  let int k = Codec.to_int (Codec.member k v) in
  let str k = Codec.to_string (Codec.member k v) in
  match str "t" with
  | "hello" -> Hello { host = int "host"; pid = int "pid"; data_port = int "data_port" }
  | "peers" ->
      Peers
        {
          epoch = Codec.to_float (Codec.member "epoch" v);
          peers =
            List.map
              (fun p ->
                match Codec.to_list p with
                | [ h; d ] -> (Codec.to_int h, Codec.to_int d)
                | _ -> raise (Codec.Parse_error "bad peer entry"))
              (Codec.to_list (Codec.member "peers" v));
        }
  | "deploy" ->
      Deploy
        {
          job = int "job";
          app = str "app";
          name = str "name";
          port = int "port";
          position = int "position";
          nodes = addrs_of_value (Codec.member "nodes" v);
          limits = limits_of_value (Codec.member "limits" v);
          log_level = level_of_value (Codec.member "log_level" v);
          params =
            (match Codec.member "params" v with
            | Codec.Assoc kvs -> List.map (fun (k, pv) -> (k, Codec.to_string pv)) kvs
            | _ -> raise (Codec.Parse_error "bad params"));
        }
  | "start" -> Start { job = int "job"; port = int "port" }
  | "stop" -> Stop { job = int "job"; port = int "port" }
  | "shutdown" -> Shutdown
  | "ack" -> Ack { re = str "re"; ok = Codec.to_bool (Codec.member "ok" v); detail = str "detail" }
  | "hb" ->
      Heartbeat
        {
          host = int "host";
          rss = int "rss";
          mem = int "mem";
          sockets = int "sockets";
          fs = int "fs";
          fibers = int "fibers";
          inflight = int "inflight";
        }
  | "log" ->
      Logline
        {
          time = Codec.to_float (Codec.member "time" v);
          node = str "node";
          level = level_of_value (Codec.member "level" v);
          text = str "text";
        }
  | "chunk" ->
      Chunk
        {
          host = int "host";
          kind = str "kind";
          data = str "data";
          final = Codec.to_bool (Codec.member "final" v);
        }
  | "bye" -> Bye { host = int "host" }
  | "app" ->
      App
        {
          src = addr_of_value (Codec.member "src" v);
          dst = addr_of_value (Codec.member "dst" v);
          size = int "size";
          payload = Codec.member "payload" v;
        }
  | tag -> raise (Codec.Parse_error (Printf.sprintf "unknown control message %S" tag))

let frame_msg m = frame_value (msg_to_value m)

let next_msg d = Option.map msg_of_value (next_value d)
