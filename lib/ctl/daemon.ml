module Engine = Splay_sim.Engine
module Sandbox = Splay_runtime.Sandbox
module Log = Splay_runtime.Log
module Env = Splay_runtime.Env
module Rpc = Splay_runtime.Rpc
module Codec = Splay_runtime.Codec
module Obs = Splay_obs.Obs

(* Per-command counters on the daemon side of the job state machine; the
   REGISTER span captures the service pause that makes loaded hosts slow
   to accept instances (the reason deployments over-provision). *)
let c_register = Obs.counter "splayd.register"
let c_list = Obs.counter "splayd.list"
let c_start = Obs.counter "splayd.start"
let c_stop = Obs.counter "splayd.stop"
let c_free = Obs.counter "splayd.free"

type config = {
  base_footprint : int;
  admin_limits : Sandbox.limits;
  heartbeat_interval : float;
  cpu_per_instance : float;
  contention_extra : int -> float;
}

let splay_config =
  {
    (* ~600 kB of libraries at load, growing towards ~1.5 MB once protocol
       state fills in; we account the resident steady state *)
    base_footprint = 1_450 * 1024;
    admin_limits = { Sandbox.unlimited with Sandbox.max_memory = 16 * 1024 * 1024 };
    heartbeat_interval = 60.0;
    cpu_per_instance = 0.000_3;
    contention_extra = (fun _ -> 0.0);
  }

type job_spec = {
  js_name : string;
  js_main : Env.t -> unit;
  js_limits : Sandbox.limits;
  js_log_sink : Log.sink;
  js_log_level : Log.level;
  js_loss : float;
}

type instance = {
  inst_job : int;
  mutable inst_env : Env.t;
  mutable inst_started : bool;
  mutable inst_nodes : Addr.t list;
  inst_position : int;
}

type t = {
  d_host : Addr.host_id;
  net : Net.t;
  d_env : Env.t; (* the daemon's own control endpoint *)
  cfg : config;
  controller : Addr.t;
  lookup_job : int -> job_spec option;
  mutable insts : instance list;
  mutable next_port : int;
  mutable banned : Addr.host_id list; (* controller-pushed blacklist *)
}

let proc_probe = "splayd.probe"
let proc_register = "splayd.register"
let proc_list = "splayd.list"
let proc_start = "splayd.start"
let proc_free = "splayd.free"
let proc_stop = "splayd.stop"

let addr t = t.d_env.Env.me
let host t = t.d_host

let instances t = t.insts
let instances_of_job t job = List.filter (fun i -> i.inst_job = job) t.insts
let instance_env i = i.inst_env
let instance_addr i = i.inst_env.Env.me
let instance_count t = List.length t.insts

let memory_used t =
  List.fold_left
    (fun acc i -> acc + t.cfg.base_footprint + Sandbox.memory_used i.inst_env.Env.sandbox)
    0 t.insts

(* Contention model: instances cost a sliver of CPU each; once resident
   memory exceeds the host's RAM, swapping multiplies every service time.
   This is what bends the FreePastry curves in Fig. 7(b)/Fig. 8 while SPLAY,
   with its small footprint, stays flat. *)
let refresh_host_model t =
  let h = Testbed.host (Net.testbed t.net) t.d_host in
  let mem = Float.of_int (memory_used t) in
  let cap = h.Testbed.mem_mb *. 1024.0 *. 1024.0 in
  let swap_mult = if mem > cap then 1.0 +. (60.0 *. ((mem /. cap) -. 1.0)) else 1.0 in
  let n = instance_count t in
  let cpu_mult =
    1.0 +. (t.cfg.cpu_per_instance *. Float.of_int n) +. t.cfg.contention_extra n
  in
  h.Testbed.service_mult <- swap_mult *. cpu_mult

let load t =
  let h = Testbed.host (Net.testbed t.net) t.d_host in
  let n = Float.of_int (instance_count t) in
  let base = n *. t.cfg.cpu_per_instance in
  if h.Testbed.service_mult > 1.5 then base +. (n *. 0.002) else base

let find_inst t port = List.find_opt (fun i -> i.inst_env.Env.me.Addr.port = port) t.insts

let remove_instance t inst =
  Env.stop inst.inst_env;
  t.insts <- List.filter (fun i -> i != inst) t.insts;
  refresh_host_model t

let stop_instance t a =
  match find_inst t a.Addr.port with
  | Some i when Addr.equal (instance_addr i) a -> remove_instance t i
  | _ -> ()

(* A control command pays the host's service time before answering: on a
   loaded PlanetLab node, forking and preparing an instance is slow — the
   very reason the controller over-provisions candidates. *)
let service_pause t = Engine.sleep (Testbed.service_delay (Net.testbed t.net) t.d_host)

(* A fresh sandboxed environment for an instance slot (initial REGISTER,
   or re-arming after STOP). *)
let fresh_env t spec ~port =
  let limits = Sandbox.restrict t.cfg.admin_limits spec.js_limits in
  let env = Env.create t.net ~me:(Addr.make t.d_host port) ~limits ~nodes:[] in
  Sandbox.blacklist env.Env.sandbox t.controller.Addr.host;
  List.iter (Sandbox.blacklist env.Env.sandbox) t.banned;
  Log.set_sink env.Env.log spec.js_log_sink;
  (* the job's log threshold filters at the emitting node, before any
     forwarding cost is paid — the paper's log.set_level at init *)
  Log.set_level env.Env.log spec.js_log_level;
  env.Env.loss_rate <- spec.js_loss;
  env

let handle_register t args =
  match args with
  | [ job_v ] ->
      Obs.incr c_register;
      let sp =
        if !Obs.enabled then
          Obs.span ~attrs:[ ("host", string_of_int t.d_host) ] "splayd.register"
        else Obs.null_span
      in
      service_pause t;
      let job = Codec.to_int job_v in
      (match t.lookup_job job with
      | None ->
          Obs.finish ~attrs:[ ("outcome", "unknown_job") ] sp;
          failwith "unknown job"
      | Some spec ->
          let port = t.next_port in
          t.next_port <- t.next_port + 1;
          let env = fresh_env t spec ~port in
          let inst =
            { inst_job = job; inst_env = env; inst_started = false; inst_nodes = []; inst_position = 0 }
          in
          t.insts <- inst :: t.insts;
          refresh_host_model t;
          if !Obs.enabled then Obs.finish ~attrs:[ ("port", string_of_int port) ] sp;
          Codec.Int port)
  | _ -> failwith "register: bad arguments"

let handle_list t args =
  Obs.incr c_list;
  match args with
  | [ port_v; position_v; nodes_v ] -> (
      let port = Codec.to_int port_v in
      match find_inst t port with
      | None -> failwith "list: no such instance"
      | Some inst ->
          inst.inst_env.Env.position <- Codec.to_int position_v;
          inst.inst_nodes <- Wire.addrs_of_value nodes_v;
          Codec.Null)
  | _ -> failwith "list: bad arguments"

let handle_start t args =
  Obs.incr c_start;
  match args with
  | [ job_v; port_v ] -> (
      let job = Codec.to_int job_v and port = Codec.to_int port_v in
      match (t.lookup_job job, find_inst t port) with
      | Some spec, Some inst when (not inst.inst_started) && inst.inst_job = job ->
          inst.inst_started <- true;
          inst.inst_env.Env.nodes <- inst.inst_nodes;
          ignore
            (Env.thread inst.inst_env ~name:(Printf.sprintf "%s@%d" spec.js_name t.d_host)
               (fun () -> spec.js_main inst.inst_env));
          Codec.Null
      | _, None -> failwith "start: no such instance"
      | _ -> failwith "start: bad state")
  | _ -> failwith "start: bad arguments"

(* STOP: terminate the application but keep the registration — the job goes
   back to the "selected" state of the paper's state machine and can be
   STARTed again. *)
let handle_stop t args =
  Obs.incr c_stop;
  match args with
  | [ port_v ] -> (
      let port = Codec.to_int port_v in
      match find_inst t port with
      | None -> failwith "stop: no such instance"
      | Some inst -> (
          match t.lookup_job inst.inst_job with
          | None -> failwith "stop: unknown job"
          | Some spec ->
              Env.stop inst.inst_env;
              let env = fresh_env t spec ~port in
              env.Env.position <- inst.inst_env.Env.position;
              inst.inst_env <- env;
              inst.inst_started <- false;
              refresh_host_model t;
              Codec.Null))
  | _ -> failwith "stop: bad arguments"

let handle_free t args =
  Obs.incr c_free;
  match args with
  | [ port_v ] ->
      let port = Codec.to_int port_v in
      (match find_inst t port with Some inst -> remove_instance t inst | None -> ());
      Codec.Null
  | _ -> failwith "free: bad arguments"

let start net ~host ~controller ?(config = splay_config) ~lookup_job () =
  let d_env = Env.create net ~me:(Addr.make host 1) in
  let t =
    {
      d_host = host;
      net;
      d_env;
      cfg = config;
      controller;
      lookup_job;
      insts = [];
      next_port = 2000;
      banned = [];
    }
  in
  Rpc.server d_env
    [
      ( proc_probe,
        fun _ ->
          service_pause t;
          Codec.Null );
      (proc_register, handle_register t);
      (proc_list, handle_list t);
      (proc_start, handle_start t);
      (proc_free, handle_free t);
      (proc_stop, handle_stop t);
      ( "splayd.blacklist",
        fun args ->
          (match args with
          | [ h ] ->
              let h = Codec.to_int h in
              if not (List.mem h t.banned) then t.banned <- h :: t.banned;
              List.iter (fun i -> Sandbox.blacklist i.inst_env.Env.sandbox h) t.insts
          | _ -> failwith "blacklist: bad arguments");
          Codec.Null );
    ];
  (* session keep-alive towards the controller *)
  ignore
    (Env.periodic d_env t.cfg.heartbeat_interval (fun () ->
         ignore
           (Rpc.a_call d_env t.controller ~timeout:30.0 "ctl.heartbeat"
              [ Codec.Int t.d_host ])));
  t

let instance_started i = i.inst_started

let shutdown t =
  List.iter (fun i -> Env.stop i.inst_env) t.insts;
  t.insts <- [];
  refresh_host_model t;
  Env.stop t.d_env
