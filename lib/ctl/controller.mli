(** The [splayctl] controller.

    Keeps the database of daemons and jobs, probes and selects hosts,
    deploys jobs with the REGISTER / LIST / START / FREE protocol (always
    registering a superset of candidates and keeping the most responsive
    ones, the tradeoff of Fig. 12), collects application logs, distributes
    blacklists, and tracks daemon sessions ([unseen]). The churn manager
    drives {!add_node} / {!crash_node} to reshape a running deployment.

    Control traffic flows over the same simulated network as applications,
    so deployment timings inherit the testbed's latency, bandwidth and host
    responsiveness models.

    Blocking operations ({!probe}, {!deploy}, {!add_node}) must be called
    from inside a simulation process. *)

type t

val create : ?unseen_timeout:float -> Net.t -> host:Addr.host_id -> t
(** [host] is the trusted machine the controller processes run on. *)

val addr : t -> Addr.t
val env : t -> Env.t
val net : t -> Net.t

(** {1 Daemon database} *)

val attach_daemon : t -> Daemon.t -> unit
(** Record a daemon that connected. (The [Daemon.start] convenience
    {!boot_daemons} does this for you.) *)

val boot_daemons : ?config:Daemon.config -> t -> Addr.host_id list -> Daemon.t list
(** Start a daemon on each host and attach it. *)

val daemons : t -> Daemon.t list
val alive_daemons : t -> Daemon.t list
(** Daemons whose host is up and whose session is fresh (heartbeat within
    the unseen timeout). *)

val heartbeat_age : t -> Daemon.t -> float

(** {1 Selection} *)

type criterion =
  | Min_bandwidth of float (** bytes/second on the uplink *)
  | Near of (float * float) * float (** within given delay of virtual coordinates *)
  | On_testbed of Testbed.kind
  | Custom of (Testbed.host -> bool)

val criterion_label : criterion -> string
(** Stable label used in {!selection_report} and in trace attributes. *)

type selection_report = {
  sel_alive : int;  (** alive daemons considered *)
  sel_dead : int;  (** daemons skipped: host down or session stale *)
  sel_matched : int;  (** daemons satisfying every criterion *)
  sel_rejected : (string * int) list;
      (** per-criterion rejection counts, in the caller's criteria order; a
          daemon is charged to the first criterion that rejects it *)
}
(** Why a selection came up short — the paper's deployments silently get
    fewer daemons than asked; this makes the failure diagnosable. *)

val select_report : t -> ?criteria:criterion list -> int -> Daemon.t list * selection_report
(** Like {!select}, also returning where the candidate pool was lost.
    Consumes the same RNG stream as {!select}, so the chosen daemons are
    identical for a given engine state. *)

val select : t -> ?criteria:criterion list -> int -> Daemon.t list
(** [select t n] returns up to [n] instance slots over the alive daemons
    matching all criteria — cycling over daemons when [n] exceeds the host
    population, since many instances may share a host. *)

(** {1 Probing} *)

val probe : t -> ?payload:int -> Daemon.t -> float option
(** Round-trip time of a [payload]-byte probe (default 20 kB, as Fig. 3),
    [None] on timeout (10 s). Blocking. *)

(** {1 Jobs} *)

type job
type deployment

val job_id : job -> int

val deploy :
  t ->
  ?superset:float ->
  ?register_timeout:float ->
  ?criteria:criterion list ->
  ?log_cap:int ->
  ?log_level:Log.level ->
  name:string ->
  main:(Env.t -> unit) ->
  Descriptor.t ->
  deployment
(** Deploy a job: select [superset] (default 1.25, the paper's default ×
    the requested size) candidate slots, REGISTER them all, keep the first
    [nb_splayd] to acknowledge, FREE the rest, push LIST (positions and
    bootstrap nodes per the descriptor) and START. Blocking; returns once
    every kept instance has started.

    [log_level] (default [Info]) is the per-node severity threshold pushed
    to every instance of the job; records below it are filtered at the
    node. [log_cap] (default 100_000) bounds the records the controller
    retains for the job — beyond it, {!log_lines}/{!log_bytes} keep
    counting but the text is dropped (see {!job_log_dropped}). *)

val deployment_job : deployment -> job
val deployment_ctl : deployment -> t

val members : deployment -> (Daemon.t * Addr.t * int) list
(** All instances ever started (daemon, address, position), including ones
    that have since died. *)

val live_members : deployment -> (Daemon.t * Addr.t * int) list
val live_envs : deployment -> Env.t list
val live_count : deployment -> int

(** {1 Job status — the splayctl monitoring view}

    The paper's splayctl continuously reports, per job, which splayds are
    up, their load and their resource consumption against the sandbox
    caps. {!job_status} computes that row on demand; {!monitor} samples
    it (plus {!Splay_runtime.Telemetry} host histograms over the job's
    live instances) into the metrics plane every rollup window, emitting
    one [ctl.job_status] note row per sample. *)

type job_status = {
  st_name : string;
  st_members : int;  (** instances ever started *)
  st_live : int;  (** started, not stopped, host up *)
  st_hosts_up : int;  (** distinct member hosts currently up *)
  st_hosts_down : int;
  st_fibers : int;  (** live processes across live instances *)
  st_inflight : int;  (** outstanding RPC calls across live instances *)
  st_mem_bytes : int;  (** sandbox-accounted memory across live instances *)
  st_worst : (Addr.t * int) list;  (** hottest instances by memory, descending *)
}

val job_status : ?top:int -> deployment -> job_status
(** Current status; [top] bounds {!job_status.st_worst} (default 3). *)

val job_name : deployment -> string

val deployments : t -> deployment list
(** Every job this controller runs, in deployment order. *)

val print_status : t -> unit
(** One status line per job on stdout. *)

val monitor : ?interval:float -> ?top:int -> deployment -> unit
(** Start the periodic status sampler on the controller's env (default
    interval: the rollup window width). It stops when the controller's
    env stops. Sampling is observable only while an {!Splay_obs.Obs}
    plane is enabled. *)

val add_node : deployment -> Addr.t option
(** Churn join: register + start one more instance on a random alive
    daemon, bootstrapped per the descriptor against current live members.
    Blocking. [None] if no daemon accepted. *)

val crash_node : deployment -> Addr.t -> unit
(** Churn leave / failure: kill the instance immediately, no protocol
    (the node simply disappears, as under real churn). *)

val stop_node : deployment -> Addr.t -> unit
(** The STOP command of the job state machine: terminate the application
    but keep the instance registered ("selected"); {!restart_node} brings
    it back with a fresh sandbox. Blocking. *)

val restart_node : deployment -> Addr.t -> unit
(** Re-START a stopped instance: new LIST (bootstrapped against current
    live members) + START. Blocking. *)

val free_node : deployment -> Addr.t -> unit
(** Graceful removal through the FREE command. Blocking. *)

val undeploy : deployment -> unit
(** FREE every live instance. Blocking. *)

val log_lines : deployment -> int
val log_bytes : deployment -> int
(** Volume received by this job's log collector. *)

(** {1 Log collection}

    Every instance of a job forwards its enabled log records to the
    controller, which aggregates them per job on the virtual clock. *)

type log_record = {
  lr_time : float;  (** virtual time at the emitting node *)
  lr_node : string;  (** emitting instance (its address string) *)
  lr_level : Log.level;
  lr_msg : string;
}

val job_log : deployment -> log_record list
(** Collected records in arrival order (deterministic: delivery order on
    the virtual clock). *)

val job_log_dropped : deployment -> int
(** Records lost to the per-job cap ([log_cap] at {!deploy}). *)

val logs_jsonl : deployment -> string
(** The collected records as JSONL
    [{"t":…,"ev":"L","node":…,"level":…,"msg":…}] lines — same framing as
    {!Splay_obs.Obs.trace_jsonl}, so the two files interleave by ["t"]. *)

val dump_logs : deployment -> path:string -> unit
(** Write {!logs_jsonl} to [path]. *)

(** {1 Blacklist} *)

val push_blacklist : t -> Addr.host_id -> unit
(** Forbid a host to all daemons and their current and future instances.
    Blocking. *)
