(** Control-plane wire protocol.

    The value layer ([addr_*]) encodes control-plane values carried in the
    RPC arguments of the simulated control plane. The frame layer is the
    {e live} control plane's transport: a versioned, length-prefixed binary
    framing over {!Splay_runtime.Codec} payloads, and the typed message set
    the live controller and real [splayd] processes exchange — deployment
    verbs, heartbeats with sandbox resource reports, streamed log / trace
    records, and tunnelled application traffic.

    Frame format (version 1): 3-byte magic ["SPW"], 1 version byte, 4-byte
    big-endian payload length, then [Codec.encode] of the payload value.
    The streaming {!decoder} tolerates arbitrary read-chunk boundaries: a
    frame torn across reads is incomplete, never desynchronizing. Corrupt
    input raises {!Codec.Parse_error} — close the connection. *)

val addr_to_value : Addr.t -> Splay_runtime.Codec.value
val addr_of_value : Splay_runtime.Codec.value -> Addr.t
val addrs_to_value : Addr.t list -> Splay_runtime.Codec.value
val addrs_of_value : Splay_runtime.Codec.value -> Addr.t list

(** {1 Framing} *)

val version : int
(** Protocol version carried in every frame header. *)

val max_frame : int
(** Upper bound on a frame's payload size; larger frames are refused on
    both encode ([Invalid_argument]) and decode ({!Splay_runtime.Codec.Parse_error}). *)

val frame_value : Splay_runtime.Codec.value -> string
(** One complete frame: header + encoded payload, ready to write. *)

type decoder
(** Streaming frame parser. Feed it read chunks as they arrive; pull
    complete frames with {!next_value}/{!next_msg}. *)

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> int -> unit
(** [feed d buf off len] appends [len] bytes of received data. *)

val feed_string : decoder -> string -> unit

val buffered : decoder -> int
(** Bytes fed but not yet consumed by a completed frame. *)

val next_value : decoder -> Splay_runtime.Codec.value option
(** The next complete frame's payload, or [None] if the buffered data ends
    mid-frame. Raises {!Splay_runtime.Codec.Parse_error} on corrupt input
    (bad magic, unsupported version, absurd length, malformed payload). *)

(** {1 Typed control messages}

    The live control protocol. [Hello] / [Peers] is the bootstrap
    handshake (the daemon announces its data port; the controller answers
    with the shared wall-clock epoch and the peer table). [Deploy] /
    [Start] / [Stop] / [Shutdown] are the job verbs, acknowledged by
    [Ack]. [Heartbeat] carries the daemon's sandbox resource report;
    [Logline] streams application log records; [Chunk] streams the
    daemon's trace / metrics JSONL dump at shutdown; [App] tunnels one
    application message between daemons over the data connections. *)

type msg =
  | Hello of { host : int; pid : int; data_port : int }
  | Peers of { epoch : float; peers : (int * int) list }
  | Deploy of {
      job : int;
      app : string;  (** registry name of the application to run *)
      name : string;
      port : int;
      position : int;
      nodes : Addr.t list;  (** bootstrap membership handed to the instance *)
      limits : Sandbox.limits;
      log_level : Log.level;
      params : (string * string) list;  (** application parameters *)
    }
  | Start of { job : int; port : int }
  | Stop of { job : int; port : int }
  | Shutdown
  | Ack of { re : string; ok : bool; detail : string }
  | Heartbeat of {
      host : int;
      rss : int;  (** process resident set, bytes (self-polled) *)
      mem : int;  (** sandbox-accounted application state, bytes *)
      sockets : int;
      fs : int;
      fibers : int;
      inflight : int;
    }
  | Logline of { time : float; node : string; level : Log.level; text : string }
  | Chunk of { host : int; kind : string; data : string; final : bool }
  | Bye of { host : int }
  | App of { src : Addr.t; dst : Addr.t; size : int; payload : Splay_runtime.Codec.value }

val msg_to_value : msg -> Splay_runtime.Codec.value
val msg_of_value : Splay_runtime.Codec.value -> msg
(** Raises {!Splay_runtime.Codec.Parse_error} on an unknown tag or a
    shape mismatch. *)

val frame_msg : msg -> string
val next_msg : decoder -> msg option

val limits_to_value : Sandbox.limits -> Splay_runtime.Codec.value
val limits_of_value : Splay_runtime.Codec.value -> Sandbox.limits
