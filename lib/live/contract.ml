module Engine = Splay_sim.Engine

(* The sim-vs-live contract: one deployment, two execution backends, and
   a structural diff over the evidence both emit. Applications report
   their invariants as "REPORT ..." log lines (see [Live_apps]); this
   module runs the simulated twin of a live deployment in-process,
   parses both report streams into a [summary], and diffs ring
   successorship and lookup answers exactly, message counts within a
   tolerance (live runs retry where the simulation's first attempt
   always lands). *)

type summary = {
  ring : (int * int * int) list;  (* (id, succ, pred), sorted by id *)
  lookups : (int * (int * int) option) list;  (* key -> Some (owner, hops) *)
  calls : int option;
  done_ok : (int * int) option;  (* (issued, resolved) *)
}

let scan s fmt f =
  try Some (Scanf.sscanf s fmt f) with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let is_report s = String.length s >= 6 && String.sub s 0 6 = "REPORT"

let summary_of_reports reports =
  let ring = ref [] and lookups = ref [] and calls = ref None and done_ok = ref None in
  List.iter
    (fun (_node, s) ->
      match scan s "REPORT ring id=%d succ=%d pred=%d" (fun a b c -> (a, b, c)) with
      | Some r -> ring := r :: !ring
      | None -> (
          match scan s "REPORT lookup key=%d owner=%d hops=%d" (fun k o h -> (k, Some (o, h))) with
          | Some l -> lookups := l :: !lookups
          | None -> (
              match scan s "REPORT lookup key=%d failed" (fun k -> (k, None)) with
              | Some l -> lookups := l :: !lookups
              | None -> (
                  match scan s "REPORT msgs calls=%d" (fun c -> c) with
                  | Some c -> calls := Some c
                  | None -> (
                      match scan s "REPORT done lookups=%d ok=%d" (fun l k -> (l, k)) with
                      | Some d -> done_ok := Some d
                      | None -> ())))))
    reports;
  {
    ring = List.sort compare !ring;
    lookups = List.rev !lookups;
    calls = !calls;
    done_ok = !done_ok;
  }

(* The simulated twin: same app main, same membership shape (n instances
   at position-deterministic addresses), same parameters — under the
   virtual engine and a synthetic wide-area testbed. Returns the REPORT
   stream in emission order. *)
let run_sim ?(seed = 7) ?(until = 600.0) ~n ~app ~params () =
  match Registry.find app with
  | None -> Error (Printf.sprintf "unknown application %S" app)
  | Some main ->
      let eng = Engine.create ~seed () in
      let tb = Testbed.synthetic ~hosts:n (Engine.rng eng) in
      let net = Net.create eng tb in
      let addrs = List.init n (fun i -> Addr.make i 9000) in
      let reports = ref [] in
      let sink =
        Log.Forward
          (fun ~time:_ ~level:_ ~node text ->
            if is_report text then reports := (node, text) :: !reports)
      in
      List.iteri
        (fun i me ->
          let env = Env.create net ~me ~position:(i + 1) ~nodes:addrs in
          Log.set_sink env.Env.log sink;
          main ~params env)
        addrs;
      ignore (Engine.run ~until eng);
      (match Engine.crashed eng with
      | [] -> Ok (List.rev !reports)
      | (p, e) :: _ ->
          Error
            (Printf.sprintf "simulated twin crashed: %s: %s" (Engine.proc_name p)
               (Printexc.to_string e)))

let ring_to_string ring =
  String.concat " " (List.map (fun (i, s, p) -> Printf.sprintf "(%d %d %d)" i s p) ring)

let diff ?(tolerance = 0.5) ~sim ~live () =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  if sim.ring <> live.ring then
    add "ring structure differs: sim=[%s] live=[%s]" (ring_to_string sim.ring)
      (ring_to_string live.ring);
  let ns = List.length sim.lookups and nl = List.length live.lookups in
  if ns <> nl then add "lookup count differs: sim=%d live=%d" ns nl
  else
    List.iter2
      (fun (ks, rs) (kl, rl) ->
        if ks <> kl then add "lookup sequence differs: sim key=%d live key=%d" ks kl
        else
          match (rs, rl) with
          | Some (os, hs), Some (ol, hl) ->
              if os <> ol then add "lookup key=%d owner differs: sim=%d live=%d" ks os ol;
              if hs <> hl then add "lookup key=%d hops differ: sim=%d live=%d" ks hs hl
          | None, None -> add "lookup key=%d failed under both backends" ks
          | None, Some _ -> add "lookup key=%d failed in simulation only" ks
          | Some _, None -> add "lookup key=%d failed live only" ks)
      sim.lookups live.lookups;
  (match (sim.calls, live.calls) with
  | Some cs, Some cl ->
      let hi = float_of_int (max cs cl) and lo = float_of_int (min cs cl) in
      if hi > 0.0 && (hi -. lo) /. hi > tolerance then
        add "rpc call counts diverge beyond %.0f%%: sim=%d live=%d" (tolerance *. 100.0) cs cl
  | None, _ -> add "simulated run emitted no message-count report"
  | _, None -> add "live run emitted no message-count report");
  (match (sim.done_ok, live.done_ok) with
  | Some (t1, k1), Some (t2, k2) ->
      if t1 <> t2 then add "lookup totals differ: sim=%d live=%d" t1 t2;
      if k1 < t1 then add "simulation resolved only %d/%d lookups" k1 t1;
      if k2 < t2 then add "live run resolved only %d/%d lookups" k2 t2
  | None, _ -> add "simulated run did not complete (no done report)"
  | _, None -> add "live run did not complete (no done report)");
  List.rev !out
