module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Chord = Splay_apps.Chord
module Node = Splay_apps.Node

(* Built-in deployable applications.

   Every observation an invariant check needs is emitted as a structured
   "REPORT ..." log line through the instance's ordinary logger: in
   simulation a [Log.Forward] sink collects them in-process, live they
   stream to the controller as [Logline] frames — the same app code
   produces the same evidence in both worlds, which is what lets
   [Contract.diff] compare the two runs (ring successorship, lookup
   answers, message counts). *)

(* Warm-started Chord ring over the deployment membership. Instance ids
   are position-deterministic ([slot * 2^m / n]), identical under both
   backends, so ring structure and lookup answers are exactly
   comparable. The lowest-position instance drives [lookups] seeded
   lookups after a readiness barrier (every peer answers a ping — live
   daemons start within milliseconds of each other, but not atomically). *)
let chord ~params env =
  let m = Registry.param_int params "m" 16 in
  let lookups = Registry.param_int params "lookups" 0 in
  let seed = Registry.param_int params "seed" 42 in
  let nodes = env.Env.nodes in
  let n = List.length nodes in
  if n = 0 then Log.error env.Env.log "chord: empty membership"
  else begin
    let md = 1 lsl m in
    let spacing = max 1 (md / n) in
    let arr = Array.of_list nodes in
    let ring = Array.mapi (fun i a -> Node.make ~id:(i * spacing) ~addr:a) arr in
    let index = ref (-1) in
    Array.iteri (fun i a -> if Addr.equal a env.Env.me then index := i) arr;
    if !index < 0 then Log.error env.Env.log "chord: %s not in membership" (Addr.to_string env.Env.me)
    else begin
      let index = !index in
      let self = ref None in
      Chord.assemble
        ~config:{ Chord.default_config with Chord.m }
        ~register:(fun c -> self := Some c)
        ~ring ~index env;
      match !self with
      | None -> Log.error env.Env.log "chord: assemble did not register"
      | Some c ->
          let sid = Chord.id c in
          let succ = match Chord.successor c with Some s -> s.Node.id | None -> sid in
          let pred = match Chord.predecessor c with Some p -> p.Node.id | None -> sid in
          Log.info env.Env.log "REPORT ring id=%d succ=%d pred=%d" sid succ pred;
          if index = 0 && lookups > 0 then
            ignore
              (Env.thread env ~name:"chord-driver" (fun () ->
                   Array.iter
                     (fun a ->
                       if not (Addr.equal a env.Env.me) then begin
                         let tries = ref 0 in
                         while (not (Rpc.ping env ~timeout:0.5 a)) && !tries < 100 do
                           incr tries;
                           Engine.sleep 0.1
                         done
                       end)
                     arr;
                   let rng = Rng.create seed in
                   let ok = ref 0 in
                   for _ = 1 to lookups do
                     let key = Rng.int rng md in
                     match Chord.lookup c key with
                     | Some (owner, hops) ->
                         incr ok;
                         Log.info env.Env.log "REPORT lookup key=%d owner=%d hops=%d" key
                           owner.Node.id hops
                     | None -> Log.warn env.Env.log "REPORT lookup key=%d failed" key
                   done;
                   Log.info env.Env.log "REPORT msgs calls=%d" (Rpc.calls_issued env);
                   Log.info env.Env.log "REPORT done lookups=%d ok=%d" lookups !ok))
    end
  end

let registered =
  lazy
    (Registry.register "chord" ~doc:"warm-started Chord ring; driver runs seeded lookups" chord)

let init () = Lazy.force registered
