module Wire = Splay_ctl.Wire

(* One framed, non-blocking TCP connection registered in a [Loop]. Reads
   feed the streaming Wire decoder and deliver complete messages to
   [on_msg]; writes queue and drain as the socket allows, with the
   loop's want-write flag toggled to match. A protocol error or a peer
   close tears the connection down exactly once, through [on_close]. *)

type t = {
  loop : Loop.t;
  fd : Unix.file_descr;
  dec : Wire.decoder;
  outq : Buffer.t;
  mutable opos : int; (* consumed prefix of [outq] *)
  mutable watch : Loop.watch option;
  mutable closed : bool;
  mutable on_msg : t -> Wire.msg -> unit;
  mutable on_close : t -> string -> unit;
}

let closed t = t.closed
let fd t = t.fd
let pending t = Buffer.length t.outq - t.opos

let close t reason =
  if not t.closed then begin
    t.closed <- true;
    (match t.watch with
    | Some w -> Loop.unwatch t.loop w
    | None -> ());
    t.watch <- None;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.on_close t reason
  end

let set_want_write t yes =
  match t.watch with Some w -> Loop.want_write w yes | None -> ()

let flush_some t =
  if (not t.closed) && pending t > 0 then begin
    let s = Buffer.contents t.outq in
    let len = String.length s - t.opos in
    match Unix.write_substring t.fd s t.opos len with
    | n ->
        t.opos <- t.opos + n;
        if t.opos >= String.length s then begin
          Buffer.clear t.outq;
          t.opos <- 0;
          set_want_write t false
        end
        else set_want_write t true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> set_want_write t true
    | exception Unix.Unix_error (e, _, _) -> close t (Unix.error_message e)
  end
  else set_want_write t false

let send t msg =
  if not t.closed then begin
    Buffer.add_string t.outq (Wire.frame_msg msg);
    flush_some t
  end

let read_buf = Bytes.create 65536

let attach ?dec loop fd ~on_msg ~on_close =
  Unix.set_nonblock fd;
  let t =
    {
      loop;
      fd;
      dec = (match dec with Some d -> d | None -> Wire.decoder ());
      outq = Buffer.create 4096;
      opos = 0;
      watch = None;
      closed = false;
      on_msg;
      on_close;
    }
  in
  let rec drain () =
    if not t.closed then
      match Wire.next_msg t.dec with
      | Some m ->
          t.on_msg t m;
          drain ()
      | None -> ()
      | exception Codec.Parse_error e -> close t ("protocol error: " ^ e)
  in
  let handle_read () =
    if not t.closed then
      match Unix.read fd read_buf 0 (Bytes.length read_buf) with
      | 0 -> close t "closed by peer"
      | n ->
          Wire.feed t.dec read_buf 0 n;
          drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (e, _, _) -> close t (Unix.error_message e)
  in
  t.watch <- Some (Loop.watch loop fd ~on_read:handle_read ~on_write:(fun () -> flush_some t));
  (* Messages may already be complete in a handed-over decoder (bytes read
     during a blocking handshake). *)
  drain ();
  t

(* Drain the out buffer synchronously — the shutdown path's last writes
   (trace chunks, Bye) must reach the controller before exit. *)
let flush_blocking ?(timeout = 5.0) t =
  let d = Unix.gettimeofday () +. timeout in
  while (not t.closed) && pending t > 0 && Unix.gettimeofday () < d do
    match Unix.select [] [ t.fd ] [] 0.1 with
    | _, [ _ ], _ -> flush_some t
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
