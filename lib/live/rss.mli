(** Resident-set-size self-polling for the live sandbox. *)

val sample : unit -> int
(** Current process RSS in bytes (from [/proc/self/statm]; falls back to
    the OCaml major-heap size where /proc is unavailable). *)
