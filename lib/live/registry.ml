(* Deployable applications, by name. A main takes the instance
   environment plus string parameters from the deployment descriptor /
   CLI — the SAME main runs under the simulated engine and under the live
   loop, which is the paper's central claim and what the sim-vs-live
   contract test exercises. *)

type main = params:(string * string) list -> Env.t -> unit

let apps : (string, string * main) Hashtbl.t = Hashtbl.create 8

let register name ~doc main = Hashtbl.replace apps name (doc, main)

let find name = Option.map snd (Hashtbl.find_opt apps name)

let names () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) apps [])

let doc name = Option.map fst (Hashtbl.find_opt apps name)

let param params key default =
  match List.assoc_opt key params with Some v -> v | None -> default

let param_int params key default =
  match List.assoc_opt key params with
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
  | None -> default
