(** The live controller — the paper's [splayctl] over real processes.

    {!run} forks real [splayd] daemons, bootstraps them (Hello/Peers with
    a shared wall-clock epoch), performs the two-phase deploy (Deploy
    all + ack, Start all + ack — the live mirror of the simulated
    controller's REGISTER/LIST/START conversation), collects heartbeats,
    streamed log records and shutdown-time trace/metrics chunks, then
    shuts the deployment down and reaps every child. SIGINT/SIGTERM
    handlers and an [at_exit] hook kill surviving daemons on abnormal
    exits; the daemons' own orphan watch covers SIGKILL. *)

type cfg = {
  c_app : string;  (** registry name of the application *)
  c_params : (string * string) list;
  c_daemons : int;  (** splayd processes to fork *)
  c_desc : Splay_ctl.Descriptor.t;
      (** job descriptor: instance count ([nb_splayd]), bootstrap set,
          sandbox limits *)
  c_out_dir : string;  (** run directory: daemon logs, daemons.json, artifacts *)
  c_splayd : string;  (** path to the splayd executable *)
  c_trace : bool;
  c_metrics : bool;
  c_duration : float;  (** > 0: run this long; 0: until the app reports done *)
  c_deadline : float;  (** hard wall-clock budget for the whole run *)
  c_log_level : Log.level;
  c_seed : int;
}

val default_cfg : cfg

type select_report = {
  sel_need : int;  (** instances requested ([nb_splayd]) *)
  sel_alive : int;  (** daemons that completed the bootstrap *)
  sel_dead : int;
  sel_matched : int list;  (** hosts selected to run instances *)
}

type outcome = {
  r_ok : bool;
  r_failures : string list;  (** what went wrong, in occurrence order *)
  r_reports : (string * string) list;
      (** [(node, text)] contract REPORT lines, arrival order — feed to
          {!Contract.summary_of_reports} *)
  r_select : select_report;
  r_log_records : int;
  r_trace_file : string option;  (** merged live trace, [splay trace]-ready *)
  r_metrics_file : string option;  (** merged metrics dump, [splay top]-ready *)
  r_out_dir : string;
}

val run : cfg -> outcome
(** Execute one live deployment end to end. Always returns with every
    forked child reaped (kill-escalated if necessary). *)

val status : string -> (int * bool) * (int * int * bool * string) list
(** [status dir] reads [dir/daemons.json]:
    [((controller_pid, alive), [(host, pid, alive, log_path); ...])]. *)

val kill : string -> int
(** [kill dir]: SIGTERM the recorded controller and daemons, escalate to
    SIGKILL after a grace period; returns how many needed the
    escalation. *)
