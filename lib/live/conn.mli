(** One framed, non-blocking TCP connection driven by a {!Loop}.

    Inbound bytes stream through a {!Splay_ctl.Wire.decoder}; every
    complete control message is delivered to [on_msg]. Outbound messages
    queue and drain as the socket allows. A peer close, I/O error or
    protocol (framing) error closes the connection exactly once and
    reports the reason to [on_close]. *)

type t

val attach :
  ?dec:Splay_ctl.Wire.decoder ->
  Loop.t ->
  Unix.file_descr ->
  on_msg:(t -> Splay_ctl.Wire.msg -> unit) ->
  on_close:(t -> string -> unit) ->
  t
(** Take ownership of [fd] (switched to non-blocking, registered in the
    loop). [?dec] hands over a decoder that already holds bytes read
    during a blocking handshake; any complete messages in it are
    delivered immediately. *)

val send : t -> Splay_ctl.Wire.msg -> unit
(** Queue one message and write as much as the socket accepts. No-op on a
    closed connection. *)

val close : t -> string -> unit
(** Idempotent teardown: unwatch, close the fd, fire [on_close]. *)

val closed : t -> bool
val fd : t -> Unix.file_descr

val pending : t -> int
(** Bytes queued but not yet written. *)

val flush_blocking : ?timeout:float -> t -> unit
(** Synchronously drain the out queue (shutdown path: final trace chunks
    and [Bye] must reach the controller before [exit]). *)
