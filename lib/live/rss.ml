(* Real process memory, self-polled. /proc/self/statm column 2 is the
   resident set in pages; the portable fallback reports the OCaml major
   heap, which under-counts but keeps the check meaningful off Linux. *)

let page_size =
  match Sys.getenv_opt "SPLAY_PAGE_SIZE" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4096)
  | None -> 4096

let sample () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ ->
      let s = Gc.quick_stat () in
      s.Gc.heap_words * (Sys.word_size / 8)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match String.split_on_char ' ' (input_line ic) with
          | _ :: resident :: _ -> (
              match int_of_string_opt resident with Some r -> r * page_size | None -> 0)
          | _ -> 0)
