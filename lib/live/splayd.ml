module Engine = Splay_sim.Engine
module Obs = Splay_obs.Obs
module Wire = Splay_ctl.Wire

(* The real splayd: one OS process hosting application instances over the
   live loop. It connects to the controller, announces itself (Hello),
   learns the shared epoch and the peer table (Peers), then serves the
   job verbs. Application instances run on the unmodified runtime
   ([Env] / [Rpc] / [Sb_socket]); only the cross-host leg of a send
   changes — [Net.set_remote] tunnels it through a framed TCP connection
   to the destination daemon, where it re-enters via
   [Net.deliver_remote].

   Hygiene: the daemon knows the controller's PID and self-terminates
   when orphaned (getppid poll), when the control connection drops, or on
   a Shutdown verb — flushing its trace/metrics dump to the controller as
   Chunk frames first in the graceful case. *)

type config = {
  connect : string;  (** controller address, "host:port" *)
  host : int;
  parent : int;  (** controller PID; 0 disables the orphan watch *)
  seed : int;
  trace : bool;
  metrics : bool;
}

(* Per-daemon span/trace id namespace: host * stride. Keeps ids of the
   merged live trace collision-free across processes. *)
let ids_stride = 10_000_000

type inst = {
  i_job : int;
  i_port : int;
  i_name : string;
  i_env : Env.t;
  i_main : Registry.main;
  i_params : (string * string) list;
  mutable i_started : bool;
}

type t = {
  cfg : config;
  loop : Loop.t;
  mutable ctl : Conn.t option;
  peers : (int, int) Hashtbl.t;  (* host -> data port *)
  peer_conns : (int, Conn.t) Hashtbl.t;
  insts : (int * int, inst) Hashtbl.t;  (* (job, port) *)
  mutable shutting_down : bool;
}

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let parse_hostport s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let h = String.sub s 0 i and p = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt p with
      | Some p -> (h, p)
      | None -> invalid_arg ("bad address " ^ s))
  | None -> invalid_arg ("bad address " ^ s)

let connect_tcp host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let ip = try Unix.inet_addr_of_string host with Failure _ -> Unix.inet_addr_loopback in
  (try Unix.connect fd (Unix.ADDR_INET (ip, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.set_nonblock fd;
  fd

let hard_exit code =
  (* No graceful flushing: used for orphaning and lost controller, where
     the collector side is already gone. *)
  Stdlib.exit code

(* {1 Inter-daemon data plane} *)

let handle_data_msg t _conn msg =
  match msg with
  | Wire.App { src; dst; size; payload } when dst.Addr.host = t.cfg.host -> (
      match Rpc.payload_of_value payload with
      | p -> Net.deliver_remote (Loop.net t.loop) ~size ~src ~dst ~up_wait:0.0 ~ctx:Obs.null_ctx p
      | exception Codec.Parse_error _ -> ())
  | _ -> () (* misrouted or non-data message: drop *)

let peer_conn t dsthost =
  match Hashtbl.find_opt t.peer_conns dsthost with
  | Some c when not (Conn.closed c) -> Some c
  | _ -> (
      match Hashtbl.find_opt t.peers dsthost with
      | None -> None
      | Some port -> (
          match connect_tcp "127.0.0.1" port with
          | exception Unix.Unix_error _ -> None (* peer dead: drop, like a dead host *)
          | fd ->
              let c =
                Conn.attach t.loop fd ~on_msg:(handle_data_msg t)
                  ~on_close:(fun _ _ -> Hashtbl.remove t.peer_conns dsthost)
              in
              Hashtbl.replace t.peer_conns dsthost c;
              Some c))

let route t ~src ~dst ~size ~arrival:_ ~up_wait:_ ~ctx:_ payload =
  match Rpc.payload_to_value payload with
  | None -> () (* payload kind with no wire form *)
  | Some pv -> (
      match peer_conn t dst.Addr.host with
      | None -> ()
      | Some c -> Conn.send c (Wire.App { src; dst; size; payload = pv }))

(* {1 Control verbs} *)

let ack conn re ok detail = Conn.send conn (Wire.Ack { re; ok; detail })

let handle_deploy t conn ~job ~app ~name ~port ~position ~nodes ~limits ~log_level ~params =
  let key = (job, port) in
  if Hashtbl.mem t.insts key then ack conn "deploy" false "instance already deployed"
  else
    match Registry.find app with
    | None -> ack conn "deploy" false (Printf.sprintf "unknown application %S" app)
    | Some main ->
        let env =
          Env.create (Loop.net t.loop) ~me:(Addr.make t.cfg.host port) ~position ~nodes ~limits
            ~log_level
        in
        (* Stream every log record to the controller; the sandbox's own
           kill message travels the same way, so a resource death is
           visible in the collected logs exactly as in simulation. *)
        Log.set_sink env.Env.log
          (Log.Forward
             (fun ~time ~level ~node text ->
               match t.ctl with
               | Some c -> Conn.send c (Wire.Logline { time; node; level; text })
               | None -> ()));
        (* Real-resource leg of the sandbox: poll the process RSS and
           enforce the memory cap with the same fatal path as simulated
           accounting. The Violation raise is swallowed — on_kill has
           already stopped the instance, which kills this monitor too. *)
        if limits.Sandbox.max_memory < max_int then
          ignore
            (Env.periodic env 0.25 (fun () ->
                 try Sandbox.check_rss env.Env.sandbox (Rss.sample ())
                 with Sandbox.Violation _ -> ()));
        Hashtbl.replace t.insts key
          { i_job = job; i_port = port; i_name = name; i_env = env; i_main = main;
            i_params = params; i_started = false };
        ack conn "deploy" true name

let handle_start t conn ~job ~port =
  match Hashtbl.find_opt t.insts (job, port) with
  | None -> ack conn "start" false "no such instance"
  | Some i when i.i_started -> ack conn "start" false "already started"
  | Some i ->
      i.i_started <- true;
      ignore
        (Env.thread i.i_env ~name:(Printf.sprintf "%s@%d" i.i_name t.cfg.host) (fun () ->
             i.i_main ~params:i.i_params i.i_env));
      ack conn "start" true i.i_name

let handle_stop t conn ~job ~port =
  match Hashtbl.find_opt t.insts (job, port) with
  | None -> ack conn "stop" false "no such instance"
  | Some i ->
      Env.stop i.i_env;
      ack conn "stop" true i.i_name

let begin_shutdown t =
  if not t.shutting_down then begin
    t.shutting_down <- true;
    Hashtbl.iter (fun _ i -> Env.stop i.i_env) t.insts
  end

let handle_ctl_msg t conn msg =
  match msg with
  | Wire.Deploy { job; app; name; port; position; nodes; limits; log_level; params } ->
      handle_deploy t conn ~job ~app ~name ~port ~position ~nodes ~limits ~log_level ~params
  | Wire.Start { job; port } -> handle_start t conn ~job ~port
  | Wire.Stop { job; port } -> handle_stop t conn ~job ~port
  | Wire.Shutdown -> begin_shutdown t
  | Wire.App _ -> handle_data_msg t conn msg
  | _ -> ()

(* {1 Telemetry} *)

let heartbeat t =
  match t.ctl with
  | None -> ()
  | Some c ->
      let mem = ref 0 and sockets = ref 0 and fs = ref 0 and fibers = ref 0 and inflight = ref 0 in
      Hashtbl.iter
        (fun _ i ->
          let sb = i.i_env.Env.sandbox in
          mem := !mem + Sandbox.memory_used sb;
          sockets := !sockets + Sandbox.sockets_open sb;
          fs := !fs + Sandbox.fs_used sb;
          fibers := !fibers + Env.live_procs i.i_env;
          inflight := !inflight + Telemetry.inflight_rpcs i.i_env)
        t.insts;
      Conn.send c
        (Wire.Heartbeat
           {
             host = t.cfg.host;
             rss = Rss.sample ();
             mem = !mem;
             sockets = !sockets;
             fs = !fs;
             fibers = !fibers;
             inflight = !inflight;
           })

let send_chunks t ~kind data =
  match t.ctl with
  | None -> ()
  | Some c ->
      let n = String.length data in
      if n = 0 then Conn.send c (Wire.Chunk { host = t.cfg.host; kind; data = ""; final = true })
      else begin
        let chunk = 200_000 in
        let off = ref 0 in
        while !off < n do
          let len = min chunk (n - !off) in
          let final = !off + len >= n in
          Conn.send c
            (Wire.Chunk { host = t.cfg.host; kind; data = String.sub data !off len; final });
          off := !off + len
        done
      end

(* {1 Main} *)

let run cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if cfg.trace || cfg.metrics then begin
    Obs.enabled := cfg.trace;
    Obs.metrics_enabled := cfg.metrics;
    ignore (Obs.state_install (Obs.state_create ~ids_base:(cfg.host * ids_stride) ()))
  end;
  (* Data listener: where peer daemons connect to deliver app traffic. *)
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 128;
  let data_port =
    match Unix.getsockname lfd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  (* Control connection; handshake runs blocking, before the loop exists. *)
  let chost, cport = parse_hostport cfg.connect in
  let cfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect cfd (Unix.ADDR_INET (Unix.inet_addr_of_string chost, cport));
  write_all cfd (Wire.frame_msg (Wire.Hello { host = cfg.host; pid = Unix.getpid (); data_port }));
  let dec = Wire.decoder () in
  let buf = Bytes.create 4096 in
  let rec wait_peers () =
    match Wire.next_msg dec with
    | Some (Wire.Peers { epoch; peers }) -> (epoch, peers)
    | Some _ -> wait_peers ()
    | None -> (
        match Unix.read cfd buf 0 (Bytes.length buf) with
        | 0 -> failwith "controller closed during handshake"
        | n ->
            Wire.feed dec buf 0 n;
            wait_peers ())
  in
  let epoch, peers = wait_peers () in
  let hosts = 1 + List.fold_left (fun m (h, _) -> max m h) cfg.host peers in
  let loop = Loop.create ~seed:(cfg.seed + cfg.host) ~hosts ~epoch () in
  let t =
    {
      cfg;
      loop;
      ctl = None;
      peers = Hashtbl.create 32;
      peer_conns = Hashtbl.create 32;
      insts = Hashtbl.create 8;
      shutting_down = false;
    }
  in
  List.iter (fun (h, p) -> if h <> cfg.host then Hashtbl.replace t.peers h p) peers;
  Net.set_remote (Loop.net loop) ~local:(fun h -> h = cfg.host) ~route:(route t);
  let ctl =
    Conn.attach ~dec loop cfd ~on_msg:(handle_ctl_msg t) ~on_close:(fun _ _ ->
        (* Controller gone: nothing left to report to. *)
        if not t.shutting_down then hard_exit 1)
  in
  t.ctl <- Some ctl;
  ignore
    (Loop.watch loop lfd
       ~on_read:(fun () ->
         match Unix.accept lfd with
         | fd, _ ->
             Unix.set_nonblock fd;
             ignore (Conn.attach loop fd ~on_msg:(handle_data_msg t) ~on_close:(fun _ _ -> ()))
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
       ~on_write:ignore);
  let eng = Loop.engine loop in
  ignore
    (Engine.spawn ~name:"heartbeat" eng (fun () ->
         while not t.shutting_down do
           Engine.sleep 0.5;
           heartbeat t
         done));
  if cfg.parent > 0 then
    ignore
      (Engine.spawn ~name:"orphan-watch" eng (fun () ->
           while true do
             Engine.sleep 0.25;
             if Unix.getppid () <> cfg.parent then hard_exit 1
           done));
  (match Loop.run loop ~until:(fun () -> t.shutting_down) with
  | `Done | `Stopped | `Deadline -> ());
  (* Let the Env.stop kill events scheduled by the shutdown verb fire. *)
  ignore (Engine.run ~until:(Loop.elapsed loop +. 0.001) eng);
  (* Graceful exit: stream the observability dump, say goodbye, drain. *)
  if cfg.trace then send_chunks t ~kind:"trace" (Obs.trace_jsonl ());
  if cfg.metrics then send_chunks t ~kind:"metrics" (Obs.metrics_plane_jsonl ());
  (match t.ctl with
  | Some c ->
      Conn.send c (Wire.Bye { host = cfg.host });
      Conn.flush_blocking c
  | None -> ());
  0
