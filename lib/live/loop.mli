(** Real-time driver for the simulation engine — the live backend's I/O
    seam.

    The unmodified effects-based {!Splay_sim.Engine} is driven against the
    wall clock: each iteration advances virtual time to wall elapsed time
    since a shared [epoch] (firing due timers, RPC timeouts and periodic
    processes), then parks in [select] on the watched sockets until the
    next virtual event falls due or I/O arrives. Application code calling
    [sleep]/[suspend]/RPCs therefore gets real-time semantics with zero
    changes. Local network traffic flows through a zero-latency in-process
    testbed; remote traffic leaves through [Net.set_remote] routes
    installed by {!Splayd}. *)

module Engine = Splay_sim.Engine

type t

type watch
(** Registration of one fd in the loop's [select] set. *)

val create : ?seed:int -> ?hosts:int -> ?epoch:float -> unit -> t
(** Fresh loop: engine, zero-latency synthetic testbed ([hosts] slots) and
    net. [epoch] is the wall-clock origin of virtual time (defaults to
    now); a controller shares one epoch across all daemons so their
    virtual clocks — and the timestamps in their merged traces — align. *)

val engine : t -> Engine.t
val net : t -> Net.t
val epoch : t -> float

val elapsed : t -> float
(** Wall seconds since [epoch] — the loop's target virtual time. *)

val watch : t -> Unix.file_descr -> on_read:(unit -> unit) -> on_write:(unit -> unit) -> watch
(** Add [fd] to the select set. [on_read] fires on readability;
    [on_write] only while enabled via {!want_write}. *)

val unwatch : t -> watch -> unit
val want_write : watch -> bool -> unit

val catch_up : t -> unit
(** Advance the virtual clock to wall elapsed, firing everything due. *)

val stop : t -> unit
(** Make {!run} return [`Stopped] at the next iteration. *)

val run :
  ?deadline:float ->
  ?max_idle:float ->
  t ->
  until:(unit -> bool) ->
  [ `Done | `Deadline | `Stopped ]
(** Drive engine and sockets until [until ()] holds ([`Done]), the
    absolute wall-clock [deadline] passes ([`Deadline]), or {!stop} is
    called. [max_idle] (default 50 ms) bounds each select wait so
    condition changes are noticed promptly. *)
