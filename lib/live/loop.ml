module Engine = Splay_sim.Engine

(* The live backend's answer to the ISSUE's "I/O backend seam": rather
   than reimplementing Sleep/Suspend over OS primitives, the unmodified
   effect-handler engine is *driven by wall time*. Each iteration advances
   the virtual clock to the wall-clock elapsed-since-epoch (firing every
   due event — timers, RPC timeouts, periodic processes), then parks in
   [Unix.select] until either the next virtual event falls due or a
   watched socket becomes ready. Virtual time therefore tracks real time
   to select's granularity, and every blocking-looking operation the
   application uses ([sleep], [suspend], RPCs) acquires real-time
   semantics with zero changes to application or engine code.

   The network side of the seam reuses [Net.set_remote]: an in-process
   zero-latency testbed delivers local traffic, and any send whose
   destination host is not this process is routed out through a real TCP
   connection (see [Splayd]); inbound frames re-enter via
   [Net.deliver_remote]. *)

type watch = {
  w_fd : Unix.file_descr;
  mutable w_want_write : bool;
  w_on_read : unit -> unit;
  w_on_write : unit -> unit;
  mutable w_dead : bool;
}

type t = {
  eng : Engine.t;
  net : Net.t;
  epoch : float;
  mutable watches : watch list;
  mutable stopped : bool;
}

let create ?(seed = 42) ?(hosts = 64) ?epoch () =
  let eng = Engine.create ~seed () in
  (* Zero-latency, infinite-bandwidth in-process testbed: local delivery
     costs no virtual time, so real sockets and real clocks are the only
     sources of delay a live run observes. *)
  let latency = Latency.synthetic ~dist:(Latency.Constant 0.0) ~intra_host:0.0 ~seed:0 () in
  let tb =
    Testbed.synthetic ~latency ~bw:infinity ~proc_cost:0.0 ~hosts (Engine.rng eng)
  in
  let net = Net.create eng tb in
  let epoch = match epoch with Some e -> e | None -> Unix.gettimeofday () in
  { eng; net; epoch; watches = []; stopped = false }

let engine t = t.eng
let net t = t.net
let epoch t = t.epoch
let elapsed t = Unix.gettimeofday () -. t.epoch
let stop t = t.stopped <- true

let watch t fd ~on_read ~on_write =
  let w = { w_fd = fd; w_want_write = false; w_on_read = on_read; w_on_write = on_write; w_dead = false } in
  t.watches <- w :: t.watches;
  w

let unwatch t w =
  w.w_dead <- true;
  t.watches <- List.filter (fun x -> not (x == w)) t.watches

let want_write w yes = w.w_want_write <- yes

(* Advance virtual time to wall elapsed, firing everything due. The clock
   never moves backwards even if gettimeofday steps. *)
let catch_up t =
  let target = Float.max (Engine.now t.eng) (elapsed t) in
  ignore (Engine.run ~until:target t.eng)

let run ?deadline ?(max_idle = 0.05) t ~until =
  let rec go () =
    if t.stopped then `Stopped
    else if until () then `Done
    else
      match deadline with
      | Some d when Unix.gettimeofday () >= d -> `Deadline
      | _ ->
          catch_up t;
          if t.stopped then `Stopped
          else if until () then `Done
          else begin
            let next = Engine.next_at t.eng in
            let now = elapsed t in
            let timeout =
              if next = infinity then max_idle
              else Float.max 0.0 (Float.min max_idle (next -. now))
            in
            let timeout =
              match deadline with
              | Some d -> Float.max 0.0 (Float.min timeout (d -. Unix.gettimeofday ()))
              | None -> timeout
            in
            let ws = t.watches in
            let rds = List.map (fun w -> w.w_fd) ws in
            let wrs = List.filter_map (fun w -> if w.w_want_write then Some w.w_fd else None) ws in
            (match Unix.select rds wrs [] timeout with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | r, w, _ ->
                (* A callback may unwatch (and close) other fds: consult
                   the per-watch dead flag, not just the snapshot. *)
                List.iter
                  (fun fd ->
                    match List.find_opt (fun x -> x.w_fd = fd && not x.w_dead) ws with
                    | Some x -> x.w_on_read ()
                    | None -> ())
                  r;
                List.iter
                  (fun fd ->
                    match List.find_opt (fun x -> x.w_fd = fd && not x.w_dead) ws with
                    | Some x when x.w_want_write -> x.w_on_write ()
                    | _ -> ())
                  w);
            go ()
          end
  in
  go ()
