(** Sim-vs-live contract: run the same deployment under both execution
    backends and diff the structural invariants.

    Applications emit their evidence as structured ["REPORT ..."] log
    lines; both backends collect them (in-process [Log.Forward] sink in
    simulation, streamed [Logline] frames live). This module parses a
    report stream into a {!summary} and diffs two summaries: ring
    successorship and per-key lookup answers must match exactly, message
    counts within a tolerance (a live run may retry where a simulated
    first attempt always lands). *)

type summary = {
  ring : (int * int * int) list;  (** (id, successor, predecessor), sorted by id *)
  lookups : (int * (int * int) option) list;
      (** key -> [Some (owner, hops)], or [None] for a failed lookup, in
          issue order *)
  calls : int option;  (** driver's outgoing RPC count *)
  done_ok : (int * int) option;  (** (lookups issued, lookups resolved) *)
}

val is_report : string -> bool
(** Does this log line carry contract evidence? *)

val summary_of_reports : (string * string) list -> summary
(** Parse an ordered [(node, text)] report stream. Unrecognized lines are
    ignored. *)

val run_sim :
  ?seed:int ->
  ?until:float ->
  n:int ->
  app:string ->
  params:(string * string) list ->
  unit ->
  ((string * string) list, string) result
(** Run the simulated twin: [n] instances of registry app [app] with
    [params] over a synthetic testbed, up to [until] virtual seconds.
    [Ok reports] in emission order, or [Error] naming an unknown app or a
    crashed instance. *)

val diff : ?tolerance:float -> sim:summary -> live:summary -> unit -> string list
(** Structural invariant diff; each violation is one human-readable
    string, empty when the contract holds. [tolerance] (default 0.5)
    bounds the allowed relative divergence of message counts. *)
