(** Registry of deployable applications for the live backend.

    A registered main runs unchanged under both execution backends — the
    simulated engine and the live loop — parameterized only by its
    [Env.t] and string parameters. *)

type main = params:(string * string) list -> Env.t -> unit

val register : string -> doc:string -> main -> unit
val find : string -> main option
val names : unit -> string list
val doc : string -> string option

val param : (string * string) list -> string -> string -> string
val param_int : (string * string) list -> string -> int -> int
