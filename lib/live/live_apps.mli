(** Built-in deployable applications for the live backend.

    The same mains run under the simulated engine and the live loop; all
    invariant evidence is emitted as structured ["REPORT ..."] log lines
    (see {!Contract}). *)

val chord : Registry.main
(** Warm-started Chord ring over the deployment membership; the
    lowest-position instance drives [lookups] seeded lookups. Parameters:
    [m] (id bits, default 16), [lookups] (default 0), [seed]
    (default 42). *)

val init : unit -> unit
(** Register the built-in applications (idempotent). *)
