module Wire = Splay_ctl.Wire
module Descriptor = Splay_ctl.Descriptor
module Rng = Splay_sim.Rng

(* The live controller (the paper's splayctl): forks real splayd
   processes, runs the Hello/Peers bootstrap, performs the two-phase
   deploy (Deploy all, ack; Start all, ack — the live mirror of the sim
   controller's REGISTER/LIST/START conversation), then collects
   heartbeats, streamed log records and shutdown-time trace/metrics
   chunks until the run completes. Job accounting mirrors
   [Controller.select_report]: which daemons answered the bootstrap,
   which were selected to host instances, and why a deployment was
   rejected.

   Hygiene: children are reaped on every exit path — SIGINT/SIGTERM
   handlers and an [at_exit] hook SIGKILL any daemon still alive, and the
   daemons' own orphan watch covers the uncatchable SIGKILL case. *)

type cfg = {
  c_app : string;
  c_params : (string * string) list;
  c_daemons : int;
  c_desc : Descriptor.t;
  c_out_dir : string;
  c_splayd : string;
  c_trace : bool;
  c_metrics : bool;
  c_duration : float;  (* > 0: run this long; 0: until the app reports done *)
  c_deadline : float;  (* hard wall-clock budget for the entire run *)
  c_log_level : Log.level;
  c_seed : int;
}

let default_cfg =
  {
    c_app = "chord";
    c_params = [];
    c_daemons = 3;
    c_desc = { Descriptor.default with Descriptor.bootstrap = Descriptor.All; nb_splayd = 3 };
    c_out_dir = "_live";
    c_splayd = "splayd";
    c_trace = true;
    c_metrics = false;
    c_duration = 0.0;
    c_deadline = 120.0;
    c_log_level = Log.Info;
    c_seed = 42;
  }

type daemon = {
  d_host : int;
  d_pid : int;
  d_log : string;
  mutable d_conn : Conn.t option;
  mutable d_data_port : int;
  mutable d_last_hb : float;
  mutable d_rss : int;
  mutable d_fibers : int;
  mutable d_bye : bool;
  mutable d_status : Unix.process_status option;
}

type select_report = {
  sel_need : int;
  sel_alive : int;
  sel_dead : int;
  sel_matched : int list;  (* hosts selected to run instances *)
}

type outcome = {
  r_ok : bool;
  r_failures : string list;
  r_reports : (string * string) list;  (* (node, REPORT line), arrival order *)
  r_select : select_report;
  r_log_records : int;
  r_trace_file : string option;
  r_metrics_file : string option;
  r_out_dir : string;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let json_string s = Codec.encode (Codec.String s)

let state_file dir = Filename.concat dir "daemons.json"

let write_state dir daemons =
  let v =
    Codec.Assoc
      [
        ("controller_pid", Codec.Int (Unix.getpid ()));
        ( "daemons",
          Codec.List
            (List.map
               (fun d ->
                 Codec.Assoc
                   [
                     ("host", Codec.Int d.d_host);
                     ("pid", Codec.Int d.d_pid);
                     ("log", Codec.String d.d_log);
                   ])
               daemons) );
      ]
  in
  let oc = open_out (state_file dir) in
  output_string oc (Codec.encode v);
  output_char oc '\n';
  close_out oc

let kill_survivors daemons =
  List.iter
    (fun d ->
      if d.d_status = None then begin
        (try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error _ -> ());
        match Unix.waitpid [ Unix.WNOHANG ] d.d_pid with
        | _, st -> d.d_status <- Some st
        | exception Unix.Unix_error _ -> ()
      end)
    daemons

let reap daemons ~grace =
  let deadline = Unix.gettimeofday () +. grace in
  let poll d =
    if d.d_status = None then
      match Unix.waitpid [ Unix.WNOHANG ] d.d_pid with
      | 0, _ -> ()
      | _, st -> d.d_status <- Some st
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> d.d_status <- Some (Unix.WEXITED 0)
  in
  let pending () = List.exists (fun d -> d.d_status = None) daemons in
  List.iter poll daemons;
  while pending () && Unix.gettimeofday () < deadline do
    (try ignore (Unix.select [] [] [] 0.05) with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    List.iter poll daemons
  done;
  (* Escalate: anything still alive is beyond graceful shutdown. *)
  List.iter
    (fun d ->
      if d.d_status = None then begin
        (try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error _ -> ());
        match Unix.waitpid [] d.d_pid with
        | _, st -> d.d_status <- Some st
        | exception Unix.Unix_error _ -> d.d_status <- Some (Unix.WSIGNALED Sys.sigkill)
      end)
    daemons

let spawn_daemon cfg ~cport ~host =
  let log = Filename.concat cfg.c_out_dir (Printf.sprintf "daemon-%d.log" host) in
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let args =
    [
      cfg.c_splayd;
      "--connect";
      "127.0.0.1:" ^ string_of_int cport;
      "--host";
      string_of_int host;
      "--parent-pid";
      string_of_int (Unix.getpid ());
      "--seed";
      string_of_int (cfg.c_seed + host);
    ]
    @ (if cfg.c_trace then [ "--trace" ] else [])
    @ if cfg.c_metrics then [ "--metrics" ] else []
  in
  let pid = Unix.create_process cfg.c_splayd (Array.of_list args) Unix.stdin fd fd in
  Unix.close fd;
  {
    d_host = host;
    d_pid = pid;
    d_log = log;
    d_conn = None;
    d_data_port = 0;
    d_last_hb = 0.0;
    d_rss = 0;
    d_fibers = 0;
    d_bye = false;
    d_status = None;
  }

let bootstrap_nodes desc ~seed all =
  match desc.Descriptor.bootstrap with
  | Descriptor.All -> all
  | Descriptor.Head k -> List.filteri (fun i _ -> i < k) all
  | Descriptor.Random_subset k ->
      let arr = Array.of_list all in
      Rng.shuffle (Rng.create seed) arr;
      List.filteri (fun i _ -> i < k) (Array.to_list arr)

let run cfg =
  Live_apps.init ();
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  mkdir_p cfg.c_out_dir;
  (* Control listener the daemons dial back to. *)
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 128;
  let cport =
    match Unix.getsockname lfd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  let daemons = List.init cfg.c_daemons (fun h -> spawn_daemon cfg ~cport ~host:h) in
  write_state cfg.c_out_dir daemons;
  (* Reap on every exit path; the daemons' orphan watch covers SIGKILL. *)
  let fatal_signal code _ =
    kill_survivors daemons;
    Stdlib.exit code
  in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle (fatal_signal 130)) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fatal_signal 143)) in
  at_exit (fun () -> kill_survivors daemons);
  let loop = Loop.create ~hosts:1 () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let reports = ref [] in
  let log_records = ref [] in
  let n_logs = ref 0 in
  let done_seen = ref false in
  let acks_ok : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let chunks : (int * string, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let find_daemon h = List.find_opt (fun d -> d.d_host = h) daemons in
  let on_msg _conn msg =
    match msg with
    | Wire.Ack { re; ok; detail } ->
        if ok then Hashtbl.replace acks_ok re (1 + Option.value ~default:0 (Hashtbl.find_opt acks_ok re))
        else fail "%s rejected: %s" re detail
    | Wire.Heartbeat { host; rss; fibers; _ } -> (
        match find_daemon host with
        | Some d ->
            d.d_last_hb <- Unix.gettimeofday ();
            d.d_rss <- rss;
            d.d_fibers <- fibers
        | None -> ())
    | Wire.Logline { time; node; level; text } ->
        incr n_logs;
        log_records := (time, node, level, text) :: !log_records;
        if Contract.is_report text then begin
          reports := (node, text) :: !reports;
          if String.length text >= 11 && String.sub text 0 11 = "REPORT done" then
            done_seen := true
        end
    | Wire.Chunk { host; kind; data; final = _ } ->
        let key = (host, kind) in
        let buf =
          match Hashtbl.find_opt chunks key with
          | Some b -> b
          | None ->
              let b = Buffer.create 65536 in
              Hashtbl.replace chunks key b;
              b
        in
        Buffer.add_string buf data
    | Wire.Bye { host } -> (
        match find_daemon host with Some d -> d.d_bye <- true | None -> ())
    | _ -> ()
  in
  ignore
    (Loop.watch loop lfd
       ~on_read:(fun () ->
         match Unix.accept lfd with
         | fd, _ ->
             (* The first message on any control connection is Hello;
                bind the connection to its daemon then. *)
             ignore
               (Conn.attach loop fd
                 ~on_msg:(fun cc m ->
                   match m with
                   | Wire.Hello { host; pid; data_port } -> (
                       match find_daemon host with
                       | Some d when d.d_pid = pid ->
                           d.d_conn <- Some cc;
                           d.d_data_port <- data_port
                       | _ ->
                           fail "unexpected hello from host=%d pid=%d" host pid;
                           Conn.close cc "unexpected hello")
                   | m -> on_msg cc m)
                 ~on_close:(fun cc _reason ->
                   List.iter
                     (fun d -> match d.d_conn with Some c when c == cc -> d.d_conn <- None | _ -> ())
                     daemons))
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
       ~on_write:ignore);
  let t0 = Unix.gettimeofday () in
  let hard = t0 +. cfg.c_deadline in
  let phase name ~timeout cond =
    match
      Loop.run loop ~deadline:(Float.min hard (Unix.gettimeofday () +. timeout)) ~until:cond
    with
    | `Done -> true
    | `Deadline ->
        fail "%s timed out" name;
        false
    | `Stopped ->
        fail "%s aborted" name;
        false
  in
  let connected d = d.d_conn <> None in
  let need = cfg.c_desc.Descriptor.nb_splayd in
  let boot_ok =
    phase "daemon bootstrap" ~timeout:30.0 (fun () -> List.for_all connected daemons)
  in
  let alive = List.filter connected daemons in
  let select =
    {
      sel_need = need;
      sel_alive = List.length alive;
      sel_dead = cfg.c_daemons - List.length alive;
      sel_matched =
        List.filteri (fun i _ -> i < need) alive |> List.map (fun d -> d.d_host);
    }
  in
  let deployed =
    if not boot_ok then false
    else if List.length alive < 1 || List.length alive < min need cfg.c_daemons then begin
      fail "selection failed: need %d daemons, %d alive" need (List.length alive);
      false
    end
    else begin
      (* Shared epoch: every daemon's virtual clock counts from here, so
         log timestamps and merged traces align across processes. *)
      let epoch = Unix.gettimeofday () in
      let peers = List.map (fun d -> (d.d_host, d.d_data_port)) alive in
      List.iter
        (fun d ->
          match d.d_conn with
          | Some c -> Conn.send c (Wire.Peers { epoch; peers })
          | None -> ())
        alive;
      (* Instance placement: round-robin over the selected daemons; the
         port distinguishes multiple instances on one daemon. *)
      let matched = Array.of_list (List.filter (fun d -> List.mem d.d_host select.sel_matched) alive) in
      let nm = Array.length matched in
      let placement =
        List.init need (fun k ->
            let d = matched.(k mod nm) in
            (k, d, Addr.make d.d_host (9000 + (k / nm))))
      in
      let all_addrs = List.map (fun (_, _, a) -> a) placement in
      let nodes = bootstrap_nodes cfg.c_desc ~seed:cfg.c_seed all_addrs in
      List.iter
        (fun (k, d, addr) ->
          match d.d_conn with
          | Some c ->
              Conn.send c
                (Wire.Deploy
                   {
                     job = 1;
                     app = cfg.c_app;
                     name = Printf.sprintf "%s.%d" cfg.c_app (k + 1);
                     port = addr.Addr.port;
                     position = k + 1;
                     nodes;
                     limits = cfg.c_desc.Descriptor.limits;
                     log_level = cfg.c_log_level;
                     params = cfg.c_params;
                   })
          | None -> ())
        placement;
      let acked re n = Option.value ~default:0 (Hashtbl.find_opt acks_ok re) >= n in
      let dep_ok =
        phase "deploy" ~timeout:30.0 (fun () -> acked "deploy" need || !failures <> [])
        && !failures = []
      in
      if dep_ok then begin
        List.iter
          (fun (_, d, addr) ->
            match d.d_conn with
            | Some c -> Conn.send c (Wire.Start { job = 1; port = addr.Addr.port })
            | None -> ())
          placement;
        phase "start" ~timeout:30.0 (fun () -> acked "start" need || !failures <> [])
        && !failures = []
      end
      else false
    end
  in
  if deployed then begin
    (* Main phase: wait for the app's done report, or run the requested
       duration. Losing a daemon mid-run is a failure. *)
    let started = Unix.gettimeofday () in
    let lost () = List.exists (fun d -> d.d_conn = None) alive in
    let cond =
      if cfg.c_duration > 0.0 then fun () ->
        Unix.gettimeofday () -. started >= cfg.c_duration || lost ()
      else fun () -> !done_seen || lost ()
    in
    let window = Float.max 1.0 (hard -. Unix.gettimeofday ()) in
    ignore (phase "run" ~timeout:window cond);
    if lost () then fail "daemon connection lost mid-run";
    if cfg.c_duration <= 0.0 && not !done_seen then fail "application never reported done"
  end;
  (* Graceful teardown: Shutdown verb, wait for Byes, then reap. *)
  List.iter
    (fun d -> match d.d_conn with Some c -> Conn.send c Wire.Shutdown | None -> ())
    daemons;
  ignore
    (Loop.run loop
       ~deadline:(Unix.gettimeofday () +. 10.0)
       ~until:(fun () -> List.for_all (fun d -> d.d_bye || d.d_conn = None) daemons));
  reap daemons ~grace:5.0;
  List.iter
    (fun d ->
      match d.d_status with
      | Some (Unix.WEXITED 0) | None -> ()
      | Some (Unix.WEXITED c) -> fail "daemon %d exited with code %d" d.d_host c
      | Some (Unix.WSIGNALED s) -> fail "daemon %d killed by signal %d" d.d_host s
      | Some (Unix.WSTOPPED s) -> fail "daemon %d stopped by signal %d" d.d_host s)
    daemons;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  (* Artifacts. Logs use the sim controller's JSONL schema; trace/metrics
     are the concatenated per-daemon dumps (id namespaces are disjoint by
     construction, and the metrics loader is line-oriented). *)
  let logs_path = Filename.concat cfg.c_out_dir "logs.jsonl" in
  let oc = open_out logs_path in
  List.iter
    (fun (time, node, level, text) ->
      Printf.fprintf oc {|{"t":%.6f,"ev":"L","node":%s,"level":"%s","msg":%s}|} time
        (json_string node) (Log.level_to_string level) (json_string text);
      output_char oc '\n')
    (List.rev !log_records);
  close_out oc;
  let collect kind file =
    let parts =
      List.filter_map
        (fun d -> Option.map Buffer.contents (Hashtbl.find_opt chunks (d.d_host, kind)))
        daemons
    in
    if parts = [] then None
    else begin
      let path = Filename.concat cfg.c_out_dir file in
      let oc = open_out path in
      List.iter
        (fun p ->
          output_string oc p;
          if String.length p > 0 && p.[String.length p - 1] <> '\n' then output_char oc '\n')
        parts;
      close_out oc;
      Some path
    end
  in
  let trace_file = if cfg.c_trace then collect "trace" "trace.jsonl" else None in
  let metrics_file = if cfg.c_metrics then collect "metrics" "metrics.jsonl" else None in
  (if cfg.c_trace && trace_file = None then fail "no trace chunks collected");
  {
    r_ok = !failures = [];
    r_failures = List.rev !failures;
    r_reports = List.rev !reports;
    r_select = select;
    r_log_records = !n_logs;
    r_trace_file = trace_file;
    r_metrics_file = metrics_file;
    r_out_dir = cfg.c_out_dir;
  }

(* {1 Out-of-band job control: status / kill from the run directory} *)

let read_state dir =
  let path = state_file dir in
  let ic = open_in path in
  let line = Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> input_line ic) in
  let v = Codec.decode line in
  let pid = Codec.to_int (Codec.member "controller_pid" v) in
  let ds =
    List.map
      (fun d ->
        ( Codec.to_int (Codec.member "host" d),
          Codec.to_int (Codec.member "pid" d),
          Codec.to_string (Codec.member "log" d) ))
      (Codec.to_list (Codec.member "daemons" v))
  in
  (pid, ds)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
  | exception Unix.Unix_error _ -> false

let status dir =
  let controller, ds = read_state dir in
  ( (controller, pid_alive controller),
    List.map (fun (host, pid, log) -> (host, pid, pid_alive pid, log)) ds )

let kill dir =
  let controller, ds = read_state dir in
  let targets = controller :: List.map (fun (_, pid, _) -> pid) ds in
  List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) targets;
  let deadline = Unix.gettimeofday () +. 2.0 in
  let alive () = List.filter pid_alive targets in
  while alive () <> [] && Unix.gettimeofday () < deadline do
    try ignore (Unix.select [] [] [] 0.05) with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  let leftover = alive () in
  List.iter (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()) leftover;
  List.length leftover
