(** The real [splayd]: one OS process hosting application instances on
    the live backend.

    Bootstrap: connect to the controller, send [Hello] (announcing the
    data port peers dial), receive [Peers] (the shared wall-clock epoch
    and peer table), then serve [Deploy]/[Start]/[Stop]/[Shutdown] verbs
    over the framed control connection while streaming heartbeats and log
    records back. Cross-daemon application traffic leaves through
    [Net.set_remote] routes onto framed TCP data connections and
    re-enters the destination daemon via [Net.deliver_remote].

    Hygiene: the daemon self-terminates when orphaned (parent-PID poll)
    or when the control connection drops; a graceful [Shutdown] flushes
    its trace/metrics JSONL dump to the controller first. *)

type config = {
  connect : string;  (** controller address, ["host:port"] *)
  host : int;  (** this daemon's logical host id *)
  parent : int;  (** controller PID for the orphan watch; [0] disables *)
  seed : int;
  trace : bool;
  metrics : bool;
}

val ids_stride : int
(** Trace/span id namespace stride: daemon [h] numbers its observability
    records from [h * ids_stride], keeping merged live traces
    collision-free. *)

val run : config -> int
(** Run the daemon to completion; returns the process exit code (0 after
    a graceful shutdown). Exits the process directly on orphaning or
    controller loss. *)
