module Rng = Splay_sim.Rng

type event = { time : float; node : int; action : [ `Join | `Leave ] }

type t = event list

exception Format_error of string

let sort_events evs =
  List.stable_sort (fun a b -> Float.compare a.time b.time) evs

let validate evs =
  let state = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let up = Option.value ~default:false (Hashtbl.find_opt state e.node) in
      (match (e.action, up) with
      | `Join, true -> raise (Format_error (Printf.sprintf "node %d joins twice" e.node))
      | `Leave, false -> raise (Format_error (Printf.sprintf "node %d leaves while down" e.node))
      | _ -> ());
      Hashtbl.replace state e.node (e.action = `Join))
    evs;
  evs

let of_string s =
  let parse_line i line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else
      match String.split_on_char ' ' line |> List.filter (fun x -> x <> "") with
      | [ time; action; node ] -> (
          match (float_of_string_opt time, int_of_string_opt node) with
          | Some time, Some node when time >= 0.0 -> (
              match action with
              | "join" -> Some { time; node; action = `Join }
              | "leave" -> Some { time; node; action = `Leave }
              | _ -> raise (Format_error (Printf.sprintf "line %d: bad action %S" (i + 1) action)))
          | _ -> raise (Format_error (Printf.sprintf "line %d: bad fields" (i + 1))))
      | _ -> raise (Format_error (Printf.sprintf "line %d: expected 3 fields" (i + 1)))
  in
  String.split_on_char '\n' s
  |> List.mapi parse_line
  |> List.filter_map Fun.id
  |> sort_events
  |> validate

let to_string t =
  String.concat "\n"
    (List.map
       (fun e ->
         Printf.sprintf "%.3f %s %d" e.time
           (match e.action with `Join -> "join" | `Leave -> "leave")
           e.node)
       t)

(* The diurnal wave shared by the synthetic churn trace and the open-loop
   serving load: a mild sinusoid around 1.0, one full cycle per [period]. *)
let diurnal ?(amplitude = 0.15) ~period t =
  1.0 +. (amplitude *. sin (2.0 *. Float.pi *. t /. period))

(* Overnet-like availability (Bhagwan et al.): most sessions are short,
   some last hours; peers cycle on and off. We draw session/offline times
   from Weibull distributions with shape < 1 (heavy tail) and modulate the
   rejoin rate with a diurnal wave. The defaults settle around the target
   concurrency. *)
let synthetic_overnet ?(concurrent = 600) ?(duration = 3000.0) rng =
  (* mean session 2000 s, mean downtime scaled to hit the target
     concurrency with the chosen peer population *)
  (* long heavy-tailed sessions: the Overnet study's peers average hours
     online; at 1x this yields ~1-2% of the population changing state per
     minute, reaching ~14%/min at the 10x speed-up of Fig. 11 *)
  let mean_session = 12_000.0 in
  let mean_down = 4_000.0 in
  let total_peers =
    int_of_float (Float.of_int concurrent *. (mean_session +. mean_down) /. mean_session)
  in
  let events = ref [] in
  let emit time node action = events := { time; node; action } :: !events in
  let diurnal t = diurnal ~period:duration t in
  for node = 0 to total_peers - 1 do
    (* start somewhere in a virtual on/off cycle *)
    let up0 = Rng.chance rng (mean_session /. (mean_session +. mean_down)) in
    let t = ref 0.0 in
    let up = ref up0 in
    if up0 then emit 0.0 node `Join;
    while !t < duration do
      let d =
        if !up then Rng.weibull rng ~scale:mean_session ~shape:0.8
        else Rng.weibull rng ~scale:(mean_down /. diurnal !t) ~shape:0.8
      in
      let d = Float.max 1.0 d in
      t := !t +. d;
      if !t < duration then begin
        up := not !up;
        emit !t node (if !up then `Join else `Leave)
      end
    done
  done;
  validate (sort_events !events)

let population t ~at =
  List.fold_left
    (fun acc e ->
      if e.time > at then acc else match e.action with `Join -> acc + 1 | `Leave -> acc - 1)
    0 t

let duration t = List.fold_left (fun acc e -> Float.max acc e.time) 0.0 t

let population_series t ~bin =
  let horizon = duration t in
  let nbins = int_of_float (Float.ceil (horizon /. bin)) + 1 in
  let pop = Array.make nbins 0 in
  let delta = Array.make nbins 0 in
  List.iter
    (fun e ->
      let b = min (nbins - 1) (int_of_float (e.time /. bin)) in
      delta.(b) <- (delta.(b) + match e.action with `Join -> 1 | `Leave -> -1))
    t;
  let acc = ref 0 in
  for b = 0 to nbins - 1 do
    acc := !acc + delta.(b);
    pop.(b) <- !acc
  done;
  List.init nbins (fun b -> (Float.of_int b *. bin, pop.(b)))

let events_per_bin t ~bin =
  let horizon = duration t in
  let nbins = int_of_float (Float.ceil (horizon /. bin)) + 1 in
  let joins = Array.make nbins 0 and leaves = Array.make nbins 0 in
  List.iter
    (fun e ->
      let b = min (nbins - 1) (int_of_float (e.time /. bin)) in
      match e.action with
      | `Join -> joins.(b) <- joins.(b) + 1
      | `Leave -> leaves.(b) <- leaves.(b) + 1)
    t;
  List.init nbins (fun b -> (Float.of_int b *. bin, joins.(b), leaves.(b)))

let churn_rate t ~bin =
  let pops = Array.of_list (population_series t ~bin) in
  let evs = Array.of_list (events_per_bin t ~bin) in
  let rate = ref 0.0 in
  Array.iteri
    (fun i (_, j, l) ->
      let _, p = pops.(i) in
      (* skip the first bin: it holds the initial mass join, not churn *)
      if i > 0 && p > 0 then rate := Float.max !rate (Float.of_int (j + l) /. Float.of_int p))
    evs;
  !rate
