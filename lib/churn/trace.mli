(** Availability traces: replayable records of node arrivals/departures.

    Mirrors the trace-driven mode of SPLAY's churn manager, with the format
    of the public availability repositories: one event per line,
    ["<seconds> <join|leave> <node>"]. A synthetic generator reproduces the
    statistics of the Overnet trace used in Fig. 11 (heavy-tailed sessions,
    diurnal modulation, ~600 concurrent peers). *)

type event = { time : float; node : int; action : [ `Join | `Leave ] }

type t = event list
(** Sorted by time; per node, joins and leaves alternate starting with a
    join. *)

exception Format_error of string

val of_string : string -> t
(** Parse; sorts and validates alternation. Raises {!Format_error}. *)

val to_string : t -> string

val diurnal : ?amplitude:float -> period:float -> float -> float
(** [diurnal ~period t] is the trace generator's arrival-rate modulation: a
    sinusoid around 1.0 with the given [amplitude] (default 0.15), one full
    cycle per [period]. Shared with the open-loop serving load generator so
    simulated request waves have the same shape as simulated churn. *)

val synthetic_overnet :
  ?concurrent:int -> ?duration:float -> Splay_sim.Rng.t -> t
(** Generate an Overnet-like trace: [concurrent] (default 600) peers online
    on average over [duration] (default 3000 s — 50 minutes as Fig. 11),
    Weibull session and inter-session times with heavy tails, and a mild
    diurnal wave. *)

val population : t -> at:float -> int
(** Number of nodes online at a given time. *)

val population_series : t -> bin:float -> (float * int) list

val events_per_bin : t -> bin:float -> (float * int * int) list
(** [(bin, joins, leaves)]. *)

val churn_rate : t -> bin:float -> float
(** Peak fraction of the population changing state within one bin (the
    paper quotes 14% per minute for the ×10 trace). *)

val duration : t -> float
