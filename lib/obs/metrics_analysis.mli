(** Offline analysis of metrics-plane dumps — the consumer behind
    [splay top].

    Loads a [splay-metrics/1] JSONL file ({!Obs.dump_metrics}): the header
    supplies the window width, every other line is a windowed rollup row
    ([w >= 0]), a whole-run cumulative row ([w = -1]) or a status note.
    Rows keep their raw field lists, so files written by a newer {!Obs}
    with extra fields still load.

    A multi-trial dump carries each trial's windows spliced in trial
    order, so one (window, metric) pair may appear several times; the
    aggregations here merge them — counters add, gauges keep the last
    value, histograms add [n]/[sum], merge [min]/[max] and combine
    quantiles as an [n]-weighted mean (exact for a single row). *)

type row = {
  r_metric : string;
  r_kind : string;  (** ["counter"], ["gauge"], ["hist"] or ["note"] *)
  r_w : int;  (** window index; [-1] = whole-run cumulative *)
  r_fields : (string * string) list;  (** raw fields, in file order *)
}

type t = {
  window : float;  (** window width in virtual seconds *)
  rows : row list;  (** in file order *)
  windows : int list;  (** distinct [w >= 0], ascending *)
}

val field : row -> string -> string option
val float_field : row -> string -> float option
val int_field : row -> string -> int option

val load : string -> t
(** Parse a metrics dump from a string. Malformed lines are skipped. *)

val load_file : string -> t
(** {!load} on a file's contents. Raises [Sys_error] as [open_in] does. *)

val rows_of : t -> w:int -> string -> row list
(** Non-note rows of one metric in one window (several for multi-trial
    dumps); [w = -1] selects the cumulative rows. *)

val metrics_of_kind : t -> string -> string list
(** Sorted distinct metric names of the given kind with windowed rows. *)

type hist_agg = {
  ha_n : int;
  ha_sum : float;
  ha_min : float;
  ha_max : float;
  ha_q : float -> float;  (** quantile at 0.5 / 0.9 / 0.99 / 0.999 *)
}

val hist_agg : row list -> hist_agg
(** Merge histogram rows (e.g. {!rows_of} output) into one summary. *)

val violation_rate : hist_agg -> threshold:float -> float
(** Share of the histogram's observations above [threshold], in [0, 1]:
    the CDF interpolated piecewise-linearly through (min, 0), (p50, .5),
    (p90, .9), (p99, .99), (p999, .999), (max, 1). [nan] when the
    histogram is empty or carries no finite quantiles. *)

val render : ?metric:string -> ?k:int -> ?slo:string * float -> t -> string
(** The [splay top] dashboard: one line per window (t0, global msgs/s,
    rpc/s, events/s, drops/s rates, and p50/p99/p999 of [metric] —
    default [rpc.latency], falling back to the first histogram present),
    then cumulative histogram summaries and the last [k] (default 5)
    status-note rows. Missing cells render as ["-"]. With [slo = (m,
    threshold)] each window line gains a violation-rate column — the
    {!violation_rate} of histogram [m] against [threshold] — plus a
    whole-run summary line. *)

val print_top : ?metric:string -> ?k:int -> ?slo:string * float -> t -> unit
(** Print {!render} on stdout. *)

val prometheus : t -> string
(** Prometheus text exposition of the whole-run cumulative rows: metric
    names prefixed [splay_] with non-alphanumerics mangled to [_];
    counters and gauges as their totals / last values, histograms as
    summaries (quantile labels plus [_sum]/[_count]). *)
