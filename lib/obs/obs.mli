(** Deterministic tracing and metrics for the whole stack.

    The paper's evaluation is built from log collection and per-host
    measurements; [Obs] is the reproduction's equivalent: one global
    registry of hierarchical trace {e spans} and {e counters / gauges /
    histograms}, shared by the engine, the RPC layer, the network model and
    the controller. Every record is keyed on the engine's {e virtual}
    clock, never the wall clock, so with a fixed seed the JSONL trace of a
    run is bit-for-bit identical across executions and machines.

    The API is zero-cost when disabled: every instrumentation site checks
    the single {!enabled} flag once; with it off, no span is allocated and
    no metric is touched (instrumented hot paths allocate nothing). Sites
    that build attribute lists must guard themselves:

    {[
      if !Obs.enabled then
        Obs.event ~attrs:[ ("host", string_of_int h) ] "ctl.blacklist_push"
    ]}

    Metric objects ({!counter}, {!gauge}, {!histogram}) are created once at
    the instrumentation site (typically at module initialisation) and are
    cheap handles afterwards; creating the same name twice returns the
    same handle.

    Multicore: every piece of mutable recording state — virtual clock,
    trace buffer, span/trace numbering, current context, metric cells —
    is {e domain-local} ([Domain.DLS]). Trials running on different
    domains record into disjoint state; the trial pool
    ({!Splay_sim.Pool}) brackets each trial with {!capture} and merges
    the snapshots back in trial-index order with {!absorb}, so the final
    trace and metrics are independent of how trials were spread over
    domains. Handle registration is mutex-guarded and safe from any
    domain. *)

val enabled : bool ref
(** Master switch for the {e trace} plane, off by default. Check it once
    per site before building attribute lists; the recording primitives
    also check it. Toggle it only outside parallel sections (before
    spawning worker domains): the flag itself is process-global. *)

val metrics_enabled : bool ref
(** Master switch for the {e metrics} plane (windowed rollups), off by
    default and independent of {!enabled}: a million-node run can keep
    bounded-memory percentile telemetry with tracing off. With it on,
    every counter/gauge/histogram sample also lands in the current
    virtual-time window (see {!Rollup}) and, for histograms, a
    run-cumulative log-bucket table. Spans stay trace-only. Same toggling
    discipline as {!enabled}. *)

val set_trace_cap : int -> unit
(** Bound the trace buffer to at most [n] records per recording state
    (each captured trial gets its own budget); [0] (the default) means
    unlimited. Records past the cap are counted in {!trace_dropped}
    instead of stored; span ids, context and {!span_count} advance
    exactly as without the cap, so the stored prefix is byte-identical
    to an uncapped run's. *)

val trace_dropped : unit -> int
(** Trace records refused at the cap since the last {!reset} (absorbed
    snapshots included). *)

val set_clock : (unit -> float) -> unit
(** Install the virtual-clock source. {!Splay_sim.Engine.create} calls
    this, so the most recently created engine stamps the trace. *)

val now : unit -> float
(** Current virtual time as seen by the trace (0.0 before any engine
    exists). *)

val reset : unit -> unit
(** Clear the calling domain's trace buffer, zero every registered metric,
    restart span and trace numbering and clear the current context. Call
    between independent runs that must produce independent traces. *)

(** {1 Capture / absorb — deterministic multi-domain merge}

    The unit of isolation is a {e trial}: an independent simulation run
    (own engine, own seed). {!capture} runs a trial against a fresh
    domain-local state and returns everything it recorded as an inert
    {!snapshot}; {!absorb} merges a snapshot into the calling domain's
    state (trace appended, counters and histograms added, gauges taking
    the snapshot's last value). Absorbing snapshots in trial-index order
    makes the merged output a pure function of the trial list — identical
    whether the trials ran on one domain or eight. *)

type snapshot
(** What one captured trial recorded. Immutable and domain-independent. *)

val capture : ?ids_base:int -> (unit -> 'a) -> 'a * snapshot
(** [capture ~ids_base f] runs [f ()] against a fresh domain-local state
    whose span/trace numbering starts at [ids_base + 1] (give each trial a
    distinct base so ids never collide in the merged trace), then restores
    the previous state. When the layer is disabled this is just [f ()]
    plus an empty snapshot. *)

val absorb : snapshot -> unit
(** Merge a snapshot into the calling domain's state. Order matters for
    gauges (last absorbed wins) and for trace record order — absorb in
    trial-index order. *)

(** {2 Long-lived recording states}

    {!capture} brackets one function call; the parallel engine
    ({!Splay_sim.Par}) needs the same isolation with a different
    lifetime: one state per {e partition}, kept alive across many time
    windows, installed on whichever domain executes the partition next,
    and snapshotted once when the whole run ends. These are the pieces
    {!capture} is built from. *)

type rec_state
(** A private recording state (trace buffer, id allocators, metric
    cells), not yet attached to any domain. Mutable: install it on at
    most one domain at a time. *)

val state_create : ?ids_base:int -> unit -> rec_state
(** Fresh state with span/trace numbering starting at [ids_base + 1]
    (default 0 — give each concurrent state a distinct base, as
    {!capture} does per trial). *)

val state_install : rec_state -> rec_state
(** Make the given state the calling domain's current recording state
    and return the previously installed one (re-install that when done
    — the bracket discipline of {!capture}, split in two). *)

val state_snapshot : rec_state -> snapshot
(** Render everything the state recorded as an inert {!snapshot} for
    {!absorb}. Call it once, after the state's last window, with the
    state no longer installed anywhere. *)

(** {1 Trace context}

    Causality across tasks and nodes. A context names a position in the
    causal DAG: the trace ([tid]) a computation belongs to and the span
    ([sid]) it is currently inside. The engine captures the current
    context at every [schedule]/[spawn]/[suspend] and restores it when the
    event fires or the process resumes, so context follows the flow of
    control; the RPC layer additionally carries it inside the request
    envelope, so a handler's spans are children of the caller's span
    {e across nodes}. Under a fixed seed, context assignment is part of
    the byte-identical trace. *)

type ctx = { tid : int; sid : int }
(** [tid = 0] means "no trace": a span started there opens a fresh trace. *)

val null_ctx : ctx

val current : unit -> ctx
(** The ambient context ({!null_ctx} when none). Allocation-free. *)

val set_current : ctx -> unit
(** Install a context (schedulers and transports use this to propagate;
    instrumentation sites normally just start spans). *)

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** Run a thunk under a context, restoring the previous one after. *)

(** {1 Spans}

    A span is a named interval of virtual time with string attributes and
    a position in the causal DAG; {!null_span} is the disabled sentinel,
    so starting a span while disabled allocates nothing. *)

type span

val null_span : span

val span_ctx : span -> ctx
(** The context naming this span — what travels in message envelopes so
    remote work becomes its child ({!null_ctx} for {!null_span}). *)

val span : ?attrs:(string * string) list -> ?parent:ctx -> string -> span
(** Begin a span at the current virtual instant, as a child of [parent]
    (default: the current context; a fresh root/trace if there is none).
    The new span becomes the current context until {!finish}. Returns
    {!null_span} (and records nothing) when disabled. *)

val finish : ?attrs:(string * string) list -> span -> unit
(** End a span; extra attributes (e.g. the outcome) are attached to the
    end record. The current context reverts to what it was when the span
    was started, so siblings started afterwards do not nest under it.
    Finishing {!null_span} is a no-op. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] wraps [f ()] in a span, finishing it even on
    exception (the end record then carries [("outcome", "exn")]). *)

val event : ?attrs:(string * string) list -> string -> unit
(** Record an instantaneous point event, attributed to the current
    context. Attribute keys must not collide with the record's own fields
    ([t]/[ev]/[sid]/[tid]/[pid]/[name]). *)

val span_count : unit -> int
(** Number of spans started since the last {!reset} (tests use this to
    assert the disabled mode records nothing). *)

(** {1 Metrics} *)

type counter

val counter : string -> counter
(** Find-or-create a monotonic integer counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : string -> gauge
(** Find-or-create a last-value gauge; the high-water mark is kept too. *)

val gauge_set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_max : gauge -> float

type histogram

val histogram : string -> histogram
(** Find-or-create a histogram summarised as count / sum / min / max. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_mean : histogram -> float

(** {1 Rollup — time-windowed metrics on the virtual clock}

    With {!metrics_enabled} on, every sample is aggregated into the
    window [w = floor(t / window)] of a small ring; advancing past a
    window renders one compact JSON line per touched metric (counters
    gain a windowed rate, gauges a windowed last/max, histograms
    count/sum/min/max plus p50/p90/p99/p999 from HDR-style log-linear
    buckets — 8 sub-buckets per octave, ≤ ~6% relative error, O(1)
    memory per histogram). Histograms additionally keep run-cumulative
    buckets, so whole-run quantiles are available at any point
    ({!Rollup.quantile}). Domain-local like the rest of the recording
    state and merged through {!capture}/{!absorb} in trial order, so
    multi-domain dumps are byte-identical to single-domain ones. *)

module Rollup : sig
  val set_window : float -> unit
  (** Window width in virtual seconds (default 10.0; non-positive values
      are ignored). Set before arming the metrics plane — the width is
      baked into already-rendered rows. *)

  val window : unit -> float

  val clear : unit -> unit
  (** Drop the calling domain's rollup state (rendered rows, ring,
      cumulative buckets). Use between back-to-back runs whose windows
      must not bleed into each other; plain metric cells are untouched. *)

  val quantile : histogram -> float -> float
  (** Run-cumulative q-quantile from the log-bucket table (0.0 when the
      histogram has no samples or the metrics plane never ran). Within
      ~6% relative error; exact min/max clamp the extremes. *)

  val count : histogram -> int
  (** Samples in the run-cumulative bucket table. *)

  val note : ?attrs:(string * string) list -> string -> unit
  (** Append a free-form row ([{"m":…,"kind":"note","w":…,"t":…,…attrs}])
      at the current virtual instant — controller status sampling uses
      this for per-job top-host rows. No-op unless {!metrics_enabled}. *)

  val rows : unit -> string
  (** Everything the windowed plane has rendered so far (evicted windows
      first, then still-open ones in window order). Non-destructive. *)
end

(** {1 Output} *)

val trace_jsonl : unit -> string
(** The trace so far, one JSON object per line, in record order.
    Span-begin records are
    [{"t":…,"ev":"B","sid":…,"tid":…,"pid":…,"name":…,…attrs}] where
    [sid] is the span id, [tid] its trace and [pid] the parent span
    ([0] for a root); span-end records are [{"t":…,"ev":"E","sid":…,…}]
    and point events [{"t":…,"ev":"P","tid":…,"pid":…,"name":…,…}].
    Deterministic under a fixed seed; {!Trace_analysis} consumes this
    format. *)

val metrics_jsonl : unit -> string
(** Every registered metric with a non-default value, one JSON object per
    line, sorted by metric name (so output never depends on hash order). *)

val dump_jsonl : path:string -> unit -> unit
(** Write {!trace_jsonl} followed by {!metrics_jsonl} to [path]. *)

val metrics_plane_jsonl : unit -> string
(** The metrics-plane dump: a [{"schema":"splay-metrics/1","window":…}]
    header, the windowed rollup rows ({!Rollup.rows}), then one
    cumulative whole-run row per touched metric with [w:-1].
    {!Metrics_analysis} and [splay top] consume this format. *)

val dump_metrics : path:string -> unit -> unit
(** Write {!metrics_plane_jsonl} to [path]. *)

val report : unit -> unit
(** Render a summary of all touched metrics as {!Splay_stats.Report}
    tables on stdout. *)

val json_string : string -> string
(** Quote and escape a string exactly as the trace emitter does — for
    sibling emitters (the controller's log dump) that must stay
    parseable by the same toolkit. *)

val add_time_value : Buffer.t -> float -> unit
(** Append a timestamp formatted exactly as the trace emitter renders the
    clock: the bytes of [Printf.sprintf "%.6f"], produced by fixed-point
    integer emission on the common range. Exposed so tests can pin the
    equivalence and so sibling emitters render times identically. *)
