(** Deterministic tracing and metrics for the whole stack.

    The paper's evaluation is built from log collection and per-host
    measurements; [Obs] is the reproduction's equivalent: one global
    registry of hierarchical trace {e spans} and {e counters / gauges /
    histograms}, shared by the engine, the RPC layer, the network model and
    the controller. Every record is keyed on the engine's {e virtual}
    clock, never the wall clock, so with a fixed seed the JSONL trace of a
    run is bit-for-bit identical across executions and machines.

    The API is zero-cost when disabled: every instrumentation site checks
    the single {!enabled} flag once; with it off, no span is allocated and
    no metric is touched (instrumented hot paths allocate nothing). Sites
    that build attribute lists must guard themselves:

    {[
      if !Obs.enabled then
        Obs.event ~attrs:[ ("host", string_of_int h) ] "ctl.blacklist_push"
    ]}

    Metric objects ({!counter}, {!gauge}, {!histogram}) are created once at
    the instrumentation site (typically at module initialisation) and are
    cheap handles afterwards; creating the same name twice returns the
    same handle.

    Multicore: every piece of mutable recording state — virtual clock,
    trace buffer, span/trace numbering, current context, metric cells —
    is {e domain-local} ([Domain.DLS]). Trials running on different
    domains record into disjoint state; the trial pool
    ({!Splay_sim.Pool}) brackets each trial with {!capture} and merges
    the snapshots back in trial-index order with {!absorb}, so the final
    trace and metrics are independent of how trials were spread over
    domains. Handle registration is mutex-guarded and safe from any
    domain. *)

val enabled : bool ref
(** Master switch, off by default. Check it once per site before building
    attribute lists; the recording primitives also check it. Toggle it
    only outside parallel sections (before spawning worker domains): the
    flag itself is process-global. *)

val set_clock : (unit -> float) -> unit
(** Install the virtual-clock source. {!Splay_sim.Engine.create} calls
    this, so the most recently created engine stamps the trace. *)

val now : unit -> float
(** Current virtual time as seen by the trace (0.0 before any engine
    exists). *)

val reset : unit -> unit
(** Clear the calling domain's trace buffer, zero every registered metric,
    restart span and trace numbering and clear the current context. Call
    between independent runs that must produce independent traces. *)

(** {1 Capture / absorb — deterministic multi-domain merge}

    The unit of isolation is a {e trial}: an independent simulation run
    (own engine, own seed). {!capture} runs a trial against a fresh
    domain-local state and returns everything it recorded as an inert
    {!snapshot}; {!absorb} merges a snapshot into the calling domain's
    state (trace appended, counters and histograms added, gauges taking
    the snapshot's last value). Absorbing snapshots in trial-index order
    makes the merged output a pure function of the trial list — identical
    whether the trials ran on one domain or eight. *)

type snapshot
(** What one captured trial recorded. Immutable and domain-independent. *)

val capture : ?ids_base:int -> (unit -> 'a) -> 'a * snapshot
(** [capture ~ids_base f] runs [f ()] against a fresh domain-local state
    whose span/trace numbering starts at [ids_base + 1] (give each trial a
    distinct base so ids never collide in the merged trace), then restores
    the previous state. When the layer is disabled this is just [f ()]
    plus an empty snapshot. *)

val absorb : snapshot -> unit
(** Merge a snapshot into the calling domain's state. Order matters for
    gauges (last absorbed wins) and for trace record order — absorb in
    trial-index order. *)

(** {1 Trace context}

    Causality across tasks and nodes. A context names a position in the
    causal DAG: the trace ([tid]) a computation belongs to and the span
    ([sid]) it is currently inside. The engine captures the current
    context at every [schedule]/[spawn]/[suspend] and restores it when the
    event fires or the process resumes, so context follows the flow of
    control; the RPC layer additionally carries it inside the request
    envelope, so a handler's spans are children of the caller's span
    {e across nodes}. Under a fixed seed, context assignment is part of
    the byte-identical trace. *)

type ctx = { tid : int; sid : int }
(** [tid = 0] means "no trace": a span started there opens a fresh trace. *)

val null_ctx : ctx

val current : unit -> ctx
(** The ambient context ({!null_ctx} when none). Allocation-free. *)

val set_current : ctx -> unit
(** Install a context (schedulers and transports use this to propagate;
    instrumentation sites normally just start spans). *)

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** Run a thunk under a context, restoring the previous one after. *)

(** {1 Spans}

    A span is a named interval of virtual time with string attributes and
    a position in the causal DAG; {!null_span} is the disabled sentinel,
    so starting a span while disabled allocates nothing. *)

type span

val null_span : span

val span_ctx : span -> ctx
(** The context naming this span — what travels in message envelopes so
    remote work becomes its child ({!null_ctx} for {!null_span}). *)

val span : ?attrs:(string * string) list -> ?parent:ctx -> string -> span
(** Begin a span at the current virtual instant, as a child of [parent]
    (default: the current context; a fresh root/trace if there is none).
    The new span becomes the current context until {!finish}. Returns
    {!null_span} (and records nothing) when disabled. *)

val finish : ?attrs:(string * string) list -> span -> unit
(** End a span; extra attributes (e.g. the outcome) are attached to the
    end record. The current context reverts to what it was when the span
    was started, so siblings started afterwards do not nest under it.
    Finishing {!null_span} is a no-op. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] wraps [f ()] in a span, finishing it even on
    exception (the end record then carries [("outcome", "exn")]). *)

val event : ?attrs:(string * string) list -> string -> unit
(** Record an instantaneous point event, attributed to the current
    context. Attribute keys must not collide with the record's own fields
    ([t]/[ev]/[sid]/[tid]/[pid]/[name]). *)

val span_count : unit -> int
(** Number of spans started since the last {!reset} (tests use this to
    assert the disabled mode records nothing). *)

(** {1 Metrics} *)

type counter

val counter : string -> counter
(** Find-or-create a monotonic integer counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : string -> gauge
(** Find-or-create a last-value gauge; the high-water mark is kept too. *)

val gauge_set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_max : gauge -> float

type histogram

val histogram : string -> histogram
(** Find-or-create a histogram summarised as count / sum / min / max. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_mean : histogram -> float

(** {1 Output} *)

val trace_jsonl : unit -> string
(** The trace so far, one JSON object per line, in record order.
    Span-begin records are
    [{"t":…,"ev":"B","sid":…,"tid":…,"pid":…,"name":…,…attrs}] where
    [sid] is the span id, [tid] its trace and [pid] the parent span
    ([0] for a root); span-end records are [{"t":…,"ev":"E","sid":…,…}]
    and point events [{"t":…,"ev":"P","tid":…,"pid":…,"name":…,…}].
    Deterministic under a fixed seed; {!Trace_analysis} consumes this
    format. *)

val metrics_jsonl : unit -> string
(** Every registered metric with a non-default value, one JSON object per
    line, sorted by metric name (so output never depends on hash order). *)

val dump_jsonl : path:string -> unit -> unit
(** Write {!trace_jsonl} followed by {!metrics_jsonl} to [path]. *)

val report : unit -> unit
(** Render a summary of all touched metrics as {!Splay_stats.Report}
    tables on stdout. *)

val json_string : string -> string
(** Quote and escape a string exactly as the trace emitter does — for
    sibling emitters (the controller's log dump) that must stay
    parseable by the same toolkit. *)

val add_time_value : Buffer.t -> float -> unit
(** Append a timestamp formatted exactly as the trace emitter renders the
    clock: the bytes of [Printf.sprintf "%.6f"], produced by fixed-point
    integer emission on the common range. Exposed so tests can pin the
    equivalence and so sibling emitters render times identically. *)
