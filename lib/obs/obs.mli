(** Deterministic tracing and metrics for the whole stack.

    The paper's evaluation is built from log collection and per-host
    measurements; [Obs] is the reproduction's equivalent: one global
    registry of hierarchical trace {e spans} and {e counters / gauges /
    histograms}, shared by the engine, the RPC layer, the network model and
    the controller. Every record is keyed on the engine's {e virtual}
    clock, never the wall clock, so with a fixed seed the JSONL trace of a
    run is bit-for-bit identical across executions and machines.

    The API is zero-cost when disabled: every instrumentation site checks
    the single {!enabled} flag once; with it off, no span is allocated and
    no metric is touched (instrumented hot paths allocate nothing). Sites
    that build attribute lists must guard themselves:

    {[
      if !Obs.enabled then
        Obs.event ~attrs:[ ("host", string_of_int h) ] "ctl.blacklist_push"
    ]}

    Metric objects ({!counter}, {!gauge}, {!histogram}) are created once at
    the instrumentation site (typically at module initialisation) and are
    cheap mutable cells afterwards; creating the same name twice returns
    the same cell. *)

val enabled : bool ref
(** Master switch, off by default. Check it once per site before building
    attribute lists; the recording primitives also check it. *)

val set_clock : (unit -> float) -> unit
(** Install the virtual-clock source. {!Splay_sim.Engine.create} calls
    this, so the most recently created engine stamps the trace. *)

val now : unit -> float
(** Current virtual time as seen by the trace (0.0 before any engine
    exists). *)

val reset : unit -> unit
(** Clear the trace buffer, zero every registered metric and restart span
    numbering. Call between independent runs that must produce
    independent traces. *)

(** {1 Spans}

    A span is a named interval of virtual time with string attributes.
    Spans are identified by small integers; {!null_span} is the disabled
    sentinel, so starting a span while disabled allocates nothing. *)

type span = private int

val null_span : span

val span : ?attrs:(string * string) list -> string -> span
(** Begin a span at the current virtual instant. Returns {!null_span}
    (and records nothing) when disabled. *)

val finish : ?attrs:(string * string) list -> span -> unit
(** End a span; extra attributes (e.g. the outcome) are attached to the
    end record. Finishing {!null_span} is a no-op. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] wraps [f ()] in a span, finishing it even on
    exception (the end record then carries [("outcome", "exn")]). *)

val event : ?attrs:(string * string) list -> string -> unit
(** Record an instantaneous point event. *)

val span_count : unit -> int
(** Number of spans started since the last {!reset} (tests use this to
    assert the disabled mode records nothing). *)

(** {1 Metrics} *)

type counter

val counter : string -> counter
(** Find-or-create a monotonic integer counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : string -> gauge
(** Find-or-create a last-value gauge; the high-water mark is kept too. *)

val gauge_set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_max : gauge -> float

type histogram

val histogram : string -> histogram
(** Find-or-create a histogram summarised as count / sum / min / max. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_mean : histogram -> float

(** {1 Output} *)

val trace_jsonl : unit -> string
(** The trace so far, one JSON object per line, in record order:
    [{"t":…,"ev":"B"|"E"|"P",…}] for span-begin, span-end and point
    events. Deterministic under a fixed seed. *)

val metrics_jsonl : unit -> string
(** Every registered metric with a non-default value, one JSON object per
    line, sorted by metric name (so output never depends on hash order). *)

val dump_jsonl : path:string -> unit -> unit
(** Write {!trace_jsonl} followed by {!metrics_jsonl} to [path]. *)

val report : unit -> unit
(** Render a summary of all touched metrics as {!Splay_stats.Report}
    tables on stdout. *)
