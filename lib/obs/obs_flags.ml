let summary = ref false
let trace_path : string option ref = ref None
let critical_path = ref false

let with_prefix prefix a =
  let np = String.length prefix in
  if String.length a > np && String.sub a 0 np = prefix then
    Some (String.sub a np (String.length a - np))
  else None

let parse_arg a =
  if a = "--obs" then begin
    summary := true;
    true
  end
  else if a = "--critical-path" then begin
    critical_path := true;
    true
  end
  else
    match with_prefix "--obs-trace=" a with
    | Some path ->
        trace_path := Some path;
        true
    | None -> false

let active () = !summary || !trace_path <> None

let arm () =
  if active () then begin
    Obs.reset ();
    Obs.enabled := true
  end

let finish () =
  if not !Obs.enabled then true
  else begin
    let ok =
      match !trace_path with
      | None -> true
      | Some path -> (
          match Obs.dump_jsonl ~path () with
          | () ->
              Printf.printf "  obs: wrote JSONL trace to %s (%d spans)\n" path
                (Obs.span_count ());
              if !critical_path then
                Trace_analysis.print_critical_path (Trace_analysis.load (Obs.trace_jsonl ()));
              true
          | exception Sys_error e ->
              Printf.eprintf "  obs: trace dump failed: %s\n" e;
              false)
    in
    if !summary then Obs.report ();
    Obs.enabled := false;
    Obs.reset ();
    ok
  end
