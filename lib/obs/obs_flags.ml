let summary = ref false
let trace_path : string option ref = ref None
let critical_path = ref false
let metrics_path : string option ref = ref None
let metrics_window : float option ref = ref None
let obs_trace_cap : int option ref = ref None

let with_prefix prefix a =
  let np = String.length prefix in
  if String.length a > np && String.sub a 0 np = prefix then
    Some (String.sub a np (String.length a - np))
  else None

let bad flag what v =
  Printf.eprintf "error: %s expects %s, got %S\n" flag what v;
  exit 2

let parse_arg a =
  if a = "--obs" then begin
    summary := true;
    true
  end
  else if a = "--critical-path" then begin
    critical_path := true;
    true
  end
  else
    match with_prefix "--obs-trace=" a with
    | Some path ->
        trace_path := Some path;
        true
    | None -> (
        match with_prefix "--metrics-out=" a with
        | Some path ->
            metrics_path := Some path;
            true
        | None -> (
            match with_prefix "--metrics-window=" a with
            | Some v ->
                (match float_of_string_opt v with
                | Some w when w > 0.0 && Float.is_finite w -> metrics_window := Some w
                | _ -> bad "--metrics-window" "a positive number of virtual seconds" v);
                true
            | None -> (
                match with_prefix "--obs-trace-cap=" a with
                | Some v ->
                    (match int_of_string_opt v with
                    | Some n when n >= 0 -> obs_trace_cap := Some n
                    | _ -> bad "--obs-trace-cap" "a non-negative record count" v);
                    true
                | None -> false)))

let trace_active () = !summary || !trace_path <> None
let active () = trace_active () || !metrics_path <> None

let arm () =
  if active () then begin
    Obs.reset ();
    (match !metrics_window with Some w -> Obs.Rollup.set_window w | None -> ());
    (match !obs_trace_cap with Some n -> Obs.set_trace_cap n | None -> ());
    Obs.enabled := trace_active ();
    Obs.metrics_enabled := !metrics_path <> None
  end

let finish () =
  if not (!Obs.enabled || !Obs.metrics_enabled) then true
  else begin
    let ok =
      match !trace_path with
      | None -> true
      | Some path -> (
          match Obs.dump_jsonl ~path () with
          | () ->
              Printf.printf "  obs: wrote JSONL trace to %s (%d spans)\n" path
                (Obs.span_count ());
              if !critical_path then
                Trace_analysis.print_critical_path (Trace_analysis.load (Obs.trace_jsonl ()));
              true
          | exception Sys_error e ->
              Printf.eprintf "  obs: trace dump failed: %s\n" e;
              false)
    in
    let ok =
      match !metrics_path with
      | None -> ok
      | Some path -> (
          match Obs.dump_metrics ~path () with
          | () ->
              Printf.printf "  obs: wrote metrics rollups to %s (window %gs)\n" path
                (Obs.Rollup.window ());
              ok
          | exception Sys_error e ->
              Printf.eprintf "  obs: metrics dump failed: %s\n" e;
              false)
    in
    let dropped = Obs.trace_dropped () in
    if dropped > 0 then
      Printf.eprintf
        "  obs: warning: trace buffer capped, %d record%s dropped (raise --obs-trace-cap or lower the workload)\n"
        dropped
        (if dropped = 1 then "" else "s");
    if !summary then Obs.report ();
    Obs.enabled := false;
    Obs.metrics_enabled := false;
    Obs.set_trace_cap 0;
    Obs.reset ();
    ok
  end
