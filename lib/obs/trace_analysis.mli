(** Offline analysis of {!Obs} JSONL traces.

    Loads a trace dump (the [B]/[E]/[P] records of {!Obs.trace_jsonl},
    possibly interleaved with [L] log records and metric lines, which are
    counted and skipped respectively), reconstructs the causal span DAG
    from the [sid]/[pid] links, and computes the queries a deployer asks of
    a distributed run: where did the time go ({!critical_path}), per-hop
    latency ({!print_critical_path}), and per-name / per-RPC summaries
    ({!print_summary}).

    The loader is deliberately tolerant: unknown record kinds and metric
    lines are skipped, an [E] without a matching [B] is ignored, and spans
    never closed (crashed nodes) are clamped to the last timestamp seen. *)

type span = {
  sid : int;
  tid : int;  (** trace (causal tree) the span belongs to *)
  pid : int;  (** parent [sid]; 0 for roots *)
  name : string;
  start : float;
  mutable stop : float;
  mutable closed : bool;  (** false if no [E] record was found *)
  mutable attrs : (string * string) list;
      (** begin-record attributes, then finish-record attributes *)
  mutable children : span list;  (** in begin order *)
}

type pevent = {
  ev_time : float;
  ev_tid : int;
  ev_pid : int;  (** enclosing span's [sid]; 0 if none *)
  ev_name : string;
  ev_attrs : (string * string) list;
}

type t = {
  spans : span list;  (** in begin order *)
  events : pevent list;  (** in emission order *)
  by_sid : (int, span) Hashtbl.t;
  roots : span list;  (** [pid = 0], or parent absent from the dump *)
  logs : int;  (** [ev:"L"] records seen (collected node logs) *)
}

(** {1 Line parser}

    The writers emit flat one-line JSON objects whose values are strings
    or numbers — no nesting, no arrays. The hand-rolled parser for exactly
    that shape is shared with {!Metrics_analysis}. *)

exception Bad_line of string

val parse_line : string -> (string * string) list
(** Key/value pairs of one record, in field order; string values are
    unescaped, numeric values kept as raw text. Raises {!Bad_line} on
    malformed input. *)

val field : (string * string) list -> string -> string option
val int_field : (string * string) list -> string -> int option
val float_field : (string * string) list -> string -> float option

val load : string -> t
(** Parse a JSONL trace from a string, one record per line. *)

val load_file : string -> t
(** {!load} on a file's contents. Raises [Sys_error] as [open_in] does. *)

val duration : span -> float

val attr : span -> string -> string option
(** First binding of an attribute key (begin attrs shadow finish attrs). *)

val node_of : span -> string
(** Best-effort placement of a span: its ["node"] attribute, else ["src"],
    else ["dst"], else ["-"]. *)

val critical_path : span -> span list
(** The chain from [root] downwards obtained by always descending into the
    child that {e finishes} last — the path that determined the root's end
    time. Ties go to the later sibling (begin order). Head is the root. *)

val self_times : span list -> (span * float) list
(** For a {!critical_path}, each hop paired with its self time: its
    duration minus the next hop's (the last hop keeps its full duration).
    This is the per-hop latency breakdown — where on the path the time was
    actually spent. *)

val slowest_root : ?name:string -> t -> span option
(** The longest-duration root span; with [name], the longest root (or
    non-root) span so named. Without [name], roots named ["rpc.call"] are
    preferred over infrastructure roots when any exist. *)

val print_summary : t -> unit
(** Per-name span table (count / total / mean / max duration), per-RPC
    table (calls grouped by ["proc"], with outcome counts), trace totals. *)

val print_critical_path : ?root:span -> t -> unit
(** Per-hop latency breakdown along the {!critical_path} from [root]
    (default {!slowest_root}): name, node, start, duration, self time. *)
