module Report = Splay_stats.Report

type span = {
  sid : int;
  tid : int;
  pid : int;
  name : string;
  start : float;
  mutable stop : float;
  mutable closed : bool;
  mutable attrs : (string * string) list;
  mutable children : span list;
}

type pevent = {
  ev_time : float;
  ev_tid : int;
  ev_pid : int;
  ev_name : string;
  ev_attrs : (string * string) list;
}

type t = {
  spans : span list;
  events : pevent list;
  by_sid : (int, span) Hashtbl.t;
  roots : span list;
  logs : int;
}

(* {1 Line parser}

   The trace writer emits flat one-line JSON objects whose values are
   strings or numbers — no nesting, no arrays. A hand-rolled parser for
   exactly that shape keeps the analyzer dependency-free. String values are
   unescaped; numeric values are kept as their raw text (converted on
   demand). *)

exception Bad_line of string

let fail msg = raise (Bad_line msg)

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else '\000' in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c at %d" c !pos);
    advance ()
  in
  let skip_ws () =
    while !pos < n && (peek () = ' ' || peek () = '\t') do
      advance ()
    done
  in
  let add_utf8 b u =
    (* good enough for the writer's output, which only escapes controls *)
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = peek () in
      advance ();
      if c = '"' then Buffer.contents b
      else if c <> '\\' then begin
        Buffer.add_char b c;
        go ()
      end
      else begin
        (if !pos >= n then fail "dangling escape");
        let e = peek () in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub line !pos 4 in
            pos := !pos + 4;
            add_utf8 b (int_of_string ("0x" ^ hex))
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      end
    in
    go ()
  in
  let parse_raw () =
    (* number / true / false / null: everything up to ',' or '}' *)
    let start = !pos in
    while !pos < n && peek () <> ',' && peek () <> '}' do
      advance ()
    done;
    String.trim (String.sub line start (!pos - start))
  in
  skip_ws ();
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then []
  else begin
    let rec members () =
      skip_ws ();
      let k = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      let v = if peek () = '"' then parse_string () else parse_raw () in
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' ->
          advance ();
          members ()
      | '}' -> ()
      | _ -> fail "expected , or }"
    in
    members ();
    List.rev !fields
  end

let field fields k = List.assoc_opt k fields
let int_field fields k = Option.bind (field fields k) int_of_string_opt
let float_field fields k = Option.bind (field fields k) float_of_string_opt

(* Attribute keys are whatever is left after the fixed schema fields. *)
let schema_keys = [ "t"; "ev"; "sid"; "tid"; "pid"; "name" ]
let attrs_of fields = List.filter (fun (k, _) -> not (List.mem k schema_keys)) fields

let load text =
  let spans_rev = ref [] in
  let events_rev = ref [] in
  let by_sid = Hashtbl.create 256 in
  let logs = ref 0 in
  let last_t = ref 0.0 in
  let handle line =
    if String.length (String.trim line) = 0 then ()
    else
      match parse_line line with
      | exception Bad_line _ -> () (* foreign line: skip *)
      | fields -> (
          (match float_field fields "t" with
          | Some t when t > !last_t -> last_t := t
          | _ -> ());
          match field fields "ev" with
          | None -> () (* metrics line *)
          | Some "B" -> (
              match (int_field fields "sid", float_field fields "t") with
              | Some sid, Some t ->
                  let sp =
                    {
                      sid;
                      tid = Option.value ~default:0 (int_field fields "tid");
                      pid = Option.value ~default:0 (int_field fields "pid");
                      name = Option.value ~default:"?" (field fields "name");
                      start = t;
                      stop = t;
                      closed = false;
                      attrs = attrs_of fields;
                      children = [];
                    }
                  in
                  Hashtbl.replace by_sid sid sp;
                  spans_rev := sp :: !spans_rev
              | _ -> ())
          | Some "E" -> (
              match (int_field fields "sid", float_field fields "t") with
              | Some sid, Some t -> (
                  match Hashtbl.find_opt by_sid sid with
                  | None -> () (* orphan end: span began before the dump *)
                  | Some sp ->
                      sp.stop <- t;
                      sp.closed <- true;
                      sp.attrs <- sp.attrs @ attrs_of fields)
              | _ -> ())
          | Some "P" ->
              events_rev :=
                {
                  ev_time = Option.value ~default:0.0 (float_field fields "t");
                  ev_tid = Option.value ~default:0 (int_field fields "tid");
                  ev_pid = Option.value ~default:0 (int_field fields "pid");
                  ev_name = Option.value ~default:"?" (field fields "name");
                  ev_attrs = attrs_of fields;
                }
                :: !events_rev
          | Some "L" -> incr logs
          | Some _ -> ())
  in
  String.split_on_char '\n' text |> List.iter handle;
  let spans = List.rev !spans_rev in
  (* clamp never-closed spans (crashed or still-running processes) *)
  List.iter (fun sp -> if not sp.closed then sp.stop <- max sp.start !last_t) spans;
  let roots = ref [] in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt by_sid sp.pid with
      | Some parent when sp.pid <> 0 -> parent.children <- parent.children @ [ sp ]
      | _ -> roots := sp :: !roots)
    spans;
  {
    spans;
    events = List.rev !events_rev;
    by_sid;
    roots = List.rev !roots;
    logs = !logs;
  }

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      load (really_input_string ic len))

(* {1 Queries} *)

let duration sp = sp.stop -. sp.start
let attr sp k = List.assoc_opt k sp.attrs

let node_of sp =
  match attr sp "node" with
  | Some v -> v
  | None -> (
      match attr sp "src" with
      | Some v -> v
      | None -> ( match attr sp "dst" with Some v -> v | None -> "-"))

(* The child that finishes last determined when its parent could finish:
   follow it recursively. [>=] sends ties to the later sibling — the one
   whose work actually abutted the parent's end. *)
let critical_path root =
  let rec go sp acc =
    match sp.children with
    | [] -> List.rev (sp :: acc)
    | cs ->
        let latest =
          List.fold_left (fun best c -> if c.stop >= best.stop then c else best) (List.hd cs) cs
        in
        go latest (sp :: acc)
  in
  go root []

let self_times path =
  let rec go = function
    | [] -> []
    | [ sp ] -> [ (sp, duration sp) ]
    | sp :: (next :: _ as rest) -> (sp, duration sp -. duration next) :: go rest
  in
  go path

let slowest ~than cands =
  List.fold_left
    (fun best sp ->
      match best with Some b when duration b >= duration sp -> best | _ -> Some sp)
    than cands

let slowest_root ?name t =
  match name with
  | Some nm -> slowest ~than:None (List.filter (fun sp -> sp.name = nm) t.spans)
  | None -> (
      match slowest ~than:None (List.filter (fun sp -> sp.name = "rpc.call") t.roots) with
      | Some _ as r -> r
      | None -> slowest ~than:None t.roots)

(* {1 Reports} *)

let fcell v = Report.float_cell ~decimals:6 v

let print_summary t =
  Report.section "Trace summary";
  Report.kvf "spans" "%d" (List.length t.spans);
  Report.kvf "roots" "%d" (List.length t.roots);
  Report.kvf "events" "%d" (List.length t.events);
  if t.logs > 0 then Report.kvf "log records" "%d" t.logs;
  let unclosed = List.length (List.filter (fun sp -> not sp.closed) t.spans) in
  if unclosed > 0 then Report.kvf "unclosed spans" "%d" unclosed;
  (* per-name rollup, alphabetical for stable output *)
  let groups : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let count, total, mx =
        match Hashtbl.find_opt groups sp.name with
        | Some g -> g
        | None ->
            let g = (ref 0, ref 0.0, ref 0.0) in
            Hashtbl.replace groups sp.name g;
            g
      in
      incr count;
      total := !total +. duration sp;
      if duration sp > !mx then mx := duration sp)
    t.spans;
  let rows =
    Hashtbl.fold (fun name (c, tot, mx) acc -> (name, !c, !tot, !mx) :: acc) groups []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)
  in
  if rows <> [] then
    Report.table
      ~header:[ "span"; "count"; "total_s"; "mean_s"; "max_s" ]
      (List.map
         (fun (name, c, tot, mx) ->
           [ name; string_of_int c; fcell tot; fcell (tot /. Float.of_int c); fcell mx ])
         rows);
  (* per-RPC table: calls grouped by procedure, with outcome counts *)
  let calls = List.filter (fun sp -> sp.name = "rpc.call") t.spans in
  if calls <> [] then begin
    let procs : (string, span list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun sp ->
        let proc = Option.value ~default:"?" (attr sp "proc") in
        match Hashtbl.find_opt procs proc with
        | Some l -> l := sp :: !l
        | None -> Hashtbl.replace procs proc (ref [ sp ]))
      calls;
    let rows =
      Hashtbl.fold (fun proc sps acc -> (proc, !sps) :: acc) procs []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Report.table
      ~header:[ "rpc"; "calls"; "ok"; "errors"; "mean_s"; "max_s" ]
      (List.map
         (fun (proc, sps) ->
           let n = List.length sps in
           let ok =
             List.length (List.filter (fun sp -> attr sp "outcome" = Some "ok") sps)
           in
           let tot = List.fold_left (fun a sp -> a +. duration sp) 0.0 sps in
           let mx = List.fold_left (fun a sp -> Float.max a (duration sp)) 0.0 sps in
           [
             proc;
             string_of_int n;
             string_of_int ok;
             string_of_int (n - ok);
             fcell (tot /. Float.of_int n);
             fcell mx;
           ])
         rows)
  end

let print_critical_path ?root t =
  match (match root with Some _ as r -> r | None -> slowest_root t) with
  | None -> Report.kv "critical path" "(no spans in trace)"
  | Some root ->
      Report.section
        (Printf.sprintf "Critical path of %s (sid %d, %.6f s)" root.name root.sid
           (duration root));
      let path = critical_path root in
      let hops = self_times path in
      Report.table
        ~header:[ "hop"; "span"; "node"; "start_s"; "duration_s"; "self_s" ]
        (List.mapi
           (fun i (sp, self) ->
             [ string_of_int i; sp.name; node_of sp; fcell sp.start; fcell (duration sp); fcell self ])
           hops);
      Report.kvf "hops" "%d" (List.length hops)
