(* Offline analysis of the metrics-plane dump ([splay-metrics/1] JSONL):
   the consumer behind [splay top]. Reuses Trace_analysis's flat-JSON line
   parser; rows are kept as raw field lists so the loader never chokes on
   fields added by a newer writer. *)

type row = {
  r_metric : string;
  r_kind : string; (* "counter" | "gauge" | "hist" | "note" *)
  r_w : int; (* window index; -1 = whole-run cumulative *)
  r_fields : (string * string) list;
}

type t = {
  window : float; (* window width in virtual seconds *)
  rows : row list; (* file order *)
  windows : int list; (* distinct w >= 0, ascending *)
}

let field r k = Trace_analysis.field r.r_fields k
let float_field r k = Trace_analysis.float_field r.r_fields k
let int_field r k = Trace_analysis.int_field r.r_fields k

let load text =
  let window = ref 10.0 in
  let rows = ref [] in
  let wset = Hashtbl.create 16 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match Trace_analysis.parse_line line with
           | exception Trace_analysis.Bad_line _ -> ()
           | fields -> (
               match Trace_analysis.field fields "schema" with
               | Some _ -> (
                   match Trace_analysis.float_field fields "window" with
                   | Some w when w > 0.0 -> window := w
                   | _ -> ())
               | None -> (
                   match (Trace_analysis.field fields "m", Trace_analysis.field fields "kind") with
                   | Some m, Some kind ->
                       let w =
                         Option.value ~default:(-1) (Trace_analysis.int_field fields "w")
                       in
                       if w >= 0 then Hashtbl.replace wset w ();
                       rows := { r_metric = m; r_kind = kind; r_w = w; r_fields = fields } :: !rows
                   | _ -> ())));
  let windows = List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) wset []) in
  { window = !window; rows = List.rev !rows; windows }

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load (really_input_string ic (in_channel_length ic)))

(* {1 Aggregation}

   A multi-trial dump splices each trial's windows in trial order, so one
   (window, metric) pair can appear several times. Counters add; gauges
   keep the last row's value and the max of maxes; histograms add
   n/sum and merge min/max, and — the bucket tables having been rendered
   away — combine quantiles as an n-weighted mean, which is exact for one
   row and a reasonable cross-trial summary otherwise. *)

let rows_of t ~w metric =
  List.filter (fun r -> r.r_w = w && r.r_metric = metric && r.r_kind <> "note") t.rows

let counter_n rows = List.fold_left (fun acc r -> acc + Option.value ~default:0 (int_field r "n")) 0 rows

type hist_agg = { ha_n : int; ha_sum : float; ha_min : float; ha_max : float; ha_q : float -> float }

let hist_agg rows =
  let n = ref 0 and sum = ref 0.0 and mn = ref infinity and mx = ref neg_infinity in
  let wq = Hashtbl.create 4 in
  List.iter
    (fun r ->
      let rn = Option.value ~default:0 (int_field r "n") in
      n := !n + rn;
      sum := !sum +. Option.value ~default:0.0 (float_field r "sum");
      (match float_field r "min" with Some v when v < !mn -> mn := v | _ -> ());
      (match float_field r "max" with Some v when v > !mx -> mx := v | _ -> ());
      List.iter
        (fun key ->
          match float_field r key with
          | Some v ->
              let tn, tv = Option.value ~default:(0, 0.0) (Hashtbl.find_opt wq key) in
              Hashtbl.replace wq key (tn + rn, tv +. (Float.of_int rn *. v))
          | None -> ())
        [ "p50"; "p90"; "p99"; "p999" ])
    rows;
  let q p =
    let key = if p = 0.5 then "p50" else if p = 0.9 then "p90" else if p = 0.99 then "p99" else "p999" in
    match Hashtbl.find_opt wq key with
    | Some (tn, tv) when tn > 0 -> tv /. Float.of_int tn
    | _ -> nan
  in
  { ha_n = !n; ha_sum = !sum; ha_min = !mn; ha_max = !mx; ha_q = q }

(* SLO violation rate: the share of a histogram's observations above a
   threshold, reconstructed from the rendered quantiles. The bucket
   tables are gone by dump time, so the CDF is interpolated piecewise-
   linearly through (min,0) (p50,.5) (p90,.9) (p99,.99) (p999,.999)
   (max,1) — exact at the recorded points, linear between them, which is
   as much fidelity as a merged sketch row can support. *)
let violation_rate h ~threshold =
  if h.ha_n = 0 then nan
  else
    let raw =
      List.filter
        (fun (x, _) -> Float.is_finite x)
        [
          (h.ha_min, 0.0);
          (h.ha_q 0.5, 0.5);
          (h.ha_q 0.9, 0.9);
          (h.ha_q 0.99, 0.99);
          (h.ha_q 0.999, 0.999);
          (h.ha_max, 1.0);
        ]
    in
    match raw with
    | [] -> nan
    | (x0, p0) :: rest ->
        (* n-weighted quantile merging can cross neighbouring estimates
           by epsilon; clamp the x axis monotone before interpolating *)
        let pts =
          List.rev
            (List.fold_left
               (fun acc (x, p) ->
                 match acc with (px, _) :: _ -> (Float.max x px, p) :: acc | [] -> [ (x, p) ])
               [ (x0, p0) ] rest)
        in
        let rec cdf = function
          | [] -> 1.0
          | [ (x, p) ] -> if threshold >= x then 1.0 else p
          | (x1, p1) :: ((x2, p2) :: _ as tl) ->
              if threshold < x1 then 0.0
              else if threshold >= x2 then cdf tl
              else if x2 <= x1 then p2
              else p1 +. ((p2 -. p1) *. (threshold -. x1) /. (x2 -. x1))
        in
        1.0 -. cdf pts

let metrics_of_kind t kind =
  List.sort_uniq compare
    (List.filter_map (fun r -> if r.r_kind = kind && r.r_w >= 0 then Some r.r_metric else None) t.rows)

let series_count t =
  List.length (List.sort_uniq compare (List.map (fun r -> (r.r_metric, r.r_kind)) t.rows))

(* {1 Dashboard} *)

let cell_f v = if Float.is_nan v then "-" else Printf.sprintf "%.6f" v

let rate_cell t rows =
  let n = counter_n rows in
  if rows = [] then "-" else Printf.sprintf "%.1f" (Float.of_int n /. t.window)

(* The percentile columns track one histogram metric: [metric] if given,
   else rpc.latency when present, else the first histogram with windowed
   rows. *)
let pick_hist t = function
  | Some m -> m
  | None -> (
      let hists = metrics_of_kind t "hist" in
      if List.mem "rpc.latency" hists then "rpc.latency"
      else match hists with m :: _ -> m | [] -> "rpc.latency")

let render ?metric ?(k = 5) ?slo t =
  let b = Buffer.create 4096 in
  let hist = pick_hist t metric in
  let span_hi =
    match List.rev t.windows with [] -> 0.0 | w :: _ -> Float.of_int (w + 1) *. t.window
  in
  Printf.bprintf b "window %gs · %d windows · %d series · virtual span [0, %g)s\n" t.window
    (List.length t.windows) (series_count t) span_hi;
  Printf.bprintf b "percentile columns: %s\n" hist;
  (match slo with
  | Some (m, thr) -> Printf.bprintf b "slo column: share of %s observations over %g\n" m thr
  | None -> ());
  Buffer.add_char b '\n';
  let viol_cell rows thr =
    let h = hist_agg rows in
    let v = violation_rate h ~threshold:thr in
    if Float.is_nan v then "-" else Printf.sprintf "%.2f%%" (100.0 *. v)
  in
  Printf.bprintf b "  %3s %10s %12s %12s %12s %10s %12s %12s %12s%s\n" "w" "t0" "msgs/s" "rpc/s"
    "events/s" "drops/s" "p50" "p99" "p999"
    (match slo with Some _ -> Printf.sprintf " %9s" "slo-viol" | None -> "");
  List.iter
    (fun w ->
      let c name = rate_cell t (rows_of t ~w name) in
      let h = hist_agg (rows_of t ~w hist) in
      Printf.bprintf b "  %3d %10.1f %12s %12s %12s %10s %12s %12s %12s%s\n" w
        (Float.of_int w *. t.window)
        (c "net.msgs_sent") (c "rpc.calls") (c "engine.events") (c "net.dropped")
        (cell_f (h.ha_q 0.5)) (cell_f (h.ha_q 0.99)) (cell_f (h.ha_q 0.999))
        (match slo with
        | Some (m, thr) -> Printf.sprintf " %9s" (viol_cell (rows_of t ~w m) thr)
        | None -> ""))
    t.windows;
  (match slo with
  | Some (m, thr) ->
      let cum = List.filter (fun r -> r.r_w = -1 && r.r_metric = m && r.r_kind = "hist") t.rows in
      let h = hist_agg cum in
      if h.ha_n > 0 then
        Printf.bprintf b "\nslo: %s over %g → %s of %d observations whole-run\n" m thr
          (let v = violation_rate h ~threshold:thr in
           if Float.is_nan v then "-" else Printf.sprintf "%.2f%%" (100.0 *. v))
          h.ha_n
  | None -> ());
  let cum = List.filter (fun r -> r.r_w = -1 && r.r_kind = "hist") t.rows in
  if cum <> [] then begin
    Printf.bprintf b "\ncumulative histograms\n";
    List.iter
      (fun m ->
        let h = hist_agg (List.filter (fun r -> r.r_metric = m) cum) in
        if h.ha_n > 0 then
          Printf.bprintf b "  %-24s n=%-9d mean=%s min=%s max=%s p50=%s p99=%s p999=%s\n" m h.ha_n
            (cell_f (h.ha_sum /. Float.of_int h.ha_n))
            (cell_f h.ha_min) (cell_f h.ha_max) (cell_f (h.ha_q 0.5)) (cell_f (h.ha_q 0.99))
            (cell_f (h.ha_q 0.999)))
      (List.sort_uniq compare (List.map (fun r -> r.r_metric) cum))
  end;
  let notes = List.filter (fun r -> r.r_kind = "note") t.rows in
  if notes <> [] then begin
    Printf.bprintf b "\nstatus rows (last %d)\n" k;
    let last =
      let rev = List.rev notes in
      let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
      List.rev (take k rev)
    in
    List.iter
      (fun r ->
        Printf.bprintf b "  w=%-3d %s" r.r_w r.r_metric;
        List.iter
          (fun (key, v) ->
            if key <> "m" && key <> "kind" && key <> "w" then Printf.bprintf b " %s=%s" key v)
          r.r_fields;
        Buffer.add_char b '\n')
      last
  end;
  Buffer.contents b

let print_top ?metric ?k ?slo t = print_string (render ?metric ?k ?slo t)

(* {1 Prometheus text exposition}

   Cumulative rows only — the exposition format is a point-in-time
   scrape, and the whole-run totals are the natural values to expose.
   Histograms map to summaries (quantile labels + _sum/_count). *)

let prom_name m =
  let b = Buffer.create (String.length m + 6) in
  Buffer.add_string b "splay_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    m;
  Buffer.contents b

let prom_float v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let prometheus t =
  let b = Buffer.create 2048 in
  let cum = List.filter (fun r -> r.r_w = -1) t.rows in
  let by_metric =
    List.sort_uniq compare (List.map (fun r -> (r.r_metric, r.r_kind)) cum)
  in
  List.iter
    (fun (m, kind) ->
      let rows = List.filter (fun r -> r.r_metric = m && r.r_kind = kind) cum in
      let name = prom_name m in
      match kind with
      | "counter" ->
          Printf.bprintf b "# TYPE %s counter\n%s %d\n" name name (counter_n rows)
      | "gauge" ->
          let last =
            match List.rev rows with
            | r :: _ -> Option.value ~default:0.0 (float_field r "last")
            | [] -> 0.0
          in
          Printf.bprintf b "# TYPE %s gauge\n%s %s\n" name name (prom_float last)
      | "hist" ->
          let h = hist_agg rows in
          Printf.bprintf b "# TYPE %s summary\n" name;
          List.iter
            (fun (q, label) ->
              let v = h.ha_q q in
              if not (Float.is_nan v) then
                Printf.bprintf b "%s{quantile=\"%s\"} %s\n" name label (prom_float v))
            [ (0.5, "0.5"); (0.9, "0.9"); (0.99, "0.99"); (0.999, "0.999") ];
          Printf.bprintf b "%s_sum %s\n%s_count %d\n" name (prom_float h.ha_sum) name h.ha_n
      | _ -> ())
    by_metric;
  Buffer.contents b
