module Report = Splay_stats.Report

(* The master switch stays a plain process-global flag: it is only ever
   toggled by a front end (Obs_flags) outside parallel sections, and
   worker domains are spawned after it is set, so every domain observes a
   stable value. Everything that *mutates* during a run — clock, trace
   buffer, span/trace counters, current context, metric cells — lives in
   domain-local storage so independent trials on different domains never
   share a mutable word. *)
let enabled = ref false

(* Second plane: windowed metrics rollups. Independent of [enabled] — a
   million-node run can keep bounded-memory percentile telemetry without
   paying for (or storing) a trace. Same toggling discipline as [enabled]:
   flip only outside parallel sections. *)
let metrics_enabled = ref false

(* Trace-buffer bound (records, 0 = unlimited). A config knob like the
   flags above, not per-domain state: every captured trial gets the same
   budget. Records past the cap are counted, not stored, so a traced
   100k-node run degrades gracefully instead of growing without bound. *)
let trace_cap = ref 0
let set_trace_cap n = trace_cap := max 0 n

(* Rollup window width in virtual seconds; applies to every domain. *)
let rollup_window = ref 10.0

(* {1 Rollup bucket scheme}

   HDR-style log-linear buckets: 8 linear sub-buckets per power of two,
   so any positive sample lands in a bucket whose bounds are within
   1/16th of each other — a fixed ~6% worst-case relative error on
   reported quantiles, from a fixed 513-slot table (~4 KB per touched
   histogram per window) no matter how many samples stream through.
   frexp gives the octave exactly; exponents outside [-19, 44]
   (≈ 9.5e-7 .. 1.8e13 — far beyond any virtual duration, byte count or
   queue depth we record) clamp to the end buckets. Bucket 0 is reserved
   for zero/negative samples, which simulated same-instant waits produce
   in bulk. *)

let sub_buckets = 8
let e_min = -19
let e_max = 44
let n_buckets = 1 + ((e_max - e_min + 1) * sub_buckets)

(* Exactly frexp's octave and sub-bucket, read straight from the IEEE 754
   fields (no tuple allocation on the hot path): for a normal double,
   frexp's e is the raw exponent - 1022, and the linear sub-bucket — the
   first [log2 sub_buckets] bits of frexp's fraction past 0.5 — is the
   mantissa's top three bits. Subnormals read e = -1022 and clamp below
   [e_min] like frexp's would. *)
let bucket_index v =
  if v <= 0.0 then 0
  else begin
    let bits = Int64.to_int (Int64.bits_of_float v) in
    let e = ((bits lsr 52) land 0x7ff) - 1022 in
    if e < e_min then 1
    else if e > e_max then n_buckets - 1
    else 1 + ((e - e_min) * sub_buckets) + ((bits lsr 49) land 0x7)
  end

(* Midpoint of a bucket's bounds: the representative a quantile reports. *)
let bucket_mid i =
  if i = 0 then 0.0
  else begin
    let k = i - 1 in
    let e = (k / sub_buckets) + e_min and j = k mod sub_buckets in
    let lo = Float.ldexp (0.5 +. (Float.of_int j /. Float.of_int (2 * sub_buckets))) e in
    let hi = Float.ldexp (0.5 +. (Float.of_int (j + 1) /. Float.of_int (2 * sub_buckets))) e in
    0.5 *. (lo +. hi)
  end

(* q-quantile by cumulative walk; the exact min/max clamp the end buckets
   so p0/p100 are exact and a one-sample histogram reports that sample's
   bucket, never a bound outside the observed range. *)
let bucket_quantile ~n ~bmin ~bmax buckets q =
  if n = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. Float.of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let i = ref 0 and cum = ref 0 in
    let len = Array.length buckets in
    while !cum < rank && !i < len do
      cum := !cum + buckets.(!i);
      incr i
    done;
    let v = bucket_mid (!i - 1) in
    if v < bmin then bmin else if v > bmax then bmax else v
  end

(* {1 Trace context}

   The ambient (trace, span) position in the causal DAG. [cur] holds an
   immutable record so capturing it (the engine does, at every schedule and
   suspension) is a load — nothing is allocated on the disabled path. *)

type ctx = { tid : int; sid : int }

let null_ctx = { tid = 0; sid = 0 }

(* {1 Metric handles}

   A handle is an immutable name + slot index, created once at an
   instrumentation site (typically module initialisation on the main
   domain, but registration is mutex-guarded so a worker-domain first use
   is safe too). The mutable cell behind a handle is per-domain, found by
   indexing the domain state's cell array with the handle's id. *)

type kind = Counter | Gauge | Hist

type handle = { h_id : int; h_kind : kind; h_metric : string }
type counter = handle
type gauge = handle
type histogram = handle

let reg_mu = Mutex.create ()
let reg_by_name : (string, handle) Hashtbl.t = Hashtbl.create 64
let reg_all : handle array ref = ref [||]

let register kind name =
  let key = (match kind with Counter -> "c:" | Gauge -> "g:" | Hist -> "h:") ^ name in
  Mutex.protect reg_mu (fun () ->
      match Hashtbl.find_opt reg_by_name key with
      | Some h -> h
      | None ->
          let h = { h_id = Array.length !reg_all; h_kind = kind; h_metric = name } in
          Hashtbl.replace reg_by_name key h;
          reg_all := Array.append !reg_all [| h |];
          h)

let registered () = Mutex.protect reg_mu (fun () -> !reg_all)

(* Scalar float aggregates (in both the cumulative cells and the window
   cells below) live in a flat float array: a mutable float field in a
   mixed int/float record boxes on every store, and [observe] /
   [wobserve_at] run once per simulated message at million-node scale —
   unboxed slots keep the metrics fast path allocation-free. *)
let f_sum = 0

let f_min = 1
let f_max = 2 (* histogram max / gauge high-water *)
let f_last = 3 (* gauge last value *)

type cell = {
  mutable cl_n : int; (* counter value / histogram count *)
  cf : float array; (* sum / min / max / last, unboxed *)
}

let cl_sum c = c.cf.(f_sum)
let cl_min c = c.cf.(f_min)
let cl_max c = c.cf.(f_max)
let cl_last c = c.cf.(f_last)
let fresh_cell () = { cl_n = 0; cf = [| 0.0; infinity; neg_infinity; 0.0 |] }

let blank_cell c =
  c.cl_n <- 0;
  c.cf.(f_sum) <- 0.0;
  c.cf.(f_min) <- infinity;
  c.cf.(f_max) <- neg_infinity;
  c.cf.(f_last) <- 0.0

(* {1 Rollup state}

   A window cell is one metric's aggregate over one virtual-time window:
   count (counter value / histogram count), sum/min/max, gauge last, and
   the log-linear bucket table — allocated lazily, so counters and gauges
   never pay for 513 slots. The ring holds the [ring_width] most recent
   windows; advancing past a window renders its touched cells to the
   domain's rollup buffer (one JSON line per metric) and recycles the
   slot. Memory is therefore O(metrics × ring_width + rendered rows),
   independent of run length only in the cell tables — the rendered rows
   grow one line per touched metric per window, which at a 10-second
   window is ~5 orders of magnitude lighter than a trace. *)

type wcell = {
  mutable w_n : int;
  wf : float array; (* sum / min / max / last, unboxed *)
  mutable w_gauge : bool; (* gauge touched this window *)
  mutable w_buckets : int array; (* [||] until the first histogram sample *)
}

let w_sum w = w.wf.(f_sum)
let w_min w = w.wf.(f_min)
let w_max w = w.wf.(f_max)
let w_last w = w.wf.(f_last)
let fresh_wcell () = { w_n = 0; wf = [| 0.0; infinity; neg_infinity; 0.0 |]; w_gauge = false; w_buckets = [||] }

let blank_wcell w =
  w.w_n <- 0;
  w.wf.(f_sum) <- 0.0;
  w.wf.(f_min) <- infinity;
  w.wf.(f_max) <- neg_infinity;
  w.wf.(f_last) <- 0.0;
  w.w_gauge <- false;
  if Array.length w.w_buckets > 0 then Array.fill w.w_buckets 0 n_buckets 0

(* [i] is [bucket_index v], computed once by callers feeding the same
   sample to both the window and the cumulative cell. *)
let wobserve_at w v i =
  w.w_n <- w.w_n + 1;
  let wf = w.wf in
  wf.(f_sum) <- wf.(f_sum) +. v;
  if v < wf.(f_min) then wf.(f_min) <- v;
  if v > wf.(f_max) then wf.(f_max) <- v;
  if Array.length w.w_buckets = 0 then w.w_buckets <- Array.make n_buckets 0;
  w.w_buckets.(i) <- w.w_buckets.(i) + 1

let ring_width = 4

type ru = {
  ru_mbuf : Buffer.t; (* rendered rows of windows already evicted *)
  ru_slots : wcell array array; (* ring_width slots, each indexed by handle id *)
  ru_wids : int array; (* window id held by each slot, -1 = empty *)
  mutable ru_cur : int; (* newest window id, -1 before the first sample *)
  mutable ru_cum : wcell array; (* run-cumulative histogram buckets, by handle id *)
}

(* {1 Domain-local state}

   One record per domain holding everything a recording site touches.
   Trials running on different domains each get their own; the pool
   captures a trial's state and merges it back in trial order
   ({!capture} / {!absorb}), keeping output independent of how trials
   were spread over domains. *)

type state = {
  mutable clock : unit -> float;
  buf : Buffer.t;
  mutable next_span : int;
  mutable next_trace : int;
  mutable spans_started : int;
  mutable cur : ctx;
  mutable cells : cell array;
  mutable ru : ru option; (* rollup plane, allocated on first metrics sample *)
  mutable trace_records : int; (* trace records written (cap accounting) *)
  mutable trace_dropped : int; (* trace records refused past the cap *)
}

let new_state () =
  {
    clock = (fun () -> 0.0);
    buf = Buffer.create 4096;
    next_span = 1;
    next_trace = 1;
    spans_started = 0;
    cur = null_ctx;
    cells = [||];
    ru = None;
    trace_records = 0;
    trace_dropped = 0;
  }

let dls : state Domain.DLS.key = Domain.DLS.new_key new_state
let st () = Domain.DLS.get dls

let cell_of s (h : handle) =
  (if h.h_id >= Array.length s.cells then
     let have = Array.length s.cells in
     let total = max (Array.length (registered ())) (h.h_id + 1) in
     s.cells <-
       Array.init total (fun i -> if i < have then s.cells.(i) else fresh_cell ()));
  s.cells.(h.h_id)

let set_clock f = (st ()).clock <- f
let now () = (st ()).clock ()

let current () = (st ()).cur
let set_current c = (st ()).cur <- c

let with_ctx c f =
  let s = st () in
  let saved = s.cur in
  s.cur <- c;
  Fun.protect ~finally:(fun () -> s.cur <- saved) f

(* A span remembers its own context (for envelopes) and the context that
   was current when it started (restored on finish, so a finished span
   stops labelling subsequent work — even when start and finish happen in
   different engine events, as with RPC call spans). *)
type span = { sp_ctx : ctx; sp_prev : ctx }

let null_span = { sp_ctx = null_ctx; sp_prev = null_ctx }
let span_ctx s = s.sp_ctx

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_attrs b attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      add_json_string b v)
    attrs

(* All times are virtual seconds; fixed-point rendering keeps the trace
   stable across printf implementations.

   The emitter runs once per span start/finish/event — the hottest write
   in a traced run — so the common case avoids printf entirely and
   produces exactly the bytes [%.6f] would. A finite positive double is
   m * 2^(ex-53) with m a 53-bit integer (frexp), so

     v * 10^6  =  m * 15625 / 2^(47-ex)

   exactly. The product m * 15625 needs 67 bits and is carried in two
   32-bit limbs; the shift rounds to nearest, ties to even, which is what
   the libc formatter does with the exact binary value. Anything a
   simulated clock never produces — negative (or -0.0), non-finite, v >=
   1e12 (where the shift count would leave the two-limb range), or
   0 < v < 1e-6 — falls back to printf. *)

let micros_of_time v =
  (* precondition: 1e-6 <= v < 1e12; then 7 <= s <= 66 *)
  let f, ex = Float.frexp v in
  let m = int_of_float (Float.ldexp f 53) in
  let s = 47 - ex in
  let mlo = m land 0xFFFFFFFF and mhi = m lsr 32 in
  let plo = mlo * 15625 and phi = mhi * 15625 in
  (* m * 15625 = hi * 2^32 + lo *)
  let lo = plo land 0xFFFFFFFF and hi = phi + (plo lsr 32) in
  if s <= 32 then begin
    let q = (hi lsl (32 - s)) lor (lo lsr s) in
    let r = lo land ((1 lsl s) - 1) in
    let half = 1 lsl (s - 1) in
    if r > half || (r = half && q land 1 = 1) then q + 1 else q
  end
  else begin
    let sh = s - 32 in
    let q = hi lsr sh in
    let rhi = hi land ((1 lsl sh) - 1) in
    let half_hi = 1 lsl (sh - 1) in
    if rhi > half_hi || (rhi = half_hi && (lo > 0 || q land 1 = 1)) then q + 1
    else q
  end

let add_time_value b v =
  if v = 0.0 && not (Float.sign_bit v) then Buffer.add_string b "0.000000"
  else if v >= 1e-6 && v < 1e12 then begin
    let n = micros_of_time v in
    let ip = n / 1_000_000 and fp = n mod 1_000_000 in
    Buffer.add_string b (string_of_int ip);
    Buffer.add_char b '.';
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 100_000));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 10_000 mod 10));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 1_000 mod 10));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 100 mod 10));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 10 mod 10));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp mod 10))
  end
  else Buffer.add_string b (Printf.sprintf "%.6f" v)

let add_time s b = add_time_value b (s.clock ())

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

(* {1 Rollup rendering}

   One JSON line per touched metric per window, written when a window is
   evicted from the ring (and for still-open windows at dump time):

     {"m":NAME,"kind":"counter","w":K,"t0":…,"t1":…,"n":N,"rate":R}
     {"m":NAME,"kind":"gauge","w":K,"t0":…,"t1":…,"last":…,"max":…}
     {"m":NAME,"kind":"hist","w":K,…,"n":…,"sum":…,"min":…,"max":…,
      "p50":…,"p90":…,"p99":…,"p999":…}

   [w] is the window index (floor(t / width)); cumulative whole-run rows
   use w = -1 and omit t0/t1. Metrics within a window are sorted by name
   (ties broken by registration id) so bytes never depend on hash or
   registration order. *)

let add_rollup_field b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":";
  Buffer.add_string b v

let add_row b ~name ~kind ~wid fields =
  Buffer.add_string b "{\"m\":";
  add_json_string b name;
  Buffer.add_string b ",\"kind\":\"";
  Buffer.add_string b kind;
  Buffer.add_string b "\",\"w\":";
  Buffer.add_string b (string_of_int wid);
  if wid >= 0 then begin
    let width = !rollup_window in
    Buffer.add_string b ",\"t0\":";
    add_time_value b (Float.of_int wid *. width);
    Buffer.add_string b ",\"t1\":";
    add_time_value b (Float.of_int (wid + 1) *. width)
  end;
  List.iter (fun (k, v) -> add_rollup_field b k v) fields;
  Buffer.add_string b "}\n"

let hist_fields ~with_quantiles (w : wcell) =
  let base =
    [
      ("n", string_of_int w.w_n);
      ("sum", fmt_float (w_sum w));
      ("min", fmt_float (w_min w));
      ("max", fmt_float (w_max w));
    ]
  in
  if not with_quantiles || Array.length w.w_buckets = 0 then base
  else
    let q p = fmt_float (bucket_quantile ~n:w.w_n ~bmin:(w_min w) ~bmax:(w_max w) w.w_buckets p) in
    base @ [ ("p50", q 0.5); ("p90", q 0.9); ("p99", q 0.99); ("p999", q 0.999) ]

let wcell_row b (h : handle) ~wid (w : wcell) =
  match h.h_kind with
  | Counter ->
      add_row b ~name:h.h_metric ~kind:"counter" ~wid
        [ ("n", string_of_int w.w_n); ("rate", fmt_float (Float.of_int w.w_n /. !rollup_window)) ]
  | Gauge ->
      add_row b ~name:h.h_metric ~kind:"gauge" ~wid
        [ ("last", fmt_float (w_last w)); ("max", fmt_float (w_max w)) ]
  | Hist -> add_row b ~name:h.h_metric ~kind:"hist" ~wid (hist_fields ~with_quantiles:true w)

let wcell_touched (h : handle) (w : wcell) =
  match h.h_kind with Counter | Hist -> w.w_n <> 0 | Gauge -> w.w_gauge

let render_slot b r slot =
  let wid = r.ru_wids.(slot) in
  let cells = r.ru_slots.(slot) in
  let all = registered () in
  let touched = ref [] in
  Array.iteri
    (fun i w -> if i < Array.length all && wcell_touched all.(i) w then touched := (all.(i), w) :: !touched)
    cells;
  let touched =
    List.sort
      (fun ((a : handle), _) (b, _) ->
        let c = String.compare a.h_metric b.h_metric in
        if c <> 0 then c else compare a.h_id b.h_id)
      !touched
  in
  List.iter (fun (h, w) -> wcell_row b h ~wid w) touched

let evict r slot =
  if r.ru_wids.(slot) >= 0 then begin
    render_slot r.ru_mbuf r slot;
    Array.iter blank_wcell r.ru_slots.(slot);
    r.ru_wids.(slot) <- -1
  end

(* Occupied slots in increasing window order — eviction and dump order. *)
let slots_in_order r =
  let occ = ref [] in
  for sl = 0 to ring_width - 1 do
    if r.ru_wids.(sl) >= 0 then occ := sl :: !occ
  done;
  List.sort (fun a b -> compare r.ru_wids.(a) r.ru_wids.(b)) !occ

(* Move the ring forward to [wid] (> ru_cur), evicting displaced windows
   oldest-first. The per-state clock is monotone, so this walks forward
   one window at a time in the steady state; an idle gap wider than the
   ring flushes everything in order and jumps. *)
let ru_advance r wid =
  if wid - r.ru_cur < ring_width && r.ru_cur >= 0 then
    for w = r.ru_cur + 1 to wid do
      evict r (w mod ring_width)
    done
  else List.iter (fun sl -> evict r sl) (slots_in_order r);
  r.ru_cur <- wid;
  r.ru_wids.(wid mod ring_width) <- wid

let get_ru s =
  match s.ru with
  | Some r -> r
  | None ->
      let r =
        {
          ru_mbuf = Buffer.create 1024;
          ru_slots = Array.init ring_width (fun _ -> [||]);
          ru_wids = Array.make ring_width (-1);
          ru_cur = -1;
          ru_cum = [||];
        }
      in
      s.ru <- Some r;
      r

let grow_wcells arr (h : handle) =
  let have = Array.length arr in
  let total = max (Array.length (registered ())) (h.h_id + 1) in
  Array.init total (fun i -> if i < have then arr.(i) else fresh_wcell ())

(* The current window's cell for [h], advancing the ring first. A clock
   reading behind the newest window (a fresh engine installed its clock on
   a state that already rolled forward) clamps to the newest window rather
   than corrupting an already-rendered one. *)
let ru_slot_cell s r (h : handle) =
  let wid0 = int_of_float (s.clock () /. !rollup_window) in
  let wid = if wid0 < r.ru_cur then r.ru_cur else wid0 in
  if wid > r.ru_cur then ru_advance r wid;
  let slot = r.ru_cur mod ring_width in
  if h.h_id >= Array.length r.ru_slots.(slot) then
    r.ru_slots.(slot) <- grow_wcells r.ru_slots.(slot) h;
  r.ru_slots.(slot).(h.h_id)

let ru_wcell s (h : handle) = ru_slot_cell s (get_ru s) h

let ru_cum_wcell r (h : handle) =
  if h.h_id >= Array.length r.ru_cum then r.ru_cum <- grow_wcells r.ru_cum h;
  r.ru_cum.(h.h_id)

(* Everything the rollup plane has produced: already-evicted rows, then
   the still-open ring windows in increasing order. Non-destructive. *)
let ru_rows r =
  let b = Buffer.create (Buffer.length r.ru_mbuf + 512) in
  Buffer.add_buffer b r.ru_mbuf;
  List.iter (fun sl -> render_slot b r sl) (slots_in_order r);
  Buffer.contents b

let span ?(attrs = []) ?parent name =
  if not !enabled then null_span
  else begin
    let s = st () in
    let parent = match parent with Some c -> c | None -> s.cur in
    let tid =
      if parent.tid <> 0 then parent.tid
      else begin
        let id = s.next_trace in
        s.next_trace <- id + 1;
        id
      end
    in
    let sid = s.next_span in
    s.next_span <- sid + 1;
    s.spans_started <- s.spans_started + 1;
    (* Past the cap the record is counted and skipped, but ids, counters
       and context advance exactly as before — the stored prefix stays
       byte-identical to an uncapped run. *)
    if !trace_cap > 0 && s.trace_records >= !trace_cap then
      s.trace_dropped <- s.trace_dropped + 1
    else begin
      s.trace_records <- s.trace_records + 1;
      let buf = s.buf in
      Buffer.add_string buf "{\"t\":";
      add_time s buf;
      Buffer.add_string buf ",\"ev\":\"B\",\"sid\":";
      Buffer.add_string buf (string_of_int sid);
      Buffer.add_string buf ",\"tid\":";
      Buffer.add_string buf (string_of_int tid);
      Buffer.add_string buf ",\"pid\":";
      Buffer.add_string buf (string_of_int parent.sid);
      Buffer.add_string buf ",\"name\":";
      add_json_string buf name;
      add_attrs buf attrs;
      Buffer.add_string buf "}\n"
    end;
    let sp = { sp_ctx = { tid; sid }; sp_prev = s.cur } in
    s.cur <- sp.sp_ctx;
    sp
  end

let finish ?(attrs = []) sp =
  if sp.sp_ctx.sid <> 0 && !enabled then begin
    let s = st () in
    if !trace_cap > 0 && s.trace_records >= !trace_cap then
      s.trace_dropped <- s.trace_dropped + 1
    else begin
      s.trace_records <- s.trace_records + 1;
      let buf = s.buf in
      Buffer.add_string buf "{\"t\":";
      add_time s buf;
      Buffer.add_string buf ",\"ev\":\"E\",\"sid\":";
      Buffer.add_string buf (string_of_int sp.sp_ctx.sid);
      add_attrs buf attrs;
      Buffer.add_string buf "}\n"
    end;
    s.cur <- sp.sp_prev
  end

let event ?(attrs = []) name =
  if !enabled then begin
    let s = st () in
    if !trace_cap > 0 && s.trace_records >= !trace_cap then
      s.trace_dropped <- s.trace_dropped + 1
    else begin
      s.trace_records <- s.trace_records + 1;
      let buf = s.buf in
      Buffer.add_string buf "{\"t\":";
      add_time s buf;
      Buffer.add_string buf ",\"ev\":\"P\",\"tid\":";
      Buffer.add_string buf (string_of_int s.cur.tid);
      Buffer.add_string buf ",\"pid\":";
      Buffer.add_string buf (string_of_int s.cur.sid);
      Buffer.add_string buf ",\"name\":";
      add_json_string buf name;
      add_attrs buf attrs;
      Buffer.add_string buf "}\n"
    end
  end

let with_span ?attrs name f =
  if not !enabled then f ()
  else begin
    let s = span ?attrs name in
    match f () with
    | v ->
        finish s;
        v
    | exception e ->
        finish ~attrs:[ ("outcome", "exn") ] s;
        raise e
  end

let span_count () = (st ()).spans_started
let trace_dropped () = (st ()).trace_dropped

(* {1 Metrics}

   The cumulative cells fire under either plane; with [metrics_enabled]
   each sample additionally lands in the current virtual-time window (and,
   for histograms, the run-cumulative bucket table). With both planes off
   a site costs two flag loads and nothing else. *)

let counter name = register Counter name
let gauge name = register Gauge name
let histogram name = register Hist name

let add c n =
  if !enabled || !metrics_enabled then begin
    let s = st () in
    let cl = cell_of s c in
    cl.cl_n <- cl.cl_n + n;
    if !metrics_enabled then begin
      let w = ru_wcell s c in
      w.w_n <- w.w_n + n
    end
  end

let incr c = add c 1
let counter_value c = (cell_of (st ()) c).cl_n

let gauge_set g v =
  if !enabled || !metrics_enabled then begin
    let s = st () in
    let cl = cell_of s g in
    cl.cf.(f_last) <- v;
    if v > cl.cf.(f_max) then cl.cf.(f_max) <- v;
    if !metrics_enabled then begin
      let w = ru_wcell s g in
      w.wf.(f_last) <- v;
      w.w_gauge <- true;
      if v > w.wf.(f_max) then w.wf.(f_max) <- v
    end
  end

let gauge_value g = cl_last (cell_of (st ()) g)
let gauge_max g = cl_max (cell_of (st ()) g)

let observe h v =
  if !enabled || !metrics_enabled then begin
    let s = st () in
    let cl = cell_of s h in
    cl.cl_n <- cl.cl_n + 1;
    let cf = cl.cf in
    cf.(f_sum) <- cf.(f_sum) +. v;
    if v < cf.(f_min) then cf.(f_min) <- v;
    if v > cf.(f_max) then cf.(f_max) <- v;
    if !metrics_enabled then begin
      let r = get_ru s in
      let i = bucket_index v in
      wobserve_at (ru_slot_cell s r h) v i;
      wobserve_at (ru_cum_wcell r h) v i
    end
  end

let histogram_count h = (cell_of (st ()) h).cl_n
let histogram_sum h = cl_sum (cell_of (st ()) h)

let histogram_mean h =
  let cl = cell_of (st ()) h in
  if cl.cl_n = 0 then 0.0 else (cl_sum cl) /. Float.of_int cl.cl_n

let reset () =
  let s = st () in
  Buffer.clear s.buf;
  s.next_span <- 1;
  s.next_trace <- 1;
  s.cur <- null_ctx;
  s.spans_started <- 0;
  s.trace_records <- 0;
  s.trace_dropped <- 0;
  s.ru <- None;
  Array.iter blank_cell s.cells

(* {1 Capture / absorb}

   The trial pool brackets each trial with [capture]: the domain gets a
   fresh state (with span/trace ids starting at [ids_base], so trials
   never collide), the trial runs, and what it recorded comes back as an
   inert snapshot. The pool then [absorb]s the snapshots in trial-index
   order on the main domain — the merged trace and metrics are therefore
   a pure function of the trial list, independent of how many domains ran
   it or how they interleaved. *)

type snapshot = {
  snap_trace : string;
  snap_spans : int;
  snap_cells : (handle * cell) list;
  snap_rows : string; (* trial's rollup rows, fully rendered, windows in order *)
  snap_cum : (handle * wcell) list; (* trial's run-cumulative histogram buckets *)
  snap_dropped : int; (* trace records refused at the trial's cap *)
}

let empty_snapshot =
  { snap_trace = ""; snap_spans = 0; snap_cells = []; snap_rows = ""; snap_cum = []; snap_dropped = 0 }

(* The recording-state lifecycle behind [capture], exposed separately
   for clients whose unit of isolation is not a function call: the
   parallel engine (Par) keeps one state per PARTITION alive across many
   windows, installing it on whichever domain executes the partition
   next, and snapshots once at the end of the whole run. *)

type rec_state = state

let state_create ?(ids_base = 0) () =
  let fresh = new_state () in
  fresh.next_span <- ids_base + 1;
  fresh.next_trace <- ids_base + 1;
  fresh

let state_install fresh =
  let saved = st () in
  Domain.DLS.set dls fresh;
  saved

let state_snapshot fresh =
  let all = registered () in
  let cells = Array.to_list (Array.mapi (fun i c -> (all.(i), c)) fresh.cells) in
  (* Rollup rows are rendered per trial: a trial's window sequence is
     self-contained, so the merged dump is the trials' rows spliced in
     trial-index order — a pure function of the trial list. *)
  let rows, cum =
    match fresh.ru with
    | None -> ("", [])
    | Some r ->
        let cum = ref [] in
        Array.iteri
          (fun i w -> if i < Array.length all && w.w_n <> 0 then cum := (all.(i), w) :: !cum)
          r.ru_cum;
        (ru_rows r, List.rev !cum)
  in
  {
    snap_trace = Buffer.contents fresh.buf;
    snap_spans = fresh.spans_started;
    snap_cells = cells;
    snap_rows = rows;
    snap_cum = cum;
    snap_dropped = fresh.trace_dropped;
  }

let capture ?(ids_base = 0) f =
  if not (!enabled || !metrics_enabled) then (f (), empty_snapshot)
  else begin
    let fresh = state_create ~ids_base () in
    let saved = state_install fresh in
    let restore () = Domain.DLS.set dls saved in
    match f () with
    | v ->
        restore ();
        (v, state_snapshot fresh)
    | exception e ->
        restore ();
        raise e
  end

let absorb snap =
  if
    snap.snap_trace <> "" || snap.snap_spans <> 0 || snap.snap_cells <> []
    || snap.snap_rows <> "" || snap.snap_cum <> [] || snap.snap_dropped <> 0
  then begin
    let s = st () in
    Buffer.add_string s.buf snap.snap_trace;
    s.spans_started <- s.spans_started + snap.snap_spans;
    s.trace_dropped <- s.trace_dropped + snap.snap_dropped;
    List.iter
      (fun (h, c) ->
        let dst = cell_of s h in
        match h.h_kind with
        | Counter -> dst.cl_n <- dst.cl_n + c.cl_n
        | Hist ->
            dst.cl_n <- dst.cl_n + c.cl_n;
            dst.cf.(f_sum) <- dst.cf.(f_sum) +. cl_sum c;
            if cl_min c < cl_min dst then dst.cf.(f_min) <- cl_min c;
            if cl_max c > cl_max dst then dst.cf.(f_max) <- cl_max c
        | Gauge ->
            if cl_max c > neg_infinity then begin
              dst.cf.(f_last) <- cl_last c;
              if cl_max c > cl_max dst then dst.cf.(f_max) <- cl_max c
            end)
      snap.snap_cells;
    if snap.snap_rows <> "" || snap.snap_cum <> [] then begin
      let r = get_ru s in
      Buffer.add_string r.ru_mbuf snap.snap_rows;
      List.iter
        (fun (h, (w : wcell)) ->
          let dst = ru_cum_wcell r h in
          dst.w_n <- dst.w_n + w.w_n;
          dst.wf.(f_sum) <- dst.wf.(f_sum) +. w.wf.(f_sum);
          if w.wf.(f_min) < dst.wf.(f_min) then dst.wf.(f_min) <- w.wf.(f_min);
          if w.wf.(f_max) > dst.wf.(f_max) then dst.wf.(f_max) <- w.wf.(f_max);
          if Array.length w.w_buckets > 0 then begin
            if Array.length dst.w_buckets = 0 then dst.w_buckets <- Array.make n_buckets 0;
            for i = 0 to n_buckets - 1 do
              dst.w_buckets.(i) <- dst.w_buckets.(i) + w.w_buckets.(i)
            done
          end)
        snap.snap_cum
    end
  end

(* {1 Output} *)

let trace_jsonl () = Buffer.contents (st ()).buf

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  add_json_string b s;
  Buffer.contents b

let touched_metrics () =
  let s = st () in
  let all = registered () in
  let acc = ref [] in
  Array.iteri
    (fun i c ->
      if i < Array.length all then begin
        let h = all.(i) in
        let live =
          match h.h_kind with
          | Counter | Hist -> c.cl_n <> 0
          | Gauge -> (cl_max c) > neg_infinity
        in
        if live then acc := (h, c) :: !acc
      end)
    s.cells;
  List.sort (fun ((a : handle), _) (b, _) -> String.compare a.h_metric b.h_metric) !acc

let metrics_jsonl () =
  let lines =
    List.map
      (fun ((h : handle), c) ->
        match h.h_kind with
        | Counter ->
            Printf.sprintf "{\"metric\":%S,\"type\":\"counter\",\"value\":%d}" h.h_metric c.cl_n
        | Gauge ->
            Printf.sprintf "{\"metric\":%S,\"type\":\"gauge\",\"value\":%s,\"max\":%s}" h.h_metric
              (fmt_float (cl_last c)) (fmt_float (cl_max c))
        | Hist ->
            Printf.sprintf
              "{\"metric\":%S,\"type\":\"hist\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
              h.h_metric c.cl_n (fmt_float (cl_sum c)) (fmt_float (cl_min c)) (fmt_float (cl_max c)))
      (touched_metrics ())
  in
  String.concat "" (List.map (fun l -> l ^ "\n") lines)

let dump_jsonl ~path () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* stream the trace buffer straight to the channel — [trace_jsonl]
         would first copy the whole run's trace into one string, doubling
         peak memory for long runs *)
      Buffer.output_buffer oc (st ()).buf;
      output_string oc (metrics_jsonl ()))

(* {1 Metrics-plane dump}

   Header line, the windowed rows (evicted first, then the still-open ring
   in window order), then one cumulative whole-run row per touched metric
   with [w = -1]. Cumulative counter and gauge rows read the plain cells —
   which capture/absorb already merge — so they agree with {!metrics_jsonl};
   cumulative histogram quantiles come from the run-cumulative bucket
   tables, fed sample-by-sample alongside the windows. *)

let metrics_plane_jsonl () =
  let s = st () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"splay-metrics/1\",\"window\":";
  Buffer.add_string b (fmt_float !rollup_window);
  Buffer.add_string b "}\n";
  (match s.ru with Some r -> Buffer.add_string b (ru_rows r) | None -> ());
  List.iter
    (fun ((h : handle), c) ->
      match h.h_kind with
      | Counter -> add_row b ~name:h.h_metric ~kind:"counter" ~wid:(-1) [ ("n", string_of_int c.cl_n) ]
      | Gauge ->
          add_row b ~name:h.h_metric ~kind:"gauge" ~wid:(-1)
            [ ("last", fmt_float (cl_last c)); ("max", fmt_float (cl_max c)) ]
      | Hist ->
          let cum =
            match s.ru with
            | Some r when h.h_id < Array.length r.ru_cum -> Some r.ru_cum.(h.h_id)
            | _ -> None
          in
          let fields =
            match cum with
            | Some w when w.w_n > 0 -> hist_fields ~with_quantiles:true w
            | _ ->
                [
                  ("n", string_of_int c.cl_n);
                  ("sum", fmt_float (cl_sum c));
                  ("min", fmt_float (cl_min c));
                  ("max", fmt_float (cl_max c));
                ]
          in
          add_row b ~name:h.h_metric ~kind:"hist" ~wid:(-1) fields)
    (touched_metrics ());
  Buffer.contents b

let dump_metrics ~path () =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (metrics_plane_jsonl ()))

(* {1 Rollup — public face of the windowed plane} *)

module Rollup = struct
  let set_window w = if w > 0.0 && Float.is_finite w then rollup_window := w
  let window () = !rollup_window

  let clear () =
    let s = st () in
    s.ru <- None

  let quantile (h : handle) q =
    let s = st () in
    match s.ru with
    | None -> 0.0
    | Some r ->
        if h.h_id >= Array.length r.ru_cum then 0.0
        else
          let w = r.ru_cum.(h.h_id) in
          if w.w_n = 0 then 0.0
          else bucket_quantile ~n:w.w_n ~bmin:(w_min w) ~bmax:(w_max w) w.w_buckets q

  let count (h : handle) =
    let s = st () in
    match s.ru with
    | None -> 0
    | Some r -> if h.h_id >= Array.length r.ru_cum then 0 else r.ru_cum.(h.h_id).w_n

  let note ?(attrs = []) name =
    if !metrics_enabled then begin
      let s = st () in
      let r = get_ru s in
      let t = s.clock () in
      let wid0 = int_of_float (t /. !rollup_window) in
      let wid = if wid0 < r.ru_cur then r.ru_cur else wid0 in
      if wid > r.ru_cur then ru_advance r wid;
      let b = r.ru_mbuf in
      Buffer.add_string b "{\"m\":";
      add_json_string b name;
      Buffer.add_string b ",\"kind\":\"note\",\"w\":";
      Buffer.add_string b (string_of_int r.ru_cur);
      Buffer.add_string b ",\"t\":";
      add_time_value b t;
      add_attrs b attrs;
      Buffer.add_string b "}\n"
    end

  let rows () = match (st ()).ru with None -> "" | Some r -> ru_rows r
end

let report () =
  Report.section "Observability summary (Splay_obs)";
  let touched = touched_metrics () in
  let of_kind k = List.filter (fun ((h : handle), _) -> h.h_kind = k) touched in
  let cs = of_kind Counter in
  if cs <> [] then
    Report.table ~header:[ "counter"; "value" ]
      (List.map (fun ((h : handle), c) -> [ h.h_metric; string_of_int c.cl_n ]) cs);
  let gs = of_kind Gauge in
  if gs <> [] then
    Report.table ~header:[ "gauge"; "value"; "max" ]
      (List.map
         (fun ((h : handle), c) -> [ h.h_metric; fmt_float (cl_last c); fmt_float (cl_max c) ])
         gs);
  let hs = of_kind Hist in
  if hs <> [] then
    Report.table
      ~header:[ "histogram"; "count"; "mean"; "min"; "max" ]
      (List.map
         (fun ((h : handle), c) ->
           [
             h.h_metric;
             string_of_int c.cl_n;
             Report.float_cell ~decimals:6 ((cl_sum c) /. Float.of_int c.cl_n);
             Report.float_cell ~decimals:6 (cl_min c);
             Report.float_cell ~decimals:6 (cl_max c);
           ])
         hs);
  Report.kvf "trace spans" "%d" (span_count ())
