module Report = Splay_stats.Report

(* The master switch stays a plain process-global flag: it is only ever
   toggled by a front end (Obs_flags) outside parallel sections, and
   worker domains are spawned after it is set, so every domain observes a
   stable value. Everything that *mutates* during a run — clock, trace
   buffer, span/trace counters, current context, metric cells — lives in
   domain-local storage so independent trials on different domains never
   share a mutable word. *)
let enabled = ref false

(* {1 Trace context}

   The ambient (trace, span) position in the causal DAG. [cur] holds an
   immutable record so capturing it (the engine does, at every schedule and
   suspension) is a load — nothing is allocated on the disabled path. *)

type ctx = { tid : int; sid : int }

let null_ctx = { tid = 0; sid = 0 }

(* {1 Metric handles}

   A handle is an immutable name + slot index, created once at an
   instrumentation site (typically module initialisation on the main
   domain, but registration is mutex-guarded so a worker-domain first use
   is safe too). The mutable cell behind a handle is per-domain, found by
   indexing the domain state's cell array with the handle's id. *)

type kind = Counter | Gauge | Hist

type handle = { h_id : int; h_kind : kind; h_metric : string }
type counter = handle
type gauge = handle
type histogram = handle

let reg_mu = Mutex.create ()
let reg_by_name : (string, handle) Hashtbl.t = Hashtbl.create 64
let reg_all : handle array ref = ref [||]

let register kind name =
  let key = (match kind with Counter -> "c:" | Gauge -> "g:" | Hist -> "h:") ^ name in
  Mutex.protect reg_mu (fun () ->
      match Hashtbl.find_opt reg_by_name key with
      | Some h -> h
      | None ->
          let h = { h_id = Array.length !reg_all; h_kind = kind; h_metric = name } in
          Hashtbl.replace reg_by_name key h;
          reg_all := Array.append !reg_all [| h |];
          h)

let registered () = Mutex.protect reg_mu (fun () -> !reg_all)

type cell = {
  mutable cl_n : int; (* counter value / histogram count *)
  mutable cl_sum : float;
  mutable cl_min : float;
  mutable cl_max : float; (* histogram max / gauge high-water *)
  mutable cl_last : float; (* gauge last value *)
}

let fresh_cell () =
  { cl_n = 0; cl_sum = 0.0; cl_min = infinity; cl_max = neg_infinity; cl_last = 0.0 }

let blank_cell c =
  c.cl_n <- 0;
  c.cl_sum <- 0.0;
  c.cl_min <- infinity;
  c.cl_max <- neg_infinity;
  c.cl_last <- 0.0

(* {1 Domain-local state}

   One record per domain holding everything a recording site touches.
   Trials running on different domains each get their own; the pool
   captures a trial's state and merges it back in trial order
   ({!capture} / {!absorb}), keeping output independent of how trials
   were spread over domains. *)

type state = {
  mutable clock : unit -> float;
  buf : Buffer.t;
  mutable next_span : int;
  mutable next_trace : int;
  mutable spans_started : int;
  mutable cur : ctx;
  mutable cells : cell array;
}

let new_state () =
  {
    clock = (fun () -> 0.0);
    buf = Buffer.create 4096;
    next_span = 1;
    next_trace = 1;
    spans_started = 0;
    cur = null_ctx;
    cells = [||];
  }

let dls : state Domain.DLS.key = Domain.DLS.new_key new_state
let st () = Domain.DLS.get dls

let cell_of s (h : handle) =
  (if h.h_id >= Array.length s.cells then
     let have = Array.length s.cells in
     let total = max (Array.length (registered ())) (h.h_id + 1) in
     s.cells <-
       Array.init total (fun i -> if i < have then s.cells.(i) else fresh_cell ()));
  s.cells.(h.h_id)

let set_clock f = (st ()).clock <- f
let now () = (st ()).clock ()

let current () = (st ()).cur
let set_current c = (st ()).cur <- c

let with_ctx c f =
  let s = st () in
  let saved = s.cur in
  s.cur <- c;
  Fun.protect ~finally:(fun () -> s.cur <- saved) f

(* A span remembers its own context (for envelopes) and the context that
   was current when it started (restored on finish, so a finished span
   stops labelling subsequent work — even when start and finish happen in
   different engine events, as with RPC call spans). *)
type span = { sp_ctx : ctx; sp_prev : ctx }

let null_span = { sp_ctx = null_ctx; sp_prev = null_ctx }
let span_ctx s = s.sp_ctx

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_attrs b attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      add_json_string b v)
    attrs

(* All times are virtual seconds; fixed-point rendering keeps the trace
   stable across printf implementations.

   The emitter runs once per span start/finish/event — the hottest write
   in a traced run — so the common case avoids printf entirely and
   produces exactly the bytes [%.6f] would. A finite positive double is
   m * 2^(ex-53) with m a 53-bit integer (frexp), so

     v * 10^6  =  m * 15625 / 2^(47-ex)

   exactly. The product m * 15625 needs 67 bits and is carried in two
   32-bit limbs; the shift rounds to nearest, ties to even, which is what
   the libc formatter does with the exact binary value. Anything a
   simulated clock never produces — negative (or -0.0), non-finite, v >=
   1e12 (where the shift count would leave the two-limb range), or
   0 < v < 1e-6 — falls back to printf. *)

let micros_of_time v =
  (* precondition: 1e-6 <= v < 1e12; then 7 <= s <= 66 *)
  let f, ex = Float.frexp v in
  let m = int_of_float (Float.ldexp f 53) in
  let s = 47 - ex in
  let mlo = m land 0xFFFFFFFF and mhi = m lsr 32 in
  let plo = mlo * 15625 and phi = mhi * 15625 in
  (* m * 15625 = hi * 2^32 + lo *)
  let lo = plo land 0xFFFFFFFF and hi = phi + (plo lsr 32) in
  if s <= 32 then begin
    let q = (hi lsl (32 - s)) lor (lo lsr s) in
    let r = lo land ((1 lsl s) - 1) in
    let half = 1 lsl (s - 1) in
    if r > half || (r = half && q land 1 = 1) then q + 1 else q
  end
  else begin
    let sh = s - 32 in
    let q = hi lsr sh in
    let rhi = hi land ((1 lsl sh) - 1) in
    let half_hi = 1 lsl (sh - 1) in
    if rhi > half_hi || (rhi = half_hi && (lo > 0 || q land 1 = 1)) then q + 1
    else q
  end

let add_time_value b v =
  if v = 0.0 && not (Float.sign_bit v) then Buffer.add_string b "0.000000"
  else if v >= 1e-6 && v < 1e12 then begin
    let n = micros_of_time v in
    let ip = n / 1_000_000 and fp = n mod 1_000_000 in
    Buffer.add_string b (string_of_int ip);
    Buffer.add_char b '.';
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 100_000));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 10_000 mod 10));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 1_000 mod 10));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 100 mod 10));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp / 10 mod 10));
    Buffer.add_char b (Char.unsafe_chr (Char.code '0' + fp mod 10))
  end
  else Buffer.add_string b (Printf.sprintf "%.6f" v)

let add_time s b = add_time_value b (s.clock ())

let span ?(attrs = []) ?parent name =
  if not !enabled then null_span
  else begin
    let s = st () in
    let parent = match parent with Some c -> c | None -> s.cur in
    let tid =
      if parent.tid <> 0 then parent.tid
      else begin
        let id = s.next_trace in
        s.next_trace <- id + 1;
        id
      end
    in
    let sid = s.next_span in
    s.next_span <- sid + 1;
    s.spans_started <- s.spans_started + 1;
    let buf = s.buf in
    Buffer.add_string buf "{\"t\":";
    add_time s buf;
    Buffer.add_string buf ",\"ev\":\"B\",\"sid\":";
    Buffer.add_string buf (string_of_int sid);
    Buffer.add_string buf ",\"tid\":";
    Buffer.add_string buf (string_of_int tid);
    Buffer.add_string buf ",\"pid\":";
    Buffer.add_string buf (string_of_int parent.sid);
    Buffer.add_string buf ",\"name\":";
    add_json_string buf name;
    add_attrs buf attrs;
    Buffer.add_string buf "}\n";
    let sp = { sp_ctx = { tid; sid }; sp_prev = s.cur } in
    s.cur <- sp.sp_ctx;
    sp
  end

let finish ?(attrs = []) sp =
  if sp.sp_ctx.sid <> 0 && !enabled then begin
    let s = st () in
    let buf = s.buf in
    Buffer.add_string buf "{\"t\":";
    add_time s buf;
    Buffer.add_string buf ",\"ev\":\"E\",\"sid\":";
    Buffer.add_string buf (string_of_int sp.sp_ctx.sid);
    add_attrs buf attrs;
    Buffer.add_string buf "}\n";
    s.cur <- sp.sp_prev
  end

let event ?(attrs = []) name =
  if !enabled then begin
    let s = st () in
    let buf = s.buf in
    Buffer.add_string buf "{\"t\":";
    add_time s buf;
    Buffer.add_string buf ",\"ev\":\"P\",\"tid\":";
    Buffer.add_string buf (string_of_int s.cur.tid);
    Buffer.add_string buf ",\"pid\":";
    Buffer.add_string buf (string_of_int s.cur.sid);
    Buffer.add_string buf ",\"name\":";
    add_json_string buf name;
    add_attrs buf attrs;
    Buffer.add_string buf "}\n"
  end

let with_span ?attrs name f =
  if not !enabled then f ()
  else begin
    let s = span ?attrs name in
    match f () with
    | v ->
        finish s;
        v
    | exception e ->
        finish ~attrs:[ ("outcome", "exn") ] s;
        raise e
  end

let span_count () = (st ()).spans_started

(* {1 Metrics} *)

let counter name = register Counter name
let gauge name = register Gauge name
let histogram name = register Hist name

let incr c =
  if !enabled then begin
    let cl = cell_of (st ()) c in
    cl.cl_n <- cl.cl_n + 1
  end

let add c n =
  if !enabled then begin
    let cl = cell_of (st ()) c in
    cl.cl_n <- cl.cl_n + n
  end

let counter_value c = (cell_of (st ()) c).cl_n

let gauge_set g v =
  if !enabled then begin
    let cl = cell_of (st ()) g in
    cl.cl_last <- v;
    if v > cl.cl_max then cl.cl_max <- v
  end

let gauge_value g = (cell_of (st ()) g).cl_last
let gauge_max g = (cell_of (st ()) g).cl_max

let observe h v =
  if !enabled then begin
    let cl = cell_of (st ()) h in
    cl.cl_n <- cl.cl_n + 1;
    cl.cl_sum <- cl.cl_sum +. v;
    if v < cl.cl_min then cl.cl_min <- v;
    if v > cl.cl_max then cl.cl_max <- v
  end

let histogram_count h = (cell_of (st ()) h).cl_n
let histogram_sum h = (cell_of (st ()) h).cl_sum

let histogram_mean h =
  let cl = cell_of (st ()) h in
  if cl.cl_n = 0 then 0.0 else cl.cl_sum /. Float.of_int cl.cl_n

let reset () =
  let s = st () in
  Buffer.clear s.buf;
  s.next_span <- 1;
  s.next_trace <- 1;
  s.cur <- null_ctx;
  s.spans_started <- 0;
  Array.iter blank_cell s.cells

(* {1 Capture / absorb}

   The trial pool brackets each trial with [capture]: the domain gets a
   fresh state (with span/trace ids starting at [ids_base], so trials
   never collide), the trial runs, and what it recorded comes back as an
   inert snapshot. The pool then [absorb]s the snapshots in trial-index
   order on the main domain — the merged trace and metrics are therefore
   a pure function of the trial list, independent of how many domains ran
   it or how they interleaved. *)

type snapshot = {
  snap_trace : string;
  snap_spans : int;
  snap_cells : (handle * cell) list;
}

let empty_snapshot = { snap_trace = ""; snap_spans = 0; snap_cells = [] }

let capture ?(ids_base = 0) f =
  if not !enabled then (f (), empty_snapshot)
  else begin
    let saved = st () in
    let fresh = new_state () in
    fresh.next_span <- ids_base + 1;
    fresh.next_trace <- ids_base + 1;
    Domain.DLS.set dls fresh;
    let restore () = Domain.DLS.set dls saved in
    match f () with
    | v ->
        restore ();
        let all = registered () in
        let cells = Array.to_list (Array.mapi (fun i c -> (all.(i), c)) fresh.cells) in
        (v, { snap_trace = Buffer.contents fresh.buf; snap_spans = fresh.spans_started; snap_cells = cells })
    | exception e ->
        restore ();
        raise e
  end

let absorb snap =
  if snap.snap_trace <> "" || snap.snap_spans <> 0 || snap.snap_cells <> [] then begin
    let s = st () in
    Buffer.add_string s.buf snap.snap_trace;
    s.spans_started <- s.spans_started + snap.snap_spans;
    List.iter
      (fun (h, c) ->
        let dst = cell_of s h in
        match h.h_kind with
        | Counter -> dst.cl_n <- dst.cl_n + c.cl_n
        | Hist ->
            dst.cl_n <- dst.cl_n + c.cl_n;
            dst.cl_sum <- dst.cl_sum +. c.cl_sum;
            if c.cl_min < dst.cl_min then dst.cl_min <- c.cl_min;
            if c.cl_max > dst.cl_max then dst.cl_max <- c.cl_max
        | Gauge ->
            if c.cl_max > neg_infinity then begin
              dst.cl_last <- c.cl_last;
              if c.cl_max > dst.cl_max then dst.cl_max <- c.cl_max
            end)
      snap.snap_cells
  end

(* {1 Output} *)

let trace_jsonl () = Buffer.contents (st ()).buf

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  add_json_string b s;
  Buffer.contents b

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let touched_metrics () =
  let s = st () in
  let all = registered () in
  let acc = ref [] in
  Array.iteri
    (fun i c ->
      if i < Array.length all then begin
        let h = all.(i) in
        let live =
          match h.h_kind with
          | Counter | Hist -> c.cl_n <> 0
          | Gauge -> c.cl_max > neg_infinity
        in
        if live then acc := (h, c) :: !acc
      end)
    s.cells;
  List.sort (fun ((a : handle), _) (b, _) -> String.compare a.h_metric b.h_metric) !acc

let metrics_jsonl () =
  let lines =
    List.map
      (fun ((h : handle), c) ->
        match h.h_kind with
        | Counter ->
            Printf.sprintf "{\"metric\":%S,\"type\":\"counter\",\"value\":%d}" h.h_metric c.cl_n
        | Gauge ->
            Printf.sprintf "{\"metric\":%S,\"type\":\"gauge\",\"value\":%s,\"max\":%s}" h.h_metric
              (fmt_float c.cl_last) (fmt_float c.cl_max)
        | Hist ->
            Printf.sprintf
              "{\"metric\":%S,\"type\":\"hist\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
              h.h_metric c.cl_n (fmt_float c.cl_sum) (fmt_float c.cl_min) (fmt_float c.cl_max))
      (touched_metrics ())
  in
  String.concat "" (List.map (fun l -> l ^ "\n") lines)

let dump_jsonl ~path () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* stream the trace buffer straight to the channel — [trace_jsonl]
         would first copy the whole run's trace into one string, doubling
         peak memory for long runs *)
      Buffer.output_buffer oc (st ()).buf;
      output_string oc (metrics_jsonl ()))

let report () =
  Report.section "Observability summary (Splay_obs)";
  let touched = touched_metrics () in
  let of_kind k = List.filter (fun ((h : handle), _) -> h.h_kind = k) touched in
  let cs = of_kind Counter in
  if cs <> [] then
    Report.table ~header:[ "counter"; "value" ]
      (List.map (fun ((h : handle), c) -> [ h.h_metric; string_of_int c.cl_n ]) cs);
  let gs = of_kind Gauge in
  if gs <> [] then
    Report.table ~header:[ "gauge"; "value"; "max" ]
      (List.map
         (fun ((h : handle), c) -> [ h.h_metric; fmt_float c.cl_last; fmt_float c.cl_max ])
         gs);
  let hs = of_kind Hist in
  if hs <> [] then
    Report.table
      ~header:[ "histogram"; "count"; "mean"; "min"; "max" ]
      (List.map
         (fun ((h : handle), c) ->
           [
             h.h_metric;
             string_of_int c.cl_n;
             Report.float_cell ~decimals:6 (c.cl_sum /. Float.of_int c.cl_n);
             Report.float_cell ~decimals:6 c.cl_min;
             Report.float_cell ~decimals:6 c.cl_max;
           ])
         hs);
  Report.kvf "trace spans" "%d" (span_count ())
