module Report = Splay_stats.Report

let enabled = ref false

let clock = ref (fun () -> 0.0)
let set_clock f = clock := f
let now () = !clock ()

(* {1 Trace buffer}

   Records are rendered to JSON eagerly and appended to one buffer: the
   rendering cost is only paid when tracing is on, and the buffer contents
   are the deterministic artifact (no hash-order, no wall clock). *)

let buf = Buffer.create 4096
let next_span = ref 1
let next_trace = ref 1
let spans_started = ref 0

(* {1 Trace context}

   The ambient (trace, span) position in the causal DAG. [cur] holds an
   immutable record so capturing it (the engine does, at every schedule and
   suspension) is a pointer read — nothing is allocated on the disabled
   path. *)

type ctx = { tid : int; sid : int }

let null_ctx = { tid = 0; sid = 0 }
let cur = ref null_ctx
let current () = !cur
let set_current c = cur := c

let with_ctx c f =
  let saved = !cur in
  cur := c;
  Fun.protect ~finally:(fun () -> cur := saved) f

(* A span remembers its own context (for envelopes) and the context that
   was current when it started (restored on finish, so a finished span
   stops labelling subsequent work — even when start and finish happen in
   different engine events, as with RPC call spans). *)
type span = { sp_ctx : ctx; sp_prev : ctx }

let null_span = { sp_ctx = null_ctx; sp_prev = null_ctx }
let span_ctx s = s.sp_ctx

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_attrs b attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      add_json_string b v)
    attrs

(* All times are virtual seconds; fixed-point rendering keeps the trace
   stable across printf implementations. *)
let add_time b = Buffer.add_string b (Printf.sprintf "%.6f" (!clock ()))

let span ?(attrs = []) ?parent name =
  if not !enabled then null_span
  else begin
    let parent = match parent with Some c -> c | None -> !cur in
    let tid =
      if parent.tid <> 0 then parent.tid
      else begin
        let id = !next_trace in
        next_trace := id + 1;
        id
      end
    in
    let sid = !next_span in
    next_span := sid + 1;
    incr spans_started;
    Buffer.add_string buf "{\"t\":";
    add_time buf;
    Buffer.add_string buf ",\"ev\":\"B\",\"sid\":";
    Buffer.add_string buf (string_of_int sid);
    Buffer.add_string buf ",\"tid\":";
    Buffer.add_string buf (string_of_int tid);
    Buffer.add_string buf ",\"pid\":";
    Buffer.add_string buf (string_of_int parent.sid);
    Buffer.add_string buf ",\"name\":";
    add_json_string buf name;
    add_attrs buf attrs;
    Buffer.add_string buf "}\n";
    let sp = { sp_ctx = { tid; sid }; sp_prev = !cur } in
    cur := sp.sp_ctx;
    sp
  end

let finish ?(attrs = []) s =
  if s.sp_ctx.sid <> 0 && !enabled then begin
    Buffer.add_string buf "{\"t\":";
    add_time buf;
    Buffer.add_string buf ",\"ev\":\"E\",\"sid\":";
    Buffer.add_string buf (string_of_int s.sp_ctx.sid);
    add_attrs buf attrs;
    Buffer.add_string buf "}\n";
    cur := s.sp_prev
  end

let event ?(attrs = []) name =
  if !enabled then begin
    Buffer.add_string buf "{\"t\":";
    add_time buf;
    Buffer.add_string buf ",\"ev\":\"P\",\"tid\":";
    Buffer.add_string buf (string_of_int !cur.tid);
    Buffer.add_string buf ",\"pid\":";
    Buffer.add_string buf (string_of_int !cur.sid);
    Buffer.add_string buf ",\"name\":";
    add_json_string buf name;
    add_attrs buf attrs;
    Buffer.add_string buf "}\n"
  end

let with_span ?attrs name f =
  if not !enabled then f ()
  else begin
    let s = span ?attrs name in
    match f () with
    | v ->
        finish s;
        v
    | exception e ->
        finish ~attrs:[ ("outcome", "exn") ] s;
        raise e
  end

let span_count () = !spans_started

(* {1 Metrics} *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_max : float }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters name c;
      c

let incr c = if !enabled then c.c_value <- c.c_value + 1
let add c n = if !enabled then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0; g_max = neg_infinity } in
      Hashtbl.replace gauges name g;
      g

let gauge_set g v =
  if !enabled then begin
    g.g_value <- v;
    if v > g.g_max then g.g_max <- v
  end

let gauge_value g = g.g_value
let gauge_max g = g.g_max

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h = { h_name = name; h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity } in
      Hashtbl.replace histograms name h;
      h

let observe h v =
  if !enabled then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. Float.of_int h.h_count

let reset () =
  Buffer.clear buf;
  next_span := 1;
  next_trace := 1;
  cur := null_ctx;
  spans_started := 0;
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.g_value <- 0.0;
      g.g_max <- neg_infinity)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity)
    histograms

(* {1 Output} *)

let trace_jsonl () = Buffer.contents buf

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  add_json_string b s;
  Buffer.contents b

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let metrics_jsonl () =
  let lines = ref [] in
  Hashtbl.iter
    (fun _ c ->
      if c.c_value <> 0 then
        lines :=
          ( c.c_name,
            Printf.sprintf "{\"metric\":%S,\"type\":\"counter\",\"value\":%d}" c.c_name c.c_value )
          :: !lines)
    counters;
  Hashtbl.iter
    (fun _ g ->
      if g.g_max > neg_infinity then
        lines :=
          ( g.g_name,
            Printf.sprintf "{\"metric\":%S,\"type\":\"gauge\",\"value\":%s,\"max\":%s}" g.g_name
              (fmt_float g.g_value) (fmt_float g.g_max) )
          :: !lines)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      if h.h_count <> 0 then
        lines :=
          ( h.h_name,
            Printf.sprintf
              "{\"metric\":%S,\"type\":\"hist\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
              h.h_name h.h_count (fmt_float h.h_sum) (fmt_float h.h_min) (fmt_float h.h_max) )
          :: !lines)
    histograms;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) !lines in
  String.concat "" (List.map (fun (_, l) -> l ^ "\n") sorted)

let dump_jsonl ~path () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (trace_jsonl ());
      output_string oc (metrics_jsonl ()))

let report () =
  Report.section "Observability summary (Splay_obs)";
  let sorted_tbl tbl =
    Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  in
  let cs =
    List.sort
      (fun a b -> String.compare a.c_name b.c_name)
      (List.filter (fun c -> c.c_value <> 0) (sorted_tbl counters))
  in
  if cs <> [] then
    Report.table ~header:[ "counter"; "value" ]
      (List.map (fun c -> [ c.c_name; string_of_int c.c_value ]) cs);
  let gs =
    List.sort
      (fun a b -> String.compare a.g_name b.g_name)
      (List.filter (fun g -> g.g_max > neg_infinity) (sorted_tbl gauges))
  in
  if gs <> [] then
    Report.table ~header:[ "gauge"; "value"; "max" ]
      (List.map (fun g -> [ g.g_name; fmt_float g.g_value; fmt_float g.g_max ]) gs);
  let hs =
    List.sort
      (fun a b -> String.compare a.h_name b.h_name)
      (List.filter (fun h -> h.h_count <> 0) (sorted_tbl histograms))
  in
  if hs <> [] then
    Report.table
      ~header:[ "histogram"; "count"; "mean"; "min"; "max" ]
      (List.map
         (fun h ->
           [
             h.h_name;
             string_of_int h.h_count;
             Report.float_cell ~decimals:6 (h.h_sum /. Float.of_int h.h_count);
             Report.float_cell ~decimals:6 h.h_min;
             Report.float_cell ~decimals:6 h.h_max;
           ])
         hs);
  Report.kvf "trace spans" "%d" !spans_started
