(** Shared command-line plumbing for the observability layer.

    The bench harness and [splay_cli] accept the same flags; this module
    owns their parsing and the arm/dump lifecycle so the two front ends
    cannot drift:

    - [--obs] — enable the trace plane, print the metric summary at the end;
    - [--obs-trace=FILE] — enable the trace plane, dump the JSONL trace to FILE;
    - [--obs-trace-cap=N] — bound the trace buffer to N records
      ({!Obs.set_trace_cap}); a warning with the dropped count goes to
      stderr at the end of the run;
    - [--critical-path] — after dumping, print the critical-path latency
      breakdown of the slowest RPC in the trace (only takes effect
      alongside [--obs-trace=FILE]);
    - [--metrics-out=FILE] — enable the metrics plane (windowed rollups,
      {!Obs.metrics_enabled}), dump the [splay-metrics/1] JSONL to FILE
      at the end ([splay top FILE] renders it);
    - [--metrics-window=SECONDS] — rollup window width in virtual seconds
      (default 10). *)

val summary : bool ref
val trace_path : string option ref
val critical_path : bool ref
val metrics_path : string option ref
val metrics_window : float option ref
val obs_trace_cap : int option ref

val parse_arg : string -> bool
(** [parse_arg a] consumes [a] if it is one of the flags above (setting the
    corresponding ref) and returns whether it did. Malformed values
    (non-numeric cap or window) print an error and exit 2. *)

val active : unit -> bool
(** Any flag that requires either plane on. *)

val arm : unit -> unit
(** If {!active}, reset the collector, apply window/cap settings, and
    enable the requested plane(s). Call before the workload. *)

val finish : unit -> bool
(** Dump / summarize / analyze per the flags, then disable and reset both
    planes. Returns [false] if a dump failed (error already printed on
    stderr); callers decide the exit code. No-op ([true]) when neither
    plane was armed. *)
