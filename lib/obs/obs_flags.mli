(** Shared command-line plumbing for the observability layer.

    The bench harness and [splay_cli] accept the same three flags; this
    module owns their parsing and the arm/dump lifecycle so the two front
    ends cannot drift:

    - [--obs] — enable the layer, print the metric summary at the end;
    - [--obs-trace=FILE] — enable the layer, dump the JSONL trace to FILE;
    - [--critical-path] — after dumping, print the critical-path latency
      breakdown of the slowest RPC in the trace (implies nothing by
      itself: it only takes effect alongside [--obs-trace=FILE]). *)

val summary : bool ref
val trace_path : string option ref
val critical_path : bool ref

val parse_arg : string -> bool
(** [parse_arg a] consumes [a] if it is one of the flags above (setting the
    corresponding ref) and returns whether it did. *)

val active : unit -> bool
(** Any flag that requires the layer on. *)

val arm : unit -> unit
(** If {!active}, reset the collector and enable it. Call before the
    workload. *)

val finish : unit -> bool
(** Dump / summarize / analyze per the flags, then disable and reset the
    layer. Returns [false] if the trace dump failed (error already printed
    on stderr); callers decide the exit code. No-op ([true]) when the layer
    was never armed. *)
