(* Conservative time-windowed parallel discrete-event engine.

   One big simulated deployment is split into [parts] partitions, each
   owning a full {!Engine} (its own event heap, same-instant ring, RNG
   stream and — when a plane is enabled — its own {!Obs} recording
   state). Synchronization is classic conservative PDES: with lookahead
   [L] = the minimum cross-partition one-way delay, every partition may
   execute freely inside the window [tmin, tmin + L) where [tmin] is the
   global minimum next-event time, because nothing a peer does inside
   the window can reach it earlier than [tmin + L]. Cross-partition
   traffic is posted into per-(src,dst) mailboxes and absorbed by the
   serial coordinator at the next window barrier, before any partition
   of the new window starts — by then the receiver's clock is still
   below the message's arrival time, so no partition ever receives an
   event in its past (checked, not assumed: absorption fails loudly on
   violation).

   Why conservative rather than optimistic (Time Warp): rollback would
   need checkpointing of arbitrary user state — fibers, closures, Obs
   buffers — which the simulation API deliberately does not constrain.
   Lookahead here is real and cheap ([Latency.min_rtt] / 2; 5 ms for the
   default transit-stub mix against sub-millisecond event spacing), so
   windows are fat and barriers rare.

   Determinism: the run is a pure function of (seed, parts). Window
   bounds derive from virtual time only; within a window each partition
   executes its events in exact sequential (at, seq) order; mailboxes
   are absorbed between windows, serially, in canonical
   (destination, source) order, acquiring fresh local seqs — so seq
   assignment of cross-partition events never depends on execution
   interleaving or worker count, and the merged traces, metrics and
   results are byte-identical whatever [domains] executed the
   partitions, 1 or 16. (Changing [parts] IS a different schedule, like
   changing a seed.)

   Execution rides on {!Dpool}: one barrier per window, partitions
   handed to worker domains via an atomic cursor. A domain executing
   partition [i] installs partition [i]'s recording state first, so
   everything recorded lands in per-partition buffers that are merged
   once, in partition order, when the run completes. *)

module Obs = Splay_obs.Obs

(* Same id stride as {!Pool}: partition [i]'s span/trace ids start at
   [(i+1) lsl 24]. Do not nest a traced [Par] run inside a [Pool] trial:
   the id bases would collide in the merged trace. *)
let ids_stride = 1 lsl 24

let noop () = ()

(* Per-(src,dst) mailbox. Two parallel arrays keep the floats unboxed.
   Race-free by construction: inside a window only the one domain
   currently executing partition [src] appends (the Dpool cursor hands
   each partition to exactly one domain), and drains happen only in the
   serial coordinator between windows — appends and drains never
   overlap. The Dpool batch boundaries provide the happens-before edges
   both ways (posts visible to the coordinator's drain, drained state
   visible to the next window's posters), so no atomics are needed. *)
type mail = {
  mutable m_at : float array;
  mutable m_fn : (unit -> unit) array;
  mutable m_len : int;
}

let new_mail () = { m_at = [||]; m_fn = [||]; m_len = 0 }

let mail_grow m =
  let cap = Array.length m.m_at in
  let ncap = if cap = 0 then 64 else 2 * cap in
  let at = Array.make ncap 0.0 and fn = Array.make ncap noop in
  Array.blit m.m_at 0 at 0 m.m_len;
  Array.blit m.m_fn 0 fn 0 m.m_len;
  m.m_at <- at;
  m.m_fn <- fn

type t = {
  parts : int;
  lookahead : float;
  engines : Engine.t array;
  states : Obs.rec_state array; (* empty = no plane was enabled at create *)
  mail : mail array; (* parts * parts, row-major [src * parts + dst] *)
  mutable ran : bool;
}

type run_info = { windows : int; events_fired : int }

let create ?(seed = 42) ~lookahead ~parts () =
  if parts < 1 then invalid_arg "Par.create: parts must be >= 1";
  if not (lookahead > 0.0) then invalid_arg "Par.create: lookahead must be positive";
  let planes = !Obs.enabled || !Obs.metrics_enabled in
  let states =
    if planes then Array.init parts (fun i -> Obs.state_create ~ids_base:((i + 1) * ids_stride) ())
    else [||]
  in
  let mk_engine i =
    (* distinct, seed-derived RNG stream per partition; parts = 1
       degenerates to exactly the sequential engine's stream *)
    Engine.create ~seed:(seed + (1_000_003 * i)) ()
  in
  let engines =
    Array.init parts (fun i ->
        if planes then begin
          (* created under its own state so [Engine.create]'s
             [Obs.set_clock] binds this partition's clock to it *)
          let prev = Obs.state_install states.(i) in
          let e = mk_engine i in
          ignore (Obs.state_install prev);
          e
        end
        else mk_engine i)
  in
  {
    parts;
    lookahead;
    engines;
    states;
    mail = Array.init (parts * parts) (fun _ -> new_mail ());
    ran = false;
  }

let parts t = t.parts
let lookahead t = t.lookahead
let engine t i = t.engines.(i)

let with_part t i f =
  if Array.length t.states = 0 then f ()
  else begin
    let prev = Obs.state_install t.states.(i) in
    Fun.protect ~finally:(fun () -> ignore (Obs.state_install prev)) f
  end

let post t ~src ~dst ~at fn =
  let m = t.mail.((src * t.parts) + dst) in
  if m.m_len = Array.length m.m_at then mail_grow m;
  m.m_at.(m.m_len) <- at;
  m.m_fn.(m.m_len) <- fn;
  m.m_len <- m.m_len + 1

(* Drain every mailbox addressed to partition [i], oldest source first —
   the canonical order that makes same-instant seq assignment (and with
   it the whole run) independent of domain count. Called only from the
   serial coordinator, between windows, under partition [i]'s recording
   state (scheduling touches the queue-depth gauge and captures the
   partition's current trace ctx). *)
let absorb_mail t i =
  let eng = t.engines.(i) in
  let now = Engine.now eng in
  for src = 0 to t.parts - 1 do
    let m = t.mail.((src * t.parts) + i) in
    if m.m_len > 0 then begin
      for k = 0 to m.m_len - 1 do
        let at = m.m_at.(k) in
        if at < now then
          failwith
            (Printf.sprintf "Par: cross-partition event at %g in partition %d's past (now %g)" at i
               now);
        ignore (Engine.schedule_at eng ~at m.m_fn.(k));
        m.m_fn.(k) <- noop (* release the closure *)
      done;
      m.m_len <- 0
    end
  done

let run ?domains t =
  if t.ran then invalid_arg "Par.run: a Par.t is single-shot; create a fresh one";
  t.ran <- true;
  Array.iter
    (fun e ->
      if Engine.perturbation_active e then
        invalid_arg
          "Par.run: engine perturbation (splay check nemesis mode) is not supported with domains \
           > 1; run the nemesis sequentially")
    t.engines;
  let p = t.parts in
  let requested = match domains with None -> p | Some d -> if d < 1 then 1 else d in
  let workers = Dpool.effective (min requested p) in
  let planes = Array.length t.states > 0 in
  let windows = ref 0 in
  let continue_run = ref true in
  while !continue_run do
    (* Serial coordinator, between Dpool barriers — no worker domain is
       running, so this is the one place mailboxes may be touched. Drain
       everything posted during the previous window first: absorption
       timing is then a fixed point of the protocol (never mid-window),
       identical whether the partitions below run on 1 domain or 16. *)
    for i = 0 to p - 1 do
      with_part t i (fun () -> absorb_mail t i)
    done;
    (* With all posts absorbed, the global minimum next-event time is
       just the minimum over the partition queues. *)
    let tmin = ref infinity in
    for i = 0 to p - 1 do
      let a = Engine.next_at t.engines.(i) in
      if a < !tmin then tmin := a
    done;
    if !tmin = infinity then continue_run := false
    else begin
      incr windows;
      let horizon = !tmin +. t.lookahead in
      let exec i =
        if planes then begin
          let prev = Obs.state_install t.states.(i) in
          Fun.protect
            ~finally:(fun () -> ignore (Obs.state_install prev))
            (fun () -> Engine.run_to t.engines.(i) ~stop:horizon)
        end
        else Engine.run_to t.engines.(i) ~stop:horizon
      in
      if workers <= 1 then
        for i = 0 to p - 1 do
          exec i
        done
      else begin
        let next = Atomic.make 0 in
        Dpool.run ~workers (fun () ->
            let more = ref true in
            while !more do
              let i = Atomic.fetch_and_add next 1 in
              if i < p then exec i else more := false
            done)
      end
    end
  done;
  (* one merge, in partition order: byte-identical whatever [domains] was *)
  if planes then Array.iter (fun s -> Obs.absorb (Obs.state_snapshot s)) t.states;
  let events = Array.fold_left (fun acc e -> acc + (Engine.stats e).Engine.events_fired) 0 t.engines in
  { windows = !windows; events_fired = events }
