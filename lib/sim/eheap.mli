(** Specialized 4-ary min-heap on an inlined [(at, seq)] key — the event
    queue of the simulation engine, also reused for Dijkstra in the
    topology model.

    Unlike a generic comparator heap, the keys are stored in parallel
    unboxed arrays and compared with two scalar loads — no closure call,
    no float boxing. The order is strictly lexicographic on [(at, seq)];
    when callers hand out unique [seq] values the pop sequence is exactly
    sorted order, i.e. FIFO among entries that share [at].

    Tie-break policy: [seq] is an opaque ordering key, not necessarily an
    arrival counter — the heap only requires that callers keep it unique
    per [at]. The engine exploits this as its tie-break policy hook: the
    default policy passes the arrival sequence (FIFO), while the schedule
    perturbation of {!Splay_sim.Engine.set_perturbation} passes a key whose
    high bits are a deterministic random draw and whose low bits keep the
    arrival sequence, shuffling same-instant order while preserving a
    total, reproducible order. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> at:float -> seq:int -> 'a -> unit
(** Insert [x] keyed on [(at, seq)]. *)

val min_at : 'a t -> float
(** The [at] key of the minimum entry, or [infinity] when empty —
    allocation-free peeking for run loops. *)

val peek : 'a t -> 'a option
(** Payload of the minimum entry without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the payload of the minimum entry. *)

val pop_or : 'a t -> 'a -> 'a
(** [pop_or t dflt] removes and returns the payload of the minimum entry,
    or returns [dflt] when empty. Allocation-free alternative to {!pop}
    for hot loops with a natural sentinel payload. *)

val top_or : 'a t -> 'a -> 'a
(** Payload of the minimum entry without removing it, or [dflt] when
    empty — allocation-free alternative to {!peek}. *)

val popped_at : 'a t -> float
(** The [at] key of the last entry removed by {!pop} ([nan] before the
    first pop). Lets callers keep keys out of their payloads: the engine's
    event records carry no [at] field and read the clock value from here. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Drop every entry whose payload fails the predicate, then re-heapify
    (O(n)). The engine uses this to compact cancelled events out of the
    queue. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All payloads in unspecified order (for inspection in tests). *)
