(* Persistent worker-domain pool.

   PR 6's macro bench showed jobs=2 *slower* than jobs=1 on every
   workload. Profiling narrowed it to two compounding costs: a fresh
   [Domain.spawn]/[Domain.join] pair per batch (~1ms each, against
   sub-100ms trial batches), and — decisive on small boxes — running
   more domains than the machine has cores, which serializes every
   minor-GC stop-the-world rendezvous across oversubscribed domains.

   Two fixes live here:
   - [effective] clamps the requested parallelism to
     [Domain.recommended_domain_count ()], so a 1-core container runs
     jobs=2 on the plain sequential path instead of thrashing two
     domains on one core;
   - worker domains are spawned once and parked on a condition
     variable between batches (parked domains do not delay the GC), so
     batch N+1 pays no spawn cost.

   Submission protocol: [run ~workers job] wakes the parked workers and
   runs [job] on the calling domain too. Every participant executes the
   same [job] closure concurrently, so [job] must partition its own
   work (the callers here all loop on a shared [Atomic] cursor); extra
   participants simply find the cursor exhausted. [run] returns only
   after every participant finished the batch, which also gives the
   caller a happens-before edge on everything the workers wrote.

   The batch state below ([current]/[generation]/[batch_exn]) is one
   global slot: only one submitter, with no batch in flight, may call
   [run] — in practice the main domain, from which {!Pool} and {!Par}
   submit strictly in sequence. Nested submission (e.g. [Pool.map] or
   [Par.run] called from inside a pool trial, which executes on a worker
   domain) would corrupt the generation protocol or deadlock the
   submitter; [in_flight] turns that into an immediate
   [Invalid_argument] instead of a hang. *)

let cap_override = ref None

let set_cap n = cap_override := n

let hw_cap () =
  match !cap_override with
  | Some n -> if n < 1 then 1 else n
  | None ->
      let n = Domain.recommended_domain_count () in
      if n < 1 then 1 else n

let effective workers =
  let cap = hw_cap () in
  if workers < 1 then 1 else if workers > cap then cap else workers

(* One in-flight batch. [b_left] counts worker domains (not the caller)
   still inside [b_job]; the caller waits for it to hit 0. *)
type batch = { b_job : unit -> unit; mutable b_left : int }

let mu = Mutex.create ()
let work_cv = Condition.create () (* workers: a new batch (or shutdown) *)
let done_cv = Condition.create () (* caller: batch finished *)
let current : batch option ref = ref None
let generation = ref 0
let shutting_down = ref false
let workers : unit Domain.t list ref = ref []
let pool_size = ref 0

(* First exception raised by any participant of the current batch; the
   pool itself must never die, so workers trap everything. *)
let batch_exn : (exn * Printexc.raw_backtrace) option ref = ref None

let record_exn e bt =
  Mutex.lock mu;
  if !batch_exn = None then batch_exn := Some (e, bt);
  Mutex.unlock mu

(* [gen0] is the generation at spawn time: a worker added after earlier
   batches ran must wait for the *next* batch, not chase a generation
   whose [current] is already gone. *)
let worker_loop gen0 () =
  let last_gen = ref gen0 in
  let running = ref true in
  while !running do
    Mutex.lock mu;
    while (not !shutting_down) && !generation = !last_gen do
      Condition.wait work_cv mu
    done;
    if !shutting_down then begin
      Mutex.unlock mu;
      running := false
    end
    else begin
      last_gen := !generation;
      let b = Option.get !current in
      Mutex.unlock mu;
      (try b.b_job ()
       with e -> record_exn e (Printexc.get_raw_backtrace ()));
      Mutex.lock mu;
      b.b_left <- b.b_left - 1;
      if b.b_left = 0 then Condition.broadcast done_cv;
      Mutex.unlock mu
    end
  done

(* The runtime requires every domain to have terminated before the
   program exits, so the first spawn registers a shutdown hook that
   unparks and joins the pool. *)
let shutdown () =
  Mutex.lock mu;
  shutting_down := true;
  Condition.broadcast work_cv;
  Mutex.unlock mu;
  List.iter Domain.join !workers;
  workers := [];
  pool_size := 0;
  shutting_down := false

let ensure_helpers n =
  if !pool_size = 0 && n > 0 then Stdlib.at_exit shutdown;
  while !pool_size < n do
    (* only batch submitters mutate [generation], and they call this
       before incrementing it, so the read is race-free here *)
    workers := Domain.spawn (worker_loop !generation) :: !workers;
    incr pool_size
  done

let in_flight = Atomic.make false

let run ~workers:requested job =
  let w = effective requested in
  if w <= 1 then job ()
  else begin
    if not (Atomic.compare_and_set in_flight false true) then
      invalid_arg
        "Dpool.run: a batch is already in flight — only one submitter at a time may use the pool \
         (do not call Pool.map or Par.run from inside a pool trial)";
    Fun.protect
      ~finally:(fun () -> Atomic.set in_flight false)
      (fun () ->
        ensure_helpers (w - 1);
        (* Every parked worker participates, even if the pool grew beyond
           [w - 1] in an earlier batch: cursor-driven jobs are indifferent
           to extra hands. *)
        let b = { b_job = job; b_left = !pool_size } in
        Mutex.lock mu;
        batch_exn := None;
        current := Some b;
        incr generation;
        Condition.broadcast work_cv;
        Mutex.unlock mu;
        let mine =
          try
            job ();
            None
          with e -> Some (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock mu;
        while b.b_left > 0 do
          Condition.wait done_cv mu
        done;
        current := None;
        let theirs = !batch_exn in
        batch_exn := None;
        Mutex.unlock mu;
        match (theirs, mine) with
        | Some (e, bt), _ | None, Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None, None -> ())
  end
