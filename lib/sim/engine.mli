(** Discrete-event simulation engine with cooperative processes.

    The engine plays the role of the operating systems and wall clocks of the
    testbeds SPLAY deploys on: it owns a virtual clock and an event queue,
    and it hosts lightweight cooperative processes implemented with OCaml 5
    effect handlers. Processes are the reproduction of SPLAY's Lua
    coroutines: application code calls blocking-looking operations
    ({!sleep}, {!suspend}, RPCs built on them) and the handler turns each
    into an event-queue suspension, so protocol code reads like the
    pseudo-code in the paper.

    Determinism: given the same seed and the same program, a run is exactly
    reproducible. Events scheduled for the same instant fire in scheduling
    order (FIFO) — unless a {!set_perturbation} policy is installed, in
    which case the same-instant order is shuffled (and bounded extra delays
    may be injected) by a dedicated RNG split, making the run a pure
    function of [(seed, policy)] instead; with no policy installed behavior
    is bit-for-bit identical to an engine without the hook.

    Trace-context propagation: the engine captures {!Splay_obs.Obs.current}
    at every {!schedule}/{!spawn} and restores it when the event fires, and
    a suspended process resumes under the context it suspended with — so
    causal trace lineage follows control flow with no help from call sites
    (and costs nothing when tracing is disabled). *)

type t
(** An engine instance. Engines are independent; everything stateful
    (clock, queue, processes, RNG) hangs off the instance. *)

type event_id
(** Handle for a scheduled event; allows cancellation. Internally the
    event record itself, carrying a mutable fired-or-cancelled flag — so
    cancellation is one store, with no table lookup and no allocation. *)

type proc
(** Handle for a spawned process. *)

exception Process_killed
(** Raised inside a process when it is killed ({!kill}); unwinds its stack
    so [Fun.protect] cleanups run. Application code should not catch it
    without re-raising. *)

val create : ?seed:int -> unit -> t
(** Fresh engine, clock at 0.0. [seed] defaults to 42. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Rng.t
(** The engine's root RNG. Components should {!Rng.split} it. *)

(** {1 Schedule perturbation — simulation testing}

    The hook behind [splay check]: systematically explore alternative but
    reproducible schedules of the same program. *)

val set_perturbation : ?tie_shuffle:bool -> ?max_extra_delay:float -> t -> unit
(** Install a perturbation policy (splitting the root RNG for its dedicated
    stream, so install it at a fixed point — right after {!create} — for
    reproducibility). [tie_shuffle] (default [true]) randomizes the firing
    order of events scheduled for the same instant, replacing the FIFO
    tie-break; [max_extra_delay] (default [0.]) adds an extra uniform
    [[0, max_extra_delay)] seconds to every scheduled event, modelling OS
    scheduling jitter. Every draw comes from the dedicated split, one or
    two per {!schedule}, independent of queue state — so the explored
    schedule is exactly reproducible from [(seed, policy)]. *)

val clear_perturbation : t -> unit
(** Return to the default FIFO schedule (from now on; already-queued
    events keep their perturbed times and keys). *)

val perturbation_active : t -> bool

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays are
    clamped to 0. *)

val schedule_at : t -> at:float -> (unit -> unit) -> event_id
(** Absolute-time variant; times in the past are clamped to [now]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event in O(1). Cancelling an already-fired or
    already-cancelled event is a no-op (and does not disturb
    {!pending_events} accounting). Cancelled events are lazily compacted
    out of the queue once they outnumber the live ones, so
    create-then-cancel churn (RPC timeouts) cannot bloat the heap. *)

type run_stats = {
  events_fired : int;  (** events executed over the engine's lifetime *)
  final_clock : float;  (** virtual time when the run stopped *)
  max_queue_depth : int;  (** high-water mark of the event queue *)
}
(** What a drive of the engine did — the raw material of every
    "how long / how much" question an experiment asks. *)

val run : ?until:float -> t -> run_stats
(** Drain the event queue, advancing the clock, until it is empty or the
    clock would pass [until] (clock is then set to [until]). Returns the
    engine's cumulative {!run_stats}; callers that only drive the clock
    can [ignore] it. *)

val stats : t -> run_stats
(** Current cumulative statistics without running anything. *)

val step : t -> bool
(** Execute the single next event. [false] if the queue was empty. *)

val next_at : t -> float
(** Virtual time of the next live event, or [infinity] when the queue is
    empty. Does not execute anything (it may lazily discard cancelled
    tombstones at the queue head). This is what {!Par} computes window
    bounds from. *)

val run_to : t -> stop:float -> unit
(** Execute every event with time strictly below [stop], in exact
    [(at, seq)] order, leaving the clock at the last executed event
    (NOT advanced to [stop] — unlike [run ~until], the window is
    half-open and a later [run_to] continues seamlessly). Used by {!Par}
    to drive one partition through one safe window. *)

val pending_events : t -> int
(** Number of scheduled, uncancelled events (cheap upper bound used by
    tests and by {!run}'s accounting). *)

(** {1 Processes} *)

val spawn : ?name:string -> t -> (unit -> unit) -> proc
(** [spawn t f] creates a process executing [f ()] starting at the current
    instant (as a scheduled event). Exceptions escaping [f] other than
    {!Process_killed} are recorded (see {!crashed}) and terminate the
    process. *)

val kill : t -> proc -> unit
(** Terminate a process: if it is currently suspended, its continuation is
    discontinued with {!Process_killed} at the current instant; if it has
    not started, it never starts. Idempotent. *)

val alive : proc -> bool
val proc_id : proc -> int
val proc_name : proc -> string

val on_exit : proc -> (unit -> unit) -> unit
(** Register a callback run (in scheduler context) when the process
    terminates for any reason. Runs immediately if already dead. *)

val crashed : t -> (proc * exn) list
(** Processes that terminated with an unexpected exception, most recent
    first. Experiments assert this is empty. *)

(** {1 Blocking operations — valid only inside a process} *)

val sleep : float -> unit
(** Suspend the calling process for the given virtual duration. *)

val suspend : ((('a, exn) result -> unit) -> (unit -> unit)) -> 'a
(** [suspend register] captures the calling process's continuation and calls
    [register resolve]. The suspension finishes when [resolve] is called:
    [Ok v] resumes with [v], [Error e] raises [e] in the process. [resolve]
    is one-shot; later calls are ignored (so a reply racing a timeout is
    safe). Resumption happens as a fresh event at the instant [resolve] is
    called.

    [register] returns a cleanup thunk, invoked exactly once when the
    suspension settles (first resolve, or kill of the process); use it to
    cancel backing timers so they do not keep the simulation alive. *)

val suspend_ : ((('a, exn) result -> unit) -> unit) -> 'a
(** {!suspend} with no cleanup. *)

val self : unit -> proc
(** The calling process. *)

val engine : unit -> t
(** The engine hosting the calling process. *)

val yield : unit -> unit
(** Let other events at the current instant run. *)
