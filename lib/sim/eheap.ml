(* Specialized 4-ary min-heap on an inlined (at, seq) key.

   The engine's schedule/pop loop is the hottest path of every experiment,
   and the generic closure-comparator heap paid for it twice: an indirect
   call per comparison and a boxed-float load per key. Here the keys live
   in parallel arrays — [ats] is an unboxed float array, [seqs] an int
   array — so a comparison is two scalar loads and the sift loops move a
   hole instead of swapping. 4-ary halves the tree depth, which is where
   the pops spend their time.

   Order: strictly by [(at, seq)] lexicographically. Callers hand out
   unique [seq] values, so the key order is total and the pop sequence is
   exactly sorted order — FIFO among entries that share [at]. *)

(* Single-field float record: flat representation, so mutating [v] writes
   an unboxed double in place (a plain mutable float field of the mixed
   record below would be boxed and re-boxed on every store). *)
type fcell = { mutable v : float }

type 'a t = {
  mutable ats : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable size : int;
  popped_at : fcell;
}

let create () = { ats = [||]; seqs = [||]; data = [||]; size = 0; popped_at = { v = nan } }

let size t = t.size
let is_empty t = t.size = 0

let ensure_capacity t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nats = Array.make ncap 0.0 in
    let nseqs = Array.make ncap 0 in
    let ndata = Array.make ncap x in
    Array.blit t.ats 0 nats 0 t.size;
    Array.blit t.seqs 0 nseqs 0 t.size;
    Array.blit t.data 0 ndata 0 t.size;
    t.ats <- nats;
    t.seqs <- nseqs;
    t.data <- ndata
  end

let push t ~at ~seq x =
  ensure_capacity t x;
  (* sift the hole up, then drop the new entry in *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 4 in
    let pat = t.ats.(p) in
    if pat > at || (pat = at && t.seqs.(p) > seq) then begin
      t.ats.(!i) <- pat;
      t.seqs.(!i) <- t.seqs.(p);
      t.data.(!i) <- t.data.(p);
      i := p
    end
    else stop := true
  done;
  t.ats.(!i) <- at;
  t.seqs.(!i) <- seq;
  t.data.(!i) <- x

(* Sift the entry (at, seq, x) down from the hole at [start]. *)
let sift_down t start ~at ~seq x =
  let n = t.size in
  let i = ref start in
  let stop = ref false in
  while not !stop do
    let c1 = (4 * !i) + 1 in
    if c1 >= n then stop := true
    else begin
      let last = if c1 + 3 < n - 1 then c1 + 3 else n - 1 in
      let m = ref c1 in
      for c = c1 + 1 to last do
        if
          t.ats.(c) < t.ats.(!m)
          || (t.ats.(c) = t.ats.(!m) && t.seqs.(c) < t.seqs.(!m))
        then m := c
      done;
      let m = !m in
      if t.ats.(m) < at || (t.ats.(m) = at && t.seqs.(m) < seq) then begin
        t.ats.(!i) <- t.ats.(m);
        t.seqs.(!i) <- t.seqs.(m);
        t.data.(!i) <- t.data.(m);
        i := m
      end
      else stop := true
    end
  done;
  t.ats.(!i) <- at;
  t.seqs.(!i) <- seq;
  t.data.(!i) <- x

let min_at t = if t.size = 0 then infinity else t.ats.(0)

let peek t = if t.size = 0 then None else Some t.data.(0)

let popped_at t = t.popped_at.v

(* precondition: t.size > 0 *)
let pop_nonempty t =
  let top = t.data.(0) in
  t.popped_at.v <- t.ats.(0);
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let at = t.ats.(n) and seq = t.seqs.(n) and x = t.data.(n) in
    sift_down t 0 ~at ~seq x;
    (* sift_down left live elements in [0, n); parking a duplicate of
       the new root in the vacated slot keeps the popped payload from
       staying reachable through the array. (When the heap empties,
       slot 0 retains the last payload until the next push.) *)
    t.data.(n) <- t.data.(0)
  end;
  top

let pop t = if t.size = 0 then None else Some (pop_nonempty t)
let pop_or t dflt = if t.size = 0 then dflt else pop_nonempty t
let top_or t dflt = if t.size = 0 then dflt else t.data.(0)

let filter_in_place t pred =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if pred t.data.(i) then begin
      if !j <> i then begin
        t.ats.(!j) <- t.ats.(i);
        t.seqs.(!j) <- t.seqs.(i);
        t.data.(!j) <- t.data.(i)
      end;
      incr j
    end
  done;
  let kept = !j in
  (* overwrite dropped slots with a live duplicate so they are collectable *)
  if kept > 0 then
    for i = kept to t.size - 1 do
      t.data.(i) <- t.data.(0)
    done;
  t.size <- kept;
  if kept = 0 then begin
    t.ats <- [||];
    t.seqs <- [||];
    t.data <- [||]
  end
  else
    (* Floyd heapify: restore the heap property bottom-up *)
    for i = (kept - 2) / 4 downto 0 do
      sift_down t i ~at:t.ats.(i) ~seq:t.seqs.(i) t.data.(i)
    done

let clear t =
  t.ats <- [||];
  t.seqs <- [||];
  t.data <- [||];
  t.size <- 0

let to_list t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := t.data.(i) :: !acc
  done;
  !acc
