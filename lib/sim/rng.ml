type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int (seed lxor 0x1F2E3D4C)) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  (* Rejection-free modulo is fine for simulation purposes given 64 bits of
     entropy against small ranges. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform mantissa bits. *)
  let u = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float u /. 9007199254740992.0 *. x

let unit_open t =
  (* uniform in (0,1), avoiding 0 for log-based transforms *)
  let u = float t 1.0 in
  if u <= 0.0 then 1e-18 else u

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let exponential t ~mean = -.mean *. log (unit_open t)

let normal t ~mu ~sigma =
  let u1 = unit_open t and u2 = unit_open t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~scale ~shape = scale /. (unit_open t ** (1.0 /. shape))

let weibull t ~scale ~shape = scale *. ((-.log (unit_open t)) ** (1.0 /. shape))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  if n <= k then xs
  else begin
    shuffle t a;
    Array.to_list (Array.sub a 0 k)
  end

module Zipf = struct
  type rng = t

  (* Walker/Vose alias table: rank [i+1] is drawn either directly from
     column [i] (with probability [prob.(i)]) or via its alias. Same
     two-array footprint as the materialized CDF this replaces, but a
     draw is O(1) instead of an O(log n) binary search — at n = 1M the
     CDF search walks ~20 cache-missing probes per sample, which is what
     a million-client load generator spends most of its rng time on. *)
  type t = { prob : float array; alias : int array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create";
    let scaled = Array.init n (fun i -> 1.0 /. (Float.of_int (i + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0.0 scaled in
    let k = Float.of_int n /. total in
    for i = 0 to n - 1 do
      scaled.(i) <- scaled.(i) *. k
    done;
    let prob = Array.make n 1.0 in
    let alias = Array.init n Fun.id in
    (* worklists as arrays with explicit tops: construction order is a
       pure function of the weights, so tables (and every draw stream
       derived from them) are deterministic *)
    let small = Array.make n 0 and large = Array.make n 0 in
    let ns = ref 0 and nl = ref 0 in
    for i = 0 to n - 1 do
      if scaled.(i) < 1.0 then begin
        small.(!ns) <- i;
        incr ns
      end
      else begin
        large.(!nl) <- i;
        incr nl
      end
    done;
    while !ns > 0 && !nl > 0 do
      decr ns;
      let s_i = small.(!ns) in
      let l_i = large.(!nl - 1) in
      prob.(s_i) <- scaled.(s_i);
      alias.(s_i) <- l_i;
      scaled.(l_i) <- scaled.(l_i) -. (1.0 -. scaled.(s_i));
      if scaled.(l_i) < 1.0 then begin
        decr nl;
        small.(!ns) <- l_i;
        incr ns
      end
    done;
    (* leftovers are 1.0 up to rounding; their aliases are never taken *)
    { prob; alias }

  let draw z rng =
    let n = Array.length z.prob in
    (* one uniform draw serves both choices: integer part picks the
       column, fractional part decides column vs alias — the same single
       rng consumption per sample as the CDF version had *)
    let u = float rng (Float.of_int n) in
    let k = Int.min (n - 1) (int_of_float u) in
    if u -. Float.of_int k < z.prob.(k) then k + 1 else z.alias.(k) + 1
end
