(* Multicore trial fan-out.

   A trial is an independent simulation: it builds its own engine from its
   own seed and returns plain data. Those are embarrassingly parallel, so
   the bench harness hands the trial list here and we spread it over
   [jobs] domains with a shared atomic cursor (work stealing by index).

   Execution rides on {!Dpool}: a persistent pool of parked worker
   domains (no per-batch spawn/join cost), with [jobs] clamped to the
   machine's core count. On a 1-core box jobs=2 therefore runs the plain
   sequential loop instead of serializing every minor-GC rendezvous
   across two oversubscribed domains — the PR 6 fan-out regression.

   Determinism contract: the results AND the observability side effects
   are byte-identical for any [jobs]. Each trial runs inside
   [Obs.capture], which gives it a fresh domain-local recording state
   seeded with a per-trial id base; after all domains join, the snapshots
   are absorbed into the caller's state in trial-index order. Nothing a
   trial records can leak out of order, and nothing in the caller's state
   is visible to trials. *)

module Obs = Splay_obs.Obs

(* Span/trace ids of trial [i] start at [(i+1) * ids_stride]: unique per
   trial as long as a single trial opens fewer than 16M spans. *)
let ids_stride = 1 lsl 24

let default_jobs () = Dpool.effective max_int

type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

let run_trial f arr i =
  Obs.capture ~ids_base:((i + 1) * ids_stride) (fun () ->
      match f arr.(i) with
      | v -> Value v
      | exception e -> Raised (e, Printexc.get_raw_backtrace ()))

let map ?(jobs = 1) f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = if jobs < 1 then 1 else if jobs > n then n else jobs in
  let results = Array.make n None in
  let workers = Dpool.effective jobs in
  if workers <= 1 then
    for i = 0 to n - 1 do
      results.(i) <- Some (run_trial f arr i)
    done
  else begin
    let next = Atomic.make 0 in
    Dpool.run ~workers (fun () ->
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i < n then results.(i) <- Some (run_trial f arr i)
          else continue := false
        done)
  end;
  (* trial-index-ordered merge: same bytes whatever [jobs] was *)
  Array.iter (function Some (_, snap) -> Obs.absorb snap | None -> ()) results;
  Array.to_list
    (Array.map
       (function
         | Some (Value v, _) -> v
         | Some (Raised (e, bt), _) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
       results)

let mapi ?jobs f items =
  map ?jobs (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) items)
