(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator draws from an explicit [t]
    rather than the global [Random] state, so that experiments are exactly
    reproducible from a seed and independent components can be given
    independent streams via {!split}. The core generator is splitmix64. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of further
    draws from [t]. Used to give each host / protocol instance its own
    stream so that adding draws in one component does not perturb others. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via Box-Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian with parameters [mu], [sigma] (of the underlying
    normal, i.e. the standard parameterization). *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto distributed, support [\[scale, inf)]. Heavy tail for small
    [shape]. *)

val weibull : t -> scale:float -> shape:float -> float
(** Weibull distributed; used for peer session/downtime durations. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] is [k] elements of [xs] drawn without replacement
    (all of [xs] if it has fewer than [k] elements). *)

module Zipf : sig
  type rng = t

  type t
  (** Zipf sampler over ranks [1..n] with exponent [s], using a Walker
      alias table ([O(1)] per draw, one uniform rng draw per sample). *)

  val create : n:int -> s:float -> t
  val draw : t -> rng -> int
end
