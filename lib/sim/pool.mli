(** Multicore fan-out for independent simulation trials.

    The bench harness runs many independent trials (one engine, one seed
    each); {!map} spreads them over OCaml domains while keeping every
    observable output — return values, trace, metrics — byte-identical to
    a sequential run. Each trial executes inside {!Splay_obs.Obs.capture}
    with a per-trial id base, and the recorded snapshots are merged back
    in trial-index order after all domains join.

    Trials must be self-contained: build your own engine from your own
    seed, return plain data, and do not write to shared mutable state or
    to [stdout] from inside a trial. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 (honours the
    {!Dpool.set_cap} test override). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items] computed on up to [jobs]
    domains ([jobs] defaults to 1 = run in the calling domain; it is
    clamped to the item count and, via {!Dpool.effective}, to the
    machine's core count — oversubscribing cores only serializes GC).
    Domains come from the persistent {!Dpool}, so repeated batches pay
    no spawn cost. Results keep list order. If any trial raises, the
    exception of the lowest-indexed failing trial is re-raised after all
    trials settle and their observability snapshots are merged.
    Identical output for any [jobs] value. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the trial index. *)
