(** Persistent worker-domain pool.

    Shared executor behind {!Pool} (trial fan-out) and {!Par} (the
    parallel single-run engine). Worker domains are spawned once, parked
    on a condition variable between batches — parked domains do not
    delay the stop-the-world GC — and joined by an [at_exit] hook.

    Parallelism is always clamped to the machine: requesting more
    workers than [Domain.recommended_domain_count ()] oversubscribes the
    cores and serializes every minor-GC rendezvous, which is exactly the
    jobs=2 regression this module exists to kill. *)

val effective : int -> int
(** [effective w] is the number of participants a [run ~workers:w] batch
    will actually use: [w] clamped to [1 .. recommended_domain_count]
    (or to the {!set_cap} override). *)

val set_cap : int option -> unit
(** Test hook: override the hardware core count used by {!effective}.
    [set_cap (Some 4)] forces real worker domains even on a 1-core box
    (slow but correct — determinism tests use this); [set_cap None]
    restores the hardware value. Not for production code. *)

val run : workers:int -> (unit -> unit) -> unit
(** [run ~workers job] executes [job] concurrently on
    [effective workers] participants: the calling domain plus parked
    pool workers (spawned on demand, reused across batches). Every
    participant runs the {e same} [job] closure, so [job] must partition
    its own work, e.g. by looping on a shared [Atomic] cursor; extra
    participants finding no work is fine. Returns once all participants
    finished, which establishes a happens-before edge on everything they
    wrote. If any participant raises, the first exception recorded is
    re-raised after the batch settles. With [effective workers <= 1]
    this is exactly [job ()] on the calling domain.

    Single submitter only: the pool holds one global batch slot, so
    [run] may only be called with no batch in flight — in practice from
    the main domain, where {!Pool} and {!Par} submit strictly in
    sequence. Calling [run] from inside a running batch (e.g. [Pool.map]
    or [Par.run] from within a pool trial) raises [Invalid_argument]
    instead of corrupting the batch protocol or deadlocking.
    @raise Invalid_argument on nested or concurrent submission. *)
