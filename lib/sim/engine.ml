open Effect
open Effect.Deep
module Obs = Splay_obs.Obs

exception Process_killed

(* Observability sites: registered once, cheap mutable cells afterwards.
   Recording is gated on [Obs.enabled] so the hot path stays free. *)
let c_events = Obs.counter "engine.events"
let c_spawns = Obs.counter "engine.spawns"
let c_kills = Obs.counter "engine.kills"
let c_crashes = Obs.counter "engine.crashes"
let h_event_wait = Obs.histogram "engine.event_wait"
let g_queue_depth = Obs.gauge "engine.queue_depth"

(* [ctx] is the scheduler's trace context captured when the event was
   scheduled and restored when it fires — causality follows control flow
   through timers, spawns and suspensions without any help from call
   sites. When tracing is off it is always [Obs.null_ctx] (a shared
   immutable record: capturing it allocates nothing).

   The record is kept deliberately small — five words plus the one boxed
   float ([sched], read only by the traced path; the untraced path parks
   the shared constant [0.0] there and never boxes). The [at] key is not
   stored at all: heap entries read it back from {!Eheap.popped_at}, ring
   entries are at the current instant by construction. [info] packs
   (seq lsl 3) lor (popped lsl 2) lor (in_ring lsl 1) lor dead into one
   word: dead means fired-or-cancelled — cancellation is one store on the
   record, no hashing, no allocation, and cancelling an event that
   already fired is structurally a no-op. popped means the record has
   left its queue through [step], so no queue slot aliases it any more —
   the sleep fast path uses (dead && popped) as its licence to recycle a
   record (a cancelled tombstone is dead but still queued, and must not
   be touched). Dead events linger in the queues until popped or
   compacted away (see [cancel]).

   [fn] is mutable so the sleep fast path can resurrect a fired timer
   record as its own resume event instead of allocating a fresh one. *)
type event = {
  mutable info : int; (* bit 0: dead; bit 1: in ring; bit 2: popped; bits 3..: seq *)
  mutable fn : unit -> unit;
  ctx : Obs.ctx;
  sched : float;
}

let[@inline] ev_dead ev = ev.info land 1 <> 0
let[@inline] ev_mark_fired ev = ev.info <- ev.info lor 5 (* dead + popped *)
let[@inline] ev_mark_dead ev = ev.info <- ev.info lor 1
let[@inline] ev_in_ring ev = ev.info land 2 <> 0
let[@inline] ev_seq ev = ev.info lsr 3

type proc_state = Pending | Active | Dead

(* Schedule perturbation — the hook Splay_check drives. When installed,
   every scheduled event may receive a bounded extra delay and a shuffled
   same-instant tie-break key, both drawn from a dedicated split of the
   root RNG taken at install time: the explored schedule is a pure
   function of (seed, policy), and the default path pays one [None] check
   per schedule and nothing else. *)
type perturbation = {
  p_rng : Rng.t;
  p_tie_shuffle : bool;
  p_max_extra_delay : float;
}

(* Flat mutable float cell: a plain mutable float field in the mixed
   engine record would be boxed on every store. *)
type fcell = { mutable v : float }

type t = {
  (* flat cell, not [mutable now : float]: a mutable float field of this
     mixed record would allocate a fresh box on every clock advance —
     i.e. on every heap pop *)
  now : fcell;
  queue : event Eheap.t;
  (* Same-instant ring: events scheduled for [at = now] while no
     perturbation policy is installed. Such an event must fire after every
     event already queued (all have smaller seq) and before anything at a
     later instant, so a FIFO ring gives the exact (at, seq) pop order at
     O(1) per event — no sift through the standing heap. Invariants: every
     ring entry has [at = now] (the ring drains before the clock advances),
     and any heap entry with [at = now] predates — hence precedes — every
     ring entry. [ring] is a power-of-two circular buffer. *)
  mutable ring : event array;
  mutable ring_head : int;
  mutable ring_len : int;
  mutable ring_dead : int; (* cancelled events still sitting in the ring *)
  mutable next_seq : int;
  mutable next_pid : int;
  root_rng : Rng.t;
  mutable perturb : perturbation option;
  mutable current : proc option;
  mutable crashed_list : (proc * exn) list;
  mutable live_events : int;
  mutable heap_dead : int; (* cancelled events still sitting in the heap *)
  mutable events_fired : int;
  mutable max_queue_depth : int;
  (* The effect handler shared by every process of this engine. Built once
     in [create]; [spawn] used to build an equivalent closure triple per
     process, which made handler construction the dominant spawn cost. The
     handler finds the process it is serving through [current], which is
     always [Some p] while p's fiber runs (see [with_current]). *)
  mutable handler : (unit, unit) Effect.Deep.handler;
  (* Preallocated effc results: [effc] would otherwise allocate a [Some]
     and a closure on every perform. The GADT match refines the
     continuation type, so one shared value per effect suffices; [Sleep]'s
     float argument travels through [sleep_arg] (set under the same
     non-reentrant dispatch that reads it). *)
  mutable eff_self : ((proc, unit) continuation -> unit) option;
  mutable eff_sleep : ((unit, unit) continuation -> unit) option;
  sleep_arg : fcell;
}

and proc = {
  pid : int;
  (* Lazily named: the common anonymous spawn does not build its
     "proc-<pid>" string until someone ([proc_name], a traced spawn event,
     a crash report) actually asks for it. [unnamed] is a sentinel compared
     physically, so an explicit empty name is still honored. *)
  mutable pname : string;
  eng : t;
  mutable state : proc_state;
  mutable killed : bool;
  (* Cooperative processes have at most one outstanding suspension; this
     thunk discontinues it with Process_killed. *)
  mutable cancel_pending : (unit -> unit) option;
  mutable exit_hooks : (unit -> unit) list;
  (* [Some p], allocated once at spawn: every [t.current <- Some p] store
     on the resume paths reuses it instead of boxing a fresh option. *)
  self_opt : proc option;
  (* Sleep fast-path machinery (see [handle_sleep]): built on the first
     sleep, reused for every later one, so a steady-state sleep allocates
     only the stored continuation — the timer event record itself is
     recycled from the previous round once it is (dead && popped).
     [sleep_k] holds the suspended continuation directly, not behind an
     option: the [Obj.magic 0] sentinel (an immediate, GC-safe) stands
     for "none", and [sleep_state] already tracks whether a continuation
     is pending, so the wrapper only cost an allocation per sleep. *)
  mutable sleep_state : int; (* 0 idle; 1 timer pending; 2 resume pending *)
  mutable sleep_k : (unit, unit) continuation;
  mutable sleep_ctx : Obs.ctx;
  mutable sleep_ev : event; (* the in-flight timer (then resume) record *)
  mutable sleep_timer_fn : unit -> unit;
  mutable sleep_resume_fn : unit -> unit;
  mutable sleep_cancel : (unit -> unit) option; (* preallocated [Some] *)
}

type event_id = event

type _ Effect.t += Suspend : ((('a, exn) result -> unit) -> (unit -> unit)) -> 'a Effect.t
type _ Effect.t += Self : proc Effect.t

(* [sleep] is the single most frequent suspension (every periodic loop,
   every yield): it gets its own effect so the handler can wire the timer
   and resume events directly, with none of the register/resolve/cleanup
   closures of the generic [Suspend] protocol. The event schedule it
   produces is exactly the one the generic path produced — same schedule
   calls, same order, same delays — so fixed-seed traces are unchanged. *)
type _ Effect.t += Sleep : float -> unit Effect.t

let unnamed = String.make 0 'x' (* fresh, physically distinct from any literal *)

let proc_name p =
  if p.pname == unnamed then begin
    let n = "proc-" ^ string_of_int p.pid in
    p.pname <- n;
    n
  end
  else p.pname

let now t = t.now.v
let rng t = t.root_rng

let clear_perturbation t = t.perturb <- None
let perturbation_active t = t.perturb <> None

(* Placeholder parked in vacated ring slots so popped events do not stay
   reachable through the buffer. [info = 1] is dead-but-not-popped, so the
   sleep fast path can never mistake it for a recyclable record. *)
let dummy_event = { info = 1; fn = ignore; ctx = Obs.null_ctx; sched = 0.0 }

(* "No continuation" sentinel for [proc.sleep_k]: an immediate value is
   GC-safe in a pointer-typed field, and [sleep_state] guarantees the
   field is never read while it holds the sentinel. *)
let null_k : (unit, unit) continuation = Obj.magic 0

let ring_push t ev =
  let cap = Array.length t.ring in
  if t.ring_len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nr = Array.make ncap dummy_event in
    for i = 0 to t.ring_len - 1 do
      nr.(i) <- t.ring.((t.ring_head + i) land (cap - 1))
    done;
    t.ring <- nr;
    t.ring_head <- 0
  end;
  t.ring.((t.ring_head + t.ring_len) land (Array.length t.ring - 1)) <- ev;
  t.ring_len <- t.ring_len + 1

let ring_pop t =
  let i = t.ring_head in
  let ev = t.ring.(i) in
  t.ring.(i) <- dummy_event;
  t.ring_head <- (i + 1) land (Array.length t.ring - 1);
  t.ring_len <- t.ring_len - 1;
  ev

let queue_depth t = Eheap.size t.queue + t.ring_len

let[@inline] note_depth t =
  let depth = queue_depth t in
  if depth > t.max_queue_depth then begin
    t.max_queue_depth <- depth;
    if !Obs.enabled || !Obs.metrics_enabled then Obs.gauge_set g_queue_depth (Float.of_int depth)
  end

let set_perturbation ?(tie_shuffle = true) ?(max_extra_delay = 0.0) t =
  (* A perturbed schedule keys same-instant events by a random draw, so the
     FIFO ring no longer reflects pop order: spill pending ring entries into
     the heap (keeping their original FIFO keys) and stop using it. *)
  while t.ring_len > 0 do
    let ev = ring_pop t in
    ev.info <- ev.info land lnot 2;
    if ev_dead ev then begin
      t.ring_dead <- t.ring_dead - 1;
      t.heap_dead <- t.heap_dead + 1
    end;
    Eheap.push t.queue ~at:t.now.v ~seq:(ev_seq ev) ev
  done;
  t.perturb <-
    Some
      {
        p_rng = Rng.split t.root_rng;
        p_tie_shuffle = tie_shuffle;
        p_max_extra_delay = max_extra_delay;
      }

let schedule_at t ~at fn =
  let at = if at < t.now.v then t.now.v else at in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match t.perturb with
  | None ->
      (* context capture is a domain-local read and [sched] a float box;
         skip both when tracing is off — contexts are all null then, and
         [sched] is only ever read by the traced wait histogram *)
      let traced = !Obs.enabled in
      let ctx = if traced then Obs.current () else Obs.null_ctx in
      let sched = if traced then t.now.v else 0.0 in
      if at = t.now.v then begin
        (* same-instant: FIFO ring, O(1) and no heap traffic *)
        let ev = { info = (seq lsl 3) lor 2; fn; ctx; sched } in
        ring_push t ev;
        t.live_events <- t.live_events + 1;
        note_depth t;
        ev
      end
      else begin
        let ev = { info = seq lsl 3; fn; ctx; sched } in
        Eheap.push t.queue ~at ~seq ev;
        t.live_events <- t.live_events + 1;
        note_depth t;
        ev
      end
  | Some p ->
      let at =
        if p.p_max_extra_delay > 0.0 then at +. Rng.float p.p_rng p.p_max_extra_delay else at
      in
      let key =
        if p.p_tie_shuffle then (Rng.int p.p_rng 0x40000000 lsl 31) lor (seq land 0x7FFFFFFF)
        else seq
      in
      let ctx = if !Obs.enabled then Obs.current () else Obs.null_ctx in
      let sched = if !Obs.enabled then t.now.v else 0.0 in
      let ev = { info = seq lsl 3; fn; ctx; sched } in
      Eheap.push t.queue ~at ~seq:key ev;
      t.live_events <- t.live_events + 1;
      note_depth t;
      ev

let schedule t ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~at:(t.now.v +. delay) fn

(* Cancelled events stay in their queue as tombstones until they surface at
   the top — except that create-then-cancel churn (RPC timeouts are
   exactly this) could then grow the heap without bound. When more than
   half the heap is dead we compact it in place: O(n), amortised against
   the cancels that built the garbage up. (Ring tombstones drain at the
   current instant by themselves.) *)
let cancel t ev =
  if not (ev_dead ev) then begin
    ev_mark_dead ev;
    t.live_events <- t.live_events - 1;
    if ev_in_ring ev then t.ring_dead <- t.ring_dead + 1
    else t.heap_dead <- t.heap_dead + 1;
    (* trigger accounting spans both queues so the compaction instants (and
       hence the queue-depth high-water marks experiments record) are the
       ones the single-heap engine produced *)
    let dead = t.heap_dead + t.ring_dead in
    if dead > 64 && 2 * dead > queue_depth t then begin
      Eheap.filter_in_place t.queue (fun e -> not (ev_dead e));
      t.heap_dead <- 0;
      if t.ring_dead > 0 then begin
        (* stable in-place compaction of the circular buffer *)
        let cap = Array.length t.ring in
        let j = ref 0 in
        for i = 0 to t.ring_len - 1 do
          let ev = t.ring.((t.ring_head + i) land (cap - 1)) in
          if not (ev_dead ev) then begin
            t.ring.((t.ring_head + !j) land (cap - 1)) <- ev;
            incr j
          end
        done;
        for i = !j to t.ring_len - 1 do
          t.ring.((t.ring_head + i) land (cap - 1)) <- dummy_event
        done;
        t.ring_len <- !j;
        t.ring_dead <- 0
      end
    end
  end

let pending_events t = t.live_events

(* Next event in exact (at, seq) order, or [dummy_event] when both queues
   are empty (an allocation-free "none"). A heap entry with [at = now]
   precedes every ring entry (it was queued before the clock reached [now],
   so its seq is smaller); otherwise a non-empty ring holds the next event
   (its head is at [now], the heap minimum is later). *)
let rec pop_live t =
  if t.ring_len > 0 && Eheap.min_at t.queue <> t.now.v then begin
    let ev = ring_pop t in
    if ev_dead ev then begin
      t.ring_dead <- t.ring_dead - 1;
      pop_live t
    end
    else ev
  end
  else begin
    let ev = Eheap.pop_or t.queue dummy_event in
    if ev == dummy_event then dummy_event
    else if ev_dead ev then begin
      t.heap_dead <- t.heap_dead - 1;
      pop_live t
    end
    else ev
  end

let step t =
  let ev = pop_live t in
  if ev == dummy_event then false
  else begin
    (* ring events are at the current instant; heap events carry the
       clock forward via the key of the pop that surfaced them *)
    if not (ev_in_ring ev) then t.now.v <- Eheap.popped_at t.queue;
    ev_mark_fired ev (* fired: a late cancel must not touch the accounting *);
    t.live_events <- t.live_events - 1;
    t.events_fired <- t.events_fired + 1;
    if !Obs.enabled then begin
      Obs.incr c_events;
      Obs.observe h_event_wait (t.now.v -. ev.sched);
      Obs.set_current ev.ctx
    end
    else if !Obs.metrics_enabled then
      (* metrics-only: windowed event rate, but no wait histogram — [sched]
         is only stamped (and timer records never recycled) when tracing,
         and that licence is what keeps this path allocation-lean *)
      Obs.incr c_events;
    ev.fn ();
    true
  end

type run_stats = { events_fired : int; final_clock : float; max_queue_depth : int }

let stats (t : t) =
  { events_fired = t.events_fired; final_clock = t.now.v; max_queue_depth = t.max_queue_depth }

(* Pop cancelled tombstones off the *global* queue head so the limit check
   in [run ~until] reflects the next *live* event. Without this, a dead
   head with [at <= limit] passes the limit check and [step] — which skips
   tombstones unconditionally — would fire the next live event even past
   the limit. The drain follows exact (at, seq) order — same selection
   rule as [pop_live] — and stops at the first live event, so tombstones
   sitting behind a live entry are removed no earlier than the single-heap
   engine removed them (the queue-depth gauge sees identical values). *)
let rec drain_dead_head t =
  if t.ring_len > 0 && Eheap.min_at t.queue <> t.now.v then begin
    if ev_dead t.ring.(t.ring_head) then begin
      ignore (ring_pop t);
      t.ring_dead <- t.ring_dead - 1;
      drain_dead_head t
    end
  end
  else begin
    let ev = Eheap.top_or t.queue dummy_event in
    if ev != dummy_event && ev_dead ev then begin
      ignore (Eheap.pop_or t.queue dummy_event);
      t.heap_dead <- t.heap_dead - 1;
      drain_dead_head t
    end
  end

let run ?until t =
  (match until with
  | None -> while step t do () done
  | Some limit ->
      let continue_run = ref true in
      while !continue_run do
        drain_dead_head t;
        (* a live ring entry is at the current instant by construction *)
        let at = if t.ring_len > 0 then t.now.v else Eheap.min_at t.queue in
        if at > limit then continue_run := false else ignore (step t)
      done;
      if t.now.v < limit then t.now.v <- limit);
  stats t

(* [next_at] / [run_to]: the window primitives the parallel engine (Par)
   drives partitions with. Unlike [run ~until], [run_to] treats [stop] as
   exclusive and never advances the clock into the unexecuted region —
   a later window (or an absorbed cross-partition message at exactly
   [stop]) continues seamlessly from wherever this partition halted. *)

let next_at t =
  drain_dead_head t;
  if t.ring_len > 0 then t.now.v else Eheap.min_at t.queue

let run_to t ~stop =
  let continue_run = ref true in
  while !continue_run do
    drain_dead_head t;
    let at = if t.ring_len > 0 then t.now.v else Eheap.min_at t.queue in
    if at >= stop then continue_run := false else ignore (step t)
  done

(* {2 Processes} *)

let alive p = p.state <> Dead
let proc_id p = p.pid

let run_exit_hooks p =
  let hooks = p.exit_hooks in
  p.exit_hooks <- [];
  List.iter (fun h -> h ()) (List.rev hooks)

let on_exit p h = if p.state = Dead then h () else p.exit_hooks <- h :: p.exit_hooks

let crashed t = t.crashed_list

(* [Fun.protect]-free current-process bracket: the restore cannot raise, so
   a plain re-raise is equivalent and allocates nothing. *)
let with_current t p f =
  let saved = t.current in
  t.current <- p.self_opt;
  match f () with
  | x ->
      t.current <- saved;
      x
  | exception e ->
      t.current <- saved;
      raise e

(* The process the shared handler is serving: its fiber only ever runs
   under [with_current], so [current] is [Some p] at every retc/exnc/effc
   entry. *)
let cur t = match t.current with Some p -> p | None -> assert false

let finish p =
  if p.state <> Dead then begin
    p.state <- Dead;
    p.cancel_pending <- None;
    run_exit_hooks p
  end

(* Generic suspension (the [Suspend] effect): capture the continuation,
   hand user code a one-shot [resolve], arrange for kill to discontinue.
   All one-shot coordination lives in one small mutable record instead of
   the former pair of refs plus a shared settle closure. *)
type susp = { mutable settled : bool; mutable cleanup : unit -> unit }

let noop () = ()

let handle_suspend : type a.
    t -> proc -> (((a, exn) result -> unit) -> unit -> unit) -> (a, unit) continuation -> unit =
 fun t p register k ->
  (* A process keeps its own trace context across a suspension: the resume
     event would otherwise inherit the resolver's context (e.g. a reply
     delivery), misattributing everything the process does next. Gated so
     the disabled path does not even read domain-local state. *)
  let traced = !Obs.enabled in
  let susp_ctx = if traced then Obs.current () else Obs.null_ctx in
  let s = { settled = false; cleanup = noop } in
  let settle () =
    s.settled <- true;
    p.cancel_pending <- None;
    let c = s.cleanup in
    s.cleanup <- noop;
    c ()
  in
  p.cancel_pending <-
    Some
      (fun () ->
        if not s.settled then begin
          settle ();
          with_current t p (fun () ->
              if traced then Obs.set_current susp_ctx;
              discontinue k Process_killed)
        end);
  let resolve r =
    if not s.settled then begin
      settle ();
      ignore
        (schedule t ~delay:0.0 (fun () ->
             if p.state = Dead then ()
             else begin
               let saved = t.current in
               t.current <- p.self_opt;
               if traced then Obs.set_current susp_ctx;
               match
                 if p.killed then discontinue k Process_killed
                 else match r with Ok v -> continue k v | Error e -> discontinue k e
               with
               | () -> t.current <- saved
               | exception e ->
                   t.current <- saved;
                   raise e
             end))
    end
  in
  let c = register resolve in
  if s.settled then c () else s.cleanup <- c

(* Sleep fast path. Event-for-event identical to routing a timer through
   [handle_suspend] — one timer event now, one resume event when it fires,
   one thunk event on kill — but with no per-sleep closures: the timer,
   resume and kill actions are built once per process on its first sleep
   and driven by a small state machine ([sleep_state]) on the record.
   When tracing is off the fired timer record itself is resurrected (fresh
   seq, [fn] flipped to the resume action) as the same-instant resume
   event, so a steady-state sleep allocates only the timer record and the
   stored continuation. *)

let sleep_resume t p () =
  p.sleep_state <- 0;
  let k = p.sleep_k in
  p.sleep_k <- null_k;
  if p.state = Dead then ()
  else begin
    let saved = t.current in
    t.current <- p.self_opt;
    if !Obs.enabled then Obs.set_current p.sleep_ctx;
    match if p.killed then discontinue k Process_killed else continue k () with
    | () -> t.current <- saved
    | exception e ->
        t.current <- saved;
        raise e
  end

let sleep_timer t p () =
  p.cancel_pending <- None;
  p.sleep_state <- 2;
  if (not !Obs.enabled) && t.perturb == None then begin
    (* resurrect the fired timer record as the resume event: this is
       exactly [schedule ~delay:0.0] — fresh seq, same-instant ring entry —
       minus the allocation (and minus the ctx/sched refresh, which only
       the traced path reads) *)
    let ev = p.sleep_ev in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    ev.info <- (seq lsl 3) lor 2;
    ev.fn <- p.sleep_resume_fn;
    ring_push t ev;
    t.live_events <- t.live_events + 1;
    note_depth t
  end
  else p.sleep_ev <- schedule t ~delay:0.0 p.sleep_resume_fn

let sleep_kill t p () =
  (* runs as the kill thunk: only a still-pending timer needs acting on —
     once the timer fired ([sleep_state = 2]) the resume event is already
     queued and will observe [killed] *)
  if p.sleep_state = 1 then begin
    p.sleep_state <- 0;
    cancel t p.sleep_ev;
    p.cancel_pending <- None;
    let k = p.sleep_k in
    p.sleep_k <- null_k;
    let saved = t.current in
    t.current <- p.self_opt;
    if !Obs.enabled then Obs.set_current p.sleep_ctx;
    match discontinue k Process_killed with
    | () -> t.current <- saved
    | exception e ->
        t.current <- saved;
        raise e
  end

(* The delay travels through [t.sleep_arg] (set by the [Sleep] dispatch in
   [effc] just before this runs), not as a float parameter: without
   cross-module inlining a float argument is boxed at every call. *)
let handle_sleep t p (k : (unit, unit) continuation) =
  let d = t.sleep_arg.v in
  if p.sleep_cancel == None then begin
    p.sleep_timer_fn <- sleep_timer t p;
    p.sleep_resume_fn <- sleep_resume t p;
    p.sleep_cancel <- Some (sleep_kill t p)
  end;
  p.sleep_k <- k;
  p.sleep_ctx <- (if !Obs.enabled then Obs.current () else Obs.null_ctx);
  p.sleep_state <- 1;
  let ev = p.sleep_ev in
  if
    ev.info land 5 = 5 (* dead && popped: fired and fully dequeued *)
    && (not !Obs.enabled)
    && t.perturb == None
  then begin
    (* Recycle last round's record as this round's timer: the proc is the
       only holder of a fired record, so in the steady state one event
       record serves a proc for its whole life and a sleep allocates
       nothing but the stored continuation. Exactly [schedule ~delay:d]
       minus the allocation; ctx/sched refresh is skipped — stale values
       are only ever read by the traced path, and a record is never
       recycled while tracing is on. *)
    let d = if d < 0.0 then 0.0 else d in
    let at = t.now.v +. d in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    ev.fn <- p.sleep_timer_fn;
    if at = t.now.v then begin
      ev.info <- (seq lsl 3) lor 2;
      ring_push t ev
    end
    else begin
      ev.info <- seq lsl 3;
      Eheap.push t.queue ~at ~seq ev
    end;
    t.live_events <- t.live_events + 1;
    note_depth t
  end
  else p.sleep_ev <- schedule t ~delay:d p.sleep_timer_fn;
  p.cancel_pending <- p.sleep_cancel

let make_handler t : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> finish (cur t));
    exnc =
      (fun e ->
        let p = cur t in
        (match e with
        | Process_killed -> ()
        | e ->
            t.crashed_list <- (p, e) :: t.crashed_list;
            Obs.incr c_crashes;
            if !Obs.enabled then
              Obs.event
                ~attrs:[ ("proc", proc_name p); ("exn", Printexc.to_string e) ]
                "engine.crash");
        finish p);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Self ->
            let r : ((b, unit) continuation -> unit) option = t.eff_self in
            r
        | Sleep d ->
            t.sleep_arg.v <- d;
            let r : ((b, unit) continuation -> unit) option = t.eff_sleep in
            r
        | Suspend register ->
            Some (fun (k : (b, unit) continuation) -> handle_suspend t (cur t) register k)
        | _ -> None);
  }

let create ?(seed = 42) () =
  let t =
    {
      now = { v = 0.0 };
      queue = Eheap.create ();
      ring = [||];
      ring_head = 0;
      ring_len = 0;
      ring_dead = 0;
      next_seq = 0;
      next_pid = 0;
      root_rng = Rng.create seed;
      perturb = None;
      current = None;
      crashed_list = [];
      live_events = 0;
      heap_dead = 0;
      events_fired = 0;
      max_queue_depth = 0;
      handler = { retc = ignore; exnc = raise; effc = (fun _ -> None) };
      eff_self = None;
      eff_sleep = None;
      sleep_arg = { v = 0.0 };
    }
  in
  t.handler <- make_handler t;
  t.eff_self <- Some (fun (k : (proc, unit) continuation) -> continue k (cur t));
  t.eff_sleep <- Some (fun (k : (unit, unit) continuation) -> handle_sleep t (cur t) k);
  (* The trace is stamped with virtual time: the most recently created
     engine on this domain owns the observability clock. *)
  Obs.set_clock (fun () -> t.now.v);
  t

let spawn ?name t f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let rec p =
    {
      pid;
      pname = (match name with Some n -> n | None -> unnamed);
      eng = t;
      state = Pending;
      killed = false;
      cancel_pending = None;
      exit_hooks = [];
      self_opt = Some p;
      sleep_state = 0;
      sleep_k = null_k;
      sleep_ctx = Obs.null_ctx;
      sleep_ev = dummy_event;
      sleep_timer_fn = noop;
      sleep_resume_fn = noop;
      sleep_cancel = None;
    }
  in
  Obs.incr c_spawns;
  if !Obs.enabled then
    (* attr key is proc_id, not pid: pid is the record's parent-span field *)
    Obs.event ~attrs:[ ("proc", proc_name p); ("proc_id", string_of_int pid) ] "engine.spawn";
  ignore
    (schedule t ~delay:0.0 (fun () ->
         if p.state = Pending && not p.killed then begin
           p.state <- Active;
           with_current t p (fun () -> match_with f () t.handler)
         end
         else if p.state = Pending then begin
           p.state <- Dead;
           run_exit_hooks p
         end));
  p

let note_kill p =
  Obs.incr c_kills;
  if !Obs.enabled then
    Obs.event ~attrs:[ ("proc", proc_name p); ("proc_id", string_of_int p.pid) ] "engine.kill"

let kill t p =
  match p.state with
  | Dead -> ()
  | Pending ->
      if not p.killed then begin
        p.killed <- true;
        note_kill p;
        (* the start event will notice and run exit hooks *)
        ignore
          (schedule t ~delay:0.0 (fun () ->
               if p.state = Pending then begin
                 p.state <- Dead;
                 run_exit_hooks p
               end))
      end
  | Active ->
      if not p.killed then begin
        p.killed <- true;
        note_kill p;
        match p.cancel_pending with
        | Some thunk ->
            p.cancel_pending <- None;
            ignore (schedule t ~delay:0.0 thunk)
        | None ->
            (match t.current with
            | Some q when q == p ->
                (* self-kill while running: unwind immediately *)
                raise Process_killed
            | _ ->
                (* a resume is already scheduled; it will observe [killed]
                   and discontinue *)
                ())
      end

(* {2 Blocking operations} *)

let self () = perform Self
let engine () = (perform Self).eng
let suspend register = perform (Suspend register)
let suspend_ register = suspend (fun resolve -> register resolve; fun () -> ())
let sleep d = perform (Sleep d)
let yield () = sleep 0.0
