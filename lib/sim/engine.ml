open Effect
open Effect.Deep
module Obs = Splay_obs.Obs

exception Process_killed

(* Observability sites: registered once, cheap mutable cells afterwards.
   Recording is gated on [Obs.enabled] so the hot path stays free. *)
let c_events = Obs.counter "engine.events"
let c_spawns = Obs.counter "engine.spawns"
let c_kills = Obs.counter "engine.kills"
let c_crashes = Obs.counter "engine.crashes"
let h_event_wait = Obs.histogram "engine.event_wait"
let g_queue_depth = Obs.gauge "engine.queue_depth"

(* [ctx] is the scheduler's trace context captured when the event was
   scheduled and restored when it fires — causality follows control flow
   through timers, spawns and suspensions without any help from call
   sites. When tracing is off it is always [Obs.null_ctx] (a shared
   immutable record: capturing it allocates nothing).

   [dead] means fired-or-cancelled: cancellation is one store on the
   record, no hashing, no allocation, and cancelling an event that
   already fired is structurally a no-op. Dead events linger in the heap
   until popped or compacted away (see [cancel]). *)
type event = {
  at : float;
  sched : float;
  seq : int;
  ctx : Obs.ctx;
  fn : unit -> unit;
  mutable dead : bool;
}

type proc_state = Pending | Active | Dead

(* Schedule perturbation — the hook Splay_check drives. When installed,
   every scheduled event may receive a bounded extra delay and a shuffled
   same-instant tie-break key, both drawn from a dedicated split of the
   root RNG taken at install time: the explored schedule is a pure
   function of (seed, policy), and the default path pays one [None] check
   per schedule and nothing else. *)
type perturbation = {
  p_rng : Rng.t;
  p_tie_shuffle : bool;
  p_max_extra_delay : float;
}

type t = {
  mutable now : float;
  queue : event Eheap.t;
  mutable next_seq : int;
  mutable next_pid : int;
  root_rng : Rng.t;
  mutable perturb : perturbation option;
  mutable current : proc option;
  mutable crashed_list : (proc * exn) list;
  mutable live_events : int;
  mutable heap_dead : int; (* cancelled events still sitting in the heap *)
  mutable events_fired : int;
  mutable max_queue_depth : int;
}

and proc = {
  pid : int;
  pname : string;
  eng : t;
  mutable state : proc_state;
  mutable killed : bool;
  (* Cooperative processes have at most one outstanding suspension; this
     thunk discontinues it with Process_killed. *)
  mutable cancel_pending : (unit -> unit) option;
  mutable exit_hooks : (unit -> unit) list;
}

type event_id = event

type _ Effect.t += Suspend : ((('a, exn) result -> unit) -> (unit -> unit)) -> 'a Effect.t
type _ Effect.t += Self : proc Effect.t

let create ?(seed = 42) () =
  let t =
    {
      now = 0.0;
      queue = Eheap.create ();
      next_seq = 0;
      next_pid = 0;
      root_rng = Rng.create seed;
      perturb = None;
      current = None;
      crashed_list = [];
      live_events = 0;
      heap_dead = 0;
      events_fired = 0;
      max_queue_depth = 0;
    }
  in
  (* The trace is stamped with virtual time: the most recently created
     engine on this domain owns the observability clock. *)
  Obs.set_clock (fun () -> t.now);
  t

let now t = t.now
let rng t = t.root_rng

let set_perturbation ?(tie_shuffle = true) ?(max_extra_delay = 0.0) t =
  t.perturb <-
    Some
      {
        p_rng = Rng.split t.root_rng;
        p_tie_shuffle = tie_shuffle;
        p_max_extra_delay = max_extra_delay;
      }

let clear_perturbation t = t.perturb <- None
let perturbation_active t = t.perturb <> None

let schedule_at t ~at fn =
  let at = if at < t.now then t.now else at in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* The heap orders strictly by the (at, key) pair; [key] defaults to the
     arrival sequence (FIFO among same-instant events). A perturbation
     policy replaces the key's high bits with a random draw — shuffling the
     tie-break while the low sequence bits keep the order total — and may
     push [at] out by a bounded random delay. Both draws happen on every
     schedule, so the consumed stream (hence the whole schedule) depends
     only on (seed, policy), not on heap contents. *)
  let at, key =
    match t.perturb with
    | None -> (at, seq)
    | Some p ->
        let at =
          if p.p_max_extra_delay > 0.0 then at +. Rng.float p.p_rng p.p_max_extra_delay
          else at
        in
        let key =
          if p.p_tie_shuffle then (Rng.int p.p_rng 0x40000000 lsl 31) lor (seq land 0x7FFFFFFF)
          else seq
        in
        (at, key)
  in
  (* context capture is a domain-local read; skip even that when tracing
     is off — every context is null then anyway *)
  let ctx = if !Obs.enabled then Obs.current () else Obs.null_ctx in
  let ev = { at; sched = t.now; seq; ctx; fn; dead = false } in
  Eheap.push t.queue ~at ~seq:key ev;
  t.live_events <- t.live_events + 1;
  let depth = Eheap.size t.queue in
  if depth > t.max_queue_depth then begin
    t.max_queue_depth <- depth;
    if !Obs.enabled then Obs.gauge_set g_queue_depth (Float.of_int depth)
  end;
  ev

let schedule t ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~at:(t.now +. delay) fn

(* Cancelled events stay in the heap as tombstones until they surface at
   the top — except that create-then-cancel churn (RPC timeouts are
   exactly this) could then grow the heap without bound. When more than
   half the heap is dead we compact it in place: O(n), amortised against
   the cancels that built the garbage up. *)
let cancel t ev =
  if not ev.dead then begin
    ev.dead <- true;
    t.live_events <- t.live_events - 1;
    t.heap_dead <- t.heap_dead + 1;
    if t.heap_dead > 64 && 2 * t.heap_dead > Eheap.size t.queue then begin
      Eheap.filter_in_place t.queue (fun e -> not e.dead);
      t.heap_dead <- 0
    end
  end

let pending_events t = t.live_events

let rec pop_live t =
  match Eheap.pop t.queue with
  | None -> None
  | Some ev ->
      if ev.dead then begin
        t.heap_dead <- t.heap_dead - 1;
        pop_live t
      end
      else Some ev

let step t =
  match pop_live t with
  | None -> false
  | Some ev ->
      t.now <- ev.at;
      ev.dead <- true (* fired: a late cancel must not touch the accounting *);
      t.live_events <- t.live_events - 1;
      t.events_fired <- t.events_fired + 1;
      if !Obs.enabled then begin
        Obs.incr c_events;
        Obs.observe h_event_wait (ev.at -. ev.sched);
        Obs.set_current ev.ctx
      end;
      ev.fn ();
      true

type run_stats = { events_fired : int; final_clock : float; max_queue_depth : int }

let stats (t : t) =
  { events_fired = t.events_fired; final_clock = t.now; max_queue_depth = t.max_queue_depth }

(* Pop cancelled tombstones off the heap head so [min_at] reflects the
   next *live* event. Without this, a dead head with [at <= limit] passes
   the limit check and [step] — which skips tombstones unconditionally —
   would fire the next live event even past the limit. *)
let rec drain_dead_head t =
  match Eheap.peek t.queue with
  | Some ev when ev.dead ->
      ignore (Eheap.pop t.queue);
      t.heap_dead <- t.heap_dead - 1;
      drain_dead_head t
  | _ -> ()

let run ?until t =
  (match until with
  | None -> while step t do () done
  | Some limit ->
      let continue_run = ref true in
      while !continue_run do
        drain_dead_head t;
        let at = Eheap.min_at t.queue in
        if at > limit then continue_run := false else ignore (step t)
      done;
      if t.now < limit then t.now <- limit);
  stats t

(* {2 Processes} *)

let alive p = p.state <> Dead
let proc_id p = p.pid
let proc_name p = p.pname

let run_exit_hooks p =
  let hooks = p.exit_hooks in
  p.exit_hooks <- [];
  List.iter (fun h -> h ()) (List.rev hooks)

let on_exit p h = if p.state = Dead then h () else p.exit_hooks <- h :: p.exit_hooks

let crashed t = t.crashed_list

let with_current t p f =
  let saved = t.current in
  t.current <- Some p;
  Fun.protect ~finally:(fun () -> t.current <- saved) f

let spawn ?name t f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let pname = match name with Some n -> n | None -> Printf.sprintf "proc-%d" pid in
  let p =
    { pid; pname; eng = t; state = Pending; killed = false; cancel_pending = None; exit_hooks = [] }
  in
  Obs.incr c_spawns;
  if !Obs.enabled then
    (* attr key is proc_id, not pid: pid is the record's parent-span field *)
    Obs.event ~attrs:[ ("proc", pname); ("proc_id", string_of_int pid) ] "engine.spawn";
  let finish () =
    if p.state <> Dead then begin
      p.state <- Dead;
      p.cancel_pending <- None;
      run_exit_hooks p
    end
  in
  let handler =
    {
      retc = (fun () -> finish ());
      exnc =
        (fun e ->
          (match e with
          | Process_killed -> ()
          | e ->
              t.crashed_list <- (p, e) :: t.crashed_list;
              Obs.incr c_crashes;
              if !Obs.enabled then
                Obs.event
                  ~attrs:[ ("proc", p.pname); ("exn", Printexc.to_string e) ]
                  "engine.crash");
          finish ());
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Self -> Some (fun (k : (b, unit) continuation) -> continue k p)
          | Suspend register ->
              Some
                (fun (k : (b, unit) continuation) ->
                  (* A process keeps its own trace context across a
                     suspension: the resume event would otherwise inherit
                     the resolver's context (e.g. a reply delivery),
                     misattributing everything the process does next.
                     Gated so the disabled path does not even read
                     domain-local state. *)
                  let traced = !Obs.enabled in
                  let susp_ctx = if traced then Obs.current () else Obs.null_ctx in
                  let settled = ref false in
                  let cleanup = ref (fun () -> ()) in
                  let settle () =
                    settled := true;
                    p.cancel_pending <- None;
                    let c = !cleanup in
                    cleanup := (fun () -> ());
                    c ()
                  in
                  p.cancel_pending <-
                    Some
                      (fun () ->
                        if not !settled then begin
                          settle ();
                          with_current t p (fun () ->
                              if traced then Obs.set_current susp_ctx;
                              discontinue k Process_killed)
                        end);
                  let resolve r =
                    if not !settled then begin
                      settle ();
                      ignore
                        (schedule t ~delay:0.0 (fun () ->
                             if p.state = Dead then ()
                             else if p.killed then
                               with_current t p (fun () ->
                                   if traced then Obs.set_current susp_ctx;
                                   discontinue k Process_killed)
                             else
                               with_current t p (fun () ->
                                   if traced then Obs.set_current susp_ctx;
                                   match r with Ok v -> continue k v | Error e -> discontinue k e)))
                    end
                  in
                  let c = register resolve in
                  if !settled then c () else cleanup := c)
          | _ -> None);
    }
  in
  ignore
    (schedule t ~delay:0.0 (fun () ->
         if p.state = Pending && not p.killed then begin
           p.state <- Active;
           with_current t p (fun () -> match_with f () handler)
         end
         else if p.state = Pending then begin
           p.state <- Dead;
           run_exit_hooks p
         end));
  p

let note_kill p =
  Obs.incr c_kills;
  if !Obs.enabled then
    Obs.event ~attrs:[ ("proc", p.pname); ("proc_id", string_of_int p.pid) ] "engine.kill"

let kill t p =
  match p.state with
  | Dead -> ()
  | Pending ->
      if not p.killed then begin
        p.killed <- true;
        note_kill p;
        (* the start event will notice and run exit hooks *)
        ignore
          (schedule t ~delay:0.0 (fun () ->
               if p.state = Pending then begin
                 p.state <- Dead;
                 run_exit_hooks p
               end))
      end
  | Active ->
      if not p.killed then begin
        p.killed <- true;
        note_kill p;
        match p.cancel_pending with
        | Some thunk ->
            p.cancel_pending <- None;
            ignore (schedule t ~delay:0.0 thunk)
        | None ->
            (match t.current with
            | Some q when q == p ->
                (* self-kill while running: unwind immediately *)
                raise Process_killed
            | _ ->
                (* a resume is already scheduled; it will observe [killed]
                   and discontinue *)
                ())
      end

(* {2 Blocking operations} *)

let self () = perform Self
let engine () = (perform Self).eng
let suspend register = perform (Suspend register)
let suspend_ register = suspend (fun resolve -> register resolve; fun () -> ())

let sleep d =
  let t = engine () in
  suspend (fun resolve ->
      let ev = schedule t ~delay:d (fun () -> resolve (Ok ())) in
      fun () -> cancel t ev)

let yield () = sleep 0.0
