(** Conservative time-windowed parallel discrete-event engine.

    Splits ONE simulated deployment across partitions, each owning a
    full {!Engine}, and synchronizes them with safe time windows derived
    from lookahead — the minimum cross-partition one-way delay (get it
    from {!Splay_net.Latency.lookahead}). Within a window
    [\[tmin, tmin + lookahead)] every partition executes its local
    events freely; cross-partition traffic goes through per-(src,dst)
    mailboxes ({!post}) and is absorbed serially, by the coordinator at
    window barriers — never while partitions are executing — so no
    partition ever receives an event in its past (violations raise
    rather than corrupt causality) and absorption order cannot depend
    on domain count or timing.

    Determinism: a run is a pure function of [(seed, parts)] — results,
    traces and metrics are byte-identical whatever [?domains] executed
    it. Changing [parts] is a different (equally valid) schedule, the
    same way changing the seed is.

    Plumbing hosts/testbeds/nets onto partitions is
    {!Splay_net.Fabric}'s job; this module only knows engines, windows
    and mailboxes. *)

type t

type run_info = {
  windows : int;  (** barriers executed — virtual span / lookahead, roughly *)
  events_fired : int;  (** total across partitions *)
}

val create : ?seed:int -> lookahead:float -> parts:int -> unit -> t
(** [parts] independent engines with seed-derived RNG streams
    (partition 0 of a [parts = 1] run is exactly [Engine.create ~seed]).
    [lookahead] must be positive — it is the promise that no
    cross-partition message posted at time [s] arrives before
    [s + lookahead]. If a recording plane ([Obs.enabled] /
    [Obs.metrics_enabled]) is on at create time, each partition gets its
    own recording state (enable the planes {e before} calling this; do
    not nest a traced run inside a {!Pool} trial — span id bases would
    collide). *)

val parts : t -> int
val lookahead : t -> float

val engine : t -> int -> Engine.t
(** Partition [i]'s engine — schedule the initial workload onto these. *)

val with_part : t -> int -> (unit -> 'a) -> 'a
(** Run setup code under partition [i]'s recording state (no-op wrapper
    when no plane was enabled at create time). *)

val post : t -> src:int -> dst:int -> at:float -> (unit -> unit) -> unit
(** Enqueue a cross-partition event: [fn] runs on partition [dst]'s
    engine at virtual time [at]. Callable only from partition [src]'s
    executing domain (the mailbox is single-producer); [at] must respect
    lookahead, i.e. be at least the sender's current time plus
    {!lookahead} — {!run} fails loudly if a post lands in the receiver's
    past. *)

val run : ?domains:int -> t -> run_info
(** Drive all partitions to completion (every queue empty, every mailbox
    drained), using up to [domains] worker domains (default [parts];
    clamped to [parts] and, via {!Dpool.effective}, to the machine's
    cores). Single-shot per [t]. When recording planes are on, partition
    recordings are merged into the caller's state in partition order
    after the last window. @raise Invalid_argument if any partition
    engine has a perturbation policy installed (nemesis schedules are
    sequential-only) or if the run already happened. *)
