module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Controller = Splay_ctl.Controller
module Daemon = Splay_ctl.Daemon
module Descriptor = Splay_ctl.Descriptor
module Apps = Splay_apps

type outcome = {
  o_suite : string;
  o_seed : int;
  o_nemesis : Nemesis.t;
  o_violations : Invariant.violation list;
  o_crashes : string list;
}

let failed o = o.o_violations <> [] || o.o_crashes <> []

let outcome_to_string o =
  if not (failed o) then Printf.sprintf "%s seed %d: ok" o.o_suite o.o_seed
  else
    Printf.sprintf "%s seed %d: FAIL (nemesis: %s)\n%s" o.o_suite o.o_seed
      (match o.o_nemesis with [] -> "none" | n -> Nemesis.to_string n)
      (String.concat "\n"
         (List.map (fun v -> "  " ^ Invariant.violation_to_string v) o.o_violations
         @ List.map (fun c -> "  [crash] " ^ c) o.o_crashes))

type t = {
  name : string;
  doc : string;
  gen : Rng.t -> Nemesis.t;
  run : seed:int -> nemesis:Nemesis.t -> perturb:bool -> outcome;
}

(* When perturbation is on, same-instant events are reordered and every
   delivery picks up to this much extra random delay — enough to flush
   out accidental ordering dependencies, small enough not to distort the
   protocols' timing assumptions. *)
let perturb_extra_delay = 0.005

(* The oracle RNG (key choice, origin rotation) is derived from the trial
   seed but independent of the engine's stream, so adding an oracle never
   changes the schedule under test. *)
let check_rng seed = Rng.create (0x51ACC8EC lxor (seed * 0x9E3779B9))

(* One trial = one freshly built platform: engine (optionally perturbed),
   cluster testbed plus a controller host, daemons, and a driver process
   that deploys the application, lets the nemesis loose and evaluates the
   oracles. Everything is derived from [seed]; nothing escapes the call. *)
let run_platform ~suite ~seed ~perturb ~hosts ~until f =
  let eng = Engine.create ~seed () in
  if perturb then Engine.set_perturbation eng ~tie_shuffle:true ~max_extra_delay:perturb_extra_delay;
  let tb0 = Testbed.cluster ~n:hosts (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init hosts Fun.id) in
  let violations = ref [] in
  ignore
    (Env.thread (Controller.env ctl) ~name:("check:" ^ suite) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown daemons;
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () -> violations := f eng net ctl)));
  ignore (Engine.run ~until eng);
  let crashes =
    List.rev_map
      (fun (p, e) -> Printf.sprintf "%s: %s" (Engine.proc_name p) (Printexc.to_string e))
      (Engine.crashed eng)
  in
  (!violations, crashes)

(* {2 DHT oracles, shared by the Chord family} *)

(* Ground truth for "who owns key": smallest live id >= key, cyclically. *)
let expected_responsible ids key ~modulus =
  let ids = List.sort_uniq Int.compare ids in
  match (List.filter (fun i -> i >= key) ids, ids) with
  | i :: _, _ | [], i :: _ -> i mod modulus
  | [], [] -> invalid_arg "expected_responsible: no ids"

type 'n dht = {
  d_id : 'n -> int;
  d_stopped : 'n -> bool;
  d_ring_of : 'n list -> int list;
  d_lookup : 'n -> int -> (Apps.Node.t * int) option;
}

let dht_invariants checker ~rng ~modulus ~dht ~nodes ~wrong_tol =
  let live () = List.filter (fun n -> not (dht.d_stopped n)) !nodes in
  Invariant.register checker "ring.successor-agreement" (fun () ->
      let l = live () in
      let ring = dht.d_ring_of l in
      if
        List.length ring = List.length l
        && List.sort_uniq Int.compare ring = List.sort_uniq Int.compare (List.map dht.d_id l)
      then Ok ()
      else
        Error
          (Printf.sprintf "successor walk visits %d of %d live nodes" (List.length ring)
             (List.length l)));
  Invariant.register checker "keys.no-lost" (fun () ->
      let l = live () in
      let live_ids = List.map dht.d_id l in
      let origins = Array.of_list l in
      let keys = 20 in
      let failures = ref 0 and wrong = ref 0 in
      for i = 0 to keys - 1 do
        let key = Rng.int rng modulus in
        match dht.d_lookup origins.(i mod Array.length origins) key with
        | None -> incr failures
        | Some (resp, _) ->
            if resp.Apps.Node.id <> expected_responsible live_ids key ~modulus then incr wrong
      done;
      if !failures = 0 && !wrong <= wrong_tol then Ok ()
      else
        Error
          (Printf.sprintf "%d/%d lookups failed; %d resolved to the wrong live owner" !failures
             keys !wrong))

(* {2 chord — base Chord, the demo quarry}

   No fault tolerance: a crashed successor is never pruned, lookups hit
   120 s timeouts and the ring never heals — exactly the failure §4's FT
   extensions exist to fix. Crash-only nemeses (the unguarded [join] in
   the paper's listing would crash the app main if the rendezvous died,
   which would bury the interesting finding under a trivial one). *)

let chord_config =
  (* m = 24 (the app default): a 14-node 16-bit ring collides ids across a
   200-seed sweep (birthday bound), and Chord's contract assumes unique ids *)
  { Apps.Chord.default_config with stabilize_interval = 2.0; join_delay_per_position = 0.5 }

let chord_nodes = 14

let chord_gen rng =
  let wave lo = Nemesis.Crash { at = lo +. Rng.float rng 30.0; count = 1 + Rng.int rng 3 } in
  let ops = [ wave 5.0 ] in
  if Rng.chance rng 0.4 then ops @ [ wave 60.0 ] else ops

let chord_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let violations, crashes =
    run_platform ~suite:"chord" ~seed ~perturb ~hosts:7 ~until:600_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name:"chord"
            ~main:(Apps.Chord.app ~config:chord_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) chord_nodes)
        in
        Env.sleep ((Float.of_int chord_nodes *. 0.5) +. 120.0);
        Nemesis.run ~rng ~dep nemesis;
        Env.sleep 240.0;
        let checker = Invariant.create () in
        dht_invariants checker ~rng ~modulus:(1 lsl 24) ~nodes ~wrong_tol:0
          ~dht:
            {
              d_id = Apps.Chord.id;
              d_stopped = Apps.Chord.is_stopped;
              d_ring_of = Apps.Chord.ring_of;
              d_lookup = Apps.Chord.lookup;
            };
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  { o_suite = "chord"; o_seed = seed; o_nemesis = nemesis; o_violations = violations; o_crashes = crashes }

(* {2 chord-ft / smoke} *)

let chord_ft_config =
  {
    Apps.Chord_ft.default_config with
    m = 24;
    stabilize_interval = 2.0;
    join_delay_per_position = 0.5;
    rpc_timeout = 5.0;
    suspect_threshold = 2;
    leafset_size = 4;
  }

let chord_ft_gen rng =
  let ops = [ Nemesis.Crash { at = 5.0 +. Rng.float rng 30.0; count = 1 + Rng.int rng 3 } ] in
  let ops =
    if Rng.chance rng 0.4 then
      ops @ [ Nemesis.Join { at = 60.0 +. Rng.float rng 20.0; count = 1 + Rng.int rng 2 } ]
    else ops
  in
  if Rng.chance rng 0.3 then
    ops
    @ [
        Nemesis.Slow
          { at = 40.0; until = 70.0 +. Rng.float rng 20.0; delay = 0.2 +. Rng.float rng 0.3 };
      ]
  else ops

let chord_ft_run ~name ~n ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let violations, crashes =
    run_platform ~suite:name ~seed ~perturb ~hosts:7 ~until:600_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name
            ~main:(Apps.Chord_ft.app ~config:chord_ft_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
        in
        Env.sleep ((Float.of_int n *. 0.5) +. 120.0);
        Nemesis.run ~rng ~dep nemesis;
        Env.sleep 240.0;
        let checker = Invariant.create () in
        (* the leafset repairs the ring exactly, but a freshly joined or
           repaired overlay may misroute the odd key for a few more
           rounds — allow 1/20 *)
        dht_invariants checker ~rng ~modulus:(1 lsl 24) ~nodes ~wrong_tol:1
          ~dht:
            {
              d_id = Apps.Chord_ft.id;
              d_stopped = Apps.Chord_ft.is_stopped;
              d_ring_of = Apps.Chord_ft.ring_of;
              d_lookup = Apps.Chord_ft.lookup;
            };
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  { o_suite = name; o_seed = seed; o_nemesis = nemesis; o_violations = violations; o_crashes = crashes }

(* {2 pastry} *)

let pastry_config =
  {
    Apps.Pastry.default_config with
    bits = 24;
    stabilize_interval = 2.0;
    rpc_timeout = 5.0;
    join_delay_per_position = 0.3;
  }

let pastry_nodes = 20

(* Pastry's owner: numerically closest id (min circular distance). *)
let pastry_owner ids key ~modulus =
  let d a b =
    let cw = (b - a + modulus) mod modulus in
    min cw (modulus - cw)
  in
  List.fold_left (fun best i -> if d i key < d best key then i else best) (List.hd ids) ids

let pastry_gen rng =
  let ops = [ Nemesis.Crash { at = 5.0 +. Rng.float rng 30.0; count = 1 + Rng.int rng 3 } ] in
  if Rng.chance rng 0.4 then
    ops
    @ [
        Nemesis.Drop
          { at = 20.0; until = 45.0 +. Rng.float rng 15.0; loss = 0.05 +. Rng.float rng 0.1 };
      ]
  else ops

let pastry_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let violations, crashes =
    run_platform ~suite:"pastry" ~seed ~perturb ~hosts:7 ~until:600_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name:"pastry"
            ~main:(Apps.Pastry.app ~config:pastry_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) pastry_nodes)
        in
        Env.sleep ((Float.of_int pastry_nodes *. 0.3) +. 120.0);
        Nemesis.run ~rng ~dep nemesis;
        Env.sleep 180.0;
        let checker = Invariant.create () in
        Invariant.register checker "pastry.routing-converges" (fun () ->
            let live = List.filter (fun p -> not (Apps.Pastry.is_stopped p)) !nodes in
            let live_ids = List.map Apps.Pastry.id live in
            let origins = Array.of_list live in
            let total = 20 in
            let failures = ref 0 and wrong = ref 0 in
            for i = 0 to total - 1 do
              let key = Rng.int rng (1 lsl 24) in
              match Apps.Pastry.lookup origins.(i mod Array.length origins) key with
              | None -> incr failures
              | Some (owner, _) ->
                  if owner.Apps.Node.id <> pastry_owner live_ids key ~modulus:(1 lsl 24) then
                    incr wrong
            done;
            (* Fig. 10: a small residual right after repair is the expected
               regime, a large one is a routing bug *)
            if !failures <= 2 && !wrong <= 2 then Ok ()
            else
              Error
                (Printf.sprintf "%d/%d lookups failed; %d wrong owners" !failures total !wrong));
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  { o_suite = "pastry"; o_seed = seed; o_nemesis = nemesis; o_violations = violations; o_crashes = crashes }

(* {2 rpc — at-most-once safety under message-level faults}

   One server, seven callers issuing uniquely-tokened calls. Callers at
   even positions retry with backoff (duplication allowed, bounded by the
   attempt count); odd positions are single-attempt (strict at-most-once).
   Safety oracles run at checkpoints {e while} the nemesis is active. *)

let rpc_nodes = 8

let rpc_gen rng =
  let ops = ref [] in
  if Rng.chance rng 0.7 then
    ops :=
      !ops
      @ [
          Nemesis.Drop
            {
              at = 5.0 +. Rng.float rng 10.0;
              until = 25.0 +. Rng.float rng 15.0;
              loss = 0.2 +. Rng.float rng 0.3;
            };
        ];
  if Rng.chance rng 0.5 then
    ops :=
      !ops
      @ [
          Nemesis.Slow
            {
              at = 20.0 +. Rng.float rng 10.0;
              until = 45.0 +. Rng.float rng 10.0;
              delay = 0.5 +. Rng.float rng 2.0;
            };
        ];
  if !ops = [] || Rng.chance rng 0.3 then
    ops :=
      !ops
      @ [
          Nemesis.Partition
            { at = 10.0 +. Rng.float rng 10.0; until = 35.0 +. Rng.float rng 10.0; groups = 2 };
        ];
  !ops

let rpc_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let execs : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let oks : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let strict : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let main env =
    if env.Env.position = 1 then
      Rpc.server env
        [
          ( "exec",
            fun args ->
              match args with
              | [ Codec.String tok ] ->
                  Hashtbl.replace execs tok (1 + Option.value ~default:0 (Hashtbl.find_opt execs tok));
                  Codec.Null
              | _ -> failwith "exec: bad args" );
        ]
    else begin
      Rpc.client env;
      let server = List.hd env.Env.nodes in
      let retrying = env.Env.position mod 2 = 0 in
      let options =
        if retrying then
          { Rpc.timeout = 2.0; retries = 2; backoff = 0.5; backoff_jitter = 0.5 }
        else { Rpc.default_options with timeout = 2.0 }
      in
      ignore
        (Env.thread env ~name:"caller" (fun () ->
             for i = 1 to 25 do
               Env.sleep 2.0;
               let tok = Printf.sprintf "%s#%d" (Addr.to_string env.Env.me) i in
               if not retrying then Hashtbl.replace strict tok ();
               match Rpc.a_call env server ~options "exec" [ Codec.String tok ] with
               | Ok _ -> Hashtbl.replace oks tok ()
               | Error _ -> ()
             done))
    end
  in
  let violations, crashes =
    run_platform ~suite:"rpc" ~seed ~perturb ~hosts:4 ~until:100_000.0 (fun eng _net ctl ->
        let dep =
          Controller.deploy ctl ~name:"rpc" ~main
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) rpc_nodes)
        in
        let checker = Invariant.create () in
        let count_bad p = Hashtbl.fold (fun tok n acc -> if p tok n then acc + 1 else acc) execs 0 in
        Invariant.register checker ~phase:Invariant.Checkpoint "rpc.at-most-once" (fun () ->
            let bad = count_bad (fun tok n -> Hashtbl.mem strict tok && n > 1) in
            if bad = 0 then Ok ()
            else Error (Printf.sprintf "%d single-attempt calls executed more than once" bad));
        Invariant.register checker ~phase:Invariant.Checkpoint "rpc.bounded-duplication" (fun () ->
            let bad = count_bad (fun _ n -> n > 3) in
            if bad = 0 then Ok ()
            else Error (Printf.sprintf "%d calls executed more often than they were attempted" bad));
        Invariant.register checker "rpc.ok-implies-executed" (fun () ->
            let missing =
              Hashtbl.fold (fun tok () acc -> if Hashtbl.mem execs tok then acc else acc + 1) oks 0
            in
            if missing = 0 then Ok ()
            else Error (Printf.sprintf "%d calls reported Ok but never executed" missing));
        let vs = ref [] in
        Env.sleep 2.0;
        ignore
          (Env.thread (Controller.env ctl) ~name:"nemesis" (fun () ->
               Nemesis.run ~rng ~dep nemesis));
        (* callers run 2..~52 s; observe safety every 15 s while faults
           are live, then settle past the nemesis tail and retries *)
        for _ = 1 to 4 do
          Env.sleep 15.0;
          vs := !vs @ Invariant.eval checker ~at:(Engine.now eng) Invariant.Checkpoint
        done;
        Env.sleep (Float.max 30.0 (Nemesis.duration nemesis -. 60.0) +. 30.0);
        vs := !vs @ Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence;
        Controller.undeploy dep;
        !vs)
  in
  { o_suite = "rpc"; o_seed = seed; o_nemesis = nemesis; o_violations = violations; o_crashes = crashes }

(* {2 epidemic — eventual delivery on lossy links} *)

let epidemic_nodes = 16
let epidemic_config = { Apps.Epidemic.default_config with fanout = 6 }

let epidemic_gen rng =
  let ops = ref [] in
  if Rng.chance rng 0.3 then
    ops := [ Nemesis.Crash { at = 1.0 +. Rng.float rng 5.0; count = 1 + Rng.int rng 2 } ];
  if Rng.chance rng 0.7 then
    ops :=
      !ops
      @ [
          Nemesis.Drop
            {
              at = Rng.float rng 3.0;
              until = 15.0 +. Rng.float rng 15.0;
              loss = 0.05 +. Rng.float rng 0.1;
            };
        ];
  if !ops = [] || Rng.chance rng 0.4 then
    ops :=
      !ops
      @ [
          Nemesis.Slow
            {
              at = Rng.float rng 5.0;
              until = 20.0 +. Rng.float rng 10.0;
              delay = 0.3 +. Rng.float rng 1.0;
            };
        ];
  !ops

let epidemic_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let rumor = Printf.sprintf "rumor-%d" seed in
  let violations, crashes =
    run_platform ~suite:"epidemic" ~seed ~perturb ~hosts:8 ~until:100_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name:"epidemic"
            ~main:(Apps.Epidemic.app ~config:epidemic_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:Descriptor.All epidemic_nodes)
        in
        Env.sleep 10.0;
        ignore
          (Env.thread (Controller.env ctl) ~name:"nemesis" (fun () ->
               Nemesis.run ~rng ~dep nemesis));
        Env.sleep 2.0;
        (* inject mid-faults, at the first-deployed node still alive — an
           operator would not pick a crashed machine to start a rumor, and
           a rumor that was never injected says nothing about delivery *)
        (match
           List.filter (fun n -> not (Apps.Epidemic.is_stopped n)) (List.rev !nodes)
         with
        | origin :: _ -> Apps.Epidemic.broadcast origin rumor
        | [] -> ());
        Env.sleep (Float.max 60.0 (Nemesis.duration nemesis) +. 45.0);
        let checker = Invariant.create () in
        Invariant.register checker "epidemic.eventual-delivery" (fun () ->
            let live = List.filter (fun n -> not (Apps.Epidemic.is_stopped n)) !nodes in
            let missing =
              List.length (List.filter (fun n -> not (Apps.Epidemic.has_received n rumor)) live)
            in
            (* push-only gossip with fanout 6 ≈ ln N + c: everyone with
               high probability; tolerate one unlucky node *)
            if missing <= 1 then Ok ()
            else Error (Printf.sprintf "%d of %d live nodes never saw the rumor" missing (List.length live)));
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  {
    o_suite = "epidemic";
    o_seed = seed;
    o_nemesis = nemesis;
    o_violations = violations;
    o_crashes = crashes;
  }

(* {2 dht-store — the replicated store serves what the single writer wrote}

   Pastry with Dht_store layered on top, a single writer bumping one
   version per key per round while crashes and partitions land, then a
   quiescent read-back. Replication (3 copies at salted owners) plus
   republish-driven migration is what the oracles hold to account: a
   read may be stale (an old version from a lagging replica) but never
   fabricated, and an acknowledged key may be lost only rarely — a crash
   can eat at most one wave of replicas before republish re-spreads it. *)

let dht_store_nodes = 16
let dht_store_keys = 10
let dht_store_rounds = 4

let dht_store_gen rng =
  (* the crash window stretches past the last write round, so some trials
     probe pure durability (no rewrite can repair the damage, only the
     replica spread and republish migration can) *)
  let ops = [ Nemesis.Crash { at = 10.0 +. Rng.float rng 50.0; count = 1 + Rng.int rng 2 } ] in
  if Rng.chance rng 0.4 then
    ops
    @ [
        Nemesis.Partition
          { at = 15.0 +. Rng.float rng 10.0; until = 45.0 +. Rng.float rng 15.0; groups = 2 };
      ]
  else ops

let dht_store_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let cfg =
    {
      Apps.Dht_store.default_config with
      republish_interval = 10.0;
      entry_ttl = 600.0;
      rpc_timeout = 5.0;
    }
  in
  let violations, crashes =
    run_platform ~suite:"dht-store" ~seed ~perturb ~hosts:7 ~until:600_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name:"dht-store"
            ~main:(Apps.Pastry.app ~config:pastry_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) dht_store_nodes)
        in
        Env.sleep ((Float.of_int dht_store_nodes *. 0.3) +. 120.0);
        let stores = List.map (fun p -> (p, Apps.Dht_store.create ~config:cfg p)) !nodes in
        let live_stores () =
          List.filter_map
            (fun (p, s) -> if Apps.Pastry.is_stopped p then None else Some s)
            stores
        in
        ignore
          (Env.thread (Controller.env ctl) ~name:"nemesis" (fun () ->
               Nemesis.run ~rng ~dep nemesis));
        (* single writer: one version per key per round, rounds riding
           through the fault window. [written] is the ground truth for
           no-wrong-value; [acked] (puts at least one replica took) is
           the ground truth for no-lost. *)
        let acked : (string, string) Hashtbl.t = Hashtbl.create 16 in
        let written : (string, string) Hashtbl.t = Hashtbl.create 64 in
        for round = 1 to dht_store_rounds do
          for k = 0 to dht_store_keys - 1 do
            let key = Printf.sprintf "k%d" k in
            let value = Printf.sprintf "%s@v%d" key round in
            match live_stores () with
            | [] -> ()
            | l ->
                let s = List.nth l (Rng.int rng (List.length l)) in
                Hashtbl.replace written value key;
                if Apps.Dht_store.put s ~key ~value > 0 then Hashtbl.replace acked key value
          done;
          Env.sleep 12.0
        done;
        (* outlive the nemesis, then give republish a few intervals to
           migrate entries onto the healed ring's owners *)
        Env.sleep (Float.max 0.0 (Nemesis.duration nemesis -. 48.0) +. 60.0);
        let checker = Invariant.create () in
        let read key i =
          match live_stores () with
          | [] -> None
          | l -> Apps.Dht_store.get (List.nth l ((key + i) mod List.length l)) ~key:(Printf.sprintf "k%d" key)
        in
        Invariant.register checker "dht.no-wrong-value" (fun () ->
            let wrong = ref 0 and reads = ref 0 in
            for k = 0 to dht_store_keys - 1 do
              for i = 0 to 1 do
                match read k i with
                | None -> ()
                | Some v ->
                    incr reads;
                    if Hashtbl.find_opt written v <> Some (Printf.sprintf "k%d" k) then incr wrong
              done
            done;
            if !wrong = 0 then Ok ()
            else
              Error
                (Printf.sprintf "%d of %d reads returned a value the writer never wrote" !wrong
                   !reads));
        Invariant.register checker "dht.no-lost" (fun () ->
            let lost = ref 0 and acked_n = ref 0 in
            for k = 0 to dht_store_keys - 1 do
              if Hashtbl.mem acked (Printf.sprintf "k%d" k) then begin
                incr acked_n;
                if read k 0 = None && read k 1 = None then incr lost
              end
            done;
            if !acked_n > 0 && !lost <= 1 then Ok ()
            else if !acked_n = 0 then Error "no put was ever acknowledged"
            else
              Error
                (Printf.sprintf "%d of %d acknowledged keys unreadable after quiescence" !lost
                   !acked_n));
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  {
    o_suite = "dht-store";
    o_seed = seed;
    o_nemesis = nemesis;
    o_violations = violations;
    o_crashes = crashes;
  }

(* {2 webcache — freshness and origin discipline under faults}

   The cooperative cache with singleflight coalescing on, driven by
   concurrent readers through drop/slow/crash bursts. TTL is short
   enough that entries expire between rounds, so the expiry path runs
   for real — and stale-beyond-TTL serves must still be exactly zero.
   Origin fetches can never exceed home misses (coalescing only merges),
   and once the air clears a warmed url must be served from its home
   cache, not the origin. *)

let webcache_nodes = 16
let webcache_urls = 12

let webcache_gen rng =
  let ops = ref [] in
  if Rng.chance rng 0.5 then
    ops := [ Nemesis.Crash { at = 15.0 +. Rng.float rng 15.0; count = 1 } ];
  if Rng.chance rng 0.6 then
    ops :=
      !ops
      @ [
          Nemesis.Drop
            {
              at = 10.0 +. Rng.float rng 10.0;
              until = 30.0 +. Rng.float rng 15.0;
              loss = 0.05 +. Rng.float rng 0.1;
            };
        ];
  if !ops = [] || Rng.chance rng 0.4 then
    ops :=
      !ops
      @ [
          Nemesis.Slow
            { at = 10.0; until = 40.0 +. Rng.float rng 10.0; delay = 0.1 +. Rng.float rng 0.3 };
        ];
  !ops

let webcache_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let cfg =
    { Apps.Webcache.default_config with ttl = 60.0; rpc_timeout = 5.0; coalesce = true }
  in
  let violations, crashes =
    run_platform ~suite:"webcache" ~seed ~perturb ~hosts:7 ~until:600_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name:"webcache"
            ~main:(Apps.Pastry.app ~config:pastry_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) webcache_nodes)
        in
        Env.sleep ((Float.of_int webcache_nodes *. 0.3) +. 120.0);
        let caches = List.map (fun p -> (p, Apps.Webcache.create ~config:cfg p)) !nodes in
        let live_caches () =
          List.filter_map
            (fun (p, c) -> if Apps.Pastry.is_stopped p then None else Some c)
            caches
        in
        ignore
          (Env.thread (Controller.env ctl) ~name:"nemesis" (fun () ->
               Nemesis.run ~rng ~dep nemesis));
        (* three request waves through the fault window; each wave reads
           every url from two origins concurrently, so same-url misses
           actually race and the coalescing path runs *)
        let url u = Printf.sprintf "u%d" u in
        for round = 0 to 2 do
          let pending = ref 0 in
          (match live_caches () with
          | [] -> ()
          | l ->
              let arr = Array.of_list l in
              for u = 0 to webcache_urls - 1 do
                for i = 0 to 1 do
                  incr pending;
                  ignore
                    (Env.thread (Controller.env ctl) ~name:"webcache-reader" (fun () ->
                         Fun.protect
                           ~finally:(fun () -> decr pending)
                           (fun () ->
                             ignore
                               (Apps.Webcache.get
                                  arr.((u + i + round) mod Array.length arr)
                                  (url u)))))
                done
              done);
          while !pending > 0 do
            Env.sleep 1.0
          done;
          (* longer than the TTL: the next wave refetches expired entries *)
          Env.sleep 65.0
        done;
        Env.sleep (Float.max 0.0 (Nemesis.duration nemesis -. 195.0) +. 30.0);
        let checker = Invariant.create () in
        let sum f = List.fold_left (fun a (_, c) -> a + f c) 0 caches in
        Invariant.register checker "webcache.freshness" (fun () ->
            let stale = sum Apps.Webcache.stale_served in
            if stale = 0 then Ok ()
            else Error (Printf.sprintf "%d hits served past their TTL" stale));
        Invariant.register checker "webcache.origin-bounded" (fun () ->
            let origin = sum Apps.Webcache.origin_fetches
            and misses = sum Apps.Webcache.home_misses in
            if origin <= misses then Ok ()
            else
              Error
                (Printf.sprintf "%d origin fetches exceed %d home misses: coalescing amplified"
                   origin misses));
        Invariant.register checker "webcache.warm-hit" (fun () ->
            match live_caches () with
            | [] -> Error "no live caches left to read from"
            | l ->
                let arr = Array.of_list l in
                (* warm sweep, then a measuring sweep from different
                   origins within one TTL: home caches must serve it *)
                for u = 0 to webcache_urls - 1 do
                  ignore (Apps.Webcache.get arr.(u mod Array.length arr) (url u))
                done;
                let hits = ref 0 and failed = ref 0 in
                for u = 0 to webcache_urls - 1 do
                  match Apps.Webcache.get arr.((u + 1) mod Array.length arr) (url u) with
                  | _, `Hit, _ -> incr hits
                  | _, `Failed, _ -> incr failed
                  | _ -> ()
                done;
                if !failed = 0 && !hits >= webcache_urls - 2 then Ok ()
                else
                  Error
                    (Printf.sprintf "%d/%d warmed urls served from cache, %d failed" !hits
                       webcache_urls !failed));
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  {
    o_suite = "webcache";
    o_seed = seed;
    o_nemesis = nemesis;
    o_violations = violations;
    o_crashes = crashes;
  }

(* {2 Registry} *)

let chord =
  {
    name = "chord";
    doc = "base Chord: ring consistency + no-lost-keys (expected to FAIL under crashes)";
    gen = chord_gen;
    run = chord_run;
  }

let chord_ft =
  {
    name = "chord-ft";
    doc = "fault-tolerant Chord: same oracles, survives crash/join/slow nemeses";
    gen = chord_ft_gen;
    run = (fun ~seed ~nemesis ~perturb -> chord_ft_run ~name:"chord-ft" ~n:14 ~seed ~nemesis ~perturb);
  }

let pastry =
  {
    name = "pastry";
    doc = "Pastry: routing reconverges to numerically-closest owner after crashes";
    gen = pastry_gen;
    run = pastry_run;
  }

let rpc =
  {
    name = "rpc";
    doc = "RPC layer: at-most-once safety at checkpoints under drop/slow/partition";
    gen = rpc_gen;
    run = rpc_run;
  }

let epidemic =
  {
    name = "epidemic";
    doc = "epidemic dissemination: eventual delivery on lossy, slow links";
    gen = epidemic_gen;
    run = epidemic_run;
  }

let dht_store =
  {
    name = "dht-store";
    doc = "replicated DHT store: no fabricated reads, no lost acked keys (crash/partition)";
    gen = dht_store_gen;
    run = dht_store_run;
  }

let webcache =
  {
    name = "webcache";
    doc = "cooperative web cache: zero stale serves, bounded origin fetches, warm hits";
    gen = webcache_gen;
    run = webcache_run;
  }

let smoke =
  {
    name = "smoke";
    doc = "fast always-green chord-ft variant (CI gate)";
    gen = (fun rng -> [ Nemesis.Crash { at = 5.0 +. Rng.float rng 20.0; count = 1 + Rng.int rng 2 } ]);
    run = (fun ~seed ~nemesis ~perturb -> chord_ft_run ~name:"smoke" ~n:10 ~seed ~nemesis ~perturb);
  }

let all = [ chord; chord_ft; pastry; rpc; epidemic; dht_store; webcache; smoke ]

let find name =
  match name with
  | "all" -> Ok (List.filter (fun s -> s.name <> "smoke") all)
  | _ -> (
      match List.find_opt (fun s -> s.name = name) all with
      | Some s -> Ok [ s ]
      | None ->
          Error
            (Printf.sprintf "unknown suite %S (known: %s, all)" name
               (String.concat ", " (List.map (fun s -> s.name) all))))
