module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Controller = Splay_ctl.Controller
module Daemon = Splay_ctl.Daemon
module Descriptor = Splay_ctl.Descriptor
module Apps = Splay_apps

type outcome = {
  o_suite : string;
  o_seed : int;
  o_nemesis : Nemesis.t;
  o_violations : Invariant.violation list;
  o_crashes : string list;
}

let failed o = o.o_violations <> [] || o.o_crashes <> []

let outcome_to_string o =
  if not (failed o) then Printf.sprintf "%s seed %d: ok" o.o_suite o.o_seed
  else
    Printf.sprintf "%s seed %d: FAIL (nemesis: %s)\n%s" o.o_suite o.o_seed
      (match o.o_nemesis with [] -> "none" | n -> Nemesis.to_string n)
      (String.concat "\n"
         (List.map (fun v -> "  " ^ Invariant.violation_to_string v) o.o_violations
         @ List.map (fun c -> "  [crash] " ^ c) o.o_crashes))

type t = {
  name : string;
  doc : string;
  gen : Rng.t -> Nemesis.t;
  run : seed:int -> nemesis:Nemesis.t -> perturb:bool -> outcome;
}

(* When perturbation is on, same-instant events are reordered and every
   delivery picks up to this much extra random delay — enough to flush
   out accidental ordering dependencies, small enough not to distort the
   protocols' timing assumptions. *)
let perturb_extra_delay = 0.005

(* The oracle RNG (key choice, origin rotation) is derived from the trial
   seed but independent of the engine's stream, so adding an oracle never
   changes the schedule under test. *)
let check_rng seed = Rng.create (0x51ACC8EC lxor (seed * 0x9E3779B9))

(* One trial = one freshly built platform: engine (optionally perturbed),
   cluster testbed plus a controller host, daemons, and a driver process
   that deploys the application, lets the nemesis loose and evaluates the
   oracles. Everything is derived from [seed]; nothing escapes the call. *)
let run_platform ~suite ~seed ~perturb ~hosts ~until f =
  let eng = Engine.create ~seed () in
  if perturb then Engine.set_perturbation eng ~tie_shuffle:true ~max_extra_delay:perturb_extra_delay;
  let tb0 = Testbed.cluster ~n:hosts (Engine.rng eng) in
  let tb, ctl_host = Testbed.with_extra_host tb0 in
  let net = Net.create eng tb in
  let ctl = Controller.create net ~host:ctl_host in
  let daemons = Controller.boot_daemons ctl (List.init hosts Fun.id) in
  let violations = ref [] in
  ignore
    (Env.thread (Controller.env ctl) ~name:("check:" ^ suite) (fun () ->
         Fun.protect
           ~finally:(fun () ->
             List.iter Daemon.shutdown daemons;
             ignore (Engine.schedule eng ~delay:0.0 (fun () -> Env.stop (Controller.env ctl))))
           (fun () -> violations := f eng net ctl)));
  ignore (Engine.run ~until eng);
  let crashes =
    List.rev_map
      (fun (p, e) -> Printf.sprintf "%s: %s" (Engine.proc_name p) (Printexc.to_string e))
      (Engine.crashed eng)
  in
  (!violations, crashes)

(* {2 DHT oracles, shared by the Chord family} *)

(* Ground truth for "who owns key": smallest live id >= key, cyclically. *)
let expected_responsible ids key ~modulus =
  let ids = List.sort_uniq Int.compare ids in
  match (List.filter (fun i -> i >= key) ids, ids) with
  | i :: _, _ | [], i :: _ -> i mod modulus
  | [], [] -> invalid_arg "expected_responsible: no ids"

type 'n dht = {
  d_id : 'n -> int;
  d_stopped : 'n -> bool;
  d_ring_of : 'n list -> int list;
  d_lookup : 'n -> int -> (Apps.Node.t * int) option;
}

let dht_invariants checker ~rng ~modulus ~dht ~nodes ~wrong_tol =
  let live () = List.filter (fun n -> not (dht.d_stopped n)) !nodes in
  Invariant.register checker "ring.successor-agreement" (fun () ->
      let l = live () in
      let ring = dht.d_ring_of l in
      if
        List.length ring = List.length l
        && List.sort_uniq Int.compare ring = List.sort_uniq Int.compare (List.map dht.d_id l)
      then Ok ()
      else
        Error
          (Printf.sprintf "successor walk visits %d of %d live nodes" (List.length ring)
             (List.length l)));
  Invariant.register checker "keys.no-lost" (fun () ->
      let l = live () in
      let live_ids = List.map dht.d_id l in
      let origins = Array.of_list l in
      let keys = 20 in
      let failures = ref 0 and wrong = ref 0 in
      for i = 0 to keys - 1 do
        let key = Rng.int rng modulus in
        match dht.d_lookup origins.(i mod Array.length origins) key with
        | None -> incr failures
        | Some (resp, _) ->
            if resp.Apps.Node.id <> expected_responsible live_ids key ~modulus then incr wrong
      done;
      if !failures = 0 && !wrong <= wrong_tol then Ok ()
      else
        Error
          (Printf.sprintf "%d/%d lookups failed; %d resolved to the wrong live owner" !failures
             keys !wrong))

(* {2 chord — base Chord, the demo quarry}

   No fault tolerance: a crashed successor is never pruned, lookups hit
   120 s timeouts and the ring never heals — exactly the failure §4's FT
   extensions exist to fix. Crash-only nemeses (the unguarded [join] in
   the paper's listing would crash the app main if the rendezvous died,
   which would bury the interesting finding under a trivial one). *)

let chord_config =
  (* m = 24 (the app default): a 14-node 16-bit ring collides ids across a
   200-seed sweep (birthday bound), and Chord's contract assumes unique ids *)
  { Apps.Chord.default_config with stabilize_interval = 2.0; join_delay_per_position = 0.5 }

let chord_nodes = 14

let chord_gen rng =
  let wave lo = Nemesis.Crash { at = lo +. Rng.float rng 30.0; count = 1 + Rng.int rng 3 } in
  let ops = [ wave 5.0 ] in
  if Rng.chance rng 0.4 then ops @ [ wave 60.0 ] else ops

let chord_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let violations, crashes =
    run_platform ~suite:"chord" ~seed ~perturb ~hosts:7 ~until:600_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name:"chord"
            ~main:(Apps.Chord.app ~config:chord_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) chord_nodes)
        in
        Env.sleep ((Float.of_int chord_nodes *. 0.5) +. 120.0);
        Nemesis.run ~rng ~dep nemesis;
        Env.sleep 240.0;
        let checker = Invariant.create () in
        dht_invariants checker ~rng ~modulus:(1 lsl 24) ~nodes ~wrong_tol:0
          ~dht:
            {
              d_id = Apps.Chord.id;
              d_stopped = Apps.Chord.is_stopped;
              d_ring_of = Apps.Chord.ring_of;
              d_lookup = Apps.Chord.lookup;
            };
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  { o_suite = "chord"; o_seed = seed; o_nemesis = nemesis; o_violations = violations; o_crashes = crashes }

(* {2 chord-ft / smoke} *)

let chord_ft_config =
  {
    Apps.Chord_ft.default_config with
    m = 24;
    stabilize_interval = 2.0;
    join_delay_per_position = 0.5;
    rpc_timeout = 5.0;
    suspect_threshold = 2;
    leafset_size = 4;
  }

let chord_ft_gen rng =
  let ops = [ Nemesis.Crash { at = 5.0 +. Rng.float rng 30.0; count = 1 + Rng.int rng 3 } ] in
  let ops =
    if Rng.chance rng 0.4 then
      ops @ [ Nemesis.Join { at = 60.0 +. Rng.float rng 20.0; count = 1 + Rng.int rng 2 } ]
    else ops
  in
  if Rng.chance rng 0.3 then
    ops
    @ [
        Nemesis.Slow
          { at = 40.0; until = 70.0 +. Rng.float rng 20.0; delay = 0.2 +. Rng.float rng 0.3 };
      ]
  else ops

let chord_ft_run ~name ~n ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let violations, crashes =
    run_platform ~suite:name ~seed ~perturb ~hosts:7 ~until:600_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name
            ~main:(Apps.Chord_ft.app ~config:chord_ft_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) n)
        in
        Env.sleep ((Float.of_int n *. 0.5) +. 120.0);
        Nemesis.run ~rng ~dep nemesis;
        Env.sleep 240.0;
        let checker = Invariant.create () in
        (* the leafset repairs the ring exactly, but a freshly joined or
           repaired overlay may misroute the odd key for a few more
           rounds — allow 1/20 *)
        dht_invariants checker ~rng ~modulus:(1 lsl 24) ~nodes ~wrong_tol:1
          ~dht:
            {
              d_id = Apps.Chord_ft.id;
              d_stopped = Apps.Chord_ft.is_stopped;
              d_ring_of = Apps.Chord_ft.ring_of;
              d_lookup = Apps.Chord_ft.lookup;
            };
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  { o_suite = name; o_seed = seed; o_nemesis = nemesis; o_violations = violations; o_crashes = crashes }

(* {2 pastry} *)

let pastry_config =
  {
    Apps.Pastry.default_config with
    bits = 24;
    stabilize_interval = 2.0;
    rpc_timeout = 5.0;
    join_delay_per_position = 0.3;
  }

let pastry_nodes = 20

(* Pastry's owner: numerically closest id (min circular distance). *)
let pastry_owner ids key ~modulus =
  let d a b =
    let cw = (b - a + modulus) mod modulus in
    min cw (modulus - cw)
  in
  List.fold_left (fun best i -> if d i key < d best key then i else best) (List.hd ids) ids

let pastry_gen rng =
  let ops = [ Nemesis.Crash { at = 5.0 +. Rng.float rng 30.0; count = 1 + Rng.int rng 3 } ] in
  if Rng.chance rng 0.4 then
    ops
    @ [
        Nemesis.Drop
          { at = 20.0; until = 45.0 +. Rng.float rng 15.0; loss = 0.05 +. Rng.float rng 0.1 };
      ]
  else ops

let pastry_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let violations, crashes =
    run_platform ~suite:"pastry" ~seed ~perturb ~hosts:7 ~until:600_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name:"pastry"
            ~main:(Apps.Pastry.app ~config:pastry_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) pastry_nodes)
        in
        Env.sleep ((Float.of_int pastry_nodes *. 0.3) +. 120.0);
        Nemesis.run ~rng ~dep nemesis;
        Env.sleep 180.0;
        let checker = Invariant.create () in
        Invariant.register checker "pastry.routing-converges" (fun () ->
            let live = List.filter (fun p -> not (Apps.Pastry.is_stopped p)) !nodes in
            let live_ids = List.map Apps.Pastry.id live in
            let origins = Array.of_list live in
            let total = 20 in
            let failures = ref 0 and wrong = ref 0 in
            for i = 0 to total - 1 do
              let key = Rng.int rng (1 lsl 24) in
              match Apps.Pastry.lookup origins.(i mod Array.length origins) key with
              | None -> incr failures
              | Some (owner, _) ->
                  if owner.Apps.Node.id <> pastry_owner live_ids key ~modulus:(1 lsl 24) then
                    incr wrong
            done;
            (* Fig. 10: a small residual right after repair is the expected
               regime, a large one is a routing bug *)
            if !failures <= 2 && !wrong <= 2 then Ok ()
            else
              Error
                (Printf.sprintf "%d/%d lookups failed; %d wrong owners" !failures total !wrong));
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  { o_suite = "pastry"; o_seed = seed; o_nemesis = nemesis; o_violations = violations; o_crashes = crashes }

(* {2 rpc — at-most-once safety under message-level faults}

   One server, seven callers issuing uniquely-tokened calls. Callers at
   even positions retry with backoff (duplication allowed, bounded by the
   attempt count); odd positions are single-attempt (strict at-most-once).
   Safety oracles run at checkpoints {e while} the nemesis is active. *)

let rpc_nodes = 8

let rpc_gen rng =
  let ops = ref [] in
  if Rng.chance rng 0.7 then
    ops :=
      !ops
      @ [
          Nemesis.Drop
            {
              at = 5.0 +. Rng.float rng 10.0;
              until = 25.0 +. Rng.float rng 15.0;
              loss = 0.2 +. Rng.float rng 0.3;
            };
        ];
  if Rng.chance rng 0.5 then
    ops :=
      !ops
      @ [
          Nemesis.Slow
            {
              at = 20.0 +. Rng.float rng 10.0;
              until = 45.0 +. Rng.float rng 10.0;
              delay = 0.5 +. Rng.float rng 2.0;
            };
        ];
  if !ops = [] || Rng.chance rng 0.3 then
    ops :=
      !ops
      @ [
          Nemesis.Partition
            { at = 10.0 +. Rng.float rng 10.0; until = 35.0 +. Rng.float rng 10.0; groups = 2 };
        ];
  !ops

let rpc_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let execs : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let oks : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let strict : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let main env =
    if env.Env.position = 1 then
      Rpc.server env
        [
          ( "exec",
            fun args ->
              match args with
              | [ Codec.String tok ] ->
                  Hashtbl.replace execs tok (1 + Option.value ~default:0 (Hashtbl.find_opt execs tok));
                  Codec.Null
              | _ -> failwith "exec: bad args" );
        ]
    else begin
      Rpc.client env;
      let server = List.hd env.Env.nodes in
      let retrying = env.Env.position mod 2 = 0 in
      let options =
        if retrying then
          { Rpc.timeout = 2.0; retries = 2; backoff = 0.5; backoff_jitter = 0.5 }
        else { Rpc.default_options with timeout = 2.0 }
      in
      ignore
        (Env.thread env ~name:"caller" (fun () ->
             for i = 1 to 25 do
               Env.sleep 2.0;
               let tok = Printf.sprintf "%s#%d" (Addr.to_string env.Env.me) i in
               if not retrying then Hashtbl.replace strict tok ();
               match Rpc.a_call env server ~options "exec" [ Codec.String tok ] with
               | Ok _ -> Hashtbl.replace oks tok ()
               | Error _ -> ()
             done))
    end
  in
  let violations, crashes =
    run_platform ~suite:"rpc" ~seed ~perturb ~hosts:4 ~until:100_000.0 (fun eng _net ctl ->
        let dep =
          Controller.deploy ctl ~name:"rpc" ~main
            (Descriptor.make ~bootstrap:(Descriptor.Head 1) rpc_nodes)
        in
        let checker = Invariant.create () in
        let count_bad p = Hashtbl.fold (fun tok n acc -> if p tok n then acc + 1 else acc) execs 0 in
        Invariant.register checker ~phase:Invariant.Checkpoint "rpc.at-most-once" (fun () ->
            let bad = count_bad (fun tok n -> Hashtbl.mem strict tok && n > 1) in
            if bad = 0 then Ok ()
            else Error (Printf.sprintf "%d single-attempt calls executed more than once" bad));
        Invariant.register checker ~phase:Invariant.Checkpoint "rpc.bounded-duplication" (fun () ->
            let bad = count_bad (fun _ n -> n > 3) in
            if bad = 0 then Ok ()
            else Error (Printf.sprintf "%d calls executed more often than they were attempted" bad));
        Invariant.register checker "rpc.ok-implies-executed" (fun () ->
            let missing =
              Hashtbl.fold (fun tok () acc -> if Hashtbl.mem execs tok then acc else acc + 1) oks 0
            in
            if missing = 0 then Ok ()
            else Error (Printf.sprintf "%d calls reported Ok but never executed" missing));
        let vs = ref [] in
        Env.sleep 2.0;
        ignore
          (Env.thread (Controller.env ctl) ~name:"nemesis" (fun () ->
               Nemesis.run ~rng ~dep nemesis));
        (* callers run 2..~52 s; observe safety every 15 s while faults
           are live, then settle past the nemesis tail and retries *)
        for _ = 1 to 4 do
          Env.sleep 15.0;
          vs := !vs @ Invariant.eval checker ~at:(Engine.now eng) Invariant.Checkpoint
        done;
        Env.sleep (Float.max 30.0 (Nemesis.duration nemesis -. 60.0) +. 30.0);
        vs := !vs @ Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence;
        Controller.undeploy dep;
        !vs)
  in
  { o_suite = "rpc"; o_seed = seed; o_nemesis = nemesis; o_violations = violations; o_crashes = crashes }

(* {2 epidemic — eventual delivery on lossy links} *)

let epidemic_nodes = 16
let epidemic_config = { Apps.Epidemic.default_config with fanout = 6 }

let epidemic_gen rng =
  let ops = ref [] in
  if Rng.chance rng 0.3 then
    ops := [ Nemesis.Crash { at = 1.0 +. Rng.float rng 5.0; count = 1 + Rng.int rng 2 } ];
  if Rng.chance rng 0.7 then
    ops :=
      !ops
      @ [
          Nemesis.Drop
            {
              at = Rng.float rng 3.0;
              until = 15.0 +. Rng.float rng 15.0;
              loss = 0.05 +. Rng.float rng 0.1;
            };
        ];
  if !ops = [] || Rng.chance rng 0.4 then
    ops :=
      !ops
      @ [
          Nemesis.Slow
            {
              at = Rng.float rng 5.0;
              until = 20.0 +. Rng.float rng 10.0;
              delay = 0.3 +. Rng.float rng 1.0;
            };
        ];
  !ops

let epidemic_run ~seed ~nemesis ~perturb =
  let rng = check_rng seed in
  let rumor = Printf.sprintf "rumor-%d" seed in
  let violations, crashes =
    run_platform ~suite:"epidemic" ~seed ~perturb ~hosts:8 ~until:100_000.0 (fun eng _net ctl ->
        let nodes = ref [] in
        let dep =
          Controller.deploy ctl ~name:"epidemic"
            ~main:(Apps.Epidemic.app ~config:epidemic_config ~register:(fun c -> nodes := c :: !nodes))
            (Descriptor.make ~bootstrap:Descriptor.All epidemic_nodes)
        in
        Env.sleep 10.0;
        ignore
          (Env.thread (Controller.env ctl) ~name:"nemesis" (fun () ->
               Nemesis.run ~rng ~dep nemesis));
        Env.sleep 2.0;
        (* inject mid-faults, at the first-deployed node still alive — an
           operator would not pick a crashed machine to start a rumor, and
           a rumor that was never injected says nothing about delivery *)
        (match
           List.filter (fun n -> not (Apps.Epidemic.is_stopped n)) (List.rev !nodes)
         with
        | origin :: _ -> Apps.Epidemic.broadcast origin rumor
        | [] -> ());
        Env.sleep (Float.max 60.0 (Nemesis.duration nemesis) +. 45.0);
        let checker = Invariant.create () in
        Invariant.register checker "epidemic.eventual-delivery" (fun () ->
            let live = List.filter (fun n -> not (Apps.Epidemic.is_stopped n)) !nodes in
            let missing =
              List.length (List.filter (fun n -> not (Apps.Epidemic.has_received n rumor)) live)
            in
            (* push-only gossip with fanout 6 ≈ ln N + c: everyone with
               high probability; tolerate one unlucky node *)
            if missing <= 1 then Ok ()
            else Error (Printf.sprintf "%d of %d live nodes never saw the rumor" missing (List.length live)));
        let vs = Invariant.eval checker ~at:(Engine.now eng) Invariant.Quiescence in
        Controller.undeploy dep;
        vs)
  in
  {
    o_suite = "epidemic";
    o_seed = seed;
    o_nemesis = nemesis;
    o_violations = violations;
    o_crashes = crashes;
  }

(* {2 Registry} *)

let chord =
  {
    name = "chord";
    doc = "base Chord: ring consistency + no-lost-keys (expected to FAIL under crashes)";
    gen = chord_gen;
    run = chord_run;
  }

let chord_ft =
  {
    name = "chord-ft";
    doc = "fault-tolerant Chord: same oracles, survives crash/join/slow nemeses";
    gen = chord_ft_gen;
    run = (fun ~seed ~nemesis ~perturb -> chord_ft_run ~name:"chord-ft" ~n:14 ~seed ~nemesis ~perturb);
  }

let pastry =
  {
    name = "pastry";
    doc = "Pastry: routing reconverges to numerically-closest owner after crashes";
    gen = pastry_gen;
    run = pastry_run;
  }

let rpc =
  {
    name = "rpc";
    doc = "RPC layer: at-most-once safety at checkpoints under drop/slow/partition";
    gen = rpc_gen;
    run = rpc_run;
  }

let epidemic =
  {
    name = "epidemic";
    doc = "epidemic dissemination: eventual delivery on lossy, slow links";
    gen = epidemic_gen;
    run = epidemic_run;
  }

let smoke =
  {
    name = "smoke";
    doc = "fast always-green chord-ft variant (CI gate)";
    gen = (fun rng -> [ Nemesis.Crash { at = 5.0 +. Rng.float rng 20.0; count = 1 + Rng.int rng 2 } ]);
    run = (fun ~seed ~nemesis ~perturb -> chord_ft_run ~name:"smoke" ~n:10 ~seed ~nemesis ~perturb);
  }

let all = [ chord; chord_ft; pastry; rpc; epidemic; smoke ]

let find name =
  match name with
  | "all" -> Ok (List.filter (fun s -> s.name <> "smoke") all)
  | _ -> (
      match List.find_opt (fun s -> s.name = name) all with
      | Some s -> Ok [ s ]
      | None ->
          Error
            (Printf.sprintf "unknown suite %S (known: %s, all)" name
               (String.concat ", " (List.map (fun s -> s.name) all))))
