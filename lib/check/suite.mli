(** Checkable protocol suites.

    A suite packages a deployment scenario (which application, how many
    instances, on what testbed), a nemesis generator, and the invariant
    oracles that define correctness. Running one trial is a pure function
    of [(seed, nemesis, perturb)] — the whole platform, victim selection
    and schedule perturbation all derive from those inputs, so a failing
    trial replays exactly from its one-line command.

    Built-in suites:

    - ["chord"] — base Chord (Listings 1–3 of the paper: no fault
      tolerance). Oracles: ring consistency and no-lost-keys. {e Expected
      to fail} under a crash nemesis — the point of §4's FT extensions —
      which makes it the demo quarry for [splay check].
    - ["chord-ft"] — fault-tolerant Chord; same oracles, crash/join/slow
      nemeses. Expected to pass.
    - ["pastry"] — Pastry under crashes and drop bursts; routing must
      reconverge to the numerically-closest owner.
    - ["rpc"] — at-most-once semantics of the RPC layer under drop, delay
      and partition bursts; safety oracles run at checkpoints.
    - ["epidemic"] — rumor dissemination under lossy and slow links;
      eventual delivery to (almost) every live node.
    - ["dht-store"] — the replicated key-value store over Pastry under a
      single writer and crash/partition nemeses: reads never fabricate a
      value the writer didn't write, acknowledged keys survive (small
      lost tolerance while republish re-spreads replicas).
    - ["webcache"] — the cooperative web cache with coalescing on, under
      drop/slow/crash bursts: zero stale-beyond-TTL serves, origin
      fetches never exceed home misses, warmed urls hit their home cache.
    - ["smoke"] — a fast, always-green chord-ft variant for CI gates. *)

type outcome = {
  o_suite : string;
  o_seed : int;
  o_nemesis : Nemesis.t;
  o_violations : Invariant.violation list;
  o_crashes : string list;  (** simulation processes that died uncaught *)
}

val failed : outcome -> bool
val outcome_to_string : outcome -> string

type t = {
  name : string;
  doc : string;  (** one line for [--list] *)
  gen : Splay_sim.Rng.t -> Nemesis.t;  (** nemesis generator for one trial *)
  run : seed:int -> nemesis:Nemesis.t -> perturb:bool -> outcome;
}

val all : t list

val find : string -> (t list, string) result
(** Resolve a [--suite] argument: a suite name, or ["all"] for every
    suite except the CI alias. [Error] carries a usage message listing
    the known names. *)
