type phase = Checkpoint | Quiescence

type violation = { v_name : string; v_at : float; v_reason : string }

let violation_to_string v = Printf.sprintf "[%s] at t=%.1f: %s" v.v_name v.v_at v.v_reason

type t = { mutable checks : (string * phase * (unit -> (unit, string) result)) list }

let create () = { checks = [] }

let register t ?(phase = Quiescence) name f = t.checks <- (name, phase, f) :: t.checks

let names t = List.rev_map (fun (n, _, _) -> n) t.checks

let eval t ~at phase =
  List.filter_map
    (fun (name, p, f) ->
      let applies = match phase with Quiescence -> true | Checkpoint -> p = Checkpoint in
      if not applies then None
      else
        match f () with
        | Ok () -> None
        | Error reason -> Some { v_name = name; v_at = at; v_reason = reason }
        | exception (Splay_sim.Engine.Process_killed as e) -> raise e
        | exception e ->
            Some { v_name = name; v_at = at; v_reason = "oracle raised: " ^ Printexc.to_string e })
    (List.rev t.checks)
