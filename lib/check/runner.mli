(** Seed sweeps, shrinking and replay — the [splay check] engine.

    A sweep runs [suite × seed] trials through {!Splay_sim.Pool}, so a
    multicore sweep finds {e exactly} the same failing seeds as a
    sequential one ([--jobs] changes wall-clock time, nothing else). For
    each failing suite the smallest failing seed is greedily shrunk to a
    minimal nemesis that still fails, optionally re-run with tracing to
    dump an observability trace, and turned into a one-line replay
    command. *)

val nemesis_for : Suite.t -> int -> Nemesis.t
(** The generated fault schedule for [(suite, seed)] — a pure function of
    the pair (the generator RNG is seeded from the suite name and the
    seed, independently of the trial's engine streams). *)

val run_one :
  suite:Suite.t -> seed:int -> ?nemesis:Nemesis.t -> perturb:bool -> unit -> Suite.outcome
(** One trial. [nemesis] defaults to {!nemesis_for}[ suite seed]. *)

val replay_command : ?perturb:bool -> suite:string -> seed:int -> Nemesis.t -> string
(** The [splay check --suite … --seed … --nemesis '…'] line that
    reproduces a trial exactly. *)

type failure = {
  f_suite : string;
  f_seed : int;  (** smallest failing seed of the suite *)
  f_outcome : Suite.outcome;  (** as found by the sweep *)
  f_shrunk : Suite.outcome;  (** under the minimal nemesis *)
  f_shrink_steps : int;  (** successful reduction steps *)
  f_replay : string;  (** replay command for the minimal reproducer *)
  f_trace : string option;  (** trace file of the minimal reproducer *)
}

type suite_report = {
  r_suite : string;
  r_seeds : int;  (** seeds swept *)
  r_failing : int list;  (** failing seeds, in sweep order *)
}

type report = { rep_suites : suite_report list; rep_failures : failure list; rep_trials : int }

val failed : report -> bool

val shrink :
  suite:Suite.t -> seed:int -> perturb:bool -> Suite.outcome -> Suite.outcome * int
(** Greedy minimization: repeatedly replace the nemesis by the first
    {!Nemesis.shrink_candidates} variant that still fails, until none
    does (bounded at 32 steps). Returns the final failing outcome and the
    number of reductions applied. *)

val sweep :
  suites:Suite.t list ->
  seeds:int ->
  ?jobs:int ->
  ?base_seed:int ->
  ?perturb:bool ->
  ?shrink_failures:bool ->
  ?trace_dir:string ->
  unit ->
  report
(** Sweep seeds [base_seed .. base_seed + seeds - 1] over every suite
    ([jobs] domains, default 1; [base_seed] default 1; [perturb] default
    true). With [shrink_failures] (default true), each failing suite's
    smallest seed is shrunk; with [trace_dir], the minimal reproducer is
    re-run under tracing and its trace written to
    [<trace_dir>/check-<suite>-seed<N>.trace.jsonl]. *)
