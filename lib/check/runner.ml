module Rng = Splay_sim.Rng
module Pool = Splay_sim.Pool
module Obs = Splay_obs.Obs

(* The generator stream must depend on nothing but (suite, seed): deriving
   it from the trial engine would make the schedule depend on how many
   streams the platform split before the nemesis ran. *)
let suite_salt name =
  String.fold_left (fun a c -> ((a * 131) + Char.code c) land 0x3FFFFFFF) 7 name

let nemesis_for (s : Suite.t) seed =
  s.Suite.gen (Rng.create (suite_salt s.Suite.name lxor (seed * 0x9E3779B9) lxor 0x5EED5))

let run_one ~suite ~seed ?nemesis ~perturb () =
  let nemesis = match nemesis with Some n -> n | None -> nemesis_for suite seed in
  suite.Suite.run ~seed ~nemesis ~perturb

let replay_command ?(perturb = true) ~suite ~seed nemesis =
  Printf.sprintf "splay check --suite %s --seed %d --nemesis '%s'%s" suite seed
    (Nemesis.to_string nemesis)
    (if perturb then "" else " --no-perturb")

type failure = {
  f_suite : string;
  f_seed : int;
  f_outcome : Suite.outcome;
  f_shrunk : Suite.outcome;
  f_shrink_steps : int;
  f_replay : string;
  f_trace : string option;
}

type suite_report = { r_suite : string; r_seeds : int; r_failing : int list }

type report = { rep_suites : suite_report list; rep_failures : failure list; rep_trials : int }

let failed r = r.rep_failures <> []

let shrink ~suite ~seed ~perturb outcome =
  let best = ref outcome and steps = ref 0 and shrinking = ref true in
  while !shrinking && !steps < 32 do
    let next =
      List.find_map
        (fun n ->
          let o = run_one ~suite ~seed ~nemesis:n ~perturb () in
          if Suite.failed o then Some o else None)
        (Nemesis.shrink_candidates !best.Suite.o_nemesis)
    in
    match next with
    | Some o ->
        incr steps;
        best := o
    | None -> shrinking := false
  done;
  (!best, !steps)

let sweep ~suites ~seeds ?(jobs = 1) ?(base_seed = 1) ?(perturb = true) ?(shrink_failures = true)
    ?trace_dir () =
  let trials = List.concat_map (fun s -> List.init seeds (fun i -> (s, base_seed + i))) suites in
  let outcomes = Pool.map ~jobs (fun (s, seed) -> run_one ~suite:s ~seed ~perturb ()) trials in
  let tagged = List.combine trials outcomes in
  let by_suite =
    List.map
      (fun s -> (s, List.filter_map (fun ((s', _), o) -> if s' == s then Some o else None) tagged))
      suites
  in
  let rep_suites =
    List.map
      (fun ((s : Suite.t), outs) ->
        {
          r_suite = s.Suite.name;
          r_seeds = seeds;
          r_failing =
            List.filter_map (fun o -> if Suite.failed o then Some o.Suite.o_seed else None) outs;
        })
      by_suite
  in
  let rep_failures =
    List.filter_map
      (fun ((s : Suite.t), outs) ->
        match List.filter Suite.failed outs with
        | [] -> None
        | fs ->
            let first =
              List.hd (List.sort (fun a b -> Int.compare a.Suite.o_seed b.Suite.o_seed) fs)
            in
            let seed = first.Suite.o_seed in
            let shrunk, steps =
              if shrink_failures then shrink ~suite:s ~seed ~perturb first else (first, 0)
            in
            let trace =
              match trace_dir with
              | None -> None
              | Some dir ->
                  (* replay the minimal reproducer with tracing armed and
                     keep the trace next to the report *)
                  let was = !Obs.enabled in
                  Obs.reset ();
                  Obs.enabled := true;
                  ignore (run_one ~suite:s ~seed ~nemesis:shrunk.Suite.o_nemesis ~perturb ());
                  let path =
                    Filename.concat dir
                      (Printf.sprintf "check-%s-seed%d.trace.jsonl" s.Suite.name seed)
                  in
                  Obs.dump_jsonl ~path ();
                  Obs.enabled := was;
                  Obs.reset ();
                  Some path
            in
            Some
              {
                f_suite = s.Suite.name;
                f_seed = seed;
                f_outcome = first;
                f_shrunk = shrunk;
                f_shrink_steps = steps;
                f_replay =
                  replay_command ~perturb ~suite:s.Suite.name ~seed shrunk.Suite.o_nemesis;
                f_trace = trace;
              })
      by_suite
  in
  { rep_suites; rep_failures; rep_trials = List.length trials }
