(** Protocol invariant oracles.

    A suite registers named predicates over the in-process state of a
    deployment and evaluates them at virtual-time checkpoints during a
    run and once more at quiescence. Two strengths:

    - {!Checkpoint} — a safety property that must hold at every
      observation point (e.g. at-most-once execution): checked at every
      checkpoint {e and} at quiescence;
    - {!Quiescence} — a convergence property that only has to hold after
      the fault schedule ends and the protocol has had time to repair
      (e.g. ring consistency, no lost keys): checked only at quiescence.

    Oracles run inside a simulation process and may block (a lookup-based
    oracle issues real RPCs); an oracle that raises is reported as a
    violation rather than crashing the run. *)

type phase = Checkpoint | Quiescence

type violation = {
  v_name : string;  (** invariant name, as registered *)
  v_at : float;  (** virtual time of the failed evaluation *)
  v_reason : string;  (** the oracle's explanation *)
}

val violation_to_string : violation -> string

type t

val create : unit -> t

val register : t -> ?phase:phase -> string -> (unit -> (unit, string) result) -> unit
(** Add a named oracle (default [phase] {!Quiescence}). [Error reason]
    reports a violation; evaluation order is registration order. *)

val names : t -> string list

val eval : t -> at:float -> phase -> violation list
(** Evaluate the registry at one observation point: [eval t ~at
    Checkpoint] runs only the {!Checkpoint} oracles; [eval t ~at
    Quiescence] runs everything. An oracle that raises (other than the
    engine's kill signal) yields an ["oracle raised"] violation. *)
