(** Fault schedules for simulation testing.

    A nemesis is a small program of faults injected into a running
    deployment: crash or stop/restart instances, partition the host set,
    drop or delay every message for a while, squeeze sandbox limits, or
    replay a whole churn script. Schedules are values — generated from a
    seed, serialized into a one-line replay command, shrunk towards a
    minimal reproducer — and applying one is deterministic given the RNG
    handed to {!run}.

    The concrete syntax (one op per clause, clauses joined by [";"]):

    {v
    crash 2 @ 30            kill 2 random live instances at t=30
    stop 1 @ 30             STOP 1 instance (restartable)
    restart 1 @ 90          re-START the oldest stopped instance
    join 2 @ 60             deploy 2 extra instances
    partition 2 @ 40 to 90  split hosts into 2 groups for 50 s
    drop 0.3 @ 40 to 90     drop 30% of every message in the window
    slow 0.5 @ 40 to 90     add 0.5 s to every delivery in the window
    squeeze 2 x 4096 @ 50   cap 2 instances to 4096 more send bytes
    churn{at 10s leave 25%} @ 30   replay a churn script ({!Splay_churn.Script})
    v}

    Times are seconds relative to the moment {!run} is called (after the
    suite's settle phase, not absolute virtual time). *)

type op =
  | Crash of { at : float; count : int }
      (** kill [count] random live instances — no protocol, as under real
          churn *)
  | Stop of { at : float; count : int }
      (** STOP [count] random live instances (kept registered) *)
  | Restart of { at : float; count : int }
      (** re-START up to [count] previously stopped instances, oldest
          first *)
  | Join of { at : float; count : int }  (** deploy [count] extra instances *)
  | Partition of { at : float; until : float; groups : int }
      (** split hosts into [groups] classes ([host mod groups]); heal at
          [until] *)
  | Drop of { at : float; until : float; loss : float }
      (** global message loss probability during the window *)
  | Slow of { at : float; until : float; delay : float }
      (** extra seconds added to every delivery during the window *)
  | Squeeze of { at : float; count : int; budget : int }
      (** tighten the network-send budget of [count] random live instances
          to [budget] further bytes *)
  | Churn of { at : float; script : Splay_churn.Script.t }
      (** spawn a churn-script replay (script time 0 = [at]) *)

type t = op list

val op_time : op -> float
(** Start time of the op. *)

val duration : t -> float
(** Time of the last effect, heals and churn tails included — how long
    {!run} keeps acting after it starts. *)

val to_string : t -> string
(** One-line concrete syntax, suitable for a shell-quoted [--nemesis]
    argument. [parse (to_string t) = t] up to float formatting. *)

exception Parse_error of string

val parse : string -> t
(** Inverse of {!to_string}; raises {!Parse_error} on malformed input. *)

val shrink_candidates : t -> t list
(** Strictly smaller variants to try when shrinking a failing run:
    schedules with one op removed (first — removing an op is the biggest
    simplification), then schedules with one op weakened (halved counts,
    rates, delays and windows). The empty schedule is a valid candidate:
    if the failure survives it, the bug does not need the nemesis at
    all. *)

val run : rng:Splay_sim.Rng.t -> dep:Splay_ctl.Controller.deployment -> t -> unit
(** Apply the schedule to a live deployment, blocking until the last op
    (heals included) has fired. Must be called from inside a simulation
    process; op times are relative to the call. Victim selection draws
    from [rng] only — hand it a dedicated stream and the same schedule
    hits the same victims on every replay. *)
