module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Controller = Splay_ctl.Controller
module Script = Splay_churn.Script

type op =
  | Crash of { at : float; count : int }
  | Stop of { at : float; count : int }
  | Restart of { at : float; count : int }
  | Join of { at : float; count : int }
  | Partition of { at : float; until : float; groups : int }
  | Drop of { at : float; until : float; loss : float }
  | Slow of { at : float; until : float; delay : float }
  | Squeeze of { at : float; count : int; budget : int }
  | Churn of { at : float; script : Script.t }

type t = op list

let op_time = function
  | Crash { at; _ }
  | Stop { at; _ }
  | Restart { at; _ }
  | Join { at; _ }
  | Partition { at; _ }
  | Drop { at; _ }
  | Slow { at; _ }
  | Squeeze { at; _ }
  | Churn { at; _ } ->
      at

let op_end = function
  | Partition { until; _ } | Drop { until; _ } | Slow { until; _ } -> until
  | Churn { at; script } -> at +. Script.duration script
  | op -> op_time op

let duration t = List.fold_left (fun acc op -> Float.max acc (op_end op)) 0.0 t

(* {2 Concrete syntax} *)

let op_to_string = function
  | Crash { at; count } -> Printf.sprintf "crash %d @ %g" count at
  | Stop { at; count } -> Printf.sprintf "stop %d @ %g" count at
  | Restart { at; count } -> Printf.sprintf "restart %d @ %g" count at
  | Join { at; count } -> Printf.sprintf "join %d @ %g" count at
  | Partition { at; until; groups } -> Printf.sprintf "partition %d @ %g to %g" groups at until
  | Drop { at; until; loss } -> Printf.sprintf "drop %g @ %g to %g" loss at until
  | Slow { at; until; delay } -> Printf.sprintf "slow %g @ %g to %g" delay at until
  | Squeeze { at; count; budget } -> Printf.sprintf "squeeze %d x %d @ %g" count budget at
  | Churn { at; script } ->
      (* churn scripts are multi-line; fold them onto the one-line form
         with '|' separators so the whole nemesis stays shell-quotable *)
      let body =
        String.concat "|"
          (List.filter
             (fun l -> String.trim l <> "")
             (String.split_on_char '\n' (Script.to_string script)))
      in
      Printf.sprintf "churn{%s} @ %g" body at

let to_string t = String.concat "; " (List.map op_to_string t)

exception Parse_error of string

let parse_op s =
  let s = String.trim s in
  let fail () = raise (Parse_error (Printf.sprintf "unparsable nemesis op %S" s)) in
  let sf fmt k =
    try Scanf.sscanf s fmt k with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail ()
  in
  if String.starts_with ~prefix:"churn{" s then (
    match String.index_opt s '}' with
    | None -> fail ()
    | Some close ->
        let body = String.sub s 6 (close - 6) in
        let body = String.map (fun c -> if c = '|' then '\n' else c) body in
        let script =
          try Script.parse body
          with Script.Syntax_error m -> raise (Parse_error ("churn script: " ^ m))
        in
        let rest = String.sub s (close + 1) (String.length s - close - 1) in
        let at =
          try Scanf.sscanf rest " @ %f" Fun.id
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail ()
        in
        Churn { at; script })
  else
    match String.index_opt s ' ' with
    | None -> fail ()
    | Some i -> (
        match String.sub s 0 i with
        | "crash" -> sf "crash %d @ %f" (fun count at -> Crash { at; count })
        | "stop" -> sf "stop %d @ %f" (fun count at -> Stop { at; count })
        | "restart" -> sf "restart %d @ %f" (fun count at -> Restart { at; count })
        | "join" -> sf "join %d @ %f" (fun count at -> Join { at; count })
        | "partition" ->
            sf "partition %d @ %f to %f" (fun groups at until -> Partition { at; until; groups })
        | "drop" -> sf "drop %f @ %f to %f" (fun loss at until -> Drop { at; until; loss })
        | "slow" -> sf "slow %f @ %f to %f" (fun delay at until -> Slow { at; until; delay })
        | "squeeze" ->
            sf "squeeze %d x %d @ %f" (fun count budget at -> Squeeze { at; count; budget })
        | _ -> fail ())

let parse s =
  String.split_on_char ';' s
  |> List.filter (fun c -> String.trim c <> "")
  |> List.map parse_op

(* {2 Shrinking} *)

(* Weakened variants of one op, most aggressive reduction first. Windows
   shrink towards their start, magnitudes halve; an op already at its
   minimum yields nothing (removal is a separate candidate). *)
let shrink_op op =
  let halve_window ~at ~until mk = if until -. at > 8.0 then [ mk (at +. ((until -. at) /. 2.0)) ] else [] in
  match op with
  | Crash { at; count } when count > 1 -> [ Crash { at; count = count / 2 } ]
  | Stop { at; count } when count > 1 -> [ Stop { at; count = count / 2 } ]
  | Restart { at; count } when count > 1 -> [ Restart { at; count = count / 2 } ]
  | Join { at; count } when count > 1 -> [ Join { at; count = count / 2 } ]
  | Partition { at; until; groups } ->
      (if groups > 2 then [ Partition { at; until; groups = 2 } ] else [])
      @ halve_window ~at ~until (fun until -> Partition { at; until; groups })
  | Drop { at; until; loss } ->
      (if loss > 0.1 then [ Drop { at; until; loss = loss /. 2.0 } ] else [])
      @ halve_window ~at ~until (fun until -> Drop { at; until; loss })
  | Slow { at; until; delay } ->
      (if delay > 0.05 then [ Slow { at; until; delay = delay /. 2.0 } ] else [])
      @ halve_window ~at ~until (fun until -> Slow { at; until; delay })
  | Squeeze { at; count; budget } ->
      if count > 1 then [ Squeeze { at; count = count / 2; budget } ] else []
  | _ -> []

let shrink_candidates t =
  let removals = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) t) t in
  let weakenings =
    List.concat
      (List.mapi
         (fun i op ->
           List.map (fun op' -> List.mapi (fun j o -> if j = i then op' else o) t) (shrink_op op))
         t)
  in
  removals @ weakenings

(* {2 Application} *)

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let run ~rng ~dep t =
  let ctl = Controller.deployment_ctl dep in
  let net = Controller.net ctl in
  let eng = Net.engine net in
  let t0 = Engine.now eng in
  let live_addrs () = List.map (fun (_, a, _) -> a) (Controller.live_members dep) in
  let stopped = ref [] in
  (* Expand ops into timed point actions (a windowed op contributes its
     start and its heal), sorted by time with declaration order breaking
     ties — so the same schedule always applies in the same order. *)
  let points = ref [] in
  let add time act = points := (time, List.length !points, act) :: !points in
  List.iter
    (fun op ->
      match op with
      | Crash { at; count } ->
          add at (fun () -> List.iter (Controller.crash_node dep) (Rng.sample rng count (live_addrs ())))
      | Stop { at; count } ->
          add at (fun () ->
              List.iter
                (fun a ->
                  Controller.stop_node dep a;
                  stopped := !stopped @ [ a ])
                (Rng.sample rng count (live_addrs ())))
      | Restart { at; count } ->
          add at (fun () ->
              let back = take count !stopped in
              stopped := List.filter (fun a -> not (List.mem a back)) !stopped;
              List.iter (Controller.restart_node dep) back)
      | Join { at; count } ->
          add at (fun () ->
              for _ = 1 to count do
                ignore (Controller.add_node dep)
              done)
      | Partition { at; until; groups } ->
          add at (fun () -> Net.set_partition net (fun h -> h mod groups));
          add until (fun () -> Net.clear_partition net)
      | Drop { at; until; loss } ->
          add at (fun () -> Net.set_loss net loss);
          add until (fun () -> Net.set_loss net 0.0)
      | Slow { at; until; delay } ->
          add at (fun () -> Net.set_extra_delay net delay);
          add until (fun () -> Net.set_extra_delay net 0.0)
      | Squeeze { at; count; budget } ->
          add at (fun () ->
              List.iter
                (fun env ->
                  let sb = env.Env.sandbox in
                  Sandbox.squeeze sb
                    { Sandbox.unlimited with max_send_bytes = Sandbox.bytes_sent sb + budget })
                (Rng.sample rng count (Controller.live_envs dep)))
      | Churn { at; script } -> add at (fun () -> ignore (Splay_churn.Replayer.run_script dep script)))
    t;
  let points =
    List.sort
      (fun (t1, i1, _) (t2, i2, _) ->
        match Float.compare t1 t2 with 0 -> Int.compare i1 i2 | c -> c)
      !points
  in
  List.iter
    (fun (time, _, act) ->
      (* blocking controller ops consume virtual time; only sleep forward *)
      let elapsed = Engine.now eng -. t0 in
      if time > elapsed then Engine.sleep (time -. elapsed);
      act ())
    points;
  let elapsed = Engine.now eng -. t0 in
  let tail = duration t in
  if tail > elapsed then Engine.sleep (tail -. elapsed)
