module Engine = Splay_sim.Engine
module Par = Splay_sim.Par
module Dpool = Splay_sim.Dpool
module Env = Splay_runtime.Env
module Misc = Splay_runtime.Misc
module Sink = Splay_stats.Sink
module Node = Splay_apps.Node
module Pastry = Splay_apps.Pastry
module Dht_store = Splay_apps.Dht_store
module Webcache = Splay_apps.Webcache

type target = Dht | Web

type scenario = {
  nodes : int;
  gateways : int;
  target : target;
  serve_cost : float;
  batching : bool;
  p2c : bool;
  admission : bool;
  token_rate : float;
  token_burst : float;
  slo_budget : float;
  replicas : int;
  load : Load.config;
}

let default =
  {
    nodes = 200;
    gateways = 32;
    target = Dht;
    serve_cost = 0.002;
    batching = false;
    p2c = false;
    admission = false;
    token_rate = 0.0;
    token_burst = 32.0;
    slo_budget = 0.05;
    replicas = 3;
    load = Load.default;
  }

let all_on s = { s with batching = true; p2c = true; admission = true }

type mode = Seq | Fab of { parts : int; domains : int }

type result = {
  r_rate : float;
  offered : int;
  ok : int;
  misses : int;
  shed : int;
  failed : int;
  p50 : float;
  p99 : float;
  p999 : float;
  mean_lat : float;
  served : int;
  server_shed : int;
  batched : int;
  origin : int;
  stale : int;
  client_words : float;
  windows : int;
  workers : int;
}

(* Fixed-format one-line rendering: what the determinism tests pin
   byte-for-byte across --jobs and --domains worker counts. *)
let to_line r =
  Printf.sprintf
    "rate=%.1f offered=%d ok=%d miss=%d shed=%d failed=%d p50=%.6f p99=%.6f p999=%.6f \
     served=%d sshed=%d batched=%d origin=%d stale=%d"
    r.r_rate r.offered r.ok r.misses r.shed r.failed r.p50 r.p99 r.p999 r.served r.server_shed
    r.batched r.origin r.stale

type backend = Bdht of Dht_store.t array | Bweb of Webcache.t array

let issue_one backend g op =
  match (backend, op) with
  | Bdht stores, Load.Get key -> (
      match Dht_store.get_r stores.(g) ~key with
      | `Value _ -> `Ok
      | `Miss -> `Miss
      | `Shed -> `Shed)
  | Bdht stores, Load.Put (key, v) -> (
      match Dht_store.put_r stores.(g) ~key ~value:v with
      | acks, _ when acks > 0 -> `Ok
      | _, sheds when sheds > 0 -> `Shed
      | _ -> `Failed)
  | Bweb caches, (Load.Get key | Load.Put (key, _)) -> (
      match Webcache.get caches.(g) key with
      | _, (`Hit | `Miss), _ -> `Ok
      | _, `Shed, _ -> `Shed
      | _, `Failed, _ -> `Failed)

(* One offered-load step: build the overlay warm (Pastry.assemble), layer
   the serving application, preload the key space at its replica owners,
   install the open-loop generator, and drive the engine until every
   accepted request has completed — open-loop arrivals stop at
   [load.duration], so the run drains and the latency of every arrival is
   accounted (no censoring of the slow tail). *)
let run ?(mode = Seq) scenario ~seed ~rate =
  let n = scenario.nodes in
  let gws = min scenario.gateways n in
  let parts, domains =
    match mode with Seq -> (1, 1) | Fab { parts; domains } -> (parts, domains)
  in
  if parts > gws then invalid_arg "Harness.run: need at least one gateway per partition";
  let fab =
    match mode with
    | Seq -> None
    | Fab _ -> Some (Fabric.create ~seed ~hosts:n ~parts ())
  in
  let eng, net_of =
    match fab with
    | None ->
        let eng = Engine.create ~seed () in
        let tb = Testbed.synthetic ~hosts:n (Engine.rng eng) in
        let net = Net.create eng tb in
        (Some eng, fun _ -> net)
    | Some f -> (None, fun i -> Fabric.net_of_host f i)
  in
  let pcfg = Pastry.default_config in
  let md = Misc.pow2 pcfg.Pastry.bits in
  let spacing = max 1 (md / n) in
  let ring = Array.init n (fun i -> Node.make ~id:(i * spacing) ~addr:(Addr.make i 9000)) in
  let envs = Array.init n (fun i -> Env.create (net_of i) ~me:ring.(i).Node.addr) in
  let pastries = Array.make n None in
  for i = 0 to n - 1 do
    Pastry.assemble ~config:pcfg ~ring ~index:i
      ~register:(fun p -> pastries.(i) <- Some p)
      envs.(i)
  done;
  let pastry i = match pastries.(i) with Some p -> p | None -> assert false in
  (* sustained per-owner capacity is 1/serve_cost; the default admission
     rate protects 90% of it *)
  let token_rate =
    if scenario.token_rate > 0.0 then scenario.token_rate
    else if scenario.serve_cost > 0.0 then 0.9 /. scenario.serve_cost
    else Dht_store.default_config.Dht_store.token_rate
  in
  let backend =
    match scenario.target with
    | Dht ->
        let cfg =
          {
            Dht_store.replicas = scenario.replicas;
            (* no churn in a serving step: republish off and entries
               immortal, so the engine drains when the load does *)
            republish_interval = 0.0;
            entry_ttl = Float.max_float;
            (* overload must surface as latency, not as spurious failure
               detection: queue delays never masquerade as dead owners *)
            rpc_timeout = 1e6;
            serve_cost = scenario.serve_cost;
            batching = scenario.batching;
            p2c = scenario.p2c;
            admission = scenario.admission;
            token_rate;
            token_burst = scenario.token_burst;
            slo_budget = scenario.slo_budget;
          }
        in
        Bdht (Array.init n (fun i -> Dht_store.create ~config:cfg (pastry i)))
    | Web ->
        let cfg =
          {
            Webcache.default_config with
            Webcache.ttl = Float.max_float;
            rpc_timeout = 1e6;
            serve_cost = scenario.serve_cost;
            coalesce = scenario.batching;
            admission = scenario.admission;
            token_rate;
            token_burst = scenario.token_burst;
          }
        in
        Bweb (Array.init n (fun i -> Webcache.create ~config:cfg (pastry i)))
  in
  (* Warm start the data: place each replica at its owner directly from
     the shared membership — routing keys*replicas puts through the
     overlay first would dominate a 100k-node step's wall time. *)
  (match backend with
  | Bdht stores ->
      let value = String.make scenario.load.Load.value_size 'v' in
      let dist a b =
        let cw = (b - a + md) mod md in
        min cw (md - cw)
      in
      let owner rid =
        let j = min (rid / spacing) (n - 1) in
        let k = (j + 1) mod n in
        if dist ring.(j).Node.id rid <= dist ring.(k).Node.id rid then j else k
      in
      for kk = 1 to scenario.load.Load.keys do
        let key = "k" ^ Int.to_string kk in
        for i = 0 to scenario.replicas - 1 do
          let rid = Dht_store.replica_id stores.(0) ~key i in
          Dht_store.preload stores.(owner rid) ~key ~value
        done
      done
  | Bweb _ -> ());
  let part_of i = match fab with None -> 0 | Some f -> Fabric.part_of f i in
  let lcfg = { scenario.load with Load.rate } in
  let stats =
    List.init parts (fun p ->
        let local =
          Array.of_list (List.filter (fun i -> part_of i = p) (List.init gws Fun.id))
        in
        let genvs = Array.map (fun i -> envs.(i)) local in
        let issue g op = issue_one backend local.(g) op in
        Load.run lcfg ~seed ~part:p ~parts ~gateways:genvs ~issue)
  in
  let windows, workers =
    match fab with
    | None ->
        ignore (Engine.run (Option.get eng));
        (0, 1)
    | Some f ->
        let info = Fabric.run ~domains f in
        (info.Par.windows, Dpool.effective (min domains parts))
  in
  let sum f = List.fold_left (fun a s -> a + f s) 0 stats in
  let sumf f = List.fold_left (fun a s -> a +. f s) 0.0 stats in
  let lat_n = sum (fun s -> Sink.count s.Load.lat) in
  (* multi-partition quantiles: count-weighted mean of per-partition
     sketch quantiles (same aggregation the metrics plane uses for
     windowed histograms) *)
  let q qq =
    if lat_n = 0 then 0.0
    else
      sumf (fun s ->
          if Sink.is_empty s.Load.lat then 0.0
          else Float.of_int (Sink.count s.Load.lat) *. Sink.quantile s.Load.lat qq)
      /. Float.of_int lat_n
  in
  let mean_lat =
    if lat_n = 0 then 0.0
    else
      sumf (fun s -> Float.of_int (Sink.count s.Load.lat) *. Sink.mean s.Load.lat)
      /. Float.of_int lat_n
  in
  let served, server_shed, batched, origin, stale =
    match backend with
    | Bdht stores ->
        let s f = Array.fold_left (fun a st -> a + f st) 0 stores in
        ( s Dht_store.served_count,
          s Dht_store.shed_count,
          s Dht_store.batched_count,
          0,
          0 )
    | Bweb caches ->
        let s f = Array.fold_left (fun a c -> a + f c) 0 caches in
        ( s Webcache.requests_served,
          s Webcache.shed_count,
          max 0 (s Webcache.home_misses - s Webcache.origin_fetches),
          s Webcache.origin_fetches,
          s Webcache.stale_served )
  in
  {
    r_rate = rate;
    offered = sum (fun s -> s.Load.offered);
    ok = sum (fun s -> s.Load.ok);
    misses = sum (fun s -> s.Load.misses);
    shed = sum (fun s -> s.Load.shed);
    failed = sum (fun s -> s.Load.failed);
    p50 = q 0.5;
    p99 = q 0.99;
    p999 = q 0.999;
    mean_lat;
    served;
    server_shed;
    batched;
    origin;
    stale;
    client_words =
      Float.of_int (sum (fun s -> s.Load.setup_words))
      /. Float.of_int (max 1 scenario.load.Load.clients);
    windows;
    workers;
  }
