(** One offered-load step of the serving benchmark: warm-assembled Pastry
    overlay, a serving application layered on every node ({!Dht_store} or
    {!Webcache}), the key space preloaded at its replica owners, and the
    open-loop generator of {!Load} driving it — sequentially or as one
    deployment spread over engine partitions (Fabric / the parallel
    engine).

    Results are a pure function of [(seed, scenario, rate, parts)]: the
    arrival schedule, the overlay, and the data placement all derive from
    explicit seeds, and Fabric runs are byte-identical for any worker
    count. {!to_line} renders the fixed-format row the determinism tests
    pin. *)

type target = Dht | Web

type scenario = {
  nodes : int;
  gateways : int; (** nodes 0..gateways-1 also act as client entry points *)
  target : target;
  serve_cost : float; (** owner-side service seconds per request *)
  batching : bool; (** Dht: same-key get coalescing; Web: origin singleflight *)
  p2c : bool; (** power-of-two-choices replica selection (Dht only) *)
  admission : bool; (** token-bucket + SLO-budget shedding at owners *)
  token_rate : float; (** [<= 0]: auto — 90% of [1/serve_cost] *)
  token_burst : float;
  slo_budget : float;
  replicas : int;
  load : Load.config; (** [load.rate] is overridden by the step rate *)
}

val default : scenario

val all_on : scenario -> scenario
(** Every serving optimization enabled. *)

type mode =
  | Seq
  | Fab of { parts : int; domains : int }
      (** one deployment over [parts] engine partitions, executed on up
          to [domains] worker domains via the parallel engine *)

type result = {
  r_rate : float; (** offered load of this step, requests/second *)
  offered : int;
  ok : int;
  misses : int;
  shed : int;
  failed : int;
  p50 : float;
  p99 : float;
  p999 : float;
  mean_lat : float;
  served : int; (** owner-side completions through the serving queues *)
  server_shed : int; (** owner-side admission fast-rejects *)
  batched : int; (** extra waiters absorbed by coalescing *)
  origin : int; (** origin fetches (web target) *)
  stale : int; (** stale-beyond-TTL serves — must be 0 *)
  client_words : float; (** generator heap words per virtual client *)
  windows : int; (** parallel-engine windows (0 for sequential) *)
  workers : int; (** effective worker domains (1 for sequential) *)
}

val to_line : result -> string
(** Fixed-format rendering for byte-identical determinism pins. *)

val run : ?mode:mode -> scenario -> seed:int -> rate:float -> result
(** Run one step to completion (arrivals stop at [load.duration]; the
    engine then drains, so every arrival's latency is accounted — no
    censoring of the slow tail). *)
