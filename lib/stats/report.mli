(** Plain-text figure/table renderer for the benchmark harness.

    Each experiment prints the same rows/series the paper's figures plot;
    these helpers keep the output aligned and uniform so EXPERIMENTS.md can
    quote it directly. *)

val section : string -> unit
(** Banner for one experiment (figure/table id + caption). *)

val kv : string -> string -> unit
(** One "key: value" fact line. *)

val kvf : string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!kv}. *)

val table : header:string list -> string list list -> unit
(** Aligned columns; header underlined. Ragged rows are padded. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point rendering, default 2 decimals. *)

val cdf_table : title:string -> xlabel:string -> (string * (float * float) list) list -> unit
(** Print several named CDF curves sampled at their own points, one table
    per curve: [x  fraction%]. Curves are downsampled to at most 12 rows. *)

val percentile_header : float list -> string list
(** ["p5"; "p25"; ...] labels for a percentile table. *)

val sink_pct_cells : ?decimals:int -> Sink.t -> float list -> string list
(** Percentile cells straight from a {!Sink} (either backend); a row of
    ["-"] when the sink is empty. *)

val sink_cdf_table : title:string -> xlabel:string -> (string * Sink.t) list -> unit
(** {!cdf_table} over named sinks' {!Sink.cdf_curve} shapes. *)

val sink_summary : ?unit_label:string -> string -> Sink.t -> unit
(** One {!kv} line with count, mean, p50, p99 and max of a sink. *)

val bar : float -> max:float -> width:int -> string
(** ASCII bar of length proportional to [v/max], for histogram rows. *)
