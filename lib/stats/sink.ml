(* Private splitmix64 for reservoir replacement decisions. The stats
   library sits below the simulator in the dependency order, so it cannot
   use Splay_sim.Rng; this is the same generator, reduced to the one
   operation the reservoir needs. *)
module Sm64 = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    let open Int64 in
    t.state <- add t.state 0x9e3779b97f4a7c15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)

  (* Uniform in [0, n) by reducing 63 random bits; the modulo bias at
     reservoir sizes (n well below 2^32) is negligible. *)
  let int t n =
    if n <= 0 then invalid_arg "Sink.Sm64.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))
end

type sketch = {
  cap : int;
  res : float array; (* reservoir; slots [0, filled) are valid *)
  mutable filled : int;
  mutable sk_sorted : bool; (* slots [0, filled) currently sorted? *)
  moments : Summary.t;
  rng : Sm64.t;
  seed : int;
}

type backend = Exact of Dist.t | Sketch of sketch

type t = { backend : backend }

let exact () = { backend = Exact (Dist.create ()) }

let default_capacity = 1024

let sketch ?(capacity = default_capacity) ~seed () =
  if capacity < 2 then invalid_arg "Sink.sketch: capacity < 2";
  {
    backend =
      Sketch
        {
          cap = capacity;
          res = Array.make capacity 0.0;
          filled = 0;
          sk_sorted = true;
          moments = Summary.create ();
          rng = Sm64.create seed;
          seed;
        };
  }

let name t = match t.backend with Exact _ -> "exact" | Sketch _ -> "sketch"

let sk_add s x =
  Summary.add s.moments x;
  let n = Summary.count s.moments in
  if s.filled < s.cap then begin
    s.res.(s.filled) <- x;
    s.filled <- s.filled + 1;
    s.sk_sorted <- false
  end
  else begin
    (* Algorithm R: the n-th sample replaces a random slot with
       probability cap/n, keeping every prefix a uniform sample. *)
    let j = Sm64.int s.rng n in
    if j < s.cap then begin
      s.res.(j) <- x;
      s.sk_sorted <- false
    end
  end

let add t x =
  match t.backend with Exact d -> Dist.add d x | Sketch s -> sk_add s x

let count t =
  match t.backend with Exact d -> Dist.count d | Sketch s -> Summary.count s.moments

let is_empty t = count t = 0

let mean t =
  match t.backend with Exact d -> Dist.mean d | Sketch s -> Summary.mean s.moments

let stddev t =
  match t.backend with Exact d -> Dist.stddev d | Sketch s -> Summary.stddev s.moments

let min_value t =
  match t.backend with
  | Exact d -> Dist.min_value d
  | Sketch s ->
      if Summary.count s.moments = 0 then invalid_arg "Sink.min_value: empty"
      else Summary.min_value s.moments

let max_value t =
  match t.backend with
  | Exact d -> Dist.max_value d
  | Sketch s ->
      if Summary.count s.moments = 0 then invalid_arg "Sink.max_value: empty"
      else Summary.max_value s.moments

let sk_sort s =
  if not s.sk_sorted then begin
    (* sort only the live prefix in place *)
    let live = Array.sub s.res 0 s.filled in
    Array.sort Float.compare live;
    Array.blit live 0 s.res 0 s.filled;
    s.sk_sorted <- true
  end

(* Reservoir quantile: interpolate order statistics of the sample, but pin
   the extremes to the exact min/max the moments tracked — the reservoir
   may well have evicted them, and a latency figure's p0/p100 should never
   be approximate. *)
let sk_quantile s q =
  sk_sort s;
  if q <= 0.0 then Summary.min_value s.moments
  else if q >= 1.0 then Summary.max_value s.moments
  else begin
    let rank = q *. Float.of_int (s.filled - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then s.res.(lo)
    else begin
      let frac = rank -. Float.of_int lo in
      (s.res.(lo) *. (1.0 -. frac)) +. (s.res.(hi) *. frac)
    end
  end

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Sink.quantile: q out of range";
  if is_empty t then invalid_arg "Sink.quantile: empty";
  match t.backend with
  | Exact d -> Dist.percentile d (q *. 100.0)
  | Sketch s -> sk_quantile s q

let percentile t p = quantile t (p /. 100.0)

let percentiles t ps = List.map (percentile t) ps

let sk_fraction_le s x =
  sk_sort s;
  let lo = ref 0 and hi = ref s.filled in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.res.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  Float.of_int !lo /. Float.of_int (max 1 s.filled)

let cdf_curve t ?(steps = 50) () =
  if is_empty t then []
  else
    match t.backend with
    | Exact d -> Dist.cdf_curve d ~steps ()
    | Sketch s ->
        let lo = Summary.min_value s.moments and hi = Summary.max_value s.moments in
        let span = hi -. lo in
        if span <= 0.0 then [ (lo, 1.0) ]
        else
          List.init (steps + 1) (fun i ->
              let x = lo +. (span *. Float.of_int i /. Float.of_int steps) in
              (x, sk_fraction_le s x))

(* Merging with a sketch on either side: moments merge exactly (Chan's
   formula via Summary.merge); the merged reservoir draws each slot from
   side A with probability count_a/(count_a + count_b), then uniformly
   within that side's retained samples — each side is itself a uniform
   sample of its stream, so the composition approximates a uniform sample
   of the concatenation. Deterministic: the merged sketch's private
   stream is seeded from both inputs' seeds. *)
let retained t =
  match t.backend with
  | Exact d -> Dist.values d
  | Sketch s ->
      sk_sort s;
      Array.sub s.res 0 s.filled

let seed_of t = match t.backend with Exact _ -> 0 | Sketch s -> s.seed

let cap_of t = match t.backend with Exact _ -> default_capacity | Sketch s -> s.cap

let merge a b =
  match (a.backend, b.backend) with
  | Exact da, Exact db -> { backend = Exact (Dist.merge da db) }
  | _ ->
      let na = count a and nb = count b in
      let cap = max (cap_of a) (cap_of b) in
      let seed = (seed_of a * 0x1000193) lxor seed_of b lxor 0x5eed in
      let rng = Sm64.create seed in
      let ra = retained a and rb = retained b in
      (* moments, min/max and count merge exactly whatever the backends *)
      let summarize t' =
        match t'.backend with
        | Sketch s' -> s'.moments
        | Exact d ->
            let sm = Summary.create () in
            Array.iter (Summary.add sm) (Dist.values d);
            sm
      in
      let moments = Summary.merge (summarize a) (summarize b) in
      let res = Array.make cap 0.0 in
      let filled = ref 0 in
      if Array.length ra > 0 || Array.length rb > 0 then begin
        let slots = min cap (na + nb) in
        for _ = 1 to slots do
          let from_a =
            Array.length rb = 0 || (Array.length ra > 0 && Sm64.int rng (na + nb) < na)
          in
          let src = if from_a then ra else rb in
          res.(!filled) <- src.(Sm64.int rng (Array.length src));
          incr filled
        done
      end;
      {
        backend =
          Sketch { cap; res; filled = !filled; sk_sorted = false; moments; rng; seed };
      }

let to_dist t =
  let d = Dist.create () in
  Array.iter (Dist.add d) (retained t);
  d
