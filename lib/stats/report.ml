let section title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let kv k v = Printf.printf "  %-32s %s\n" (k ^ ":") v

let kvf k fmt = Format.kasprintf (fun s -> kv k s) fmt

let table ~header rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = pad header :: List.map pad rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    print_string "  ";
    List.iteri (fun i cell -> Printf.printf "%-*s  " widths.(i) cell) row;
    print_newline ()
  in
  print_row (pad header);
  print_string "  ";
  Array.iter (fun w -> print_string (String.make w '-' ^ "  ")) widths;
  print_newline ();
  List.iter print_row (List.map pad rows)

let float_cell ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let downsample n xs =
  let len = List.length xs in
  if len <= n then xs
  else begin
    let arr = Array.of_list xs in
    List.init n (fun i -> arr.(i * (len - 1) / (n - 1)))
  end

let cdf_table ~title ~xlabel curves =
  Printf.printf "  -- %s --\n" title;
  List.iter
    (fun (name, points) ->
      Printf.printf "  [%s]\n" name;
      table
        ~header:[ xlabel; "CDF(%)" ]
        (List.map
           (fun (x, f) -> [ float_cell ~decimals:3 x; float_cell ~decimals:1 (100.0 *. f) ])
           (downsample 12 points)))
    curves

let percentile_header ps = List.map (fun p -> Printf.sprintf "p%g" p) ps

(* Sink-based figure helpers: identical rendering whatever storage policy
   (exact or sketch) collected the samples. *)

let sink_pct_cells ?(decimals = 3) s ps =
  if Sink.is_empty s then List.map (fun _ -> "-") ps
  else List.map (fun p -> float_cell ~decimals (Sink.percentile s p)) ps

let sink_cdf_table ~title ~xlabel sinks =
  cdf_table ~title ~xlabel (List.map (fun (name, s) -> (name, Sink.cdf_curve s ())) sinks)

let sink_summary ?(unit_label = "") name s =
  if Sink.is_empty s then kv name "(no samples)"
  else
    kvf name "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g%s" (Sink.count s) (Sink.mean s)
      (Sink.quantile s 0.5) (Sink.quantile s 0.99) (Sink.max_value s)
      (if unit_label = "" then "" else " " ^ unit_label)

let bar v ~max ~width =
  let n =
    if max <= 0.0 then 0 else int_of_float (Float.of_int width *. v /. max +. 0.5)
  in
  let n = if n < 0 then 0 else if n > width then width else n in
  String.make n '#'
