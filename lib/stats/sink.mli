(** Streaming statistics sink: one write-side interface, two storage
    policies.

    Experiments push samples into a sink and query count / moments /
    quantiles at the end; which backend answers is the caller's choice at
    creation time and invisible afterwards:

    - {!exact} keeps every sample (a {!Dist} underneath). Quantiles are
      exact order statistics; memory grows linearly with the stream.
    - {!sketch} keeps a bounded reservoir plus exact running moments
      (Welford) and exact min/max. Memory is O(capacity) regardless of
      stream length; quantiles are approximate with rank error on the
      order of 1/sqrt(capacity).

    The sketch is what lets a million-node run record per-operation
    latency without holding a million floats per metric: at the default
    capacity a sink costs ~1k words no matter how many samples pass
    through it. [count], [mean], [stddev], [min_value] and [max_value]
    are exact on both backends — only interior quantiles are
    approximated by the sketch.

    Sketch determinism: reservoir replacement draws from a private
    splitmix64 stream derived from [seed], so the same stream into the
    same-seeded sketch yields the same quantile answers — sketch-backed
    figures are as reproducible as exact ones. *)

type t

val exact : unit -> t
(** Keep every sample; exact quantiles. *)

val sketch : ?capacity:int -> seed:int -> unit -> t
(** Bounded memory: a [capacity]-slot uniform reservoir (Vitter's
    algorithm R, default capacity 1024) plus exact moments and min/max.
    Raises [Invalid_argument] if [capacity < 2]. *)

val name : t -> string
(** ["exact"] or ["sketch"] — for report labels. *)

val add : t -> float -> unit

val count : t -> int
(** Number of samples offered (not retained) — exact on both backends. *)

val is_empty : t -> bool

val mean : t -> float
(** Exact on both backends; 0 when empty. *)

val stddev : t -> float
(** Exact (population) on both backends; 0 with fewer than 2 samples. *)

val min_value : t -> float

val max_value : t -> float
(** Exact on both backends. Raise [Invalid_argument] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0,1\]]; linear interpolation between
    order statistics (of all samples, or of the reservoir). [q = 0] and
    [q = 1] return the exact min/max on both backends. Raises
    [Invalid_argument] if empty or [q] out of range. *)

val percentile : t -> float -> float
(** [percentile t p] = [quantile t (p /. 100.)]. *)

val percentiles : t -> float list -> float list

val cdf_curve : t -> ?steps:int -> unit -> (float * float) list
(** Evenly spaced [(x, fraction <= x)] curve over the sample range, the
    shape {!Report.cdf_table} prints. Empty list when empty. *)

val merge : t -> t -> t
(** A new sink summarizing both streams. Moments, min/max and count
    merge exactly on every backend combination; exact+exact keeps every
    sample, any combination involving a sketch yields a sketch whose
    reservoir subsamples each side proportionally to its stream length. *)

val to_dist : t -> Dist.t
(** The retained samples as a {!Dist} — every sample for an exact sink,
    the reservoir for a sketch — for handing to histogram/PDF helpers
    that need raw data. *)
