all:
	dune build @all

check:
	dune build @all && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

.PHONY: all check test bench
