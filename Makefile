all:
	dune build @all

check:
	dune build @all && dune runtest && $(MAKE) trace-demo && $(MAKE) bench-smoke && $(MAKE) bench-scale-smoke && $(MAKE) bench-obs-smoke && $(MAKE) bench-par-smoke && $(MAKE) bench-serve-smoke && $(MAKE) check-smoke && $(MAKE) live-smoke

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Quick benchmark smoke test: one parallelized figure plus the framework
# microbenchmarks, fanned out over two domains to exercise the Pool/Obs
# multicore path end to end. Writes the bench json to an untracked path so
# `make check` never dirties the committed BENCH_engine.json baseline.
bench-smoke:
	dune exec bench/main.exe -- fig7a micro macro --jobs 2 --bench-out=_build/BENCH_engine.smoke.json --bench-macro-out=_build/BENCH_macro.smoke.json
	scripts/check_bench_floors.sh _build/BENCH_macro.smoke.json BENCH_macro.floors.json
	@echo "bench-smoke: OK"

# Scale smoke test: the 10k-node single-run workloads (quick scale covers
# 1k and 10k), guarded by ops/sec floors AND resident-words-per-node
# ceilings — a footprint regression that would push the million-node run
# out of memory budget trips here, long before anyone runs a million
# nodes. Same untracked-output story as bench-smoke.
bench-scale-smoke:
	dune exec bench/main.exe -- scale --bench-scale-out=_build/BENCH_scale.smoke.json
	scripts/check_bench_floors.sh _build/BENCH_scale.smoke.json BENCH_scale.floors.json
	@echo "bench-scale-smoke: OK"

# Refresh the committed BENCH_engine.json and BENCH_macro.json baselines
# (explicit, never part of check). --jobs 2 makes the macro baseline
# record both single-domain and fanned-out rates.
bench-baseline:
	dune exec bench/main.exe -- micro macro --jobs 2

# Metrics-plane smoke test: the macro workloads with a metrics dump
# enabled end to end (exercising Obs_flags parsing, rollup capture/absorb
# across 2 domains, and the JSONL writer), the obs-overhead floors —
# the _obs twin rows must hold their budgeted rates — and a `splay top`
# render of the dump.
bench-obs-smoke:
	dune exec bench/main.exe -- macro --jobs 2 --bench-macro-out=_build/BENCH_macro.obs-smoke.json --metrics-out=_build/metrics.obs-smoke.jsonl
	scripts/check_bench_floors.sh _build/BENCH_macro.obs-smoke.json BENCH_macro.floors.json
	dune exec bin/splay_cli.exe -- top _build/metrics.obs-smoke.jsonl | grep -q "percentile columns:"
	@echo "bench-obs-smoke: OK"

# Parallel-engine smoke test: the 100k-node epidemic flood, sequential
# vs one deployment over 4 partitions on the windowed parallel engine.
# The floors are core-count-aware: a >= 4-core machine must show the
# real >= 2x speedup, a 1-core container only the no-collapse bound on
# windowing overhead (the par row's workers field says which machine CI
# actually was). Same untracked-output story as bench-smoke.
bench-par-smoke:
	dune exec bench/main.exe -- par --domains 4 --bench-par-out=_build/BENCH_par.smoke.json
	scripts/check_bench_floors.sh _build/BENCH_par.smoke.json BENCH_par.floors.json
	@echo "bench-par-smoke: OK"

# Serving-fast-path smoke test: the quick open-loop sweep (1M virtual
# clients over 10k nodes, offered load stepped through the baseline
# knee) guarded by the serve floors — sustained throughput, bounded
# words per idle client, the all-on p99 improvement past the knee, the
# coalescer's origin-fetch savings, and zero stale cache serves. The
# parallel-engine row's speedup floor is core-count-aware like
# bench-par-smoke. Same untracked-output story as bench-smoke.
bench-serve-smoke:
	dune exec bench/main.exe -- serve --bench-serve-out=_build/BENCH_serve.smoke.json
	scripts/check_bench_floors.sh _build/BENCH_serve.smoke.json BENCH_serve.floors.json
	@echo "bench-serve-smoke: OK"

# Simulation-testing gates. check-smoke is the fast always-green CI gate;
# check-fuzz is the broad fault-injection sweep over every suite (base
# chord is *expected* to fail it — the || true keeps the target usable as
# a bug-hunting report rather than a pass/fail gate).
check-smoke:
	dune exec bin/splay_cli.exe -- check --suite smoke --seeds 50 --jobs 2
	dune exec bin/splay_cli.exe -- check --suite dht-store --seeds 12 --jobs 2
	dune exec bin/splay_cli.exe -- check --suite webcache --seeds 12 --jobs 2
	@echo "check-smoke: OK"

check-fuzz:
	dune exec bin/splay_cli.exe -- check --suite all --seeds 25 --jobs 4 || true

# Live-backend smoke test: 10 real splayd processes over loopback TCP
# run Chord, all lookups must resolve, the structural invariants must
# match the simulated twin (zero contract violations), every child is
# reaped, and a SIGKILLed controller leaves no orphans behind. Failure
# collects the per-daemon logs into _build/live-logs/.
live-smoke:
	dune build bin/splay_cli.exe bin/splayd.exe
	scripts/live_smoke.sh
	@echo "live-smoke: OK"

# End-to-end tracing demo: run a traced Chord deployment, then verify the
# analyzer extracts a non-empty RPC critical path from the dump.
trace-demo:
	dune exec bin/splay_cli.exe -- run --app chord --testbed cluster \
	  --hosts 4 --nodes 8 --duration 60 --lookups 25 \
	  --trace /tmp/splay-trace-demo.jsonl > /dev/null
	dune exec bin/splay_cli.exe -- trace /tmp/splay-trace-demo.jsonl --critical-path \
	  | tee /dev/stderr | grep -q "rpc\."
	@echo "trace-demo: OK (critical path extracted)"

.PHONY: all check test bench bench-smoke bench-scale-smoke bench-obs-smoke bench-par-smoke bench-serve-smoke bench-baseline trace-demo check-smoke check-fuzz live-smoke
