(* Figure 10: massive failure under the churn manager — Pastry on the
   cluster, half the network fails at t = 5 min. The failure rate spikes
   towards ~50%, recovery takes a few minutes, and delays *drop* after the
   failure because the population shrank. *)

open Splay
module Apps = Splay_apps

let run () =
  Report.section "Figure 10 — massive failure (50% of nodes at t=5min)";
  let n = Common.pick ~quick:300 ~full:1500 in
  let horizon = 600.0 in
  let failure_at = 300.0 in
  let delays, failures, totals =
    Common.with_platform ~seed:10 (Platform.Cluster 11) (fun p ->
        let ctl = Platform.controller p in
        let config =
          { Apps.Pastry.default_config with join_delay_per_position = 0.05; rpc_timeout = 5.0 }
        in
        let dep, nodes = Common.deploy_pastry ~config ctl ~n in
        Env.sleep ((Float.of_int n *. 0.05) +. 120.0);
        let eng = Platform.engine p in
        let rng = Rng.split (Engine.rng eng) in
        let t0 = Engine.now eng in
        let delays = Series.create ~bin_width:30.0 in
        let fails = Series.Counter.create ~bin_width:30.0 in
        let totals = Series.Counter.create ~bin_width:30.0 in
        (* a steady stream of lookups from random live nodes *)
        let lookup_rate = Common.pick ~quick:4 ~full:10 in
        let stop = ref false in
        for _ = 1 to lookup_rate do
          ignore
            (Env.thread (Controller.env ctl) (fun () ->
                 let lrng = Rng.split rng in
                 while not !stop do
                   Env.sleep (Rng.float lrng 1.0);
                   let live = List.filter (fun x -> not (Apps.Pastry.is_stopped x)) !nodes in
                   if live <> [] then begin
                     let origin = Rng.pick_list lrng live in
                     let key = Rng.int lrng (Splay_runtime.Misc.pow2 32) in
                     let start = Engine.now eng in
                     let rel = start -. t0 in
                     Series.Counter.incr totals ~time:rel;
                     match Apps.Pastry.lookup origin key with
                     | Some _ -> Series.add delays ~time:rel (Engine.now eng -. start)
                     | None -> Series.Counter.incr fails ~time:rel
                   end
                 done))
        done;
        (* the churn script: kill half the network at t=5min *)
        let script = Script.parse (Printf.sprintf "at %.0fs leave 50%%" failure_at) in
        let _proc, _stats = Replayer.run_script dep script in
        Env.sleep horizon;
        stop := true;
        (delays, fails, totals))
  in
  Report.table
    ~header:
      ([ "t (min)" ] @ Report.percentile_header Common.pcts @ [ "(ms)"; "failure rate %" ])
    (List.map
       (fun (edge, d) ->
         let fail_pct =
           let f = Series.Counter.get failures ~time:edge in
           let tot = Series.Counter.get totals ~time:edge in
           if tot = 0 then 0.0 else 100.0 *. Float.of_int f /. Float.of_int tot
         in
         (Report.float_cell ~decimals:1 (edge /. 60.0) :: Common.pct_cells d)
         @ [ ""; Report.float_cell ~decimals:1 fail_pct ])
       (Series.bins delays));
  let rate_at t =
    let f = Series.Counter.get failures ~time:t and tot = Series.Counter.get totals ~time:t in
    if tot = 0 then 0.0 else Float.of_int f /. Float.of_int tot
  in
  let spike = rate_at (failure_at +. 15.0) in
  let recovered = rate_at (horizon -. 30.0) in
  Report.kvf "failure rate right after the event" "%.0f%% (paper: ~50%%)" (100.0 *. spike);
  Report.kvf "failure rate at the end" "%.0f%%" (100.0 *. recovered);
  Common.shape_check "failure spike after the massive failure" (spike > 0.15);
  Common.shape_check "recovery within ~5 minutes" (recovered < spike /. 2.0);
  (* delays after recovery at or below the pre-failure level (smaller ring) *)
  let median_at t =
    match Series.bin_at delays t with Some d -> Dist.percentile d 50.0 | None -> nan
  in
  let before = median_at (failure_at -. 60.0) and late = median_at (horizon -. 30.0) in
  Report.kvf "median delay" "before %.1f ms, after recovery %.1f ms" (1000.0 *. before)
    (1000.0 *. late);
  Common.shape_check "delays do not worsen after the population shrinks" (late <= before *. 1.5)
