(* Figure 13: dissemination of a 24 MB file to 63 nodes over two parallel
   binary trees, SPLAY vs the native CRCP implementation, on a 1 Mbps
   ModelNet configuration, for 16/128/512 kB blocks. Both complete around
   the bandwidth bound; CRCP's sequential, acknowledged sends give its
   completion curve a different shape. *)

open Splay
module Apps = Splay_apps
module Baselines = Splay_baselines

let nodes_count = 63
let mbps x = x *. 1_000_000.0 /. 8.0

let run_splay ~block_size ~file_size =
  Common.with_platform ~seed:13 ~horizon:10_000.0
    (Platform.Modelnet { hosts = nodes_count + 2; bandwidth = Some (mbps 1.0) })
    (fun p ->
      let ctl = Platform.controller p in
      let handles = ref [] in
      let config = { Apps.Trees.default_config with block_size; start_delay = 10.0 } in
      ignore
        (Controller.deploy ctl ~name:"trees"
           ~main:(Apps.Trees.app ~config ~file_size ~register:(fun x -> handles := x :: !handles))
           (Descriptor.make ~bootstrap:Descriptor.All nodes_count));
      let rec wait () =
        Env.sleep 10.0;
        if
          List.length !handles < nodes_count
          || List.exists (fun x -> Apps.Trees.completion_time x = None) !handles
        then wait ()
      in
      wait ();
      List.filter_map Apps.Trees.completion_time !handles)

let run_crcp ~block_size ~file_size =
  Common.with_platform ~seed:13 ~horizon:10_000.0
    (Platform.Modelnet { hosts = nodes_count + 2; bandwidth = Some (mbps 1.0) })
    (fun p ->
      let ctl = Platform.controller p in
      let handles = ref [] in
      let config = { Baselines.Crcp.default_config with block_size; start_delay = 10.0 } in
      ignore
        (Controller.deploy ctl ~name:"crcp"
           ~main:
             (Baselines.Crcp.app ~config ~file_size ~register:(fun x -> handles := x :: !handles))
           (Descriptor.make ~bootstrap:Descriptor.All nodes_count));
      let rec wait () =
        Env.sleep 10.0;
        if
          List.length !handles < nodes_count
          || List.exists (fun x -> Baselines.Crcp.completion_time x = None) !handles
        then wait ()
      in
      wait ();
      List.filter_map Baselines.Crcp.completion_time !handles)

let completions_summary times =
  let d = Dist.create () in
  Dist.add_list d times;
  d

let run () =
  Report.section "Figure 13 — file distribution over parallel trees (SPLAY vs CRCP)";
  let file_size = Common.pick ~quick:(6 * 1024 * 1024) ~full:(24 * 1024 * 1024) in
  Report.kvf "file" "%d MB to %d nodes at 1 Mbps, 2 binary trees"
    (file_size / 1024 / 1024) nodes_count;
  let blocks = [ 16 * 1024; 128 * 1024; 512 * 1024 ] in
  let rows =
    List.map
      (fun block_size ->
        let s = completions_summary (run_splay ~block_size ~file_size) in
        let c = completions_summary (run_crcp ~block_size ~file_size) in
        (block_size, s, c))
      blocks
  in
  Report.table
    ~header:
      [ "block"; "impl"; "first done (s)"; "median (s)"; "last done (s)"; "completed" ]
    (List.concat_map
       (fun (bs, s, c) ->
         let line name d =
           [
             Printf.sprintf "%d KB" (bs / 1024);
             name;
             Report.float_cell ~decimals:1 (Dist.min_value d);
             Report.float_cell ~decimals:1 (Dist.percentile d 50.0);
             Report.float_cell ~decimals:1 (Dist.max_value d);
             string_of_int (Dist.count d);
           ]
         in
         [ line "SPLAY" s; line "CRCP" c ])
       rows);
  (* the limiting link: an interior node uploads file/ntrees blocks to
     fanout children = the whole file at 1 Mbps *)
  let bound = Float.of_int file_size /. mbps 1.0 in
  Report.kvf "bandwidth bound" "%.0f s" bound;
  List.iter
    (fun (bs, s, c) ->
      Common.shape_check
        (Printf.sprintf "%d KB: SPLAY completes near the bandwidth bound" (bs / 1024))
        (Dist.max_value s < 3.0 *. bound);
      Common.shape_check
        (Printf.sprintf "%d KB: SPLAY not slower than native CRCP" (bs / 1024))
        (Dist.percentile s 50.0 <= Dist.percentile c 50.0 *. 1.2))
    rows
