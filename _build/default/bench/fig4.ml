(* Figure 4: the synthetic churn description example — the script on the
   left, the binned joins/leaves and total population on the right. This is
   a pure compilation of the script language (no deployment). *)

open Splay

let script_text =
  {|at 30s join 10
from 5m to 10m inc 10
from 10m to 15m const churn 50%
at 15m leave 50%
from 15m to 20m inc 10 churn 150%
at 20m stop|}

let run () =
  Report.section "Figure 4 — synthetic churn description";
  print_endline "  script:";
  List.iter (fun l -> Printf.printf "    %s\n" l) (String.split_on_char '\n' script_text);
  let script = Script.parse script_text in
  let prof = Script.profile script ~bin:60.0 ~initial:0 in
  let max_pop = List.fold_left (fun acc (_, p, _, _) -> max acc p) 0 prof in
  Report.table
    ~header:[ "minute"; "population"; "joins/min"; "leaves/min"; "" ]
    (List.map
       (fun (t, pop, j, l) ->
         [
           string_of_int (int_of_float (t /. 60.0));
           string_of_int pop;
           string_of_int j;
           string_of_int l;
           Report.bar (Float.of_int pop) ~max:(Float.of_int max_pop) ~width:30;
         ])
       prof);
  let pop_at m =
    let _, p, _, _ = List.nth prof m in
    p
  in
  Common.shape_check "initial join of 10 at 30 s" (pop_at 1 = 10);
  Common.shape_check "linear growth reaches 60 by minute 10" (pop_at 10 = 60);
  Common.shape_check "massive failure halves the population" (pop_at 15 <= 45);
  Common.shape_check "stop empties the system" (pop_at 20 = 0);
  let _, _, j12, l12 = List.nth prof 12 in
  Common.shape_check "constant-churn phase has both joins and leaves" (j12 > 0 && l12 > 0)
