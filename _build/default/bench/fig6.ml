(* Figure 6: the Chord walkthrough of Section 4, deployed.
   (a) route-length PDF and (b) lookup-delay CDF on ModelNet at several
   ring sizes, with the exact base code of the paper; (c) delay CDF of the
   fault-tolerant version on PlanetLab against MIT's optimized Chord. *)

open Splay
module Apps = Splay_apps
module Baselines = Splay_baselines

let deploy_chord ctl ~config ~n =
  let nodes = ref [] in
  ignore
    (Controller.deploy ctl ~name:"chord"
       ~main:(Apps.Chord.app ~config ~register:(fun c -> nodes := c :: !nodes))
       (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
  nodes

let measure_chord_lookups ~rng ~m ~per_node nodes =
  let delays = Dist.create () and hops = Dist.create () in
  let failures = ref 0 in
  let eng = Engine.engine () in
  let remaining = ref (List.length nodes) in
  let done_iv = Ivar.create () in
  List.iter
    (fun c ->
      ignore
        (Env.thread (Apps.Chord.node_env c) (fun () ->
             for _ = 1 to per_node do
               let key = Rng.int rng (1 lsl m) in
               let t0 = Engine.now eng in
               match Apps.Chord.lookup c key with
               | Some (_, h) ->
                   Dist.add delays (Engine.now eng -. t0);
                   Dist.add hops (Float.of_int h)
               | None -> incr failures
             done;
             decr remaining;
             if !remaining = 0 then Ivar.try_fill done_iv () |> ignore)))
    nodes;
  Ivar.read done_iv;
  (delays, hops, !failures)

let run_modelnet () =
  Report.section "Figure 6(a)(b) — Chord on ModelNet: route lengths and delays";
  let sizes = Common.pick ~quick:[ 100; 200; 400 ] ~full:[ 300; 500; 1000 ] in
  (* keep the paper's ratio between join spacing and the stabilization
     period: compressing joins without speeding stabilization up leaves the
     ring unconverged when lookups start *)
  let join_delay = Common.pick ~quick:0.4 ~full:1.0 in
  let stabilize = Common.pick ~quick:2.0 ~full:5.0 in
  let per_node = Common.pick ~quick:10 ~full:50 in
  let results =
    List.map
      (fun n ->
        let config =
          {
            Apps.Chord.default_config with
            join_delay_per_position = join_delay;
            stabilize_interval = stabilize;
          }
        in
        Common.with_platform ~seed:(1000 + n)
          (Platform.Modelnet { hosts = max 1100 n; bandwidth = None })
          (fun p ->
            let ctl = Platform.controller p in
            let nodes = deploy_chord ctl ~config ~n in
            (* staggered join, then wait for the ring to close and for at
               least two full finger sweeps ("we let the Chord overlay
               stabilize before starting the measurements") *)
            Env.sleep (Float.of_int n *. join_delay);
            let rec converge k =
              Env.sleep (10.0 *. stabilize);
              if k > 0 && List.length (Apps.Chord.ring_of !nodes) < List.length !nodes then
                converge (k - 1)
            in
            converge 40;
            Env.sleep (2.0 *. stabilize *. Float.of_int config.Apps.Chord.m);
            let rng = Rng.split (Env.engine (Controller.env ctl) |> Engine.rng) in
            measure_chord_lookups ~rng ~m:config.Apps.Chord.m ~per_node !nodes))
      sizes
  in
  Report.kv "Figure 6(a)" "route length PDF (%)";
  let header = "hops" :: List.map (fun n -> Printf.sprintf "%d nodes" n) sizes in
  Report.table ~header
    (List.init 11 (fun h ->
         string_of_int h
         :: List.map
              (fun (_, hops, _) ->
                let pdf = Dist.pdf hops ~bins:11 ~lo:(-0.5) ~hi:10.5 in
                let _, pct = pdf.(h) in
                Report.float_cell ~decimals:1 pct)
              results));
  Report.kv "Figure 6(b)" "lookup delay CDF";
  Report.table
    ~header:("percentile" :: List.map (fun n -> Printf.sprintf "%d nodes (s)" n) sizes)
    (List.map
       (fun p ->
         Report.float_cell ~decimals:0 p
         :: List.map
              (fun (delays, _, _) -> Report.float_cell ~decimals:3 (Dist.percentile delays p))
              results)
       [ 25.0; 50.0; 75.0; 90.0; 99.0 ]);
  List.iter2
    (fun n (delays, hops, failures) ->
      Report.kvf (Printf.sprintf "N=%d" n) "avg hops %.2f, avg delay %.3f s, failures %d"
        (Dist.mean hops) (Dist.mean delays) failures)
    sizes results;
  (* shape: mean hops stays below (log2 N)/2 + 1 and grows with N *)
  let mean_hops = List.map (fun (_, h, _) -> Dist.mean h) results in
  List.iter2
    (fun n mh ->
      Common.shape_check
        (Printf.sprintf "N=%d: mean hops %.2f <= log2(N)/2 + 1" n mh)
        (mh <= (log (Float.of_int n) /. log 2.0 /. 2.0) +. 1.0))
    sizes mean_hops;
  Common.shape_check "hops grow with ring size"
    (match mean_hops with a :: rest -> List.for_all (fun b -> b >= a -. 0.2) rest | [] -> false)

let run_planetlab () =
  Report.section "Figure 6(c) — Chord vs MIT Chord on PlanetLab (delays CDF)";
  let n = Common.pick ~quick:150 ~full:380 in
  let lookups = Common.pick ~quick:1500 ~full:5000 in
  let run_one ~name ~config =
    Common.with_platform ~seed:77 (Platform.Planetlab (n + 20)) (fun p ->
        let ctl = Platform.controller p in
        let nodes = ref [] in
        ignore
          (Controller.deploy ctl ~name
             ~main:(Apps.Chord_ft.app ~config ~register:(fun c -> nodes := c :: !nodes))
             (Descriptor.make ~bootstrap:(Descriptor.Head 1) n));
        Env.sleep ((Float.of_int n *. config.Apps.Chord_ft.join_delay_per_position) +. 300.0);
        let eng = Platform.engine p in
        let rng = Rng.split (Engine.rng eng) in
        let delays = Dist.create () and hops = Dist.create () in
        let failures = ref 0 in
        let live () = List.filter (fun c -> not (Apps.Chord_ft.is_stopped c)) !nodes in
        for _ = 1 to lookups do
          let origin = Rng.pick_list rng (live ()) in
          let key = Rng.int rng (1 lsl config.Apps.Chord_ft.m) in
          let t0 = Engine.now eng in
          match Apps.Chord_ft.lookup origin key with
          | Some (_, h) ->
              Dist.add delays (Engine.now eng -. t0);
              Dist.add hops (Float.of_int h)
          | None -> incr failures
        done;
        (delays, hops, !failures))
  in
  let splay_cfg = { Apps.Chord_ft.default_config with join_delay_per_position = 0.3 } in
  let mit_cfg = { Baselines.Mit_chord.app_config with join_delay_per_position = 0.3 } in
  let splay_d, splay_h, splay_f = run_one ~name:"splay-chord" ~config:splay_cfg in
  let mit_d, mit_h, mit_f = run_one ~name:"mit-chord" ~config:mit_cfg in
  Report.kvf "SPLAY Chord" "avg route %.2f hops, median delay %.3f s, failures %d"
    (Dist.mean splay_h) (Dist.percentile splay_d 50.0) splay_f;
  Report.kvf "MIT Chord" "avg route %.2f hops, median delay %.3f s, failures %d"
    (Dist.mean mit_h) (Dist.percentile mit_d 50.0) mit_f;
  Report.table
    ~header:[ "percentile"; "MIT Chord (s)"; "SPLAY Chord (s)" ]
    (List.map
       (fun p ->
         [
           Report.float_cell ~decimals:0 p;
           Report.float_cell ~decimals:3 (Dist.percentile mit_d p);
           Report.float_cell ~decimals:3 (Dist.percentile splay_d p);
         ])
       [ 10.0; 25.0; 50.0; 75.0; 90.0 ]);
  Common.shape_check "similar route lengths (paper: 4.1 for both)"
    (Float.abs (Dist.mean splay_h -. Dist.mean mit_h) < 1.5);
  Common.shape_check "MIT Chord faster thanks to latency-aware fingers"
    (Dist.percentile mit_d 50.0 < Dist.percentile splay_d 50.0)

let run () =
  run_modelnet ();
  run_planetlab ()
