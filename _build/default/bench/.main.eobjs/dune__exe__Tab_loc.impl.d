bench/tab_loc.ml: Common Filename List Report Splay String Sys
