bench/fig14.ml: Common Controller Descriptor Dist Engine Env Float List Platform Printf Report Rng Series Splay Splay_apps
