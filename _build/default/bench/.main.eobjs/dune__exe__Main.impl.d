bench/main.ml: Ablations Array Common Fig10 Fig11 Fig12 Fig13 Fig14 Fig3 Fig4 Fig6 Fig7 Fig8 Fig9 List Micro Printf String Sys Tab_loc
