bench/fig10.ml: Common Controller Dist Engine Env Float List Platform Printf Replayer Report Rng Script Series Splay Splay_apps Splay_runtime
