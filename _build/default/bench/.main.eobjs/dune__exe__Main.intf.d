bench/main.mli:
