bench/fig3.ml: Array Common Controller Dist Env Float Ivar List Platform Report Splay
