bench/fig6.ml: Array Common Controller Descriptor Dist Engine Env Float Ivar List Platform Printf Report Rng Splay Splay_apps Splay_baselines
