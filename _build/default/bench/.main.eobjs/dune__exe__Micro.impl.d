bench/micro.ml: Addr Analyze Bechamel Benchmark Codec Crypto Engine Env Hashtbl Heap Instance Int List Measure Misc Net Printf Report Rng Rpc Splay Staged String Test Testbed Time Toolkit
