bench/fig4.ml: Common Float List Printf Report Script Splay String
