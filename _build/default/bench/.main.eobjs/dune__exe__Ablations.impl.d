bench/ablations.ml: Addr Array Common Controller Descriptor Dist Engine Env Float List Net Platform Printf Report Rng Splay Splay_apps Splay_runtime
