bench/fig9.ml: Common Dist Engine Env Float List Platform Report Rng Splay Splay_apps Splay_runtime
