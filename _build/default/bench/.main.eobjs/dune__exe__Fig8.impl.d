bench/fig8.ml: Common Controller Daemon Env Float List Platform Report Splay Splay_apps Testbed
