bench/common.ml: Controller Daemon Descriptor Dist Engine Env Float Fun List Platform Printexc Printf Report Rng Splay Splay_apps Splay_baselines
