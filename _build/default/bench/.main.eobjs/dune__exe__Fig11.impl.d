bench/fig11.ml: Common Controller Engine Env Float List Platform Printf Replayer Report Rng Series Splay Splay_apps Splay_runtime Trace Transform
