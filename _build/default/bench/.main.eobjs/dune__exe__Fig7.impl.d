bench/fig7.ml: Common Dist Engine Env Float List Platform Printf Report Rng Splay Splay_apps Splay_baselines Splay_runtime
