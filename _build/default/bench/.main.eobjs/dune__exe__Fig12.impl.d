bench/fig12.ml: Common Controller Descriptor Engine Env List Option Platform Printf Report Splay
