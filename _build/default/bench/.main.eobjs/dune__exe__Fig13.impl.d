bench/fig13.ml: Common Controller Descriptor Dist Env Float List Platform Printf Report Splay Splay_apps Splay_baselines
