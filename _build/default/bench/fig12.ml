(* Figure 12: deployment time on PlanetLab as a function of the number of
   nodes requested and of the size of the superset of daemons probed
   (110%..200%). Larger supersets find responsive daemons faster; the
   default 125% is the paper's tradeoff. *)

open Splay

let noop (_ : Env.t) = ()

let run () =
  Report.section "Figure 12 — deployment time vs nodes requested and superset size";
  let daemons = Common.pick ~quick:250 ~full:450 in
  let requests = Common.pick ~quick:[ 50; 100; 150; 200 ] ~full:[ 50; 100; 150; 200; 250; 300; 350; 400 ] in
  let supersets = [ 1.1; 1.3; 1.5; 1.7; 2.0 ] in
  let grid =
    Common.with_platform ~seed:12 (Platform.Planetlab daemons) (fun p ->
        let ctl = Platform.controller p in
        let eng = Platform.engine p in
        List.map
          (fun superset ->
            List.map
              (fun n ->
                let t0 = Engine.now eng in
                let dep =
                  Controller.deploy ctl ~superset ~register_timeout:10.0 ~name:"noop"
                    ~main:noop (Descriptor.make n)
                in
                let dt = Engine.now eng -. t0 in
                Controller.undeploy dep;
                Env.sleep 30.0;
                (n, dt))
              requests)
          supersets)
  in
  Report.table
    ~header:("superset" :: List.map (fun n -> Printf.sprintf "%d nodes (s)" n) requests)
    (List.map2
       (fun superset row ->
         Printf.sprintf "%.0f%%" (100.0 *. superset)
         :: List.map (fun (_, dt) -> Report.float_cell ~decimals:2 dt) row)
       supersets grid);
  (* shapes: larger supersets deploy faster; more nodes take longer *)
  let at superset n =
    let row = List.nth grid (Option.get (List.find_index (fun s -> s = superset) supersets)) in
    List.assoc n row
  in
  let biggest = List.nth requests (List.length requests - 1) in
  Common.shape_check
    (Printf.sprintf "200%% superset beats 110%% at %d nodes (%.2f s < %.2f s)" biggest
       (at 2.0 biggest) (at 1.1 biggest))
    (at 2.0 biggest < at 1.1 biggest);
  Common.shape_check "deployment time grows with the request size"
    (at 1.3 biggest > at 1.3 (List.hd requests))
