(* Section 5.1's development-complexity table: lines of code of each
   protocol implementation. We count our own sources the same way the
   paper counts its Lua programs (non-blank, non-comment lines), and show
   the paper's numbers for comparison. The substrate relationships mirror
   the paper's figure: Scribe and the web cache build on Pastry,
   SplitStream on Pastry + Scribe. *)

open Splay

let paper_loc =
  [
    ("chord", "Chord", "58 base + 17 FT + 26 leafset = 100");
    ("chord_ft", "Chord (FT part)", "(counted with Chord)");
    ("pastry", "Pastry", "265");
    ("scribe", "Scribe", "79 (+ Pastry)");
    ("splitstream", "SplitStream", "58 (+ Pastry, Scribe)");
    ("webcache", "WebCache", "85 (+ Pastry)");
    ("bittorrent", "BitTorrent", "420");
    ("cyclon", "Cyclon", "93");
    ("epidemic", "Epidemic", "35");
    ("trees", "Trees", "47");
    ("vivaldi", "Vivaldi (extension)", "n/a");
    ("dht_store", "DHT store (extension)", "n/a");
  ]

let count_loc path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let rec go acc in_comment =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            Some acc
        | line ->
            let s = String.trim line in
            let starts p = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
            let ends p =
              String.length s >= String.length p
              && String.sub s (String.length s - String.length p) (String.length p) = p
            in
            if in_comment then go acc (not (ends "*)"))
            else if s = "" then go acc false
            else if starts "(*" then go acc (not (ends "*)"))
            else go (acc + 1) false
      in
      go 0 false

let run () =
  Report.section "Section 5.1 — development complexity (lines of code)";
  let dir = "lib/apps" in
  if not (Sys.file_exists dir) then
    Report.kv "note" "run from the repository root to count the sources"
  else begin
    let rows =
      List.filter_map
        (fun (file, name, paper) ->
          match count_loc (Filename.concat dir (file ^ ".ml")) with
          | Some n -> Some [ name; string_of_int n; paper ]
          | None -> None)
        paper_loc
    in
    Report.table ~header:[ "protocol"; "this repo (OCaml LoC)"; "paper (Lua LoC)" ] rows;
    Report.kv "note"
      "OCaml is more verbose than Lua (interfaces, pattern matches); the paper's \
       point — every protocol in a few hundred lines — carries over";
    let total =
      List.fold_left (fun acc r -> acc + int_of_string (List.nth r 1)) 0 rows
    in
    Report.kvf "total" "%d lines for all %d protocols" total (List.length rows);
    Common.shape_check "every protocol fits in a few hundred lines"
      (List.for_all (fun r -> int_of_string (List.nth r 1) < 700) rows)
  end
