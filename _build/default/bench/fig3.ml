(* Figure 3: RTT between the controller and PlanetLab hosts over
   pre-established connections, 20 KB payload. The paper reports that only
   17.10% of hosts answer within 250 ms and over 45% need more than one
   second — the justification for probing a superset before deploying. *)

open Splay

let run () =
  Report.section "Figure 3 — controller-to-PlanetLab RTT (20 KB payload)";
  let n = Common.pick ~quick:400 ~full:450 in
  let rtts =
    Common.with_platform (Platform.Planetlab n) (fun p ->
        let ctl = Platform.controller p in
        let d = Dist.create () in
        let remaining = ref (List.length (Platform.daemons p)) in
        let done_iv = Ivar.create () in
        List.iter
          (fun daemon ->
            ignore
              (Env.thread (Controller.env ctl) (fun () ->
                   (match Controller.probe ctl ~payload:(20 * 1024) daemon with
                   | Some rtt -> Dist.add d rtt
                   | None -> Dist.add d 10.0 (* timed out: cap at the probe deadline *));
                   decr remaining;
                   if !remaining = 0 then Ivar.try_fill done_iv () |> ignore)))
          (Platform.daemons p);
        Ivar.read done_iv;
        d)
  in
  let frac_le x = List.assoc x (Dist.cdf rtts ~points:[ x ]) in
  let under_250ms = 100.0 *. frac_le 0.25 in
  let over_1s = 100.0 *. (1.0 -. frac_le 1.0) in
  Report.kvf "hosts probed" "%d" (Dist.count rtts);
  Report.kvf "median RTT" "%.2f s" (Dist.percentile rtts 50.0);
  Report.kvf "answered within 250 ms" "%.1f%% (paper: 17.1%%)" under_250ms;
  Report.kvf "needed more than 1 s" "%.1f%% (paper: >45%%)" over_1s;
  Report.table
    ~header:[ "delay (s)"; "CDF (%)"; "PDF (% per 0.5 s bin)" ]
    (let pdf = Dist.pdf rtts ~bins:20 ~lo:0.0 ~hi:10.0 in
     List.init 20 (fun i ->
         let x = 0.5 *. Float.of_int (i + 1) in
         let _, frac = List.nth (Dist.cdf rtts ~points:[ x ]) 0 in
         let _, p = pdf.(i) in
         [
           Report.float_cell ~decimals:1 x;
           Report.float_cell ~decimals:1 (100.0 *. frac);
           Report.float_cell ~decimals:1 p;
         ]));
  Common.shape_check "minority of hosts answer within 250 ms" (under_250ms < 35.0);
  Common.shape_check "heavy tail beyond 1 s" (over_1s > 30.0)
