(* Figure 8: memory consumption and load on a single host running many
   Pastry instances. The paper measures < 1.5 MB per instance (slightly
   growing as routing tables fill), low load, and the start of swapping at
   1,263 instances on the 2 GB machine. *)

open Splay
module Apps = Splay_apps

let run () =
  Report.section "Figure 8 — memory and load on one host packed with Pastry instances";
  let max_instances = Common.pick ~quick:800 ~full:1400 in
  let step = 200 in
  let rows, swap_at =
    Common.with_platform ~seed:8 (Platform.Cluster 1) (fun p ->
        let ctl = Platform.controller p in
        let daemon = List.hd (Platform.daemons p) in
        let host = Testbed.host (Platform.testbed p) (Daemon.host daemon) in
        let config =
          {
            Apps.Pastry.default_config with
            join_delay_per_position = 0.0;
            stabilize_interval = 60.0 (* one random request per minute, as in the paper *);
          }
        in
        let dep, _nodes = Common.deploy_pastry ~config ctl ~n:step in
        let swap_at = ref None in
        let rows = ref [] in
        let record () =
          let n = Daemon.instance_count daemon in
          let mem_per_inst =
            Float.of_int (Daemon.memory_used daemon) /. Float.of_int (max 1 n) /. 1048576.0
          in
          let swapping = host.Testbed.service_mult > 2.0 in
          if swapping && !swap_at = None then swap_at := Some n;
          rows :=
            [
              string_of_int n;
              Report.float_cell ~decimals:2 mem_per_inst;
              Report.float_cell ~decimals:3 (Daemon.load daemon);
              (if swapping then "swapping" else "");
            ]
            :: !rows
        in
        Env.sleep 30.0;
        record ();
        let continue_growing = ref true in
        while Daemon.instance_count daemon < max_instances && !continue_growing do
          let added = ref 0 in
          for _ = 1 to step do
            match Controller.add_node dep with Some _ -> incr added | None -> ()
          done;
          if !added = 0 then continue_growing := false
          else begin
            Env.sleep 30.0;
            record ()
          end
        done;
        (List.rev !rows, !swap_at))
  in
  Report.table ~header:[ "instances"; "MB / instance"; "load"; "" ] rows;
  (match swap_at with
  | Some n -> Report.kvf "swap starts at" "%d instances (paper: 1,263)" n
  | None -> Report.kv "swap starts at" "not reached at this scale (paper: 1,263)");
  let mem_cells = List.map (fun r -> float_of_string (List.nth r 1)) rows in
  Common.shape_check "per-instance footprint stays under ~1.6 MB"
    (List.for_all (fun m -> m < 1.7) mem_cells);
  Common.shape_check "load remains low before swap"
    (match rows with r :: _ -> float_of_string (List.nth r 2) < 1.0 | [] -> false)
