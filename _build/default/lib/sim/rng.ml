type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int (seed lxor 0x1F2E3D4C)) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  (* Rejection-free modulo is fine for simulation purposes given 64 bits of
     entropy against small ranges. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform mantissa bits. *)
  let u = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float u /. 9007199254740992.0 *. x

let unit_open t =
  (* uniform in (0,1), avoiding 0 for log-based transforms *)
  let u = float t 1.0 in
  if u <= 0.0 then 1e-18 else u

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let exponential t ~mean = -.mean *. log (unit_open t)

let normal t ~mu ~sigma =
  let u1 = unit_open t and u2 = unit_open t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~scale ~shape = scale /. (unit_open t ** (1.0 /. shape))

let weibull t ~scale ~shape = scale *. ((-.log (unit_open t)) ** (1.0 /. shape))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  if n <= k then xs
  else begin
    shuffle t a;
    Array.to_list (Array.sub a 0 k)
  end

module Zipf = struct
  type rng = t

  type t = { cdf : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for r = 1 to n do
      acc := !acc +. (1.0 /. (Float.of_int r ** s));
      cdf.(r - 1) <- !acc
    done;
    let total = !acc in
    for i = 0 to n - 1 do
      cdf.(i) <- cdf.(i) /. total
    done;
    { cdf }

  let draw z rng =
    let u = float rng 1.0 in
    (* binary search for first index with cdf >= u *)
    let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1
end
