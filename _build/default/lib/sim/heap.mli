(** Resizable binary min-heap, the event queue of the simulation engine. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All elements in unspecified order (for inspection in tests). *)
