(** Unbounded FIFO mailbox between simulated processes.

    The building block for message queues inside a host: network delivery
    pushes into a channel, the application's receive loop blocks on it. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Never blocks (unbounded). Wakes one waiting receiver if any. *)

val recv : 'a t -> 'a
(** Block the calling process until a message is available. Messages are
    delivered in FIFO order; competing receivers are served in arrival
    order. *)

val recv_timeout : 'a t -> float -> 'a option
(** [Some msg] if one arrives within the duration, else [None]. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val length : 'a t -> int
(** Number of queued (undelivered) messages. *)

val clear : 'a t -> unit
(** Drop all queued messages (waiting receivers keep waiting). *)
