lib/sim/channel.mli:
