lib/sim/rng.mli:
