lib/sim/engine.ml: Effect Float Fun Hashtbl Heap Int List Printf Rng
