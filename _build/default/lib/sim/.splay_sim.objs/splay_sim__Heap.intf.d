lib/sim/heap.mli:
