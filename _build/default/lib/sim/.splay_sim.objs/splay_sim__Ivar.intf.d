lib/sim/ivar.mli:
