type 'a state = Empty of ('a -> unit) list | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
      t.state <- Full v;
      List.iter (fun w -> w v) (List.rev waiters);
      true

let fill t v = if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"

let is_filled t = match t.state with Full _ -> true | Empty _ -> false

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
      Engine.suspend_ (fun resolve ->
          match t.state with
          | Full v -> resolve (Ok v)
          | Empty ws -> t.state <- Empty ((fun v -> resolve (Ok v)) :: ws))

let read_timeout t d =
  match t.state with
  | Full v -> Some v
  | Empty _ ->
      let eng = Engine.engine () in
      Engine.suspend (fun resolve ->
          (match t.state with
          | Full v -> resolve (Ok (Some v))
          | Empty ws -> t.state <- Empty ((fun v -> resolve (Ok (Some v))) :: ws));
          let timer = Engine.schedule eng ~delay:d (fun () -> resolve (Ok None)) in
          fun () -> Engine.cancel eng timer)
