type 'a receiver = { mutable active : bool; deliver : 'a -> unit }

type 'a t = { msgs : 'a Queue.t; receivers : 'a receiver Queue.t }

let create () = { msgs = Queue.create (); receivers = Queue.create () }

let rec wake_receiver t v =
  match Queue.take_opt t.receivers with
  | None -> Queue.add v t.msgs
  | Some r -> if r.active then r.deliver v else wake_receiver t v

let send t v = wake_receiver t v

let try_recv t = Queue.take_opt t.msgs

let recv t =
  match Queue.take_opt t.msgs with
  | Some v -> v
  | None ->
      Engine.suspend (fun resolve ->
          let r = { active = true; deliver = (fun v -> resolve (Ok v)) } in
          Queue.add r t.receivers;
          (* on kill, drop out of the receiver queue so no message is
             delivered into a dead process *)
          fun () -> r.active <- false)

let recv_timeout t d =
  match Queue.take_opt t.msgs with
  | Some v -> Some v
  | None ->
      let eng = Engine.engine () in
      Engine.suspend (fun resolve ->
          let r = { active = true; deliver = (fun v -> resolve (Ok (Some v))) } in
          Queue.add r t.receivers;
          let timer =
            Engine.schedule eng ~delay:d (fun () ->
                r.active <- false;
                resolve (Ok None))
          in
          fun () ->
            r.active <- false;
            Engine.cancel eng timer)

let length t = Queue.length t.msgs

let clear t = Queue.clear t.msgs
