(** Write-once synchronization cell ("future") for simulated processes.

    An RPC reply slot, a join signal, a one-shot notification: anything where
    one process blocks until another produces a value. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Resolve the cell, waking all readers. Raises [Invalid_argument] if
    already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when already full. *)

val is_filled : 'a t -> bool

val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** Block the calling process until the cell is filled. Returns immediately
    if already filled. *)

val read_timeout : 'a t -> float -> 'a option
(** [read_timeout t d] is [Some v] if filled within [d] simulated seconds,
    [None] otherwise. *)
