(** Constant-memory online summary (Welford's algorithm).

    For long-running experiments (the multi-hour web-cache run) where
    keeping every sample in a {!Dist} would be wasteful and only moments
    are needed. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Population variance; 0 with fewer than 2 samples. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
(** Raise [Invalid_argument] when empty. *)

val merge : t -> t -> t
(** Combine two summaries as if their streams had been interleaved
    (Chan's parallel variance formula). *)
