type t = { width : float; table : (int, Dist.t) Hashtbl.t }

let create ~bin_width =
  if bin_width <= 0.0 then invalid_arg "Series.create: bin_width";
  { width = bin_width; table = Hashtbl.create 64 }

let key t time = int_of_float (Float.floor (time /. t.width))

let add t ~time x =
  let k = key t time in
  let d =
    match Hashtbl.find_opt t.table k with
    | Some d -> d
    | None ->
        let d = Dist.create () in
        Hashtbl.replace t.table k d;
        d
  in
  Dist.add d x

let bin_width t = t.width

let bins t =
  Hashtbl.fold (fun k d acc -> (Float.of_int k *. t.width, d) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

let bin_at t time = Hashtbl.find_opt t.table (key t time)

let percentile_series t p = List.map (fun (edge, d) -> (edge, Dist.percentile d p)) (bins t)

let mean_series t = List.map (fun (edge, d) -> (edge, Dist.mean d)) (bins t)

let count_series t = List.map (fun (edge, d) -> (edge, Dist.count d)) (bins t)

let span t =
  match bins t with
  | [] -> None
  | (first, _) :: _ as all ->
      let last, _ = List.nth all (List.length all - 1) in
      Some (first, last)

module Counter = struct
  type nonrec t = { width : float; table : (int, int ref) Hashtbl.t }

  let create ~bin_width =
    if bin_width <= 0.0 then invalid_arg "Series.Counter.create: bin_width";
    { width = bin_width; table = Hashtbl.create 64 }

  let add t ~time n =
    let k = int_of_float (Float.floor (time /. t.width)) in
    match Hashtbl.find_opt t.table k with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.table k (ref n)

  let incr t ~time = add t ~time 1

  let get t ~time =
    let k = int_of_float (Float.floor (time /. t.width)) in
    match Hashtbl.find_opt t.table k with Some r -> !r | None -> 0

  let series t =
    Hashtbl.fold (fun k r acc -> (Float.of_int k *. t.width, !r) :: acc) t.table []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
end
