type t = {
  mutable n : int;
  mutable mean_ : float;
  mutable m2 : float; (* sum of squared deviations *)
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mean_ = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean_ in
  t.mean_ <- t.mean_ +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean_
let variance t = if t.n < 2 then 0.0 else t.m2 /. Float.of_int t.n
let stddev t = sqrt (variance t)

let min_value t = if t.n = 0 then invalid_arg "Summary.min_value: empty" else t.lo
let max_value t = if t.n = 0 then invalid_arg "Summary.max_value: empty" else t.hi

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean_ -. a.mean_ in
    let mean_ = a.mean_ +. (delta *. Float.of_int b.n /. Float.of_int n) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. Float.of_int a.n *. Float.of_int b.n /. Float.of_int n)
    in
    { n; mean_; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
  end
