(** Sample collector with percentile / CDF / histogram queries.

    Each figure in the paper is a distribution (of delays, hops, completion
    times…); experiments push raw samples into a [t] and the bench harness
    queries the shapes to print. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_list : t -> float list -> unit

val count : t -> int
val is_empty : t -> bool

val mean : t -> float
(** 0 on an empty collector. *)

val min_value : t -> float
val max_value : t -> float
(** Raise [Invalid_argument] on an empty collector. *)

val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; linear interpolation between
    order statistics. Raises [Invalid_argument] if empty. *)

val percentiles : t -> float list -> float list

val cdf : t -> points:float list -> (float * float) list
(** [(x, fraction of samples <= x)] for each requested point, fractions in
    [\[0,1\]]. *)

val cdf_curve : t -> ?steps:int -> unit -> (float * float) list
(** Evenly spaced CDF curve over the sample range, suitable for printing a
    figure series. *)

val histogram : t -> bins:int -> lo:float -> hi:float -> (float * int) array
(** Fixed-width bins over [\[lo, hi\]]; each entry is (bin left edge, count).
    Samples outside the range are clamped into the edge bins. *)

val pdf : t -> bins:int -> lo:float -> hi:float -> (float * float) array
(** {!histogram} normalized to fractions of the total count (in percent of
    samples, as the paper's PDF plots are). *)

val values : t -> float array
(** Copy of all samples, unsorted. *)

val merge : t -> t -> t
(** New collector holding the samples of both. *)
