type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = [||]; size = 0; sorted = true }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let nd = Array.make (if cap = 0 then 64 else cap * 2) 0.0 in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let add_list t xs = List.iter (add t) xs

let count t = t.size
let is_empty t = t.size = 0

let ensure_sorted t =
  if not t.sorted then begin
    let a = Array.sub t.data 0 t.size in
    Array.sort Float.compare a;
    Array.blit a 0 t.data 0 t.size;
    t.sorted <- true
  end

let mean t =
  if t.size = 0 then 0.0
  else begin
    let s = ref 0.0 in
    for i = 0 to t.size - 1 do
      s := !s +. t.data.(i)
    done;
    !s /. Float.of_int t.size
  end

let min_value t =
  if t.size = 0 then invalid_arg "Dist.min_value: empty";
  ensure_sorted t;
  t.data.(0)

let max_value t =
  if t.size = 0 then invalid_arg "Dist.max_value: empty";
  ensure_sorted t;
  t.data.(t.size - 1)

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let s = ref 0.0 in
    for i = 0 to t.size - 1 do
      let d = t.data.(i) -. m in
      s := !s +. (d *. d)
    done;
    sqrt (!s /. Float.of_int t.size)
  end

let percentile t p =
  if t.size = 0 then invalid_arg "Dist.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Dist.percentile: p out of range";
  ensure_sorted t;
  let rank = p /. 100.0 *. Float.of_int (t.size - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then t.data.(lo)
  else begin
    let frac = rank -. Float.of_int lo in
    (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
  end

let percentiles t ps = List.map (percentile t) ps

let fraction_le t x =
  ensure_sorted t;
  (* binary search: number of samples <= x *)
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.data.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  Float.of_int !lo /. Float.of_int (max 1 t.size)

let cdf t ~points = List.map (fun x -> (x, fraction_le t x)) points

let cdf_curve t ?(steps = 50) () =
  if t.size = 0 then []
  else begin
    let lo = min_value t and hi = max_value t in
    let span = hi -. lo in
    if span <= 0.0 then [ (lo, 1.0) ]
    else
      List.init (steps + 1) (fun i ->
          let x = lo +. (span *. Float.of_int i /. Float.of_int steps) in
          (x, fraction_le t x))
  end

let histogram t ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Dist.histogram: bins";
  if hi <= lo then invalid_arg "Dist.histogram: empty range";
  let width = (hi -. lo) /. Float.of_int bins in
  let counts = Array.make bins 0 in
  for i = 0 to t.size - 1 do
    let b = int_of_float ((t.data.(i) -. lo) /. width) in
    let b = if b < 0 then 0 else if b >= bins then bins - 1 else b in
    counts.(b) <- counts.(b) + 1
  done;
  Array.mapi (fun i c -> (lo +. (Float.of_int i *. width), c)) counts

let pdf t ~bins ~lo ~hi =
  let h = histogram t ~bins ~lo ~hi in
  let total = Float.of_int (max 1 t.size) in
  Array.map (fun (x, c) -> (x, 100.0 *. Float.of_int c /. total)) h

let values t = Array.sub t.data 0 t.size

let merge a b =
  let t = create () in
  Array.iter (add t) (values a);
  Array.iter (add t) (values b);
  t
