lib/stats/report.ml: Array Float Format List Printf String
