lib/stats/summary.mli:
