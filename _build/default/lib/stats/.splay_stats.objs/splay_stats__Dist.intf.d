lib/stats/dist.mli:
