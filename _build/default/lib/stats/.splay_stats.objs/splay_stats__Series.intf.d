lib/stats/series.mli: Dist
