lib/stats/report.mli: Format
