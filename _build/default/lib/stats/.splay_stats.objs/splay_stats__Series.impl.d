lib/stats/series.ml: Dist Float Hashtbl List
