(** Time-binned sample series for "metric over time" figures.

    Figures 10, 11 and 14 of the paper plot per-minute (or per-hour)
    distributions of a metric as the experiment progresses; a [t] buckets
    timestamped samples into fixed-width bins and exposes per-bin
    statistics. *)

type t

val create : bin_width:float -> t
(** Bins are [\[k*w, (k+1)*w)]. *)

val add : t -> time:float -> float -> unit

val bin_width : t -> float

val bins : t -> (float * Dist.t) list
(** Non-empty bins in increasing time order; the float is the bin's left
    edge. *)

val bin_at : t -> float -> Dist.t option
(** The bin containing the given time, if any sample landed there. *)

val percentile_series : t -> float -> (float * float) list
(** [(bin start, percentile-p of bin)] for each non-empty bin. *)

val mean_series : t -> (float * float) list

val count_series : t -> (float * int) list

val span : t -> (float * float) option
(** Earliest and latest non-empty bin edges. *)

(** Plain per-bin counters (e.g. join/leave counts per minute in the churn
    figures). *)
module Counter : sig
  type t

  val create : bin_width:float -> t
  val incr : t -> time:float -> unit
  val add : t -> time:float -> int -> unit
  val get : t -> time:float -> int
  val series : t -> (float * int) list
end
