lib/ctl/controller.mli: Addr Daemon Descriptor Env Net Testbed
