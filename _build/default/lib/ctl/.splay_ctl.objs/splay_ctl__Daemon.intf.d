lib/ctl/daemon.mli: Addr Env Net Splay_runtime
