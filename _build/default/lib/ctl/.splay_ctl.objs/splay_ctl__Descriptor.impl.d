lib/ctl/descriptor.ml: Buffer List Printf Splay_runtime String
