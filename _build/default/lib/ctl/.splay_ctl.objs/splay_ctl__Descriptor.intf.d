lib/ctl/descriptor.mli: Splay_runtime
