lib/ctl/controller.ml: Addr Array Daemon Descriptor Float Hashtbl List Misc Net Option Splay_runtime Splay_sim String Testbed Wire
