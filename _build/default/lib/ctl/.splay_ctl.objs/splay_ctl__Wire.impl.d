lib/ctl/wire.ml: Addr List Splay_runtime String
