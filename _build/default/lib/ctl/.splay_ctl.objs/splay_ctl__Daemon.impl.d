lib/ctl/daemon.ml: Addr Float List Net Printf Splay_runtime Splay_sim Testbed Wire
