(** Job descriptors.

    A SPLAY job is submitted together with a resource-reservation header
    embedded in a comment block:

    {v
    --[[ BEGIN SPLAY RESOURCES RESERVATION
    nb_splayd 1000
    nodes head 1
    max_mem 2097152
    END SPLAY RESOURCES RESERVATION ]]
    v}

    [nb_splayd] is the number of instances to deploy; [nodes head k] (or
    [nodes random k]) selects what bootstrap information each instance
    receives in [job.nodes]; the remaining keys tighten sandbox limits. *)

type bootstrap =
  | Head of int (** the first [k] nodes of the deployment sequence *)
  | Random_subset of int (** [k] random participating nodes *)
  | All (** every participating node *)

type t = {
  nb_splayd : int;
  bootstrap : bootstrap;
  limits : Splay_runtime.Sandbox.limits; (** controller-side restrictions *)
  loss : float;
      (** proportion of packets each instance drops on send, "to simulate
          lossy links and study their impact" (§3.4); default 0 *)
}

val default : t
(** One instance, [Head 1], no extra restrictions. *)

val make : ?bootstrap:bootstrap -> ?limits:Splay_runtime.Sandbox.limits -> ?loss:float -> int -> t

exception Syntax_error of string

val parse : string -> t
(** Parse a source file containing a reservation header. Unknown keys raise
    {!Syntax_error}; a missing header yields {!default}. Recognized keys:
    [nb_splayd <n>], [nodes head <k>], [nodes random <k>], [nodes all],
    [max_mem <bytes>], [max_sockets <n>], [max_fs <bytes>],
    [max_files <n>], [max_send <bytes>], [loss <fraction>]. *)

val to_string : t -> string
(** Render back into header form (canonical order). *)
