(* Wire encoding of control-plane values carried in RPC arguments. *)

module Codec = Splay_runtime.Codec

let addr_to_value (a : Addr.t) = Codec.String (Addr.to_string a)

let addr_of_value v =
  match String.split_on_char ':' (Codec.to_string v) with
  | [ h; p ] -> (
      match (int_of_string_opt h, int_of_string_opt p) with
      | Some h, Some p -> Addr.make h p
      | _ -> raise (Codec.Parse_error "bad address"))
  | _ -> raise (Codec.Parse_error "bad address")

let addrs_to_value addrs = Codec.List (List.map addr_to_value addrs)

let addrs_of_value v = List.map addr_of_value (Codec.to_list v)
