module Sandbox = Splay_runtime.Sandbox

type bootstrap = Head of int | Random_subset of int | All

type t = { nb_splayd : int; bootstrap : bootstrap; limits : Sandbox.limits; loss : float }

let default = { nb_splayd = 1; bootstrap = Head 1; limits = Sandbox.unlimited; loss = 0.0 }

let make ?(bootstrap = Head 1) ?(limits = Sandbox.unlimited) ?(loss = 0.0) nb_splayd =
  if nb_splayd < 1 then invalid_arg "Descriptor.make";
  if loss < 0.0 || loss > 1.0 then invalid_arg "Descriptor.make: loss";
  { nb_splayd; bootstrap; limits; loss }

exception Syntax_error of string

let begin_marker = "BEGIN SPLAY RESOURCES RESERVATION"
let end_marker = "END SPLAY RESOURCES RESERVATION"

let find_substring hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = if i + m > n then None else if String.sub hay i m = needle then Some i else go (i + 1) in
  go 0

let parse_int key v =
  match int_of_string_opt (String.trim v) with
  | Some n -> n
  | None -> raise (Syntax_error (Printf.sprintf "%s: expected integer, got %S" key v))

let parse_line t line =
  let line = String.trim line in
  if line = "" then t
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "nb_splayd"; n ] -> { t with nb_splayd = parse_int "nb_splayd" n }
    | [ "nodes"; "head"; k ] -> { t with bootstrap = Head (parse_int "nodes head" k) }
    | [ "nodes"; "random"; k ] -> { t with bootstrap = Random_subset (parse_int "nodes random" k) }
    | [ "nodes"; "all" ] -> { t with bootstrap = All }
    | [ "max_mem"; n ] ->
        { t with limits = { t.limits with Sandbox.max_memory = parse_int "max_mem" n } }
    | [ "max_sockets"; n ] ->
        { t with limits = { t.limits with Sandbox.max_sockets = parse_int "max_sockets" n } }
    | [ "max_fs"; n ] ->
        { t with limits = { t.limits with Sandbox.max_fs_bytes = parse_int "max_fs" n } }
    | [ "max_files"; n ] ->
        { t with limits = { t.limits with Sandbox.max_open_files = parse_int "max_files" n } }
    | [ "loss"; f ] -> (
        match float_of_string_opt (String.trim f) with
        | Some p when p >= 0.0 && p <= 1.0 -> { t with loss = p }
        | _ -> raise (Syntax_error (Printf.sprintf "loss: expected fraction, got %S" f)))
    | [ "max_send"; n ] ->
        { t with limits = { t.limits with Sandbox.max_send_bytes = parse_int "max_send" n } }
    | key :: _ -> raise (Syntax_error (Printf.sprintf "unknown reservation key %S" key))
    | [] -> t

let parse src =
  match find_substring src begin_marker with
  | None -> default
  | Some b -> (
      let after = b + String.length begin_marker in
      match find_substring (String.sub src after (String.length src - after)) end_marker with
      | None -> raise (Syntax_error "missing END SPLAY RESOURCES RESERVATION")
      | Some e ->
          let body = String.sub src after e in
          let lines = String.split_on_char '\n' body in
          let t = List.fold_left parse_line default lines in
          if t.nb_splayd < 1 then raise (Syntax_error "nb_splayd must be >= 1");
          t)

let to_string t =
  let b = Buffer.create 128 in
  Buffer.add_string b ("--[[ " ^ begin_marker ^ "\n");
  Buffer.add_string b (Printf.sprintf "nb_splayd %d\n" t.nb_splayd);
  (match t.bootstrap with
  | Head k -> Buffer.add_string b (Printf.sprintf "nodes head %d\n" k)
  | Random_subset k -> Buffer.add_string b (Printf.sprintf "nodes random %d\n" k)
  | All -> Buffer.add_string b "nodes all\n");
  let lim = t.limits and u = Sandbox.unlimited in
  if lim.Sandbox.max_memory <> u.Sandbox.max_memory then
    Buffer.add_string b (Printf.sprintf "max_mem %d\n" lim.Sandbox.max_memory);
  if lim.Sandbox.max_sockets <> u.Sandbox.max_sockets then
    Buffer.add_string b (Printf.sprintf "max_sockets %d\n" lim.Sandbox.max_sockets);
  if lim.Sandbox.max_fs_bytes <> u.Sandbox.max_fs_bytes then
    Buffer.add_string b (Printf.sprintf "max_fs %d\n" lim.Sandbox.max_fs_bytes);
  if lim.Sandbox.max_open_files <> u.Sandbox.max_open_files then
    Buffer.add_string b (Printf.sprintf "max_files %d\n" lim.Sandbox.max_open_files);
  if lim.Sandbox.max_send_bytes <> u.Sandbox.max_send_bytes then
    Buffer.add_string b (Printf.sprintf "max_send %d\n" lim.Sandbox.max_send_bytes);
  if t.loss > 0.0 then Buffer.add_string b (Printf.sprintf "loss %g\n" t.loss);
  Buffer.add_string b (end_marker ^ " ]]");
  Buffer.contents b
