type router = int

type t = {
  n : int;
  adj : (router * float) list array; (* one-way link delays, seconds *)
  stubs : router array;
  intra_stub : float;
  dijkstra_cache : (router, float array) Hashtbl.t;
}

let add_edge adj a b d =
  adj.(a) <- (b, d) :: adj.(a);
  adj.(b) <- (a, d) :: adj.(b)

let transit_stub ?(transits = 10) ?(stubs_per_transit = 49) ?(transit_transit_rtt = 0.100)
    ?(stub_transit_rtt = 0.030) ?(intra_stub_rtt = 0.010) rng =
  if transits < 1 || stubs_per_transit < 1 then invalid_arg "Topology.transit_stub";
  let n = transits * (1 + stubs_per_transit) in
  let adj = Array.make n [] in
  (* transit routers are 0..transits-1, connected in a ring plus a few
     random chords for path diversity *)
  let tt = transit_transit_rtt /. 2.0 in
  for i = 0 to transits - 1 do
    add_edge adj i ((i + 1) mod transits) tt
  done;
  if transits > 3 then
    for _ = 1 to transits / 2 do
      let a = Splay_sim.Rng.int rng transits and b = Splay_sim.Rng.int rng transits in
      if a <> b && not (List.mem_assoc b adj.(a)) then add_edge adj a b tt
    done;
  (* stub routers hang off their transit *)
  let st = stub_transit_rtt /. 2.0 in
  let stubs = Array.make (transits * stubs_per_transit) 0 in
  let idx = ref 0 in
  for tr = 0 to transits - 1 do
    for s = 0 to stubs_per_transit - 1 do
      let r = transits + (tr * stubs_per_transit) + s in
      add_edge adj tr r st;
      stubs.(!idx) <- r;
      incr idx
    done
  done;
  { n; adj; stubs; intra_stub = intra_stub_rtt /. 2.0; dijkstra_cache = Hashtbl.create 64 }

let router_count t = t.n

let stub_routers t = Array.copy t.stubs

let random_stub t rng = t.stubs.(Splay_sim.Rng.int rng (Array.length t.stubs))

let dijkstra t src =
  let dist = Array.make t.n infinity in
  dist.(src) <- 0.0;
  let heap = Splay_sim.Heap.create ~cmp:(fun (a, _) (b, _) -> Float.compare a b) in
  Splay_sim.Heap.push heap (0.0, src);
  let rec loop () =
    match Splay_sim.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun (v, w) ->
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Splay_sim.Heap.push heap (nd, v)
              end)
            t.adj.(u);
        loop ()
  in
  loop ();
  dist

let delay t a b =
  if a = b then t.intra_stub
  else begin
    let row =
      match Hashtbl.find_opt t.dijkstra_cache a with
      | Some row -> row
      | None ->
          let row = dijkstra t a in
          Hashtbl.replace t.dijkstra_cache a row;
          row
    in
    row.(b)
  end

let intra_stub_delay t = t.intra_stub
