lib/net/addr.ml: Format Int Printf
