lib/net/testbed.mli: Addr Splay_sim Topology
