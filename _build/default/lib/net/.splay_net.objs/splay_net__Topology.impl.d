lib/net/topology.ml: Array Float Hashtbl List Splay_sim
