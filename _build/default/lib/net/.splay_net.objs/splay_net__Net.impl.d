lib/net/net.ml: Addr Float Hashtbl Printf Splay_sim Testbed
