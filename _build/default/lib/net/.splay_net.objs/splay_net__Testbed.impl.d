lib/net/testbed.ml: Addr Array Splay_sim Topology
