lib/net/net.mli: Addr Splay_sim Testbed
