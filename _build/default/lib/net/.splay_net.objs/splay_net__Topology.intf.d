lib/net/topology.mli: Splay_sim
