(** Network endpoints.

    A host is a physical machine of a testbed; an address is one bound port
    on a host — one SPLAY application instance endpoint. *)

type host_id = int

type t = { host : host_id; port : int }

val make : host_id -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
