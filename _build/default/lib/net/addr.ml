type host_id = int

type t = { host : host_id; port : int }

let make host port = { host; port }

let compare a b =
  let c = Int.compare a.host b.host in
  if c <> 0 then c else Int.compare a.port b.port

let equal a b = compare a b = 0

let hash a = (a.host * 65_537) + a.port

let to_string a = Printf.sprintf "%d:%d" a.host a.port

let pp fmt a = Format.pp_print_string fmt (to_string a)
