module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Sb_fs = Splay_runtime.Sb_fs
module Misc = Splay_runtime.Misc
module Rng = Splay_sim.Rng

type config = {
  piece_size : int;
  swarm_sample : int;
  max_peers : int;
  regular_slots : int;
  choke_interval : float;
  optimistic_interval : float;
  tracker_interval : float;
  workers : int;
  rpc_timeout : float;
}

let default_config =
  {
    piece_size = 64 * 1024;
    swarm_sample = 20;
    max_peers = 30;
    regular_slots = 3;
    choke_interval = 10.0;
    optimistic_interval = 30.0;
    tracker_interval = 60.0;
    workers = 4;
    rpc_timeout = 60.0;
  }

type peer = {
  pa : Addr.t;
  mutable their_have : bool array;
  mutable we_choke : bool;
  mutable optimistic : bool;
  mutable bytes_from : int; (* downloaded from them since last choke round *)
  mutable last_request_at : float; (* they asked us recently => interested *)
}

type node = {
  cfg : config;
  env : Env.t;
  npieces : int;
  have : bool array;
  mutable n_have : int;
  fs : Sb_fs.t;
  peers : (Addr.t, peer) Hashtbl.t;
  mutable inflight : int list; (* pieces currently being requested *)
  mutable completed_at : float option;
  seed : bool;
  tracker : Addr.t option; (* None when we are the tracker *)
  mutable swarm : Addr.t list; (* tracker-side peer registry *)
  mutable up_bytes : int;
  mutable down_bytes : int;
  b_rng : Rng.t;
}

let total_pieces t = t.npieces
let pieces_have t = t.n_have
let complete t = t.n_have = t.npieces
let completion_time t = t.completed_at
let is_initial_seed t = t.seed
let uploaded_bytes t = t.up_bytes
let downloaded_bytes t = t.down_bytes
let known_peers t = Hashtbl.length t.peers
let is_stopped t = Env.is_stopped t.env

let unchoked_peers t =
  Hashtbl.fold (fun a p acc -> if not p.we_choke then a :: acc else acc) t.peers []

let piece_path i = Printf.sprintf "chunks/%06d" i

let addr_of_value v =
  match String.split_on_char ':' (Codec.to_string v) with
  | [ h; p ] -> Addr.make (int_of_string h) (int_of_string p)
  | _ -> failwith "bad addr"

let file_on_disk t =
  let rec check i =
    i >= t.npieces
    || (Option.value ~default:0 (Sb_fs.file_size t.fs (piece_path i)) > 0 && check (i + 1))
  in
  check 0

let bitfield_to_string have =
  String.init (Array.length have) (fun i -> if have.(i) then '1' else '0')

let bitfield_of_string s = Array.init (String.length s) (fun i -> s.[i] = '1')

let get_peer t a =
  match Hashtbl.find_opt t.peers a with
  | Some p -> Some p
  | None ->
      if Hashtbl.length t.peers >= t.cfg.max_peers || Addr.equal a t.env.Env.me then None
      else begin
        let p =
          {
            pa = a;
            their_have = Array.make t.npieces false;
            we_choke = true;
            optimistic = false;
            bytes_from = 0;
            last_request_at = -1e9;
          }
        in
        Hashtbl.replace t.peers a p;
        Some p
      end

let drop_peer t a = Hashtbl.remove t.peers a

(* {2 Piece data on disk} *)

let piece_len t i =
  (* last piece may be short; we only track sizes, content is synthetic *)
  ignore i;
  t.cfg.piece_size

let store_piece t i =
  if not t.have.(i) then begin
    (try
       let f = Sb_fs.open_file t.fs (piece_path i) ~mode:`Write in
       Sb_fs.write f (String.make 64 'x');
       (* marker block: we account transfer sizes on the wire, not in RAM *)
       Sb_fs.close f
     with Sb_fs.Fs_error _ -> ());
    t.have.(i) <- true;
    t.n_have <- t.n_have + 1;
    if complete t && t.completed_at = None then t.completed_at <- Some (Env.now t.env)
  end

(* {2 RPC handlers} *)

let handle_announce t args =
  match args with
  | [ av ] ->
      let a = addr_of_value av in
      if not (List.exists (Addr.equal a) t.swarm) then t.swarm <- a :: t.swarm;
      let sample = Rng.sample t.b_rng t.cfg.swarm_sample t.swarm in
      Codec.List
        (List.filter_map
           (fun x -> if Addr.equal x a then None else Some (Codec.String (Addr.to_string x)))
           sample)
  | _ -> failwith "bt.announce: bad arguments"

let handle_bitfield t args =
  match args with
  | [ av ] ->
      (match get_peer t (addr_of_value av) with
      | Some _ -> ()
      | None -> ());
      Codec.String (bitfield_to_string t.have)
  | _ -> failwith "bt.bitfield: bad arguments"

let handle_have t args =
  match args with
  | [ av; iv ] ->
      let i = Codec.to_int iv in
      (match get_peer t (addr_of_value av) with
      | Some p when i >= 0 && i < t.npieces -> p.their_have.(i) <- true
      | _ -> ());
      Codec.Null
  | _ -> failwith "bt.have: bad arguments"

let handle_request t args =
  match args with
  | [ av; iv ] -> (
      let a = addr_of_value av and i = Codec.to_int iv in
      match get_peer t a with
      | None -> Codec.Assoc [ ("choked", Codec.Bool true) ]
      | Some p ->
          p.last_request_at <- Env.now t.env;
          if p.we_choke then Codec.Assoc [ ("choked", Codec.Bool true) ]
          else if i < 0 || i >= t.npieces || not t.have.(i) then
            Codec.Assoc [ ("choked", Codec.Bool false); ("missing", Codec.Bool true) ]
          else begin
            t.up_bytes <- t.up_bytes + piece_len t i;
            (* the piece body: sized payload so the bandwidth model applies *)
            Codec.Assoc
              [
                ("choked", Codec.Bool false);
                ("data", Codec.String (String.make (piece_len t i) 'x'));
              ]
          end)
  | _ -> failwith "bt.request: bad arguments"

(* {2 Leecher machinery} *)

let me_value t = Codec.String (Addr.to_string t.env.Env.me)

let announce t =
  match t.tracker with
  | None -> ()
  | Some tracker -> (
      match
        Rpc.a_call t.env tracker ~timeout:t.cfg.rpc_timeout "bt.announce" [ me_value t ]
      with
      | Ok (Codec.List l) ->
          List.iter
            (fun v ->
              let a = addr_of_value v in
              match get_peer t a with
              | Some p when Array.for_all not p.their_have -> (
                  (* new acquaintance: swap bitfields *)
                  match
                    Rpc.a_call t.env a ~timeout:t.cfg.rpc_timeout "bt.bitfield" [ me_value t ]
                  with
                  | Ok (Codec.String bf) -> p.their_have <- bitfield_of_string bf
                  | Ok _ -> ()
                  | Error _ -> drop_peer t a)
              | _ -> ())
            l
      | Ok _ | Error _ -> ())

(* Rarest-first: among pieces we lack and some peer has, pick the one with
   the fewest holders (random tie-break). *)
let pick_piece t =
  let counts = Array.make t.npieces 0 in
  Hashtbl.iter
    (fun _ p -> Array.iteri (fun i b -> if b then counts.(i) <- counts.(i) + 1) p.their_have)
    t.peers;
  let best = ref None in
  Array.iteri
    (fun i c ->
      if (not t.have.(i)) && (not (List.mem i t.inflight)) && c > 0 then
        match !best with
        | Some (_, bc) when bc < c -> ()
        | Some (_, bc) when bc = c && Rng.bool t.b_rng -> ()
        | _ -> best := Some (i, c))
    counts;
  Option.map fst !best

let holders t i =
  Hashtbl.fold (fun _ p acc -> if p.their_have.(i) then p :: acc else acc) t.peers []

let request_piece t i =
  t.inflight <- i :: t.inflight;
  Fun.protect
    ~finally:(fun () -> t.inflight <- List.filter (fun x -> x <> i) t.inflight)
    (fun () ->
      let rec try_peers = function
        | [] -> false
        | p :: rest -> (
            match
              Rpc.a_call t.env p.pa ~timeout:t.cfg.rpc_timeout "bt.request"
                [ me_value t; Codec.Int i ]
            with
            | Ok v -> (
                match Codec.member "choked" v with
                | Codec.Bool true -> try_peers rest
                | _ -> (
                    match Codec.member "data" v with
                    | Codec.String data ->
                        t.down_bytes <- t.down_bytes + String.length data;
                        p.bytes_from <- p.bytes_from + String.length data;
                        store_piece t i;
                        true
                    | _ -> try_peers rest
                    | exception Codec.Parse_error _ -> try_peers rest))
            | Error _ ->
                drop_peer t p.pa;
                try_peers rest)
      in
      let hs = holders t i in
      let shuffled = Rng.sample t.b_rng (List.length hs) hs in
      ignore (try_peers shuffled))

let notify_have t i =
  Hashtbl.iter
    (fun a _ ->
      ignore
        (Env.thread t.env (fun () ->
             ignore
               (Rpc.a_call t.env a ~timeout:t.cfg.rpc_timeout "bt.have"
                  [ me_value t; Codec.Int i ]))))
    t.peers

let download_worker t =
  while not (complete t) do
    match pick_piece t with
    | None -> Env.sleep 2.0 (* nothing requestable yet *)
    | Some i ->
        let before = t.have.(i) in
        request_piece t i;
        if t.have.(i) && not before then notify_have t i
  done

(* Tit-for-tat: unchoke the peers that gave us the most since the last
   round, plus one optimistic slot; a seed reciprocates by recent interest
   instead (it downloads nothing). *)
let choke_round t =
  let peers = Hashtbl.fold (fun _ p acc -> p :: acc) t.peers [] in
  let interested p = Env.now t.env -. p.last_request_at < 3.0 *. t.cfg.choke_interval in
  let score p = if complete t then (if interested p then 1 else 0) else p.bytes_from in
  let ranked = List.sort (fun a b -> Int.compare (score b) (score a)) peers in
  let keep = Misc.take t.cfg.regular_slots ranked in
  List.iter
    (fun p ->
      p.we_choke <- not (List.memq p keep || p.optimistic);
      p.bytes_from <- 0)
    peers

let optimistic_round t =
  let peers = Hashtbl.fold (fun _ p acc -> p :: acc) t.peers [] in
  List.iter (fun p -> p.optimistic <- false) peers;
  match peers with
  | [] -> ()
  | _ ->
      let p = Rng.pick_list t.b_rng peers in
      p.optimistic <- true;
      p.we_choke <- false


let app ?(config = default_config) ~file_size ~register env =
  let npieces = max 1 ((file_size + config.piece_size - 1) / config.piece_size) in
  let seed = env.Env.position = 1 in
  let tracker =
    match env.Env.nodes with
    | tr :: _ when not (Addr.equal tr env.Env.me) -> Some tr
    | _ -> None
  in
  let t =
    {
      cfg = config;
      env;
      npieces;
      have = Array.make npieces seed;
      n_have = (if seed then npieces else 0);
      fs = Sb_fs.create env;
      peers = Hashtbl.create 32;
      inflight = [];
      completed_at = (if seed then Some 0.0 else None);
      seed;
      tracker;
      (* the tracker seeds its own registry with itself: it is also the
         initial seed of the swarm *)
      swarm = (if tracker = None then [ env.Env.me ] else []);
      up_bytes = 0;
      down_bytes = 0;
      b_rng = Rng.split env.Env.env_rng;
    }
  in
  register t;
  if seed then
    for i = 0 to npieces - 1 do
      try
        let f = Sb_fs.open_file t.fs (piece_path i) ~mode:`Write in
        Sb_fs.write f (String.make 64 'x');
        Sb_fs.close f
      with Sb_fs.Fs_error _ -> ()
    done;
  Rpc.server env
    [
      ("bt.announce", handle_announce t);
      ("bt.bitfield", handle_bitfield t);
      ("bt.have", handle_have t);
      ("bt.request", handle_request t);
    ];
  ignore (Env.periodic env config.choke_interval (fun () -> choke_round t));
  ignore (Env.periodic env config.optimistic_interval (fun () -> optimistic_round t));
  ignore (Env.periodic env config.tracker_interval (fun () -> announce t));
  (* initial contact, then the download workers *)
  Env.sleep (0.1 *. Float.of_int env.Env.position);
  announce t;
  optimistic_round t;
  choke_round t;
  if not seed then
    for _ = 1 to config.workers do
      ignore (Env.thread env (fun () -> download_worker t))
    done
