(** SplitStream (Castro et al.) — high-bandwidth content dissemination by
    striping over multiple Scribe trees.

    The content is split into blocks assigned round-robin to [stripes]
    stripes; each stripe is a Scribe topic whose id starts with a distinct
    digit, so the trees are rooted at different rendezvous nodes and their
    interior nodes are (with high probability) disjoint — no single node
    carries the whole forwarding load. *)

type t

val create : Scribe.t -> stripes:int -> name:string -> t
(** [name] identifies the content; stripe topics derive from it. *)

val stripe_topics : t -> int list

val subscribe_all : t -> unit
(** Join every stripe tree. Blocking. *)

val send : t -> content:string -> block_size:int -> unit
(** Publisher side: split and publish all blocks. Blocking per block
    hand-off to the rendezvous. *)

val received_blocks : t -> int
val total_blocks : t -> int option
(** [None] until the first block (carrying the total) arrives. *)

val reassembled : t -> string option
(** The content, once every block has arrived. *)

val complete : t -> bool
