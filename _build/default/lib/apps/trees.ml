module Env = Splay_runtime.Env
module Sb_socket = Splay_runtime.Sb_socket

type config = { fanout : int; ntrees : int; block_size : int; start_delay : float }

let default_config = { fanout = 2; ntrees = 2; block_size = 128 * 1024; start_delay = 10.0 }

(* Block transfers are one-way bulk traffic: a dedicated data port and
   fire-and-forget messages, so the sender's uplink queue — not an RPC
   round-trip — paces the dissemination. *)
type Net.payload += Block of { tree : int; index : int }

let data_port_offset = 10_000

type node = {
  cfg : config;
  env : Env.t;
  members : Addr.t array; (* deployment order; index 0 is the source *)
  rank : int; (* our index in [members] *)
  nblocks : int;
  received : bool array;
  mutable n_received : int;
  mutable completed_at : float option;
}

let position t = t.rank + 1
let total_blocks t = t.nblocks
let blocks_received t = t.n_received
let completion_time t = t.completed_at
let is_source t = t.rank = 0
let is_stopped t = Env.is_stopped t.env

(* Tree [k] rotates the non-source members by k/ntrees of the population,
   so interior nodes of one tree are mostly leaves of the others (the
   SplitStream property, by construction). The source is not part of any
   tree: it feeds each tree's root, so its uplink carries the file once. *)
let member_of_slot t ~tree ~slot =
  let n = Array.length t.members - 1 in
  let offset = tree * n / t.cfg.ntrees in
  t.members.(1 + ((slot + offset) mod n))

let my_slot t ~tree =
  let n = Array.length t.members - 1 in
  let offset = tree * n / t.cfg.ntrees in
  if t.rank = 0 then -1 else ((t.rank - 1) - offset + n) mod n

let children t ~tree =
  let n = Array.length t.members - 1 in
  if t.rank = 0 then [ member_of_slot t ~tree ~slot:0 ]
  else begin
    let slot = my_slot t ~tree in
    let first = (t.cfg.fanout * slot) + 1 in
    List.init t.cfg.fanout (fun i -> first + i)
    |> List.filter (fun s -> s < n)
    |> List.map (fun s -> member_of_slot t ~tree ~slot:s)
  end

let data_addr a = Addr.make a.Addr.host (a.Addr.port + data_port_offset)

let forward t ~tree ~index =
  List.iter
    (fun child ->
      try
        Sb_socket.send t.env ~dst:(data_addr child) ~size:(t.cfg.block_size + 32)
          (Block { tree; index })
      with Sb_socket.Network_error _ -> ())
    (children t ~tree)

let receive t ~tree ~index =
  if index >= 0 && index < t.nblocks && not t.received.(index) then begin
    t.received.(index) <- true;
    t.n_received <- t.n_received + 1;
    if t.n_received = t.nblocks then t.completed_at <- Some (Env.now t.env);
    forward t ~tree ~index
  end

let app ?(config = default_config) ~file_size ~register env =
  let members = Array.of_list env.Env.nodes in
  if Array.length members = 0 then invalid_arg "Trees.app: deploy with bootstrap All";
  let nblocks = (file_size + config.block_size - 1) / config.block_size in
  let rank =
    let rec find i =
      if i >= Array.length members then invalid_arg "Trees.app: not in member list"
      else if Addr.equal members.(i) env.Env.me then i
      else find (i + 1)
    in
    find 0
  in
  let t =
    {
      cfg = config;
      env;
      members;
      rank;
      nblocks;
      received = Array.make nblocks false;
      n_received = 0;
      completed_at = None;
    }
  in
  register t;
  ignore
    (Sb_socket.udp env
       ~port:(env.Env.me.Addr.port + data_port_offset)
       (fun ~src:_ payload ->
         match payload with
         | Block { tree; index } ->
             ignore (Env.thread env (fun () -> receive t ~tree ~index))
         | _ -> ()));
  if t.rank = 0 then begin
    Env.sleep config.start_delay;
    t.completed_at <- Some (Env.now env);
    Array.iteri (fun i _ -> t.received.(i) <- true) t.received;
    t.n_received <- t.nblocks;
    (* push blocks round-robin across the trees; the uplink bandwidth
       queue paces the actual transmissions *)
    for index = 0 to t.nblocks - 1 do
      forward t ~tree:(index mod config.ntrees) ~index
    done
  end
