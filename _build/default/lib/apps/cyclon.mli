(** Cyclon (Voulgaris et al.) — inexpensive gossip-based membership
    management. Each node keeps a small cache of (neighbor, age) entries
    and periodically shuffles a random subset with its oldest neighbor,
    which keeps the overlay connected, randomish, and with balanced
    in-degrees under churn. *)

type config = {
  cache_size : int; (** c, default 20 *)
  shuffle_length : int; (** l, default 8 *)
  period : float; (** shuffle interval, default 10 s *)
  rpc_timeout : float;
  join_delay_per_position : float;
}

val default_config : config

type node

val app : ?config:config -> register:(node -> unit) -> Env.t -> unit

val self : node -> Node.t
val neighbors : node -> Node.t list
val neighbor_ages : node -> (Node.t * int) list
val shuffles_done : node -> int
val is_stopped : node -> bool
