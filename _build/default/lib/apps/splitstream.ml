type t = {
  scribe : Scribe.t;
  stripes : int;
  topics : int array;
  blocks : (int, string) Hashtbl.t;
  mutable total : int option;
}

(* Stripe topics share the content hash in their low digits but get a
   distinct leading digit each — the interior-node-disjointness trick. *)
let stripe_topic ~bits ~b ~base i =
  let low_mask = (1 lsl (bits - b)) - 1 in
  ((i land ((1 lsl b) - 1)) lsl (bits - b)) lor (base land low_mask)

let create scribe ~stripes ~name =
  if stripes < 1 then invalid_arg "Splitstream.create";
  let base = Scribe.topic_of_name scribe name in
  (* recover digit parameters from the underlying Pastry configuration via
     the scribe topic size: topics are full-width ids *)
  let bits, b = (32, 4) in
  let topics = Array.init stripes (fun i -> stripe_topic ~bits ~b ~base i) in
  let t = { scribe; stripes; topics; blocks = Hashtbl.create 64; total = None } in
  Scribe.on_deliver scribe (fun ~topic ~payload ->
      if Array.exists (fun x -> x = topic) topics then begin
        (* payload: "<index>/<total>:<data>" *)
        match String.index_opt payload ':' with
        | None -> ()
        | Some colon -> (
            let header = String.sub payload 0 colon in
            let data = String.sub payload (colon + 1) (String.length payload - colon - 1) in
            match String.split_on_char '/' header with
            | [ idx; total ] -> (
                match (int_of_string_opt idx, int_of_string_opt total) with
                | Some idx, Some total ->
                    t.total <- Some total;
                    if not (Hashtbl.mem t.blocks idx) then Hashtbl.replace t.blocks idx data
                | _ -> ())
            | _ -> ())
      end);
  t

let stripe_topics t = Array.to_list t.topics

let subscribe_all t = Array.iter (fun topic -> Scribe.subscribe t.scribe ~topic) t.topics

let send t ~content ~block_size =
  if block_size < 1 then invalid_arg "Splitstream.send";
  let len = String.length content in
  let total = max 1 ((len + block_size - 1) / block_size) in
  for idx = 0 to total - 1 do
    let off = idx * block_size in
    let data = String.sub content off (min block_size (len - off)) in
    let payload = Printf.sprintf "%d/%d:%s" idx total data in
    Scribe.publish t.scribe ~topic:t.topics.(idx mod t.stripes) ~payload
  done

let received_blocks t = Hashtbl.length t.blocks
let total_blocks t = t.total

let complete t = match t.total with Some n -> Hashtbl.length t.blocks = n | None -> false

let reassembled t =
  match t.total with
  | Some n when Hashtbl.length t.blocks = n ->
      let buf = Buffer.create 1024 in
      let ok = ref true in
      for i = 0 to n - 1 do
        match Hashtbl.find_opt t.blocks i with
        | Some d -> Buffer.add_string buf d
        | None -> ok := false
      done;
      if !ok then Some (Buffer.contents buf) else None
  | _ -> None
