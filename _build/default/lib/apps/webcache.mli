(** Cooperative web cache on Pastry, after Squirrel (Iyer et al.) — the
    long-running application of §5.7 / Fig. 14.

    Every URL has a {e home node}: the Pastry owner of the URL's hash. A
    node proxies a request by routing to the home node, which serves the
    object from its cache or fetches it from the (simulated) origin server
    on a miss. Caches are LRU-bounded and entries expire after a TTL
    (paper: 100 entries per node, 120 s). *)

type config = {
  max_entries : int; (** per node (paper: 100) *)
  ttl : float; (** seconds before an entry is stale (paper: 120) *)
  origin_delay_mean : float; (** origin fetch time, exponential (paper: 1–2 s) *)
  object_size : int; (** bytes of a fetched object *)
  rpc_timeout : float;
}

val default_config : config

type t

val create : ?config:config -> Pastry.node -> t

val get : t -> string -> (string * [ `Hit | `Miss | `Failed ] * float)
(** [get t url] proxies one request: returns the object (empty on
    [`Failed]), whether the home node had it cached, and the experienced
    delay in simulated seconds. Blocking. *)

(** Counters for the figure series. *)

val requests_served : t -> int
(** Requests this node served as a home node. *)

val home_hits : t -> int
val home_misses : t -> int
val cached_entries : t -> int
val evictions : t -> int
