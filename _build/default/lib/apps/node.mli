(** Shared node representation for the overlay applications: an endpoint
    plus its position on the identifier ring, with the wire encoding used
    in RPC arguments. *)

type t = { id : int; addr : Addr.t }

val make : id:int -> addr:Addr.t -> t
val equal : t -> t -> bool
val compare_by_id : t -> t -> int

val to_value : t -> Splay_runtime.Codec.value
val of_value : Splay_runtime.Codec.value -> t
(** Raises [Codec.Parse_error] on malformed input. *)

val opt_to_value : t option -> Splay_runtime.Codec.value
val opt_of_value : Splay_runtime.Codec.value -> t option

val to_string : t -> string

val self : ?how:[ `Random | `Hash ] -> bits:int -> Splay_runtime.Env.t -> t
(** Derive this instance's identity on a [2^bits] ring: [`Hash] (default)
    hashes "host:port" as deployed DHTs do; [`Random] draws a uniform
    position as the paper's Chord listing does. *)
