module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng

type config = {
  dimensions : int;
  ce : float;
  cc : float;
  period : float;
  probes_per_round : int;
  rpc_timeout : float;
}

let default_config =
  { dimensions = 3; ce = 0.25; cc = 0.25; period = 5.0; probes_per_round = 2; rpc_timeout = 10.0 }

type node = {
  cfg : config;
  env : Env.t;
  coord : float array;
  mutable err : float; (* local confidence error, starts pessimistic *)
  mutable n_samples : int;
  peers : unit -> Addr.t list;
  v_rng : Rng.t;
}

let addr t = t.env.Env.me
let coordinate t = Array.copy t.coord
let confidence_error t = t.err
let samples t = t.n_samples

let distance a b =
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  sqrt !acc

let estimate_rtt t ~coord = distance t.coord coord

let coord_to_value c = Codec.List (Array.to_list (Array.map (fun x -> Codec.Float x) c))

let coord_of_value v = Array.of_list (List.map Codec.to_float (Codec.to_list v))

(* One Vivaldi update: pull/push our coordinate along the unit vector to
   the remote, proportionally to the prediction error and our relative
   confidence. *)
let update t ~remote_coord ~remote_err ~rtt =
  if rtt > 0.0 && remote_err >= 0.0 then begin
    let w = t.err /. Float.max 1e-9 (t.err +. remote_err) in
    let predicted = distance t.coord remote_coord in
    let sample_err = Float.abs (predicted -. rtt) /. rtt in
    t.err <- Float.min 2.0 ((sample_err *. t.cfg.cc *. w) +. (t.err *. (1.0 -. (t.cfg.cc *. w))));
    let delta = t.cfg.ce *. w in
    (* direction away from the remote (or a random kick when colocated) *)
    let dir = Array.make t.cfg.dimensions 0.0 in
    let norm = ref 0.0 in
    Array.iteri
      (fun i x ->
        dir.(i) <- x -. remote_coord.(i);
        norm := !norm +. (dir.(i) *. dir.(i)))
      t.coord;
    let norm = sqrt !norm in
    if norm < 1e-9 then
      Array.iteri (fun i _ -> dir.(i) <- Rng.float t.v_rng 1.0 -. 0.5) dir
    else Array.iteri (fun i x -> dir.(i) <- x /. norm) dir;
    let force = rtt -. predicted in
    Array.iteri (fun i x -> t.coord.(i) <- x +. (delta *. force *. dir.(i))) t.coord;
    t.n_samples <- t.n_samples + 1
  end

let probe_once t peer =
  let eng = Env.engine t.env in
  let t0 = Engine.now eng in
  match Rpc.a_call t.env peer ~timeout:t.cfg.rpc_timeout "viv.probe" [] with
  | Error e -> Error (Rpc.error_to_string e)
  | Ok v ->
      let rtt = Engine.now eng -. t0 in
      let remote_coord = coord_of_value (Codec.member "coord" v) in
      let remote_err = Codec.to_float (Codec.member "err" v) in
      if Array.length remote_coord = t.cfg.dimensions then
        update t ~remote_coord ~remote_err ~rtt;
      Ok rtt

let probe_round t =
  let candidates = List.filter (fun a -> not (Addr.equal a t.env.Env.me)) (t.peers ()) in
  if candidates <> [] then
    for _ = 1 to t.cfg.probes_per_round do
      ignore (probe_once t (Rng.pick_list t.v_rng candidates))
    done

let create ?(config = default_config) ~peers env =
  let t =
    {
      cfg = config;
      env;
      coord = Array.make config.dimensions 0.0;
      err = 1.0;
      n_samples = 0;
      peers;
      v_rng = Rng.split env.Env.env_rng;
    }
  in
  Rpc.client env;
  Rpc.add_handler env "viv.probe" (fun _ ->
      Codec.Assoc [ ("coord", coord_to_value t.coord); ("err", Codec.Float t.err) ]);
  ignore (Env.periodic env config.period (fun () -> probe_round t));
  t

let app ?(config = default_config) ~register env =
  let t = create ~config ~peers:(fun () -> env.Env.nodes) env in
  register t
