(** BitTorrent — swarm content distribution with a tracker, bitfield
    exchange, rarest-first piece selection, and tit-for-tat choking.

    The instance at position 1 runs the tracker and is the initial seed.
    Leechers announce to the tracker, learn a random subset of the swarm,
    exchange bitfields, and pull pieces with parallel request workers;
    uploads are granted to the top reciprocating peers plus one
    optimistically-unchoked peer, re-evaluated periodically, as in the
    reference protocol. Pieces are checked into the sandboxed filesystem
    as they arrive (chunks on disk, as Fig. 1 illustrates). *)

type config = {
  piece_size : int;
  swarm_sample : int; (** peers returned per tracker announce (default 20) *)
  max_peers : int; (** neighbor cap *)
  regular_slots : int; (** reciprocation unchoke slots (default 3) *)
  choke_interval : float; (** default 10 s *)
  optimistic_interval : float; (** default 30 s *)
  tracker_interval : float; (** re-announce period *)
  workers : int; (** parallel in-flight requests per leecher *)
  rpc_timeout : float;
}

val default_config : config

type node

val app : ?config:config -> file_size:int -> register:(node -> unit) -> Env.t -> unit
(** Deploy with [Descriptor.Head 1]: [job.nodes] carries the tracker. *)

val total_pieces : node -> int
val pieces_have : node -> int
val complete : node -> bool
val completion_time : node -> float option
val is_initial_seed : node -> bool
val uploaded_bytes : node -> int
val downloaded_bytes : node -> int
val known_peers : node -> int
val unchoked_peers : node -> Addr.t list
val file_on_disk : node -> bool
(** All pieces present in the sandboxed filesystem. *)

val is_stopped : node -> bool
