(** Cooperative dissemination over parallel n-ary trees (Fig. 13's
    workload): the content is split into blocks, pushed round-robin down
    [ntrees] interior-node-disjoint trees (built SplitStream-style from the
    deployment sequence), and each node forwards every block to its
    children in that tree — in parallel, which is the behavioural
    difference from the native CRCP baseline that forwards sequentially. *)

type config = {
  fanout : int; (** tree arity (Fig. 13 uses binary) *)
  ntrees : int; (** parallel trees (Fig. 13 uses 2) *)
  block_size : int; (** bytes *)
  start_delay : float; (** source waits for the swarm to boot *)
}

val default_config : config

type node

val app : ?config:config -> file_size:int -> register:(node -> unit) -> Env.t -> unit
(** Deploy with [Descriptor.All] bootstrap: every instance derives the
    trees from the full member list. The instance at position 1 is the
    source of all trees. *)

val position : node -> int
val total_blocks : node -> int
val blocks_received : node -> int
val completion_time : node -> float option
(** Simulated time at which the last block arrived (the source completes
    at [start_delay]). *)

val children : node -> tree:int -> Addr.t list
val is_source : node -> bool
val is_stopped : node -> bool
