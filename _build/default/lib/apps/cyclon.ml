module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Rng = Splay_sim.Rng

type config = {
  cache_size : int;
  shuffle_length : int;
  period : float;
  rpc_timeout : float;
  join_delay_per_position : float;
}

let default_config =
  { cache_size = 20; shuffle_length = 8; period = 10.0; rpc_timeout = 15.0; join_delay_per_position = 0.2 }

type entry = { node : Node.t; mutable age : int }

type node = {
  cfg : config;
  env : Env.t;
  me : Node.t;
  mutable cache : entry list;
  mutable n_shuffles : int;
  c_rng : Rng.t;
}

let self t = t.me
let neighbors t = List.map (fun e -> e.node) t.cache
let neighbor_ages t = List.map (fun e -> (e.node, e.age)) t.cache
let shuffles_done t = t.n_shuffles
let is_stopped t = Env.is_stopped t.env

let entry_to_value e =
  Codec.Assoc [ ("n", Node.to_value e.node); ("age", Codec.Int e.age) ]

let entry_of_value v =
  { node = Node.of_value (Codec.member "n" v); age = Codec.to_int (Codec.member "age" v) }

(* Merge received entries into the cache: never ourselves, never
   duplicates (keep the fresher), evict entries we just sent away first,
   then oldest, to stay within c. *)
let merge t ~sent received =
  let received = List.filter (fun e -> not (Node.equal e.node t.me)) received in
  let add cache e =
    match List.find_opt (fun x -> Node.equal x.node e.node) cache with
    | Some existing ->
        if e.age < existing.age then existing.age <- e.age;
        cache
    | None -> e :: cache
  in
  let cache = List.fold_left add t.cache received in
  let cache =
    if List.length cache <= t.cfg.cache_size then cache
    else begin
      (* evict: first the entries we shipped in the shuffle, then oldest *)
      let was_sent e = List.exists (fun s -> Node.equal s.node e.node) sent in
      let sorted =
        List.stable_sort
          (fun a b ->
            match (was_sent a, was_sent b) with
            | true, false -> 1
            | false, true -> -1
            | _ -> Int.compare a.age b.age)
          cache
      in
      Splay_runtime.Misc.take t.cfg.cache_size sorted
    end
  in
  t.cache <- cache

let sample t k lst = Rng.sample t.c_rng k lst

let handle_shuffle t args =
  match args with
  | [ Codec.List sent_vs ] ->
      let received = List.map entry_of_value sent_vs in
      let reply = sample t t.cfg.shuffle_length t.cache in
      merge t ~sent:reply received;
      Codec.List (List.map entry_to_value reply)
  | _ -> failwith "cyclon.shuffle: bad arguments"

let shuffle t =
  (* age everybody, pick the oldest neighbor *)
  List.iter (fun e -> e.age <- e.age + 1) t.cache;
  match t.cache with
  | [] -> ()
  | cache ->
      let oldest = List.fold_left (fun a b -> if b.age > a.age then b else a) (List.hd cache) cache in
      t.cache <- List.filter (fun e -> not (Node.equal e.node oldest.node)) t.cache;
      let others = sample t (t.cfg.shuffle_length - 1) t.cache in
      let payload = { node = t.me; age = 0 } :: others in
      (match
         Rpc.a_call t.env oldest.node.Node.addr ~timeout:t.cfg.rpc_timeout "cyclon.shuffle"
           [ Codec.List (List.map entry_to_value payload) ]
       with
      | Ok (Codec.List reply_vs) ->
          t.n_shuffles <- t.n_shuffles + 1;
          merge t ~sent:payload (List.map entry_of_value reply_vs)
      | Ok _ -> ()
      | Error _ -> () (* oldest neighbor dead: it stays evicted, which is the repair *))

let app ?(config = default_config) ~register env =
  let me = Node.self ~how:`Hash ~bits:30 env in
  let t =
    { cfg = config; env; me; cache = []; n_shuffles = 0; c_rng = Rng.split env.Env.env_rng }
  in
  register t;
  Rpc.server env [ ("cyclon.shuffle", handle_shuffle t) ];
  ignore (Env.periodic env config.period (fun () -> shuffle t));
  Env.sleep (Float.of_int env.Env.position *. config.join_delay_per_position);
  (* bootstrap: everyone starts with the rendezvous node in cache *)
  List.iter
    (fun a ->
      if not (Addr.equal a env.Env.me) then begin
        let n =
          Node.make ~id:(Splay_runtime.Crypto.hash_to_id (Addr.to_string a) ~bits:30) ~addr:a
        in
        t.cache <- { node = n; age = 0 } :: t.cache
      end)
    env.Env.nodes
