(** Scribe (Castro et al.) — large-scale decentralized publish/subscribe on
    Pastry.

    Each topic has a rendezvous node (the Pastry owner of the topic id).
    Subscriptions route towards the rendezvous, and every node on the path
    becomes a forwarder: it records the previous hop as a child, so the
    reverse paths form a multicast tree rooted at the rendezvous. A publish
    routes to the rendezvous and flows down the tree. *)

type t
(** One Scribe instance, layered on a {!Pastry.node} (sharing its RPC
    endpoint and identifier space). *)

val create : Pastry.node -> t

val topic_of_name : t -> string -> int
(** Hash a topic name into the identifier space. *)

val subscribe : t -> topic:int -> unit
(** Join the topic's multicast tree. Blocking. Idempotent. *)

val unsubscribe : t -> topic:int -> unit
(** Leave the tree: stop delivering locally; this node keeps forwarding
    while it has children (as in Scribe). *)

val publish : t -> topic:int -> payload:string -> unit
(** Route the event to the rendezvous, which disseminates it down the
    tree. Blocking until handed to the rendezvous. *)

val on_deliver : t -> (topic:int -> payload:string -> unit) -> unit
(** Callback for events of subscribed topics. *)

val delivered : t -> (int * string) list
(** Events delivered locally, most recent first. *)

val children : t -> topic:int -> Node.t list
(** This node's children in the topic tree (observability). *)

val is_forwarder : t -> topic:int -> bool
val is_subscribed : t -> topic:int -> bool
