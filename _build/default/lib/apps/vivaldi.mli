(** Vivaldi network coordinates (Dabek et al., SIGCOMM'04).

    The decentralized latency-prediction scheme behind "network coordinates
    for constructing latency-aware finger tables" — the optimization the
    paper credits for MIT Chord's edge in Fig. 6(c). Each node maintains a
    low-dimensional coordinate; on every timed probe it nudges its
    coordinate along the spring force between predicted and measured RTT,
    weighting by relative confidence. After convergence,
    [distance my_coord their_coord] predicts the RTT without probing.

    Embeddable: {!create} attaches coordinates to any existing instance
    (sharing its RPC endpoint), which is how a DHT would consume it;
    {!app} is the standalone application for deployment. *)

type config = {
  dimensions : int; (** coordinate space (default 3) *)
  ce : float; (** coordinate adaptation gain (default 0.25) *)
  cc : float; (** confidence adaptation gain (default 0.25) *)
  period : float; (** seconds between probe rounds (default 5) *)
  probes_per_round : int;
  rpc_timeout : float;
}

val default_config : config

type node

val create : ?config:config -> peers:(unit -> Addr.t list) -> Env.t -> node
(** Attach coordinates to an instance: registers the probe RPC and starts
    the periodic probing process against peers drawn from [peers]. *)

val app : ?config:config -> register:(node -> unit) -> Env.t -> unit
(** Standalone application: peers come from [job.nodes] (deploy with
    [Descriptor.All] or a [Random_subset]). *)

val addr : node -> Addr.t

val coordinate : node -> float array
(** Current coordinate (a copy). *)

val confidence_error : node -> float
(** Local error estimate in [0, 1+]; lower is more confident. Starts at 1. *)

val samples : node -> int
(** Probes incorporated so far. *)

val distance : float array -> float array -> float
(** Euclidean distance between two coordinates = predicted RTT seconds. *)

val estimate_rtt : node -> coord:float array -> float
(** Predicted RTT from this node to a peer's published coordinate. *)

val probe_once : node -> Addr.t -> (float, string) result
(** Probe one peer immediately (measure RTT, exchange coordinates, update).
    Returns the measured RTT. Blocking. *)
