(** Chord (Stoica et al.) — the base implementation of Section 4 of the
    paper, a line-by-line transcription of Listings 1–3: plain successor
    pointer, finger table, periodic [stabilize] / [fix_fingers] /
    [check_predecessor], no fault tolerance. Deploy it on a failure-free
    testbed (the ModelNet runs of Fig. 6a/6b); use {!Chord_ft} under churn. *)

type config = {
  m : int; (** identifier bits: [2^m] positions (paper: 24) *)
  stabilize_interval : float; (** paper: 5 s *)
  join_delay_per_position : float;
      (** staggered-join pause: [position * this] seconds before joining,
          as in the deployment code of §5.2 (1 s) *)
  id_assignment : [ `Random | `Hash ];
}

val default_config : config

type node
(** In-process handle on one Chord instance, for experiment observation. *)

val app : ?config:config -> register:(node -> unit) -> Env.t -> unit
(** The application main, suitable for [Controller.deploy ~main]. Calls
    [register] with the node handle before joining the ring. *)

val id : node -> int
val addr : node -> Addr.t
val successor : node -> Node.t option
val predecessor : node -> Node.t option
val fingers : node -> Node.t option array
val is_stopped : node -> bool
val node_env : node -> Env.t

val lookup : node -> int -> (Node.t * int) option
(** [lookup n key] routes from [n]: [Some (responsible, hops)], or [None]
    if an RPC on the path failed. Blocking. *)

val ring_of : node list -> int list
(** Successor-order walk of the ring starting from the lowest-id node, as
    ids; a correctly converged ring visits every live node exactly once.
    (Pure inspection of in-process state, for tests.) *)
