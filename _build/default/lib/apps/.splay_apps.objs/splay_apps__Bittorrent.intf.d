lib/apps/bittorrent.mli: Addr Env
