lib/apps/epidemic.ml: Addr Hashtbl List Splay_runtime Splay_sim
