lib/apps/cyclon.mli: Env Node
