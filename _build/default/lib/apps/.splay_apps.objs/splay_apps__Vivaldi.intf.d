lib/apps/vivaldi.mli: Addr Env
