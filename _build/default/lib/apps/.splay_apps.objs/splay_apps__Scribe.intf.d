lib/apps/scribe.mli: Node Pastry
