lib/apps/trees.ml: Addr Array List Net Splay_runtime
