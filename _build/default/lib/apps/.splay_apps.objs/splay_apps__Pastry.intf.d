lib/apps/pastry.mli: Addr Env Node
