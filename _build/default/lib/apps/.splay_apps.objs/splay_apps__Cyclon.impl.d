lib/apps/cyclon.ml: Addr Float Int List Node Splay_runtime Splay_sim
