lib/apps/splitstream.mli: Scribe
