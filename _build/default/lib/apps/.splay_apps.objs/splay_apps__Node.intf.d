lib/apps/node.mli: Addr Splay_runtime
