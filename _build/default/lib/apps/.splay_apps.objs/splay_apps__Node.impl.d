lib/apps/node.ml: Addr Int Printf Splay_runtime Splay_sim String
