lib/apps/chord_ft.ml: Addr Array Float Hashtbl Int List Net Node Option Splay_runtime
