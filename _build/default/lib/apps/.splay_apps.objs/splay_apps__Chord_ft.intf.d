lib/apps/chord_ft.mli: Addr Env Node
