lib/apps/webcache.ml: Hashtbl Node Pastry Printf Splay_runtime Splay_sim String
