lib/apps/chord.ml: Array Float Hashtbl Int List Node Splay_runtime
