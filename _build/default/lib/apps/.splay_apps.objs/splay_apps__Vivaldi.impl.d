lib/apps/vivaldi.ml: Addr Array Float List Splay_runtime Splay_sim
