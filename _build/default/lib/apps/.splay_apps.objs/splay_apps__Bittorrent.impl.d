lib/apps/bittorrent.ml: Addr Array Float Fun Hashtbl Int List Option Printf Splay_runtime Splay_sim String
