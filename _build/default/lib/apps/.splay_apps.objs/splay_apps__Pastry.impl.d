lib/apps/pastry.ml: Addr Array Float Fun Hashtbl Int List Net Node Option Splay_runtime Splay_sim Testbed
