lib/apps/trees.mli: Addr Env
