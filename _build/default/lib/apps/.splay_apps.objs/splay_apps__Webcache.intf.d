lib/apps/webcache.mli: Pastry
