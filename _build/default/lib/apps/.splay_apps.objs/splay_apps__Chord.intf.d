lib/apps/chord.mli: Addr Env Node
