lib/apps/epidemic.mli: Env
