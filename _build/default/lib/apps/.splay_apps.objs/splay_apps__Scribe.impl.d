lib/apps/scribe.ml: Hashtbl List Node Pastry Printf Splay_runtime Splay_sim
