lib/apps/dht_store.ml: Hashtbl List Node Pastry Printf Splay_runtime String
