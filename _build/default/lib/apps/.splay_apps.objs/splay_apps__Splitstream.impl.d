lib/apps/splitstream.ml: Array Buffer Hashtbl Printf Scribe String
