lib/apps/dht_store.mli: Pastry
