module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Crypto = Splay_runtime.Crypto
module Sandbox = Splay_runtime.Sandbox

type config = {
  replicas : int;
  republish_interval : float;
  entry_ttl : float;
  rpc_timeout : float;
}

let default_config =
  { replicas = 3; republish_interval = 30.0; entry_ttl = 120.0; rpc_timeout = 10.0 }

type entry = { value : string; mutable refreshed_at : float }

type t = {
  cfg : config;
  p : Pastry.node;
  env : Env.t;
  store : (string, entry) Hashtbl.t;
}

let stored_entries t = Hashtbl.length t.store
let stored_bytes t = Hashtbl.fold (fun _ e acc -> acc + String.length e.value) t.store 0

let now t = Env.now t.env

let replica_id t ~key i =
  Crypto.hash_to_id (Printf.sprintf "%s#%d" key i) ~bits:(Pastry.config_of t.p).Pastry.bits

(* Local (owner-side) operations, exposed over RPC. *)

let store_local t ~key ~value =
  (match Hashtbl.find_opt t.store key with
  | Some old ->
      Sandbox.free t.env.Env.sandbox (String.length old.value);
      Hashtbl.remove t.store key
  | None -> ());
  (try Sandbox.alloc t.env.Env.sandbox (String.length value)
   with Sandbox.Violation _ -> ());
  Hashtbl.replace t.store key { value; refreshed_at = now t }

let fetch_local t ~key =
  match Hashtbl.find_opt t.store key with
  | Some e when now t -. e.refreshed_at <= t.cfg.entry_ttl -> Some e.value
  | Some e ->
      Hashtbl.remove t.store key;
      Sandbox.free t.env.Env.sandbox (String.length e.value);
      None
  | None -> None

let delete_local t ~key =
  match Hashtbl.find_opt t.store key with
  | Some e ->
      Hashtbl.remove t.store key;
      Sandbox.free t.env.Env.sandbox (String.length e.value)
  | None -> ()

(* Route to the owner of one replica and run an operation there. *)
let with_owner t ~key i f =
  match Pastry.lookup t.p (replica_id t ~key i) with
  | None -> None
  | Some (owner, _) -> f owner

let put t ~key ~value =
  let acks = ref 0 in
  for i = 0 to t.cfg.replicas - 1 do
    ignore
      (with_owner t ~key i (fun owner ->
           if Node.equal owner (Pastry.self_node t.p) then begin
             store_local t ~key ~value;
             incr acks;
             Some ()
           end
           else
             match
               Rpc.a_call t.env owner.Node.addr ~timeout:t.cfg.rpc_timeout "kv.store"
                 [ Codec.String key; Codec.String value ]
             with
             | Ok _ ->
                 incr acks;
                 Some ()
             | Error _ ->
                 Pastry.report_failure t.p owner;
                 None))
  done;
  !acks

let get t ~key =
  let rec try_replica i =
    if i >= t.cfg.replicas then None
    else
      let found =
        with_owner t ~key i (fun owner ->
            if Node.equal owner (Pastry.self_node t.p) then fetch_local t ~key
            else
              match
                Rpc.a_call t.env owner.Node.addr ~timeout:t.cfg.rpc_timeout "kv.fetch"
                  [ Codec.String key ]
              with
              | Ok (Codec.String v) -> Some v
              | Ok _ -> None
              | Error _ ->
                  Pastry.report_failure t.p owner;
                  None)
      in
      match found with Some v -> Some v | None -> try_replica (i + 1)
  in
  try_replica 0

let delete t ~key =
  let acks = ref 0 in
  for i = 0 to t.cfg.replicas - 1 do
    ignore
      (with_owner t ~key i (fun owner ->
           if Node.equal owner (Pastry.self_node t.p) then begin
             delete_local t ~key;
             incr acks;
             Some ()
           end
           else
             match
               Rpc.a_call t.env owner.Node.addr ~timeout:t.cfg.rpc_timeout "kv.delete"
                 [ Codec.String key ]
             with
             | Ok _ ->
                 incr acks;
                 Some ()
             | Error _ -> None))
  done;
  !acks

(* Republish: push every held entry back towards the current owners of its
   replicas; drop entries nobody has refreshed within the TTL. The churned
   ring converges to holding each value at its live owners. *)
let republish t =
  let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.store [] in
  List.iter
    (fun (key, e) ->
      if now t -. e.refreshed_at > t.cfg.entry_ttl then delete_local t ~key
      else
        ignore (put t ~key ~value:e.value))
    entries

let create ?(config = default_config) p =
  let env = Pastry.node_env p in
  let t = { cfg = config; p; env; store = Hashtbl.create 32 } in
  Rpc.add_handler env "kv.store" (fun args ->
      match args with
      | [ Codec.String key; Codec.String value ] ->
          store_local t ~key ~value;
          Codec.Null
      | _ -> failwith "kv.store: bad arguments");
  Rpc.add_handler env "kv.fetch" (fun args ->
      match args with
      | [ Codec.String key ] -> (
          match fetch_local t ~key with Some v -> Codec.String v | None -> Codec.Null)
      | _ -> failwith "kv.fetch: bad arguments");
  Rpc.add_handler env "kv.delete" (fun args ->
      match args with
      | [ Codec.String key ] ->
          delete_local t ~key;
          Codec.Null
      | _ -> failwith "kv.delete: bad arguments");
  ignore (Env.periodic env config.republish_interval (fun () -> republish t));
  t
