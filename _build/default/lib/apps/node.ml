(* Shared node representation for the overlay applications: an endpoint
   plus its position on the identifier ring, with the wire encoding used in
   RPC arguments. *)

module Codec = Splay_runtime.Codec

type t = { id : int; addr : Addr.t }

let make ~id ~addr = { id; addr }

let equal a b = a.id = b.id && Addr.equal a.addr b.addr

let compare_by_id a b = Int.compare a.id b.id

let to_value n =
  Codec.Assoc [ ("id", Codec.Int n.id); ("a", Codec.String (Addr.to_string n.addr)) ]

let of_value v =
  let id = Codec.to_int (Codec.member "id" v) in
  match String.split_on_char ':' (Codec.to_string (Codec.member "a" v)) with
  | [ h; p ] -> (
      match (int_of_string_opt h, int_of_string_opt p) with
      | Some h, Some p -> { id; addr = Addr.make h p }
      | _ -> raise (Codec.Parse_error "bad node address"))
  | _ -> raise (Codec.Parse_error "bad node address")

let opt_to_value = function None -> Codec.Null | Some n -> to_value n

let opt_of_value = function Codec.Null -> None | v -> Some (of_value v)

let to_string n = Printf.sprintf "%d@%s" n.id (Addr.to_string n.addr)

(* Derive this instance's identity: a random ring position (as the paper's
   Chord does) or a hash of ip:port (as deployed DHTs do). *)
let self ?(how = `Hash) ~bits (env : Splay_runtime.Env.t) =
  let id =
    match how with
    | `Random -> Splay_sim.Rng.int env.Splay_runtime.Env.env_rng (Splay_runtime.Misc.pow2 bits)
    | `Hash -> Splay_runtime.Crypto.hash_to_id (Addr.to_string env.Splay_runtime.Env.me) ~bits
  in
  { id; addr = env.Splay_runtime.Env.me }
