module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Rng = Splay_sim.Rng

type config = { fanout : int; rpc_timeout : float }

let default_config = { fanout = 6; rpc_timeout = 10.0 }

type node = {
  cfg : config;
  env : Env.t;
  mutable seen : string list;
  seen_set : (string, unit) Hashtbl.t;
  mutable forwarded : int;
  e_rng : Rng.t;
}

let received t = t.seen
let has_received t rumor = Hashtbl.mem t.seen_set rumor
let messages_forwarded t = t.forwarded
let is_stopped t = Env.is_stopped t.env

let peers t = List.filter (fun a -> not (Addr.equal a t.env.Env.me)) t.env.Env.nodes

let forward t rumor =
  let targets = Rng.sample t.e_rng t.cfg.fanout (peers t) in
  List.iter
    (fun a ->
      t.forwarded <- t.forwarded + 1;
      ignore
        (Env.thread t.env (fun () ->
             ignore
               (Rpc.a_call t.env a ~timeout:t.cfg.rpc_timeout "epidemic.rumor"
                  [ Codec.String rumor ]))))
    targets

let receive t rumor =
  if not (Hashtbl.mem t.seen_set rumor) then begin
    Hashtbl.replace t.seen_set rumor ();
    t.seen <- rumor :: t.seen;
    forward t rumor
  end

let broadcast t rumor = receive t rumor

let app ?(config = default_config) ~register env =
  let t =
    {
      cfg = config;
      env;
      seen = [];
      seen_set = Hashtbl.create 16;
      forwarded = 0;
      e_rng = Rng.split env.Env.env_rng;
    }
  in
  register t;
  Rpc.server env
    [
      ( "epidemic.rumor",
        fun args ->
          (match args with
          | [ Codec.String rumor ] -> receive t rumor
          | _ -> failwith "epidemic.rumor: bad arguments");
          Codec.Null );
    ]
