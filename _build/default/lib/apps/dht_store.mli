(** A replicated key-value store on Pastry — the "indexing service based on
    a DHT" of the paper's long-running-application use case (§1, §3.2).

    Replication is by salted keys: replica [i] of a key lives at the Pastry
    owner of [hash(key # i)], so the [replicas] copies land on unrelated
    nodes and a reader can fall back from one replica to the next without
    knowing anyone's leafset. Storing nodes republish their entries
    periodically, so data migrates to new owners as the ring churns and
    expires when every holder is gone longer than the republish TTL. *)

type config = {
  replicas : int; (** copies kept (default 3) *)
  republish_interval : float; (** default 30 s *)
  entry_ttl : float; (** entries not republished for this long expire (default 120 s) *)
  rpc_timeout : float;
}

val default_config : config

type t

val create : ?config:config -> Pastry.node -> t
(** Layer the store over a Pastry instance (shared RPC endpoint). *)

val put : t -> key:string -> value:string -> int
(** Store the value; returns how many replicas acknowledged (0 means the
    put failed entirely). Blocking. *)

val get : t -> key:string -> string option
(** Read, falling back across replicas. Blocking. *)

val delete : t -> key:string -> int
(** Remove from all reachable replicas; returns acknowledgements. *)

val stored_entries : t -> int
(** Entries this node currently holds (observability). *)

val stored_bytes : t -> int
