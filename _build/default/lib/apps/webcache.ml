module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Crypto = Splay_runtime.Crypto
module Sandbox = Splay_runtime.Sandbox
module Rng = Splay_sim.Rng

type config = {
  max_entries : int;
  ttl : float;
  origin_delay_mean : float;
  object_size : int;
  rpc_timeout : float;
}

let default_config =
  { max_entries = 100; ttl = 120.0; origin_delay_mean = 1.5; object_size = 2048; rpc_timeout = 30.0 }

type entry = { value : string; fetched_at : float; mutable last_used : float }

type t = {
  cfg : config;
  p : Pastry.node;
  env : Env.t;
  cache : (string, entry) Hashtbl.t;
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
  w_rng : Rng.t;
}

let requests_served t = t.served
let home_hits t = t.hits
let home_misses t = t.misses
let cached_entries t = Hashtbl.length t.cache
let evictions t = t.evicted

let now t = Env.now t.env

(* Simulated origin server: heavy-ish fetch latency, as the paper's
   non-cached accesses (1-2 s on average). *)
let fetch_origin t url =
  Env.sleep (Rng.exponential t.w_rng ~mean:t.cfg.origin_delay_mean);
  let body = Printf.sprintf "content-of:%s:" url in
  body ^ String.make (max 0 (t.cfg.object_size - String.length body)) 'x'

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun url e ->
      match !victim with
      | Some (_, ve) when ve.last_used <= e.last_used -> ()
      | _ -> victim := Some (url, e))
    t.cache;
  match !victim with
  | Some (url, e) ->
      Hashtbl.remove t.cache url;
      Sandbox.free t.env.Env.sandbox (String.length e.value);
      t.evicted <- t.evicted + 1
  | None -> ()

let insert t url value =
  while Hashtbl.length t.cache >= t.cfg.max_entries do
    evict_lru t
  done;
  Sandbox.alloc t.env.Env.sandbox (String.length value);
  Hashtbl.replace t.cache url { value; fetched_at = now t; last_used = now t }

(* Serve a request as the home node. *)
let serve t url =
  t.served <- t.served + 1;
  match Hashtbl.find_opt t.cache url with
  | Some e when now t -. e.fetched_at <= t.cfg.ttl ->
      e.last_used <- now t;
      t.hits <- t.hits + 1;
      (e.value, true)
  | stale ->
      (match stale with
      | Some e ->
          Hashtbl.remove t.cache url;
          Sandbox.free t.env.Env.sandbox (String.length e.value)
      | None -> ());
      t.misses <- t.misses + 1;
      let value = fetch_origin t url in
      insert t url value;
      (value, false)

let handle_get t args =
  match args with
  | [ Codec.String url ] ->
      let value, hit = serve t url in
      Codec.Assoc [ ("v", Codec.String value); ("hit", Codec.Bool hit) ]
  | _ -> failwith "wc.get: bad arguments"

let get t url =
  let t0 = now t in
  let key = Crypto.hash_to_id url ~bits:(Pastry.config_of t.p).Pastry.bits in
  match Pastry.lookup t.p key with
  | None -> ("", `Failed, now t -. t0)
  | Some (home, _) ->
      if Node.equal home (Pastry.self_node t.p) then begin
        let value, hit = serve t url in
        (value, (if hit then `Hit else `Miss), now t -. t0)
      end
      else begin
        match
          Rpc.a_call t.env home.Node.addr ~timeout:t.cfg.rpc_timeout "wc.get"
            [ Codec.String url ]
        with
        | Ok v ->
            let value = Codec.to_string (Codec.member "v" v) in
            let hit = Codec.to_bool (Codec.member "hit" v) in
            (value, (if hit then `Hit else `Miss), now t -. t0)
        | Error _ ->
            Pastry.report_failure t.p home;
            ("", `Failed, now t -. t0)
      end

let create ?(config = default_config) p =
  let env = Pastry.node_env p in
  let t =
    {
      cfg = config;
      p;
      env;
      cache = Hashtbl.create 64;
      served = 0;
      hits = 0;
      misses = 0;
      evicted = 0;
      w_rng = Rng.split env.Env.env_rng;
    }
  in
  Rpc.add_handler env "wc.get" (handle_get t);
  t
