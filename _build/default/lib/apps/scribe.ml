module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env
module Crypto = Splay_runtime.Crypto
module Rng = Splay_sim.Rng

type t = {
  p : Pastry.node;
  env : Env.t;
  subs : (int, unit) Hashtbl.t;
  childs : (int, Node.t list ref) Hashtbl.t;
  seen : (string, unit) Hashtbl.t; (* event ids, for duplicate suppression *)
  mutable delivered_log : (int * string) list;
  mutable deliver_cbs : (topic:int -> payload:string -> unit) list;
  s_rng : Rng.t;
  rpc_timeout : float;
}

let delivered t = t.delivered_log
let is_subscribed t ~topic = Hashtbl.mem t.subs topic
let is_forwarder t ~topic = Hashtbl.mem t.childs topic

let children t ~topic =
  match Hashtbl.find_opt t.childs topic with Some l -> !l | None -> []

let topic_of_name t name = Crypto.hash_to_id name ~bits:(Pastry.config_of t.p).Pastry.bits

let on_deliver t f = t.deliver_cbs <- f :: t.deliver_cbs

let self t = Pastry.self_node t.p

let add_child t ~topic child =
  let l =
    match Hashtbl.find_opt t.childs topic with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.childs topic l;
        l
  in
  if not (List.exists (Node.equal child) !l) then l := child :: !l

let remove_child t ~topic child =
  match Hashtbl.find_opt t.childs topic with
  | Some l -> l := List.filter (fun c -> not (Node.equal c child)) !l
  | None -> ()

(* Graft ourselves towards the rendezvous: each hop records us as a child;
   a hop that is already in the tree stops the propagation (that is what
   keeps join traffic local in Scribe). *)
let graft t ~topic =
  let rec go attempts =
    if attempts > 0 then
      match Pastry.next_hop t.p topic with
      | None -> () (* we are the rendezvous *)
      | Some parent -> (
          match
            Rpc.a_call t.env parent.Node.addr ~timeout:t.rpc_timeout "scribe.join"
              [ Codec.Int topic; Node.to_value (self t) ]
          with
          | Ok _ -> ()
          | Error _ ->
              (* feed Pastry's suspicion so the next attempt routes around *)
              Pastry.report_failure t.p parent;
              go (attempts - 1))
  in
  go 4

let handle_join t args =
  match args with
  | [ topic_v; child_v ] ->
      let topic = Codec.to_int topic_v and child = Node.of_value child_v in
      let was_in_tree = is_forwarder t ~topic || is_subscribed t ~topic in
      add_child t ~topic child;
      if not was_in_tree then graft t ~topic;
      Codec.Null
  | _ -> failwith "scribe.join: bad arguments"

let deliver_local t ~topic ~payload =
  if is_subscribed t ~topic then begin
    t.delivered_log <- (topic, payload) :: t.delivered_log;
    List.iter (fun f -> f ~topic ~payload) (List.rev t.deliver_cbs)
  end

(* Flow an event down the topic tree. *)
let disseminate t ~topic ~eid ~payload =
  if not (Hashtbl.mem t.seen eid) then begin
    Hashtbl.replace t.seen eid ();
    deliver_local t ~topic ~payload;
    List.iter
      (fun child ->
        ignore
          (Env.thread t.env (fun () ->
               match
                 Rpc.a_call t.env child.Node.addr ~timeout:t.rpc_timeout "scribe.deliver"
                   [ Codec.Int topic; Codec.String eid; Codec.String payload ]
               with
               | Ok _ -> ()
               | Error _ -> remove_child t ~topic child)))
      (children t ~topic)
  end

let handle_deliver t args =
  match args with
  | [ topic_v; eid_v; payload_v ] ->
      disseminate t ~topic:(Codec.to_int topic_v) ~eid:(Codec.to_string eid_v)
        ~payload:(Codec.to_string payload_v);
      Codec.Null
  | _ -> failwith "scribe.deliver: bad arguments"

let handle_publish t args =
  match args with
  | [ topic_v; eid_v; payload_v ] ->
      (* we are (or believe we are) the rendezvous: fan out *)
      disseminate t ~topic:(Codec.to_int topic_v) ~eid:(Codec.to_string eid_v)
        ~payload:(Codec.to_string payload_v);
      Codec.Null
  | _ -> failwith "scribe.publish: bad arguments"

let subscribe t ~topic =
  if not (is_subscribed t ~topic) then begin
    Hashtbl.replace t.subs topic ();
    if not (is_forwarder t ~topic) then graft t ~topic
  end

let unsubscribe t ~topic = Hashtbl.remove t.subs topic

let publish t ~topic ~payload =
  let eid = Printf.sprintf "%d-%d" topic (Rng.int t.s_rng max_int) in
  match Pastry.lookup t.p topic with
  | None -> () (* routing broke down; the publication is lost, as live *)
  | Some (owner, _) ->
      if Node.equal owner (self t) then disseminate t ~topic ~eid ~payload
      else
        ignore
          (Rpc.a_call t.env owner.Node.addr ~timeout:t.rpc_timeout "scribe.publish"
             [ Codec.Int topic; Codec.String eid; Codec.String payload ])

let create p =
  let env = Pastry.node_env p in
  let t =
    {
      p;
      env;
      subs = Hashtbl.create 8;
      childs = Hashtbl.create 8;
      seen = Hashtbl.create 64;
      delivered_log = [];
      deliver_cbs = [];
      s_rng = Rng.split env.Env.env_rng;
      rpc_timeout = (Pastry.config_of p).Pastry.rpc_timeout;
    }
  in
  Rpc.add_handler env "scribe.join" (handle_join t);
  Rpc.add_handler env "scribe.deliver" (handle_deliver t);
  Rpc.add_handler env "scribe.publish" (handle_publish t);
  (* soft-state refresh: re-graft subscriptions so trees heal under churn *)
  ignore
    (Env.periodic env 30.0 (fun () ->
         Hashtbl.iter (fun topic () -> graft t ~topic) t.subs));
  t
