type action = Join of int | Leave_count of int | Leave_pct of float | Stop

type phase =
  | At of float * action
  | Interval of { start : float; finish : float; inc_per_min : int; churn_pct : float }

type t = phase list

exception Syntax_error of string

let fail line fmt = Printf.ksprintf (fun s -> raise (Syntax_error (Printf.sprintf "line %d: %s" line s))) fmt

let parse_time line s =
  let n = String.length s in
  if n = 0 then fail line "empty time"
  else begin
    let mult, digits =
      match s.[n - 1] with
      | 's' -> (1.0, String.sub s 0 (n - 1))
      | 'm' -> (60.0, String.sub s 0 (n - 1))
      | 'h' -> (3600.0, String.sub s 0 (n - 1))
      | '0' .. '9' -> (1.0, s)
      | c -> fail line "bad time suffix '%c'" c
    in
    match float_of_string_opt digits with
    | Some v when v >= 0.0 -> v *. mult
    | _ -> fail line "bad time %S" s
  end

let parse_count line s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '%' then
    (* churn rates may exceed 100% (more than the whole population turns
       over within a minute); leave percentages are capped separately *)
    match float_of_string_opt (String.sub s 0 (n - 1)) with
    | Some p when p >= 0.0 -> `Pct p
    | _ -> fail line "bad percentage %S" s
  else
    match int_of_string_opt s with
    | Some k when k >= 0 -> `Count k
    | _ -> fail line "bad count %S" s

let parse_pct line s =
  match parse_count line s with `Pct p -> p | `Count _ -> fail line "expected percentage, got %S" s

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_line lineno text =
  match tokens text with
  | [] -> None
  | [ "at"; t; "join"; k ] -> (
      match parse_count lineno k with
      | `Count k -> Some (At (parse_time lineno t, Join k))
      | `Pct _ -> fail lineno "join takes a count")
  | [ "at"; t; "leave"; k ] -> (
      let time = parse_time lineno t in
      match parse_count lineno k with
      | `Count k -> Some (At (time, Leave_count k))
      | `Pct p when p <= 100.0 -> Some (At (time, Leave_pct p))
      | `Pct _ -> fail lineno "cannot leave more than 100%%")
  | [ "at"; t; "stop" ] -> Some (At (parse_time lineno t, Stop))
  | "from" :: t1 :: "to" :: t2 :: rest -> (
      let start = parse_time lineno t1 and finish = parse_time lineno t2 in
      if finish <= start then fail lineno "interval must move forward";
      match rest with
      | [ "inc"; k ] -> (
          match parse_count lineno k with
          | `Count k -> Some (Interval { start; finish; inc_per_min = k; churn_pct = 0.0 })
          | `Pct _ -> fail lineno "inc takes a count")
      | [ "inc"; k; "churn"; p ] -> (
          match parse_count lineno k with
          | `Count k ->
              Some (Interval { start; finish; inc_per_min = k; churn_pct = parse_pct lineno p })
          | `Pct _ -> fail lineno "inc takes a count")
      | [ "dec"; k ] -> (
          match parse_count lineno k with
          | `Count k -> Some (Interval { start; finish; inc_per_min = -k; churn_pct = 0.0 })
          | `Pct _ -> fail lineno "dec takes a count")
      | [ "dec"; k; "churn"; p ] -> (
          match parse_count lineno k with
          | `Count k ->
              Some (Interval { start; finish; inc_per_min = -k; churn_pct = parse_pct lineno p })
          | `Pct _ -> fail lineno "dec takes a count")
      | [ "const" ] -> Some (Interval { start; finish; inc_per_min = 0; churn_pct = 0.0 })
      | [ "const"; "churn"; p ] ->
          Some (Interval { start; finish; inc_per_min = 0; churn_pct = parse_pct lineno p })
      | _ -> fail lineno "bad interval clause")
  | w :: _ -> fail lineno "unknown directive %S" w

let phase_start = function At (t, _) -> t | Interval { start; _ } -> start

let parse src =
  let lines = String.split_on_char '\n' src in
  let phases = List.filteri (fun _ _ -> true) lines in
  let parsed =
    List.concat
      (List.mapi
         (fun i l -> match parse_line (i + 1) (String.trim l) with Some p -> [ p ] | None -> [])
         phases)
  in
  List.stable_sort (fun a b -> Float.compare (phase_start a) (phase_start b)) parsed

let time_to_string v =
  if Float.is_integer (v /. 3600.0) && v > 0.0 then Printf.sprintf "%gh" (v /. 3600.0)
  else if Float.is_integer (v /. 60.0) && v > 0.0 then Printf.sprintf "%gm" (v /. 60.0)
  else Printf.sprintf "%gs" v

let to_string t =
  String.concat "\n"
    (List.map
       (fun phase ->
         match phase with
         | At (time, Join k) -> Printf.sprintf "at %s join %d" (time_to_string time) k
         | At (time, Leave_count k) -> Printf.sprintf "at %s leave %d" (time_to_string time) k
         | At (time, Leave_pct p) -> Printf.sprintf "at %s leave %g%%" (time_to_string time) p
         | At (time, Stop) -> Printf.sprintf "at %s stop" (time_to_string time)
         | Interval { start; finish; inc_per_min; churn_pct } ->
             let base =
               if inc_per_min > 0 then Printf.sprintf "inc %d" inc_per_min
               else if inc_per_min < 0 then Printf.sprintf "dec %d" (-inc_per_min)
               else "const"
             in
             let churn = if churn_pct > 0.0 then Printf.sprintf " churn %g%%" churn_pct else "" in
             Printf.sprintf "from %s to %s %s%s" (time_to_string start) (time_to_string finish)
               base churn)
       t)

let duration t =
  List.fold_left
    (fun acc p -> Float.max acc (match p with At (t, _) -> t | Interval { finish; _ } -> finish))
    0.0 t

(* Deterministic expected profile: events are attributed to the minute they
   fall in; the replayer matches this in expectation. *)
let profile t ~bin ~initial =
  let horizon = duration t in
  let nbins = int_of_float (Float.ceil (horizon /. bin)) + 1 in
  let joins = Array.make nbins 0 and leaves = Array.make nbins 0 in
  let idx time = min (nbins - 1) (int_of_float (time /. bin)) in
  let pop = ref initial in
  let out = ref [] in
  (* walk bins in order, applying phases *)
  for b = 0 to nbins - 1 do
    let t0 = Float.of_int b *. bin and t1 = Float.of_int (b + 1) *. bin in
    List.iter
      (fun p ->
        match p with
        | At (time, a) when time >= t0 && time < t1 -> (
            match a with
            | Join k ->
                joins.(idx time) <- joins.(idx time) + k;
                pop := !pop + k
            | Leave_count k ->
                let k = min k !pop in
                leaves.(idx time) <- leaves.(idx time) + k;
                pop := !pop - k
            | Leave_pct pct ->
                let k = int_of_float (Float.of_int !pop *. pct /. 100.0) in
                leaves.(idx time) <- leaves.(idx time) + k;
                pop := !pop - k
            | Stop ->
                leaves.(idx time) <- leaves.(idx time) + !pop;
                pop := 0)
        | At _ -> ()
        | Interval { start; finish; inc_per_min; churn_pct } ->
            (* fraction of this bin covered by the interval *)
            let lo = Float.max start t0 and hi = Float.min finish t1 in
            if hi > lo then begin
              let minutes = (hi -. lo) /. 60.0 in
              let churn_each = int_of_float (Float.of_int !pop *. churn_pct /. 100.0 *. minutes) in
              let inc = int_of_float (Float.of_int inc_per_min *. minutes) in
              let j = churn_each + max 0 inc and l = churn_each + max 0 (-inc) in
              joins.(b) <- joins.(b) + j;
              leaves.(b) <- leaves.(b) + l;
              pop := max 0 (!pop + inc)
            end)
      t;
    out := (t0, !pop, joins.(b), leaves.(b)) :: !out
  done;
  List.rev !out
