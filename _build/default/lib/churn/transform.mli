(** Trace transformations ("SPLAY provides a set of tools to generate and
    process trace files"): speed a trace up, scale its churn amplitude while
    keeping its statistical shape, crop a window, renumber nodes. *)

val speedup : float -> Trace.t -> Trace.t
(** [speedup k t] compresses time by [k] (×2: one trace minute becomes 30
    seconds — Fig. 11's knob). *)

val amplify : Splay_sim.Rng.t -> float -> Trace.t -> Trace.t
(** [amplify rng k t] multiplies the churn volume by [k] by overlaying [⌈k⌉]
    independently time-shifted copies of the trace (sampled down to the
    fractional part), renumbering nodes to stay disjoint. *)

val crop : from:float -> until:float -> Trace.t -> Trace.t
(** Keep the window and rebase times to 0, closing sessions cut at the
    edges so the result is still a valid trace. *)

val renumber : Trace.t -> Trace.t
(** Compact node identifiers to [0..n-1] in order of first appearance. *)
