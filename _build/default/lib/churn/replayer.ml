module Engine = Splay_sim.Engine
module Rng = Splay_sim.Rng
module Env = Splay_runtime.Env
module Controller = Splay_ctl.Controller

type stats = { mutable joins : int; mutable leaves : int; mutable failed_joins : int }

let observe observer env kind =
  match observer with Some f -> f (Env.now env) kind | None -> ()

let join_one ?observer stats dep env =
  match Controller.add_node dep with
  | Some _ ->
      stats.joins <- stats.joins + 1;
      observe observer env `Join
  | None -> stats.failed_joins <- stats.failed_joins + 1

let crash_addr ?observer stats dep env a =
  Controller.crash_node dep a;
  stats.leaves <- stats.leaves + 1;
  observe observer env `Leave

let crash_one ?observer stats dep env rng =
  match Controller.live_members dep with
  | [] -> ()
  | live ->
      let _, a, _ = Rng.pick_list rng live in
      crash_addr ?observer stats dep env a

(* Spread [n] occurrences of [act] uniformly over [span] seconds, each in
   its own process so a slow join does not delay the schedule. *)
let spread env rng n span act =
  for _ = 1 to n do
    let delay = Rng.float rng span in
    ignore
      (Env.thread env (fun () ->
           Env.sleep delay;
           act ()))
  done

let apply_action ?observer stats dep env rng span = function
  | Script.Join k -> spread env rng k span (fun () -> join_one ?observer stats dep env)
  | Script.Leave_count k ->
      let k = min k (Controller.live_count dep) in
      spread env rng k span (fun () -> crash_one ?observer stats dep env rng)
  | Script.Leave_pct pct ->
      let k = int_of_float (Float.of_int (Controller.live_count dep) *. pct /. 100.0) in
      spread env rng k span (fun () -> crash_one ?observer stats dep env rng)
  | Script.Stop ->
      List.iter
        (fun (_, a, _) -> crash_addr ?observer stats dep env a)
        (Controller.live_members dep)

let run_script ?observer dep script =
  let ctl = Controller.deployment_ctl dep in
  let env = Controller.env ctl in
  let rng = Rng.split env.Env.env_rng in
  let stats = { joins = 0; leaves = 0; failed_joins = 0 } in
  let proc =
    Env.thread env ~name:"churn-script" (fun () ->
        let t0 = Env.now env in
        let wait_until time =
          let d = t0 +. time -. Env.now env in
          if d > 0.0 then Env.sleep d
        in
        List.iter
          (fun phase ->
            match phase with
            | Script.At (time, action) ->
                wait_until time;
                (* point events hit together, not spread: a massive failure
                   is instantaneous *)
                apply_action ?observer stats dep env rng 0.0 action
            | Script.Interval { start; finish; inc_per_min; churn_pct } ->
                wait_until start;
                let rec minutes t_cur =
                  if t_cur < finish then begin
                    let span = Float.min 60.0 (finish -. t_cur) in
                    let frac = span /. 60.0 in
                    let live = Controller.live_count dep in
                    let churn_each =
                      int_of_float (Float.of_int live *. churn_pct /. 100.0 *. frac)
                    in
                    let inc = int_of_float (Float.of_int inc_per_min *. frac) in
                    let joins = churn_each + max 0 inc
                    and leaves = churn_each + max 0 (-inc) in
                    spread env rng joins span (fun () -> join_one ?observer stats dep env);
                    spread env rng leaves span (fun () -> crash_one ?observer stats dep env rng);
                    wait_until (t_cur +. span -. t0);
                    minutes (t_cur +. span)
                  end
                in
                minutes start)
          script)
  in
  (proc, stats)

let run_trace ?observer dep trace =
  let ctl = Controller.deployment_ctl dep in
  let env = Controller.env ctl in
  let stats = { joins = 0; leaves = 0; failed_joins = 0 } in
  let proc =
    Env.thread env ~name:"churn-trace" (fun () ->
        let t0 = Env.now env in
        (* trace node -> instance address, for live claimed nodes *)
        let claimed : (int, Addr.t) Hashtbl.t = Hashtbl.create 64 in
        let free_pool = ref (List.map (fun (_, a, _) -> a) (Controller.live_members dep)) in
        List.iter
          (fun ev ->
            let d = t0 +. ev.Trace.time -. Env.now env in
            if d > 0.0 then Env.sleep d;
            match ev.Trace.action with
            | `Join -> (
                match !free_pool with
                | a :: rest ->
                    (* an instance from the initial deployment stands in *)
                    free_pool := rest;
                    Hashtbl.replace claimed ev.Trace.node a;
                    stats.joins <- stats.joins + 1;
                    observe observer env `Join
                | [] -> (
                    match Controller.add_node dep with
                    | Some a ->
                        Hashtbl.replace claimed ev.Trace.node a;
                        stats.joins <- stats.joins + 1;
                        observe observer env `Join
                    | None -> stats.failed_joins <- stats.failed_joins + 1))
            | `Leave -> (
                match Hashtbl.find_opt claimed ev.Trace.node with
                | Some a ->
                    Hashtbl.remove claimed ev.Trace.node;
                    crash_addr ?observer stats dep env a
                | None -> ()))
          trace)
  in
  (proc, stats)

let maintain ~target ~interval dep =
  let ctl = Controller.deployment_ctl dep in
  let env = Controller.env ctl in
  Env.thread env ~name:"churn-maintain" (fun () ->
      while true do
        Env.sleep interval;
        let missing = target - Controller.live_count dep in
        for _ = 1 to missing do
          ignore (Controller.add_node dep)
        done
      done)
