module Rng = Splay_sim.Rng

let speedup k t =
  if k <= 0.0 then invalid_arg "Transform.speedup";
  List.map (fun e -> { e with Trace.time = e.Trace.time /. k }) t

let max_node t = List.fold_left (fun acc e -> max acc e.Trace.node) 0 t

let amplify rng k t =
  if k <= 0.0 then invalid_arg "Transform.amplify";
  let stride = max_node t + 1 in
  let n_full = int_of_float k in
  let frac = k -. Float.of_int n_full in
  let copy i evs = List.map (fun e -> { e with Trace.node = e.Trace.node + (i * stride) }) evs in
  let full = List.concat (List.init n_full (fun i -> copy i t)) in
  let partial =
    if frac <= 0.0 then []
    else begin
      (* keep a [frac] fraction of the nodes of one more copy *)
      let keep = Hashtbl.create 64 in
      List.iter
        (fun e ->
          if not (Hashtbl.mem keep e.Trace.node) then
            Hashtbl.replace keep e.Trace.node (Rng.chance rng frac))
        t;
      copy n_full (List.filter (fun e -> Hashtbl.find keep e.Trace.node) t)
    end
  in
  List.stable_sort (fun a b -> Float.compare a.Trace.time b.Trace.time) (full @ partial)

let crop ~from ~until t =
  if until <= from then invalid_arg "Transform.crop";
  let state = Hashtbl.create 64 in
  let opening = ref [] and window = ref [] in
  List.iter
    (fun e ->
      if e.Trace.time < from then Hashtbl.replace state e.Trace.node (e.Trace.action = `Join)
      else if e.Trace.time <= until then window := e :: !window)
    t;
  Hashtbl.iter
    (fun node up -> if up then opening := { Trace.time = 0.0; node; action = `Join } :: !opening)
    state;
  let rebased =
    List.rev_map (fun e -> { e with Trace.time = e.Trace.time -. from }) !window
  in
  List.stable_sort (fun a b -> Float.compare a.Trace.time b.Trace.time) (!opening @ rebased)

let renumber t =
  let map = Hashtbl.create 64 in
  let next = ref 0 in
  List.map
    (fun e ->
      let id =
        match Hashtbl.find_opt map e.Trace.node with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Hashtbl.replace map e.Trace.node id;
            id
      in
      { e with Trace.node = id })
    t
