(** The synthetic churn description language (§3.2, Fig. 4).

    {v
    at 30s join 10
    from 5m to 10m inc 10
    from 10m to 15m const churn 50%
    at 15m leave 50%
    from 15m to 20m inc 10 churn 150%
    at 20m stop
    v}

    [at T join N] adds [N] nodes at [T]; [at T leave N] (or [leave P%])
    removes them; [from T1 to T2 inc N] grows the population by [N] nodes
    per minute; [const] keeps it steady; an optional [churn P%] clause makes
    [P]% of the current population leave — and as many join — every minute;
    [stop] removes everyone. Times accept [s]/[m]/[h] suffixes (bare numbers
    are seconds). *)

type action =
  | Join of int
  | Leave_count of int
  | Leave_pct of float (** percentage in [0, 100] *)
  | Stop

type phase =
  | At of float * action
  | Interval of {
      start : float;
      finish : float;
      inc_per_min : int; (** net population growth per minute (0 = const) *)
      churn_pct : float; (** % of population replaced per minute *)
    }

type t = phase list

exception Syntax_error of string

val parse : string -> t
(** Raises {!Syntax_error} with a line-tagged message on malformed input.
    Phases are returned in increasing time order. *)

val duration : t -> float
(** Time of the last event described. *)

val to_string : t -> string
(** Render back into the script language ([parse (to_string s)] is [s]). *)

(** Expected population and event-rate series, for plotting a script before
    running it (Fig. 4's right-hand side) and for cross-checking the
    replayer. *)
val profile : t -> bin:float -> initial:int -> (float * int * int * int) list
(** [(bin_start, population_at_end_of_bin, joins_in_bin, leaves_in_bin)]. *)
