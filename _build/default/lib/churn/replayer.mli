(** The churn manager's execution engine: drives a live deployment from a
    synthetic script or an availability trace, instructing daemons to start
    and stop instances on the fly. *)

type stats = {
  mutable joins : int;
  mutable leaves : int;
  mutable failed_joins : int; (* no daemon accepted the new instance *)
}

val run_script :
  ?observer:(float -> [ `Join | `Leave ] -> unit) ->
  Splay_ctl.Controller.deployment ->
  Script.t ->
  Splay_sim.Engine.proc * stats
(** Spawn the replay process (script time 0 = now). Individual events inside
    a minute are spread uniformly, as a real population would behave.
    [observer] sees every applied event. *)

val run_trace :
  ?observer:(float -> [ `Join | `Leave ] -> unit) ->
  Splay_ctl.Controller.deployment ->
  Trace.t ->
  Splay_sim.Engine.proc * stats
(** Replay a trace: trace nodes are mapped onto deployment instances as they
    join (existing live instances are claimed first, then new ones are
    deployed); a leave crashes the mapped instance. *)

val maintain :
  target:int ->
  interval:float ->
  Splay_ctl.Controller.deployment ->
  Splay_sim.Engine.proc
(** Keep a fixed-size population: every [interval], top the deployment back
    up to [target] live instances (the long-running-service use case of
    §3.2). Runs until killed. *)
