lib/churn/transform.mli: Splay_sim Trace
