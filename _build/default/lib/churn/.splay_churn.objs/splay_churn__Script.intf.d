lib/churn/script.mli:
