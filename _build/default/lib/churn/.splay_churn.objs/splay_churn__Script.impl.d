lib/churn/script.ml: Array Float List Printf String
