lib/churn/replayer.ml: Addr Float Hashtbl List Script Splay_ctl Splay_runtime Splay_sim Trace
