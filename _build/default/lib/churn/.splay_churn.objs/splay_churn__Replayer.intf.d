lib/churn/replayer.mli: Script Splay_ctl Splay_sim Trace
