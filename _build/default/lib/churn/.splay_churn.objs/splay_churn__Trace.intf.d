lib/churn/trace.mli: Splay_sim
