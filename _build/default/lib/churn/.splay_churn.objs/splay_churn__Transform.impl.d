lib/churn/transform.ml: Float Hashtbl List Splay_sim Trace
