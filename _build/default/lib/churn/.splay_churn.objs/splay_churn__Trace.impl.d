lib/churn/trace.ml: Array Float Fun Hashtbl List Option Printf Splay_sim String
