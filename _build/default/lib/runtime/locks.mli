(** Cooperative mutual exclusion ([lock] library).

    Coroutines only race when they block mid-critical-section (an RPC in the
    middle of a state update — the Chord stabilization pitfall the paper
    walks through). A lock serializes such sections. *)

type t

val create : unit -> t

val lock : t -> unit
(** Block until the lock is free, then take it. FIFO fairness. *)

val unlock : t -> unit
(** Raises [Invalid_argument] if not held. *)

val try_lock : t -> bool

val with_lock : t -> (unit -> 'a) -> 'a
(** Take, run, release — also on exception or kill. *)

val is_locked : t -> bool
