let norm x ~modulus =
  let r = x mod modulus in
  if r < 0 then r + modulus else r

let between x a b ~modulus ~incl_lo ~incl_hi =
  let x = norm x ~modulus and a = norm a ~modulus and b = norm b ~modulus in
  if x = a then incl_lo
  else if x = b then incl_hi
  else if a = b then true (* whole ring *)
  else if a < b then x > a && x < b
  else x > a || x < b

let ring_add a b ~modulus = norm (a + b) ~modulus

let ring_distance a b ~modulus = norm (b - a) ~modulus

let pow2 k =
  if k < 0 || k > 62 then invalid_arg "Misc.pow2";
  1 lsl k

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let duration_to_string s =
  if s < 60.0 then Printf.sprintf "%.1fs" s
  else if s < 3600.0 then Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)
