exception Fs_error of string

type entry = { mutable data : Buffer.t; mutable open_count : int }

type t = { env : Env.t; files : (string, entry) Hashtbl.t }

type file = {
  fs : t;
  path : string;
  entry : entry;
  mode : [ `Read | `Write | `Append ];
  mutable read_pos : int;
  mutable closed : bool;
}

(* Map any path shape onto a flat private namespace, as the wrapped io
   library does: the application believes in directories, the daemon stores
   flat files. *)
let normalize path =
  let parts = String.split_on_char '/' path in
  let keep = List.filter (fun p -> p <> "" && p <> ".") parts in
  let no_dots = List.filter (fun p -> p <> "..") keep in
  if no_dots = [] then raise (Fs_error "empty path")
  else String.concat "/" no_dots

let create env = { env; files = Hashtbl.create 16 }

let open_file t path ~mode =
  let path = normalize path in
  let entry =
    match (Hashtbl.find_opt t.files path, mode) with
    | Some e, `Write ->
        Sandbox.fs_shrink t.env.Env.sandbox (Buffer.length e.data);
        Buffer.clear e.data;
        e
    | Some e, (`Read | `Append) -> e
    | None, `Read -> raise (Fs_error (Printf.sprintf "no such file: %s" path))
    | None, (`Write | `Append) ->
        let e = { data = Buffer.create 256; open_count = 0 } in
        Hashtbl.replace t.files path e;
        e
  in
  (try Sandbox.file_opened t.env.Env.sandbox
   with Sandbox.Violation m -> raise (Fs_error m));
  entry.open_count <- entry.open_count + 1;
  { fs = t; path; entry; mode; read_pos = 0; closed = false }

let check_open f = if f.closed then raise (Fs_error "file closed")

let write f s =
  check_open f;
  if f.mode = `Read then raise (Fs_error "file opened read-only");
  (try Sandbox.fs_grow f.fs.env.Env.sandbox (String.length s)
   with Sandbox.Violation m -> raise (Fs_error m));
  Buffer.add_string f.entry.data s

let read_all f =
  check_open f;
  let s = Buffer.contents f.entry.data in
  f.read_pos <- String.length s;
  s

let size f = Buffer.length f.entry.data

let close f =
  if not f.closed then begin
    f.closed <- true;
    f.entry.open_count <- f.entry.open_count - 1;
    Sandbox.file_closed f.fs.env.Env.sandbox
  end

let exists t path = Hashtbl.mem t.files (normalize path)

let file_size t path =
  match Hashtbl.find_opt t.files (normalize path) with
  | Some e -> Some (Buffer.length e.data)
  | None -> None

let remove t path =
  let path = normalize path in
  match Hashtbl.find_opt t.files path with
  | None -> raise (Fs_error (Printf.sprintf "no such file: %s" path))
  | Some e ->
      if e.open_count > 0 then raise (Fs_error (Printf.sprintf "file in use: %s" path));
      Sandbox.fs_shrink t.env.Env.sandbox (Buffer.length e.data);
      Hashtbl.remove t.files path

let list_files t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.files [])

let used_bytes t = Hashtbl.fold (fun _ e acc -> acc + Buffer.length e.data) t.files 0
