let thread env ?name f = Env.thread env ?name f
let periodic env f interval = Env.periodic env interval f
let sleep = Splay_sim.Engine.sleep
let yield = Splay_sim.Engine.yield
