module Engine = Splay_sim.Engine
module Ivar = Splay_sim.Ivar
module Channel = Splay_sim.Channel

exception Stream_error of string

(* Segments carry a globally unique connection key (initiator address +
   connection counter) and a sequence number; the receive side reassembles
   in order, so application code sees TCP semantics even though the
   underlying network may deliver with arbitrary jitter. *)
type Net.payload +=
  | Syn of { ckey : string; reply_port : int }
  | Syn_ack of { ckey : string }
  | Syn_refused of { ckey : string }
  | Seg of { ckey : string; seq : int; data : string }
  | Fin of { ckey : string }

type item = Data of string | Eof

type t = {
  env : Env.t;
  ckey : string;
  data_dst : Addr.t; (* where our segments go *)
  mutable next_send : int;
  mutable next_recv : int;
  held : (int, string) Hashtbl.t; (* out-of-order segments *)
  inbox : item Channel.t;
  mutable open_ : bool;
  mutable fin_sent : bool;
  mutable n_bytes : int;
  mutable n_msgs : int;
}

(* Per-environment dispatcher state, created lazily for both listeners and
   connectors. Keyed by the env's address; stale entries from a previous
   engine (tests create many) are replaced on physical mismatch. *)
type dispatcher = {
  d_env : Env.t;
  conns : (string, t) Hashtbl.t;
  accepts : (int, t -> unit) Hashtbl.t; (* listen port -> callback *)
  handshakes : (string, (unit, string) result Ivar.t) Hashtbl.t;
  mutable next_cid : int;
}

let dispatchers : (string, dispatcher) Hashtbl.t = Hashtbl.create 16

let stream_port_offset = 25_000

let deliver conn seq data =
  if conn.open_ || Hashtbl.length conn.held > 0 then begin
    if seq >= conn.next_recv then Hashtbl.replace conn.held seq data;
    let rec drain () =
      match Hashtbl.find_opt conn.held conn.next_recv with
      | Some d ->
          Hashtbl.remove conn.held conn.next_recv;
          conn.next_recv <- conn.next_recv + 1;
          Channel.send conn.inbox (Data d);
          drain ()
      | None -> ()
    in
    drain ()
  end

let close_conn conn =
  if conn.open_ then begin
    conn.open_ <- false;
    Sandbox.socket_closed conn.env.Env.sandbox;
    Channel.send conn.inbox Eof
  end

let mk_conn d ~ckey ~data_dst =
  (try Sandbox.socket_opened d.d_env.Env.sandbox
   with Sandbox.Violation m -> raise (Stream_error m));
  let conn =
    {
      env = d.d_env;
      ckey;
      data_dst;
      next_send = 0;
      next_recv = 0;
      held = Hashtbl.create 8;
      inbox = Channel.create ();
      open_ = true;
      fin_sent = false;
      n_bytes = 0;
      n_msgs = 0;
    }
  in
  Hashtbl.replace d.conns ckey conn;
  conn

let handle d ~src payload =
  match payload with
  | Syn { ckey; reply_port } -> (
      match Hashtbl.find_opt d.accepts src.Addr.port with
      | None ->
          (try
             Sb_socket.send d.d_env ~dst:(Addr.make src.Addr.host reply_port)
               (Syn_refused { ckey })
           with Sb_socket.Network_error _ -> ())
      | Some on_accept -> (
          match mk_conn d ~ckey ~data_dst:(Addr.make src.Addr.host reply_port) with
          | conn ->
              (try Sb_socket.send d.d_env ~dst:conn.data_dst (Syn_ack { ckey })
               with Sb_socket.Network_error _ -> ());
              ignore (Env.thread d.d_env ~name:"stream-accept" (fun () -> on_accept conn))
          | exception Stream_error _ ->
              (* socket cap reached: refuse *)
              (try
                 Sb_socket.send d.d_env ~dst:(Addr.make src.Addr.host reply_port)
                   (Syn_refused { ckey })
               with Sb_socket.Network_error _ -> ())))
  | Syn_ack { ckey } -> (
      match Hashtbl.find_opt d.handshakes ckey with
      | Some iv -> ignore (Ivar.try_fill iv (Ok ()))
      | None -> ())
  | Syn_refused { ckey } -> (
      match Hashtbl.find_opt d.handshakes ckey with
      | Some iv -> ignore (Ivar.try_fill iv (Error "connection refused"))
      | None -> ())
  | Seg { ckey; seq; data } -> (
      match Hashtbl.find_opt d.conns ckey with
      | Some conn -> deliver conn seq data
      | None -> ())
  | Fin { ckey } -> (
      match Hashtbl.find_opt d.conns ckey with
      | Some conn -> close_conn conn
      | None -> ())
  | _ -> ()

(* The dispatcher's datagram socket: one per env, shared by every stream
   connection of that instance. *)
let dispatcher_of env =
  let key = Addr.to_string env.Env.me in
  match Hashtbl.find_opt dispatchers key with
  | Some d when d.d_env == env -> d
  | _ ->
      let d =
        {
          d_env = env;
          conns = Hashtbl.create 8;
          accepts = Hashtbl.create 4;
          handshakes = Hashtbl.create 4;
          next_cid = 0;
        }
      in
      Hashtbl.replace dispatchers key d;
      (try
         ignore
           (Sb_socket.udp env
              ~port:(env.Env.me.Addr.port + stream_port_offset)
              (fun ~src payload -> handle d ~src payload))
       with Sb_socket.Network_error m -> raise (Stream_error m));
      Env.on_stop env (fun () -> Hashtbl.remove dispatchers key);
      d

let listen env ~port ~on_accept =
  let d = dispatcher_of env in
  if Hashtbl.mem d.accepts port then raise (Stream_error "port already listening");
  (* claim the advertised port so SYNs reach the dispatcher *)
  (try
     ignore
       (Sb_socket.udp env ~port (fun ~src payload ->
            match payload with
            (* rewrite the source port so handle() finds this acceptor *)
            | Syn _ as p -> handle d ~src:(Addr.make src.Addr.host port) p
            | p -> handle d ~src p))
   with Sb_socket.Network_error m -> raise (Stream_error m));
  Hashtbl.replace d.accepts port on_accept

let connect env ?(timeout = 10.0) server =
  let d = dispatcher_of env in
  let cid = d.next_cid in
  d.next_cid <- cid + 1;
  let ckey = Printf.sprintf "%s#%d" (Addr.to_string env.Env.me) cid in
  let iv = Ivar.create () in
  Hashtbl.replace d.handshakes ckey iv;
  let conn = mk_conn d ~ckey ~data_dst:server in
  (try
     Sb_socket.send env ~dst:server
       (Syn { ckey; reply_port = env.Env.me.Addr.port + stream_port_offset })
   with Sb_socket.Network_error m ->
     Hashtbl.remove d.handshakes ckey;
     close_conn conn;
     Hashtbl.remove d.conns ckey;
     raise (Stream_error m));
  let result = Ivar.read_timeout iv timeout in
  Hashtbl.remove d.handshakes ckey;
  match result with
  | Some (Ok ()) -> conn
  | Some (Error m) ->
      close_conn conn;
      Hashtbl.remove d.conns ckey;
      raise (Stream_error m)
  | None ->
      close_conn conn;
      Hashtbl.remove d.conns ckey;
      raise (Stream_error "connect timeout")

let send conn data =
  if not conn.open_ then raise (Stream_error "connection closed");
  let seq = conn.next_send in
  conn.next_send <- seq + 1;
  conn.n_msgs <- conn.n_msgs + 1;
  conn.n_bytes <- conn.n_bytes + String.length data;
  try Sb_socket.send conn.env ~dst:conn.data_dst ~size:(String.length data + 48) (Seg { ckey = conn.ckey; seq; data })
  with Sb_socket.Network_error m -> raise (Stream_error m)

let recv conn =
  match Channel.recv conn.inbox with
  | Data s -> s
  | Eof ->
      Channel.send conn.inbox Eof;
      raise (Stream_error "connection closed")

let recv_timeout conn d =
  match Channel.recv_timeout conn.inbox d with
  | Some (Data s) -> Some s
  | Some Eof ->
      Channel.send conn.inbox Eof;
      None
  | None -> None

let close conn =
  if conn.open_ && not conn.fin_sent then begin
    conn.fin_sent <- true;
    (try Sb_socket.send conn.env ~dst:conn.data_dst (Fin { ckey = conn.ckey })
     with Sb_socket.Network_error _ -> ());
    close_conn conn
  end

let is_open conn = conn.open_
let peer conn = Addr.make conn.data_dst.Addr.host conn.data_dst.Addr.port
let bytes_sent conn = conn.n_bytes
let messages_sent conn = conn.n_msgs
