module Engine = Splay_sim.Engine

type error = Timeout | Remote of string | Network of string

let error_to_string = function
  | Timeout -> "timeout"
  | Remote m -> "remote error: " ^ m
  | Network m -> "network error: " ^ m

exception Rpc_error of error

type handler = Codec.value list -> Codec.value

type Net.payload +=
  | Request of { rid : int; proc : string; args : Codec.value list }
  | Reply of { rid : int; result : (Codec.value, string) result }

let request_size proc args =
  32 + String.length proc + List.fold_left (fun acc a -> acc + Codec.encoded_size a) 0 args

let reply_size = function
  | Ok v -> 32 + Codec.encoded_size v
  | Error m -> 32 + String.length m

let add_handler env name h =
  env.Env.rpc_handlers <- (name, h) :: List.remove_assoc name env.Env.rpc_handlers

let send_reply env ~dst rid result =
  try Sb_socket.send env ~dst ~size:(reply_size result) (Reply { rid; result })
  with Sb_socket.Network_error _ -> ()

let dispatch env ~src payload =
  match payload with
  | Request { rid; proc; args } ->
      ignore
        (Env.thread env ~name:("rpc:" ^ proc) (fun () ->
             let result =
               match List.assoc_opt proc env.Env.rpc_handlers with
               | None -> Error (Printf.sprintf "unknown procedure %S" proc)
               | Some h -> (
                   try Ok (h args) with
                   | Engine.Process_killed as e -> raise e
                   | e -> Error (Printexc.to_string e))
             in
             send_reply env ~dst:src rid result))
  | Reply { rid; result } -> (
      match Hashtbl.find_opt env.Env.rpc_pending rid with
      | None -> () (* reply after timeout: dropped, as with a late TCP answer *)
      | Some resolve ->
          Hashtbl.remove env.Env.rpc_pending rid;
          resolve result)
  | _ -> () (* not RPC traffic; other layers may share the port *)

let ensure_bound env =
  if not env.Env.rpc_bound then begin
    env.Env.rpc_bound <- true;
    add_handler env "__ping" (fun _ -> Codec.Null);
    ignore (Sb_socket.udp env ~port:env.Env.me.Addr.port (dispatch env))
  end

let server env handlers =
  ensure_bound env;
  List.iter (fun (name, h) -> add_handler env name h) handlers

let client env = ensure_bound env

(* Error transport through the string-typed pending table: tagged
   prefixes, decoded back into the variant here. *)
let decode_error m =
  match String.index_opt m ':' with
  | Some i when String.sub m 0 i = "net" -> Network (String.sub m (i + 1) (String.length m - i - 1))
  | _ when m = "timeout" -> Timeout
  | _ -> Remote m

let a_call env dst ?(timeout = 120.0) proc args =
  ensure_bound env;
  let rid = env.Env.rpc_next_rid in
  env.Env.rpc_next_rid <- rid + 1;
  let eng = Env.engine env in
  let outcome =
    Engine.suspend (fun resolve ->
        Hashtbl.replace env.Env.rpc_pending rid (fun r -> resolve (Ok r));
        (try Sb_socket.send env ~dst ~size:(request_size proc args) (Request { rid; proc; args })
         with Sb_socket.Network_error m ->
           (match Hashtbl.find_opt env.Env.rpc_pending rid with
           | Some r ->
               Hashtbl.remove env.Env.rpc_pending rid;
               r (Error ("net:" ^ m))
           | None -> ()));
        let timer =
          Engine.schedule eng ~delay:timeout (fun () ->
              match Hashtbl.find_opt env.Env.rpc_pending rid with
              | Some r ->
                  Hashtbl.remove env.Env.rpc_pending rid;
                  r (Error "timeout")
              | None -> ())
        in
        fun () ->
          Engine.cancel eng timer;
          Hashtbl.remove env.Env.rpc_pending rid)
  in
  match outcome with Ok v -> Ok v | Error m -> Error (decode_error m)

let call env dst ?timeout proc args =
  match a_call env dst ?timeout proc args with
  | Ok v -> v
  | Error e -> raise (Rpc_error e)

let ping env ?(timeout = 5.0) dst =
  match a_call env dst ~timeout "__ping" [] with Ok _ -> true | Error _ -> false

let calls_issued env = env.Env.rpc_next_rid
