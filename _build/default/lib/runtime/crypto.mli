(** SPLAY's [crypto] library: secure hashing for node identifiers and cache
    keys. Pure-OCaml SHA-1 (no external digest dependency is available in
    the build environment). *)

val sha1 : string -> string
(** Raw 20-byte digest. *)

val sha1_hex : string -> string
(** Lowercase hexadecimal digest (40 chars). *)

val hash_to_id : string -> bits:int -> int
(** Map a string onto the identifier ring [\[0, 2^bits)] by truncating its
    SHA-1 digest — how a joining node derives its position from "ip:port".
    [bits] must be within [1..62]. *)
