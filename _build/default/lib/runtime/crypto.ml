(* SHA-1 per RFC 3174. Operates on Int32 words; message length < 2^32 bits
   is ample for identifiers and cache keys. *)

let rotl32 x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let sha1 msg =
  let len = String.length msg in
  (* padding: 0x80, zeros, 64-bit big-endian bit length *)
  let total = len + 1 in
  let padded_len = ((total + 8 + 63) / 64) * 64 in
  let buf = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  let bitlen = Int64.of_int (len * 8) in
  for i = 0 to 7 do
    Bytes.set buf
      (padded_len - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  let h0 = ref 0x67452301l
  and h1 = ref 0xEFCDAB89l
  and h2 = ref 0x98BADCFEl
  and h3 = ref 0x10325476l
  and h4 = ref 0xC3D2E1F0l in
  let w = Array.make 80 0l in
  let nblocks = padded_len / 64 in
  for block = 0 to nblocks - 1 do
    let base = block * 64 in
    for i = 0 to 15 do
      let b j = Int32.of_int (Char.code (Bytes.get buf (base + (4 * i) + j))) in
      w.(i) <-
        Int32.logor
          (Int32.shift_left (b 0) 24)
          (Int32.logor
             (Int32.shift_left (b 1) 16)
             (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
    done;
    for i = 16 to 79 do
      w.(i) <- rotl32 (Int32.logxor (Int32.logxor w.(i - 3) w.(i - 8)) (Int32.logxor w.(i - 14) w.(i - 16))) 1
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for i = 0 to 79 do
      let f, k =
        if i < 20 then
          (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), 0x5A827999l)
        else if i < 40 then (Int32.logxor !b (Int32.logxor !c !d), 0x6ED9EBA1l)
        else if i < 60 then
          ( Int32.logor
              (Int32.logand !b !c)
              (Int32.logor (Int32.logand !b !d) (Int32.logand !c !d)),
            0x8F1BBCDCl )
        else (Int32.logxor !b (Int32.logxor !c !d), 0xCA62C1D6l)
      in
      let tmp = Int32.add (Int32.add (Int32.add (Int32.add (rotl32 !a 5) f) !e) k) w.(i) in
      e := !d;
      d := !c;
      c := rotl32 !b 30;
      b := !a;
      a := tmp
    done;
    h0 := Int32.add !h0 !a;
    h1 := Int32.add !h1 !b;
    h2 := Int32.add !h2 !c;
    h3 := Int32.add !h3 !d;
    h4 := Int32.add !h4 !e
  done;
  let out = Bytes.create 20 in
  let put i v =
    for j = 0 to 3 do
      Bytes.set out
        ((4 * i) + j)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * (3 - j))) 0xFFl)))
    done
  in
  put 0 !h0;
  put 1 !h1;
  put 2 !h2;
  put 3 !h3;
  put 4 !h4;
  Bytes.to_string out

let sha1_hex msg =
  let d = sha1 msg in
  let b = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents b

let hash_to_id s ~bits =
  if bits < 1 || bits > 62 then invalid_arg "Crypto.hash_to_id";
  let d = sha1 s in
  let v = ref 0 in
  (* take the first 8 bytes big-endian, then truncate *)
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land ((1 lsl bits) - 1)
