(** Small helpers mirroring SPLAY's [misc] library. *)

val between : int -> int -> int -> modulus:int -> incl_lo:bool -> incl_hi:bool -> bool
(** [between x a b ~modulus ~incl_lo ~incl_hi] tests whether [x] lies in the
    arc from [a] to [b] travelling clockwise on the identifier ring
    [Z/modulus], with each bound inclusive or exclusive. This is the
    [misc.between_c] primitive that Chord's pseudo-code leans on. When
    [a = b] the arc is the whole ring (minus the bounds if exclusive). *)

val ring_add : int -> int -> modulus:int -> int
(** Addition on the ring. *)

val ring_distance : int -> int -> modulus:int -> int
(** Clockwise distance from [a] to [b]. *)

val pow2 : int -> int
(** [2^k]; raises [Invalid_argument] outside [0..62]. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all if shorter). *)

val duration_to_string : float -> string
(** Human-readable seconds ("2m30s"). *)
