(** Serialization: the [json] + [llenc] pair of SPLAY's library stack.

    RPC arguments and return values are structured {!value}s; {!encode}
    renders them in a compact JSON-compatible text form (which also gives
    realistic message sizes to the network model) and {!decode} parses them
    back. {!frame}/{!unframe} add the length-prefixed message demarcation
    that [llenc] provides over stream transports. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Assoc of (string * value) list

exception Parse_error of string

val encode : value -> string
(** Compact JSON text. Strings are escaped; floats use a round-trippable
    representation. *)

val decode : string -> value
(** Parse a JSON text. Raises {!Parse_error} on malformed input. *)

val encoded_size : value -> int
(** [String.length (encode v)] without building the intermediate string. *)

val frame : string -> string
(** Length-prefixed message: decimal length, ['\n'], payload. *)

val unframe : string -> pos:int -> (string * int) option
(** [unframe buf ~pos] extracts the next complete frame starting at [pos]:
    [Some (payload, next_pos)], or [None] if the buffer does not yet hold a
    complete frame. Raises {!Parse_error} on a corrupt header. *)

(** Accessors raising {!Parse_error} on shape mismatch — RPC handlers use
    these to destructure arguments. *)

val to_int : value -> int
val to_float : value -> float
(** [to_float] accepts both [Int] and [Float]. *)

val to_string : value -> string
val to_bool : value -> bool
val to_list : value -> value list
val member : string -> value -> value
(** Field of an [Assoc]; {!Parse_error} if absent. *)

val equal : value -> value -> bool
