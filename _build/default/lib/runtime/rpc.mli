(** Remote procedure calls — the workhorse of SPLAY applications.

    Calling a remote function is almost as simple as calling a local one:
    arguments and results are {!Codec.value}s, transparently serialized (the
    serialized size is what the network model charges). Communication errors
    are reported as a result value, mirroring Lua's second return value.

    A handler runs in its own process on the callee, so it may itself block
    on RPCs (recursive routing, as in Chord's [find_successor]). *)

type error =
  | Timeout (** no reply within the deadline — the node may have failed *)
  | Remote of string (** the handler raised; message attached *)
  | Network of string (** local send refused (blacklist, budget) *)

val error_to_string : error -> string

exception Rpc_error of error

type handler = Codec.value list -> Codec.value

val server : Env.t -> (string * handler) list -> unit
(** Start the RPC server on the instance's endpoint ([rpc.server(n.port)]).
    Also enables this instance to issue calls (replies share the socket).
    Re-registering a name replaces the handler. *)

val client : Env.t -> unit
(** Enable calls without exposing any procedure (pure client). *)

val add_handler : Env.t -> string -> handler -> unit

val a_call :
  Env.t -> Addr.t -> ?timeout:float -> string -> Codec.value list -> (Codec.value, error) result
(** [rpc.a_call(node, proc, args, timeout)]: call and report failure as a
    value. Default timeout 120 s — the "standard 2 minutes" the paper
    mentions tuning down for PlanetLab. *)

val call : Env.t -> Addr.t -> ?timeout:float -> string -> Codec.value list -> Codec.value
(** [rpc.call]: like {!a_call} but raises {!Rpc_error} on failure. *)

val ping : Env.t -> ?timeout:float -> Addr.t -> bool
(** Liveness probe (default timeout 5 s). *)

val calls_issued : Env.t -> int
(** Number of outgoing calls this instance has made (monitoring). *)
