(** Restricted socket library ([sb_socket]).

    All network I/O of an application flows through here, where the sandbox
    enforces the administrator's and controller's restrictions: total
    bandwidth budget, socket count, and destination blacklist. The
    underlying transport is {!Net}. *)

exception Network_error of string
(** A failed operation (blacklisted peer, budget exhausted, socket cap). *)

val udp : Env.t -> port:int -> (src:Addr.t -> Net.payload -> unit) -> Addr.t
(** Bind a datagram socket on the instance's host. Counts against the
    sandbox socket limit; automatically closed when the instance stops.
    Returns the bound address. *)

val close : Env.t -> Addr.t -> unit

val send : Env.t -> dst:Addr.t -> ?size:int -> Net.payload -> unit
(** Send a datagram from this instance. Raises {!Network_error} if the
    destination host is blacklisted or the traffic budget is exhausted.
    Never blocks; delivery (or loss) is the network's business. *)

val sent_bytes : Env.t -> int
