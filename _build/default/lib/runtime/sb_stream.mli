(** Stream (TCP-like) connections over the restricted socket layer.

    The paper's message-passing API works "over TCP and UDP"; {!Sb_socket}
    is the datagram side, this module is the stream side: connections with
    a handshake, in-order delivery regardless of network jitter, and
    message demarcation (each {!send} arrives as one {!recv}, the [llenc]
    framing contract). Every connection counts against the sandbox's socket
    limit, and all traffic is accounted and subject to the instance's
    blacklist and loss rate. *)

exception Stream_error of string

type t
(** One endpoint of an established connection. *)

val listen : Env.t -> port:int -> on_accept:(t -> unit) -> unit
(** Accept connections on [port]. [on_accept] runs in a fresh process per
    connection. Raises {!Stream_error} if the port is taken or the socket
    cap is reached. *)

val connect : Env.t -> ?timeout:float -> Addr.t -> t
(** Open a connection to a listening endpoint. Blocking three-way-ish
    handshake; raises {!Stream_error} on timeout (default 10 s) or
    refusal. *)

val send : t -> string -> unit
(** Queue one message. Never blocks; delivery is ordered and reliable as
    long as both hosts stay up (the network may delay, not reorder, what
    this layer exposes). Raises {!Stream_error} on a closed connection. *)

val recv : t -> string
(** Block until the next in-order message. Raises {!Stream_error} if the
    connection closes while waiting (or was already closed and drained). *)

val recv_timeout : t -> float -> string option

val close : t -> unit
(** Send FIN and release the socket. Idempotent. Queued incoming messages
    can still be drained with {!recv_timeout}. *)

val is_open : t -> bool
val peer : t -> Addr.t
val bytes_sent : t -> int
val messages_sent : t -> int
