type waiter = { mutable waiting : bool; wake : unit -> unit }

type t = { mutable held : bool; queue : waiter Queue.t }

let create () = { held = false; queue = Queue.create () }

let lock t =
  if not t.held then t.held <- true
  else
    Splay_sim.Engine.suspend (fun resolve ->
        let w = { waiting = true; wake = (fun () -> resolve (Ok ())) } in
        Queue.add w t.queue;
        fun () -> w.waiting <- false)

let rec wake_next t =
  match Queue.take_opt t.queue with
  | None -> t.held <- false
  | Some w -> if w.waiting then w.wake () (* lock stays held, ownership transfers *)
              else wake_next t

let unlock t =
  if not t.held then invalid_arg "Locks.unlock: not held";
  wake_next t

let try_lock t =
  if t.held then false
  else begin
    t.held <- true;
    true
  end

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

let is_locked t = t.held
