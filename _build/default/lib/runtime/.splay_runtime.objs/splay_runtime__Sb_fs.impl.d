lib/runtime/sb_fs.ml: Buffer Env Hashtbl List Printf Sandbox String
