lib/runtime/misc.ml: Printf
