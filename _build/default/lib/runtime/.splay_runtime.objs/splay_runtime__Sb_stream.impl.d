lib/runtime/sb_stream.ml: Addr Env Hashtbl Net Printf Sandbox Sb_socket Splay_sim String
