lib/runtime/env.ml: Addr Codec Effect Hashtbl List Log Net Sandbox Splay_sim
