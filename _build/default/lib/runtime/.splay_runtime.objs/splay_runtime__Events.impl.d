lib/runtime/events.ml: Env Splay_sim
