lib/runtime/locks.mli:
