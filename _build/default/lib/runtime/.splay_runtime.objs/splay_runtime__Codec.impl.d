lib/runtime/codec.ml: Buffer Char Float List Printf String
