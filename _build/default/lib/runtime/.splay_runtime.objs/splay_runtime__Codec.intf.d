lib/runtime/codec.mli:
