lib/runtime/sandbox.mli: Addr
