lib/runtime/locks.ml: Fun Queue Splay_sim
