lib/runtime/env.mli: Addr Codec Hashtbl Log Net Sandbox Splay_sim
