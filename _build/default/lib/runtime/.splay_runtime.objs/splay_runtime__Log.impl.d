lib/runtime/log.ml: List Printf Queue Splay_sim
