lib/runtime/sb_fs.mli: Env
