lib/runtime/sandbox.ml: Addr List Printf
