lib/runtime/rpc.ml: Addr Codec Env Hashtbl List Net Printexc Printf Sb_socket Splay_sim String
