lib/runtime/crypto.ml: Array Buffer Bytes Char Int32 Int64 Printf String
