lib/runtime/crypto.mli:
