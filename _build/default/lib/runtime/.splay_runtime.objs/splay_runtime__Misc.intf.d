lib/runtime/misc.mli:
