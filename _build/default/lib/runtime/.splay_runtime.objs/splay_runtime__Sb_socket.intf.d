lib/runtime/sb_socket.mli: Addr Env Net
