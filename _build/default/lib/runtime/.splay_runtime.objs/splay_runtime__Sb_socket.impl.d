lib/runtime/sb_socket.ml: Addr Env Net Printf Sandbox
