lib/runtime/log.mli: Splay_sim
