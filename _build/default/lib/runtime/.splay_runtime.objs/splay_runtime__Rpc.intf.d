lib/runtime/rpc.mli: Addr Codec Env
