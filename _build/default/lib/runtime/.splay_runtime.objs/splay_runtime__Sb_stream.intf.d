lib/runtime/sb_stream.mli: Addr Env
