lib/runtime/events.mli: Env Splay_sim
