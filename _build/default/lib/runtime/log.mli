(** SPLAY's [log] library: leveled logging, locally buffered or forwarded to
    the controller's log collector over the (accounted) network. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

type sink =
  | Discard
  | Memory of int (* keep at most n entries locally *)
  | Forward of (time:float -> level:level -> string -> unit)
      (** Forward each entry to a collector (the controller installs one);
          the callback performs its own transport accounting. *)

type t

val create : ?level:level -> ?sink:sink -> name:string -> Splay_sim.Engine.t -> t
(** Default level [Info], default sink [Memory 10_000]. *)

val set_level : t -> level -> unit
val set_sink : t -> sink -> unit
val enabled : t -> level -> bool

val log : t -> level -> ('a, unit, string, unit) format4 -> 'a
val debug : t -> ('a, unit, string, unit) format4 -> 'a
val info : t -> ('a, unit, string, unit) format4 -> 'a
val warn : t -> ('a, unit, string, unit) format4 -> 'a
val error : t -> ('a, unit, string, unit) format4 -> 'a

val entries : t -> (float * level * string) list
(** Locally retained entries, oldest first (empty unless sink is
    [Memory _]). *)

val count : t -> int
(** Number of entries emitted at an enabled level over the lifetime. *)
