(** Sandboxed virtual filesystem ([sb_fs]).

    Simulates a filesystem confined to the instance's private directory:
    arbitrary path names map onto private storage, an instance can never see
    another instance's files, and the sandbox enforces a byte quota and an
    open-file cap. BitTorrent and the web cache store their payloads here. *)

exception Fs_error of string

type t
(** One instance's private filesystem. *)

val create : Env.t -> t
(** Storage is accounted against the environment's sandbox. *)

type file

val open_file : t -> string -> mode:[ `Read | `Write | `Append ] -> file
(** [`Write] truncates; [`Read] on a missing path raises {!Fs_error};
    the open-file cap raises {!Fs_error}. *)

val write : file -> string -> unit
(** Raises {!Fs_error} when the quota would be exceeded (the write fails,
    the application continues — the paper's disk-limit semantics). *)

val read_all : file -> string
val size : file -> int
val close : file -> unit

val exists : t -> string -> bool
val file_size : t -> string -> int option
val remove : t -> string -> unit
(** Removing an open or missing file raises {!Fs_error}. *)

val list_files : t -> string list
val used_bytes : t -> int
