(** The [events] library, under the paper's name.

    Thin aliases over {!Env}'s process management so application code reads
    like the listings ([events.thread], [events.periodic], [events.sleep]).
    The main loop ([events.loop]) is implicit here: the simulation engine
    drives every instance. *)

val thread : Env.t -> ?name:string -> (unit -> unit) -> Splay_sim.Engine.proc
(** [events.thread(f)]. *)

val periodic : Env.t -> (unit -> unit) -> float -> Splay_sim.Engine.proc
(** [events.periodic(f, interval)] — note the paper's argument order. *)

val sleep : float -> unit
(** [events.sleep(seconds)]. *)

val yield : unit -> unit
(** Give other coroutines the processor, as a bare [events.sleep(0)]. *)
