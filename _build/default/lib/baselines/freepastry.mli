(** The FreePastry 2.0 comparator of §5.3 (Figs. 7 and 8).

    Functionally the same Pastry protocol as {!Splay_apps.Pastry} — the
    paper stresses its implementation is "functionally identical" — but
    running on a Java cost model: each instance carries a JVM-scale
    resident footprint (instances share 3 JVMs per host, as the authors
    configured), message handling pays a serialization overhead, and both
    inflate with host contention. The daemon-side memory model then
    produces the paper's shapes: delays blow up as instance density grows
    and the host dies swapping near 180 instances (1,980 on the 11-node
    cluster). *)

val daemon_config : Splay_ctl.Daemon.config
(** Use as [Controller.boot_daemons ~config] for the hosts that run
    FreePastry: ~11.3 MB per instance against 2 GB hosts, and a
    noticeable per-instance scheduler cost. *)

val app_config : Splay_apps.Pastry.config
(** Pastry tuned as FreePastry: same protocol parameters, plus the Java
    per-hop processing overhead. *)

val app :
  ?config:Splay_apps.Pastry.config ->
  register:(Splay_apps.Pastry.node -> unit) ->
  Env.t ->
  unit
(** [Splay_apps.Pastry.app] under {!app_config}. *)
