(** CRCP — the native C cooperative-dissemination comparator of Fig. 13.

    Same parallel-trees protocol as {!Splay_apps.Trees} (same tree
    construction, same round-robin block-to-tree mapping), with the one
    behavioural difference the paper calls out: a CRCP node sends chunks to
    its children {e sequentially} — each transfer is acknowledged before
    the next child is served — where the SPLAY version hands all children
    to the network at once. Framework overhead is zero (native code). *)

type config = {
  fanout : int;
  ntrees : int;
  block_size : int;
  start_delay : float;
  rpc_timeout : float;
}

val default_config : config

type node

val app : ?config:config -> file_size:int -> register:(node -> unit) -> Env.t -> unit
(** Deploy with [Descriptor.All]; position 1 is the source. *)

val position : node -> int
val total_blocks : node -> int
val blocks_received : node -> int
val completion_time : node -> float option
val children : node -> tree:int -> Addr.t list
val is_source : node -> bool
val is_stopped : node -> bool
