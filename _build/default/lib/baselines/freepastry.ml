module Daemon = Splay_ctl.Daemon
module Sandbox = Splay_runtime.Sandbox
module Pastry = Splay_apps.Pastry

(* 3 JVMs of ~680 MB serving ~60 instances each at the 1,980-instance
   wall: ~11.3 MB of resident heap per instance. The scheduler cost per
   instance is an order of magnitude above SPLAY's coroutines. *)
let daemon_config =
  {
    Daemon.base_footprint = 11_300 * 1024;
    admin_limits = Sandbox.unlimited;
    heartbeat_interval = 60.0;
    cpu_per_instance = 0.004;
    (* past ~120 instances per host the JVMs spend their time in GC and
       the scheduler: a quadratic degradation that reproduces the
       exponential-looking blow-up of Fig. 7(b) beyond 1,600 total *)
    contention_extra =
      (fun n ->
        let over = Float.of_int (max 0 (n - 120)) in
        0.004 *. over *. over);
  }

let app_config =
  {
    Pastry.default_config with
    (* Java serialization + GC pressure on every message *)
    Pastry.per_hop_overhead = 0.003;
  }

let app ?(config = app_config) ~register env = Pastry.app ~config ~register env
