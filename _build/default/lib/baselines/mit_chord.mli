(** The MIT (PDOS) C++ Chord comparator of Fig. 6(c).

    Same Chord protocol as {!Splay_apps.Chord_ft}, with the custom-layer
    optimizations the paper credits for its lower lookup delays: latency-
    aware finger tables built from network-coordinate estimates (proximity
    finger selection) and an aggressive stabilization schedule. *)

val app_config : Splay_apps.Chord_ft.config

val app :
  ?config:Splay_apps.Chord_ft.config ->
  register:(Splay_apps.Chord_ft.node -> unit) ->
  Env.t ->
  unit
