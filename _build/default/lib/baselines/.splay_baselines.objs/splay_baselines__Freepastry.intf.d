lib/baselines/freepastry.mli: Env Splay_apps Splay_ctl
