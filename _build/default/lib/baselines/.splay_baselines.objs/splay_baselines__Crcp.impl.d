lib/baselines/crcp.ml: Addr Array List Splay_runtime Splay_sim String
