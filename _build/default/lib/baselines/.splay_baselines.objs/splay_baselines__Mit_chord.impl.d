lib/baselines/mit_chord.ml: Splay_apps
