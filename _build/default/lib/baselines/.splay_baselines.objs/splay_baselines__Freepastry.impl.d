lib/baselines/freepastry.ml: Float Splay_apps Splay_ctl Splay_runtime
