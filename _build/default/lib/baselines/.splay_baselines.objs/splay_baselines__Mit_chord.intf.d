lib/baselines/mit_chord.mli: Env Splay_apps
