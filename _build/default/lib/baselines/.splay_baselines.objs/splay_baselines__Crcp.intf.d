lib/baselines/crcp.mli: Addr Env
