module Chord_ft = Splay_apps.Chord_ft

let app_config =
  {
    Chord_ft.default_config with
    Chord_ft.proximity_fingers = true;
    stabilize_interval = 1.0;
    rpc_timeout = 30.0;
  }

let app ?(config = app_config) ~register env = Chord_ft.app ~config ~register env
