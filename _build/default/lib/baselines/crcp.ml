module Codec = Splay_runtime.Codec
module Rpc = Splay_runtime.Rpc
module Env = Splay_runtime.Env

type config = {
  fanout : int;
  ntrees : int;
  block_size : int;
  start_delay : float;
  rpc_timeout : float;
}

let default_config =
  { fanout = 2; ntrees = 2; block_size = 128 * 1024; start_delay = 10.0; rpc_timeout = 120.0 }

type node = {
  cfg : config;
  env : Env.t;
  members : Addr.t array;
  rank : int;
  nblocks : int;
  received : bool array;
  mutable n_received : int;
  mutable completed_at : float option;
  forward_queue : (int * int) Splay_sim.Channel.t; (* (tree, index) *)
}

let position t = t.rank + 1
let total_blocks t = t.nblocks
let blocks_received t = t.n_received
let completion_time t = t.completed_at
let is_source t = t.rank = 0
let is_stopped t = Env.is_stopped t.env

(* Tree [k] rotates the non-source members by k/ntrees of the population,
   so interior nodes of one tree are mostly leaves of the others (the
   SplitStream property, by construction). The source is not part of any
   tree: it feeds each tree's root, so its uplink carries the file once. *)
let member_of_slot t ~tree ~slot =
  let n = Array.length t.members - 1 in
  let offset = tree * n / t.cfg.ntrees in
  t.members.(1 + ((slot + offset) mod n))

let my_slot t ~tree =
  let n = Array.length t.members - 1 in
  let offset = tree * n / t.cfg.ntrees in
  if t.rank = 0 then -1 else ((t.rank - 1) - offset + n) mod n

let children t ~tree =
  let n = Array.length t.members - 1 in
  if t.rank = 0 then [ member_of_slot t ~tree ~slot:0 ]
  else begin
    let slot = my_slot t ~tree in
    let first = (t.cfg.fanout * slot) + 1 in
    List.init t.cfg.fanout (fun i -> first + i)
    |> List.filter (fun s -> s < n)
    |> List.map (fun s -> member_of_slot t ~tree ~slot:s)
  end

let receive t ~tree ~index =
  if index >= 0 && index < t.nblocks && not t.received.(index) then begin
    t.received.(index) <- true;
    t.n_received <- t.n_received + 1;
    if t.n_received = t.nblocks then t.completed_at <- Some (Env.now t.env);
    Splay_sim.Channel.send t.forward_queue (tree, index)
  end

(* The single forwarding loop: one block, one child at a time, each send
   acknowledged before the next starts — CRCP's sequential discipline. *)
let forwarder t =
  while true do
    let tree, index = Splay_sim.Channel.recv t.forward_queue in
    List.iter
      (fun child ->
        ignore
          (Rpc.a_call t.env child ~timeout:t.cfg.rpc_timeout "crcp.block"
             [
               Codec.Int tree;
               Codec.Int index;
               Codec.String (String.make t.cfg.block_size 'x');
             ]))
      (children t ~tree)
  done

let app ?(config = default_config) ~file_size ~register env =
  let members = Array.of_list env.Env.nodes in
  if Array.length members = 0 then invalid_arg "Crcp.app: deploy with bootstrap All";
  let nblocks = (file_size + config.block_size - 1) / config.block_size in
  let rank =
    let rec find i =
      if i >= Array.length members then invalid_arg "Crcp.app: not in member list"
      else if Addr.equal members.(i) env.Env.me then i
      else find (i + 1)
    in
    find 0
  in
  let t =
    {
      cfg = config;
      env;
      members;
      rank;
      nblocks;
      received = Array.make nblocks false;
      n_received = 0;
      completed_at = None;
      forward_queue = Splay_sim.Channel.create ();
    }
  in
  register t;
  Rpc.server env
    [
      ( "crcp.block",
        fun args ->
          (match args with
          | [ tv; iv; _data ] -> receive t ~tree:(Codec.to_int tv) ~index:(Codec.to_int iv)
          | _ -> failwith "crcp.block: bad arguments");
          Codec.Null );
    ];
  ignore (Env.thread env (fun () -> forwarder t));
  if t.rank = 0 then begin
    Env.sleep config.start_delay;
    t.completed_at <- Some (Env.now env);
    for i = 0 to nblocks - 1 do
      t.received.(i) <- true
    done;
    t.n_received <- nblocks;
    for index = 0 to nblocks - 1 do
      Splay_sim.Channel.send t.forward_queue (index mod config.ntrees, index)
    done
  end
