examples/filedist.ml: Controller Daemon Descriptor Dist Engine Env Float List Platform Printf Splay Splay_apps
