examples/indexing.mli:
