examples/quickstart.ml: Controller Daemon Descriptor Engine Env List Misc Platform Printf Rng Splay Splay_apps
