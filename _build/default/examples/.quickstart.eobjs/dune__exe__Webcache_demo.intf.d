examples/webcache_demo.mli:
