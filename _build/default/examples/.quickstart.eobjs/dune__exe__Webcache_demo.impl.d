examples/webcache_demo.ml: Controller Daemon Descriptor Dist Engine Env Float List Platform Printf Replayer Rng Splay Splay_apps
