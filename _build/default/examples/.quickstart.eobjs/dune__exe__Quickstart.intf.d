examples/quickstart.mli:
