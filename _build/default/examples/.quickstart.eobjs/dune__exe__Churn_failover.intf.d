examples/churn_failover.mli:
