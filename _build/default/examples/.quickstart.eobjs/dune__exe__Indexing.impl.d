examples/indexing.ml: Controller Daemon Descriptor Engine Env List Platform Printf Replayer Rng Splay Splay_apps
