examples/filedist.mli:
