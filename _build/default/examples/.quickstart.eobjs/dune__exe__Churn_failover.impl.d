examples/churn_failover.ml: Controller Daemon Descriptor Engine Env List Misc Platform Printf Replayer Rng Script Splay Splay_apps
