(* Content distribution demo: the same 2 MB file pushed to a bandwidth-
   constrained swarm two ways — BitTorrent and parallel distribution trees
   — with per-node completion times, the workload family of Fig. 13 and
   the paper's BitTorrent use case ("distributing a large file ... whose
   lifetime is specified at runtime and usually short").

     dune exec examples/filedist.exe *)

open Splay
module Apps = Splay_apps

let mbps x = x *. 1_000_000.0 /. 8.0
let file_size = 2 * 1024 * 1024
let swarm = 24

let summarize name times =
  let d = Dist.create () in
  Dist.add_list d times;
  Printf.printf "%-12s first %.1fs   median %.1fs   last %.1fs   (%d nodes)\n" name
    (Dist.min_value d) (Dist.percentile d 50.0) (Dist.max_value d) (Dist.count d)

let run_trees () =
  let p =
    Platform.create ~seed:3 (Platform.Modelnet { hosts = swarm + 2; bandwidth = Some (mbps 2.0) })
  in
  let out = ref [] in
  Platform.run p (fun p ->
      let ctl = Platform.controller p in
      let handles = ref [] in
      let config = { Apps.Trees.default_config with block_size = 64 * 1024; start_delay = 5.0 } in
      ignore
        (Controller.deploy ctl ~name:"trees"
           ~main:(Apps.Trees.app ~config ~file_size ~register:(fun x -> handles := x :: !handles))
           (Descriptor.make ~bootstrap:Descriptor.All swarm));
      let rec wait () =
        Env.sleep 10.0;
        if
          List.length !handles < swarm
          || List.exists (fun x -> Apps.Trees.completion_time x = None) !handles
        then wait ()
      in
      wait ();
      out := List.filter_map Apps.Trees.completion_time !handles;
      List.iter Daemon.shutdown (Platform.daemons p);
      ignore
        (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
             Env.stop (Controller.env ctl))));
  !out

let run_bittorrent () =
  let p =
    Platform.create ~seed:3 (Platform.Modelnet { hosts = swarm + 2; bandwidth = Some (mbps 2.0) })
  in
  let out = ref [] in
  Platform.run p (fun p ->
      let ctl = Platform.controller p in
      let handles = ref [] in
      let config =
        { Apps.Bittorrent.default_config with piece_size = 64 * 1024; choke_interval = 5.0 }
      in
      ignore
        (Controller.deploy ctl ~name:"bittorrent"
           ~main:
             (Apps.Bittorrent.app ~config ~file_size
                ~register:(fun x -> handles := x :: !handles))
           (Descriptor.make ~bootstrap:(Descriptor.Head 1) swarm));
      let rec wait budget =
        Env.sleep 15.0;
        if
          budget > 0.0
          && (List.length !handles < swarm
             || List.exists (fun x -> not (Apps.Bittorrent.complete x)) !handles)
        then wait (budget -. 15.0)
      in
      wait 3600.0;
      out :=
        List.filter_map
          (fun x -> if Apps.Bittorrent.is_initial_seed x then None else Apps.Bittorrent.completion_time x)
          !handles;
      let total_up =
        List.fold_left (fun a x -> a + Apps.Bittorrent.uploaded_bytes x) 0 !handles
      in
      Printf.printf "bittorrent: %d MB uploaded across the swarm (%.1fx the file)\n"
        (total_up / 1024 / 1024)
        (Float.of_int total_up /. Float.of_int file_size);
      List.iter Daemon.shutdown (Platform.daemons p);
      ignore
        (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
             Env.stop (Controller.env ctl))));
  !out

let () =
  Printf.printf "distributing %d MB to %d nodes over 2 Mbps links\n\n"
    (file_size / 1024 / 1024) swarm;
  let trees = run_trees () in
  let bt = run_bittorrent () in
  summarize "trees" trees;
  summarize "bittorrent" bt;
  print_endline "\n(both bounded by the same links; trees pipeline deterministically,";
  print_endline " bittorrent trades startup time for robustness to peer churn)"
