(* Churn management demo (the paper's Section 3.2 / Figure 4 workflow):
   deploy a Pastry overlay and drive it with a synthetic churn script while
   a background process keeps probing its health.

     dune exec examples/churn_failover.exe *)

open Splay
module Apps = Splay_apps

let churn_script =
  {|from 0s to 2m inc 10
from 2m to 4m const churn 30%
at 4m leave 50%
from 4m to 6m const|}

let () =
  let platform = Platform.create ~seed:11 (Platform.Cluster 10) in
  Platform.run platform (fun p ->
      let ctl = Platform.controller p in
      let nodes = ref [] in
      let config =
        { Apps.Pastry.default_config with rpc_timeout = 3.0; stabilize_interval = 2.0 }
      in
      let dep =
        Controller.deploy ctl ~name:"pastry"
          ~main:(Apps.Pastry.app ~config ~register:(fun x -> nodes := x :: !nodes))
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 20)
      in
      Env.sleep 60.0;
      Printf.printf "initial population: %d\n" (Controller.live_count dep);
      Printf.printf "churn script:\n%s\n\n" churn_script;

      let script = Script.parse churn_script in
      let _proc, stats = Replayer.run_script dep script in

      (* a monitor probing the overlay every 20 virtual seconds *)
      Printf.printf "%6s %10s %12s %s\n" "t(s)" "live" "lookup" "result";
      let rng = Rng.split (Engine.rng (Platform.engine p)) in
      for _ = 1 to 18 do
        Env.sleep 20.0;
        let live = List.filter (fun x -> not (Apps.Pastry.is_stopped x)) !nodes in
        match live with
        | [] -> Printf.printf "%6.0f %10d %12s -\n" (Platform.now p) 0 "-"
        | _ -> (
            let origin = Rng.pick_list rng live in
            let key = Rng.int rng (Misc.pow2 32) in
            match Apps.Pastry.lookup origin key with
            | Some (owner, hops) ->
                Printf.printf "%6.0f %10d %12s owner=%08x hops=%d\n" (Platform.now p)
                  (Controller.live_count dep) "ok" owner.Apps.Node.id hops
            | None ->
                Printf.printf "%6.0f %10d %12s (routing broke, will heal)\n" (Platform.now p)
                  (Controller.live_count dep) "FAILED")
      done;
      Printf.printf "\nchurn applied: %d joins, %d leaves, %d failed joins\n"
        stats.Replayer.joins stats.Replayer.leaves stats.Replayer.failed_joins;

      (* the long-running-service mode: restore and hold the population *)
      let maintainer = Replayer.maintain ~target:30 ~interval:10.0 dep in
      Env.sleep 60.0;
      Printf.printf "after 60s of maintenance: %d live (target 30)\n"
        (Controller.live_count dep);
      Engine.kill (Platform.engine p) maintainer;
      List.iter Daemon.shutdown (Platform.daemons p);
      ignore
        (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
             Env.stop (Controller.env ctl))))
