(* The paper's long-running use case (ii): "an indexing service based on a
   DHT ... for which the population of nodes may dynamically evolve during
   the lifetime of the system (and where failed nodes must be replaced
   automatically)". A replicated key-value index on Pastry, kept at a fixed
   population by the churn manager while nodes keep failing under it.

     dune exec examples/indexing.exe *)

open Splay
module Apps = Splay_apps

let () =
  let p = Platform.create ~seed:9 (Platform.Cluster 10) in
  Platform.run p (fun p ->
      let ctl = Platform.controller p in
      let stores = ref [] in
      let main env =
        Apps.Pastry.app
          ~config:{ Apps.Pastry.default_config with rpc_timeout = 3.0; stabilize_interval = 2.0 }
          ~register:(fun pn ->
            let config =
              { Apps.Dht_store.default_config with republish_interval = 15.0; rpc_timeout = 3.0 }
            in
            stores := Apps.Dht_store.create ~config pn :: !stores)
          env
      in
      let dep =
        Controller.deploy ctl ~name:"index" ~main
          (Descriptor.make ~bootstrap:(Descriptor.Head 1) 25)
      in
      Env.sleep 90.0;

      (* index a small corpus from one node *)
      let corpus =
        [
          ("ocaml", "a functional language with effects");
          ("splay", "distributed systems evaluation made simple");
          ("chord", "a scalable peer-to-peer lookup protocol");
          ("pastry", "decentralized object location and routing");
          ("vivaldi", "a decentralized network coordinate system");
        ]
      in
      let writer = List.hd !stores in
      List.iter
        (fun (k, v) ->
          let acks = Apps.Dht_store.put writer ~key:k ~value:v in
          Printf.printf "put %-8s -> %d replicas\n" k acks)
        corpus;

      (* keep the population at 25 while nodes die every 30 s *)
      let maintainer = Replayer.maintain ~target:25 ~interval:10.0 dep in
      let rng = Rng.split (Engine.rng (Platform.engine p)) in
      Printf.printf "\n%6s %6s %8s  %s\n" "t(s)" "live" "lookups" "sample";
      for round = 1 to 8 do
        Env.sleep 30.0;
        (match Controller.live_members dep with
        | (_, a, _) :: _ when round mod 2 = 0 -> Controller.crash_node dep a
        | _ -> ());
        (* query from a random live node *)
        let ok = ref 0 in
        let reader = Rng.pick_list rng !stores in
        List.iter
          (fun (k, _) -> if Apps.Dht_store.get reader ~key:k <> None then incr ok)
          corpus;
        let key, _ = Rng.pick_list rng corpus in
        let sample =
          match Apps.Dht_store.get reader ~key with
          | Some v -> Printf.sprintf "%s = %S" key v
          | None -> Printf.sprintf "%s = <unavailable>" key
        in
        Printf.printf "%6.0f %6d %5d/%d  %s\n" (Platform.now p) (Controller.live_count dep)
          !ok (List.length corpus) sample
      done;
      print_endline "\nthe index stayed readable while nodes failed and were replaced";
      Engine.kill (Platform.engine p) maintainer;
      List.iter Daemon.shutdown (Platform.daemons p);
      ignore
        (Engine.schedule (Platform.engine p) ~delay:0.0 (fun () ->
             Env.stop (Controller.env ctl))))
